/**
 * @file
 * Unit tests of the tensor substrate: storage semantics, shapes,
 * kernels (GEMM, softmax, RMSNorm, RoPE) and the deterministic RNG.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace specontext {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.nextU64(), b.nextU64());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(11);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ForkIsIndependent)
{
    Rng a(5);
    Rng child = a.fork();
    EXPECT_NE(a.nextU64(), child.nextU64());
}

TEST(Tensor, ZerosShapeAndValues)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.ndim(), 2);
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(1), 3);
    EXPECT_EQ(t.numel(), 6);
    for (int64_t i = 0; i < 2; ++i)
        for (int64_t j = 0; j < 3; ++j)
            EXPECT_EQ(t.at(i, j), 0.0f);
}

TEST(Tensor, FullAndFill)
{
    Tensor t = Tensor::full({4}, 2.5f);
    EXPECT_EQ(t.at(2), 2.5f);
    t.fill(-1.0f);
    EXPECT_EQ(t.at(0), -1.0f);
}

TEST(Tensor, CopySharesStorageCloneDoesNot)
{
    Tensor a({3});
    Tensor shared = a;
    Tensor deep = a.clone();
    a.at(0) = 9.0f;
    EXPECT_EQ(shared.at(0), 9.0f);
    EXPECT_EQ(deep.at(0), 0.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4, 5, 6});
    Tensor b = a.reshape({2, 3});
    EXPECT_EQ(b.at(1, 2), 6.0f);
    EXPECT_THROW(a.reshape({4}), std::invalid_argument);
}

TEST(Tensor, RowAccess)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}).reshape({2, 2});
    EXPECT_EQ(a.row(1)[0], 3.0f);
    EXPECT_EQ(a.rowSize(), 2);
}

TEST(Tensor, RankCheckedAccessThrows)
{
    Tensor a({2, 2});
    EXPECT_THROW(a.at(0), std::logic_error);
    EXPECT_THROW(a.at(0, 0, 0), std::logic_error);
}

TEST(Tensor, RandnDeterministicFromSeed)
{
    Rng r1(42), r2(42);
    Tensor a = Tensor::randn({16}, r1);
    Tensor b = Tensor::randn({16}, r2);
    for (int64_t i = 0; i < 16; ++i)
        EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Tensor, CopyFromChecksSize)
{
    Tensor a({4}), b({5});
    EXPECT_THROW(a.copyFrom(b), std::invalid_argument);
}

TEST(Tensor, ShapeString)
{
    EXPECT_EQ(Tensor({2, 3, 4}).shapeString(), "[2, 3, 4]");
}

TEST(Ops, MatmulIdentity)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}).reshape({2, 2});
    Tensor eye = Tensor::zeros({2, 2});
    eye.at(0, 0) = eye.at(1, 1) = 1.0f;
    Tensor c = ops::matmul(a, eye);
    for (int64_t i = 0; i < 2; ++i)
        for (int64_t j = 0; j < 2; ++j)
            EXPECT_FLOAT_EQ(c.at(i, j), a.at(i, j));
}

TEST(Ops, MatmulKnownValues)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4, 5, 6}).reshape({2, 3});
    Tensor b = Tensor::fromVector({7, 8, 9, 10, 11, 12}).reshape({3, 2});
    Tensor c = ops::matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulShapeMismatchThrows)
{
    EXPECT_THROW(ops::matmul(Tensor({2, 3}), Tensor({2, 3})),
                 std::invalid_argument);
}

TEST(Ops, MatmulTransposedBMatchesMatmul)
{
    Rng rng(3);
    Tensor a = Tensor::randn({3, 5}, rng);
    Tensor b = Tensor::randn({4, 5}, rng);
    // b^T explicit
    Tensor bt({5, 4});
    for (int64_t i = 0; i < 4; ++i)
        for (int64_t j = 0; j < 5; ++j)
            bt.at(j, i) = b.at(i, j);
    Tensor c1 = ops::matmulTransposedB(a, b);
    Tensor c2 = ops::matmul(a, bt);
    for (int64_t i = 0; i < c1.numel(); ++i)
        EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-5);
}

TEST(Ops, VecmatMatchesMatvecOfTranspose)
{
    Rng rng(4);
    Tensor w = Tensor::randn({3, 4}, rng);
    Tensor x = Tensor::randn({3}, rng);
    Tensor y = ops::vecmat(x, w); // x^T W -> length 4
    for (int64_t j = 0; j < 4; ++j) {
        float expect = 0.0f;
        for (int64_t i = 0; i < 3; ++i)
            expect += x.at(i) * w.at(i, j);
        EXPECT_NEAR(y.at(j), expect, 1e-5);
    }
}

TEST(Ops, SoftmaxSumsToOne)
{
    Tensor t = Tensor::fromVector({1.0f, 2.0f, 3.0f, 4.0f});
    ops::softmaxInPlace(t.data(), 4);
    float sum = 0.0f;
    for (int64_t i = 0; i < 4; ++i) {
        sum += t.at(i);
        EXPECT_GT(t.at(i), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6);
    // Monotone in input.
    EXPECT_LT(t.at(0), t.at(3));
}

TEST(Ops, SoftmaxNumericallyStableForLargeLogits)
{
    Tensor t = Tensor::fromVector({1000.0f, 1000.0f});
    ops::softmaxInPlace(t.data(), 2);
    EXPECT_NEAR(t.at(0), 0.5f, 1e-6);
}

TEST(Ops, SoftmaxLastDimAppliesPerRow)
{
    Tensor t = Tensor::fromVector({0, 0, 10, 0}).reshape({2, 2});
    ops::softmaxLastDim(t);
    EXPECT_NEAR(t.at(0, 0), 0.5f, 1e-6);
    EXPECT_GT(t.at(1, 0), 0.99f);
}

TEST(Ops, RmsnormUnitGainPreservesDirection)
{
    Tensor x = Tensor::fromVector({3.0f, 4.0f});
    Tensor g = Tensor::full({2}, 1.0f);
    Tensor y = ops::rmsnorm(x, g);
    // RMS of y should be ~1.
    const float rms =
        std::sqrt((y.at(0) * y.at(0) + y.at(1) * y.at(1)) / 2.0f);
    EXPECT_NEAR(rms, 1.0f, 1e-3);
    EXPECT_NEAR(y.at(1) / y.at(0), 4.0f / 3.0f, 1e-4);
}

TEST(Ops, SiluKnownValues)
{
    Tensor x = Tensor::fromVector({0.0f});
    EXPECT_NEAR(ops::silu(x).at(0), 0.0f, 1e-6);
    Tensor big = Tensor::fromVector({20.0f});
    EXPECT_NEAR(ops::silu(big).at(0), 20.0f, 1e-3);
}

TEST(Ops, AddMulInPlace)
{
    Tensor a = Tensor::fromVector({1, 2});
    Tensor b = Tensor::fromVector({3, 5});
    EXPECT_FLOAT_EQ(ops::add(a, b).at(1), 7.0f);
    EXPECT_FLOAT_EQ(ops::mul(a, b).at(1), 10.0f);
    ops::addInPlace(a, b);
    EXPECT_FLOAT_EQ(a.at(0), 4.0f);
}

TEST(Ops, RopePreservesNorm)
{
    Rng rng(8);
    Tensor qk = Tensor::randn({2, 8}, rng);
    Tensor before = qk.clone();
    ops::applyRope(qk, 17);
    for (int64_t h = 0; h < 2; ++h) {
        float n0 = 0, n1 = 0;
        for (int64_t d = 0; d < 8; ++d) {
            n0 += before.at(h, d) * before.at(h, d);
            n1 += qk.at(h, d) * qk.at(h, d);
        }
        EXPECT_NEAR(n0, n1, 1e-3);
    }
}

TEST(Ops, RopePositionZeroIsIdentity)
{
    Rng rng(9);
    Tensor qk = Tensor::randn({1, 8}, rng);
    Tensor before = qk.clone();
    ops::applyRope(qk, 0);
    for (int64_t d = 0; d < 8; ++d)
        EXPECT_NEAR(qk.at(0, d), before.at(0, d), 1e-6);
}

TEST(Ops, RopeRelativePositionProperty)
{
    // Dot(q(t), k(p)) must depend only on t - p: rotating both by the
    // same offset keeps the score constant.
    Rng rng(10);
    Tensor q0 = Tensor::randn({1, 8}, rng);
    Tensor k0 = Tensor::randn({1, 8}, rng);

    auto score = [&](int64_t tq, int64_t tk) {
        Tensor q = q0.clone(), k = k0.clone();
        ops::applyRope(q, tq);
        ops::applyRope(k, tk);
        return ops::dot(q.row(0), k.row(0), 8);
    };
    EXPECT_NEAR(score(5, 2), score(105, 102), 1e-3);
}

TEST(Ops, YarnScaleSlowsRotation)
{
    // With yarn_scale = s, position p behaves like p / s.
    Rng rng(12);
    Tensor a = Tensor::randn({1, 8}, rng);
    Tensor b = a.clone();
    ops::applyRope(a, 32, 10000.0f, 4.0f);
    ops::applyRope(b, 8, 10000.0f, 1.0f);
    for (int64_t d = 0; d < 8; ++d)
        EXPECT_NEAR(a.at(0, d), b.at(0, d), 1e-4);
}

TEST(Ops, ArgmaxAndMean)
{
    Tensor t = Tensor::fromVector({1, 9, 3});
    EXPECT_EQ(ops::argmax(t), 1);
    EXPECT_NEAR(ops::mean(t), 13.0f / 3.0f, 1e-5);
}

TEST(Ops, CosineSimilaritySelfIsOne)
{
    Rng rng(13);
    Tensor a = Tensor::randn({32}, rng);
    EXPECT_NEAR(ops::cosineSimilarity(a, a), 1.0f, 1e-5);
}

TEST(Ops, KlDivergenceZeroForIdenticalLogits)
{
    Tensor p = Tensor::fromVector({1, 2, 3});
    EXPECT_NEAR(ops::klDivergenceFromLogits(p, p), 0.0f, 1e-5);
}

TEST(Ops, KlDivergencePositiveForDifferentLogits)
{
    Tensor p = Tensor::fromVector({1, 2, 3});
    Tensor q = Tensor::fromVector({3, 2, 1});
    EXPECT_GT(ops::klDivergenceFromLogits(p, q), 0.01f);
}

} // namespace
} // namespace specontext
