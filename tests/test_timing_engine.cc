/**
 * @file
 * Tests of the analytical timing engine: OOM modes, system orderings
 * the paper reports, and the ablation staircase (Fig. 11). Systems are
 * constructed through the SystemRegistry (core/system_model.h).
 */
#include <gtest/gtest.h>

#include "core/timing_engine.h"

namespace specontext {
namespace {

using core::SystemOptions;
using core::SystemRegistry;
using core::TimingConfig;
using core::TimingEngine;

TimingConfig
cloudConfig(const std::string &sys, int64_t batch, int64_t in,
            int64_t out, const SystemOptions &opts = {})
{
    TimingConfig c;
    c.llm = model::deepseekDistillLlama8bGeometry();
    c.hw = sim::HardwareSpec::cloudA800();
    c.system = SystemRegistry::create(sys, opts);
    c.batch = batch;
    c.prompt_len = in;
    c.gen_len = out;
    return c;
}

TEST(TimingEngine, BackendMapping)
{
    EXPECT_EQ(SystemRegistry::create("FullAttn(Eager)")->backend(),
              sim::KernelBackend::Eager);
    EXPECT_EQ(SystemRegistry::create("SpeContext")->backend(),
              sim::KernelBackend::FlashInfer);
}

TEST(TimingEngine, KvBytesPerTokenPerLayer)
{
    // Llama-8B GQA: 2 * 2 * 8 * 128 bytes = 4 KiB per token per layer.
    EXPECT_EQ(TimingEngine::kvBytesPerTokenPerLayer(
                  model::llama31_8bGeometry()),
              4096);
}

TEST(TimingEngine, NullSystemThrows)
{
    TimingEngine e;
    TimingConfig c;
    c.llm = model::deepseekDistillLlama8bGeometry();
    c.hw = sim::HardwareSpec::cloudA800();
    EXPECT_THROW(e.simulate(c), std::invalid_argument);
}

TEST(TimingEngine, EagerOomsOnLongPromptScratch)
{
    // Table 3: eager OOMs at [16k, 2k] and [32k, 2k] because it
    // materializes the S x S attention matrix during prefill.
    TimingEngine e;
    const auto r = e.simulate(cloudConfig("FullAttn(Eager)", 4,
                                          16384, 2048));
    EXPECT_TRUE(r.oom);
    const auto ok = e.simulate(cloudConfig("FullAttn(Eager)", 4,
                                           2048, 16384));
    EXPECT_FALSE(ok.oom);
}

TEST(TimingEngine, FlashVariantsSurviveLongPrompts)
{
    TimingEngine e;
    EXPECT_FALSE(e.simulate(cloudConfig("FullAttn(FlashAttn)", 4,
                                        32768, 2048))
                     .oom);
    EXPECT_FALSE(e.simulate(cloudConfig("FullAttn(FlashInfer)", 4,
                                        32768, 2048))
                     .oom);
}

TEST(TimingEngine, FullAttentionBackendOrdering)
{
    // Eager < FlashAttention < FlashInfer in throughput (Table 3
    // columns, every row).
    TimingEngine e;
    const double eager =
        e.simulate(cloudConfig("FullAttn(Eager)", 4, 2048, 16384))
            .throughput;
    const double flash =
        e.simulate(
             cloudConfig("FullAttn(FlashAttn)", 4, 2048, 16384))
            .throughput;
    const double fi =
        e.simulate(cloudConfig("FullAttn(FlashInfer)", 4, 2048, 16384))
            .throughput;
    EXPECT_LT(eager, flash);
    EXPECT_LT(flash, fi);
}

TEST(TimingEngine, SpeContextBeatsFlashInferInReasoning)
{
    // The headline long-context-reasoning result at batch scale.
    TimingEngine e;
    const double fi =
        e.simulate(cloudConfig("FullAttn(FlashInfer)", 16, 2048, 16384))
            .throughput;
    const double ours =
        e.simulate(cloudConfig("SpeContext", 16, 2048, 16384))
            .throughput;
    EXPECT_GT(ours, fi);
}

TEST(TimingEngine, QuestClusterKvSingleRequestOnly)
{
    TimingEngine e;
    EXPECT_TRUE(
        e.simulate(cloudConfig("Quest", 2, 2048, 2048)).oom);
    EXPECT_FALSE(
        e.simulate(cloudConfig("Quest", 1, 2048, 2048)).oom);
    EXPECT_TRUE(
        e.simulate(cloudConfig("ClusterKV", 4, 2048, 2048)).oom);
}

TEST(TimingEngine, LayerwiseBaselinesPayRetrievalPerLayer)
{
    TimingEngine e;
    const auto r =
        e.simulate(cloudConfig("Quest", 1, 16384, 2048));
    ASSERT_FALSE(r.oom);
    EXPECT_GT(r.breakdown.at("retrieval"), 0.0);
}

TEST(TimingEngine, BaselineRetrievalWorseThanFlashInferInReasoning)
{
    // Fig. 1(b)/Fig. 10(a): with long generation, prompt-preprocessing
    // baselines fall behind full-attention FlashInfer because of
    // per-layer retrieval sync plus retained new KV.
    TimingEngine e;
    const double quest =
        e.simulate(cloudConfig("Quest", 1, 2048, 16384)).throughput;
    const double fi =
        e.simulate(cloudConfig("FullAttn(FlashInfer)", 1, 2048, 16384))
            .throughput;
    EXPECT_LT(quest, fi);
}

TEST(TimingEngine, SpeContextSlightlySlowerThanFlashInferOnInputScenario)
{
    // §7.3.1: in the long-context *input* scenario at single request,
    // ours is not faster than FlashInfer (retrieval head overhead, no
    // KV growth to save) — within 2x either way.
    TimingEngine e;
    const double fi =
        e.simulate(cloudConfig("FullAttn(FlashInfer)", 1, 32768, 2048))
            .throughput;
    const double ours =
        e.simulate(cloudConfig("SpeContext", 1, 32768, 2048))
            .throughput;
    EXPECT_GT(ours, 0.5 * fi);
    EXPECT_LT(ours, 2.5 * fi);
}

TEST(TimingEngine, AblationStaircase)
{
    // Fig. 11: HF < +C1 < +C1+C2 < +C1+C2+C3 on an
    // offload-constrained workload.
    TimingEngine e;
    SystemOptions o;

    o.features = {true, false, false};
    const double c1 =
        e.simulate(cloudConfig("SpeContext", 32, 2048, 16384, o))
            .throughput;
    o.features = {true, true, false};
    const double c12 =
        e.simulate(cloudConfig("SpeContext", 32, 2048, 16384, o))
            .throughput;
    o.features = {true, true, true};
    const double c123 =
        e.simulate(cloudConfig("SpeContext", 32, 2048, 16384, o))
            .throughput;

    const double hf =
        e.simulate(cloudConfig("FullAttn(Eager)", 32, 2048, 16384))
            .throughput;

    EXPECT_GT(c1, hf);
    EXPECT_GE(c12, c1);
    EXPECT_GE(c123, c12);
}

TEST(TimingEngine, ElasticOverlapReducesDecodeTime)
{
    TimingEngine e;
    // Edge setting where the budget transfer exceeds per-step compute
    // so the reuse fraction is on the critical path. (With small
    // budgets the async stream hides the transfer entirely and the
    // overlap knob is — correctly — irrelevant.)
    TimingConfig c;
    c.llm = model::reasoningLlama32_1bGeometry();
    c.hw = sim::HardwareSpec::edge4060Capped4G();
    c.batch = 1;
    c.prompt_len = 2048;
    c.gen_len = 32768;
    SystemOptions o;
    o.budget = 8192;
    o.features = {true, true, false}; // static placement: all offloaded

    o.elastic_overlap = 0.0;
    c.system = SystemRegistry::create("SpeContext", o);
    const double slow = e.simulate(c).decode_seconds;
    o.elastic_overlap = 0.9;
    c.system = SystemRegistry::create("SpeContext", o);
    const double fast = e.simulate(c).decode_seconds;
    EXPECT_LT(fast, slow);
}

TEST(TimingEngine, AdaptiveBeatsStaticOnGrowingSequence)
{
    // Challenge-3: a static policy that must pick all-CPU up front
    // loses to adaptive placement that keeps layers resident early.
    TimingEngine e;
    TimingConfig c;
    c.llm = model::reasoningLlama32_1bGeometry();
    c.hw = sim::HardwareSpec::edge4060Capped4G();
    c.batch = 1;
    c.prompt_len = 2048;
    c.gen_len = 32768;
    SystemOptions o;
    o.budget = 8192;         // transfers on the critical path
    o.elastic_overlap = 0.3; // low reuse: diffs stay expensive

    o.features = {true, true, true};
    c.system = SystemRegistry::create("SpeContext", o);
    const double adaptive = e.simulate(c).throughput;
    o.features = {true, true, false};
    c.system = SystemRegistry::create("SpeContext", o);
    const double static_tp = e.simulate(c).throughput;
    EXPECT_GE(adaptive, static_tp);
}

TEST(TimingEngine, CpuCapacityOomDetected)
{
    TimingEngine e;
    TimingConfig c = cloudConfig("SpeContext", 64, 32768, 32768);
    c.hw.cpu_mem_bytes = 8LL << 30; // shrink host memory
    const auto r = e.simulate(c);
    EXPECT_TRUE(r.oom);
    EXPECT_FALSE(r.oom_reason.empty());
}

TEST(TimingEngine, ThroughputCountsGeneratedTokens)
{
    TimingEngine e;
    const auto r =
        e.simulate(cloudConfig("FullAttn(FlashInfer)", 4, 2048, 4096));
    ASSERT_FALSE(r.oom);
    const double expect =
        4.0 * 4096 / (r.prefill_seconds + r.decode_seconds);
    EXPECT_NEAR(r.throughput, expect, 1e-6);
    EXPECT_GT(r.decode_throughput, r.throughput);
}

// ------------------------------------------ eviction systems (new)

TEST(TimingEngine, EvictionSystemsNeverPayTransfers)
{
    // H2O and StreamingLLM hold a budget-bounded cache in HBM: no
    // retrieval fetch, no PCIe, no OOM even at [32k, 32k] batch 64.
    TimingEngine e;
    for (const char *sys : {"H2O", "StreamingLLM"}) {
        const auto r = e.simulate(cloudConfig(sys, 64, 32768, 32768));
        ASSERT_FALSE(r.oom) << sys;
        EXPECT_EQ(r.breakdown.count("transfer"), 0u) << sys;
        EXPECT_EQ(r.breakdown.count("retrieval"), 0u) << sys;
        EXPECT_EQ(r.final_gpu_layers, 32); // everything stays resident
    }
}

TEST(TimingEngine, StreamingLlmFasterThanH2OFasterThanShadowKV)
{
    // Decreasing per-step overhead: ShadowKV pays per-layer retrieval
    // + V fetch, H2O a cheap on-GPU eviction scan, StreamingLLM
    // nothing.
    TimingEngine e;
    const double shadow =
        e.simulate(cloudConfig("ShadowKV", 4, 2048, 16384)).throughput;
    const double h2o =
        e.simulate(cloudConfig("H2O", 4, 2048, 16384)).throughput;
    const double stream =
        e.simulate(cloudConfig("StreamingLLM", 4, 2048, 16384))
            .throughput;
    EXPECT_GT(h2o, shadow);
    EXPECT_GE(stream, h2o);
}

TEST(TimingEngine, H2OPaysEvictionUpkeep)
{
    TimingEngine e;
    const auto r = e.simulate(cloudConfig("H2O", 4, 2048, 4096));
    ASSERT_FALSE(r.oom);
    EXPECT_GT(r.breakdown.at("evict"), 0.0);
    EXPECT_GT(r.breakdown.at("preprocess"), 0.0);
}

} // namespace
} // namespace specontext
