/**
 * @file
 * Tests of the shared-prefix KV cache radix tree: block-aligned
 * match/insert/release, refcount-protected eviction, LRU ordering,
 * and byte-budget enforcement (including the budget-0 disabled mode
 * and shrink-under-pressure via setBudget).
 */
#include <gtest/gtest.h>

#include <vector>

#include "kvcache/prefix_tree.h"

namespace specontext {
namespace {

using kv::PrefixHandle;
using kv::PrefixMatch;
using kv::PrefixTree;
using kv::PrefixTreeConfig;

constexpr int64_t kPage = 4;
constexpr int64_t kBytesPerToken = 10;
constexpr int64_t kBlockBytes = kPage * kBytesPerToken;

PrefixTreeConfig
cfgWith(int64_t budget_blocks)
{
    PrefixTreeConfig c;
    c.page_size = kPage;
    c.bytes_per_token = kBytesPerToken;
    c.budget_bytes = budget_blocks * kBlockBytes;
    return c;
}

/** n tokens starting at `base` (distinct sequences per base). */
std::vector<int32_t>
seq(int32_t base, int64_t n)
{
    std::vector<int32_t> out;
    out.reserve(n);
    for (int64_t i = 0; i < n; ++i)
        out.push_back(base + static_cast<int32_t>(i));
    return out;
}

// ------------------------------------------------------ match/insert

TEST(PrefixTree, EmptyTreeMatchesNothing)
{
    PrefixTree tree(cfgWith(8));
    const PrefixMatch m = tree.match(seq(0, 10));
    EXPECT_EQ(m.hit_tokens, 0);
    EXPECT_EQ(m.reserved_bytes, 0);
    EXPECT_EQ(tree.bytes(), 0);
    EXPECT_EQ(tree.nodeCount(), 0);
}

TEST(PrefixTree, InsertThenMatchIsBlockAligned)
{
    PrefixTree tree(cfgWith(8));
    // 10 tokens at page 4 -> only 2 full blocks (8 tokens) cached.
    PrefixHandle h = tree.insert(seq(0, 10));
    EXPECT_EQ(h.pinnedTokens(), 8);
    EXPECT_EQ(tree.residentTokens(), 8);
    EXPECT_EQ(tree.nodeCount(), 2);
    EXPECT_EQ(tree.insertedTokens(), 8);

    const PrefixMatch full = tree.match(seq(0, 10));
    EXPECT_EQ(full.hit_tokens, 8);
    EXPECT_EQ(full.reserved_bytes, 8 * kBytesPerToken);
    // A shorter probe sharing the first block only.
    std::vector<int32_t> diverges = seq(0, 10);
    diverges[5] = 999; // inside block 1
    EXPECT_EQ(tree.match(diverges).hit_tokens, 4);
    // Probe shorter than one block can never match.
    EXPECT_EQ(tree.match(seq(0, 3)).hit_tokens, 0);
    tree.release(h);
}

TEST(PrefixTree, DivergingSuffixesShareThePrefixPath)
{
    PrefixTree tree(cfgWith(16));
    std::vector<int32_t> a = seq(0, 12);
    std::vector<int32_t> b = seq(0, 12);
    b[8] = 777; // diverge in block 2
    PrefixHandle ha = tree.insert(a);
    PrefixHandle hb = tree.insert(b);
    // Blocks: a = {0,1,2}, b reuses {0,1} and adds its own third.
    EXPECT_EQ(tree.nodeCount(), 4);
    EXPECT_EQ(tree.residentTokens(), 16);
    EXPECT_EQ(tree.match(a).hit_tokens, 12);
    EXPECT_EQ(tree.match(b).hit_tokens, 12);
    tree.release(ha);
    tree.release(hb);
}

TEST(PrefixTree, DisabledTreeIsANoOp)
{
    PrefixTree tree(cfgWith(0));
    EXPECT_FALSE(tree.enabled());
    PrefixHandle h = tree.insert(seq(0, 16));
    EXPECT_EQ(h.pinnedTokens(), 0);
    EXPECT_EQ(tree.bytes(), 0);
    EXPECT_EQ(tree.match(seq(0, 16)).hit_tokens, 0);
    tree.release(h); // harmless
}

// --------------------------------------------------- refcount/release

TEST(PrefixTree, ReleaseIsIdempotentAndDefaultHandleIsSafe)
{
    PrefixTree tree(cfgWith(8));
    PrefixHandle none;
    tree.release(none); // default handle: no-op

    PrefixHandle h = tree.insert(seq(0, 8));
    tree.release(h);
    EXPECT_EQ(h.pinnedTokens(), 0);
    tree.release(h); // cleared handle: no-op, not a double unpin
    EXPECT_EQ(tree.residentTokens(), 8);
}

TEST(PrefixTree, RefcountProtectsPinnedPathsFromEviction)
{
    PrefixTree tree(cfgWith(2)); // room for exactly 2 blocks
    PrefixHandle ha = tree.insert(seq(0, 8));
    EXPECT_EQ(ha.pinnedTokens(), 8);

    // B wants 2 different blocks; A's are pinned, so nothing can be
    // evicted and B's insertion is truncated to nothing.
    PrefixHandle hb = tree.insert(seq(1000, 8));
    EXPECT_EQ(hb.pinnedTokens(), 0);
    EXPECT_EQ(tree.match(seq(0, 8)).hit_tokens, 8);
    EXPECT_EQ(tree.match(seq(1000, 8)).hit_tokens, 0);
    tree.release(hb);

    // Once A is released its blocks are evictable and B fits.
    tree.release(ha);
    PrefixHandle hb2 = tree.insert(seq(1000, 8));
    EXPECT_EQ(hb2.pinnedTokens(), 8);
    EXPECT_EQ(tree.match(seq(0, 8)).hit_tokens, 0); // A evicted
    EXPECT_EQ(tree.evictedTokens(), 8);
    tree.release(hb2);
}

TEST(PrefixTree, EvictionIsLeastRecentlyReleasedFirst)
{
    PrefixTree tree(cfgWith(2));
    PrefixHandle ha = tree.insert(seq(0, 4));
    PrefixHandle hb = tree.insert(seq(1000, 4));
    tree.release(ha); // A released first...
    tree.release(hb);
    // ...but re-pinning A refreshes its stamp, so B is now the LRU.
    PrefixHandle ha2 = tree.insert(seq(0, 4));
    tree.release(ha2);

    PrefixHandle hc = tree.insert(seq(2000, 4));
    EXPECT_EQ(hc.pinnedTokens(), 4);
    EXPECT_EQ(tree.match(seq(0, 4)).hit_tokens, 4);    // A survives
    EXPECT_EQ(tree.match(seq(1000, 4)).hit_tokens, 0); // B evicted
    tree.release(hc);
}

TEST(PrefixTree, PinnedTokensTrackLiveHandles)
{
    PrefixTree tree(cfgWith(16));
    EXPECT_EQ(tree.pinnedTokens(), 0);
    PrefixHandle ha = tree.insert(seq(0, 8)); // 2 blocks
    EXPECT_EQ(tree.pinnedTokens(), 8);
    PrefixHandle hb = tree.insert(seq(0, 8)); // same path, repinned
    EXPECT_EQ(tree.pinnedTokens(), 8);        // counted once
    PrefixHandle hc = tree.insert(seq(0, 12)); // extends by 1 block
    EXPECT_EQ(tree.pinnedTokens(), 12);
    tree.release(ha);
    EXPECT_EQ(tree.pinnedTokens(), 12); // still pinned by hb/hc
    tree.release(hb);
    tree.release(hc);
    EXPECT_EQ(tree.pinnedTokens(), 0);
    EXPECT_EQ(tree.pinnedBytes(), 0);
    EXPECT_EQ(tree.residentTokens(), 12); // resident but idle
}

// ------------------------------------------------------------ budget

TEST(PrefixTree, BudgetBoundsResidencyAndTruncatesInsertions)
{
    PrefixTree tree(cfgWith(3));
    PrefixHandle h = tree.insert(seq(0, 40)); // wants 10 blocks
    EXPECT_EQ(h.pinnedTokens(), 12);          // got 3
    EXPECT_LE(tree.bytes(), tree.config().budget_bytes);
    EXPECT_EQ(tree.match(seq(0, 40)).hit_tokens, 12);
    tree.release(h);
    EXPECT_LE(tree.bytes(), tree.config().budget_bytes);
}

TEST(PrefixTree, SetBudgetShrinkEvictsUnreferencedSubtrees)
{
    PrefixTree tree(cfgWith(8));
    PrefixHandle h = tree.insert(seq(0, 32)); // 8 blocks resident
    tree.release(h);
    EXPECT_EQ(tree.residentTokens(), 32);

    tree.setBudget(2 * kBlockBytes);
    EXPECT_EQ(tree.residentTokens(), 8);
    EXPECT_LE(tree.bytes(), 2 * kBlockBytes);
    // Leaves go first, so the surviving blocks are the prefix head —
    // the path is still matchable end to end.
    EXPECT_EQ(tree.match(seq(0, 32)).hit_tokens, 8);

    tree.setBudget(0);
    EXPECT_EQ(tree.residentTokens(), 0);
    EXPECT_FALSE(tree.enabled());
}

TEST(PrefixTree, PinnedBytesMayExceedAShrunkenBudgetUntilRelease)
{
    PrefixTree tree(cfgWith(4));
    PrefixHandle h = tree.insert(seq(0, 16)); // 4 blocks, all pinned
    tree.setBudget(kBlockBytes);              // shrink below residency
    EXPECT_EQ(tree.residentTokens(), 16);     // pinned: nothing evicted
    tree.release(h);                          // now the budget binds
    EXPECT_LE(tree.bytes(), kBlockBytes);
}

// -------------------------------------------------------- validation

TEST(PrefixTree, ConstructorValidatesConfig)
{
    PrefixTreeConfig bad_page = cfgWith(4);
    bad_page.page_size = 0;
    EXPECT_THROW(PrefixTree{bad_page}, std::invalid_argument);

    PrefixTreeConfig bad_budget = cfgWith(4);
    bad_budget.budget_bytes = -1;
    EXPECT_THROW(PrefixTree{bad_budget}, std::invalid_argument);

    PrefixTreeConfig bad_bytes = cfgWith(4);
    bad_bytes.bytes_per_token = 0;
    EXPECT_THROW(PrefixTree{bad_bytes}, std::invalid_argument);
    // ...but bytes_per_token 0 is fine for a disabled cache.
    bad_bytes.budget_bytes = 0;
    EXPECT_NO_THROW(PrefixTree{bad_bytes});

    PrefixTree tree(cfgWith(4));
    EXPECT_THROW(tree.setBudget(-1), std::invalid_argument);
}

// -------------------------------------------------- matchAndPin

/** Drive `combined` through matchAndPin and `legacy` through the
 *  three-walk sequence it fuses (match -> resize -> match -> insert),
 *  applying `new_budget_blocks` inside the resize step of both, and
 *  assert every observable agrees. Returns the two handles. */
std::pair<PrefixHandle, PrefixHandle>
admitBothWays(PrefixTree &combined, PrefixTree &legacy,
              const std::vector<int32_t> &tokens,
              int64_t new_budget_blocks)
{
    // Legacy: walk 1 (estimate), resize, walk 2 (hit), walk 3 (insert).
    const PrefixMatch legacy_estimate = legacy.match(tokens);
    legacy.setBudget(new_budget_blocks * kBlockBytes);
    const PrefixMatch legacy_hit = legacy.match(tokens);
    PrefixHandle legacy_handle = legacy.insert(tokens);

    kv::MatchAndPinResult fused = combined.matchAndPin(
        tokens, [&](const PrefixMatch &estimate) {
            EXPECT_EQ(estimate.hit_tokens, legacy_estimate.hit_tokens);
            combined.setBudget(new_budget_blocks * kBlockBytes);
        });
    EXPECT_EQ(fused.estimate.hit_tokens, legacy_estimate.hit_tokens);
    EXPECT_EQ(fused.match.hit_tokens, legacy_hit.hit_tokens);
    EXPECT_EQ(fused.handle.pinnedTokens(),
              legacy_handle.pinnedTokens());
    EXPECT_EQ(combined.bytes(), legacy.bytes());
    EXPECT_EQ(combined.pinnedTokens(), legacy.pinnedTokens());
    EXPECT_EQ(combined.nodeCount(), legacy.nodeCount());
    EXPECT_EQ(combined.insertedTokens(), legacy.insertedTokens());
    EXPECT_EQ(combined.evictedTokens(), legacy.evictedTokens());
    return {std::move(fused.handle), std::move(legacy_handle)};
}

TEST(PrefixTree, MatchAndPinMatchesThreeWalkPath)
{
    // Parity pin: a sequence of admissions (shared prefixes, budget
    // shrinks and regrowth inside the resize callback, releases
    // between) must leave the fused and the three-walk trees in
    // bit-identical states at every step.
    PrefixTree combined(cfgWith(8)), legacy(cfgWith(8));

    auto [c1, l1] = admitBothWays(combined, legacy, seq(0, 12), 8);
    // Same family, longer prompt: hits the cached path.
    auto [c2, l2] = admitBothWays(combined, legacy, seq(0, 20), 8);
    combined.release(c1);
    legacy.release(l1);
    // Budget shrink inside the callback evicts released blocks in
    // both paths (the estimate / post-resize match divergence case).
    auto [c3, l3] = admitBothWays(combined, legacy, seq(100, 16), 2);
    combined.release(c2);
    legacy.release(l2);
    combined.release(c3);
    legacy.release(l3);
    EXPECT_EQ(combined.bytes(), legacy.bytes());
    EXPECT_EQ(combined.evictedTokens(), legacy.evictedTokens());
    // Regrow and re-admit the first family: identical matches again.
    auto [c4, l4] = admitBothWays(combined, legacy, seq(0, 20), 8);
    combined.release(c4);
    legacy.release(l4);
}

TEST(PrefixTree, MatchAndPinResizeEvictionShrinksTheMatch)
{
    // When the resize callback's budget shrink evicts part of the
    // estimated prefix, the pinned match must reflect the post-shrink
    // tree — the exact semantics of the legacy three-walk sequence.
    PrefixTree tree(cfgWith(8));
    PrefixHandle warm = tree.insert(seq(0, 32)); // 8 blocks resident
    tree.release(warm);                          // all evictable

    kv::MatchAndPinResult res = tree.matchAndPin(
        seq(0, 32), [&](const PrefixMatch &estimate) {
            EXPECT_EQ(estimate.hit_tokens, 32);
            tree.setBudget(2 * kBlockBytes); // evicts 6 of 8 blocks
        });
    EXPECT_EQ(res.estimate.hit_tokens, 32);
    EXPECT_EQ(res.match.hit_tokens, 2 * kPage);
    // The pin covers only what the post-shrink budget retains.
    EXPECT_EQ(res.handle.pinnedTokens(), 2 * kPage);
    tree.release(res.handle);
}

TEST(PrefixTree, MatchAndPinWithoutResizeEqualsInsert)
{
    PrefixTree a(cfgWith(4)), b(cfgWith(4));
    PrefixHandle ha = a.insert(seq(0, 16));
    kv::MatchAndPinResult rb = b.matchAndPin(seq(0, 16));
    EXPECT_EQ(rb.estimate.hit_tokens, 0);
    EXPECT_EQ(rb.match.hit_tokens, 0);
    EXPECT_EQ(ha.pinnedTokens(), rb.handle.pinnedTokens());
    EXPECT_EQ(a.bytes(), b.bytes());
    a.release(ha);
    b.release(rb.handle);
}

TEST(PrefixTree, MatchAndPinOnDisabledTreeIsANoOp)
{
    PrefixTree tree(cfgWith(0));
    bool resized = false;
    kv::MatchAndPinResult res =
        tree.matchAndPin(seq(0, 16), [&](const PrefixMatch &estimate) {
            EXPECT_EQ(estimate.hit_tokens, 0);
            resized = true;
        });
    EXPECT_TRUE(resized); // the callback still runs (budget revival)
    EXPECT_EQ(res.match.hit_tokens, 0);
    EXPECT_EQ(res.handle.pinnedTokens(), 0);
    EXPECT_EQ(tree.bytes(), 0);
    tree.release(res.handle); // default-constructed path: safe no-op
}

} // namespace
} // namespace specontext
