/**
 * @file
 * Tests of the speculative-decoding extension: losslessness of greedy
 * draft-and-verify, acceptance-rate behaviour vs distillation quality,
 * cache rollback, and composition with the retrieval head.
 */
#include <gtest/gtest.h>

#include "core/live_engine.h"
#include "core/speculative.h"
#include "model/distiller.h"

namespace specontext {
namespace {

struct SpecFixture
{
    model::ModelConfig cfg = model::tinyConfig(model::AttentionKind::GQA);
    model::Transformer llm = model::Transformer::randomInit(cfg, 42);
    model::Transformer dlm = model::distill(llm, {1.0f, 7});
    core::LiveEngine eng{llm};

    std::vector<int32_t>
    prompt(int64_t n, uint64_t seed = 5) const
    {
        Rng rng(seed);
        std::vector<int32_t> p(n);
        for (auto &t : p)
            t = static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2));
        return p;
    }
};

TEST(KVCacheTruncate, DropsTailOnly)
{
    auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    kv::KVCacheSet cache(cfg);
    auto llm = model::Transformer::randomInit(cfg, 1);
    llm.prefill({5, 6, 7, 8, 9}, cache);
    const float k0 = cache.layer(0).keyAt(1, 0)[0];
    cache.truncate(3);
    EXPECT_EQ(cache.sequenceLength(), 3);
    EXPECT_EQ(cache.layer(0).keyAt(1, 0)[0], k0); // prefix untouched
    cache.truncate(10); // no-op
    EXPECT_EQ(cache.sequenceLength(), 3);
}

TEST(KVCacheTruncate, RegeneratesIdenticalContinuation)
{
    // Truncate-then-refeed must be equivalent to never having fed the
    // dropped tokens — the property speculative rollback relies on.
    auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    auto llm = model::Transformer::randomInit(cfg, 2);

    kv::KVCacheSet a(cfg), b(cfg);
    llm.prefill({5, 6, 7}, a);
    llm.decodeStep(9, a);
    llm.decodeStep(10, a);
    a.truncate(3);
    Tensor la = llm.decodeStep(11, a);

    llm.prefill({5, 6, 7}, b);
    Tensor lb = llm.decodeStep(11, b);
    for (int64_t i = 0; i < la.numel(); ++i)
        EXPECT_EQ(la.data()[i], lb.data()[i]);
}

TEST(Speculative, LosslessVsGreedy)
{
    // With budget 0, speculative output must equal plain greedy
    // decoding token for token, whatever the acceptance rate.
    SpecFixture f;
    const auto p = f.prompt(32);
    const auto greedy = f.eng.generate(p, 24);
    core::SpeculativeDecoder dec(f.llm, f.dlm, {4, 0});
    const auto spec = dec.generate(p, 24);
    EXPECT_EQ(spec.tokens, greedy);
}

TEST(Speculative, LosslessAcrossDraftLengths)
{
    SpecFixture f;
    const auto p = f.prompt(24, 9);
    const auto greedy = f.eng.generate(p, 20);
    for (int64_t k : {1, 2, 3, 6, 8}) {
        core::SpeculativeDecoder dec(f.llm, f.dlm, {k, 0});
        EXPECT_EQ(dec.generate(p, 20).tokens, greedy)
            << "draft_len " << k;
    }
}

TEST(Speculative, AcceptanceRateWithinBounds)
{
    SpecFixture f;
    core::SpeculativeDecoder dec(f.llm, f.dlm, {4, 0});
    const auto r = dec.generate(f.prompt(32), 32);
    EXPECT_GE(r.acceptanceRate(), 0.0);
    EXPECT_LE(r.acceptanceRate(), 1.0);
    EXPECT_GE(r.tokensPerRound(), 1.0); // every round emits >= 1 token
    EXPECT_EQ(r.tokens.size(), 32u);
}

TEST(Speculative, BetterDlmAcceptsMore)
{
    // The §3.2 alignment claim seen through drafting: a higher-quality
    // distillation should agree with the teacher more often.
    SpecFixture f;
    const auto p = f.prompt(48, 21);
    auto rate = [&](float quality) {
        auto dlm = model::distill(f.llm, {quality, 7});
        core::SpeculativeDecoder dec(f.llm, dlm, {4, 0});
        return dec.generate(p, 48).acceptanceRate();
    };
    EXPECT_GE(rate(1.0f) + 1e-9, rate(0.0f));
}

TEST(Speculative, ComposesWithRetrievalHead)
{
    SpecFixture f;
    core::SpeculativeDecoder dec(f.llm, f.dlm, {4, 4096});
    const auto r = dec.generate(f.prompt(40), 16);
    EXPECT_EQ(r.tokens.size(), 16u);
    // Huge budget == full attention: still lossless vs greedy.
    EXPECT_EQ(r.tokens, f.eng.generate(f.prompt(40), 16));
}

TEST(Speculative, SparseVerificationRuns)
{
    SpecFixture f;
    core::SpeculativeDecoder dec(f.llm, f.dlm, {3, 24});
    const auto r = dec.generate(f.prompt(64), 20);
    EXPECT_EQ(r.tokens.size(), 20u);
    EXPECT_GT(r.drafted, 0);
}

TEST(Speculative, RejectsBadOptions)
{
    SpecFixture f;
    EXPECT_THROW(core::SpeculativeDecoder(f.llm, f.dlm, {0, 0}),
                 std::invalid_argument);
}

TEST(RetrievalHeadTruncate, RollbackMatchesFreshObserve)
{
    SpecFixture f;
    retrieval::RetrievalHead h1(f.dlm, {16}), h2(f.dlm, {16});
    const auto p = f.prompt(20, 31);
    h1.observe(p);
    h1.observe(5);
    h1.observe(6);
    h1.truncateTo(20);
    h2.observe(p);
    EXPECT_EQ(h1.cachedTokens(), h2.cachedTokens());
    EXPECT_EQ(h1.step(9).per_head, h2.step(9).per_head);
}

} // namespace
} // namespace specontext
