/**
 * @file
 * End-to-end integration tests tying the whole stack together: the
 * paper's qualitative claims that must hold on our substrate.
 */
#include <gtest/gtest.h>

#include "core/dataflow.h"
#include "core/live_engine.h"
#include "core/timing_engine.h"
#include "model/distiller.h"
#include "retrieval/cluster_kv.h"
#include "retrieval/quest.h"
#include "retrieval/retrieval_head.h"
#include "retrieval/shadow_kv.h"
#include "retrieval/streaming_llm.h"
#include "serving/batch_sweep.h"
#include "workload/metrics.h"
#include "workload/tasks.h"

namespace specontext {
namespace {

using model::AttentionKind;

struct Stack
{
    model::ModelConfig cfg = model::tinyConfig(AttentionKind::GQA);
    model::Transformer llm = model::Transformer::randomInit(cfg, 42);
    model::Transformer dlm = model::distill(llm, {1.0f, 7});
    core::LiveEngine eng{llm};
};

TEST(Integration, AccuracyConvergesToFullAttentionWithBudget)
{
    // Fig. 8's qualitative shape: our score approaches full attention
    // as the budget grows.
    Stack s;
    workload::TaskGenerator gen(s.cfg.vocab, 21);
    auto task = gen.triviaQa(192);
    task.answer_steps = 12;
    auto ref = workload::taskReference(s.eng, task);

    double prev = -1.0;
    for (int64_t budget : {16, 64, 160}) {
        retrieval::RetrievalHead head(s.dlm, {budget});
        auto run = s.eng.runWithSpeContext(ref, head);
        const auto score = workload::scoreTask(task, run);
        EXPECT_GE(score.score + 5.0, prev); // weakly increasing (5pt slack)
        prev = score.score;
    }
    EXPECT_GT(prev, 85.0); // near full attention at large budget
}

TEST(Integration, HeadLevelBeatsBatchLevel)
{
    // Fig. 5(a): head-level retrieval retains more attention mass
    // than batch-level at the same budget.
    Stack s;
    Rng rng(5);
    std::vector<int32_t> prompt;
    for (int i = 0; i < 192; ++i)
        prompt.push_back(
            static_cast<int32_t>(2 + rng.uniformInt(s.cfg.vocab - 2)));
    auto ref = s.eng.buildReference(prompt, 12, true);

    auto recallOf = [&](retrieval::RetrievalLevel level) {
        retrieval::RetrievalHead head(s.dlm, {48, level, 0});
        auto run = s.eng.runWithSpeContext(ref, head);
        double total = 0.0;
        for (size_t i = 0; i < ref.attention.size(); ++i) {
            total += workload::attentionRecall(
                run.step_selections[i], ref.attention[i],
                s.cfg.groups());
        }
        return total / static_cast<double>(ref.attention.size());
    };

    EXPECT_GE(recallOf(retrieval::RetrievalLevel::HeadLevel) + 0.02,
              recallOf(retrieval::RetrievalLevel::BatchLevel));
}

TEST(Integration, StreamingLlmLosesNeedles)
{
    // Permanent eviction drops mid-context facts that query-aware
    // methods keep — the accuracy argument for dynamic selection.
    Stack s;
    workload::TaskGenerator gen(s.cfg.vocab, 23);
    auto task = gen.triviaQa(256);
    task.answer_steps = 8;
    auto ref = workload::taskReference(s.eng, task);

    retrieval::StreamingLLMRetriever streaming(32, 4);
    auto run_s = s.eng.runWithRetriever(ref, streaming);
    const double recall_s = workload::needleRecall(
        run_s.step_selections, task.needle_positions);

    retrieval::RetrievalHead head(s.dlm, {32});
    auto run_h = s.eng.runWithSpeContext(ref, head);
    const double recall_h = workload::needleRecall(
        run_h.step_selections, task.needle_positions);

    // The needle sits in the middle of a 256-token context; a
    // 4+28-token sink/window cannot cover it.
    EXPECT_LT(recall_s, 0.1);
    EXPECT_GT(recall_h, recall_s);
}

TEST(Integration, AllAttentionKindsRunEndToEnd)
{
    for (auto kind : {AttentionKind::MHA, AttentionKind::GQA,
                      AttentionKind::MQA, AttentionKind::MLA}) {
        auto cfg = model::tinyConfig(kind);
        auto llm = model::Transformer::randomInit(cfg, 31);
        auto dlm = model::distill(llm, {1.0f, 9});
        core::LiveEngine eng(llm);

        Rng rng(8);
        std::vector<int32_t> prompt;
        for (int i = 0; i < 64; ++i)
            prompt.push_back(
                static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));
        auto ref = eng.buildReference(prompt, 6);

        retrieval::RetrievalHead head(dlm, {24});
        auto run = eng.runWithSpeContext(ref, head);
        EXPECT_EQ(run.tokens.size(), 6u)
            << model::attentionKindName(kind);
        EXPECT_GT(run.top1_agreement, 0.0)
            << model::attentionKindName(kind);
    }
}

TEST(Integration, ParetoFrontierShape)
{
    // Fig. 1(b): in the reasoning scenario, SpeContext must offer a
    // point with both higher throughput than the layer-wise baselines
    // and accuracy within a few points of full attention.
    Stack s;
    workload::TaskGenerator gen(s.cfg.vocab, 29);
    auto task = gen.hotpotQa(192);
    task.answer_steps = 12;
    auto ref = workload::taskReference(s.eng, task);

    retrieval::RetrievalHead head(s.dlm, {128});
    auto acc_ours =
        workload::scoreTask(task, s.eng.runWithSpeContext(ref, head))
            .score;

    core::TimingEngine te;
    core::TimingConfig tc;
    tc.llm = model::deepseekDistillLlama8bGeometry();
    tc.hw = sim::HardwareSpec::cloudA800();
    tc.batch = 1;
    tc.prompt_len = 2048;
    tc.gen_len = 16384;

    tc.system = core::SystemRegistry::create("SpeContext");
    const double tp_ours = te.simulate(tc).throughput;
    tc.system = core::SystemRegistry::create("Quest");
    const double tp_quest = te.simulate(tc).throughput;
    tc.system = core::SystemRegistry::create("ClusterKV");
    const double tp_ck = te.simulate(tc).throughput;

    EXPECT_GT(tp_ours, tp_quest);
    EXPECT_GT(tp_ours, tp_ck);
    EXPECT_GT(acc_ours, 75.0);
}

TEST(Integration, CloudHeadlineSpeedupOrder)
{
    // Table 3 headline: ours delivers a large multiple over eager full
    // attention at the same workload ([2k, 32k], best batch each).
    core::TimingEngine te;
    core::TimingConfig tc;
    tc.llm = model::deepseekDistillLlama8bGeometry();
    tc.hw = sim::HardwareSpec::cloudA800();
    tc.prompt_len = 2048;
    tc.gen_len = 32768;

    tc.system = core::SystemRegistry::create("FullAttn(Eager)");
    auto eager = serving::sweepBatches(te, tc, {4});
    tc.system = core::SystemRegistry::create("SpeContext");
    auto ours = serving::sweepBatches(te, tc, {32});
    ASSERT_TRUE(eager.feasible());
    ASSERT_TRUE(ours.feasible());
    const double speedup = ours.bestPoint().result.throughput /
                           eager.bestPoint().result.throughput;
    EXPECT_GT(speedup, 10.0); // paper: 24.89x; shape claim: >>1
}

TEST(Integration, EdgeSpeedupOverEagerOffload)
{
    // Fig. 10(b): on the 4 GB edge with [2k, 32k], full attention must
    // offload while SpeContext stays fast.
    core::TimingEngine te;
    core::TimingConfig tc;
    tc.llm = model::reasoningLlama32_1bGeometry();
    tc.hw = sim::HardwareSpec::edge4060Capped4G();
    tc.batch = 1;
    tc.prompt_len = 2048;
    tc.gen_len = 32768;

    core::SystemOptions offload;
    offload.allow_full_attention_offload = true; // §7.3.2 edge methodology
    tc.system = core::SystemRegistry::create("FullAttn(Eager)", offload);
    const auto eager = te.simulate(tc);
    tc.system = core::SystemRegistry::create("SpeContext");
    const auto ours = te.simulate(tc);
    ASSERT_FALSE(eager.oom);
    ASSERT_FALSE(ours.oom);
    EXPECT_GT(ours.throughput, 2.0 * eager.throughput);
}

TEST(Integration, RetrievalOverheadFractionSignificant)
{
    // Fig. 2(a): with the KV cache offloaded, the per-layer
    // retrieve-and-load of the baseline paradigm consumes a large
    // fraction (up to ~60 %) of the token's critical path.
    core::DataflowParams p;
    p.llm = model::llama31_8bGeometry();
    p.hw = sim::HardwareSpec::cloudA800();
    p.seq_len = 32768;
    p.budget = 2048;
    const auto serialized =
        simulateTokenDataflow(core::DataflowKind::FetchSparseKV, p);
    const auto ours = simulateTokenDataflow(
        core::DataflowKind::SpeContextElastic, p);

    const double rl_fraction =
        (serialized.by_tag.at("retrieval") +
         serialized.by_tag.at("sync") + serialized.exposed_transfer) /
        serialized.token_seconds;
    EXPECT_GT(rl_fraction, 0.3);
    EXPECT_LT(rl_fraction, 0.8);
    // And the same budget under SpeContext's dataflow mostly hides it.
    EXPECT_LT(ours.token_seconds, serialized.token_seconds);
}

} // namespace
} // namespace specontext
