/**
 * @file
 * Tests of workload generation, metrics, and the LongWriter proxy
 * scoring.
 */
#include <algorithm>

#include <gtest/gtest.h>

#include "model/distiller.h"
#include "retrieval/full_attention.h"
#include "retrieval/retrieval_head.h"
#include "workload/longwriter.h"
#include "workload/metrics.h"
#include "workload/tasks.h"

namespace specontext {
namespace {

TEST(Tasks, GeneratorsProduceValidPrompts)
{
    workload::TaskGenerator gen(256, 5);
    for (auto &t : gen.all(192)) {
        EXPECT_GE(t.prompt.size(), 192u);
        EXPECT_FALSE(t.needle_positions.empty());
        for (int64_t p : t.needle_positions) {
            EXPECT_GE(p, 0);
            EXPECT_LT(p, static_cast<int64_t>(t.prompt.size()));
        }
        for (int32_t tok : t.prompt) {
            EXPECT_GE(tok, 2);
            EXPECT_LT(tok, 256);
        }
    }
}

TEST(Tasks, NeedleTokensActuallyPlanted)
{
    workload::TaskGenerator gen(256, 6);
    auto t = gen.triviaQa(128);
    // The question repeats the fact's first key token.
    const int32_t key = t.prompt[t.needle_positions[0]];
    EXPECT_EQ(t.prompt[t.prompt.size() - 1], key);
}

TEST(Tasks, PassageCountPlantsExpectedCopies)
{
    workload::TaskGenerator gen(512, 7);
    auto t = gen.passageCount(256);
    EXPECT_GE(t.expected_count, 3);
    EXPECT_EQ(static_cast<int64_t>(t.needle_positions.size()),
              3 * t.expected_count);
}

TEST(Tasks, DeterministicAcrossGenerators)
{
    workload::TaskGenerator g1(256, 9), g2(256, 9);
    EXPECT_EQ(g1.twoWikiMqa(128).prompt, g2.twoWikiMqa(128).prompt);
}

TEST(Tasks, DifferentSeedsDiffer)
{
    workload::TaskGenerator g1(256, 1), g2(256, 2);
    EXPECT_NE(g1.triviaQa(128).prompt, g2.triviaQa(128).prompt);
}

TEST(Metrics, TrueTopKShapes)
{
    std::vector<Tensor> attn;
    Tensor a = Tensor::zeros({4, 10});
    a.at(0, 3) = 0.9f;
    a.at(1, 3) = 0.8f;
    a.at(2, 5) = 0.9f;
    a.at(3, 5) = 0.8f;
    attn.push_back(a);
    auto truth = workload::trueTopKPerHead(attn, 2, 1);
    ASSERT_EQ(truth.size(), 2u);
    EXPECT_EQ(truth[0], (std::vector<int64_t>{3}));
    EXPECT_EQ(truth[1], (std::vector<int64_t>{5}));
}

TEST(Metrics, HitRateFullCoverageIsOne)
{
    model::LayerSelection sel;
    sel.per_head = {{1, 2, 3}, {4, 5, 6}};
    std::vector<std::vector<int64_t>> truth = {{2, 3}, {4, 6}};
    EXPECT_DOUBLE_EQ(workload::hitRate(sel, truth), 1.0);
}

TEST(Metrics, HitRatePartial)
{
    model::LayerSelection sel;
    sel.per_head = {{1, 2}};
    std::vector<std::vector<int64_t>> truth = {{2, 9}};
    EXPECT_DOUBLE_EQ(workload::hitRate(sel, truth), 0.5);
}

TEST(Metrics, HitRateHeadMismatchThrows)
{
    model::LayerSelection sel;
    sel.per_head = {{1}};
    std::vector<std::vector<int64_t>> truth = {{1}, {2}};
    EXPECT_THROW(workload::hitRate(sel, truth), std::invalid_argument);
}

TEST(Metrics, AttentionRecallBounds)
{
    std::vector<Tensor> attn;
    Tensor a = Tensor::full({2, 4}, 0.25f);
    attn.push_back(a);
    model::LayerSelection all;
    all.per_head = {{0, 1, 2, 3}, {0, 1, 2, 3}};
    EXPECT_NEAR(workload::attentionRecall(all, attn, 1), 1.0, 1e-6);
    model::LayerSelection half;
    half.per_head = {{0, 1}, {0, 1}};
    EXPECT_NEAR(workload::attentionRecall(half, attn, 1), 0.5, 1e-6);
}

TEST(Metrics, NeedleRecallEdgeCases)
{
    EXPECT_DOUBLE_EQ(workload::needleRecall({}, {1, 2}), 1.0);
    model::LayerSelection sel;
    sel.per_head = {{1, 2, 3}};
    EXPECT_DOUBLE_EQ(workload::needleRecall({sel}, {}), 1.0);
    EXPECT_DOUBLE_EQ(workload::needleRecall({sel}, {2, 9}), 0.5);
}

TEST(TaskScoring, FullAttentionScoresHundred)
{
    auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    auto llm = model::Transformer::randomInit(cfg, 42);
    core::LiveEngine eng(llm);
    workload::TaskGenerator gen(cfg.vocab, 11);
    auto task = gen.triviaQa(96);
    task.answer_steps = 8;
    auto ref = workload::taskReference(eng, task);
    retrieval::FullAttentionRetriever full;
    auto run = eng.runWithRetriever(ref, full);
    const auto s = workload::scoreTask(task, run);
    EXPECT_DOUBLE_EQ(s.answer_agreement, 1.0);
    // Full attention selects everything -> needle recall 1.
    EXPECT_NEAR(s.score, 100.0, 1e-6);
}

TEST(TaskScoring, SparseScoreBetweenZeroAndHundred)
{
    auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    auto llm = model::Transformer::randomInit(cfg, 42);
    auto dlm = model::distill(llm, {1.0f, 7});
    core::LiveEngine eng(llm);
    workload::TaskGenerator gen(cfg.vocab, 12);
    auto task = gen.hotpotQa(128);
    task.answer_steps = 8;
    auto ref = workload::taskReference(eng, task);
    retrieval::RetrievalHead head(dlm, {32});
    auto run = eng.runWithSpeContext(ref, head);
    const auto s = workload::scoreTask(task, run);
    EXPECT_GE(s.score, 0.0);
    EXPECT_LE(s.score, 100.0);
}

TEST(LongWriter, TaskConstruction)
{
    auto t = workload::makeLongWriterTask(256, 3);
    EXPECT_EQ(t.prompt.size(), 96u);
    EXPECT_EQ(t.plan_keywords.size(), 6u);
    // Keywords appear in the prompt.
    for (int32_t k : t.plan_keywords) {
        EXPECT_NE(std::find(t.prompt.begin(), t.prompt.end(), k),
                  t.prompt.end());
    }
}

TEST(LongWriter, FullAttentionRowScoresNearFive)
{
    auto t = workload::makeLongWriterTask(256, 3);
    std::vector<int32_t> out;
    for (int i = 0; i < 64; ++i)
        out.push_back(t.plan_keywords[i % t.plan_keywords.size()] + i % 7);
    // Scoring full output against itself with no forced metrics.
    const auto s = workload::scoreLongWriter(t, out, out, nullptr);
    EXPECT_NEAR(s.accuracy, 5.0, 1e-9);
    EXPECT_NEAR(s.coherence, 5.0, 1e-9);
    EXPECT_NEAR(s.reading_experience, 5.0, 1e-9);
    EXPECT_LE(s.average, 5.0);
}

TEST(LongWriter, DegenerateRepetitionPenalized)
{
    auto t = workload::makeLongWriterTask(256, 4);
    std::vector<int32_t> good, bad;
    for (int i = 0; i < 60; ++i) {
        good.push_back(2 + (i * 37) % 200);
        bad.push_back(5); // constant loop
    }
    const auto sg = workload::scoreLongWriter(t, good, good, nullptr);
    const auto sb = workload::scoreLongWriter(t, good, bad, nullptr);
    EXPECT_GT(sg.clarity, sb.clarity);
    EXPECT_GT(sg.breadth_depth, sb.breadth_depth);
}

TEST(LongWriter, ForcedMetricsPropagate)
{
    auto t = workload::makeLongWriterTask(256, 5);
    std::vector<int32_t> out(32, 7);
    core::LiveGenResult forced;
    forced.top1_agreement = 0.8;
    forced.mean_kl = 0.1;
    const auto s = workload::scoreLongWriter(t, out, out, &forced);
    EXPECT_NEAR(s.accuracy, 4.0, 1e-9);
    EXPECT_LT(s.reading_experience, 5.0);
}

} // namespace
} // namespace specontext
