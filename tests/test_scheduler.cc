/**
 * @file
 * Tests of the unified serving::Scheduler: deterministic victim
 * selection (policy keys + the (progress, arrival, id) total-order
 * tie-break), zero-preemption parity of Optimistic with Reserve under
 * light load, preemption firing and full recovery under overload, the
 * current-footprint admission queries, and the prefix-cache reload
 * cost knob.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "serving/cluster.h"
#include "serving/scheduler.h"
#include "serving/server.h"
#include "workload/trace.h"

namespace specontext {
namespace {

using serving::Cluster;
using serving::ClusterConfig;
using serving::ClusterResult;
using serving::ReplicaConfig;
using serving::Request;
using serving::Scheduler;
using serving::SchedulerConfig;
using serving::SchedulerMode;
using serving::VictimPolicy;

core::TimingConfig
cloudTiming(const core::SystemOptions &opts = {})
{
    core::TimingConfig cfg;
    cfg.llm = model::deepseekDistillLlama8bGeometry();
    cfg.hw = sim::HardwareSpec::cloudA800();
    cfg.system = core::SystemRegistry::create("FullAttn(FlashAttn)", opts);
    return cfg;
}

ReplicaConfig
cloudReplica(SchedulerMode mode,
             VictimPolicy victim = VictimPolicy::LastAdmitted,
             int64_t cache_budget = 0,
             const core::SystemOptions &opts = {})
{
    ReplicaConfig rc;
    rc.timing = cloudTiming(opts);
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = cache_budget;
    rc.scheduler_mode = mode;
    rc.victim_policy = victim;
    return rc;
}

Request
makeActive(int64_t id, double arrival, double last_admit,
           int64_t generated, int64_t cached = 0)
{
    Request r;
    r.id = id;
    r.arrival_seconds = arrival;
    r.prompt_len = 1024;
    r.gen_len = 4096;
    r.admit_seconds = last_admit;
    r.last_admit_seconds = last_admit;
    r.generated = generated;
    r.cached_prompt_len = cached;
    r.state = serving::RequestState::Decoding;
    return r;
}

/** A burst of growing-context conversations that oversubscribes one
 *  A800's KV headroom — preemption must fire. */
std::vector<Request>
overloadTrace(int64_t sessions = 6)
{
    workload::MultiTurnTraceConfig mt;
    mt.base.num_requests = sessions;
    mt.base.arrival_rate_per_s = 1.0;
    mt.base.seed = 3;
    mt.turns = 4;
    mt.first_prompt_lo = 2048;
    mt.first_prompt_hi = 8192;
    mt.gen_lo = 4096;
    mt.gen_hi = 16384;
    mt.think_time_mean_s = 10.0;
    return workload::multiTurnTrace(mt);
}

// ------------------------------------------------ victim selection

TEST(Scheduler, VictimTieBreakIsProgressArrivalIdTotalOrder)
{
    // All policy primary keys equal -> the shared tie-break decides:
    // least progress first, then earliest arrival, then lowest id.
    Scheduler sched(cloudTiming(),
                    {SchedulerMode::Optimistic,
                     VictimPolicy::LastAdmitted,
                     serving::QueuePolicy::Fifo, 64});
    std::vector<Request> active;
    active.push_back(makeActive(7, 2.0, 10.0, 5));
    active.push_back(makeActive(3, 1.0, 10.0, 5)); // earlier arrival
    active.push_back(makeActive(9, 1.0, 10.0, 5)); // same arrival, id 9
    active.push_back(makeActive(4, 5.0, 10.0, 2)); // least progress
    EXPECT_EQ(active[sched.selectVictim(active)].id, 4);

    active.erase(active.begin() + 3);
    EXPECT_EQ(active[sched.selectVictim(active)].id, 3);

    active.erase(active.begin() + 1);
    // arrival 1.0 ids {9} vs arrival 2.0 id 7: arrival wins.
    EXPECT_EQ(active[sched.selectVictim(active)].id, 9);
}

TEST(Scheduler, VictimPolicyPrimaryKeys)
{
    std::vector<Request> active;
    active.push_back(makeActive(0, 0.0, 10.0, 8, 256)); // oldest admit
    active.push_back(makeActive(1, 1.0, 30.0, 2, 512)); // latest admit
    active.push_back(makeActive(2, 2.0, 20.0, 1, 128)); // least progress,
                                                        // fewest hits
    auto pick = [&](VictimPolicy p) {
        Scheduler sched(cloudTiming(),
                        {SchedulerMode::Optimistic, p,
                         serving::QueuePolicy::Fifo, 64});
        return active[sched.selectVictim(active)].id;
    };
    EXPECT_EQ(pick(VictimPolicy::LastAdmitted), 1);
    EXPECT_EQ(pick(VictimPolicy::ShortestProgress), 2);
    EXPECT_EQ(pick(VictimPolicy::FewestPrefixHitTokens), 2);
}

TEST(Scheduler, VictimFromEmptyBatchThrows)
{
    Scheduler sched(cloudTiming(),
                    {SchedulerMode::Optimistic,
                     VictimPolicy::LastAdmitted,
                     serving::QueuePolicy::Fifo, 64});
    EXPECT_THROW(sched.selectVictim({}), std::logic_error);
}

// ------------------------------------------- admission disciplines

TEST(Scheduler, OptimisticAdmitsOnCurrentWhereReserveDenies)
{
    // Fill the batch with requests whose final reservations exhaust
    // HBM but whose current contexts are tiny: Reserve must deny the
    // next candidate, Optimistic must admit it.
    const core::TimingConfig timing = cloudTiming();
    Scheduler reserve(timing, {SchedulerMode::Reserve,
                               VictimPolicy::LastAdmitted,
                               serving::QueuePolicy::Fifo, 64});
    Scheduler optimistic(timing, {SchedulerMode::Optimistic,
                                  VictimPolicy::LastAdmitted,
                                  serving::QueuePolicy::Fifo, 64});
    std::vector<Request> active;
    for (int64_t i = 0; i < 14; ++i) {
        Request r = makeActive(i, 0.0, 0.0, 1);
        r.prompt_len = 2048;
        r.gen_len = 32768; // ~35k-token booking each
        active.push_back(r);
    }
    // 15 x ~35k reserved tokens oversubscribe the ~496k-token KV
    // headroom an A800 leaves next to the 8B weights.
    Request cand = makeActive(99, 1.0, -1.0, 0);
    cand.prompt_len = 2048;
    cand.gen_len = 32768;
    EXPECT_FALSE(reserve.admit(active, cand).admit);
    EXPECT_TRUE(optimistic.admit(active, cand).admit);
    // And the decode-pressure query agrees the live batch still fits.
    EXPECT_TRUE(optimistic.nextDecodeTokenFits(active));
}

TEST(Scheduler, OptimisticStillHardRejectsFinalLengthInfeasible)
{
    // A request whose final context cannot fit even alone must deny
    // under both modes (Optimistic would otherwise livelock through
    // preempt/restore cycles).
    Scheduler optimistic(cloudTiming(),
                         {SchedulerMode::Optimistic,
                          VictimPolicy::LastAdmitted,
                          serving::QueuePolicy::Fifo, 64});
    Request huge = makeActive(0, 0.0, -1.0, 0);
    huge.prompt_len = 4096;
    huge.gen_len = 1000000; // ~1M-token final context
    EXPECT_FALSE(optimistic.feasibleAlone(huge));
    EXPECT_FALSE(optimistic.admit({}, huge).admit);
}

TEST(Scheduler, OptimisticGatesOnWorstCaseRestoreFeasibility)
{
    // Eager attention's prefill scratch grows O(S^2) with the
    // prefilled span: a request can be feasible at its prompt shape
    // yet impossible to *restore* (final-context prefill) after a
    // deep preemption. Optimistic must hard-deny it up front instead
    // of stranding it mid-generation; Reserve (which never restores)
    // keeps admitting it.
    core::TimingConfig timing = cloudTiming();
    timing.system = core::SystemRegistry::create("FullAttn(Eager)");
    Scheduler reserve(timing, {SchedulerMode::Reserve,
                               VictimPolicy::LastAdmitted,
                               serving::QueuePolicy::Fifo, 64});
    Scheduler optimistic(timing, {SchedulerMode::Optimistic,
                                  VictimPolicy::LastAdmitted,
                                  serving::QueuePolicy::Fifo, 64});
    Request r = makeActive(0, 0.0, -1.0, 0);
    r.prompt_len = 4096;  // scratch 2*32*4096^2 ~ 1 GB: fine
    r.gen_len = 40000;    // restore scratch 2*32*44096^2 ~ 124 GB: not
    EXPECT_TRUE(reserve.feasibleAlone(r));
    EXPECT_TRUE(reserve.admit({}, r).admit);
    EXPECT_TRUE(optimistic.feasibleAlone(r));
    EXPECT_FALSE(optimistic.admission().restoreFeasibleAlone(r));
    EXPECT_FALSE(optimistic.admit({}, r).admit);
    // FlashAttn has no quadratic scratch: both gates agree there.
    Scheduler flash(cloudTiming(), {SchedulerMode::Optimistic,
                                    VictimPolicy::LastAdmitted,
                                    serving::QueuePolicy::Fifo, 64});
    EXPECT_TRUE(flash.admission().restoreFeasibleAlone(r));
    EXPECT_TRUE(flash.admit({}, r).admit);
}

TEST(Scheduler, QueueTracksFinalAndLiveTokenTotals)
{
    Scheduler sched(cloudTiming(),
                    {SchedulerMode::Optimistic,
                     VictimPolicy::LastAdmitted,
                     serving::QueuePolicy::Fifo, 64});
    Request fresh = makeActive(0, 0.0, -1.0, 0);  // 1024 + 4096
    Request preempted = makeActive(1, 0.0, 2.0, 100); // restore 1124
    sched.enqueue(fresh);
    sched.enqueue(preempted);
    EXPECT_EQ(sched.queuedFinalKvTokens(), 2 * (1024 + 4096));
    EXPECT_EQ(sched.queuedLiveKvTokens(), 1024 + (1024 + 100));
    sched.pop();
    EXPECT_EQ(sched.queuedFinalKvTokens(), 1024 + 4096);
    EXPECT_EQ(sched.queuedLiveKvTokens(), 1024 + 100);
}

// ----------------------------------------------- end-to-end parity

TEST(Scheduler, OptimisticUnderLightLoadEqualsReserve)
{
    // Light load: admission never denies, so the optimistic discipline
    // makes the exact decisions Reserve does and the runs must be
    // bit-for-bit identical — the zero-preemption parity pin.
    workload::MultiTurnTraceConfig mt;
    mt.base.num_requests = 3;
    mt.base.arrival_rate_per_s = 0.005;
    mt.base.seed = 5;
    mt.turns = 3;
    mt.gen_lo = 512;
    mt.gen_hi = 2048;
    const auto trace = workload::multiTurnTrace(mt);

    core::TimingEngine engine;
    ClusterConfig reserve_cc, optimistic_cc;
    reserve_cc.replicas = {cloudReplica(SchedulerMode::Reserve)};
    optimistic_cc.replicas = {cloudReplica(SchedulerMode::Optimistic)};
    const ClusterResult a = Cluster(engine, reserve_cc).run(trace);
    const ClusterResult b = Cluster(engine, optimistic_cc).run(trace);

    EXPECT_EQ(b.fleet.preempt.preemptions, 0);
    EXPECT_EQ(b.fleet.preempt.restores, 0);
    EXPECT_EQ(b.fleet.preempt.recompute_tokens, 0);
    ASSERT_EQ(a.completed(), b.completed());
    EXPECT_EQ(a.fleet.iterations, b.fleet.iterations);
    EXPECT_EQ(a.fleet.makespan_seconds, b.fleet.makespan_seconds);
    for (int64_t i = 0; i < a.completed(); ++i) {
        const auto &ra = a.fleet.metrics.records()[i];
        const auto &rb = b.fleet.metrics.records()[i];
        EXPECT_EQ(ra.id, rb.id);
        EXPECT_EQ(ra.admit_seconds, rb.admit_seconds);
        EXPECT_EQ(ra.first_token_seconds, rb.first_token_seconds);
        EXPECT_EQ(ra.finish_seconds, rb.finish_seconds);
        EXPECT_EQ(rb.preemptions, 0);
    }
    // The summary's preemption fields stay at their zero sentinel.
    const auto sb = b.summary();
    EXPECT_EQ(sb.preempted_completed, 0);
    EXPECT_TRUE(sb.ttft_mean_by_preemptions.empty());
}

TEST(Scheduler, PreemptionFiresAndEveryRequestRecovers)
{
    core::TimingEngine engine;
    ClusterConfig cc;
    cc.replicas = {cloudReplica(SchedulerMode::Optimistic,
                                VictimPolicy::LastAdmitted,
                                8LL << 30)};
    const auto trace = overloadTrace();
    const ClusterResult r = Cluster(engine, cc).run(trace);

    EXPECT_GT(r.fleet.preempt.preemptions, 0);
    EXPECT_GT(r.fleet.preempt.restores, 0);
    EXPECT_GT(r.fleet.preempt.recompute_tokens, 0);
    // At drain every victim has been re-admitted (none rejected
    // below), and each restore charged its re-prefill.
    EXPECT_EQ(r.fleet.preempt.restores, r.fleet.preempt.preemptions);
    EXPECT_GE(r.fleet.preempt.restore_prefill_tokens,
              r.fleet.preempt.recompute_tokens);
    // Preemption must lose no request: everything completes (FIFO is
    // starvation-free and every request here is feasible alone).
    EXPECT_EQ(r.completed(),
              static_cast<int64_t>(trace.size()));
    EXPECT_TRUE(r.fleet.rejected.empty());

    const auto s = r.summary();
    EXPECT_GT(s.preempted_completed, 0);
    EXPECT_EQ(s.preemptions_total, r.fleet.preempt.preemptions);
    EXPECT_EQ(s.recompute_tokens, r.fleet.preempt.recompute_tokens);
    ASSERT_GT(s.ttft_mean_by_preemptions.size(), 1u);

    // Determinism: the same run again is bit-identical.
    const ClusterResult r2 = Cluster(engine, cc).run(trace);
    EXPECT_EQ(r2.fleet.makespan_seconds, r.fleet.makespan_seconds);
    EXPECT_EQ(r2.fleet.preempt.preemptions,
              r.fleet.preempt.preemptions);
}

TEST(Scheduler, OptimisticBeatsReserveGoodputOnOverloadBurst)
{
    // The headline: under a long-generation burst, packing on current
    // footprints (+ preemption) sustains higher goodput and far lower
    // TTFT than final-length booking.
    core::TimingEngine engine;
    const auto trace = overloadTrace();
    auto run = [&](SchedulerMode mode) {
        ClusterConfig cc;
        cc.replicas = {cloudReplica(mode, VictimPolicy::LastAdmitted,
                                    8LL << 30)};
        return Cluster(engine, cc).run(trace);
    };
    const auto reserve = run(SchedulerMode::Reserve).summary();
    const auto optimistic = run(SchedulerMode::Optimistic).summary();
    EXPECT_GT(optimistic.throughput_tokens_per_s,
              reserve.throughput_tokens_per_s);
    EXPECT_LT(optimistic.ttft_p99, reserve.ttft_p99);
}

// ------------------------------------------------ reload-cost knob

TEST(Scheduler, PrefixReloadKnobChargesCacheHits)
{
    // Same shared-prefix trace, same cache: charging hits at a finite
    // bandwidth must strictly lengthen the makespan vs free hits, and
    // leave hit counting itself untouched.
    workload::SharedPrefixTraceConfig pc;
    pc.base.num_requests = 24;
    pc.base.arrival_rate_per_s = 2.0;
    pc.base.seed = 9;
    pc.num_families = 2;
    pc.prefix_len = 2048;
    pc.suffix_lo = 32;
    pc.suffix_hi = 64;
    pc.gen_lo = 32;
    pc.gen_hi = 64;
    const auto trace = workload::sharedPrefixTrace(pc);

    core::TimingEngine engine;
    auto run = [&](double gbps) {
        core::SystemOptions opts;
        opts.prefix_reload_gbps = gbps;
        ClusterConfig cc;
        cc.replicas = {cloudReplica(SchedulerMode::Reserve,
                                    VictimPolicy::LastAdmitted,
                                    4LL << 30, opts)};
        return Cluster(engine, cc).run(trace);
    };
    const ClusterResult free_hits = run(0.0);
    const ClusterResult paid_hits = run(64.0);
    ASSERT_GT(free_hits.fleet.prefix.hit_tokens, 0);
    EXPECT_EQ(paid_hits.fleet.prefix.hit_tokens,
              free_hits.fleet.prefix.hit_tokens);
    EXPECT_GT(paid_hits.fleet.makespan_seconds,
              free_hits.fleet.makespan_seconds);
}

} // namespace
} // namespace specontext
