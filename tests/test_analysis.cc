/**
 * @file
 * Tests of the analysis engine over the obs feed: per-request phase
 * attribution (the bitwise accounting identity on a preemption-heavy
 * run), blame tables, ring-wrap truncation flagging (tiny ring, never
 * silently dropped, wrap marker in the Chrome trace), regime
 * classification (priority ladder pinned on hand-built signals,
 * determinism across identical runs, CSV export), and the purity
 * contract: analyzing a run leaves the simulation bit-identical.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/regime.h"
#include "serving/cluster.h"
#include "workload/trace.h"

namespace specontext {
namespace {

using obs::BlameMetric;
using obs::BlameRow;
using obs::BlameTable;
using obs::kPhaseCount;
using obs::kRegimeCount;
using obs::Phase;
using obs::PhaseBreakdown;
using obs::Regime;
using obs::RegimeConfig;
using obs::RegimeSignals;
using obs::RegimeTimeline;
using obs::RequestTimeline;
using obs::TraceAnalysis;

serving::ReplicaConfig
preemptingReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.allow_full_attention_offload = false;
    opts.prefix_reload_gbps = 200.0;
    rc.timing.system =
        core::SystemRegistry::create("FullAttn(FlashAttn)", opts);
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = 8LL << 30;
    rc.prefix_cache.page_size = 16;
    rc.scheduler_mode = serving::SchedulerMode::Optimistic;
    rc.victim_policy = serving::VictimPolicy::LastAdmitted;
    return rc;
}

std::vector<serving::Request>
overloadTrace()
{
    // bench_preemption's load=8.0 overload point (the test_obs
    // workload): known to preempt, so the preempt-stall and
    // restore-recompute phases are exercised, not vacuous.
    workload::MultiTurnTraceConfig mt;
    mt.base.num_requests = 12;
    mt.base.arrival_rate_per_s = 0.8;
    mt.base.seed = 11;
    mt.turns = 4;
    mt.first_prompt_lo = 2048;
    mt.first_prompt_hi = 8192;
    mt.followup_lo = 64;
    mt.followup_hi = 256;
    mt.gen_lo = 4096;
    mt.gen_hi = 16384;
    mt.think_time_mean_s = 15.0;
    return workload::multiTurnTrace(mt);
}

struct AnalyzedRun
{
    obs::Trace trace{obs::TraceConfig{1 << 18}};
    obs::CounterRegistry counters;
    obs::TimeseriesSampler sampler{&counters,
                                   obs::TimeseriesSamplerConfig{
                                       10.0, 1 << 14}};
    serving::ClusterResult baseline;
    serving::ClusterResult observed;
    TraceAnalysis analysis;
};

/** One overloaded 2-replica Optimistic run, unobserved and observed
 *  on identical inputs, analyzed once (shared across tests). */
const AnalyzedRun &
analyzedRun()
{
    static AnalyzedRun *run = [] {
        auto *r = new AnalyzedRun;
        const core::TimingEngine engine;
        const auto trace = overloadTrace();
        serving::ClusterConfig cc;
        cc.replicas = {preemptingReplica(), preemptingReplica()};
        cc.router.policy = serving::RouterPolicy::LeastKvLoad;
        r->baseline = serving::Cluster(engine, cc).run(trace);
        cc.obs = {&r->trace, &r->counters, &r->sampler};
        r->observed = serving::Cluster(engine, cc).run(trace);
        r->analysis = obs::analyzeTrace(r->trace);
        return r;
    }();
    return *run;
}

/** True when OBS_EVENT compiles to a no-op (nothing to analyze). */
bool
obsDisabled()
{
    return analyzedRun().trace.emitted() == 0;
}

// ---------------------------------------------------------------------
// Accounting identity
// ---------------------------------------------------------------------

TEST(AnalysisIdentity, ClosesBitwiseOnPreemptionHeavyRun)
{
    if (obsDisabled())
        GTEST_SKIP() << "observability compiled out";
    const AnalyzedRun &run = analyzedRun();
    // The run must actually preempt, or the stall/recompute phases of
    // the identity go untested.
    ASSERT_GT(run.observed.fleet.preempt.preemptions, 0);
    ASSERT_FALSE(run.analysis.complete.empty());
    EXPECT_EQ(run.analysis.dropped_events, 0u);
    EXPECT_FALSE(run.analysis.truncated());

    bool saw_preempted_timeline = false;
    for (const RequestTimeline &tl : run.analysis.complete) {
        // Bitwise (EXPECT_EQ on doubles, not NEAR): the decode phase
        // is the exact residual under the fixed fold, so the identity
        // holds to the last ulp or the timeline is not complete.
        EXPECT_EQ(tl.phases.phaseSum(), tl.e2eSeconds())
            << "request " << tl.request;
        EXPECT_EQ(tl.ttft_phases.phaseSum(), tl.ttftSeconds())
            << "request " << tl.request;
        if (tl.preemptions > 0) {
            saw_preempted_timeline = true;
            EXPECT_GT(tl.phases[Phase::PreemptStall], 0.0)
                << "request " << tl.request;
        }
    }
    EXPECT_TRUE(saw_preempted_timeline);
}

TEST(AnalysisIdentity, TimelineFieldsAreOrderedAndConsistent)
{
    if (obsDisabled())
        GTEST_SKIP() << "observability compiled out";
    const AnalyzedRun &run = analyzedRun();
    int64_t total_preemptions = 0;
    for (const RequestTimeline &tl : run.analysis.complete) {
        EXPECT_TRUE(tl.complete);
        EXPECT_TRUE(tl.incomplete_reason.empty());
        EXPECT_LE(tl.arrival_seconds, tl.enqueue_seconds);
        EXPECT_LE(tl.enqueue_seconds, tl.admit_seconds);
        EXPECT_LT(tl.admit_seconds, tl.first_token_seconds);
        EXPECT_LE(tl.first_token_seconds, tl.finish_seconds);
        EXPECT_GT(tl.prompt_len, 0);
        EXPECT_GT(tl.gen_len, 0);
        EXPECT_LE(tl.first_hit_tokens, tl.prefix_hit_tokens);
        // Every phase but the decode residual is a direct interval
        // measurement and can never be negative.
        for (size_t p = 0; p + 1 < kPhaseCount; ++p)
            EXPECT_GE(tl.phases.seconds[p], 0.0)
                << "request " << tl.request << " phase " << p;
        total_preemptions += tl.preemptions;
    }
    // Complete timelines account for every preemption the fleet saw
    // (nothing wrapped in this run).
    EXPECT_EQ(total_preemptions,
              run.observed.fleet.preempt.preemptions);
    // And every completed request got a timeline.
    EXPECT_EQ(static_cast<int64_t>(run.analysis.complete.size()),
              run.observed.summary().completed);
}

TEST(AnalysisIdentity, AnalyzedRunIsBitIdenticalToUnobserved)
{
    if (obsDisabled())
        GTEST_SKIP() << "observability compiled out";
    const AnalyzedRun &run = analyzedRun();
    const serving::ServingSummary a = run.baseline.summary();
    const serving::ServingSummary b = run.observed.summary();
    // analyzeTrace already ran over the observed ring by the time
    // this compares: attaching + analyzing must not have perturbed
    // one bit of the serving outcome.
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
    EXPECT_EQ(a.throughput_tokens_per_s, b.throughput_tokens_per_s);
    EXPECT_EQ(a.ttft_mean, b.ttft_mean);
    EXPECT_EQ(a.ttft_p99, b.ttft_p99);
    EXPECT_EQ(a.e2e_p99, b.e2e_p99);
    EXPECT_EQ(a.tpot_mean, b.tpot_mean);
    EXPECT_EQ(run.baseline.fleet.preempt.preemptions,
              run.observed.fleet.preempt.preemptions);
}

// ---------------------------------------------------------------------
// Blame tables
// ---------------------------------------------------------------------

TEST(AnalysisBlame, AllBucketFirstSharesSumToOneBucketsPartition)
{
    if (obsDisabled())
        GTEST_SKIP() << "observability compiled out";
    const AnalyzedRun &run = analyzedRun();
    for (const BlameMetric metric :
         {BlameMetric::E2E, BlameMetric::TTFT}) {
        const BlameTable table =
            obs::blameTable(run.analysis.complete, metric);
        ASSERT_FALSE(table.rows.empty());
        EXPECT_EQ(table.metric, metric);
        EXPECT_EQ(table.rows[0].bucket, "all");
        EXPECT_EQ(table.rows[0].count, run.analysis.complete.size());

        size_t preempt_total = 0;
        size_t prefix_total = 0;
        for (const BlameRow &row : table.rows) {
            EXPECT_GT(row.count, 0u) << row.bucket;
            EXPECT_LE(row.p50_seconds, row.p99_seconds) << row.bucket;
            double share_sum = 0.0;
            for (size_t p = 0; p < kPhaseCount; ++p)
                share_sum += row.mean_share[p];
            EXPECT_NEAR(share_sum, 1.0, 1e-9) << row.bucket;
            if (row.bucket.rfind("preempt=", 0) == 0 ||
                row.bucket.rfind("preempt>", 0) == 0)
                preempt_total += row.count;
            if (row.bucket.rfind("prefix=", 0) == 0)
                prefix_total += row.count;
        }
        // The preempt= and prefix= bucket families each partition the
        // complete set.
        EXPECT_EQ(preempt_total, run.analysis.complete.size());
        EXPECT_EQ(prefix_total, run.analysis.complete.size());
    }
}

TEST(AnalysisBlame, PercentileIsNearestRank)
{
    EXPECT_EQ(obs::percentileSeconds({}, 99.0), 0.0);
    EXPECT_EQ(obs::percentileSeconds({5.0}, 50.0), 5.0);
    // Nearest-rank over {1,2,3,4}: rank = ceil(p/100 * 4).
    EXPECT_EQ(obs::percentileSeconds({4.0, 2.0, 1.0, 3.0}, 50.0), 2.0);
    EXPECT_EQ(obs::percentileSeconds({4.0, 2.0, 1.0, 3.0}, 75.0), 3.0);
    EXPECT_EQ(obs::percentileSeconds({4.0, 2.0, 1.0, 3.0}, 99.0), 4.0);
    EXPECT_EQ(obs::percentileSeconds({4.0, 2.0, 1.0, 3.0}, 0.0), 1.0);
}

TEST(AnalysisBlame, PhaseShareSignatureIsPhaseCountWide)
{
    if (obsDisabled())
        GTEST_SKIP() << "observability compiled out";
    const AnalyzedRun &run = analyzedRun();
    const std::vector<double> sig = obs::phaseShareSignature(
        run.analysis.complete, BlameMetric::E2E);
    ASSERT_EQ(sig.size(), kPhaseCount);
    double sum = 0.0;
    for (const double s : sig) {
        EXPECT_GE(s, 0.0);
        sum += s;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(obs::phaseShareSignature({}, BlameMetric::E2E).size(),
              kPhaseCount);
}

// ---------------------------------------------------------------------
// Ring-wrap truncation
// ---------------------------------------------------------------------

TEST(AnalysisTruncation, TinyRingFlagsIncompleteNeverSilentlyTrims)
{
    obs::Trace ring({256});
    obs::CounterRegistry counters;
    const core::TimingEngine engine;
    serving::ClusterConfig cc;
    cc.replicas = {preemptingReplica(), preemptingReplica()};
    cc.router.policy = serving::RouterPolicy::LeastKvLoad;
    cc.obs = {&ring, &counters, nullptr};
    const serving::ClusterResult result =
        serving::Cluster(engine, cc).run(overloadTrace());
    if (ring.emitted() == 0)
        GTEST_SKIP() << "observability compiled out";
    ASSERT_GT(ring.dropped(), 0u);

    const TraceAnalysis analysis = obs::analyzeTrace(ring);
    EXPECT_TRUE(analysis.truncated());
    EXPECT_EQ(analysis.dropped_events, ring.dropped());
    // The wrapped lifecycles surface as incomplete with a reason —
    // they must not be silently dropped nor rendered as complete.
    EXPECT_FALSE(analysis.incomplete.empty());
    for (const RequestTimeline &tl : analysis.incomplete) {
        EXPECT_FALSE(tl.complete);
        EXPECT_FALSE(tl.incomplete_reason.empty())
            << "request " << tl.request;
    }
    // Fewer complete timelines than completed requests: the ring only
    // retained a suffix of the run.
    EXPECT_LT(static_cast<int64_t>(analysis.complete.size()),
              result.summary().completed);
    // Whatever did survive whole still closes the identity bitwise.
    for (const RequestTimeline &tl : analysis.complete) {
        EXPECT_EQ(tl.phases.phaseSum(), tl.e2eSeconds());
        EXPECT_EQ(tl.ttft_phases.phaseSum(), tl.ttftSeconds());
    }

    // The Chrome trace of a wrapped ring carries the explicit marker.
    const std::string path = "test_analysis_wrapped_trace.json";
    ASSERT_TRUE(obs::writeChromeTrace(ring, path, {"r0", "r1"}));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::jsonParse(buf.str(), doc, &err)) << err;
    bool saw_marker = false;
    for (const obs::JsonValue &e : doc.find("traceEvents")->array) {
        const obs::JsonValue *name = e.find("name");
        if (name && name->string.rfind("ring wrapped", 0) == 0) {
            saw_marker = true;
            const obs::JsonValue *args = e.find("args");
            ASSERT_TRUE(args);
            const obs::JsonValue *lost = args->find("events_lost");
            ASSERT_TRUE(lost);
            EXPECT_EQ(lost->number,
                      static_cast<double>(ring.dropped()));
        }
    }
    EXPECT_TRUE(saw_marker);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Regime classification
// ---------------------------------------------------------------------

TEST(RegimeClassifier, PriorityLadderPinnedOnHandBuiltSignals)
{
    const RegimeConfig cfg; // defaults: 4.0 / 0.5 / 1.0
    RegimeSignals s;
    // All quiet -> idle.
    EXPECT_EQ(obs::classifyWindow(s, cfg), Regime::Idle);
    // A warming replica outranks everything, even preemptions.
    s.warming_replicas = 1;
    s.preemptions = 3;
    EXPECT_EQ(obs::classifyWindow(s, cfg), Regime::WarmupBound);
    // A preemption is proof of KV pressure however the window looked.
    s.warming_replicas = 0;
    s.prefix_hit_tokens = 10000;
    EXPECT_EQ(obs::classifyWindow(s, cfg), Regime::KvBound);
    s.preemptions = 0;
    // Hits at >= cache_hit_share of admitted context -> cache-bound.
    s.prefill_tokens = 10000; // hits == prefill: share exactly 0.5
    EXPECT_EQ(obs::classifyWindow(s, cfg), Regime::CacheBound);
    // Below the share threshold the prefill test runs next.
    s.prefix_hit_tokens = 0;
    s.generated_tokens = 1000; // 10000 > 4.0 * 1000
    EXPECT_EQ(obs::classifyWindow(s, cfg), Regime::PrefillBound);
    s.generated_tokens = 2500; // 10000 == 4.0 * 2500: strict, not prefill
    EXPECT_EQ(obs::classifyWindow(s, cfg), Regime::DecodeBound);
    // Backlog beyond in-flight -> scheduler-bound.
    s.queue_depth = 65;
    s.in_flight = 64;
    EXPECT_EQ(obs::classifyWindow(s, cfg), Regime::SchedulerBound);
    s.queue_depth = 64; // == backlog * in_flight: strict, not scheduler
    EXPECT_EQ(obs::classifyWindow(s, cfg), Regime::DecodeBound);
    // Thresholds live in the config, not the ladder.
    RegimeConfig strict = cfg;
    strict.prefill_dominance = 16.0;
    s.queue_depth = 0;
    s.generated_tokens = 1000; // 10x: prefill at 4.0, decode at 16.0
    EXPECT_EQ(obs::classifyWindow(s, cfg), Regime::PrefillBound);
    EXPECT_EQ(obs::classifyWindow(s, strict), Regime::DecodeBound);
}

TEST(RegimeClassifier, DeterministicAcrossIdenticalRuns)
{
    if (obsDisabled())
        GTEST_SKIP() << "observability compiled out";
    const core::TimingEngine engine;
    const auto trace = overloadTrace();
    auto classify = [&] {
        obs::Trace ring({1 << 18});
        obs::CounterRegistry counters;
        obs::TimeseriesSampler sampler(
            &counters, obs::TimeseriesSamplerConfig{10.0, 1 << 14});
        serving::ClusterConfig cc;
        cc.replicas = {preemptingReplica(), preemptingReplica()};
        cc.router.policy = serving::RouterPolicy::LeastKvLoad;
        cc.obs = {&ring, &counters, &sampler};
        serving::Cluster(engine, cc).run(trace);
        return obs::classifyRegimes(sampler);
    };
    const RegimeTimeline a = classify();
    const RegimeTimeline b = classify();
    ASSERT_FALSE(a.windows.empty());
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (size_t i = 0; i < a.windows.size(); ++i) {
        EXPECT_EQ(a.windows[i].regime, b.windows[i].regime) << i;
        EXPECT_EQ(a.windows[i].t_start_seconds,
                  b.windows[i].t_start_seconds);
        EXPECT_EQ(a.windows[i].t_end_seconds,
                  b.windows[i].t_end_seconds);
        EXPECT_EQ(a.windows[i].signals.preemptions,
                  b.windows[i].signals.preemptions);
        EXPECT_EQ(a.windows[i].signals.prefill_tokens,
                  b.windows[i].signals.prefill_tokens);
    }
    for (size_t r = 0; r < kRegimeCount; ++r)
        EXPECT_EQ(a.occupancy[r], b.occupancy[r]) << r;
    EXPECT_EQ(a.total_seconds, b.total_seconds);
    // The overload run must classify some windows KV-bound, and the
    // occupancy vector is a distribution.
    EXPECT_GT(a.occupancy[size_t(Regime::KvBound)], 0.0);
    double sum = 0.0;
    for (size_t r = 0; r < kRegimeCount; ++r)
        sum += a.occupancy[r];
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RegimeClassifier, FewerThanTwoRowsYieldEmptyTimeline)
{
    obs::CounterRegistry counters;
    obs::TimeseriesSampler sampler(
        &counters, obs::TimeseriesSamplerConfig{1.0, 100});
    EXPECT_TRUE(obs::classifyRegimes(sampler).windows.empty());
    sampler.sample(0.0);
    const RegimeTimeline one = obs::classifyRegimes(sampler);
    EXPECT_TRUE(one.windows.empty());
    EXPECT_EQ(one.total_seconds, 0.0);
    EXPECT_EQ(one.dominantRegime(), Regime::Idle);
}

TEST(RegimeCsv, WritesHeaderAndOneRowPerWindow)
{
    if (obsDisabled())
        GTEST_SKIP() << "observability compiled out";
    const AnalyzedRun &run = analyzedRun();
    const RegimeTimeline timeline = obs::classifyRegimes(run.sampler);
    ASSERT_FALSE(timeline.windows.empty());
    const std::string path = "test_analysis_regimes.csv";
    ASSERT_TRUE(obs::writeRegimeCsv(timeline, path));
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.rfind("t_start_seconds,t_end_seconds,regime,", 0),
              0u);
    size_t rows = 0;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, timeline.windows.size());
    std::remove(path.c_str());
}

} // namespace
} // namespace specontext
