/**
 * @file
 * Cross-cutting property tests: invariants that must hold over swept
 * seeds, shapes, budgets and batch sizes rather than single examples.
 */
#include <gtest/gtest.h>

#include "core/live_engine.h"
#include "core/timing_engine.h"
#include "model/distiller.h"
#include "retrieval/retrieval_head.h"
#include "serving/batch_sweep.h"
#include "tensor/ops.h"

namespace specontext {
namespace {

using model::AttentionKind;

/** Seeds exercised by the multi-seed properties. */
const uint64_t kSeeds[] = {1, 17, 42, 1234, 98765};

class SeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeedSweep, SparseNeverBeatsFullOnItsOwnDistribution)
{
    // KL(full || sparse) is nonnegative and zero only under full
    // coverage; agreement is in [0, 1].
    const uint64_t seed = GetParam();
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    auto llm = model::Transformer::randomInit(cfg, seed);
    auto dlm = model::distill(llm, {1.0f, seed + 1});
    core::LiveEngine eng(llm);

    Rng rng(seed * 3 + 1);
    std::vector<int32_t> prompt;
    for (int i = 0; i < 96; ++i)
        prompt.push_back(
            static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));
    auto ref = eng.buildReference(prompt, 8);

    retrieval::RetrievalHead head(dlm, {24});
    auto run = eng.runWithSpeContext(ref, head);
    EXPECT_GE(run.mean_kl, 0.0);
    EXPECT_GE(run.top1_agreement, 0.0);
    EXPECT_LE(run.top1_agreement, 1.0);
}

TEST_P(SeedSweep, SelectionsAlwaysSortedUniqueInRange)
{
    const uint64_t seed = GetParam();
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    auto llm = model::Transformer::randomInit(cfg, seed);
    auto dlm = model::distill(llm, {0.8f, seed});
    retrieval::RetrievalHead head(dlm, {16});

    Rng rng(seed + 7);
    for (int i = 0; i < 48; ++i)
        head.observe(
            static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));
    for (int step = 0; step < 6; ++step) {
        auto sel = head.step(
            static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));
        for (const auto &h : sel.per_head) {
            EXPECT_TRUE(std::is_sorted(h.begin(), h.end()));
            EXPECT_TRUE(std::adjacent_find(h.begin(), h.end()) ==
                        h.end());
            for (int64_t p : h) {
                EXPECT_GE(p, 0);
                EXPECT_LT(p, head.cachedTokens());
            }
        }
    }
}

TEST_P(SeedSweep, RopeShiftInvarianceOnRandomVectors)
{
    const uint64_t seed = GetParam();
    Rng rng(seed);
    Tensor q = Tensor::randn({2, 16}, rng);
    Tensor k = Tensor::randn({2, 16}, rng);
    auto score = [&](int64_t tq, int64_t tk) {
        Tensor qq = q.clone(), kk = k.clone();
        ops::applyRope(qq, tq);
        ops::applyRope(kk, tk);
        return ops::dot(qq.row(0), kk.row(0), 16);
    };
    const int64_t d = static_cast<int64_t>(rng.uniformInt(64));
    EXPECT_NEAR(score(70, 30), score(70 + d, 30 + d), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::ValuesIn(kSeeds));

/** Timing-engine monotonicity sweeps. */
class BatchSweepProp : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(BatchSweepProp, DecodeTimeIncreasesWithBatch)
{
    core::TimingEngine e;
    core::TimingConfig c;
    c.llm = model::llama31_8bGeometry();
    c.hw = sim::HardwareSpec::cloudA800();
    c.system = core::SystemRegistry::create("FullAttn(FlashInfer)");
    c.prompt_len = 2048;
    c.gen_len = 1024;
    c.batch = GetParam();
    const auto small = e.simulate(c);
    c.batch = GetParam() * 2;
    const auto big = e.simulate(c);
    if (!small.oom && !big.oom) {
        EXPECT_GT(big.decode_seconds, small.decode_seconds);
        // But throughput should not fall off a cliff: batching helps.
        EXPECT_GT(big.throughput, small.throughput * 0.9);
    }
}

TEST_P(BatchSweepProp, SpeContextDecodeMonotoneInBudget)
{
    core::TimingEngine e;
    core::TimingConfig c;
    c.llm = model::llama31_8bGeometry();
    c.hw = sim::HardwareSpec::cloudA800();
    c.prompt_len = 2048;
    c.gen_len = 1024;
    c.batch = GetParam();
    double prev = 0.0;
    for (int64_t budget : {512, 1024, 2048, 4096}) {
        core::SystemOptions o;
        o.budget = budget;
        c.system = core::SystemRegistry::create("SpeContext", o);
        const auto r = e.simulate(c);
        ASSERT_FALSE(r.oom);
        EXPECT_GE(r.decode_seconds, prev);
        prev = r.decode_seconds;
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweepProp,
                         ::testing::Values(1, 2, 4, 8));

/** OOM monotonicity: shrinking GPU memory never un-OOMs a config. */
TEST(TimingProperties, OomMonotoneInGpuMemory)
{
    core::TimingEngine e;
    core::TimingConfig c;
    c.llm = model::llama31_8bGeometry();
    c.system = core::SystemRegistry::create("FullAttn(FlashInfer)");
    c.prompt_len = 16384;
    c.gen_len = 2048;
    c.batch = 8;
    bool was_oom = false;
    for (int64_t gb = 120; gb >= 16; gb -= 8) {
        c.hw = sim::HardwareSpec::cloudA800();
        c.hw.gpu_mem_bytes = gb << 30;
        const bool oom = e.simulate(c).oom;
        EXPECT_TRUE(!was_oom || oom)
            << "config un-OOMed while shrinking memory at " << gb
            << " GB";
        was_oom = oom;
    }
    EXPECT_TRUE(was_oom); // 16 GB cannot hold 8B weights + KV
}

/** Attention vs. brute force: decodeStep attention equals a direct
 *  softmax(QK^T)V computation on the same cache. */
TEST(TransformerProperties, AttentionMatchesBruteForce)
{
    auto cfg = model::tinyConfig(AttentionKind::MHA);
    cfg.layers = 1;
    cfg.ffn_hidden = 4; // minimize non-attention structure
    auto llm = model::Transformer::randomInit(cfg, 77);
    kv::KVCacheSet cache(cfg);
    llm.prefill({5, 9, 13, 21}, cache);

    model::StepTrace trace;
    trace.record_attention = true;
    llm.decodeStep(30, cache, nullptr, &trace);

    // Recompute attention weights for layer 0 / head 0 by hand.
    const auto &lc = cache.layer(0);
    // The trace row has ctx 5 (4 prompt + self); its probabilities
    // must match softmax of q.k/sqrt(d) over the cached keys. We only
    // verify the softmax-normalization and monotonic consistency:
    const Tensor &attn = trace.attention[0];
    for (int64_t h = 0; h < cfg.q_heads; ++h) {
        float sum = 0.0f;
        for (int64_t p = 0; p < attn.dim(1); ++p)
            sum += attn.at(h, p);
        EXPECT_NEAR(sum, 1.0f, 1e-4);
    }
    EXPECT_EQ(lc.size(), 5);
}

/** Wave scheduling equals direct simulation for divisible loads. */
TEST(ServingProperties, WaveDecompositionConsistent)
{
    core::TimingEngine e;
    core::TimingConfig c;
    c.llm = model::llama31_8bGeometry();
    c.hw = sim::HardwareSpec::cloudA800();
    c.system = core::SystemRegistry::create("SpeContext");
    c.prompt_len = 2048;
    c.gen_len = 2048;
    const double two_waves = serving::waveThroughput(e, c, 8, 4);
    c.batch = 4;
    const auto one = e.simulate(c);
    const double expected =
        8.0 * 2048 /
        (2.0 * (one.prefill_seconds + one.decode_seconds));
    EXPECT_NEAR(two_waves, expected, 1e-6);
}

} // namespace
} // namespace specontext
