/**
 * @file
 * Tests of KV cache storage, the Quest page index, and tier placement.
 */
#include <gtest/gtest.h>

#include "kvcache/kv_cache.h"
#include "kvcache/paged.h"
#include "kvcache/tiered.h"
#include "tensor/rng.h"

namespace specontext {
namespace {

kv::LayerKVCache
makeFilledCache(int64_t tokens, int64_t kv_heads = 2, int64_t hd = 4,
                uint64_t seed = 5)
{
    kv::LayerKVCache c(kv_heads, hd, false, 0);
    Rng rng(seed);
    std::vector<float> k(kv_heads * hd), v(kv_heads * hd);
    for (int64_t t = 0; t < tokens; ++t) {
        for (auto &x : k)
            x = rng.gaussian();
        for (auto &x : v)
            x = rng.gaussian();
        c.append(k.data(), v.data());
    }
    return c;
}

TEST(LayerKVCache, AppendAndRetrieve)
{
    kv::LayerKVCache c(2, 4, false, 0);
    std::vector<float> k = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<float> v = {9, 10, 11, 12, 13, 14, 15, 16};
    c.append(k.data(), v.data());
    EXPECT_EQ(c.size(), 1);
    EXPECT_FLOAT_EQ(c.keyAt(0, 0)[0], 1.0f);
    EXPECT_FLOAT_EQ(c.keyAt(0, 1)[0], 5.0f);
    EXPECT_FLOAT_EQ(c.valueAt(0, 1)[3], 16.0f);
}

TEST(LayerKVCache, LatentModeStoresCVectors)
{
    kv::LayerKVCache c(4, 8, true, 6);
    std::vector<float> latent = {1, 2, 3, 4, 5, 6};
    c.append(latent.data(), nullptr);
    EXPECT_EQ(c.kStride(), 6);
    EXPECT_EQ(c.vStride(), 0);
    EXPECT_FLOAT_EQ(c.latentAt(0)[5], 6.0f);
}

TEST(LayerKVCache, BytesFp16Accounting)
{
    kv::LayerKVCache c = makeFilledCache(10, 2, 4);
    // 10 tokens * (8 K + 8 V floats) * 2 bytes.
    EXPECT_EQ(c.bytesFp16(), 10 * 16 * 2);
}

TEST(LayerKVCache, ClearResets)
{
    kv::LayerKVCache c = makeFilledCache(5);
    c.clear();
    EXPECT_EQ(c.size(), 0);
    EXPECT_EQ(c.bytesFp16(), 0);
}

TEST(KVCacheSet, PerLayerConsistency)
{
    auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    kv::KVCacheSet set(cfg);
    EXPECT_EQ(set.layers(), cfg.layers);
    EXPECT_EQ(set.sequenceLength(), 0);
}

TEST(KVCacheSet, MlaConfigMakesLatentCaches)
{
    auto cfg = model::tinyConfig(model::AttentionKind::MLA);
    kv::KVCacheSet set(cfg);
    EXPECT_TRUE(set.layer(0).latentMode());
    EXPECT_EQ(set.layer(0).latentDim(), cfg.mla_latent_dim);
}

TEST(PagedKeyIndex, PageBoundsCoverExactly)
{
    auto cache = makeFilledCache(37, 2, 4);
    kv::PagedKeyIndex idx(8);
    idx.rebuild(cache, 37);
    EXPECT_EQ(idx.pages(), 5); // ceil(37/8)
    EXPECT_EQ(idx.summary(4, 0).begin, 32);
    EXPECT_EQ(idx.summary(4, 0).end, 37);
}

TEST(PagedKeyIndex, MinMaxSummariesBoundKeys)
{
    auto cache = makeFilledCache(32, 2, 4);
    kv::PagedKeyIndex idx(8);
    idx.rebuild(cache, 32);
    for (int64_t p = 0; p < idx.pages(); ++p) {
        for (int64_t h = 0; h < 2; ++h) {
            const auto &s = idx.summary(p, h);
            for (int64_t pos = s.begin; pos < s.end; ++pos) {
                const float *k = cache.keyAt(pos, h);
                for (int64_t d = 0; d < 4; ++d) {
                    EXPECT_LE(k[d], s.max_key[d]);
                    EXPECT_GE(k[d], s.min_key[d]);
                }
            }
        }
    }
}

TEST(PagedKeyIndex, UpperBoundDominatesTrueScores)
{
    // Quest's page score must upper-bound every member key's score.
    auto cache = makeFilledCache(64, 2, 4, 9);
    kv::PagedKeyIndex idx(16);
    idx.rebuild(cache, 64);
    Rng rng(10);
    std::vector<float> q(4);
    for (int trial = 0; trial < 20; ++trial) {
        for (auto &x : q)
            x = rng.gaussian();
        for (int64_t p = 0; p < idx.pages(); ++p) {
            for (int64_t h = 0; h < 2; ++h) {
                const float ub = idx.upperBoundScore(p, h, q.data());
                const auto &s = idx.summary(p, h);
                for (int64_t pos = s.begin; pos < s.end; ++pos) {
                    float dot = 0.0f;
                    const float *k = cache.keyAt(pos, h);
                    for (int64_t d = 0; d < 4; ++d)
                        dot += q[d] * k[d];
                    EXPECT_GE(ub, dot - 1e-4);
                }
            }
        }
    }
}

TEST(PagedKeyIndex, RejectsLatentCaches)
{
    kv::LayerKVCache latent(4, 8, true, 6);
    kv::PagedKeyIndex idx(8);
    EXPECT_THROW(idx.rebuild(latent, 0), std::logic_error);
}

TEST(TierPlacement, StartsAllGpu)
{
    kv::TierPlacement p(8);
    EXPECT_EQ(p.gpuLayers(), 8);
    EXPECT_EQ(p.cpuLayers(), 0);
}

TEST(TierPlacement, OffloadDeepestFirst)
{
    // Algorithm 2 offloads the last layers first (31st, 32nd ... in
    // the paper's Llama3-8B example).
    kv::TierPlacement p(4);
    EXPECT_EQ(p.offloadDeepestResident(), 3);
    EXPECT_EQ(p.offloadDeepestResident(), 2);
    EXPECT_EQ(p.gpuLayers(), 2);
    EXPECT_TRUE(p.onGpu(0));
    EXPECT_FALSE(p.onGpu(3));
}

TEST(TierPlacement, OffloadExhaustsAndReturnsMinusOne)
{
    kv::TierPlacement p(2);
    p.offloadDeepestResident();
    p.offloadDeepestResident();
    EXPECT_EQ(p.offloadDeepestResident(), -1);
}

TEST(TierPlacement, SetAll)
{
    kv::TierPlacement p(3);
    p.setAll(kv::Tier::CPU);
    EXPECT_EQ(p.cpuLayers(), 3);
}

} // namespace
} // namespace specontext
