/**
 * @file
 * Tests of the autoscaling control plane: warmup pricing through the
 * cold ElasticLoader, SLO validation, the three scaling policies as
 * pure decision rules, the obs-polling Controller's signal digestion,
 * and the elastic serving::Cluster machinery — above all the parity
 * pin that a never-scaled elastic fleet is bit-for-bit the fixed
 * fleet, so the elastic code path can never drift from the pinned
 * serving arithmetic.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "autoscale/controller.h"
#include "autoscale/policy.h"
#include "autoscale/slo.h"
#include "core/timing_engine.h"
#include "obs/counters.h"
#include "obs/sampler.h"
#include "serving/cluster.h"
#include "workload/trace.h"

namespace specontext {
namespace {

using autoscale::Controller;
using autoscale::ControllerConfig;
using autoscale::PredictivePolicy;
using autoscale::ScalePolicy;
using autoscale::Signals;
using autoscale::SloConfig;
using autoscale::TargetUtilizationPolicy;
using autoscale::ThresholdPolicy;
using serving::Cluster;
using serving::ClusterConfig;
using serving::ClusterResult;
using serving::FleetState;
using serving::ReplicaConfig;
using serving::Request;
using serving::RouterPolicy;
using serving::ScaleAction;
using serving::ScaleEvent;

ReplicaConfig
cloudReplica(const std::string &sys = "SpeContext")
{
    ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    rc.timing.system = core::SystemRegistry::create(sys);
    rc.max_batch = 64;
    return rc;
}

Request
makeRequest(int64_t id, double arrival, int64_t prompt, int64_t gen)
{
    Request r;
    r.id = id;
    r.arrival_seconds = arrival;
    r.prompt_len = prompt;
    r.gen_len = gen;
    return r;
}

/** FleetController that never scales — the parity pin's instrument. */
class HoldController final : public serving::FleetController
{
  public:
    int control(const FleetState &) override
    {
        ++ticks;
        return 0;
    }
    int ticks = 0;
};

// ------------------------------------------------------ warmup pricing

TEST(Autoscale, WarmupPricesWeightLoadThroughColdLoader)
{
    const ReplicaConfig rc = cloudReplica();
    const double w = serving::replicaWarmupSeconds(rc);
    EXPECT_GT(w, 0.0);
    // The cold loader bills the whole weight footprint over PCIe; the
    // token-equivalent rounding adds at most one token's bytes.
    const double expected =
        static_cast<double>(
            core::TimingEngine::weightFootprintBytes(rc.timing.llm)) /
        (rc.timing.hw.pcie_bw_gbps * 1e9);
    EXPECT_NEAR(w, expected, 1e-3);
    // Provisioning latency is additive.
    EXPECT_DOUBLE_EQ(serving::replicaWarmupSeconds(rc, 7.5), w + 7.5);
    EXPECT_THROW(serving::replicaWarmupSeconds(rc, -1.0),
                 std::invalid_argument);
    EXPECT_THROW(
        serving::replicaWarmupSeconds(
            rc, std::numeric_limits<double>::infinity()),
        std::invalid_argument);
    ReplicaConfig no_link = rc;
    no_link.timing.hw.pcie_bw_gbps = 0.0;
    EXPECT_THROW(serving::replicaWarmupSeconds(no_link),
                 std::invalid_argument);
}

// ------------------------------------------------------- slo validation

TEST(Autoscale, SloValidationRejectsDegenerateKnobs)
{
    SloConfig ok;
    EXPECT_NO_THROW(autoscale::validateSloConfig(ok));

    SloConfig bad_ttft = ok;
    bad_ttft.ttft_p99_target_seconds = 0.0;
    EXPECT_THROW(autoscale::validateSloConfig(bad_ttft),
                 std::invalid_argument);
    SloConfig bad_high = ok;
    bad_high.queue_depth_high = -1.0;
    EXPECT_THROW(autoscale::validateSloConfig(bad_high),
                 std::invalid_argument);
    SloConfig bad_low = ok;
    bad_low.queue_depth_low = -0.5;
    EXPECT_THROW(autoscale::validateSloConfig(bad_low),
                 std::invalid_argument);
    // No hysteresis band: low >= high must be rejected.
    SloConfig inverted = ok;
    inverted.queue_depth_low = inverted.queue_depth_high;
    EXPECT_THROW(autoscale::validateSloConfig(inverted),
                 std::invalid_argument);
}

// ------------------------------------------------------------- policies

Signals
baseSignals()
{
    Signals s;
    s.live = 2;
    s.min_replicas = 1;
    s.max_replicas = 8;
    return s;
}

TEST(Autoscale, ThresholdScalesUpOnPressureAndHoldsWhileWarming)
{
    ThresholdPolicy p;
    const SloConfig slo; // high = 4 per live replica
    Signals hot = baseSignals();
    hot.queued = 10; // 5 per live > 4
    EXPECT_EQ(p.desiredDelta(hot, slo), 1);
    // Capacity already on order suppresses a re-order.
    hot.warming = 1;
    EXPECT_EQ(p.desiredDelta(hot, slo), 0);
}

TEST(Autoscale, ThresholdScaleDownNeedsSustainedIdle)
{
    ThresholdPolicy p({/*consecutive_low_ticks=*/3, /*up_step=*/1});
    const SloConfig slo;
    Signals idle = baseSignals();
    idle.queued = 0;
    EXPECT_EQ(p.desiredDelta(idle, slo), 0); // streak 1
    EXPECT_EQ(p.desiredDelta(idle, slo), 0); // streak 2
    EXPECT_EQ(p.desiredDelta(idle, slo), -1); // streak 3: release
    // The streak restarts after a release...
    EXPECT_EQ(p.desiredDelta(idle, slo), 0);
    EXPECT_EQ(p.desiredDelta(idle, slo), 0);
    // ...and is broken by any tick inside the hysteresis band.
    Signals band = baseSignals();
    band.queued = 4; // 2 per live: between low (1) and high (4)
    EXPECT_EQ(p.desiredDelta(band, slo), 0);
    EXPECT_EQ(p.desiredDelta(idle, slo), 0); // streak back to 1
}

TEST(Autoscale, TargetUtilizationSizesFleetToOfferedLoad)
{
    TargetUtilizationPolicy p({/*target_utilization=*/0.5,
                               /*ewma_alpha=*/1.0});
    const SloConfig slo;
    Signals s = baseSignals();
    s.live = 1;
    s.in_flight = 1;
    s.completion_rate_per_s = 1.0; // mu = 1 req/s per replica
    s.arrival_rate_per_s = 2.0;
    // want = ceil(2 / (1 * 0.5)) = 4 replicas; 1 exists.
    EXPECT_EQ(p.desiredDelta(s, slo), 3);
    // Load gone: the same rule sheds capacity.
    Signals cold = s;
    cold.live = 4;
    cold.arrival_rate_per_s = 0.4;
    cold.completion_rate_per_s = 4.0; // mu stays 1 with alpha=1
    // want = ceil(0.4 / 0.5) = 1; 4 exist.
    EXPECT_EQ(p.desiredDelta(cold, slo), -3);
}

TEST(Autoscale, PredictiveOrdersAheadOfTheTrend)
{
    PredictivePolicy p({/*lookahead_seconds=*/30.0,
                        /*consecutive_low_ticks=*/2});
    const SloConfig slo; // high watermark 4
    Signals s = baseSignals();
    s.live = 1;
    s.queued = 2; // calm right now (2 per live <= 4)...
    s.queue_trend_per_s = 1.0; // ...but growing a request a second
    // Projected queue = 2 + 30 = 32 -> ceil(32/4) = 8 wanted, 1 held.
    EXPECT_EQ(p.desiredDelta(s, slo), 7);
    // Without the trend the same instant is a hold.
    Signals flat = s;
    flat.queue_trend_per_s = 0.0;
    PredictivePolicy q;
    EXPECT_EQ(q.desiredDelta(flat, slo), 0);
}

// ----------------------------------------------------------- controller

TEST(Autoscale, ControllerDigestsSignalsFromTheRegistry)
{
    obs::CounterRegistry reg;
    const auto q0 = reg.gauge("replica0.queue_depth");
    const auto f0 = reg.gauge("replica0.in_flight");
    const auto k0 = reg.gauge("replica0.live_kv_bytes");
    const auto e0 = reg.counter("replica0.enqueued_requests");
    const auto d0 = reg.counter("replica0.completed_requests");
    reg.set(q0, 6);
    reg.set(f0, 3);
    reg.set(k0, 1 << 20);
    reg.add(e0, 10);
    reg.add(d0, 4);

    ThresholdPolicy policy;
    Controller ctl({SloConfig{}, &policy, &reg, nullptr, 60.0});
    FleetState fs;
    fs.now_seconds = 5.0;
    fs.live = 1;
    fs.min_replicas = 1;
    fs.max_replicas = 4;
    ctl.control(fs);
    ASSERT_EQ(ctl.decisions().size(), 1u);
    const Signals &first = ctl.decisions()[0].signals;
    EXPECT_EQ(first.queued, 6);
    EXPECT_EQ(first.in_flight, 3);
    EXPECT_EQ(first.live_kv_bytes, 1 << 20);
    // First tick has no baseline: rates are 0, wait is pessimistic.
    EXPECT_DOUBLE_EQ(first.arrival_rate_per_s, 0.0);
    EXPECT_TRUE(std::isinf(first.est_wait_seconds));

    // Second tick: counter deltas over dt become rates, and a slot
    // registered mid-run (a scaled-up replica) is discovered.
    reg.add(e0, 20);
    reg.add(d0, 10);
    const auto q1 = reg.gauge("replica1.queue_depth");
    reg.set(q1, 2);
    fs.now_seconds = 15.0;
    ctl.control(fs);
    ASSERT_EQ(ctl.decisions().size(), 2u);
    const Signals &second = ctl.decisions()[1].signals;
    EXPECT_DOUBLE_EQ(second.arrival_rate_per_s, 2.0); // 20 over 10 s
    EXPECT_DOUBLE_EQ(second.completion_rate_per_s, 1.0);
    EXPECT_EQ(second.queued, 8); // replica0 (6) + replica1 (2)
    EXPECT_DOUBLE_EQ(second.est_wait_seconds, 8.0);

    // reset() forgets baselines and the log for a fresh run.
    ctl.reset();
    EXPECT_TRUE(ctl.decisions().empty());

    EXPECT_THROW(Controller({SloConfig{}, nullptr, &reg}),
                 std::invalid_argument);
    EXPECT_THROW(Controller({SloConfig{}, &policy, nullptr}),
                 std::invalid_argument);
}

// --------------------------------------------------- elastic machinery

TEST(Autoscale, NeverScaledElasticClusterMatchesFixedBitForBit)
{
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 48;
    tc.arrival_rate_per_s = 0.4;
    tc.seed = 11;
    const auto trace = workload::mixedLengthTrace(tc);

    ClusterConfig fixed_cfg;
    fixed_cfg.replicas = {cloudReplica(), cloudReplica()};
    fixed_cfg.router.policy = RouterPolicy::LeastKvLoad;
    const ClusterResult fixed = Cluster(e, fixed_cfg).run(trace);

    HoldController hold;
    ClusterConfig elastic_cfg = fixed_cfg;
    elastic_cfg.elastic.controller = &hold;
    elastic_cfg.elastic.min_replicas = 1;
    elastic_cfg.elastic.max_replicas = 4;
    elastic_cfg.elastic.control_period_seconds = 2.5;
    const ClusterResult elastic = Cluster(e, elastic_cfg).run(trace);

    // The controller ran — and the run is still bit-for-bit the fixed
    // fleet's: same placements, same per-request arithmetic.
    EXPECT_GT(hold.ticks, 0);
    EXPECT_TRUE(elastic.scale_events.empty());
    ASSERT_EQ(elastic.placements.size(), fixed.placements.size());
    for (size_t i = 0; i < fixed.placements.size(); ++i) {
        EXPECT_EQ(elastic.placements[i].request_id,
                  fixed.placements[i].request_id);
        EXPECT_EQ(elastic.placements[i].replica,
                  fixed.placements[i].replica);
    }
    EXPECT_EQ(elastic.completed(), fixed.completed());
    EXPECT_DOUBLE_EQ(elastic.fleet.makespan_seconds,
                     fixed.fleet.makespan_seconds);
    const auto sf = fixed.summary();
    const auto se = elastic.summary();
    EXPECT_DOUBLE_EQ(se.ttft_p99, sf.ttft_p99);
    EXPECT_DOUBLE_EQ(se.e2e_p99, sf.e2e_p99);
    EXPECT_DOUBLE_EQ(se.throughput_tokens_per_s,
                     sf.throughput_tokens_per_s);
    // Fixed fleets bill every slot for the whole run.
    EXPECT_DOUBLE_EQ(fixed.replica_seconds,
                     2.0 * fixed.fleet.makespan_seconds);
    EXPECT_DOUBLE_EQ(elastic.replica_seconds, fixed.replica_seconds);
}

TEST(Autoscale, ElasticClusterValidatesItsKnobs)
{
    core::TimingEngine e;
    HoldController hold;
    ClusterConfig cfg;
    cfg.replicas = {cloudReplica()};
    cfg.elastic.controller = &hold;

    ClusterConfig bad_min = cfg;
    bad_min.elastic.min_replicas = 0;
    EXPECT_THROW(Cluster(e, bad_min), std::invalid_argument);
    ClusterConfig bad_max = cfg;
    bad_max.elastic.min_replicas = 3;
    bad_max.elastic.max_replicas = 2;
    EXPECT_THROW(Cluster(e, bad_max), std::invalid_argument);
    ClusterConfig outside = cfg;
    outside.elastic.min_replicas = 2; // initial fleet of 1 is below min
    EXPECT_THROW(Cluster(e, outside), std::invalid_argument);
    ClusterConfig bad_period = cfg;
    bad_period.elastic.control_period_seconds = 0.0;
    EXPECT_THROW(Cluster(e, bad_period), std::invalid_argument);
    ClusterConfig bad_template = cfg;
    bad_template.elastic.template_replica = 5;
    EXPECT_THROW(Cluster(e, bad_template), std::invalid_argument);
}

/** Burst-then-tail trace: floods the fleet so scale-up must fire,
 *  then trickles so sustained-idle scale-down can fire too. */
std::vector<Request>
burstThenTailTrace()
{
    std::vector<Request> t;
    int64_t id = 0;
    for (int i = 0; i < 24; ++i)
        t.push_back(makeRequest(id++, 0.1 * i, 2048, 256));
    for (int i = 0; i < 6; ++i)
        t.push_back(makeRequest(id++, 40.0 + 25.0 * i, 1024, 128));
    return t;
}

TEST(Autoscale, EndToEndScaleUpServeAndDrainDown)
{
    core::TimingEngine e;
    obs::CounterRegistry reg;
    ThresholdPolicy policy({/*consecutive_low_ticks=*/2, 1});
    SloConfig slo;
    slo.queue_depth_high = 2.0;
    slo.queue_depth_low = 0.5;
    Controller ctl({slo, &policy, &reg, nullptr, 60.0});

    ClusterConfig cfg;
    cfg.replicas = {cloudReplica()};
    // Small batch cap: the burst must *queue* (pressure the gauges the
    // controller polls), not disappear into one replica's batch.
    cfg.replicas[0].max_batch = 4;
    cfg.obs.counters = &reg;
    cfg.elastic.controller = &ctl;
    cfg.elastic.min_replicas = 1;
    cfg.elastic.max_replicas = 3;
    cfg.elastic.control_period_seconds = 2.0;

    const auto trace = burstThenTailTrace();
    const ClusterResult res = Cluster(e, cfg).run(trace);

    // Everything served, decisions were logged, and the fleet both
    // grew and shrank.
    EXPECT_EQ(res.completed() +
                  static_cast<int64_t>(res.fleet.rejected.size()),
              static_cast<int64_t>(trace.size()));
    EXPECT_FALSE(ctl.decisions().empty());
    ASSERT_FALSE(res.scale_events.empty());

    bool saw_attach = false, saw_warm = false, saw_down = false,
         saw_retire = false;
    size_t peak_live = 0;
    for (const ScaleEvent &ev : res.scale_events) {
        peak_live = std::max(peak_live, ev.live_after);
        switch (ev.action) {
          case ScaleAction::Attach: saw_attach = true; break;
          case ScaleAction::WarmComplete: saw_warm = true; break;
          case ScaleAction::Drain:
          case ScaleAction::CancelWarming: saw_down = true; break;
          case ScaleAction::Retire: saw_retire = true; break;
        }
        EXPECT_LE(ev.live_after, cfg.elastic.max_replicas);
    }
    EXPECT_TRUE(saw_attach);
    EXPECT_TRUE(saw_warm);
    EXPECT_TRUE(saw_down);
    EXPECT_TRUE(saw_retire);
    EXPECT_GT(peak_live, 1u);

    // Events arrive in simulated-time order, and a retire never
    // precedes its drain/cancel (drain-before-retire).
    for (size_t i = 1; i < res.scale_events.size(); ++i)
        EXPECT_GE(res.scale_events[i].t_seconds,
                  res.scale_events[i - 1].t_seconds);
    for (const ScaleEvent &ev : res.scale_events) {
        if (ev.action != ScaleAction::Retire)
            continue;
        const bool preceded = std::any_of(
            res.scale_events.begin(), res.scale_events.end(),
            [&](const ScaleEvent &d) {
                return d.replica == ev.replica &&
                       d.t_seconds <= ev.t_seconds &&
                       (d.action == ScaleAction::Drain ||
                        d.action == ScaleAction::CancelWarming);
            });
        EXPECT_TRUE(preceded);
    }

    // An elastic fleet that shrank back costs less than holding its
    // peak for the whole run.
    EXPECT_LT(res.replica_seconds,
              static_cast<double>(peak_live) *
                  res.fleet.makespan_seconds);

    // The fleet-shape gauges the controller's world is made of exist
    // and settled back to the floor.
    EXPECT_EQ(reg.valueOf("cluster.live_replicas"),
              static_cast<int64_t>(
                  res.scale_events.back().live_after));
    EXPECT_GT(reg.valueOf("cluster.scale_ups"), 0);
    EXPECT_GT(reg.valueOf("cluster.scale_downs"), 0);
}

TEST(Autoscale, ElasticRunsAreDeterministic)
{
    core::TimingEngine e;
    const auto trace = burstThenTailTrace();

    auto runOnce = [&](ClusterResult &out) {
        obs::CounterRegistry reg;
        ThresholdPolicy policy({2, 1});
        SloConfig slo;
        slo.queue_depth_high = 2.0;
        slo.queue_depth_low = 0.5;
        Controller ctl({slo, &policy, &reg, nullptr, 60.0});
        ClusterConfig cfg;
        cfg.replicas = {cloudReplica()};
        cfg.replicas[0].max_batch = 4;
        cfg.obs.counters = &reg;
        cfg.elastic.controller = &ctl;
        cfg.elastic.max_replicas = 3;
        cfg.elastic.control_period_seconds = 2.0;
        out = Cluster(e, cfg).run(trace);
    };
    ClusterResult a, b;
    runOnce(a);
    runOnce(b);
    ASSERT_EQ(a.scale_events.size(), b.scale_events.size());
    for (size_t i = 0; i < a.scale_events.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.scale_events[i].t_seconds,
                         b.scale_events[i].t_seconds);
        EXPECT_EQ(static_cast<int>(a.scale_events[i].action),
                  static_cast<int>(b.scale_events[i].action));
        EXPECT_EQ(a.scale_events[i].replica, b.scale_events[i].replica);
    }
    ASSERT_EQ(a.placements.size(), b.placements.size());
    for (size_t i = 0; i < a.placements.size(); ++i)
        EXPECT_EQ(a.placements[i].replica, b.placements[i].replica);
    EXPECT_DOUBLE_EQ(a.replica_seconds, b.replica_seconds);
    EXPECT_DOUBLE_EQ(a.fleet.makespan_seconds,
                     b.fleet.makespan_seconds);
}

} // namespace
} // namespace specontext
