/**
 * @file
 * Tests of the serving layer: workload presets, batch sweeps with OOM
 * handling, and wave scheduling.
 */
#include <gtest/gtest.h>

#include "serving/batch_sweep.h"

namespace specontext {
namespace {

using core::SystemOptions;
using core::SystemRegistry;
using core::TimingConfig;
using core::TimingEngine;

TimingConfig
base(const std::string &sys, const SystemOptions &opts = {})
{
    TimingConfig c;
    c.llm = model::deepseekDistillLlama8bGeometry();
    c.hw = sim::HardwareSpec::cloudA800();
    c.system = SystemRegistry::create(sys, opts);
    c.prompt_len = 2048;
    c.gen_len = 4096;
    return c;
}

TEST(Serving, PaperWorkloadsMatchTable3)
{
    const auto w = serving::paperWorkloads();
    ASSERT_EQ(w.size(), 4u);
    EXPECT_EQ(w[0].prompt_len, 2048);
    EXPECT_EQ(w[0].gen_len, 16384);
    EXPECT_EQ(w[3].label(), "[32k, 2k]");
}

TEST(Serving, SweepPicksFeasibleBest)
{
    TimingEngine e;
    auto sweep = serving::sweepBatches(e, base("FullAttn(FlashInfer)"),
                                       {1, 4, 8});
    ASSERT_TRUE(sweep.feasible());
    ASSERT_EQ(sweep.points.size(), 3u);
    const auto &best = sweep.bestPoint();
    for (const auto &p : sweep.points) {
        if (!p.result.oom) {
            EXPECT_LE(p.result.throughput, best.result.throughput);
        }
    }
}

TEST(Serving, ThroughputGrowsWithBatchForFullAttention)
{
    // Weight streaming amortizes across the batch.
    TimingEngine e;
    auto sweep = serving::sweepBatches(e, base("FullAttn(FlashInfer)"),
                                       {1, 8});
    ASSERT_TRUE(sweep.feasible());
    EXPECT_GT(sweep.points[1].result.throughput,
              sweep.points[0].result.throughput);
}

TEST(Serving, SweepAllOomReportsInfeasible)
{
    TimingEngine e;
    auto cfg = base("Quest");
    auto sweep = serving::sweepBatches(e, cfg, {2, 4, 8});
    EXPECT_FALSE(sweep.feasible()); // Quest is single-request only
    EXPECT_EQ(sweep.best, -1);
    ASSERT_EQ(sweep.points.size(), 3u);
    for (const auto &p : sweep.points)
        EXPECT_TRUE(p.result.oom);
}

TEST(Serving, SweepPicksTrueMaxOfNonMonotoneCurve)
{
    // With HF-Accelerate-style offload enabled, throughput rises with
    // batch until the KV cache spills to CPU DRAM, then craters (the
    // per-step full-KV PCIe transfer) without reporting OOM — a
    // non-monotone curve whose max sits mid-sweep.
    TimingEngine e;
    SystemOptions o;
    o.allow_full_attention_offload = true;
    auto cfg = base("FullAttn(FlashInfer)", o);
    auto sweep = serving::sweepBatches(e, cfg, {8, 64, 96});
    ASSERT_TRUE(sweep.feasible());
    ASSERT_EQ(sweep.points.size(), 3u);
    const double tp8 = sweep.points[0].result.throughput;
    const double tp64 = sweep.points[1].result.throughput;
    const double tp96 = sweep.points[2].result.throughput;
    ASSERT_GT(tp64, tp8);  // rising edge
    ASSERT_LT(tp96, tp64); // offload cliff: the curve is non-monotone
    EXPECT_EQ(sweep.best, 1);
    EXPECT_NEAR(sweep.bestPoint().result.throughput, tp64, 1e-12);
}

TEST(Serving, SpeContextSupportsLargerBatchesThanFullAttention)
{
    // OOM boundary comparison on a long-generation workload: sparse
    // KV residency admits more concurrent requests.
    TimingEngine e;
    auto fa = base("FullAttn(FlashInfer)");
    fa.gen_len = 32768;
    fa.prompt_len = 2048;
    auto ours = fa;
    ours.system = SystemRegistry::create("SpeContext");

    const auto batches = std::vector<int64_t>{16, 32, 64, 128, 256};
    auto s_fa = serving::sweepBatches(e, fa, batches);
    auto s_ours = serving::sweepBatches(e, ours, batches);

    int64_t max_fa = 0, max_ours = 0;
    for (const auto &p : s_fa.points)
        if (!p.result.oom)
            max_fa = std::max(max_fa, p.batch);
    for (const auto &p : s_ours.points)
        if (!p.result.oom)
            max_ours = std::max(max_ours, p.batch);
    EXPECT_GT(max_ours, max_fa);
}

TEST(Serving, WaveThroughputMatchesSingleWave)
{
    TimingEngine e;
    auto cfg = base("FullAttn(FlashInfer)");
    const double one_wave = serving::waveThroughput(e, cfg, 8, 8);
    cfg.batch = 8;
    const auto direct = e.simulate(cfg);
    EXPECT_NEAR(one_wave,
                8.0 * cfg.gen_len /
                    (direct.prefill_seconds + direct.decode_seconds),
                1e-6);
}

TEST(Serving, MultiWaveSlowerThanBiggerBatch)
{
    TimingEngine e;
    auto cfg = base("FullAttn(FlashInfer)");
    const double two_waves = serving::waveThroughput(e, cfg, 16, 8);
    const double one_wave = serving::waveThroughput(e, cfg, 16, 16);
    EXPECT_GT(one_wave, two_waves);
}

TEST(Serving, WaveThroughputValidatesInputs)
{
    TimingEngine e;
    EXPECT_THROW(serving::waveThroughput(e, base("FullAttn(FlashInfer)"),
                                         0, 4),
                 std::invalid_argument);
}

TEST(Serving, WaveThroughputGuardsDegenerateZeroTimeRuns)
{
    // gen_len == 0 produces zero tokens; the guard must report zero
    // throughput instead of dividing by a (potentially zero) duration.
    TimingEngine e;
    auto cfg = base("FullAttn(FlashInfer)");
    cfg.gen_len = 0;
    const double tp = serving::waveThroughput(e, cfg, 8, 4);
    EXPECT_DOUBLE_EQ(tp, 0.0);
}

} // namespace
} // namespace specontext
