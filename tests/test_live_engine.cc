/**
 * @file
 * Tests of the live generation engine: reference construction,
 * teacher-forced fidelity semantics, and budget monotonicity sweeps.
 */
#include <gtest/gtest.h>

#include "core/live_engine.h"
#include "model/distiller.h"
#include "retrieval/full_attention.h"
#include "retrieval/quest.h"
#include "retrieval/retrieval_head.h"

namespace specontext {
namespace {

using model::AttentionKind;

struct EngineFixture
{
    model::ModelConfig cfg = model::tinyConfig(AttentionKind::GQA);
    model::Transformer llm = model::Transformer::randomInit(cfg, 42);
    model::Transformer dlm = model::distill(llm, {1.0f, 7});
    core::LiveEngine eng{llm};

    std::vector<int32_t>
    prompt(int64_t n, uint64_t seed = 99) const
    {
        Rng rng(seed);
        std::vector<int32_t> p(n);
        for (auto &t : p)
            t = static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2));
        return p;
    }
};

TEST(LiveEngine, ReferenceShapes)
{
    EngineFixture f;
    auto ref = f.eng.buildReference(f.prompt(32), 8);
    EXPECT_EQ(ref.tokens.size(), 8u);
    EXPECT_EQ(ref.logits.size(), 8u);
    EXPECT_EQ(ref.logits[0].numel(), f.cfg.vocab);
    EXPECT_TRUE(ref.attention.empty());
}

TEST(LiveEngine, ReferenceRecordsAttentionWhenAsked)
{
    EngineFixture f;
    auto ref = f.eng.buildReference(f.prompt(16), 4, true);
    ASSERT_EQ(ref.attention.size(), 4u);
    EXPECT_EQ(static_cast<int64_t>(ref.attention[0].size()),
              f.cfg.layers);
}

TEST(LiveEngine, FullAttentionRetrieverPerfectFidelity)
{
    // Running the "sparse" path with a full-attention selector must
    // agree with the reference exactly.
    EngineFixture f;
    auto ref = f.eng.buildReference(f.prompt(32), 12);
    retrieval::FullAttentionRetriever full;
    auto run = f.eng.runWithRetriever(ref, full);
    EXPECT_DOUBLE_EQ(run.top1_agreement, 1.0);
    EXPECT_NEAR(run.mean_kl, 0.0, 1e-6);
    // run.tokens[i] is greedy over the distribution after feeding
    // ref.tokens[i] — i.e. the reference's *next* token.
    for (size_t i = 0; i < run.tokens.size(); ++i)
        EXPECT_EQ(run.tokens[i], f.llm.greedy(ref.logits[i]));
}

TEST(LiveEngine, HugeBudgetHeadMatchesFullAttention)
{
    // A retrieval-head budget covering the whole context is full
    // attention in disguise.
    EngineFixture f;
    auto ref = f.eng.buildReference(f.prompt(24), 10);
    retrieval::RetrievalHead head(f.dlm, {4096});
    auto run = f.eng.runWithSpeContext(ref, head);
    EXPECT_DOUBLE_EQ(run.top1_agreement, 1.0);
    EXPECT_NEAR(run.mean_kl, 0.0, 1e-5);
}

TEST(LiveEngine, SelectionsRecordedPerStep)
{
    EngineFixture f;
    auto ref = f.eng.buildReference(f.prompt(48), 6);
    retrieval::RetrievalHead head(f.dlm, {16});
    auto run = f.eng.runWithSpeContext(ref, head);
    EXPECT_EQ(run.step_selections.size(), 6u);
    EXPECT_EQ(run.step_overlap.size(), 5u);
    EXPECT_EQ(run.reuse_history.size(), 6u);
}

TEST(LiveEngine, ElasticLoadsLessThanFullBudget)
{
    EngineFixture f;
    auto ref = f.eng.buildReference(f.prompt(96), 16);
    retrieval::RetrievalHead head(f.dlm, {32});
    auto run = f.eng.runWithSpeContext(ref, head, true);
    EXPECT_LT(run.tokens_loaded, run.tokens_full_budget);
    EXPECT_GT(run.tokens_loaded, 0);
}

TEST(LiveEngine, NonElasticLoadsFullBudget)
{
    EngineFixture f;
    auto ref = f.eng.buildReference(f.prompt(96), 8);
    retrieval::RetrievalHead head(f.dlm, {32});
    auto run = f.eng.runWithSpeContext(ref, head, false);
    EXPECT_EQ(run.tokens_loaded, run.tokens_full_budget);
}

TEST(LiveEngine, FreeRunningGenerationLength)
{
    EngineFixture f;
    auto out = f.eng.generate(f.prompt(16), 20);
    EXPECT_EQ(out.size(), 20u);
    for (int32_t t : out) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, f.cfg.vocab);
    }
}

TEST(LiveEngine, FreeRunningStopsAtStopToken)
{
    EngineFixture f;
    auto probe = f.eng.generate(f.prompt(16), 20);
    // Use the 3rd emitted token as a stop token and confirm truncation.
    const int32_t stop = probe[2];
    auto out = f.eng.generate(f.prompt(16), 20, nullptr, stop);
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(out.back(), stop);
}

TEST(LiveEngine, FreeRunningWithHeadMatchesWhenBudgetHuge)
{
    EngineFixture f;
    auto full = f.eng.generate(f.prompt(16), 12);
    retrieval::RetrievalHead head(f.dlm, {4096});
    auto sparse = f.eng.generate(f.prompt(16), 12, &head);
    EXPECT_EQ(full, sparse);
}

/** Fidelity should improve (weakly) with budget — the Pareto premise. */
class BudgetMonotonicity : public ::testing::TestWithParam<int>
{
};

TEST_P(BudgetMonotonicity, AgreementHigherAtQuadrupleBudget)
{
    const int64_t budget = GetParam();
    EngineFixture f;
    auto ref = f.eng.buildReference(f.prompt(192), 16);

    retrieval::RetrievalHead small(f.dlm, {budget});
    retrieval::RetrievalHead large(f.dlm, {budget * 4});
    const auto rs = f.eng.runWithSpeContext(ref, small);
    const auto rl = f.eng.runWithSpeContext(ref, large);
    EXPECT_GE(rl.top1_agreement + 1e-9, rs.top1_agreement);
    EXPECT_LE(rl.mean_kl, rs.mean_kl + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetMonotonicity,
                         ::testing::Values(16, 32, 48));

} // namespace
} // namespace specontext
