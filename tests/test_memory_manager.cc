/**
 * @file
 * Tests of the adaptive memory manager (paper Algorithm 2) and the
 * static policies it is compared against.
 */
#include <gtest/gtest.h>

#include "core/memory_manager.h"

namespace specontext {
namespace {

sim::MemoryModel
edgeModel()
{
    sim::MemoryModelInputs in;
    in.llm = model::reasoningLlama32_1bGeometry();
    in.dlm = model::dlmGeometryFor(in.llm);
    in.requests = 1;
    in.budget = 2048;
    in.gpu_mem_bytes = 4LL << 30;
    return sim::MemoryModel(in);
}

TEST(MemoryManager, AllGpuNeverOffloads)
{
    auto mm = edgeModel();
    core::AdaptiveMemoryManager mgr(mm, core::OffloadPolicy::AllGpu);
    kv::TierPlacement p(mm.inputs().llm.layers);
    EXPECT_TRUE(mgr.onSequenceLength(1 << 20, p).empty());
    EXPECT_EQ(p.cpuLayers(), 0);
}

TEST(MemoryManager, AllCpuOffloadsEverythingOnce)
{
    auto mm = edgeModel();
    core::AdaptiveMemoryManager mgr(mm, core::OffloadPolicy::AllCpu);
    kv::TierPlacement p(mm.inputs().llm.layers);
    auto first = mgr.onSequenceLength(128, p);
    EXPECT_EQ(static_cast<int64_t>(first.size()),
              mm.inputs().llm.layers);
    EXPECT_EQ(p.cpuLayers(), mm.inputs().llm.layers);
    // Second call is a no-op.
    EXPECT_TRUE(mgr.onSequenceLength(256, p).empty());
}

TEST(MemoryManager, AdaptiveKeepsAllResidentBelowFirstThreshold)
{
    auto mm = edgeModel();
    core::AdaptiveMemoryManager mgr(mm, core::OffloadPolicy::Adaptive);
    kv::TierPlacement p(mm.inputs().llm.layers);
    const auto th = mgr.thresholds();
    ASSERT_GT(th[0], 0);
    EXPECT_TRUE(mgr.onSequenceLength(th[0] - 1, p).empty());
    EXPECT_EQ(p.cpuLayers(), 0);
}

TEST(MemoryManager, AdaptiveOffloadsAtThresholdCrossing)
{
    // Algorithm 2 lines 4-7: crossing S_T[L_CPU] offloads exactly the
    // deepest resident layer.
    auto mm = edgeModel();
    core::AdaptiveMemoryManager mgr(mm, core::OffloadPolicy::Adaptive);
    kv::TierPlacement p(mm.inputs().llm.layers);
    const auto th = mgr.thresholds();
    auto offloaded = mgr.onSequenceLength(th[0], p);
    ASSERT_FALSE(offloaded.empty());
    EXPECT_EQ(offloaded.front(), mm.inputs().llm.layers - 1);
}

TEST(MemoryManager, AdaptiveProgressionIsMonotone)
{
    auto mm = edgeModel();
    core::AdaptiveMemoryManager mgr(mm, core::OffloadPolicy::Adaptive);
    kv::TierPlacement p(mm.inputs().llm.layers);
    int64_t prev_cpu = 0;
    for (int64_t s = 64; s < 2000000; s = s * 3 / 2) {
        mgr.onSequenceLength(s, p);
        EXPECT_GE(p.cpuLayers(), prev_cpu);
        prev_cpu = p.cpuLayers();
    }
}

TEST(MemoryManager, AdaptivePlacementAlwaysFits)
{
    // The invariant Eq. 8 optimizes: after every adjustment, the
    // placement's Eq. 7 footprint fits in GPU memory.
    auto mm = edgeModel();
    core::AdaptiveMemoryManager mgr(mm, core::OffloadPolicy::Adaptive);
    kv::TierPlacement p(mm.inputs().llm.layers);
    for (int64_t s = 1024; s < 500000; s += 7919) {
        mgr.onSequenceLength(s, p);
        if (p.cpuLayers() < mm.inputs().llm.layers) {
            EXPECT_LE(mm.mPartBytes(s, p.gpuLayers()),
                      mm.inputs().gpu_mem_bytes)
                << "at s=" << s;
        }
    }
}

TEST(MemoryManager, LargeStepOffloadsMultipleLayers)
{
    // A big jump in sequence length may cross several thresholds in a
    // single call; the while-loop of Alg. 2 must drain them all.
    auto mm = edgeModel();
    core::AdaptiveMemoryManager mgr(mm, core::OffloadPolicy::Adaptive);
    kv::TierPlacement p(mm.inputs().llm.layers);
    const auto th = mgr.thresholds();
    auto offloaded = mgr.onSequenceLength(th[3], p);
    EXPECT_GE(static_cast<int64_t>(offloaded.size()), 4);
}

TEST(MemoryManager, AllGpuOverflowDetection)
{
    auto mm = edgeModel();
    core::AdaptiveMemoryManager mgr(mm, core::OffloadPolicy::AllGpu);
    EXPECT_FALSE(mgr.allGpuOverflows(64));
    EXPECT_TRUE(mgr.allGpuOverflows(1 << 22));
}

TEST(MemoryManager, PolicyNames)
{
    EXPECT_STREQ(core::offloadPolicyName(core::OffloadPolicy::Adaptive),
                 "Adaptive");
    EXPECT_STREQ(core::offloadPolicyName(core::OffloadPolicy::AllGpu),
                 "AllGpu");
    EXPECT_STREQ(core::offloadPolicyName(core::OffloadPolicy::AllCpu),
                 "AllCpu");
}

} // namespace
} // namespace specontext
