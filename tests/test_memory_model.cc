/**
 * @file
 * Tests of Equations 6-8 and Algorithm 1 (paper Section 6),
 * including property sweeps over requests and budgets.
 */
#include <gtest/gtest.h>

#include "sim/memory_model.h"

namespace specontext {
namespace {

sim::MemoryModelInputs
cloudInputs(int64_t requests = 4, int64_t budget = 2048)
{
    sim::MemoryModelInputs in;
    in.llm = model::llama31_8bGeometry();
    in.dlm = model::dlmGeometryFor(in.llm);
    in.requests = requests;
    in.budget = budget;
    in.gpu_mem_bytes = 80LL << 30;
    return in;
}

TEST(MemoryModel, Eq6MatchesManualFormula)
{
    const auto in = cloudInputs(1, 1024);
    sim::MemoryModel mm(in);
    const int64_t s = 4096;
    const int64_t l_eff = in.llm.layers + 1 + in.llm.groups();
    const int64_t expect =
        mm.modelBytes() +
        4 * in.requests * l_eff * s * in.llm.kv_heads * in.llm.head_dim;
    EXPECT_EQ(mm.mAllBytes(s), expect);
}

TEST(MemoryModel, Eq7ReducesToEq6AtFullResidency)
{
    sim::MemoryModel mm(cloudInputs());
    const int64_t s = 8192;
    // With L_GPU = L, Eq. 7 differs from Eq. 6 only by zero CPU
    // staging buffers.
    EXPECT_EQ(mm.mPartBytes(s, mm.inputs().llm.layers), mm.mAllBytes(s));
}

TEST(MemoryModel, Eq7MonotoneDecreasingInOffload)
{
    sim::MemoryModel mm(cloudInputs());
    const int64_t s = 65536;
    int64_t prev = mm.mPartBytes(s, mm.inputs().llm.layers);
    for (int64_t g = mm.inputs().llm.layers - 1; g >= 0; --g) {
        const int64_t cur = mm.mPartBytes(s, g);
        EXPECT_LT(cur, prev); // offloading a layer frees memory
        prev = cur;
    }
}

TEST(MemoryModel, ThresholdsAreMonotoneNondecreasing)
{
    // Offloading more layers must admit longer sequences (Alg. 1).
    sim::MemoryModel mm(cloudInputs());
    const auto th = mm.thresholds();
    ASSERT_EQ(static_cast<int64_t>(th.size()),
              mm.inputs().llm.layers + 1);
    for (size_t i = 1; i < th.size(); ++i)
        EXPECT_GE(th[i], th[i - 1]);
}

TEST(MemoryModel, ThresholdZeroMatchesAllFits)
{
    sim::MemoryModel mm(cloudInputs());
    const auto th = mm.thresholds();
    EXPECT_TRUE(mm.allFitsOnGpu(th[0] - 1));
    EXPECT_FALSE(mm.allFitsOnGpu(th[0] + 1));
}

TEST(MemoryModel, MaxGpuLayersConsistentWithEq7)
{
    sim::MemoryModel mm(cloudInputs());
    const int64_t s = 100000;
    const int64_t g = mm.maxGpuLayers(s);
    ASSERT_GE(g, 0);
    EXPECT_LE(mm.mPartBytes(s, g), mm.inputs().gpu_mem_bytes);
    if (g < mm.inputs().llm.layers) {
        EXPECT_GT(mm.mPartBytes(s, g + 1), mm.inputs().gpu_mem_bytes);
    }
}

TEST(MemoryModel, TooSmallGpuReportsNegative)
{
    auto in = cloudInputs();
    in.gpu_mem_bytes = 1LL << 30; // smaller than the 8B weights
    sim::MemoryModel mm(in);
    EXPECT_EQ(mm.maxGpuLayers(1024), -1);
}

TEST(MemoryModel, PrunedHeadSmallerThanFullDlm)
{
    auto in = cloudInputs();
    in.pruned_head = true;
    const int64_t pruned = sim::MemoryModel(in).modelBytes();
    in.pruned_head = false;
    const int64_t full = sim::MemoryModel(in).modelBytes();
    EXPECT_LT(pruned, full);
}

TEST(MemoryModel, RejectsBadInputs)
{
    auto in = cloudInputs();
    in.requests = 0;
    EXPECT_THROW(sim::MemoryModel{in}, std::invalid_argument);
}

/** Thresholds shrink as the workload grows (more requests/budget). */
class MemoryModelSweep
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>>
{
};

TEST_P(MemoryModelSweep, MoreRequestsLowerThresholds)
{
    const auto [requests, budget] = GetParam();
    sim::MemoryModel small(cloudInputs(requests, budget));
    sim::MemoryModel big(cloudInputs(requests * 2, budget));
    const auto th_small = small.thresholds();
    const auto th_big = big.thresholds();
    EXPECT_GT(th_small[0], th_big[0]);
    // And the Eq. 6 footprint doubles in the KV term.
    const int64_t s = 4096;
    EXPECT_GT(big.mAllBytes(s), small.mAllBytes(s));
}

TEST_P(MemoryModelSweep, LargerBudgetLowersLateThresholds)
{
    const auto [requests, budget] = GetParam();
    sim::MemoryModel a(cloudInputs(requests, budget));
    sim::MemoryModel b(cloudInputs(requests, budget * 4));
    // With more staging buffer per offloaded layer, the same offload
    // count admits shorter sequences.
    EXPECT_GE(a.thresholds()[16], b.thresholds()[16]);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, MemoryModelSweep,
    ::testing::Values(std::pair<int64_t, int64_t>{1, 1024},
                      std::pair<int64_t, int64_t>{2, 2048},
                      std::pair<int64_t, int64_t>{4, 2048},
                      std::pair<int64_t, int64_t>{8, 4096}));

/**
 * The paper's motivating example (§1/§6): at 4 requests on 80 GB, a
 * ~120K context fills the GPU and a tiny length increase forces a
 * full offload for static policies (>80 % cliff). Our Eq. 6 with the
 * GQA repeat buffer places the crossover near 105K for the same
 * workload — the same regime within the formula's slack.
 */
TEST(MemoryModel, PaperCliffRegimeReproduced)
{
    sim::MemoryModel mm(cloudInputs(4, 2048));
    EXPECT_TRUE(mm.allFitsOnGpu(100000));
    EXPECT_FALSE(mm.allFitsOnGpu(110000));
}

} // namespace
} // namespace specontext
