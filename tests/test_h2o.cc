/**
 * @file
 * Tests of the H2O heavy-hitter eviction baseline: accumulation,
 * permanent eviction, recent-window protection, and its characteristic
 * failure mode (evicted needles never return).
 */
#include <gtest/gtest.h>

#include "core/live_engine.h"
#include "retrieval/h2o.h"
#include "workload/metrics.h"
#include "workload/tasks.h"

namespace specontext {
namespace {

struct H2OFixture
{
    model::ModelConfig cfg = model::tinyConfig(model::AttentionKind::GQA);
    model::Transformer llm = model::Transformer::randomInit(cfg, 7);
    core::LiveEngine eng{llm};

    std::vector<int32_t>
    prompt(int64_t n, uint64_t seed = 3) const
    {
        Rng rng(seed);
        std::vector<int32_t> p(n);
        for (auto &t : p)
            t = static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2));
        return p;
    }
};

TEST(H2O, TracksWholeShortContext)
{
    H2OFixture f;
    auto ref = f.eng.buildReference(f.prompt(24), 4);
    retrieval::H2ORetriever r(64, 8);
    auto run = f.eng.runWithRetriever(ref, r);
    // Budget exceeds context: nothing evicted, perfect fidelity.
    EXPECT_DOUBLE_EQ(run.top1_agreement, 1.0);
}

TEST(H2O, EnforcesBudgetOnLongContext)
{
    H2OFixture f;
    auto ref = f.eng.buildReference(f.prompt(160), 8);
    retrieval::H2ORetriever r(32, 8);
    auto run = f.eng.runWithRetriever(ref, r);
    // After the first selection, tracked sets shrink to ~budget.
    for (const auto &sel : run.step_selections) {
        for (const auto &head : sel.per_head) {
            // One admission wave may briefly exceed budget before
            // eviction applies on the next call.
            EXPECT_LE(static_cast<int64_t>(head.size()), 32 + 8);
        }
    }
}

TEST(H2O, EvictedPositionsNeverReturn)
{
    H2OFixture f;
    auto ref = f.eng.buildReference(f.prompt(160), 12);
    retrieval::H2ORetriever r(32, 8);
    auto run = f.eng.runWithRetriever(ref, r);
    // Once a position disappears from head 0's selection, it must not
    // reappear (permanent eviction).
    std::vector<bool> seen_evicted(400, false);
    std::vector<bool> present_before(400, false);
    for (const auto &sel : run.step_selections) {
        std::vector<bool> now(400, false);
        for (int64_t p : sel.per_head[0])
            now[p] = true;
        for (int64_t p = 0; p < 200; ++p) {
            if (present_before[p] && !now[p])
                seen_evicted[p] = true;
            EXPECT_FALSE(seen_evicted[p] && now[p])
                << "position " << p << " returned after eviction";
            present_before[p] = present_before[p] || now[p];
        }
    }
}

TEST(H2O, RecentWindowAlwaysTracked)
{
    H2OFixture f;
    auto ref = f.eng.buildReference(f.prompt(120), 6);
    retrieval::H2ORetriever r(24, 8);
    auto run = f.eng.runWithRetriever(ref, r);
    // The last positions before each step's context end stay selected.
    const auto &sel = run.step_selections.back();
    const int64_t ctx = 120 + 6 - 1;
    for (const auto &head : sel.per_head) {
        for (int64_t p = ctx - 4; p < ctx; ++p) {
            EXPECT_TRUE(std::binary_search(head.begin(), head.end(), p))
                << "recent position " << p << " missing";
        }
    }
}

TEST(H2O, AccumulatorsGrowOverSteps)
{
    H2OFixture f;
    auto ref = f.eng.buildReference(f.prompt(64), 6);
    retrieval::H2ORetriever r(128, 8);
    f.eng.runWithRetriever(ref, r);
    const auto &st = r.state(0, 0);
    double total = 0.0;
    for (const auto &[p, m] : st.mass)
        total += m;
    // Each select call adds one softmax (mass 1) per step: layers *
    // steps calls for head 0 of layer 0 -> ~steps masses.
    EXPECT_GT(total, 4.0);
}

TEST(H2O, LosesMidContextNeedleUnderPressure)
{
    // The irreversibility argument of §3.1: once attention drifts, the
    // heavy-hitter policy can evict a needle that a later query needs.
    H2OFixture f;
    workload::TaskGenerator gen(f.cfg.vocab, 55);
    auto task = gen.triviaQa(256);
    task.answer_steps = 8;
    auto ref = workload::taskReference(f.eng, task);
    retrieval::H2ORetriever tight(16, 4);
    auto run = f.eng.runWithRetriever(ref, tight);
    retrieval::H2ORetriever loose(128, 4);
    auto run2 = f.eng.runWithRetriever(ref, loose);
    const double recall_tight = workload::needleRecall(
        run.step_selections, task.needle_positions);
    const double recall_loose = workload::needleRecall(
        run2.step_selections, task.needle_positions);
    EXPECT_LE(recall_tight, recall_loose + 1e-9);
}

} // namespace
} // namespace specontext
