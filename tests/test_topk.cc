/**
 * @file
 * Tests of Top-K selection and sorted-set utilities, including
 * property-style parameterized sweeps over sizes — these primitives
 * carry the elastic-loading arithmetic of Section 5.4.
 */
#include <algorithm>

#include <gtest/gtest.h>

#include "tensor/rng.h"
#include "tensor/topk.h"

namespace specontext {
namespace {

TEST(TopK, SelectsLargest)
{
    std::vector<float> s = {0.1f, 5.0f, 3.0f, 4.0f};
    auto idx = topkIndices(s, 2);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1);
    EXPECT_EQ(idx[1], 3);
}

TEST(TopK, ResultsSortedByIndex)
{
    std::vector<float> s = {9, 1, 8, 2, 7};
    auto idx = topkIndices(s, 3);
    EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
}

TEST(TopK, KLargerThanNReturnsAll)
{
    std::vector<float> s = {1, 2};
    EXPECT_EQ(topkIndices(s, 10).size(), 2u);
}

TEST(TopK, KZeroReturnsEmpty)
{
    std::vector<float> s = {1, 2};
    EXPECT_TRUE(topkIndices(s, 0).empty());
}

TEST(TopK, TieBreaksTowardLowerIndex)
{
    std::vector<float> s = {1, 1, 1, 1};
    auto idx = topkIndices(s, 2);
    EXPECT_EQ(idx[0], 0);
    EXPECT_EQ(idx[1], 1);
}

TEST(SortedSets, DifferenceBasic)
{
    std::vector<int64_t> a = {1, 2, 3, 5};
    std::vector<int64_t> b = {2, 5, 9};
    auto d = sortedDifference(a, b);
    EXPECT_EQ(d, (std::vector<int64_t>{1, 3}));
}

TEST(SortedSets, IntersectionBasic)
{
    std::vector<int64_t> a = {1, 2, 3, 5};
    std::vector<int64_t> b = {2, 5, 9};
    auto i = sortedIntersection(a, b);
    EXPECT_EQ(i, (std::vector<int64_t>{2, 5}));
}

TEST(SortedSets, JaccardIdentitiesAndBounds)
{
    std::vector<int64_t> a = {1, 2, 3};
    EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
    EXPECT_DOUBLE_EQ(jaccard(a, {}), 0.0);
    EXPECT_DOUBLE_EQ(jaccard({}, {}), 1.0);
}

TEST(SortedSets, OverlapRateDefinition)
{
    std::vector<int64_t> prev = {1, 2, 3, 4};
    std::vector<int64_t> now = {3, 4, 5, 6};
    EXPECT_DOUBLE_EQ(overlapRate(prev, now), 0.5);
    EXPECT_DOUBLE_EQ(overlapRate(prev, {}), 1.0);
}

/**
 * Elastic-loading identity of §5.4: with a fixed budget,
 * |S_last − S_now| == |S_now − S_last|, and reuse + load == |S_now|.
 */
class ElasticSetProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ElasticSetProperty, DiffSizesBalanceUnderFixedBudget)
{
    const int budget = GetParam();
    Rng rng(1000 + budget);
    const int64_t universe = 4 * budget;

    auto sample = [&]() {
        std::vector<float> scores(universe);
        for (auto &v : scores)
            v = static_cast<float>(rng.uniform());
        return topkIndices(scores, budget);
    };
    const auto s_last = sample();
    const auto s_now = sample();
    ASSERT_EQ(s_last.size(), static_cast<size_t>(budget));
    ASSERT_EQ(s_now.size(), static_cast<size_t>(budget));

    const auto load = sortedDifference(s_now, s_last);
    const auto evict = sortedDifference(s_last, s_now);
    const auto reuse = sortedIntersection(s_now, s_last);
    EXPECT_EQ(load.size(), evict.size());
    EXPECT_EQ(load.size() + reuse.size(), s_now.size());
}

INSTANTIATE_TEST_SUITE_P(Budgets, ElasticSetProperty,
                         ::testing::Values(4, 16, 64, 256, 1024));

/** Top-K output must exactly match a sort-based oracle. */
class TopKOracle : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(TopKOracle, MatchesSortOracle)
{
    const auto [n, k] = GetParam();
    Rng rng(77 + n * 31 + k);
    std::vector<float> scores(n);
    for (auto &v : scores)
        v = static_cast<float>(rng.uniform());

    auto fast = topkIndices(scores, k);

    std::vector<int64_t> oracle(n);
    for (int i = 0; i < n; ++i)
        oracle[i] = i;
    std::sort(oracle.begin(), oracle.end(), [&](int64_t a, int64_t b) {
        if (scores[a] != scores[b])
            return scores[a] > scores[b];
        return a < b;
    });
    oracle.resize(std::min<int64_t>(k, n));
    std::sort(oracle.begin(), oracle.end());
    EXPECT_EQ(fast, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopKOracle,
    ::testing::Values(std::pair{10, 3}, std::pair{100, 10},
                      std::pair{1000, 100}, std::pair{257, 256},
                      std::pair{64, 64}, std::pair{5, 1}));

} // namespace
} // namespace specontext
