/**
 * @file
 * Tests of the continuous-batching serving subsystem: request queue
 * policies, latency metrics, Poisson trace generation, memory-model
 * admission control, the Server loop's lifecycle invariants, and the
 * continuous-vs-wave throughput ordering.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "serving/server.h"
#include "workload/trace.h"

namespace specontext {
namespace {

using core::SystemOptions;
using core::SystemRegistry;
using core::TimingConfig;
using core::TimingEngine;
using serving::AdmissionController;
using serving::QueuePolicy;
using serving::Request;
using serving::RequestQueue;
using serving::RequestState;
using serving::ServerConfig;
using serving::ServingMetrics;

TimingConfig
cloudConfig(const std::string &sys)
{
    TimingConfig c;
    c.llm = model::deepseekDistillLlama8bGeometry();
    c.hw = sim::HardwareSpec::cloudA800();
    c.system = SystemRegistry::create(sys);
    return c;
}

Request
makeRequest(int64_t id, double arrival, int64_t prompt, int64_t gen)
{
    Request r;
    r.id = id;
    r.arrival_seconds = arrival;
    r.prompt_len = prompt;
    r.gen_len = gen;
    return r;
}

// ---------------------------------------------------------------- queue

TEST(RequestQueue, FifoPopsInArrivalOrder)
{
    RequestQueue q(QueuePolicy::Fifo);
    q.push(makeRequest(0, 0.0, 4096, 256));
    q.push(makeRequest(1, 1.0, 1024, 256));
    q.push(makeRequest(2, 2.0, 8192, 256));
    EXPECT_EQ(q.pop().id, 0);
    EXPECT_EQ(q.pop().id, 1);
    EXPECT_EQ(q.pop().id, 2);
    EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, ShortestPromptFirstPrefersSmallFootprint)
{
    RequestQueue q(QueuePolicy::ShortestPromptFirst);
    q.push(makeRequest(0, 0.0, 4096, 256));
    q.push(makeRequest(1, 1.0, 1024, 256));
    q.push(makeRequest(2, 2.0, 1024, 512)); // tie -> FIFO (id 1 first)
    EXPECT_EQ(q.peek().id, 1);
    EXPECT_EQ(q.pop().id, 1);
    EXPECT_EQ(q.pop().id, 2);
    EXPECT_EQ(q.pop().id, 0);
}

TEST(RequestQueue, ShortestPromptFirstTiesAreATotalOrder)
{
    // Equal prompt lengths pushed out of both arrival and id order:
    // the candidate order must be (prompt_len, arrival, id) regardless
    // of insertion order, so cluster runs are bit-reproducible even
    // when a router interleaves deliveries.
    RequestQueue q(QueuePolicy::ShortestPromptFirst);
    q.push(makeRequest(7, 3.0, 1024, 256));
    q.push(makeRequest(2, 1.0, 1024, 256));
    q.push(makeRequest(9, 1.0, 1024, 256)); // same arrival as id 2
    q.push(makeRequest(4, 2.0, 1024, 256));
    EXPECT_EQ(q.pop().id, 2); // earliest arrival, lowest id
    EXPECT_EQ(q.pop().id, 9); // same arrival, higher id
    EXPECT_EQ(q.pop().id, 4);
    EXPECT_EQ(q.pop().id, 7);
}

// -------------------------------------------------------------- metrics

TEST(ServingMetrics, NearestRankPercentiles)
{
    const std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(ServingMetrics::percentile(v, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(ServingMetrics::percentile(v, 95.0), 5.0);
    EXPECT_DOUBLE_EQ(ServingMetrics::percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(ServingMetrics::percentile(v, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(ServingMetrics::percentile({}, 50.0), 0.0);
    EXPECT_THROW(ServingMetrics::percentile(v, 101.0),
                 std::invalid_argument);
}

TEST(ServingMetrics, RecordsDeriveLatencies)
{
    Request r = makeRequest(3, 10.0, 2048, 5);
    r.admit_seconds = 12.0;
    r.first_token_seconds = 14.0;
    r.finish_seconds = 22.0;
    r.generated = 5;
    r.state = RequestState::Finished;

    ServingMetrics m;
    m.record(r);
    ASSERT_EQ(m.count(), 1);
    const serving::RequestRecord &rec = m.records()[0];
    EXPECT_DOUBLE_EQ(rec.ttft(), 4.0);
    EXPECT_DOUBLE_EQ(rec.e2e(), 12.0);
    EXPECT_DOUBLE_EQ(rec.queueDelay(), 2.0);
    EXPECT_DOUBLE_EQ(rec.tpot(), 2.0); // (22-14)/(5-1)

    const serving::ServingSummary s = m.summarize(22.0);
    EXPECT_EQ(s.completed, 1);
    EXPECT_EQ(s.total_generated_tokens, 5);
    EXPECT_NEAR(s.throughput_tokens_per_s, 5.0 / 22.0, 1e-12);

    Request unfinished = makeRequest(4, 0.0, 16, 4);
    EXPECT_THROW(m.record(unfinished), std::invalid_argument);
}

TEST(ServingMetrics, SortedPercentileReadsMatchTheCopyingPath)
{
    // summarize() sorts each series once and reads all quantiles from
    // it; the values must equal the copy-and-sort-per-call helper.
    std::vector<double> v{9.0, 1.0, 7.0, 3.0, 5.0, 2.0, 8.0};
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {0.0, 25.0, 50.0, 95.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(ServingMetrics::percentileSorted(sorted, p),
                         ServingMetrics::percentile(v, p));
    }
    EXPECT_DOUBLE_EQ(ServingMetrics::percentileSorted({}, 50.0), 0.0);
    EXPECT_THROW(ServingMetrics::percentileSorted(sorted, -1.0),
                 std::invalid_argument);
}

TEST(ServingMetrics, MergeKeepsReplicaIdsForPerReplicaBreakdowns)
{
    auto finished = [&](int64_t id, double finish) {
        Request r = makeRequest(id, 0.0, 128, 4);
        r.admit_seconds = 1.0;
        r.first_token_seconds = 2.0;
        r.finish_seconds = finish;
        r.generated = r.gen_len;
        r.state = RequestState::Finished;
        return r;
    };
    ServingMetrics a, b;
    a.record(finished(0, 4.0), 0);
    a.record(finished(1, 6.0), 0);
    b.record(finished(2, 8.0), 1);

    ServingMetrics fleet = a;
    fleet.merge(b);
    ASSERT_EQ(fleet.count(), 3);
    EXPECT_EQ(fleet.replicaIds(), (std::vector<int64_t>{0, 1}));
    EXPECT_EQ(fleet.summarize(8.0).completed, 3);
    const auto r0 = fleet.summarizeReplica(0, 6.0);
    const auto r1 = fleet.summarizeReplica(1, 8.0);
    EXPECT_EQ(r0.completed, 2);
    EXPECT_EQ(r1.completed, 1);
    EXPECT_DOUBLE_EQ(r1.e2e_mean, 8.0);
    EXPECT_EQ(fleet.summarizeReplica(7, 1.0).completed, 0);
}

// Satellite pin: percentile summaries over empty series return the
// defined all-zero sentinel — never uninitialized values or NaN — and
// argument validation still fires on empty input.
TEST(ServingMetrics, EmptySeriesSummarizeToTheZeroSentinel)
{
    const ServingMetrics empty;
    const auto s = empty.summarize(10.0);
    EXPECT_EQ(s.completed, 0);
    EXPECT_EQ(s.total_generated_tokens, 0);
    EXPECT_DOUBLE_EQ(s.throughput_tokens_per_s, 0.0);
    for (double v : {s.ttft_mean, s.ttft_p50, s.ttft_p95, s.ttft_p99,
                     s.tpot_mean, s.e2e_mean, s.e2e_p50, s.e2e_p95,
                     s.e2e_p99, s.queue_delay_mean}) {
        EXPECT_FALSE(std::isnan(v));
        EXPECT_DOUBLE_EQ(v, 0.0);
    }

    // A replica that served zero requests, read out of a non-empty
    // fleet collector, gets the same sentinel.
    Request done = makeRequest(0, 0.0, 128, 4);
    done.admit_seconds = 1.0;
    done.first_token_seconds = 2.0;
    done.finish_seconds = 3.0;
    done.generated = done.gen_len;
    done.state = RequestState::Finished;
    ServingMetrics fleet;
    fleet.record(done, 0);
    const auto idle_replica = fleet.summarizeReplica(42, 5.0);
    EXPECT_EQ(idle_replica.completed, 0);
    EXPECT_DOUBLE_EQ(idle_replica.ttft_p99, 0.0);
    EXPECT_FALSE(std::isnan(idle_replica.tpot_mean));

    // Percentiles of an empty series: sentinel 0.0, but a bad p still
    // throws (the empty set is not a validation bypass).
    EXPECT_DOUBLE_EQ(ServingMetrics::percentile({}, 99.0), 0.0);
    EXPECT_DOUBLE_EQ(ServingMetrics::percentileSorted({}, 50.0), 0.0);
    EXPECT_THROW(ServingMetrics::percentile({}, 101.0),
                 std::invalid_argument);
    EXPECT_THROW(ServingMetrics::percentileSorted({}, -1.0),
                 std::invalid_argument);
}

// --------------------------------------------------------------- traces

TEST(Trace, PoissonIsDeterministicAndSorted)
{
    workload::TraceConfig tc;
    tc.num_requests = 200;
    tc.arrival_rate_per_s = 2.0;
    tc.seed = 11;
    const auto a = workload::paperMixTrace(tc);
    const auto b = workload::paperMixTrace(tc);
    ASSERT_EQ(a.size(), 200u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
        EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
        }
    }
    // Mean inter-arrival gap of a Poisson process is 1/rate.
    const double mean_gap =
        a.back().arrival_seconds / static_cast<double>(a.size());
    EXPECT_NEAR(mean_gap, 0.5, 0.15);
}

TEST(Trace, MixedLengthStaysInRangeAndVaries)
{
    workload::TraceConfig tc;
    tc.num_requests = 100;
    tc.arrival_rate_per_s = 1.0;
    const auto t = workload::mixedLengthTrace(tc);
    int64_t min_p = t[0].prompt_len, max_p = t[0].prompt_len;
    for (const Request &r : t) {
        EXPECT_GE(r.prompt_len, 1024);
        EXPECT_LE(r.prompt_len, 32768);
        EXPECT_GE(r.gen_len, 256);
        EXPECT_LE(r.gen_len, 8192);
        min_p = std::min(min_p, r.prompt_len);
        max_p = std::max(max_p, r.prompt_len);
    }
    EXPECT_GT(max_p, 2 * min_p); // genuinely mixed lengths
    EXPECT_THROW(workload::poissonTrace(tc, {}), std::invalid_argument);
}

// Satellite pin: every generator validates the shared TraceConfig
// knobs up front with a clear error, via validateTraceConfig().
TEST(Trace, ConfigValidationRejectsDegenerateKnobs)
{
    workload::TraceConfig ok;
    EXPECT_NO_THROW(workload::validateTraceConfig(ok));

    workload::TraceConfig no_requests = ok;
    no_requests.num_requests = 0;
    EXPECT_THROW(workload::validateTraceConfig(no_requests),
                 std::invalid_argument);
    workload::TraceConfig negative = ok;
    negative.num_requests = -4;
    EXPECT_THROW(workload::validateTraceConfig(negative),
                 std::invalid_argument);
    workload::TraceConfig no_rate = ok;
    no_rate.arrival_rate_per_s = 0.0;
    EXPECT_THROW(workload::validateTraceConfig(no_rate),
                 std::invalid_argument);
    workload::TraceConfig nan_rate = ok;
    nan_rate.arrival_rate_per_s =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(workload::validateTraceConfig(nan_rate),
                 std::invalid_argument);

    // Every generator goes through the same validation.
    EXPECT_THROW(workload::paperMixTrace(no_requests),
                 std::invalid_argument);
    EXPECT_THROW(workload::mixedLengthTrace(no_rate),
                 std::invalid_argument);
    workload::SharedPrefixTraceConfig pc;
    pc.base = no_rate;
    EXPECT_THROW(workload::sharedPrefixTrace(pc),
                 std::invalid_argument);
}

TEST(Trace, MultiTurnPromptsReplayTheConversationHistory)
{
    // One session, several turns: every turn's prompt must extend the
    // previous one (history + synthesized reply + fresh user message),
    // creating the growing-context shape preemption feeds on.
    workload::MultiTurnTraceConfig mt;
    mt.base.num_requests = 1;
    mt.base.arrival_rate_per_s = 1.0;
    mt.base.seed = 17;
    mt.turns = 4;
    const auto trace = workload::multiTurnTrace(mt);
    ASSERT_EQ(trace.size(), 4u);
    for (size_t t = 0; t < trace.size(); ++t) {
        const auto &r = trace[t];
        EXPECT_EQ(r.id, static_cast<int64_t>(t));
        EXPECT_EQ(static_cast<int64_t>(r.prompt_tokens.size()),
                  r.prompt_len);
        EXPECT_GE(r.gen_len, mt.gen_lo);
        EXPECT_LE(r.gen_len, mt.gen_hi);
        if (t == 0)
            continue;
        const auto &prev = trace[t - 1];
        EXPECT_GT(r.arrival_seconds, prev.arrival_seconds);
        // Prompt grows by exactly the previous reply plus a bounded
        // user message...
        const int64_t growth =
            r.prompt_len - (prev.prompt_len + prev.gen_len);
        EXPECT_GE(growth, mt.followup_lo);
        EXPECT_LE(growth, mt.followup_hi);
        // ...and replays the previous prompt verbatim as its prefix.
        EXPECT_TRUE(std::equal(prev.prompt_tokens.begin(),
                               prev.prompt_tokens.end(),
                               r.prompt_tokens.begin()));
    }
}

TEST(Trace, MultiTurnSessionsInterleaveSortedWithSequentialIds)
{
    workload::MultiTurnTraceConfig mt;
    mt.base.num_requests = 6;
    mt.base.arrival_rate_per_s = 0.5;
    mt.base.seed = 21;
    mt.turns = 3;
    const auto trace = workload::multiTurnTrace(mt);
    ASSERT_EQ(trace.size(), 18u);
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].id, static_cast<int64_t>(i));
        if (i > 0)
            EXPECT_GE(trace[i].arrival_seconds,
                      trace[i - 1].arrival_seconds);
    }
    // Deterministic in the seed.
    const auto again = workload::multiTurnTrace(mt);
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].prompt_len, again[i].prompt_len);
        EXPECT_EQ(trace[i].arrival_seconds, again[i].arrival_seconds);
        EXPECT_EQ(trace[i].prompt_tokens, again[i].prompt_tokens);
    }
}

TEST(Trace, MultiTurnValidationRejectsDegenerateKnobs)
{
    workload::MultiTurnTraceConfig ok;
    ok.base.num_requests = 2;
    EXPECT_NO_THROW(workload::multiTurnTrace(ok));

    auto bad = ok;
    bad.turns = 0;
    EXPECT_THROW(workload::multiTurnTrace(bad), std::invalid_argument);
    bad = ok;
    bad.first_prompt_hi = bad.first_prompt_lo - 1;
    EXPECT_THROW(workload::multiTurnTrace(bad), std::invalid_argument);
    bad = ok;
    bad.followup_lo = 0;
    EXPECT_THROW(workload::multiTurnTrace(bad), std::invalid_argument);
    bad = ok;
    bad.gen_lo = -1;
    EXPECT_THROW(workload::multiTurnTrace(bad), std::invalid_argument);
    bad = ok;
    bad.think_time_mean_s = 0.0;
    EXPECT_THROW(workload::multiTurnTrace(bad), std::invalid_argument);
    bad = ok;
    bad.vocab = 2;
    EXPECT_THROW(workload::multiTurnTrace(bad), std::invalid_argument);
    bad = ok;
    bad.base.arrival_rate_per_s = 0.0;
    EXPECT_THROW(workload::multiTurnTrace(bad), std::invalid_argument);
}

TEST(Trace, SharedPrefixFamiliesShareTokensExactly)
{
    workload::SharedPrefixTraceConfig pc;
    pc.base.num_requests = 60;
    pc.base.arrival_rate_per_s = 2.0;
    pc.base.seed = 5;
    pc.num_families = 3;
    pc.prefix_len = 64;
    pc.suffix_lo = 8;
    pc.suffix_hi = 32;
    const auto t = workload::sharedPrefixTrace(pc);
    const auto t2 = workload::sharedPrefixTrace(pc);
    ASSERT_EQ(t.size(), 60u);

    // Group by the shared prefix; every request must carry exactly
    // prompt_len tokens, prefix_len of which are its family's.
    std::vector<std::vector<int32_t>> families;
    for (size_t i = 0; i < t.size(); ++i) {
        const Request &r = t[i];
        ASSERT_EQ(static_cast<int64_t>(r.prompt_tokens.size()),
                  r.prompt_len);
        EXPECT_GE(r.prompt_len, pc.prefix_len + pc.suffix_lo);
        EXPECT_LE(r.prompt_len, pc.prefix_len + pc.suffix_hi);
        // Deterministic in the seed.
        EXPECT_EQ(r.prompt_tokens, t2[i].prompt_tokens);
        EXPECT_DOUBLE_EQ(r.arrival_seconds, t2[i].arrival_seconds);
        if (i > 0) {
            EXPECT_GE(r.arrival_seconds, t[i - 1].arrival_seconds);
        }

        const std::vector<int32_t> prefix(
            r.prompt_tokens.begin(),
            r.prompt_tokens.begin() + pc.prefix_len);
        bool known = false;
        for (const auto &f : families)
            known = known || f == prefix;
        if (!known)
            families.push_back(prefix);
    }
    // All three families appear and no request invented a fourth.
    EXPECT_EQ(families.size(), 3u);
}

TEST(Trace, SharedPrefixZipfSkewsPopularityTowardRankZero)
{
    workload::SharedPrefixTraceConfig pc;
    pc.base.num_requests = 400;
    pc.base.arrival_rate_per_s = 2.0;
    pc.num_families = 8;
    pc.prefix_len = 32;
    pc.zipf_s = 1.2;
    const auto t = workload::sharedPrefixTrace(pc);

    // Count family occupancy by matching each request's prefix to the
    // rank-0 family (family streams are seed-derived, so rank 0 is
    // the first distinct prefix observed... identified by counting).
    std::map<std::vector<int32_t>, int64_t> counts;
    for (const Request &r : t) {
        const std::vector<int32_t> prefix(
            r.prompt_tokens.begin(),
            r.prompt_tokens.begin() + pc.prefix_len);
        ++counts[prefix];
    }
    EXPECT_LE(counts.size(), 8u);
    int64_t max_count = 0;
    for (const auto &kv_pair : counts)
        max_count = std::max(max_count, kv_pair.second);
    // Rank 0 carries weight 1/H(8,1.2) ~ 0.42 of the traffic; uniform
    // would be 50. Loose bound: the hottest family clearly dominates.
    EXPECT_GT(max_count, 400 / 4);

    workload::SharedPrefixTraceConfig bad = pc;
    bad.num_families = 0;
    EXPECT_THROW(workload::sharedPrefixTrace(bad),
                 std::invalid_argument);
    bad = pc;
    bad.prefix_len = 0;
    EXPECT_THROW(workload::sharedPrefixTrace(bad),
                 std::invalid_argument);
    bad = pc;
    bad.suffix_hi = bad.suffix_lo - 1;
    EXPECT_THROW(workload::sharedPrefixTrace(bad),
                 std::invalid_argument);
    bad = pc;
    bad.gen_lo = 0;
    EXPECT_THROW(workload::sharedPrefixTrace(bad),
                 std::invalid_argument);
    bad = pc;
    bad.zipf_s = -0.5;
    EXPECT_THROW(workload::sharedPrefixTrace(bad),
                 std::invalid_argument);
    bad = pc;
    bad.vocab = 2;
    EXPECT_THROW(workload::sharedPrefixTrace(bad),
                 std::invalid_argument);
}

// ------------------------------------------------------------ admission

TEST(Trace, DiurnalRateSwingsBetweenTroughAndPeak)
{
    workload::DiurnalTraceConfig dc;
    dc.base.num_requests = 1200;
    dc.base.arrival_rate_per_s = 2.0; // mean rate over a period
    dc.base.seed = 5;
    dc.period_seconds = 400.0;
    dc.peak_to_trough = 4.0;
    const auto a = workload::diurnalTrace(dc);
    const auto b = workload::diurnalTrace(dc);
    ASSERT_EQ(a.size(), 1200u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
        EXPECT_EQ(a[i].id, static_cast<int64_t>(i));
        EXPECT_GE(a[i].prompt_len, dc.prompt_lo);
        EXPECT_LE(a[i].prompt_len, dc.prompt_hi);
        EXPECT_GE(a[i].gen_len, dc.gen_lo);
        EXPECT_LE(a[i].gen_len, dc.gen_hi);
        if (i > 0)
            EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
    }
    // Count arrivals in the trough quarter (period edges) vs the peak
    // quarter (mid-period), folding every period together. With ratio
    // 4 the peak quarter must see far more traffic.
    int64_t trough_arrivals = 0, peak_arrivals = 0;
    for (const Request &r : a) {
        const double phase =
            std::fmod(r.arrival_seconds, dc.period_seconds) /
            dc.period_seconds;
        if (phase < 0.125 || phase >= 0.875)
            ++trough_arrivals;
        else if (phase >= 0.375 && phase < 0.625)
            ++peak_arrivals;
    }
    EXPECT_GT(peak_arrivals, 2 * trough_arrivals);
}

TEST(Trace, FlashCrowdConcentratesArrivalsInsideTheBurstWindow)
{
    workload::FlashCrowdTraceConfig fc;
    fc.base.num_requests = 600;
    fc.base.arrival_rate_per_s = 1.0; // baseline
    fc.base.seed = 9;
    fc.burst_start_seconds = 100.0;
    fc.burst_duration_seconds = 50.0;
    fc.burst_multiplier = 8.0;
    const auto a = workload::flashCrowdTrace(fc);
    const auto b = workload::flashCrowdTrace(fc);
    ASSERT_EQ(a.size(), 600u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
        if (i > 0)
            EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
    }
    // The 50 s burst window must be ~8x denser than an equally long
    // pre-burst baseline window ([50, 100)).
    int64_t in_burst = 0, before_burst = 0;
    for (const Request &r : a) {
        if (r.arrival_seconds >= 100.0 && r.arrival_seconds < 150.0)
            ++in_burst;
        else if (r.arrival_seconds >= 50.0 && r.arrival_seconds < 100.0)
            ++before_burst;
    }
    EXPECT_GT(in_burst, 4 * before_burst);
    EXPECT_GT(before_burst, 0);
}

// Satellite pin: the non-stationary generators validate their knobs
// through validateTraceConfig overloads — non-negative rates, ordered
// burst windows, sane length bounds — with clear errors.
TEST(Trace, DiurnalValidationRejectsDegenerateKnobs)
{
    workload::DiurnalTraceConfig ok;
    EXPECT_NO_THROW(workload::validateTraceConfig(ok));

    workload::DiurnalTraceConfig bad_base = ok;
    bad_base.base.arrival_rate_per_s = 0.0;
    EXPECT_THROW(workload::validateTraceConfig(bad_base),
                 std::invalid_argument);
    workload::DiurnalTraceConfig no_period = ok;
    no_period.period_seconds = 0.0;
    EXPECT_THROW(workload::validateTraceConfig(no_period),
                 std::invalid_argument);
    workload::DiurnalTraceConfig inf_period = ok;
    inf_period.period_seconds =
        std::numeric_limits<double>::infinity();
    EXPECT_THROW(workload::validateTraceConfig(inf_period),
                 std::invalid_argument);
    // Ratio below 1 would drive the trough rate negative.
    workload::DiurnalTraceConfig bad_ratio = ok;
    bad_ratio.peak_to_trough = 0.5;
    EXPECT_THROW(workload::validateTraceConfig(bad_ratio),
                 std::invalid_argument);
    workload::DiurnalTraceConfig bad_prompt = ok;
    bad_prompt.prompt_hi = bad_prompt.prompt_lo - 1;
    EXPECT_THROW(workload::validateTraceConfig(bad_prompt),
                 std::invalid_argument);
    workload::DiurnalTraceConfig bad_gen = ok;
    bad_gen.gen_lo = 0;
    EXPECT_THROW(workload::validateTraceConfig(bad_gen),
                 std::invalid_argument);
    // The generator itself goes through the same validation.
    EXPECT_THROW(workload::diurnalTrace(no_period),
                 std::invalid_argument);
}

TEST(Trace, FlashCrowdValidationRejectsDegenerateKnobs)
{
    workload::FlashCrowdTraceConfig ok;
    EXPECT_NO_THROW(workload::validateTraceConfig(ok));

    workload::FlashCrowdTraceConfig bad_base = ok;
    bad_base.base.num_requests = 0;
    EXPECT_THROW(workload::validateTraceConfig(bad_base),
                 std::invalid_argument);
    workload::FlashCrowdTraceConfig neg_start = ok;
    neg_start.burst_start_seconds = -1.0;
    EXPECT_THROW(workload::validateTraceConfig(neg_start),
                 std::invalid_argument);
    // Window ordering: a non-positive duration means start >= end.
    workload::FlashCrowdTraceConfig empty_window = ok;
    empty_window.burst_duration_seconds = 0.0;
    EXPECT_THROW(workload::validateTraceConfig(empty_window),
                 std::invalid_argument);
    workload::FlashCrowdTraceConfig nan_duration = ok;
    nan_duration.burst_duration_seconds =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(workload::validateTraceConfig(nan_duration),
                 std::invalid_argument);
    // Multiplier below 1 would make the "burst" a dip with a wrong
    // thinning envelope.
    workload::FlashCrowdTraceConfig bad_mult = ok;
    bad_mult.burst_multiplier = 0.25;
    EXPECT_THROW(workload::validateTraceConfig(bad_mult),
                 std::invalid_argument);
    workload::FlashCrowdTraceConfig bad_gen = ok;
    bad_gen.gen_hi = bad_gen.gen_lo - 1;
    EXPECT_THROW(workload::validateTraceConfig(bad_gen),
                 std::invalid_argument);
    EXPECT_THROW(workload::flashCrowdTrace(empty_window),
                 std::invalid_argument);
}

TEST(Trace, RagSpikeIsHugePromptTinyGenAndUncacheable)
{
    workload::RagSpikeTraceConfig rs;
    rs.base.num_requests = 300;
    rs.base.arrival_rate_per_s = 0.5;
    rs.base.seed = 13;
    const auto a = workload::ragSpikeTrace(rs);
    const auto b = workload::ragSpikeTrace(rs);
    ASSERT_EQ(a.size(), 300u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
        EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
        EXPECT_EQ(a[i].id, static_cast<int64_t>(i));
        if (i > 0)
            EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
        EXPECT_GE(a[i].prompt_len, rs.prompt_lo);
        EXPECT_LE(a[i].prompt_len, rs.prompt_hi);
        EXPECT_GE(a[i].gen_len, rs.gen_lo);
        EXPECT_LE(a[i].gen_len, rs.gen_hi);
        // The defining spike shape: every request's retrieved context
        // dwarfs its answer.
        EXPECT_GT(a[i].prompt_len, 16 * a[i].gen_len);
        // Unique retrieved contexts: no token ids are materialized, so
        // the prefix cache sees nothing shareable — by design.
        EXPECT_TRUE(a[i].prompt_tokens.empty());
    }
}

TEST(Trace, AgenticLoopGrowsContextAndReplaysItAsPrefix)
{
    workload::AgenticLoopTraceConfig al;
    al.base.num_requests = 6; // sessions
    al.base.arrival_rate_per_s = 0.2;
    al.base.seed = 17;
    al.steps = 5;
    const auto a = workload::agenticLoopTrace(al);
    const auto b = workload::agenticLoopTrace(al);
    ASSERT_EQ(a.size(), 30u); // sessions x steps
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
        EXPECT_EQ(a[i].id, static_cast<int64_t>(i));
        if (i > 0)
            EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
        EXPECT_EQ(a[i].prompt_len,
                  static_cast<int64_t>(a[i].prompt_tokens.size()));
        EXPECT_GE(a[i].gen_len, al.gen_lo);
        EXPECT_LE(a[i].gen_len, al.gen_hi);
    }
    // Reconstruct each session by grouping the (interleaved) requests
    // on their shortest-prefix chain: steps of one session replay the
    // previous step's whole context as a strict prefix, growing by at
    // least the tool output (plus the synthesized prior tool call).
    std::vector<std::vector<const Request *>> sessions;
    std::vector<const Request *> sorted;
    for (const Request &r : a)
        sorted.push_back(&r);
    std::sort(sorted.begin(), sorted.end(),
              [](const Request *x, const Request *y) {
                  return x->prompt_len < y->prompt_len;
              });
    for (const Request *r : sorted) {
        bool placed = false;
        for (auto &chain : sessions) {
            const Request *tail = chain.back();
            if (tail->prompt_len < r->prompt_len &&
                std::equal(tail->prompt_tokens.begin(),
                           tail->prompt_tokens.end(),
                           r->prompt_tokens.begin())) {
                chain.push_back(r);
                placed = true;
                break;
            }
        }
        if (!placed)
            sessions.push_back({r});
    }
    ASSERT_EQ(sessions.size(), 6u);
    for (const auto &chain : sessions) {
        ASSERT_EQ(chain.size(), 5u);
        for (size_t s = 1; s < chain.size(); ++s) {
            EXPECT_LT(chain[s - 1]->arrival_seconds,
                      chain[s]->arrival_seconds);
            // Growth per step: prior tool call (prev gen_len) + tool
            // output of at least tool_output_lo.
            EXPECT_GE(chain[s]->prompt_len,
                      chain[s - 1]->prompt_len +
                          chain[s - 1]->gen_len + al.tool_output_lo);
        }
    }
}

TEST(Trace, RagSpikeValidationRejectsDegenerateKnobs)
{
    workload::RagSpikeTraceConfig ok;
    EXPECT_NO_THROW(workload::validateTraceConfig(ok));
    workload::RagSpikeTraceConfig bad_base = ok;
    bad_base.base.arrival_rate_per_s = -1.0;
    EXPECT_THROW(workload::validateTraceConfig(bad_base),
                 std::invalid_argument);
    workload::RagSpikeTraceConfig bad_prompt = ok;
    bad_prompt.prompt_lo = 0;
    EXPECT_THROW(workload::validateTraceConfig(bad_prompt),
                 std::invalid_argument);
    workload::RagSpikeTraceConfig bad_gen = ok;
    bad_gen.gen_hi = bad_gen.gen_lo - 1;
    EXPECT_THROW(workload::validateTraceConfig(bad_gen),
                 std::invalid_argument);
    EXPECT_THROW(workload::ragSpikeTrace(bad_prompt),
                 std::invalid_argument);
}

TEST(Trace, AgenticLoopValidationRejectsDegenerateKnobs)
{
    workload::AgenticLoopTraceConfig ok;
    EXPECT_NO_THROW(workload::validateTraceConfig(ok));
    workload::AgenticLoopTraceConfig bad_steps = ok;
    bad_steps.steps = 0;
    EXPECT_THROW(workload::validateTraceConfig(bad_steps),
                 std::invalid_argument);
    workload::AgenticLoopTraceConfig bad_task = ok;
    bad_task.task_prompt_hi = bad_task.task_prompt_lo - 1;
    EXPECT_THROW(workload::validateTraceConfig(bad_task),
                 std::invalid_argument);
    workload::AgenticLoopTraceConfig bad_tool = ok;
    bad_tool.tool_output_lo = 0;
    EXPECT_THROW(workload::validateTraceConfig(bad_tool),
                 std::invalid_argument);
    workload::AgenticLoopTraceConfig bad_latency = ok;
    bad_latency.tool_latency_mean_s = 0.0;
    EXPECT_THROW(workload::validateTraceConfig(bad_latency),
                 std::invalid_argument);
    workload::AgenticLoopTraceConfig nan_latency = ok;
    nan_latency.tool_latency_mean_s =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(workload::validateTraceConfig(nan_latency),
                 std::invalid_argument);
    workload::AgenticLoopTraceConfig bad_vocab = ok;
    bad_vocab.vocab = 2;
    EXPECT_THROW(workload::validateTraceConfig(bad_vocab),
                 std::invalid_argument);
    EXPECT_THROW(workload::agenticLoopTrace(bad_steps),
                 std::invalid_argument);
}

TEST(Admission, RejectsWaveOnlySystems)
{
    EXPECT_THROW(AdmissionController(cloudConfig("Quest")),
                 std::invalid_argument);
    EXPECT_THROW(AdmissionController(cloudConfig("ShadowKV")),
                 std::invalid_argument);
}

TEST(Admission, SpeContextAdmitImpliesMemoryModelHeadroom)
{
    const AdmissionController ac(cloudConfig("SpeContext"));
    const sim::MemoryModel mm = ac.memoryModel();
    std::vector<Request> in_flight;
    const Request cand = makeRequest(0, 0.0, 32768, 2048);
    // Grow the batch until admission denies; every admitted state must
    // satisfy the Eq. 7 offload-feasibility invariant.
    while (ac.admit(in_flight, cand).admit) {
        in_flight.push_back(cand);
        const auto r = static_cast<int64_t>(in_flight.size());
        EXPECT_TRUE(mm.fitsWithOffload(r, cand.finalLen()));
        ASSERT_LT(r, 4096) << "admission never saturated";
    }
    // The denial is the memory model's edge, not an arbitrary cap.
    const auto r = static_cast<int64_t>(in_flight.size()) + 1;
    const int64_t kvb =
        TimingEngine::kvBytesPerTokenPerLayer(ac.config().llm);
    const bool gpu_fits = mm.fitsWithOffload(r, cand.finalLen());
    const bool cpu_fits = r * cand.finalLen() * kvb *
                              ac.config().llm.layers <=
                          ac.config().hw.cpu_mem_bytes;
    EXPECT_FALSE(gpu_fits && cpu_fits);
}

TEST(Admission, FullAttentionDeniesWhenKvExceedsHbm)
{
    const AdmissionController ac(cloudConfig("FullAttn(FlashInfer)"));
    const Request cand = makeRequest(0, 0.0, 16384, 2048);
    std::vector<Request> in_flight;
    while (ac.admit(in_flight, cand).admit) {
        in_flight.push_back(cand);
        ASSERT_LT(in_flight.size(), 4096u);
    }
    // Check the denial against the exact byte arithmetic.
    const model::ModelConfig &m = ac.config().llm;
    const int64_t kvb = TimingEngine::kvBytesPerTokenPerLayer(m);
    const int64_t weights =
        static_cast<int64_t>(1.3 * m.parameterBytesFp16());
    const auto r = static_cast<int64_t>(in_flight.size());
    EXPECT_LE(weights + r * cand.finalLen() * kvb * m.layers,
              ac.config().hw.gpu_mem_bytes);
    EXPECT_GT(weights + (r + 1) * cand.finalLen() * kvb * m.layers,
              ac.config().hw.gpu_mem_bytes);
}

TEST(Admission, MemoryModelHeadroomQueriesAreConsistent)
{
    sim::MemoryModelInputs in;
    in.llm = model::deepseekDistillLlama8bGeometry();
    in.dlm = model::dlmGeometryFor(in.llm);
    in.budget = 2048;
    in.gpu_mem_bytes = sim::HardwareSpec::cloudA800().gpu_mem_bytes;
    const sim::MemoryModel mm(in);

    const int64_t s = 34816; // [32k, 2k] final length
    EXPECT_EQ(mm.mAllBytesFor(1, s), mm.mAllBytes(s));
    EXPECT_EQ(mm.mPartBytesFor(1, s, 0), mm.mPartBytes(s, 0));
    EXPECT_EQ(mm.headroomBytes(1, s),
              in.gpu_mem_bytes - mm.mAllBytes(s));

    const int64_t r_all = mm.maxConcurrentRequests(s, false);
    const int64_t r_off = mm.maxConcurrentRequests(s, true);
    EXPECT_GE(r_off, r_all); // offload can only admit more
    EXPECT_GT(r_off, 0);
    EXPECT_LE(mm.mAllBytesFor(std::max<int64_t>(r_all, 1), s),
              in.gpu_mem_bytes);
    if (r_all > 0) {
        EXPECT_GT(mm.mAllBytesFor(r_all + 1, s), in.gpu_mem_bytes);
    }
    EXPECT_TRUE(mm.fitsWithOffload(r_off, s));
    EXPECT_FALSE(mm.fitsWithOffload(r_off + 1, s));
}

// --------------------------------------------------------------- engine

TEST(TimingEngineStepping, UniformIterationMatchesBatchedStep)
{
    TimingEngine e;
    const TimingConfig cfg = cloudConfig("FullAttn(FlashInfer)");
    const sim::CostModel cost(cfg.hw, cfg.system->backend());
    const std::vector<int64_t> kv(8, 4096);
    const double iter = e.decodeIterationSeconds(cfg, kv);
    const double batched =
        cost.decodeStepBreakdown(cfg.llm, 8, 4096).total;
    EXPECT_NEAR(iter, batched, 1e-9 + 0.01 * batched);
}

TEST(TimingEngineStepping, ValidatesInputs)
{
    TimingEngine e;
    EXPECT_DOUBLE_EQ(
        e.decodeIterationSeconds(cloudConfig("FullAttn(FlashInfer)"), {}),
        0.0);
    EXPECT_THROW(e.decodeIterationSeconds(cloudConfig("Quest"),
                                          {1024}),
                 std::invalid_argument);
    EXPECT_THROW(
        e.requestPrefillSeconds(cloudConfig("FullAttn(FlashInfer)"), 0),
        std::invalid_argument);
    EXPECT_FALSE(SystemRegistry::create("ClusterKV")
                     ->supportsContinuousBatching());
    EXPECT_TRUE(SystemRegistry::create("SpeContext")
                    ->supportsContinuousBatching());
}

TEST(TimingEngineStepping, SpeContextBudgetCapsAttendedContext)
{
    TimingEngine e;
    const TimingConfig cfg = cloudConfig("SpeContext");
    // Far beyond the budget, iteration cost grows only with the
    // retrieval head's scoring scan, not with attended KV — so doubling
    // the context costs much less than it does under full attention.
    const double sparse_short =
        e.decodeIterationSeconds(cfg, {8192, 8192});
    const double sparse_long =
        e.decodeIterationSeconds(cfg, {65536, 65536});
    const TimingConfig fa = cloudConfig("FullAttn(FlashInfer)");
    const double full_short = e.decodeIterationSeconds(fa, {8192, 8192});
    const double full_long =
        e.decodeIterationSeconds(fa, {65536, 65536});
    EXPECT_LT(sparse_long / sparse_short, full_long / full_short);
}

// --------------------------------------------------------------- server

TEST(Server, AllAdmittedRequestsFinishUnderFifo)
{
    TimingEngine e;
    ServerConfig cfg;
    cfg.timing = cloudConfig("FullAttn(FlashInfer)");
    cfg.queue_policy = QueuePolicy::Fifo;
    cfg.max_batch = 16;

    workload::TraceConfig tc;
    tc.num_requests = 24;
    tc.arrival_rate_per_s = 1.0;
    tc.seed = 3;
    auto trace = workload::mixedLengthTrace(tc);

    const serving::ServeResult r =
        serving::Server(e, cfg).run(trace);
    EXPECT_EQ(r.completed(), 24);
    EXPECT_TRUE(r.rejected.empty());
    EXPECT_GT(r.iterations, 0);
    EXPECT_LE(r.peak_in_flight, cfg.max_batch);
    for (const serving::RequestRecord &rec : r.metrics.records()) {
        EXPECT_GE(rec.admit_seconds, rec.arrival_seconds);
        EXPECT_GT(rec.first_token_seconds, rec.admit_seconds);
        EXPECT_GE(rec.finish_seconds, rec.first_token_seconds);
        EXPECT_LE(rec.finish_seconds, r.makespan_seconds + 1e-9);
    }
}

TEST(Server, PeakInFlightRespectsUniformMemoryBound)
{
    // Uniform trace: the memory model's maxConcurrentRequests at the
    // common final length is an exact ceiling on in-flight batch size.
    TimingEngine e;
    ServerConfig cfg;
    cfg.timing = cloudConfig("FullAttn(FlashInfer)");
    cfg.max_batch = 1024; // memory must bind, not the table cap

    const serving::Workload w{16384, 2048};
    workload::TraceConfig tc;
    tc.num_requests = 48;
    tc.arrival_rate_per_s = 10.0; // everyone piles into the queue
    const auto trace = workload::poissonTrace(tc, {w});

    const serving::ServeResult r = serving::Server(e, cfg).run(trace);
    EXPECT_EQ(r.completed(), 48);

    const model::ModelConfig &m = cfg.timing.llm;
    const int64_t kvb = TimingEngine::kvBytesPerTokenPerLayer(m);
    const int64_t weights =
        static_cast<int64_t>(1.3 * m.parameterBytesFp16());
    const int64_t cap =
        (cfg.timing.hw.gpu_mem_bytes - weights) /
        ((w.prompt_len + w.gen_len) * kvb * m.layers);
    EXPECT_GT(r.peak_in_flight, 1);
    EXPECT_LE(r.peak_in_flight, cap);
}

TEST(Server, InfeasibleRequestIsRejectedOthersComplete)
{
    TimingEngine e;
    ServerConfig cfg;
    cfg.timing = cloudConfig("SpeContext");
    std::vector<Request> trace;
    trace.push_back(makeRequest(0, 0.0, 2048, 512));
    // ~50M-token context: KV exceeds even CPU DRAM, can never be served.
    trace.push_back(makeRequest(1, 1.0, 50'000'000, 512));
    trace.push_back(makeRequest(2, 2.0, 2048, 512));

    const serving::ServeResult r = serving::Server(e, cfg).run(trace);
    EXPECT_EQ(r.completed(), 2);
    ASSERT_EQ(r.rejected.size(), 1u);
    EXPECT_EQ(r.rejected[0].id, 1);
    EXPECT_EQ(r.rejected[0].state, RequestState::Rejected);
    EXPECT_FALSE(serving::Server(e, cfg)
                     .admission()
                     .feasibleAlone(r.rejected[0]));
}

TEST(Server, ContinuousBatchingBeatsWavesOnMixedPoissonTrace)
{
    TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 32;
    tc.arrival_rate_per_s = 0.5;
    tc.seed = 7;
    const auto trace = workload::mixedLengthTrace(tc);

    for (const char *sys : {"FullAttn(FlashInfer)", "SpeContext"}) {
        ServerConfig cfg;
        cfg.timing = cloudConfig(sys);
        cfg.max_batch = 32;
        const auto cont = serving::Server(e, cfg).run(trace);
        const auto wave = serving::serveWaves(e, cfg, trace);
        ASSERT_EQ(cont.completed(), 32);
        ASSERT_EQ(wave.completed(), 32);
        const auto cs = cont.summary();
        const auto ws = wave.summary();
        EXPECT_GE(cs.throughput_tokens_per_s,
                  ws.throughput_tokens_per_s)
            << sys;
        EXPECT_LE(cs.ttft_p95, ws.ttft_p95) << sys;
    }
}

TEST(Server, ShortestPromptFirstCompletesAndLowersShortTtft)
{
    TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 24;
    tc.arrival_rate_per_s = 2.0; // deep queue so ordering matters
    tc.seed = 5;
    const auto trace = workload::mixedLengthTrace(tc);

    auto meanShortTtft = [](const serving::ServeResult &r) {
        double acc = 0.0;
        int64_t n = 0;
        for (const auto &rec : r.metrics.records()) {
            if (rec.prompt_len <= 4096) {
                acc += rec.ttft();
                ++n;
            }
        }
        return n > 0 ? acc / static_cast<double>(n) : 0.0;
    };

    ServerConfig fifo;
    fifo.timing = cloudConfig("FullAttn(FlashInfer)");
    fifo.max_batch = 8;
    ServerConfig spf = fifo;
    spf.queue_policy = QueuePolicy::ShortestPromptFirst;

    const auto rf = serving::Server(e, fifo).run(trace);
    const auto rs = serving::Server(e, spf).run(trace);
    EXPECT_EQ(rf.completed(), 24);
    EXPECT_EQ(rs.completed(), 24); // finite trace: no permanent starvation
    EXPECT_LE(meanShortTtft(rs), meanShortTtft(rf));
}

TEST(Server, WaveSchedulingRejectsUnsupportedSystems)
{
    TimingEngine e;
    ServerConfig cfg;
    cfg.timing = cloudConfig("ClusterKV");
    EXPECT_THROW(serving::Server(e, cfg), std::invalid_argument);
    cfg.timing = cloudConfig("FullAttn(FlashInfer)");
    cfg.max_batch = 0;
    EXPECT_THROW(serving::Server(e, cfg), std::invalid_argument);
}

} // namespace
} // namespace specontext
