/**
 * @file
 * Tests of elastic loading (paper §5.4): set-difference transfers,
 * in-place update semantics, reuse accounting and the non-elastic
 * ablation mode.
 */
#include <gtest/gtest.h>

#include "core/elastic_loader.h"

namespace specontext {
namespace {

model::LayerSelection
sel(std::vector<std::vector<int64_t>> heads)
{
    model::LayerSelection s;
    s.per_head = std::move(heads);
    return s;
}

TEST(ElasticLoader, FirstUpdateLoadsEverything)
{
    core::ElasticLoader loader;
    auto plan = loader.update(sel({{1, 2, 3, 4}}));
    EXPECT_EQ(plan.tokens_to_load, 4);
    EXPECT_EQ(plan.tokens_reused, 0);
    EXPECT_EQ(plan.tokens_evicted, 0);
}

TEST(ElasticLoader, DiffOnlyTransfers)
{
    core::ElasticLoader loader;
    loader.update(sel({{1, 2, 3, 4}}));
    auto plan = loader.update(sel({{3, 4, 5, 6}}));
    EXPECT_EQ(plan.tokens_to_load, 2);   // 5, 6
    EXPECT_EQ(plan.tokens_reused, 2);    // 3, 4
    EXPECT_EQ(plan.tokens_evicted, 2);   // 1, 2
    EXPECT_DOUBLE_EQ(plan.reuseFraction(), 0.5);
}

TEST(ElasticLoader, FixedBudgetBalancesLoadAndEvict)
{
    // |S_last - S_now| == |S_now - S_last| when budgets are equal
    // (§5.4's in-place update precondition).
    core::ElasticLoader loader;
    loader.update(sel({{0, 1, 2, 3, 4, 5, 6, 7}}));
    auto plan = loader.update(sel({{0, 1, 2, 3, 10, 11, 12, 13}}));
    EXPECT_EQ(plan.tokens_to_load, plan.tokens_evicted);
}

TEST(ElasticLoader, IdenticalSelectionLoadsNothing)
{
    core::ElasticLoader loader;
    loader.update(sel({{1, 2, 3}}));
    auto plan = loader.update(sel({{1, 2, 3}}));
    EXPECT_EQ(plan.tokens_to_load, 0);
    EXPECT_DOUBLE_EQ(plan.reuseFraction(), 1.0);
}

TEST(ElasticLoader, PerHeadIndependentTracking)
{
    core::ElasticLoader loader;
    loader.update(sel({{1, 2}, {3, 4}}));
    auto plan = loader.update(sel({{1, 2}, {5, 6}}));
    EXPECT_EQ(plan.tokens_to_load, 2); // only head 1 changed
    EXPECT_EQ(loader.resident(0), (std::vector<int64_t>{1, 2}));
    EXPECT_EQ(loader.resident(1), (std::vector<int64_t>{5, 6}));
}

TEST(ElasticLoader, NonElasticLoadsFullBudgetEveryStep)
{
    core::ElasticLoader loader(false);
    loader.update(sel({{1, 2, 3}}));
    auto plan = loader.update(sel({{1, 2, 3}}));
    EXPECT_EQ(plan.tokens_to_load, 3); // no reuse without elasticity
}

TEST(ElasticLoader, CumulativeAccounting)
{
    core::ElasticLoader loader;
    loader.update(sel({{1, 2, 3, 4}}));
    loader.update(sel({{3, 4, 5, 6}}));
    EXPECT_EQ(loader.totalLoaded(), 6);      // 4 + 2
    EXPECT_EQ(loader.totalFullBudget(), 8);  // what full reload moves
    EXPECT_EQ(loader.reuseHistory().size(), 2u);
}

TEST(ElasticLoader, HeadCountChangeRejected)
{
    core::ElasticLoader loader;
    loader.update(sel({{1}, {2}}));
    EXPECT_THROW(loader.update(sel({{1}})), std::invalid_argument);
}

TEST(ElasticLoader, ResetRestoresFreshState)
{
    core::ElasticLoader loader;
    loader.update(sel({{1, 2}}));
    loader.reset();
    EXPECT_EQ(loader.totalLoaded(), 0);
    auto plan = loader.update(sel({{1, 2}}));
    EXPECT_EQ(plan.tokens_to_load, 2);
}

TEST(ElasticLoader, ResidentOutOfRangeIsEmpty)
{
    core::ElasticLoader loader;
    EXPECT_TRUE(loader.resident(3).empty());
}

/** Transfer reduction grows with overlap (paper's up-to-90 % claim). */
class OverlapSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(OverlapSweep, ReductionMatchesOverlap)
{
    const int shared = GetParam(); // tokens kept between steps (of 16)
    core::ElasticLoader loader;
    std::vector<int64_t> first;
    for (int64_t i = 0; i < 16; ++i)
        first.push_back(i);
    loader.update(sel({first}));

    std::vector<int64_t> second;
    for (int64_t i = 0; i < shared; ++i)
        second.push_back(i);
    for (int64_t i = shared; i < 16; ++i)
        second.push_back(100 + i);
    auto plan = loader.update(sel({second}));
    EXPECT_EQ(plan.tokens_to_load, 16 - shared);
    EXPECT_NEAR(plan.reuseFraction(), shared / 16.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shares, OverlapSweep,
                         ::testing::Values(0, 4, 8, 12, 14, 16));

} // namespace
} // namespace specontext
