/**
 * @file
 * Tests of the baseline retrievers (FullAttention, StreamingLLM,
 * Quest, ClusterKV, ShadowKV): budget compliance, the retained-tail
 * behaviour (Challenge-2), and algorithm-specific invariants.
 */
#include <gtest/gtest.h>

#include "core/live_engine.h"
#include "retrieval/cluster_kv.h"
#include "retrieval/full_attention.h"
#include "retrieval/quest.h"
#include "retrieval/shadow_kv.h"
#include "retrieval/streaming_llm.h"

namespace specontext {
namespace {

using model::AttentionKind;

struct Fixture
{
    model::ModelConfig cfg = model::tinyConfig(AttentionKind::GQA);
    model::Transformer llm = model::Transformer::randomInit(cfg, 7);
    kv::KVCacheSet cache{cfg};
    int64_t prompt_len = 96;

    Fixture()
    {
        Rng rng(21);
        std::vector<int32_t> prompt;
        for (int64_t i = 0; i < prompt_len; ++i)
            prompt.push_back(
                static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));
        llm.prefill(prompt, cache);
    }

    Tensor
    queryAt(int64_t layer)
    {
        Rng rng(5);
        Tensor x = Tensor::randn({cfg.hidden}, rng);
        return llm.projectQuery(layer, x, cache.sequenceLength());
    }
};

TEST(FullAttentionRetriever, SelectsEverything)
{
    Fixture f;
    retrieval::FullAttentionRetriever r;
    auto sel = r.selectForLayer(0, f.queryAt(0), f.cache, f.prompt_len);
    EXPECT_TRUE(sel.full());
}

TEST(StreamingLLM, KeepsSinksAndWindow)
{
    Fixture f;
    retrieval::StreamingLLMRetriever r(16, 4);
    r.onPrefillComplete(f.cache, f.prompt_len);
    auto sel = r.selectForLayer(0, f.queryAt(0), f.cache, f.prompt_len);
    ASSERT_EQ(static_cast<int64_t>(sel.per_head.size()), f.cfg.kv_heads);
    const auto &keep = sel.per_head[0];
    ASSERT_EQ(static_cast<int64_t>(keep.size()), 16);
    // Sinks: first 4 positions.
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(keep[i], i);
    // Window: last 12 positions.
    EXPECT_EQ(keep.back(), f.prompt_len - 1);
    EXPECT_EQ(keep[4], f.prompt_len - 12);
}

TEST(StreamingLLM, ShortContextKeepsAll)
{
    Fixture f;
    retrieval::StreamingLLMRetriever r(256, 4);
    auto sel = r.selectForLayer(0, f.queryAt(0), f.cache, 32);
    EXPECT_EQ(sel.per_head[0].size(), 32u);
}

TEST(StreamingLLM, InputAgnostic)
{
    // Permanent eviction ignores the query (§3.1).
    Fixture f;
    retrieval::StreamingLLMRetriever r(16, 4);
    auto s1 = r.selectForLayer(0, f.queryAt(0), f.cache, f.prompt_len);
    auto s2 = r.selectForLayer(0, f.queryAt(1), f.cache, f.prompt_len);
    EXPECT_EQ(s1.per_head[0], s2.per_head[0]);
}

class BaselineBudgetSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(BaselineBudgetSweep, QuestRespectsBudgetOnPrompt)
{
    Fixture f;
    const int64_t budget = GetParam();
    retrieval::QuestRetriever r(budget, 8);
    r.onPrefillComplete(f.cache, f.prompt_len);
    auto sel = r.selectForLayer(0, f.queryAt(0), f.cache, f.prompt_len);
    for (const auto &head : sel.per_head) {
        // Page granularity may exceed the budget by at most one page.
        EXPECT_LE(static_cast<int64_t>(head.size()), budget + 8);
        EXPECT_TRUE(std::is_sorted(head.begin(), head.end()));
    }
}

TEST_P(BaselineBudgetSweep, ShadowKvExactBudgetOnPrompt)
{
    Fixture f;
    const int64_t budget = GetParam();
    retrieval::ShadowKVRetriever r(budget);
    r.onPrefillComplete(f.cache, f.prompt_len);
    auto sel = r.selectForLayer(0, f.queryAt(0), f.cache, f.prompt_len);
    for (const auto &head : sel.per_head) {
        EXPECT_EQ(static_cast<int64_t>(head.size()),
                  std::min(budget, f.prompt_len));
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BaselineBudgetSweep,
                         ::testing::Values(8, 16, 32, 64));

TEST(Quest, RetainsNewTokensInFull)
{
    // Challenge-2: positions past the prompt are always selected.
    Fixture f;
    retrieval::QuestRetriever r(16, 8);
    r.onPrefillComplete(f.cache, f.prompt_len);
    const int64_t ctx = f.prompt_len + 10; // 10 generated tokens
    auto sel = r.selectForLayer(0, f.queryAt(0), f.cache, ctx);
    for (const auto &head : sel.per_head) {
        for (int64_t p = f.prompt_len; p < ctx; ++p) {
            EXPECT_TRUE(std::binary_search(head.begin(), head.end(), p))
                << "generated position " << p << " missing";
        }
    }
}

TEST(Quest, SelectsWholePages)
{
    Fixture f;
    retrieval::QuestRetriever r(16, 8);
    r.onPrefillComplete(f.cache, f.prompt_len);
    auto sel = r.selectForLayer(0, f.queryAt(0), f.cache, f.prompt_len);
    // Positions come in aligned runs of the page size.
    const auto &head = sel.per_head[0];
    for (size_t i = 0; i < head.size(); i += 8) {
        EXPECT_EQ(head[i] % 8, 0);
        for (size_t j = 1; j < 8 && i + j < head.size(); ++j)
            EXPECT_EQ(head[i + j], head[i] + static_cast<int64_t>(j));
    }
}

TEST(ClusterKV, ClustersPartitionPrompt)
{
    Fixture f;
    retrieval::ClusterKVRetriever r(32, 8, 3);
    r.onPrefillComplete(f.cache, f.prompt_len);
    for (int64_t l = 0; l < f.cfg.layers; ++l) {
        for (int64_t h = 0; h < f.cfg.kv_heads; ++h) {
            const auto &kc = r.clusters(l, h);
            int64_t members = 0;
            std::vector<bool> seen(f.prompt_len, false);
            for (const auto &m : kc.members) {
                for (int64_t p : m) {
                    EXPECT_FALSE(seen[p]) << "position in two clusters";
                    seen[p] = true;
                    ++members;
                }
            }
            EXPECT_EQ(members, f.prompt_len);
        }
    }
}

TEST(ClusterKV, PreprocessingFlopsAccounted)
{
    Fixture f;
    retrieval::ClusterKVRetriever r(32, 8, 3);
    r.onPrefillComplete(f.cache, f.prompt_len);
    EXPECT_GT(r.preprocessFlops(), 0.0);
}

TEST(ClusterKV, RecallsWholeClusters)
{
    Fixture f;
    retrieval::ClusterKVRetriever r(24, 8, 3);
    r.onPrefillComplete(f.cache, f.prompt_len);
    auto sel = r.selectForLayer(0, f.queryAt(0), f.cache, f.prompt_len);
    // Every selected prompt position's whole cluster must be present.
    const auto &head = sel.per_head[0];
    const auto &kc = r.clusters(0, 0);
    for (int64_t c = 0; c < kc.count(); ++c) {
        const auto &m = kc.members[c];
        if (m.empty())
            continue;
        const bool first = std::binary_search(head.begin(), head.end(),
                                              m.front());
        for (int64_t p : m) {
            EXPECT_EQ(std::binary_search(head.begin(), head.end(), p),
                      first);
        }
    }
}

TEST(ShadowKV, QuantizationBoundedError)
{
    Fixture f;
    retrieval::ShadowKVRetriever r(32);
    r.onPrefillComplete(f.cache, f.prompt_len);
    const double err = r.meanQuantError(f.cache);
    EXPECT_GT(err, 0.0);   // lossy
    EXPECT_LT(err, 0.15);  // but small for int4 symmetric
}

TEST(ShadowKV, QuantizedValuesInRange)
{
    Fixture f;
    retrieval::ShadowKVRetriever r(32);
    r.onPrefillComplete(f.cache, f.prompt_len);
    const auto &qk = r.quantized(0, 0);
    for (int8_t v : qk.q) {
        EXPECT_GE(v, -7);
        EXPECT_LE(v, 7);
    }
}

TEST(ShadowKV, QuantizedScoresTrackExactScores)
{
    Fixture f;
    retrieval::ShadowKVRetriever r(32);
    r.onPrefillComplete(f.cache, f.prompt_len);
    const auto &qk = r.quantized(0, 0);
    Rng rng(33);
    std::vector<float> q(f.cfg.head_dim);
    for (auto &x : q)
        x = rng.gaussian();
    for (int64_t p = 0; p < 16; ++p) {
        float exact = 0.0f;
        const float *key = f.cache.layer(0).keyAt(p, 0);
        for (int64_t d = 0; d < f.cfg.head_dim; ++d)
            exact += q[d] * key[d];
        EXPECT_NEAR(qk.score(q.data(), p), exact,
                    0.35f * f.cfg.head_dim * 0.15f + 0.5f);
    }
}

TEST(Baselines, StatsAccumulate)
{
    Fixture f;
    retrieval::ShadowKVRetriever r(16);
    r.onPrefillComplete(f.cache, f.prompt_len);
    r.selectForLayer(0, f.queryAt(0), f.cache, f.prompt_len);
    r.selectForLayer(1, f.queryAt(1), f.cache, f.prompt_len);
    EXPECT_EQ(r.stats().select_calls, 2);
    EXPECT_GT(r.stats().score_flops, 0.0);
    r.resetStats();
    EXPECT_EQ(r.stats().select_calls, 0);
}

} // namespace
} // namespace specontext
