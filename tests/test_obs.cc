/**
 * @file
 * Tests of the observability layer: trace ring semantics (wrap,
 * dropped accounting, snapshot order), the OBS_EVENT no-op guarantees,
 * counter registry semantics, sampler cadence and bounds, the JSON
 * utilities (escape / row builder / parser round-trips), exporter
 * output re-parsed through the repo's own parser, the metrics
 * sorted-series cache, and the headline invariant: a Cluster run with
 * every observability hook attached is bit-identical to the unobserved
 * run.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "serving/cluster.h"
#include "workload/trace.h"

namespace specontext {
namespace {

using obs::CounterRegistry;
using obs::EventType;
using obs::JsonValue;
using obs::Trace;
using obs::TraceEvent;
using obs::TimeseriesSampler;

// ---------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------

TEST(ObsTrace, RetainsEventsInEmitOrderBelowCapacity)
{
    Trace t({8});
    t.emit(EventType::Enqueue, 1.0, 0, 100, 7, 9);
    t.emit(EventType::Admit, 2.0, 1, 100, 0, 16);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.emitted(), 2u);
    EXPECT_EQ(t.dropped(), 0u);
    const auto snap = t.snapshot();
    EXPECT_EQ(snap[0].type, EventType::Enqueue);
    EXPECT_DOUBLE_EQ(snap[0].t_seconds, 1.0);
    EXPECT_EQ(snap[0].replica, 0);
    EXPECT_EQ(snap[0].request, 100);
    EXPECT_EQ(snap[0].a, 7);
    EXPECT_EQ(snap[0].b, 9);
    EXPECT_EQ(snap[1].type, EventType::Admit);
}

TEST(ObsTrace, WrapsKeepingMostRecentAndCountsDropped)
{
    Trace t({4});
    for (int64_t i = 0; i < 7; ++i)
        t.emit(EventType::DecodeStep, static_cast<double>(i), 0, -1, i);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.emitted(), 7u);
    EXPECT_EQ(t.dropped(), 3u);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // Oldest-first linearization: events 3, 4, 5, 6 survive.
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(snap[static_cast<size_t>(i)].a, i + 3);
}

TEST(ObsTrace, ClearResetsRetainedAndLifetimeCounters)
{
    Trace t({2});
    t.emit(EventType::Complete, 1.0, 0, 1);
    t.emit(EventType::Complete, 2.0, 0, 2);
    t.emit(EventType::Complete, 3.0, 0, 3);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.emitted(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    t.emit(EventType::Complete, 4.0, 0, 4);
    EXPECT_EQ(t.snapshot()[0].request, 4);
}

TEST(ObsTrace, ZeroCapacityThrows)
{
    EXPECT_THROW(Trace({0}), std::invalid_argument);
}

TEST(ObsTrace, EventStaysWithinByteBudget)
{
    // The static_assert in trace.h pins this at compile time; restate
    // it here so the budget shows up in test output when it moves.
    EXPECT_LE(sizeof(TraceEvent), 40u);
}

TEST(ObsTrace, ObsEventMacroIsNullSafe)
{
    Trace *none = nullptr;
    // Must not crash and must not evaluate into anything observable.
    OBS_EVENT(none, EventType::Admit, 1.0, 0, 1, 2, 3);
    Trace t({2});
    Trace *some = &t;
    OBS_EVENT(some, EventType::Admit, 1.0, 0, 1, 2, 3);
    (void)none;
    (void)some; // unused when the macro is compiled out
#if SPECONTEXT_OBS_ENABLED
    EXPECT_EQ(t.emitted(), 1u);
#else
    EXPECT_EQ(t.emitted(), 0u);
#endif
}

// ---------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------

TEST(ObsCounters, GetOrCreateReturnsStableHandles)
{
    CounterRegistry reg;
    const auto h1 = reg.counter("replica0.completed");
    const auto h2 = reg.counter("replica0.completed");
    EXPECT_EQ(h1, h2);
    reg.add(h1, 3);
    reg.add(h2, 2);
    EXPECT_EQ(reg.value(h1), 5);
    EXPECT_EQ(reg.valueOf("replica0.completed"), 5);
    EXPECT_EQ(reg.valueOf("never.registered"), 0);
}

TEST(ObsCounters, GaugesSetToLevelAndKindMismatchThrows)
{
    CounterRegistry reg;
    const auto g = reg.gauge("replica0.queue_depth");
    reg.set(g, 7);
    reg.set(g, 4);
    EXPECT_EQ(reg.value(g), 4);
    EXPECT_TRUE(reg.isGauge(g));
    EXPECT_THROW(reg.counter("replica0.queue_depth"),
                 std::invalid_argument);
    reg.counter("replica0.admitted");
    EXPECT_THROW(reg.gauge("replica0.admitted"), std::invalid_argument);
}

TEST(ObsCounters, GaugeReadAccessorPollsByHandle)
{
    // The autoscale controller's polling path: resolve the handle
    // once, then read the live level with gauge(h) — no snapshot or
    // name lookup per tick.
    CounterRegistry reg;
    const auto g = reg.gauge("replica0.queue_depth");
    EXPECT_EQ(reg.gauge(g), 0); // never-set gauge reads 0
    reg.set(g, 11);
    EXPECT_EQ(reg.gauge(g), 11);
    reg.set(g, 3);
    EXPECT_EQ(reg.gauge(g), 3);
    // Type and range safety: counter handles and stale handles are
    // rejected rather than silently misread.
    const auto c = reg.counter("replica0.completed");
    EXPECT_THROW(reg.gauge(c), std::invalid_argument);
    EXPECT_THROW(reg.gauge(static_cast<CounterRegistry::Handle>(99)),
                 std::out_of_range);
}

TEST(ObsCounters, SnapshotIsNameSortedAndCoherent)
{
    CounterRegistry reg;
    reg.add(reg.counter("zeta"), 1);
    reg.add(reg.counter("alpha"), 2);
    reg.set(reg.gauge("mid"), 3);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "alpha");
    EXPECT_EQ(snap[1].name, "mid");
    EXPECT_EQ(snap[2].name, "zeta");
    EXPECT_EQ(snap[0].value, 2);
    EXPECT_TRUE(snap[1].is_gauge);
    EXPECT_FALSE(snap[2].is_gauge);
}

// ---------------------------------------------------------------------
// Time-series sampler
// ---------------------------------------------------------------------

TEST(ObsSampler, RecordsOneRowPerCadenceCrossing)
{
    CounterRegistry reg;
    const auto c = reg.counter("ticks");
    TimeseriesSampler s(&reg, {1.0, 100});
    s.sample(0.0); // first row at trace start
    reg.add(c, 1);
    s.sample(0.5); // no crossing yet
    reg.add(c, 1);
    s.sample(2.5); // crossings at 1.0 and 2.0
    ASSERT_EQ(s.samples().size(), 3u);
    EXPECT_DOUBLE_EQ(s.samples()[0].t_seconds, 0.0);
    EXPECT_DOUBLE_EQ(s.samples()[1].t_seconds, 1.0);
    EXPECT_DOUBLE_EQ(s.samples()[2].t_seconds, 2.0);
    EXPECT_EQ(s.samples()[0].values[0], 0);
    // Both crossings see the value carried since the last event.
    EXPECT_EQ(s.samples()[1].values[0], 2);
    EXPECT_EQ(s.samples()[2].values[0], 2);
    // Idempotent for non-advancing time.
    s.sample(2.5);
    EXPECT_EQ(s.samples().size(), 3u);
}

TEST(ObsSampler, FlushRecordsFinalPartialRowWithoutShiftingCadence)
{
    CounterRegistry reg;
    const auto c = reg.counter("ticks");
    TimeseriesSampler s(&reg, {1.0, 100});
    s.sample(0.0);
    reg.add(c, 3);
    // A run ending mid-interval: flush stamps the partial window at
    // the end instant itself, so the last 0.4s of activity is not
    // silently absent from the CSV.
    s.flush(2.4); // crossings at 1.0, 2.0 + partial row at 2.4
    ASSERT_EQ(s.samples().size(), 4u);
    EXPECT_DOUBLE_EQ(s.samples()[2].t_seconds, 2.0);
    EXPECT_DOUBLE_EQ(s.samples()[3].t_seconds, 2.4);
    EXPECT_EQ(s.samples()[3].values[0], 3);
    // Idempotent: a second flush at the same instant records nothing.
    s.flush(2.4);
    EXPECT_EQ(s.samples().size(), 4u);
    // The cadence grid did not shift: the next regular row still cuts
    // at 3.0, not 3.4.
    EXPECT_DOUBLE_EQ(s.nextSampleSeconds(), 3.0);
    s.sample(3.1);
    ASSERT_EQ(s.samples().size(), 5u);
    EXPECT_DOUBLE_EQ(s.samples()[4].t_seconds, 3.0);
}

TEST(ObsSampler, FlushOnCadenceInstantAddsNothingExtra)
{
    CounterRegistry reg;
    reg.counter("x");
    TimeseriesSampler s(&reg, {1.0, 100});
    s.flush(2.0); // crossings at 0, 1, 2 — 2.0 is itself a crossing
    EXPECT_EQ(s.samples().size(), 3u);
    EXPECT_DOUBLE_EQ(s.samples().back().t_seconds, 2.0);
    // A short run ending inside its first interval still yields the
    // trace-start row plus the partial row.
    TimeseriesSampler t(&reg, {10.0, 100});
    t.flush(0.25);
    ASSERT_EQ(t.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(t.samples()[0].t_seconds, 0.0);
    EXPECT_DOUBLE_EQ(t.samples()[1].t_seconds, 0.25);
}

TEST(ObsSampler, FlushRespectsMaxSamplesCap)
{
    CounterRegistry reg;
    reg.counter("x");
    TimeseriesSampler s(&reg, {1.0, 3});
    s.flush(5.5); // crossings 0..5 = 6 rows + 1 partial, 3 stored
    EXPECT_EQ(s.samples().size(), 3u);
    EXPECT_EQ(s.droppedSamples(), 4u);
}

TEST(ObsSampler, CapsStoredRowsAndCountsTheRest)
{
    CounterRegistry reg;
    reg.counter("x");
    TimeseriesSampler s(&reg, {1.0, 4});
    s.sample(10.0); // crossings at 0..10 = 11 rows, 4 stored
    EXPECT_EQ(s.samples().size(), 4u);
    EXPECT_EQ(s.droppedSamples(), 7u);
}

TEST(ObsSampler, LateRegisteredSlotsGiveRaggedEarlyRows)
{
    CounterRegistry reg;
    reg.counter("first");
    TimeseriesSampler s(&reg, {1.0, 100});
    s.sample(0.0);
    reg.counter("second");
    s.sample(1.0);
    ASSERT_EQ(s.samples().size(), 2u);
    EXPECT_EQ(s.samples()[0].values.size(), 1u);
    EXPECT_EQ(s.samples()[1].values.size(), 2u);
}

TEST(ObsSampler, RejectsNullRegistryAndBadInterval)
{
    CounterRegistry reg;
    EXPECT_THROW(TimeseriesSampler(nullptr, {1.0, 10}),
                 std::invalid_argument);
    EXPECT_THROW(TimeseriesSampler(&reg, {0.0, 10}),
                 std::invalid_argument);
    EXPECT_THROW(TimeseriesSampler(&reg, {-2.0, 10}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// JSON utilities
// ---------------------------------------------------------------------

TEST(ObsJson, EscapeCoversQuotesBackslashesAndControls)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(obs::jsonEscape(std::string("a\x01") + "b"),
              "a\\u0001b");
}

TEST(ObsJson, RowBuilderPreservesInsertionOrderAndFormats)
{
    obs::JsonRow row;
    row.str("mode", "opt")
        .num("load", 0.05, "%.2f")
        .num("n", static_cast<int64_t>(4))
        .boolean("ok", true)
        .raw("series", "[1, 2]");
    EXPECT_EQ(row.render(), "{\"mode\": \"opt\", \"load\": 0.05, "
                            "\"n\": 4, \"ok\": true, "
                            "\"series\": [1, 2]}");
}

TEST(ObsJson, NumberArrays)
{
    EXPECT_EQ(obs::jsonNumberArray(std::vector<int64_t>{3, 1, 4}),
              "[3, 1, 4]");
    EXPECT_EQ(obs::jsonNumberArray(std::vector<double>{0.5, 1.25},
                                   "%.2f"),
              "[0.50, 1.25]");
    EXPECT_EQ(obs::jsonNumberArray(std::vector<int64_t>{}), "[]");
}

TEST(ObsJson, ParserRoundTripsBuilderOutput)
{
    obs::JsonRow row;
    row.str("name", "a\"b\\c")
        .num("count", static_cast<int64_t>(42))
        .num("ratio", 0.125, "%.3f")
        .boolean("flag", false)
        .raw("nothing", "null")
        .raw("arr", "[1, 2.5, \"s\", true, null]");
    JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::jsonParse(row.render(), v, &err)) << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("name")->string, "a\"b\\c");
    EXPECT_DOUBLE_EQ(v.find("count")->number, 42.0);
    EXPECT_DOUBLE_EQ(v.find("ratio")->number, 0.125);
    EXPECT_FALSE(v.find("flag")->boolean);
    EXPECT_TRUE(v.find("nothing")->isNull());
    const JsonValue *arr = v.find("arr");
    ASSERT_TRUE(arr && arr->isArray());
    ASSERT_EQ(arr->array.size(), 5u);
    EXPECT_DOUBLE_EQ(arr->array[1].number, 2.5);
    EXPECT_EQ(arr->array[2].string, "s");
    EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(ObsJson, ParserRejectsMalformedDocuments)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(obs::jsonParse("{\"a\": 1,}", v, &err));
    EXPECT_FALSE(obs::jsonParse("[1, 2] trailing", v, &err));
    EXPECT_FALSE(obs::jsonParse("{\"a\" 1}", v, &err));
    EXPECT_FALSE(obs::jsonParse("nul", v, &err));
    EXPECT_FALSE(obs::jsonParse("", v, &err));
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------
// Full-stack: observed run bit-identical, exporters parse back
// ---------------------------------------------------------------------

serving::ReplicaConfig
preemptingReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.allow_full_attention_offload = false;
    opts.prefix_reload_gbps = 200.0;
    rc.timing.system =
        core::SystemRegistry::create("FullAttn(FlashAttn)", opts);
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = 8LL << 30;
    rc.prefix_cache.page_size = 16;
    rc.scheduler_mode = serving::SchedulerMode::Optimistic;
    rc.victim_policy = serving::VictimPolicy::LastAdmitted;
    return rc;
}

std::vector<serving::Request>
overloadTrace()
{
    workload::MultiTurnTraceConfig mt;
    // bench_preemption's load=8.0 overload point: known to preempt
    // (BENCH_preempt.json pins nonzero preemptions at this shape).
    mt.base.num_requests = 12;
    mt.base.arrival_rate_per_s = 0.8;
    mt.base.seed = 11;
    mt.turns = 4;
    mt.first_prompt_lo = 2048;
    mt.first_prompt_hi = 8192;
    mt.followup_lo = 64;
    mt.followup_hi = 256;
    mt.gen_lo = 4096;
    mt.gen_hi = 16384;
    mt.think_time_mean_s = 15.0;
    return workload::multiTurnTrace(mt);
}

struct ObservedRun
{
    obs::Trace trace{obs::TraceConfig{1 << 18}};
    obs::CounterRegistry counters;
    obs::TimeseriesSampler sampler{&counters,
                                   obs::TimeseriesSamplerConfig{
                                       10.0, 1 << 14}};
    serving::ClusterResult baseline;
    serving::ClusterResult observed;
};

/** One overloaded 2-replica Optimistic run, unobserved and observed
 *  on identical inputs (shared across the full-stack tests). */
const ObservedRun &
observedRun()
{
    static ObservedRun *run = [] {
        auto *r = new ObservedRun;
        const core::TimingEngine engine;
        const auto trace = overloadTrace();
        serving::ClusterConfig cc;
        cc.replicas = {preemptingReplica(), preemptingReplica()};
        cc.router.policy = serving::RouterPolicy::LeastKvLoad;
        r->baseline = serving::Cluster(engine, cc).run(trace);
        cc.obs = {&r->trace, &r->counters, &r->sampler};
        r->observed = serving::Cluster(engine, cc).run(trace);
        return r;
    }();
    return *run;
}

TEST(ObsFullStack, ObservedRunIsBitIdenticalToUnobserved)
{
    const ObservedRun &run = observedRun();
    const serving::ServingSummary a = run.baseline.summary();
    const serving::ServingSummary b = run.observed.summary();
    // Bitwise (==, not NEAR): instrumentation must never perturb the
    // simulation, only record it.
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.total_generated_tokens, b.total_generated_tokens);
    EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
    EXPECT_EQ(a.throughput_tokens_per_s, b.throughput_tokens_per_s);
    EXPECT_EQ(a.ttft_mean, b.ttft_mean);
    EXPECT_EQ(a.ttft_p99, b.ttft_p99);
    EXPECT_EQ(a.e2e_p99, b.e2e_p99);
    EXPECT_EQ(a.tpot_mean, b.tpot_mean);
    EXPECT_EQ(a.queue_delay_mean, b.queue_delay_mean);
    EXPECT_EQ(run.baseline.fleet.preempt.preemptions,
              run.observed.fleet.preempt.preemptions);
    EXPECT_EQ(run.baseline.fleet.preempt.recompute_tokens,
              run.observed.fleet.preempt.recompute_tokens);
    ASSERT_EQ(run.baseline.placements.size(),
              run.observed.placements.size());
    for (size_t i = 0; i < run.baseline.placements.size(); ++i) {
        EXPECT_EQ(run.baseline.placements[i].request_id,
                  run.observed.placements[i].request_id);
        EXPECT_EQ(run.baseline.placements[i].replica,
                  run.observed.placements[i].replica);
    }
    // The workload must actually exercise the preemption path, or the
    // trace-content assertions below are vacuous.
    EXPECT_GT(run.observed.fleet.preempt.preemptions, 0);
}

TEST(ObsFullStack, CountersAgreeWithServingResults)
{
    const ObservedRun &run = observedRun();
    const obs::CounterRegistry &c = run.counters;
    EXPECT_EQ(c.valueOf("replica0.completed_requests") +
                  c.valueOf("replica1.completed_requests"),
              run.observed.summary().completed);
    EXPECT_EQ(c.valueOf("replica0.preemptions") +
                  c.valueOf("replica1.preemptions"),
              run.observed.fleet.preempt.preemptions);
    EXPECT_EQ(c.valueOf("router.placements"),
              static_cast<int64_t>(run.observed.placements.size()));
    EXPECT_EQ(c.valueOf("router.to_replica0") +
                  c.valueOf("router.to_replica1"),
              c.valueOf("router.placements"));
    EXPECT_GT(c.valueOf("clock.rounds"), 0);
}

TEST(ObsFullStack, ChromeTraceExportParsesWithSpansOnReplicaLanes)
{
    const ObservedRun &run = observedRun();
    const std::string path = "test_obs_chrome_trace.json";
    ASSERT_TRUE(obs::writeChromeTrace(
        run.trace, path, {"replica0", "replica1"}));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::jsonParse(buf.str(), doc, &err)) << err;

    const JsonValue *events = doc.find("traceEvents");
    ASSERT_TRUE(events && events->isArray());
#if !SPECONTEXT_OBS_ENABLED
    // OBS_EVENT compiles to ((void)0): the exporter must still write
    // a valid (empty) document, but there is no content to check.
    EXPECT_TRUE(events->array.empty());
    std::remove(path.c_str());
    return;
#endif
    ASSERT_FALSE(events->array.empty());

    std::set<std::string> instant_names;
    std::set<double> admit_lanes;
    size_t slices = 0;
    for (const JsonValue &e : events->array) {
        const JsonValue *ph = e.find("ph");
        ASSERT_TRUE(ph);
        if (ph->string == "i") {
            instant_names.insert(e.find("name")->string);
            if (e.find("name")->string == "Admit")
                admit_lanes.insert(e.find("tid")->number);
        } else if (ph->string == "X") {
            ++slices;
            EXPECT_GE(e.find("dur")->number, 0.0);
            EXPECT_TRUE(e.find("args") != nullptr);
        }
    }
    // The overload run must land the headline lifecycle markers.
    for (const char *name :
         {"Admit", "Preempt", "Restore", "Complete", "DecodeStep"})
        EXPECT_TRUE(instant_names.count(name))
            << name << " missing from trace";
    // Admissions happen on both replica lanes (distinct tids).
    EXPECT_TRUE(admit_lanes.count(0.0));
    EXPECT_TRUE(admit_lanes.count(1.0));
    EXPECT_GT(slices, 0u);
    std::remove(path.c_str());
}

TEST(ObsFullStack, CountersJsonExportParsesNameSorted)
{
    const ObservedRun &run = observedRun();
    const std::string path = "test_obs_counters.json";
    ASSERT_TRUE(obs::writeCountersJson(run.counters, path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::jsonParse(buf.str(), doc, &err)) << err;
    const JsonValue *counters = doc.find("counters");
    ASSERT_TRUE(counters && counters->isArray());
    ASSERT_EQ(counters->array.size(), run.counters.size());
    std::string prev;
    for (const JsonValue &e : counters->array) {
        const std::string name = e.find("name")->string;
        EXPECT_LE(prev, name); // name-sorted
        const std::string kind = e.find("kind")->string;
        EXPECT_TRUE(kind == "counter" || kind == "gauge");
        ASSERT_TRUE(e.find("value") != nullptr);
        prev = name;
    }
    std::remove(path.c_str());
}

TEST(ObsFullStack, TimeseriesCsvHasHeaderAndOneRowPerSample)
{
    const ObservedRun &run = observedRun();
    const std::string path = "test_obs_timeseries.csv";
    ASSERT_TRUE(obs::writeTimeseriesCsv(run.sampler, path));
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.rfind("t_seconds,", 0), 0u);
    size_t rows = 0;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, run.sampler.samples().size());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Metrics sorted-series cache (satellite of this layer)
// ---------------------------------------------------------------------

serving::Request
finishedRequest(int64_t id, double arrival, double ttft, double e2e)
{
    serving::Request r;
    r.id = id;
    r.arrival_seconds = arrival;
    r.prompt_len = 128;
    r.gen_len = 32;
    r.generated = 32;
    r.state = serving::RequestState::Finished;
    r.admit_seconds = arrival;
    r.last_admit_seconds = arrival;
    r.first_token_seconds = arrival + ttft;
    r.finish_seconds = arrival + e2e;
    return r;
}

TEST(ObsMetricsCache, RepeatedSummarizeIsStableAndInvalidatesOnRecord)
{
    serving::ServingMetrics m;
    m.record(finishedRequest(1, 0.0, 0.5, 2.0));
    m.record(finishedRequest(2, 1.0, 1.5, 4.0));
    m.record(finishedRequest(3, 2.0, 1.0, 3.0));

    const serving::ServingSummary s1 = m.summarize(10.0);
    const serving::ServingSummary s2 = m.summarize(10.0);
    EXPECT_EQ(s1.ttft_p50, s2.ttft_p50);
    EXPECT_EQ(s1.ttft_p99, s2.ttft_p99);
    EXPECT_EQ(s1.e2e_p99, s2.e2e_p99);
    EXPECT_DOUBLE_EQ(s1.ttft_p50, 1.0);

    // A new record must invalidate the cached sorted series.
    m.record(finishedRequest(4, 3.0, 9.0, 12.0));
    const serving::ServingSummary s3 = m.summarize(10.0);
    EXPECT_GT(s3.ttft_p99, s1.ttft_p99);
    EXPECT_EQ(s3.completed, 4);

    // merge() invalidates too.
    serving::ServingMetrics other;
    other.record(finishedRequest(5, 0.0, 20.0, 30.0), 1);
    m.merge(other);
    const serving::ServingSummary s4 = m.summarize(40.0);
    EXPECT_EQ(s4.completed, 5);
    EXPECT_GT(s4.ttft_p99, s3.ttft_p99);
    // Per-replica scope caches independently of the fleet scope.
    const serving::ServingSummary rep1 = m.summarizeReplica(1, 40.0);
    EXPECT_EQ(rep1.completed, 1);
    EXPECT_DOUBLE_EQ(rep1.ttft_mean, 20.0);
}

} // namespace
} // namespace specontext
