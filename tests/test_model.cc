/**
 * @file
 * Tests of the transformer substrate, parameterized over the four
 * attention mechanisms the retrieval head supports (MHA/GQA/MQA/MLA).
 */
#include <gtest/gtest.h>

#include "kvcache/kv_cache.h"
#include "model/config.h"
#include "model/tokenizer.h"
#include "model/transformer.h"
#include "tensor/rng.h"

namespace specontext {
namespace {

using model::AttentionKind;

std::vector<int32_t>
randomPrompt(int64_t n, int64_t vocab, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int32_t> p(n);
    for (auto &t : p)
        t = static_cast<int32_t>(2 + rng.uniformInt(vocab - 2));
    return p;
}

TEST(ModelConfig, ValidatePasses)
{
    for (auto k : {AttentionKind::MHA, AttentionKind::GQA,
                   AttentionKind::MQA, AttentionKind::MLA}) {
        EXPECT_NO_THROW(model::tinyConfig(k).validate());
    }
}

TEST(ModelConfig, ValidateCatchesBadGqa)
{
    auto c = model::tinyConfig(AttentionKind::GQA);
    c.kv_heads = 3; // 4 % 3 != 0
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ModelConfig, ValidateCatchesOddHeadDim)
{
    auto c = model::tinyConfig(AttentionKind::MHA);
    c.head_dim = 15;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ModelConfig, GroupsComputed)
{
    EXPECT_EQ(model::tinyConfig(AttentionKind::GQA).groups(), 2);
    EXPECT_EQ(model::tinyConfig(AttentionKind::MQA).groups(), 4);
    EXPECT_EQ(model::tinyConfig(AttentionKind::MHA).groups(), 1);
}

TEST(ModelConfig, GeometryPresetsMatchPublicSizes)
{
    // Llama3.1-8B has ~8.0B parameters; we accept 5 % slack because the
    // preset omits biases and norm minutiae.
    const auto l8 = model::llama31_8bGeometry();
    EXPECT_NEAR(static_cast<double>(l8.parameterCount()), 8.0e9, 0.4e9);

    const auto q8 = model::qwen3_8bGeometry();
    EXPECT_NEAR(static_cast<double>(q8.parameterCount()), 8.2e9, 0.5e9);

    // Llama3.2-1B ties embeddings: ~1.24B.
    const auto l1 = model::reasoningLlama32_1bGeometry();
    EXPECT_NEAR(static_cast<double>(l1.parameterCount()), 1.24e9, 0.3e9);
}

TEST(ModelConfig, KvBytesPerTokenLlama8b)
{
    // 32 layers * 8 kv heads * 128 dim * 2 (K+V) * 2 bytes = 128 KiB.
    EXPECT_EQ(model::llama31_8bGeometry().kvBytesPerToken(), 131072);
}

TEST(ModelConfig, PrunedHeadIsSmall)
{
    // ~0.03B params (~60 MB FP16) for the 8B geometry (§7.4) — and
    // >90 % smaller than the ~0.5B full DLM.
    const auto base = model::llama31_8bGeometry();
    const int64_t pruned = model::prunedRetrievalHeadParams(base);
    EXPECT_NEAR(static_cast<double>(pruned), 0.021e9, 0.01e9);
    const auto dlm = model::dlmGeometryFor(base);
    EXPECT_GT(dlm.parameterCount(), 10 * pruned);
}

class TransformerAllKinds
    : public ::testing::TestWithParam<AttentionKind>
{
  protected:
    model::ModelConfig cfg_ = model::tinyConfig(GetParam());
    model::Transformer llm_ = model::Transformer::randomInit(cfg_, 42);
};

TEST_P(TransformerAllKinds, PrefillFillsCacheAndReturnsLogits)
{
    kv::KVCacheSet cache(cfg_);
    auto prompt = randomPrompt(16, cfg_.vocab, 1);
    Tensor logits = llm_.prefill(prompt, cache);
    EXPECT_EQ(cache.sequenceLength(), 16);
    EXPECT_EQ(logits.numel(), cfg_.vocab);
}

TEST_P(TransformerAllKinds, DecodeAppendsOneToken)
{
    kv::KVCacheSet cache(cfg_);
    llm_.prefill(randomPrompt(8, cfg_.vocab, 2), cache);
    llm_.decodeStep(5, cache);
    EXPECT_EQ(cache.sequenceLength(), 9);
}

TEST_P(TransformerAllKinds, DeterministicAcrossRuns)
{
    auto prompt = randomPrompt(12, cfg_.vocab, 3);
    kv::KVCacheSet c1(cfg_), c2(cfg_);
    Tensor l1 = llm_.prefill(prompt, c1);
    Tensor l2 = llm_.prefill(prompt, c2);
    for (int64_t i = 0; i < l1.numel(); ++i)
        EXPECT_EQ(l1.data()[i], l2.data()[i]);
}

TEST_P(TransformerAllKinds, FullSelectionMatchesNoSelector)
{
    // A selector that lists every position must reproduce full
    // attention bit-for-bit (mathematical equivalence check).
    auto prompt = randomPrompt(10, cfg_.vocab, 4);
    kv::KVCacheSet c1(cfg_), c2(cfg_);
    llm_.prefill(prompt, c1);
    llm_.prefill(prompt, c2);

    Tensor full = llm_.decodeStep(7, c1);

    const int64_t heads = cfg_.attention == AttentionKind::MLA
                              ? cfg_.q_heads
                              : cfg_.kv_heads;
    model::LayerSelector everything =
        [&](int64_t, const Tensor &) {
            model::LayerSelection sel;
            std::vector<int64_t> all;
            for (int64_t p = 0; p < 10; ++p)
                all.push_back(p);
            sel.per_head.assign(heads, all);
            return sel;
        };
    Tensor sparse = llm_.decodeStep(7, c2, &everything);
    for (int64_t i = 0; i < full.numel(); ++i)
        EXPECT_NEAR(full.data()[i], sparse.data()[i], 1e-4);
}

TEST_P(TransformerAllKinds, SparseSelectionChangesOutput)
{
    auto prompt = randomPrompt(32, cfg_.vocab, 5);
    kv::KVCacheSet c1(cfg_), c2(cfg_);
    llm_.prefill(prompt, c1);
    llm_.prefill(prompt, c2);
    Tensor full = llm_.decodeStep(7, c1);

    const int64_t heads = cfg_.attention == AttentionKind::MLA
                              ? cfg_.q_heads
                              : cfg_.kv_heads;
    model::LayerSelector tiny = [&](int64_t, const Tensor &) {
        model::LayerSelection sel;
        sel.per_head.assign(heads, {0, 1}); // only two old tokens
        return sel;
    };
    Tensor sparse = llm_.decodeStep(7, c2, &tiny);
    double diff = 0.0;
    for (int64_t i = 0; i < full.numel(); ++i)
        diff += std::abs(full.data()[i] - sparse.data()[i]);
    EXPECT_GT(diff, 1e-3);
}

TEST_P(TransformerAllKinds, TraceRecordsAttentionRows)
{
    kv::KVCacheSet cache(cfg_);
    llm_.prefill(randomPrompt(6, cfg_.vocab, 6), cache);
    model::StepTrace trace;
    trace.record_attention = true;
    llm_.decodeStep(3, cache, nullptr, &trace);
    ASSERT_EQ(static_cast<int64_t>(trace.attention.size()), cfg_.layers);
    EXPECT_EQ(trace.attention[0].dim(0), cfg_.q_heads);
    EXPECT_EQ(trace.attention[0].dim(1), 7); // 6 prompt + self

    // Each head's probabilities sum to 1.
    for (int64_t h = 0; h < cfg_.q_heads; ++h) {
        float sum = 0.0f;
        for (int64_t p = 0; p < 7; ++p)
            sum += trace.attention[0].at(h, p);
        EXPECT_NEAR(sum, 1.0f, 1e-4);
    }
}

TEST_P(TransformerAllKinds, RejectsOutOfVocabToken)
{
    kv::KVCacheSet cache(cfg_);
    EXPECT_THROW(llm_.decodeStep(static_cast<int32_t>(cfg_.vocab),
                                 cache),
                 std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TransformerAllKinds,
    ::testing::Values(AttentionKind::MHA, AttentionKind::GQA,
                      AttentionKind::MQA, AttentionKind::MLA),
    [](const ::testing::TestParamInfo<AttentionKind> &info) {
        return model::attentionKindName(info.param);
    });

TEST(Tokenizer, StableWordIds)
{
    model::ToyTokenizer tok(256);
    EXPECT_EQ(tok.wordId("ocean"), tok.wordId("ocean"));
    EXPECT_NE(tok.wordId("ocean"), tok.wordId("pacific"));
}

TEST(Tokenizer, EncodeSplitsOnWhitespace)
{
    model::ToyTokenizer tok(256);
    auto ids = tok.encode("what is the largest ocean");
    EXPECT_EQ(ids.size(), 5u);
    EXPECT_EQ(tok.tokenName(ids[4]), "ocean");
}

TEST(Tokenizer, ReservedSpecials)
{
    model::ToyTokenizer tok(256);
    EXPECT_EQ(tok.tokenName(model::ToyTokenizer::kBos), "<bos>");
    auto ids = tok.encode("a b c d e f g h");
    for (int32_t id : ids)
        EXPECT_GE(id, 2);
}

TEST(Weights, RetrievalAffinityCouplesQk)
{
    // With affinity 1 and GQA, a query head's columns equal its KV
    // head's key columns.
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    model::InitOptions io;
    io.retrieval_affinity = 1.0f;
    auto w = model::ModelWeights::random(cfg, 11, io);
    const auto &l = w.layers[0];
    for (int64_t r = 0; r < cfg.hidden; ++r)
        EXPECT_FLOAT_EQ(l.wq.at(r, 0), l.wk.at(r, 0));
}

TEST(Weights, ZeroAffinityLeavesQkIndependent)
{
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    model::InitOptions io;
    io.retrieval_affinity = 0.0f;
    auto w = model::ModelWeights::random(cfg, 11, io);
    const auto &l = w.layers[0];
    double diff = 0.0;
    for (int64_t r = 0; r < cfg.hidden; ++r)
        diff += std::abs(l.wq.at(r, 0) - l.wk.at(r, 0));
    EXPECT_GT(diff, 0.1);
}

} // namespace
} // namespace specontext
