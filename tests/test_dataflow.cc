/**
 * @file
 * Tests of the Fig. 7 dataflow timelines: relative ordering of the
 * five system families and overlap behaviour on the two streams.
 */
#include <gtest/gtest.h>

#include "core/dataflow.h"

namespace specontext {
namespace {

using core::DataflowKind;
using core::DataflowParams;

DataflowParams
offloadedParams()
{
    DataflowParams p;
    p.llm = model::llama31_8bGeometry();
    p.hw = sim::HardwareSpec::cloudA800();
    p.seq_len = 32768;
    p.budget = 2048;
    return p;
}

TEST(Dataflow, Fig7OrderingHolds)
{
    // The whole point of Fig. 7: (a) full prefetch is worst, (b)
    // serialized sparse fetch improves on it, prefetching variants
    // improve further, and SpeContext's elastic prefetch is best.
    const auto p = offloadedParams();
    const double full =
        simulateTokenDataflow(DataflowKind::PrefetchFullKV, p)
            .token_seconds;
    const double fetch =
        simulateTokenDataflow(DataflowKind::FetchSparseKV, p)
            .token_seconds;
    const double spec =
        simulateTokenDataflow(DataflowKind::PrefetchSparseKV, p)
            .token_seconds;
    const double shadow =
        simulateTokenDataflow(DataflowKind::PrefetchSparseV, p)
            .token_seconds;
    const double ours =
        simulateTokenDataflow(DataflowKind::SpeContextElastic, p)
            .token_seconds;

    EXPECT_LT(fetch, full);
    EXPECT_LT(spec, fetch);
    EXPECT_LT(shadow, fetch);
    EXPECT_LT(ours, shadow);
    EXPECT_LT(ours, spec);
}

TEST(Dataflow, SpeContextHidesTransfers)
{
    // With elastic diffs, the copy stream runs ahead of compute and
    // exposed transfer time is a small fraction of the token time.
    const auto p = offloadedParams();
    const auto r =
        simulateTokenDataflow(DataflowKind::SpeContextElastic, p);
    EXPECT_LT(r.exposed_transfer, 0.25 * r.token_seconds);
}

TEST(Dataflow, FullPrefetchDominatedByTransfers)
{
    const auto p = offloadedParams();
    const auto r =
        simulateTokenDataflow(DataflowKind::PrefetchFullKV, p);
    EXPECT_GT(r.copy_busy, r.compute_busy);
}

TEST(Dataflow, ElasticOverlapParameterMatters)
{
    auto p = offloadedParams();
    p.elastic_overlap = 0.0;
    const double no_reuse =
        simulateTokenDataflow(DataflowKind::SpeContextElastic, p)
            .token_seconds;
    p.elastic_overlap = 0.9;
    const double reuse =
        simulateTokenDataflow(DataflowKind::SpeContextElastic, p)
            .token_seconds;
    EXPECT_LE(reuse, no_reuse);
}

TEST(Dataflow, SpeculativeMissRateDegradesInfiniGen)
{
    auto p = offloadedParams();
    p.speculative_miss = 0.05;
    const double good =
        simulateTokenDataflow(DataflowKind::PrefetchSparseKV, p)
            .token_seconds;
    p.speculative_miss = 0.8;
    const double bad =
        simulateTokenDataflow(DataflowKind::PrefetchSparseKV, p)
            .token_seconds;
    EXPECT_GT(bad, good);
}

TEST(Dataflow, TagsAccountedPerKind)
{
    const auto p = offloadedParams();
    const auto r =
        simulateTokenDataflow(DataflowKind::FetchSparseKV, p);
    EXPECT_GT(r.by_tag.at("retrieval"), 0.0);
    EXPECT_GT(r.by_tag.at("transfer"), 0.0);
    EXPECT_GT(r.by_tag.at("attn"), 0.0);

    const auto ours =
        simulateTokenDataflow(DataflowKind::SpeContextElastic, p);
    EXPECT_GT(ours.by_tag.at("head"), 0.0);
    EXPECT_EQ(ours.by_tag.count("retrieval"), 0u); // no per-layer retrieval
}

TEST(Dataflow, KindNames)
{
    EXPECT_STREQ(core::dataflowKindName(DataflowKind::SpeContextElastic),
                 "SpeContext");
    EXPECT_STREQ(core::dataflowKindName(DataflowKind::PrefetchFullKV),
                 "PrefetchFullKV");
}

} // namespace
} // namespace specontext
