/**
 * @file
 * Tests of the multi-replica cluster layer: router-policy placement on
 * crafted fleets, bit-for-bit parity of a single-replica Cluster with
 * the Server facade, determinism of heterogeneous fleet runs, fleet
 * aggregation consistency, trace splitting/merging, and the headline
 * routing result (load-aware routing beats round-robin on p99 TTFT on
 * a mixed A800 + RTX 4060 fleet).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "serving/cluster.h"
#include "serving/server.h"
#include "workload/trace.h"

namespace specontext {
namespace {

using serving::Cluster;
using serving::ClusterConfig;
using serving::ClusterResult;
using serving::ReplicaConfig;
using serving::ReplicaEngine;
using serving::Request;
using serving::Router;
using serving::RouterConfig;
using serving::RouterPolicy;
using serving::Server;
using serving::ServerConfig;

ReplicaConfig
cloudReplica(const std::string &sys = "SpeContext")
{
    ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    rc.timing.system = core::SystemRegistry::create(sys);
    rc.max_batch = 64;
    return rc;
}

ReplicaConfig
edgeReplica()
{
    ReplicaConfig rc;
    rc.timing.llm = model::reasoningLlama32_1bGeometry();
    rc.timing.hw = sim::HardwareSpec::edge4060();
    rc.timing.system = core::SystemRegistry::create("SpeContext");
    rc.max_batch = 16;
    return rc;
}

Request
makeRequest(int64_t id, double arrival, int64_t prompt, int64_t gen)
{
    Request r;
    r.id = id;
    r.arrival_seconds = arrival;
    r.prompt_len = prompt;
    r.gen_len = gen;
    return r;
}

/** Fleet of live ReplicaEngines for direct Router unit tests. */
std::vector<std::unique_ptr<ReplicaEngine>>
makeFleet(const core::TimingEngine &engine,
          std::vector<ReplicaConfig> cfgs)
{
    std::vector<std::unique_ptr<ReplicaEngine>> fleet;
    for (size_t i = 0; i < cfgs.size(); ++i) {
        cfgs[i].id = static_cast<int64_t>(i);
        fleet.push_back(
            std::make_unique<ReplicaEngine>(engine, cfgs[i]));
    }
    return fleet;
}

// --------------------------------------------------------------- router

TEST(Router, RoundRobinCyclesThroughTheFleet)
{
    core::TimingEngine e;
    const auto fleet =
        makeFleet(e, {cloudReplica(), cloudReplica(), cloudReplica()});
    Router router({RouterPolicy::RoundRobin, 8192});
    const Request r = makeRequest(0, 0.0, 2048, 256);
    EXPECT_EQ(router.route(r, fleet), 0u);
    EXPECT_EQ(router.route(r, fleet), 1u);
    EXPECT_EQ(router.route(r, fleet), 2u);
    EXPECT_EQ(router.route(r, fleet), 0u);
}

TEST(Router, RoundRobinSkipsReplicasThatCanNeverServeTheRequest)
{
    core::TimingEngine e;
    const auto fleet = makeFleet(e, {edgeReplica(), cloudReplica()});
    Router router({RouterPolicy::RoundRobin, 8192});
    // ~2M-token context: KV exceeds the edge box's 24 GB DRAM but fits
    // the cloud host's 1 TB, so only replica 1 is feasible.
    const Request huge = makeRequest(0, 0.0, 2'000'000, 512);
    ASSERT_FALSE(fleet[0]->admission().feasibleAlone(huge));
    ASSERT_TRUE(fleet[1]->admission().feasibleAlone(huge));
    EXPECT_EQ(router.route(huge, fleet), 1u);
    EXPECT_EQ(router.route(huge, fleet), 1u);
}

TEST(Router, JoinShortestQueuePicksTheLeastLoadedReplica)
{
    core::TimingEngine e;
    const auto fleet =
        makeFleet(e, {cloudReplica(), cloudReplica(), cloudReplica()});
    fleet[0]->deliver(makeRequest(0, 5.0, 2048, 256));
    fleet[0]->deliver(makeRequest(1, 6.0, 2048, 256));
    fleet[1]->deliver(makeRequest(2, 5.0, 2048, 256));
    Router router({RouterPolicy::JoinShortestQueue, 8192});
    EXPECT_EQ(router.route(makeRequest(3, 7.0, 2048, 256), fleet), 2u);
    // Ties break toward the lowest index: even out the fleet at two
    // outstanding requests each.
    fleet[1]->deliver(makeRequest(3, 7.0, 2048, 256));
    fleet[2]->deliver(makeRequest(4, 7.0, 2048, 256));
    fleet[2]->deliver(makeRequest(5, 7.0, 2048, 256));
    EXPECT_EQ(fleet[0]->outstanding(), 2);
    EXPECT_EQ(fleet[1]->outstanding(), 2);
    EXPECT_EQ(fleet[2]->outstanding(), 2);
    EXPECT_EQ(router.route(makeRequest(6, 8.0, 2048, 256), fleet), 0u);
}

TEST(Router, LeastKvLoadComparesFractionalMemoryPressure)
{
    core::TimingEngine e;
    // Identical replicas: the one with the big outstanding reservation
    // loses.
    auto fleet = makeFleet(e, {cloudReplica(), cloudReplica()});
    fleet[0]->deliver(makeRequest(0, 1.0, 32768, 4096));
    Router router({RouterPolicy::LeastKvLoad, 8192});
    EXPECT_EQ(router.route(makeRequest(1, 2.0, 2048, 256), fleet), 1u);

    // Heterogeneous idle replicas: the same reservation is a larger
    // *fraction* of the edge box's KV capacity, so the cloud replica
    // wins even from the higher index.
    auto hetero = makeFleet(e, {edgeReplica(), cloudReplica()});
    EXPECT_GT(hetero[0]->kvLoadFraction(4096),
              hetero[1]->kvLoadFraction(4096));
    EXPECT_EQ(router.route(makeRequest(2, 0.0, 2048, 2048), hetero),
              1u);
}

TEST(Router, TwoTierSendsLongPromptsToBigHbmReplicas)
{
    core::TimingEngine e;
    const auto fleet = makeFleet(e, {edgeReplica(), cloudReplica()});
    Router router({RouterPolicy::TwoTier, 8192});
    // Long prompt -> big-HBM tier (the A800), short -> edge tier.
    EXPECT_EQ(router.route(makeRequest(0, 0.0, 16384, 512), fleet), 1u);
    EXPECT_EQ(router.route(makeRequest(1, 0.0, 2048, 512), fleet), 0u);
    // At the threshold the prompt counts as long.
    EXPECT_EQ(router.route(makeRequest(2, 0.0, 8192, 512), fleet), 1u);
}

TEST(Router, EmptyFleetThrows)
{
    Router router;
    const std::vector<std::unique_ptr<ReplicaEngine>> none;
    EXPECT_THROW(router.route(makeRequest(0, 0.0, 16, 16), none),
                 std::invalid_argument);
}

// --------------------------------------------------- server parity

/** Per-request timestamp equality of two serve results. */
void
expectBitIdentical(const serving::ServeResult &cluster_fleet,
                   const serving::ServeResult &server)
{
    EXPECT_EQ(cluster_fleet.makespan_seconds, server.makespan_seconds);
    EXPECT_EQ(cluster_fleet.iterations, server.iterations);
    EXPECT_EQ(cluster_fleet.peak_in_flight, server.peak_in_flight);
    ASSERT_EQ(cluster_fleet.metrics.count(), server.metrics.count());
    const auto &cr = cluster_fleet.metrics.records();
    const auto &sr = server.metrics.records();
    for (size_t i = 0; i < sr.size(); ++i) {
        EXPECT_EQ(cr[i].id, sr[i].id);
        EXPECT_EQ(cr[i].admit_seconds, sr[i].admit_seconds);
        EXPECT_EQ(cr[i].first_token_seconds, sr[i].first_token_seconds);
        EXPECT_EQ(cr[i].finish_seconds, sr[i].finish_seconds);
    }
}

TEST(Cluster, ZeroBudgetPrefixCacheKeepsServerParity)
{
    // The acceptance pin of the prefix-cache subsystem: with the cache
    // disabled (budget 0, the default), a 1-replica Cluster over a
    // trace that *does* carry prompt tokens is bit-for-bit the
    // cache-free Server — the cache branches must be pure no-ops.
    core::TimingEngine e;
    workload::SharedPrefixTraceConfig pc;
    pc.base.num_requests = 16;
    pc.base.arrival_rate_per_s = 1.0;
    pc.base.seed = 13;
    pc.num_families = 4;
    pc.prefix_len = 2048;
    pc.gen_lo = 16;
    pc.gen_hi = 64;
    const auto trace = workload::sharedPrefixTrace(pc);

    ServerConfig sc;
    sc.timing = cloudReplica().timing;
    sc.max_batch = 16;
    const serving::ServeResult server = Server(e, sc).run(trace);

    ClusterConfig cc;
    cc.replicas = {cloudReplica()};
    cc.replicas[0].max_batch = 16;
    cc.replicas[0].prefix_cache.budget_bytes = 0; // explicit: disabled
    const ClusterResult cluster = Cluster(e, cc).run(trace);

    expectBitIdentical(cluster.fleet, server);
    EXPECT_EQ(cluster.fleet.prefix.lookups, 0);
    EXPECT_EQ(cluster.fleet.prefix.hit_tokens, 0);
    EXPECT_EQ(cluster.fleet.prefix.resident_bytes, 0);
}

TEST(Cluster, SingleReplicaMatchesServerBitForBit)
{
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 24;
    tc.arrival_rate_per_s = 1.0;
    tc.seed = 3;
    const auto trace = workload::mixedLengthTrace(tc);

    for (const char *sys : {"FullAttn(FlashInfer)", "SpeContext"}) {
        ServerConfig sc;
        sc.timing = cloudReplica(sys).timing;
        sc.max_batch = 16;
        const serving::ServeResult server =
            Server(e, sc).run(trace);

        ClusterConfig cc;
        cc.replicas = {cloudReplica(sys)};
        cc.replicas[0].max_batch = 16;
        const ClusterResult cluster = Cluster(e, cc).run(trace);

        // Bit-for-bit: same makespan, iteration count and per-request
        // timestamps — the facade and the event loop drive the same
        // ReplicaEngine arithmetic in the same order.
        EXPECT_EQ(cluster.fleet.makespan_seconds,
                  server.makespan_seconds)
            << sys;
        EXPECT_EQ(cluster.fleet.iterations, server.iterations) << sys;
        EXPECT_EQ(cluster.fleet.peak_in_flight, server.peak_in_flight)
            << sys;
        ASSERT_EQ(cluster.completed(), server.completed()) << sys;
        const auto &cr = cluster.fleet.metrics.records();
        const auto &sr = server.metrics.records();
        for (size_t i = 0; i < sr.size(); ++i) {
            EXPECT_EQ(cr[i].id, sr[i].id);
            EXPECT_EQ(cr[i].admit_seconds, sr[i].admit_seconds);
            EXPECT_EQ(cr[i].first_token_seconds,
                      sr[i].first_token_seconds);
            EXPECT_EQ(cr[i].finish_seconds, sr[i].finish_seconds);
        }
    }
}

TEST(Cluster, RoundRobinOnUniformFleetEqualsStaticSplit)
{
    // On identical replicas, round-robin routing is exactly the
    // i % N static partition — and replicas are independent, so the
    // routed cluster must reproduce per-shard single-replica runs
    // bit-for-bit.
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 32;
    tc.arrival_rate_per_s = 2.0;
    tc.seed = 11;
    const auto trace = workload::mixedLengthTrace(tc);

    ClusterConfig cc;
    cc.replicas = {cloudReplica(), cloudReplica()};
    cc.router.policy = RouterPolicy::RoundRobin;
    const ClusterResult routed = Cluster(e, cc).run(trace);

    const auto shards = workload::splitTrace(trace, 2);
    for (size_t k = 0; k < 2; ++k) {
        ClusterConfig solo;
        solo.replicas = {cloudReplica()};
        const ClusterResult alone =
            Cluster(e, solo).run(shards[k]);
        EXPECT_EQ(routed.per_replica[k].makespan_seconds,
                  alone.fleet.makespan_seconds);
        EXPECT_EQ(routed.per_replica[k].iterations,
                  alone.fleet.iterations);
        EXPECT_EQ(routed.per_replica[k].completed(),
                  alone.completed());
    }
}

// ----------------------------------------------------- determinism

TEST(Cluster, HeterogeneousRunsAreBitReproducible)
{
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 32;
    tc.arrival_rate_per_s = 1.0;
    tc.seed = 7;
    const auto trace = workload::mixedLengthTrace(tc);

    ClusterConfig cc;
    cc.replicas = {cloudReplica(), cloudReplica(), edgeReplica(),
                   edgeReplica()};
    cc.router.policy = RouterPolicy::LeastKvLoad;
    cc.replicas[0].queue_policy =
        serving::QueuePolicy::ShortestPromptFirst;
    const Cluster cluster(e, cc);

    const ClusterResult a = cluster.run(trace);
    const ClusterResult b = cluster.run(trace);
    ASSERT_EQ(a.placements.size(), b.placements.size());
    for (size_t i = 0; i < a.placements.size(); ++i) {
        EXPECT_EQ(a.placements[i].request_id,
                  b.placements[i].request_id);
        EXPECT_EQ(a.placements[i].replica, b.placements[i].replica);
    }
    const auto sa = a.summary();
    const auto sb = b.summary();
    // The exact doubles the bench would print into BENCH_cluster.json.
    EXPECT_EQ(sa.throughput_tokens_per_s, sb.throughput_tokens_per_s);
    EXPECT_EQ(sa.ttft_mean, sb.ttft_mean);
    EXPECT_EQ(sa.ttft_p99, sb.ttft_p99);
    EXPECT_EQ(sa.e2e_p99, sb.e2e_p99);
    EXPECT_EQ(sa.tpot_mean, sb.tpot_mean);
    EXPECT_EQ(a.fleet.makespan_seconds, b.fleet.makespan_seconds);
    EXPECT_EQ(a.fleet.iterations, b.fleet.iterations);
}

// ----------------------------------------------------- aggregation

TEST(Cluster, FleetAggregationIsConsistentWithPerReplicaResults)
{
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 24;
    tc.arrival_rate_per_s = 1.0;
    tc.seed = 5;
    const auto trace = workload::mixedLengthTrace(tc);

    ClusterConfig cc;
    cc.replicas = {cloudReplica(), edgeReplica()};
    cc.router.policy = RouterPolicy::TwoTier;
    const ClusterResult r = Cluster(e, cc).run(trace);

    ASSERT_EQ(r.per_replica.size(), 2u);
    ASSERT_EQ(r.replica_names.size(), 2u);
    EXPECT_NE(r.replica_names[0], r.replica_names[1]);

    int64_t completed = 0, iterations = 0, peak = 0;
    double makespan = 0.0;
    for (const auto &pr : r.per_replica) {
        completed += pr.completed();
        iterations += pr.iterations;
        peak += pr.peak_in_flight;
        makespan = std::max(makespan, pr.makespan_seconds);
    }
    EXPECT_EQ(r.completed(), completed);
    EXPECT_EQ(r.fleet.iterations, iterations);
    EXPECT_EQ(r.fleet.peak_in_flight, peak);
    EXPECT_EQ(r.fleet.makespan_seconds, makespan);
    EXPECT_EQ(static_cast<int64_t>(r.placements.size()),
              completed +
                  static_cast<int64_t>(r.fleet.rejected.size()));

    // Per-replica breakdown of the merged metrics matches each
    // replica's own collector.
    for (int64_t id : r.fleet.metrics.replicaIds()) {
        const auto fleet_view = r.fleet.metrics.summarizeReplica(
            id, r.per_replica[id].makespan_seconds);
        const auto own = r.per_replica[id].summary();
        EXPECT_EQ(fleet_view.completed, own.completed);
        EXPECT_EQ(fleet_view.ttft_mean, own.ttft_mean);
        EXPECT_EQ(fleet_view.ttft_p99, own.ttft_p99);
        EXPECT_EQ(fleet_view.total_generated_tokens,
                  own.total_generated_tokens);
    }
}

// -------------------------------------------------- routing quality

TEST(Cluster, LoadAwareRoutingBeatsRoundRobinP99TtftOnMixedFleet)
{
    // The acceptance headline: on a heterogeneous A800 + RTX 4060
    // fleet under mixed-length Poisson load, least-KV-load routing
    // must beat oblivious round-robin on p99 TTFT (round-robin keeps
    // handing long prompts to the slow edge prefill).
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 96;
    tc.arrival_rate_per_s = 1.0;
    tc.seed = 7;
    const auto trace = workload::mixedLengthTrace(tc);

    auto p99 = [&](RouterPolicy policy) {
        ClusterConfig cc;
        cc.replicas = {cloudReplica(), cloudReplica(), edgeReplica(),
                       edgeReplica()};
        cc.router.policy = policy;
        const ClusterResult r = Cluster(e, cc).run(trace);
        EXPECT_EQ(r.completed(),
                  static_cast<int64_t>(trace.size()));
        return r.summary().ttft_p99;
    };
    EXPECT_LT(p99(RouterPolicy::LeastKvLoad),
              p99(RouterPolicy::RoundRobin));
}

// ------------------------------------------- prefix cache & affinity

/** Cloud replica with an enabled prefix cache. */
ReplicaConfig
cachedCloudReplica(int64_t budget_gib = 8)
{
    ReplicaConfig rc = cloudReplica();
    rc.prefix_cache.budget_bytes = budget_gib << 30;
    rc.prefix_cache.page_size = 16;
    return rc;
}

workload::SharedPrefixTraceConfig
smallSharedPrefixConfig()
{
    workload::SharedPrefixTraceConfig pc;
    pc.base.num_requests = 24;
    pc.base.arrival_rate_per_s = 2.0;
    pc.base.seed = 17;
    pc.num_families = 2;
    pc.prefix_len = 2048;
    pc.suffix_lo = 64;
    pc.suffix_hi = 128;
    pc.gen_lo = 16;
    pc.gen_hi = 48;
    return pc;
}

TEST(PrefixCache, SkipsPrefillWorkAndReportsHits)
{
    core::TimingEngine e;
    const auto trace =
        workload::sharedPrefixTrace(smallSharedPrefixConfig());

    auto runWithBudget = [&](int64_t budget_bytes) {
        ClusterConfig cc;
        cc.replicas = {cloudReplica()};
        cc.replicas[0].prefix_cache.budget_bytes = budget_bytes;
        return Cluster(e, cc).run(trace);
    };
    const ClusterResult cold = runWithBudget(0);
    const ClusterResult warm = runWithBudget(8LL << 30);

    // Same requests complete either way; the cache only removes
    // prefill work, it never changes what is served.
    EXPECT_EQ(warm.completed(), cold.completed());
    EXPECT_EQ(warm.completed(),
              static_cast<int64_t>(trace.size()));

    // Two families, 24 requests: everything after the two cold
    // prompts hits, so most prefill tokens are saved...
    const serving::PrefixCacheStats &ps = warm.fleet.prefix;
    EXPECT_EQ(ps.lookups, static_cast<int64_t>(trace.size()));
    EXPECT_GT(ps.hit_requests, 0);
    EXPECT_GT(ps.hit_tokens, 0);
    EXPECT_GT(ps.hitRate(), 0.5);
    EXPECT_GT(ps.resident_tokens, 0);
    // ...and the saved work shows up as lower latency.
    EXPECT_LT(warm.summary().ttft_mean, cold.summary().ttft_mean);
    EXPECT_LE(warm.fleet.makespan_seconds, cold.fleet.makespan_seconds);

    // Per-request accounting: cached_prompt_len is block-aligned-ish
    // (capped at prompt_len - 1) and never exceeds the prompt.
    const ClusterResult again = runWithBudget(8LL << 30);
    EXPECT_EQ(again.summary().ttft_mean, warm.summary().ttft_mean);
    EXPECT_EQ(again.fleet.prefix.hit_tokens, ps.hit_tokens);
}

TEST(PrefixCache, MismatchedPromptTokensAreRejectedAtDelivery)
{
    core::TimingEngine e;
    ReplicaEngine rep(e, cachedCloudReplica());
    Request r = makeRequest(0, 0.0, 128, 8);
    r.prompt_tokens.assign(64, 7); // size != prompt_len
    EXPECT_THROW(rep.deliver(std::move(r)), std::invalid_argument);
}

TEST(PrefixCache, DuplicateRequestIdsKeepIndependentPins)
{
    // Pins are keyed per admission, not per request id: two in-flight
    // requests sharing an id must not cross-release each other's
    // prefix pins (which would make a decoding request's KV
    // evictable, or throw on the second release).
    core::TimingEngine e;
    ReplicaEngine rep(e, cachedCloudReplica());
    Request a = makeRequest(7, 0.0, 256, 64);
    a.prompt_tokens.assign(256, 21);
    Request b = makeRequest(7, 0.1, 256, 64); // same id, in flight too
    b.prompt_tokens.assign(256, 22);
    rep.deliver(a);
    rep.deliver(b);
    while (!rep.idle())
        rep.step();
    const serving::ServeResult r = rep.takeResult();
    EXPECT_EQ(r.completed(), 2);
    EXPECT_EQ(r.prefix.lookups, 2);
    EXPECT_GT(r.prefix.resident_tokens, 0); // both paths survive
}

TEST(Router, PrefixAffinityPrefersTheWarmestReplica)
{
    core::TimingEngine e;
    auto fleet = makeFleet(
        e, {cachedCloudReplica(), cachedCloudReplica(),
            cachedCloudReplica()});
    Router router({RouterPolicy::PrefixAffinity, 8192});

    // Warm replica 1 by actually serving a family member there.
    std::vector<int32_t> family(256);
    for (size_t i = 0; i < family.size(); ++i)
        family[i] = static_cast<int32_t>(100 + i);
    Request seedr = makeRequest(0, 0.0, 256, 1);
    seedr.prompt_tokens = family;
    fleet[1]->deliver(seedr);
    while (!fleet[1]->idle())
        fleet[1]->step();
    ASSERT_GT(fleet[1]->prefixHitTokens(seedr), 0);

    // A same-family request routes to the warm replica even though
    // colder replicas are equally idle...
    Request again = makeRequest(1, 1.0, 256, 8);
    again.prompt_tokens = family;
    EXPECT_EQ(router.route(again, fleet), 1u);
    // ...and keeps routing there when replica 1 carries load.
    fleet[1]->deliver(makeRequest(2, 1.0, 4096, 256));
    EXPECT_EQ(router.route(again, fleet), 1u);
}

TEST(Router, PrefixAffinityColdPromptsGetAStickyHashedHome)
{
    core::TimingEngine e;
    auto fleet = makeFleet(
        e, {cachedCloudReplica(), cachedCloudReplica(),
            cachedCloudReplica(), cachedCloudReplica()});
    Router router({RouterPolicy::PrefixAffinity, 8192});

    Request a = makeRequest(0, 0.0, 256, 8);
    a.prompt_tokens.assign(256, 11);
    const size_t home = router.route(a, fleet);
    // Same family -> same home, regardless of load skew, before any
    // cache state exists (one fleet-wide cold prefill per family).
    fleet[home]->deliver(makeRequest(9, 0.0, 16384, 512));
    EXPECT_EQ(router.route(a, fleet), home);

    // No prompt tokens -> least-kv-load fallback (ties -> index 0).
    Request plain = makeRequest(1, 0.0, 256, 8);
    EXPECT_EQ(router.route(plain, fleet),
              Router({RouterPolicy::LeastKvLoad, 8192})
                  .route(plain, fleet));
}

TEST(PrefixCache, RevivesAfterTransientLiveKvPressure)
{
    // A huge admission squeezes the tree's working budget to 0 (live
    // KV always wins the headroom); once it retires, the cache must
    // come back — the squeeze is transient, not a permanent off
    // switch.
    core::TimingEngine e;
    ClusterConfig cc;
    cc.replicas = {cachedCloudReplica(8)};
    const Cluster cluster(e, cc);

    workload::SharedPrefixTraceConfig pc;
    pc.base.num_requests = 2;
    pc.base.arrival_rate_per_s = 1.0;
    pc.num_families = 1;
    pc.prefix_len = 2048;
    pc.suffix_lo = 16;
    pc.suffix_hi = 32;
    pc.gen_lo = 2;
    pc.gen_hi = 4;
    auto family = workload::sharedPrefixTrace(pc);

    std::vector<Request> trace;
    trace.push_back(family[0]); // caches the family
    // ~470K-token reservation ~= 59 GB of KV: eats the whole A800
    // headroom next to the weights while outstanding.
    Request huge = makeRequest(50, 10.0, 470'000, 2);
    huge.prompt_tokens.assign(470'000, 9);
    trace.push_back(huge);
    // Same family again, long after the pressure has drained.
    Request back = family[1];
    back.id = 51;
    back.arrival_seconds = 1e7;
    trace.push_back(back);
    Request back2 = family[1];
    back2.id = 52;
    back2.arrival_seconds = 2e7;
    trace.push_back(back2);

    const ClusterResult r = cluster.run(trace);
    ASSERT_EQ(r.completed(), 4);
    const serving::PrefixCacheStats &ps = r.fleet.prefix;
    // Every token-carrying admission consulted the cache — including
    // the ones arriving after the squeeze.
    EXPECT_EQ(ps.lookups, 4);
    // The squeeze wiped the family, so `back` re-seeded it and
    // `back2` hit the revived cache.
    EXPECT_GE(ps.hit_requests, 1);
    EXPECT_GT(ps.resident_tokens, 0);
}

TEST(Router, PrefixAffinityHashesColdFamiliesOntoCachedReplicasOnly)
{
    // Mixed fleet: a cache-less replica can never warm up, so hashing
    // a cold family onto it would strand the family on full prefill
    // forever. The sticky home must come from the cached subset.
    core::TimingEngine e;
    auto fleet = makeFleet(e, {cloudReplica(), cachedCloudReplica()});
    ASSERT_FALSE(fleet[0]->prefixCacheEnabled());
    ASSERT_TRUE(fleet[1]->prefixCacheEnabled());
    Router router({RouterPolicy::PrefixAffinity, 8192});
    for (int32_t fam = 0; fam < 8; ++fam) {
        Request r = makeRequest(fam, 0.0, 256, 8);
        r.prompt_tokens.assign(256, 1000 + fam);
        EXPECT_EQ(router.route(r, fleet), 1u) << "family " << fam;
    }
}

TEST(Router, PrefixAffinityWithoutCachesDegradesToLeastKvLoad)
{
    core::TimingEngine e;
    auto fleet = makeFleet(e, {cloudReplica(), cloudReplica()});
    fleet[0]->deliver(makeRequest(0, 1.0, 32768, 4096));
    Router affinity({RouterPolicy::PrefixAffinity, 8192});
    Router least({RouterPolicy::LeastKvLoad, 8192});
    Request r = makeRequest(1, 2.0, 2048, 256);
    r.prompt_tokens.assign(2048, 3);
    EXPECT_EQ(affinity.route(r, fleet), least.route(r, fleet));
    EXPECT_EQ(affinity.route(r, fleet), 1u);
}

// Satellite: every policy must degrade deterministically (not crash)
// when no replica can serve a request even alone.
TEST(Router, AllInfeasibleFleetFallsBackDeterministically)
{
    core::TimingEngine e;
    auto fleet = makeFleet(e, {edgeReplica(), edgeReplica()});
    // ~2M-token context: KV exceeds the edge box's DRAM on both.
    Request huge = makeRequest(0, 0.0, 2'000'000, 512);
    huge.prompt_tokens.assign(2'000'000, 5);
    ASSERT_FALSE(fleet[0]->admission().feasibleAlone(huge));
    ASSERT_FALSE(fleet[1]->admission().feasibleAlone(huge));

    for (auto policy : {RouterPolicy::LeastKvLoad,
                        RouterPolicy::PrefixAffinity}) {
        Router router({policy, 8192});
        const size_t first = router.route(huge, fleet);
        EXPECT_LT(first, fleet.size());
        EXPECT_EQ(router.route(huge, fleet), first)
            << serving::routerPolicyName(policy);
    }
}

TEST(Cluster, InfeasibleRequestIsRejectedUnderEveryPolicy)
{
    core::TimingEngine e;
    workload::SharedPrefixTraceConfig pc = smallSharedPrefixConfig();
    pc.base.num_requests = 6;
    auto trace = workload::sharedPrefixTrace(pc);
    Request huge = makeRequest(100, 0.5, 2'000'000, 64);
    trace.push_back(huge);

    for (auto policy : {RouterPolicy::LeastKvLoad,
                        RouterPolicy::PrefixAffinity}) {
        ClusterConfig cc;
        cc.replicas = {edgeReplica(), edgeReplica()};
        cc.router.policy = policy;
        const ClusterResult r = Cluster(e, cc).run(trace);
        ASSERT_EQ(r.fleet.rejected.size(), 1u)
            << serving::routerPolicyName(policy);
        EXPECT_EQ(r.fleet.rejected[0].id, 100);
        EXPECT_EQ(r.completed(), 6);
    }
}

// The acceptance headline: prefix-affinity routing must beat
// join-shortest-queue on p99 TTFT on a shared-prefix trace, because
// JSQ scatters each family over the fleet (every replica pays the
// family's cold prefill and the per-replica budget thrashes across
// all families) while affinity gives each family one warm home.
TEST(Cluster, PrefixAffinityBeatsJsqOnSharedPrefixTrace)
{
    core::TimingEngine e;
    workload::SharedPrefixTraceConfig pc;
    // The bench's contended configuration: 16 families against a
    // 4-family-per-replica budget, heavy enough that prefill work
    // queues. JSQ pays each family's cold prefill once per replica
    // (and re-pays it on LRU thrash), and those stalls cascade into
    // the tail; 192 requests keep p99 a tail statistic rather than
    // the single worst cold prefill.
    pc.base.num_requests = 192;
    pc.base.arrival_rate_per_s = 4.0;
    pc.base.seed = 7;
    pc.num_families = 16;
    pc.prefix_len = 4096;
    pc.suffix_lo = 64;
    pc.suffix_hi = 256;
    pc.gen_lo = 32;
    pc.gen_hi = 128;
    const auto trace = workload::sharedPrefixTrace(pc);

    auto run = [&](RouterPolicy policy) {
        ClusterConfig cc;
        // Budget 2 GiB ~= 4 cached family prefixes per replica: the
        // whole family set fits fleet-wide only if routing keeps
        // families apart.
        cc.replicas = {cachedCloudReplica(2), cachedCloudReplica(2),
                       cachedCloudReplica(2), cachedCloudReplica(2)};
        cc.router.policy = policy;
        const ClusterResult r = Cluster(e, cc).run(trace);
        EXPECT_EQ(r.completed(), static_cast<int64_t>(trace.size()))
            << serving::routerPolicyName(policy);
        return r;
    };
    const ClusterResult affinity = run(RouterPolicy::PrefixAffinity);
    const ClusterResult jsq = run(RouterPolicy::JoinShortestQueue);

    EXPECT_GT(affinity.fleet.prefix.hit_tokens, 0);
    EXPECT_GT(affinity.fleet.prefix.hitRate(),
              jsq.fleet.prefix.hitRate());
    EXPECT_LT(affinity.summary().ttft_p99, jsq.summary().ttft_p99);
}

// ----------------------------------------------------- construction

TEST(Cluster, RejectsEmptyOrInvalidFleets)
{
    core::TimingEngine e;
    EXPECT_THROW(Cluster(e, ClusterConfig{}), std::invalid_argument);

    ClusterConfig wave;
    wave.replicas = {cloudReplica("Quest")}; // wave-only system
    EXPECT_THROW(Cluster(e, wave), std::invalid_argument);

    ClusterConfig bad;
    bad.replicas = {cloudReplica()};
    bad.replicas[0].max_batch = 0;
    EXPECT_THROW(Cluster(e, bad), std::invalid_argument);
}

TEST(ReplicaEngine, StepOnIdleReplicaThrows)
{
    core::TimingEngine e;
    ReplicaEngine rep(e, cloudReplica());
    EXPECT_TRUE(rep.idle());
    EXPECT_THROW(rep.step(), std::logic_error);
    rep.deliver(makeRequest(0, 4.0, 2048, 4));
    EXPECT_FALSE(rep.idle());
    EXPECT_DOUBLE_EQ(rep.nextEventSeconds(), 4.0);
    rep.step(); // clock jumps to the arrival, admits, decodes once
    EXPECT_GT(rep.now(), 4.0);
    EXPECT_EQ(rep.inFlight(), 1);
    EXPECT_THROW(
        rep.deliver(makeRequest(1, 3.0, 2048, 4)), // out of order
        std::invalid_argument);
}

// ------------------------------------------------- trace utilities

TEST(Trace, SplitRoundRobinsAndMergeRoundTrips)
{
    workload::TraceConfig tc;
    tc.num_requests = 25;
    tc.arrival_rate_per_s = 2.0;
    tc.seed = 9;
    auto trace = workload::mixedLengthTrace(tc);

    const auto shards = workload::splitTrace(trace, 3);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0].size(), 9u);
    EXPECT_EQ(shards[1].size(), 8u);
    EXPECT_EQ(shards[2].size(), 8u);
    for (const auto &shard : shards) {
        for (size_t i = 1; i < shard.size(); ++i)
            EXPECT_GE(shard[i].arrival_seconds,
                      shard[i - 1].arrival_seconds);
    }
    // Request i of the arrival-sorted trace lands in shard i % 3.
    EXPECT_EQ(shards[0][0].id, trace[0].id);
    EXPECT_EQ(shards[1][0].id, trace[1].id);
    EXPECT_EQ(shards[2][0].id, trace[2].id);

    const auto merged = workload::mergeTraces(shards);
    ASSERT_EQ(merged.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(merged[i].id, trace[i].id);
        EXPECT_DOUBLE_EQ(merged[i].arrival_seconds,
                         trace[i].arrival_seconds);
    }
    EXPECT_THROW(workload::splitTrace(trace, 0),
                 std::invalid_argument);
}

TEST(Trace, MergeRestoresTheInterleaveAcrossEqualArrivals)
{
    // A run of identical arrival instants wraps around the fleet; the
    // merge must restore the original round-robin interleave, not
    // drain shard 0 first.
    std::vector<Request> trace;
    for (int64_t id : {10, 11, 12, 13, 14})
        trace.push_back(makeRequest(id, 0.0, 1024, 64));
    const auto shards = workload::splitTrace(trace, 2);
    const auto merged = workload::mergeTraces(shards);
    ASSERT_EQ(merged.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(merged[i].id, trace[i].id) << i;
}

} // namespace
} // namespace specontext
