/**
 * @file
 * Tests of the multi-replica cluster layer: router-policy placement on
 * crafted fleets, bit-for-bit parity of a single-replica Cluster with
 * the Server facade, determinism of heterogeneous fleet runs, fleet
 * aggregation consistency, trace splitting/merging, and the headline
 * routing result (load-aware routing beats round-robin on p99 TTFT on
 * a mixed A800 + RTX 4060 fleet).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "serving/cluster.h"
#include "serving/server.h"
#include "workload/trace.h"

namespace specontext {
namespace {

using serving::Cluster;
using serving::ClusterConfig;
using serving::ClusterResult;
using serving::ReplicaConfig;
using serving::ReplicaEngine;
using serving::Request;
using serving::Router;
using serving::RouterConfig;
using serving::RouterPolicy;
using serving::Server;
using serving::ServerConfig;

ReplicaConfig
cloudReplica(const std::string &sys = "SpeContext")
{
    ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    rc.timing.system = core::SystemRegistry::create(sys);
    rc.max_batch = 64;
    return rc;
}

ReplicaConfig
edgeReplica()
{
    ReplicaConfig rc;
    rc.timing.llm = model::reasoningLlama32_1bGeometry();
    rc.timing.hw = sim::HardwareSpec::edge4060();
    rc.timing.system = core::SystemRegistry::create("SpeContext");
    rc.max_batch = 16;
    return rc;
}

Request
makeRequest(int64_t id, double arrival, int64_t prompt, int64_t gen)
{
    Request r;
    r.id = id;
    r.arrival_seconds = arrival;
    r.prompt_len = prompt;
    r.gen_len = gen;
    return r;
}

/** Fleet of live ReplicaEngines for direct Router unit tests. */
std::vector<std::unique_ptr<ReplicaEngine>>
makeFleet(const core::TimingEngine &engine,
          std::vector<ReplicaConfig> cfgs)
{
    std::vector<std::unique_ptr<ReplicaEngine>> fleet;
    for (size_t i = 0; i < cfgs.size(); ++i) {
        cfgs[i].id = static_cast<int64_t>(i);
        fleet.push_back(
            std::make_unique<ReplicaEngine>(engine, cfgs[i]));
    }
    return fleet;
}

// --------------------------------------------------------------- router

TEST(Router, RoundRobinCyclesThroughTheFleet)
{
    core::TimingEngine e;
    const auto fleet =
        makeFleet(e, {cloudReplica(), cloudReplica(), cloudReplica()});
    Router router({RouterPolicy::RoundRobin, 8192});
    const Request r = makeRequest(0, 0.0, 2048, 256);
    EXPECT_EQ(router.route(r, fleet), 0u);
    EXPECT_EQ(router.route(r, fleet), 1u);
    EXPECT_EQ(router.route(r, fleet), 2u);
    EXPECT_EQ(router.route(r, fleet), 0u);
}

TEST(Router, RoundRobinSkipsReplicasThatCanNeverServeTheRequest)
{
    core::TimingEngine e;
    const auto fleet = makeFleet(e, {edgeReplica(), cloudReplica()});
    Router router({RouterPolicy::RoundRobin, 8192});
    // ~2M-token context: KV exceeds the edge box's 24 GB DRAM but fits
    // the cloud host's 1 TB, so only replica 1 is feasible.
    const Request huge = makeRequest(0, 0.0, 2'000'000, 512);
    ASSERT_FALSE(fleet[0]->admission().feasibleAlone(huge));
    ASSERT_TRUE(fleet[1]->admission().feasibleAlone(huge));
    EXPECT_EQ(router.route(huge, fleet), 1u);
    EXPECT_EQ(router.route(huge, fleet), 1u);
}

TEST(Router, JoinShortestQueuePicksTheLeastLoadedReplica)
{
    core::TimingEngine e;
    const auto fleet =
        makeFleet(e, {cloudReplica(), cloudReplica(), cloudReplica()});
    fleet[0]->deliver(makeRequest(0, 5.0, 2048, 256));
    fleet[0]->deliver(makeRequest(1, 6.0, 2048, 256));
    fleet[1]->deliver(makeRequest(2, 5.0, 2048, 256));
    Router router({RouterPolicy::JoinShortestQueue, 8192});
    EXPECT_EQ(router.route(makeRequest(3, 7.0, 2048, 256), fleet), 2u);
    // Ties break toward the lowest index: even out the fleet at two
    // outstanding requests each.
    fleet[1]->deliver(makeRequest(3, 7.0, 2048, 256));
    fleet[2]->deliver(makeRequest(4, 7.0, 2048, 256));
    fleet[2]->deliver(makeRequest(5, 7.0, 2048, 256));
    EXPECT_EQ(fleet[0]->outstanding(), 2);
    EXPECT_EQ(fleet[1]->outstanding(), 2);
    EXPECT_EQ(fleet[2]->outstanding(), 2);
    EXPECT_EQ(router.route(makeRequest(6, 8.0, 2048, 256), fleet), 0u);
}

TEST(Router, LeastKvLoadComparesFractionalMemoryPressure)
{
    core::TimingEngine e;
    // Identical replicas: the one with the big outstanding reservation
    // loses.
    auto fleet = makeFleet(e, {cloudReplica(), cloudReplica()});
    fleet[0]->deliver(makeRequest(0, 1.0, 32768, 4096));
    Router router({RouterPolicy::LeastKvLoad, 8192});
    EXPECT_EQ(router.route(makeRequest(1, 2.0, 2048, 256), fleet), 1u);

    // Heterogeneous idle replicas: the same reservation is a larger
    // *fraction* of the edge box's KV capacity, so the cloud replica
    // wins even from the higher index.
    auto hetero = makeFleet(e, {edgeReplica(), cloudReplica()});
    EXPECT_GT(hetero[0]->kvLoadFraction(4096),
              hetero[1]->kvLoadFraction(4096));
    EXPECT_EQ(router.route(makeRequest(2, 0.0, 2048, 2048), hetero),
              1u);
}

TEST(Router, TwoTierSendsLongPromptsToBigHbmReplicas)
{
    core::TimingEngine e;
    const auto fleet = makeFleet(e, {edgeReplica(), cloudReplica()});
    Router router({RouterPolicy::TwoTier, 8192});
    // Long prompt -> big-HBM tier (the A800), short -> edge tier.
    EXPECT_EQ(router.route(makeRequest(0, 0.0, 16384, 512), fleet), 1u);
    EXPECT_EQ(router.route(makeRequest(1, 0.0, 2048, 512), fleet), 0u);
    // At the threshold the prompt counts as long.
    EXPECT_EQ(router.route(makeRequest(2, 0.0, 8192, 512), fleet), 1u);
}

TEST(Router, EmptyFleetThrows)
{
    Router router;
    const std::vector<std::unique_ptr<ReplicaEngine>> none;
    EXPECT_THROW(router.route(makeRequest(0, 0.0, 16, 16), none),
                 std::invalid_argument);
}

// --------------------------------------------------- server parity

TEST(Cluster, SingleReplicaMatchesServerBitForBit)
{
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 24;
    tc.arrival_rate_per_s = 1.0;
    tc.seed = 3;
    const auto trace = workload::mixedLengthTrace(tc);

    for (const char *sys : {"FullAttn(FlashInfer)", "SpeContext"}) {
        ServerConfig sc;
        sc.timing = cloudReplica(sys).timing;
        sc.max_batch = 16;
        const serving::ServeResult server =
            Server(e, sc).run(trace);

        ClusterConfig cc;
        cc.replicas = {cloudReplica(sys)};
        cc.replicas[0].max_batch = 16;
        const ClusterResult cluster = Cluster(e, cc).run(trace);

        // Bit-for-bit: same makespan, iteration count and per-request
        // timestamps — the facade and the event loop drive the same
        // ReplicaEngine arithmetic in the same order.
        EXPECT_EQ(cluster.fleet.makespan_seconds,
                  server.makespan_seconds)
            << sys;
        EXPECT_EQ(cluster.fleet.iterations, server.iterations) << sys;
        EXPECT_EQ(cluster.fleet.peak_in_flight, server.peak_in_flight)
            << sys;
        ASSERT_EQ(cluster.completed(), server.completed()) << sys;
        const auto &cr = cluster.fleet.metrics.records();
        const auto &sr = server.metrics.records();
        for (size_t i = 0; i < sr.size(); ++i) {
            EXPECT_EQ(cr[i].id, sr[i].id);
            EXPECT_EQ(cr[i].admit_seconds, sr[i].admit_seconds);
            EXPECT_EQ(cr[i].first_token_seconds,
                      sr[i].first_token_seconds);
            EXPECT_EQ(cr[i].finish_seconds, sr[i].finish_seconds);
        }
    }
}

TEST(Cluster, RoundRobinOnUniformFleetEqualsStaticSplit)
{
    // On identical replicas, round-robin routing is exactly the
    // i % N static partition — and replicas are independent, so the
    // routed cluster must reproduce per-shard single-replica runs
    // bit-for-bit.
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 32;
    tc.arrival_rate_per_s = 2.0;
    tc.seed = 11;
    const auto trace = workload::mixedLengthTrace(tc);

    ClusterConfig cc;
    cc.replicas = {cloudReplica(), cloudReplica()};
    cc.router.policy = RouterPolicy::RoundRobin;
    const ClusterResult routed = Cluster(e, cc).run(trace);

    const auto shards = workload::splitTrace(trace, 2);
    for (size_t k = 0; k < 2; ++k) {
        ClusterConfig solo;
        solo.replicas = {cloudReplica()};
        const ClusterResult alone =
            Cluster(e, solo).run(shards[k]);
        EXPECT_EQ(routed.per_replica[k].makespan_seconds,
                  alone.fleet.makespan_seconds);
        EXPECT_EQ(routed.per_replica[k].iterations,
                  alone.fleet.iterations);
        EXPECT_EQ(routed.per_replica[k].completed(),
                  alone.completed());
    }
}

// ----------------------------------------------------- determinism

TEST(Cluster, HeterogeneousRunsAreBitReproducible)
{
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 32;
    tc.arrival_rate_per_s = 1.0;
    tc.seed = 7;
    const auto trace = workload::mixedLengthTrace(tc);

    ClusterConfig cc;
    cc.replicas = {cloudReplica(), cloudReplica(), edgeReplica(),
                   edgeReplica()};
    cc.router.policy = RouterPolicy::LeastKvLoad;
    cc.replicas[0].queue_policy =
        serving::QueuePolicy::ShortestPromptFirst;
    const Cluster cluster(e, cc);

    const ClusterResult a = cluster.run(trace);
    const ClusterResult b = cluster.run(trace);
    ASSERT_EQ(a.placements.size(), b.placements.size());
    for (size_t i = 0; i < a.placements.size(); ++i) {
        EXPECT_EQ(a.placements[i].request_id,
                  b.placements[i].request_id);
        EXPECT_EQ(a.placements[i].replica, b.placements[i].replica);
    }
    const auto sa = a.summary();
    const auto sb = b.summary();
    // The exact doubles the bench would print into BENCH_cluster.json.
    EXPECT_EQ(sa.throughput_tokens_per_s, sb.throughput_tokens_per_s);
    EXPECT_EQ(sa.ttft_mean, sb.ttft_mean);
    EXPECT_EQ(sa.ttft_p99, sb.ttft_p99);
    EXPECT_EQ(sa.e2e_p99, sb.e2e_p99);
    EXPECT_EQ(sa.tpot_mean, sb.tpot_mean);
    EXPECT_EQ(a.fleet.makespan_seconds, b.fleet.makespan_seconds);
    EXPECT_EQ(a.fleet.iterations, b.fleet.iterations);
}

// ----------------------------------------------------- aggregation

TEST(Cluster, FleetAggregationIsConsistentWithPerReplicaResults)
{
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 24;
    tc.arrival_rate_per_s = 1.0;
    tc.seed = 5;
    const auto trace = workload::mixedLengthTrace(tc);

    ClusterConfig cc;
    cc.replicas = {cloudReplica(), edgeReplica()};
    cc.router.policy = RouterPolicy::TwoTier;
    const ClusterResult r = Cluster(e, cc).run(trace);

    ASSERT_EQ(r.per_replica.size(), 2u);
    ASSERT_EQ(r.replica_names.size(), 2u);
    EXPECT_NE(r.replica_names[0], r.replica_names[1]);

    int64_t completed = 0, iterations = 0, peak = 0;
    double makespan = 0.0;
    for (const auto &pr : r.per_replica) {
        completed += pr.completed();
        iterations += pr.iterations;
        peak += pr.peak_in_flight;
        makespan = std::max(makespan, pr.makespan_seconds);
    }
    EXPECT_EQ(r.completed(), completed);
    EXPECT_EQ(r.fleet.iterations, iterations);
    EXPECT_EQ(r.fleet.peak_in_flight, peak);
    EXPECT_EQ(r.fleet.makespan_seconds, makespan);
    EXPECT_EQ(static_cast<int64_t>(r.placements.size()),
              completed +
                  static_cast<int64_t>(r.fleet.rejected.size()));

    // Per-replica breakdown of the merged metrics matches each
    // replica's own collector.
    for (int64_t id : r.fleet.metrics.replicaIds()) {
        const auto fleet_view = r.fleet.metrics.summarizeReplica(
            id, r.per_replica[id].makespan_seconds);
        const auto own = r.per_replica[id].summary();
        EXPECT_EQ(fleet_view.completed, own.completed);
        EXPECT_EQ(fleet_view.ttft_mean, own.ttft_mean);
        EXPECT_EQ(fleet_view.ttft_p99, own.ttft_p99);
        EXPECT_EQ(fleet_view.total_generated_tokens,
                  own.total_generated_tokens);
    }
}

// -------------------------------------------------- routing quality

TEST(Cluster, LoadAwareRoutingBeatsRoundRobinP99TtftOnMixedFleet)
{
    // The acceptance headline: on a heterogeneous A800 + RTX 4060
    // fleet under mixed-length Poisson load, least-KV-load routing
    // must beat oblivious round-robin on p99 TTFT (round-robin keeps
    // handing long prompts to the slow edge prefill).
    core::TimingEngine e;
    workload::TraceConfig tc;
    tc.num_requests = 96;
    tc.arrival_rate_per_s = 1.0;
    tc.seed = 7;
    const auto trace = workload::mixedLengthTrace(tc);

    auto p99 = [&](RouterPolicy policy) {
        ClusterConfig cc;
        cc.replicas = {cloudReplica(), cloudReplica(), edgeReplica(),
                       edgeReplica()};
        cc.router.policy = policy;
        const ClusterResult r = Cluster(e, cc).run(trace);
        EXPECT_EQ(r.completed(),
                  static_cast<int64_t>(trace.size()));
        return r.summary().ttft_p99;
    };
    EXPECT_LT(p99(RouterPolicy::LeastKvLoad),
              p99(RouterPolicy::RoundRobin));
}

// ----------------------------------------------------- construction

TEST(Cluster, RejectsEmptyOrInvalidFleets)
{
    core::TimingEngine e;
    EXPECT_THROW(Cluster(e, ClusterConfig{}), std::invalid_argument);

    ClusterConfig wave;
    wave.replicas = {cloudReplica("Quest")}; // wave-only system
    EXPECT_THROW(Cluster(e, wave), std::invalid_argument);

    ClusterConfig bad;
    bad.replicas = {cloudReplica()};
    bad.replicas[0].max_batch = 0;
    EXPECT_THROW(Cluster(e, bad), std::invalid_argument);
}

TEST(ReplicaEngine, StepOnIdleReplicaThrows)
{
    core::TimingEngine e;
    ReplicaEngine rep(e, cloudReplica());
    EXPECT_TRUE(rep.idle());
    EXPECT_THROW(rep.step(), std::logic_error);
    rep.deliver(makeRequest(0, 4.0, 2048, 4));
    EXPECT_FALSE(rep.idle());
    EXPECT_DOUBLE_EQ(rep.nextEventSeconds(), 4.0);
    rep.step(); // clock jumps to the arrival, admits, decodes once
    EXPECT_GT(rep.now(), 4.0);
    EXPECT_EQ(rep.inFlight(), 1);
    EXPECT_THROW(
        rep.deliver(makeRequest(1, 3.0, 2048, 4)), // out of order
        std::invalid_argument);
}

// ------------------------------------------------- trace utilities

TEST(Trace, SplitRoundRobinsAndMergeRoundTrips)
{
    workload::TraceConfig tc;
    tc.num_requests = 25;
    tc.arrival_rate_per_s = 2.0;
    tc.seed = 9;
    auto trace = workload::mixedLengthTrace(tc);

    const auto shards = workload::splitTrace(trace, 3);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0].size(), 9u);
    EXPECT_EQ(shards[1].size(), 8u);
    EXPECT_EQ(shards[2].size(), 8u);
    for (const auto &shard : shards) {
        for (size_t i = 1; i < shard.size(); ++i)
            EXPECT_GE(shard[i].arrival_seconds,
                      shard[i - 1].arrival_seconds);
    }
    // Request i of the arrival-sorted trace lands in shard i % 3.
    EXPECT_EQ(shards[0][0].id, trace[0].id);
    EXPECT_EQ(shards[1][0].id, trace[1].id);
    EXPECT_EQ(shards[2][0].id, trace[2].id);

    const auto merged = workload::mergeTraces(shards);
    ASSERT_EQ(merged.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(merged[i].id, trace[i].id);
        EXPECT_DOUBLE_EQ(merged[i].arrival_seconds,
                         trace[i].arrival_seconds);
    }
    EXPECT_THROW(workload::splitTrace(trace, 0),
                 std::invalid_argument);
}

TEST(Trace, MergeRestoresTheInterleaveAcrossEqualArrivals)
{
    // A run of identical arrival instants wraps around the fleet; the
    // merge must restore the original round-robin interleave, not
    // drain shard 0 first.
    std::vector<Request> trace;
    for (int64_t id : {10, 11, 12, 13, 14})
        trace.push_back(makeRequest(id, 0.0, 1024, 64));
    const auto shards = workload::splitTrace(trace, 2);
    const auto merged = workload::mergeTraces(shards);
    ASSERT_EQ(merged.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(merged[i].id, trace[i].id) << i;
}

} // namespace
} // namespace specontext
