/**
 * @file
 * Tests of DLM construction: architecture, weight sharing, the quality
 * knob, and the §3.2 similarity property (higher distillation quality
 * must yield higher information-focus similarity with the teacher).
 */
#include <gtest/gtest.h>

#include "core/live_engine.h"
#include "model/distiller.h"
#include "retrieval/retrieval_head.h"
#include "workload/metrics.h"

namespace specontext {
namespace {

using model::AttentionKind;

TEST(Distiller, ProducesSingleLayerSameHeads)
{
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    auto teacher = model::Transformer::randomInit(cfg, 1);
    auto dlm = model::distill(teacher);
    EXPECT_EQ(dlm.config().layers, 1);
    EXPECT_EQ(dlm.config().q_heads, cfg.q_heads);
    EXPECT_EQ(dlm.config().kv_heads, cfg.kv_heads);
    EXPECT_GT(dlm.config().yarn_scale, 1.0f);
}

TEST(Distiller, SharesEmbeddingWithTeacher)
{
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    auto teacher = model::Transformer::randomInit(cfg, 2);
    auto dlm = model::distill(teacher);
    for (int64_t i = 0; i < 32; ++i) {
        EXPECT_EQ(dlm.weights().embedding.data()[i],
                  teacher.weights().embedding.data()[i]);
    }
}

TEST(Distiller, QualityOneCopiesTeacherProjections)
{
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    auto teacher = model::Transformer::randomInit(cfg, 3);
    model::DistillOptions o;
    o.quality = 1.0f;
    auto dlm = model::distill(teacher, o);
    // KV head 0 maps to teacher layer 0.
    const int64_t tl = model::teacherLayerForKvHead(0, cfg.layers);
    EXPECT_EQ(dlm.weights().layers[0].wk.at(0, 0),
              teacher.weights().layers[tl].wk.at(0, 0));
}

TEST(Distiller, QualityZeroDiffersFromTeacher)
{
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    auto teacher = model::Transformer::randomInit(cfg, 4);
    model::DistillOptions o;
    o.quality = 0.0f;
    auto dlm = model::distill(teacher, o);
    double diff = 0.0;
    for (int64_t i = 0; i < dlm.weights().layers[0].wk.numel(); ++i) {
        diff += std::abs(dlm.weights().layers[0].wk.data()[i] -
                         teacher.weights().layers[0].wk.data()[i]);
    }
    EXPECT_GT(diff, 1.0);
}

TEST(Distiller, RejectsBadQuality)
{
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    auto teacher = model::Transformer::randomInit(cfg, 5);
    model::DistillOptions o;
    o.quality = 1.5f;
    EXPECT_THROW(model::distill(teacher, o), std::invalid_argument);
}

TEST(Distiller, RoundRobinLayerMapping)
{
    EXPECT_EQ(model::teacherLayerForKvHead(0, 4), 0);
    EXPECT_EQ(model::teacherLayerForKvHead(5, 4), 1);
}

TEST(Distiller, WorksForAllAttentionKinds)
{
    for (auto k : {AttentionKind::MHA, AttentionKind::GQA,
                   AttentionKind::MQA, AttentionKind::MLA}) {
        auto cfg = model::tinyConfig(k);
        auto teacher = model::Transformer::randomInit(cfg, 6);
        EXPECT_NO_THROW(model::distill(teacher));
    }
}

/**
 * The load-bearing claim of §3.2, made measurable: the hit rate of the
 * DLM-based retrieval head against the teacher's true top-k must
 * increase with distillation quality.
 */
TEST(Distiller, HitRateIncreasesWithQuality)
{
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    auto teacher = model::Transformer::randomInit(cfg, 42);
    core::LiveEngine eng(teacher);

    Rng rng(99);
    std::vector<int32_t> prompt;
    for (int i = 0; i < 192; ++i)
        prompt.push_back(
            static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));
    auto ref = eng.buildReference(prompt, 12, true);

    const int64_t budget = 64;
    auto hitAt = [&](float quality) {
        auto dlm = model::distill(teacher, {quality, 7});
        retrieval::RetrievalHead head(
            dlm, {budget, retrieval::RetrievalLevel::HeadLevel, 0});
        auto run = eng.runWithSpeContext(ref, head);
        double total = 0.0;
        for (size_t s = 0; s < ref.attention.size(); ++s) {
            auto truth = workload::trueTopKPerHead(ref.attention[s],
                                                   cfg.groups(), budget);
            total += workload::hitRate(run.step_selections[s], truth);
        }
        return total / static_cast<double>(ref.attention.size());
    };

    const double lo = hitAt(0.0f);
    const double hi = hitAt(1.0f);
    EXPECT_GT(hi, lo + 0.05);
}

/** Fidelity must also increase with quality (end-to-end version). */
TEST(Distiller, AgreementIncreasesWithQuality)
{
    auto cfg = model::tinyConfig(AttentionKind::GQA);
    auto teacher = model::Transformer::randomInit(cfg, 43);
    core::LiveEngine eng(teacher);

    Rng rng(100);
    std::vector<int32_t> prompt;
    for (int i = 0; i < 192; ++i)
        prompt.push_back(
            static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));
    auto ref = eng.buildReference(prompt, 16);

    auto agreeAt = [&](float quality) {
        auto dlm = model::distill(teacher, {quality, 7});
        retrieval::RetrievalHead head(
            dlm, {64, retrieval::RetrievalLevel::HeadLevel, 0});
        return eng.runWithSpeContext(ref, head).top1_agreement;
    };
    EXPECT_GE(agreeAt(1.0f), agreeAt(0.0f));
}

} // namespace
} // namespace specontext
