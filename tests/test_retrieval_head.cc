/**
 * @file
 * Tests of the SpeContext lightweight retrieval head (paper Section 4):
 * pruning ratios, head-level vs batch-level mapping, and the Fig. 5
 * mapping rules for MHA/GQA/MQA/MLA.
 */
#include <gtest/gtest.h>

#include "model/distiller.h"
#include "retrieval/retrieval_head.h"
#include "tensor/rng.h"

namespace specontext {
namespace {

using model::AttentionKind;
using retrieval::RetrievalHead;
using retrieval::RetrievalHeadOptions;
using retrieval::RetrievalLevel;

struct HeadFixture
{
    model::ModelConfig cfg;
    model::Transformer teacher;
    model::Transformer dlm;

    explicit HeadFixture(AttentionKind kind)
        : cfg(model::tinyConfig(kind)),
          teacher(model::Transformer::randomInit(cfg, 17)),
          dlm(model::distill(teacher))
    {
    }

    std::vector<int32_t>
    tokens(int64_t n, uint64_t seed = 3) const
    {
        Rng rng(seed);
        std::vector<int32_t> out(n);
        for (auto &t : out)
            t = static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2));
        return out;
    }
};

TEST(RetrievalHead, RequiresSingleLayerDlm)
{
    HeadFixture f(AttentionKind::GQA);
    EXPECT_THROW(RetrievalHead(f.teacher, {64}), std::invalid_argument);
    EXPECT_NO_THROW(RetrievalHead(f.dlm, {64}));
}

TEST(RetrievalHead, RejectsNonPositiveBudget)
{
    HeadFixture f(AttentionKind::GQA);
    RetrievalHeadOptions o;
    o.budget = 0;
    EXPECT_THROW(RetrievalHead(f.dlm, o), std::invalid_argument);
}

TEST(RetrievalHead, ObserveGrowsKCache)
{
    HeadFixture f(AttentionKind::GQA);
    RetrievalHead head(f.dlm, {16});
    head.observe(f.tokens(10));
    EXPECT_EQ(head.cachedTokens(), 10);
    head.reset();
    EXPECT_EQ(head.cachedTokens(), 0);
}

TEST(RetrievalHead, PrunedParametersOver90PercentSmaller)
{
    // Fig. 5(a): the head keeps only norm + QK projections — >90 %
    // parameter reduction vs the full DLM.
    HeadFixture f(AttentionKind::GQA);
    RetrievalHead head(f.dlm, {16});
    EXPECT_LT(head.prunedParameterCount(),
              head.dlmParameterCount() / 10);
}

class HeadAllKinds : public ::testing::TestWithParam<AttentionKind>
{
};

TEST_P(HeadAllKinds, SelectionHeadCountMatchesMapping)
{
    HeadFixture f(GetParam());
    RetrievalHead head(f.dlm, {8});
    head.observe(f.tokens(32));
    auto sel = head.step(5);

    // Fig. 5(b)-(e): per KV head for MHA/GQA/MQA, per query head for
    // MLA (the c cache is shared but gathered per head).
    const int64_t expect = GetParam() == AttentionKind::MLA
                               ? f.cfg.q_heads
                               : f.cfg.kv_heads;
    EXPECT_EQ(static_cast<int64_t>(sel.per_head.size()), expect);
}

TEST_P(HeadAllKinds, BudgetRespectedAndSorted)
{
    HeadFixture f(GetParam());
    const int64_t budget = 12;
    RetrievalHead head(f.dlm, {budget});
    head.observe(f.tokens(64));
    auto sel = head.step(5);
    for (const auto &h : sel.per_head) {
        EXPECT_LE(static_cast<int64_t>(h.size()), budget);
        EXPECT_TRUE(std::is_sorted(h.begin(), h.end()));
        for (int64_t p : h) {
            EXPECT_GE(p, 0);
            EXPECT_LT(p, 65);
        }
    }
}

TEST_P(HeadAllKinds, BudgetLargerThanContextSelectsAll)
{
    HeadFixture f(GetParam());
    RetrievalHead head(f.dlm, {4096});
    head.observe(f.tokens(20));
    auto sel = head.step(5);
    for (const auto &h : sel.per_head)
        EXPECT_EQ(h.size(), 21u); // 20 observed + the step token
}

TEST_P(HeadAllKinds, AttentionWeightsRowsSumToOne)
{
    HeadFixture f(GetParam());
    RetrievalHead head(f.dlm, {8});
    head.observe(f.tokens(24));
    head.step(5);
    const Tensor &w = head.lastAttentionWeights();
    ASSERT_EQ(w.dim(0), f.cfg.q_heads);
    for (int64_t h = 0; h < w.dim(0); ++h) {
        float sum = 0.0f;
        for (int64_t p = 0; p < w.dim(1); ++p)
            sum += w.at(h, p);
        EXPECT_NEAR(sum, 1.0f, 1e-4);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, HeadAllKinds,
    ::testing::Values(AttentionKind::MHA, AttentionKind::GQA,
                      AttentionKind::MQA, AttentionKind::MLA),
    [](const ::testing::TestParamInfo<AttentionKind> &info) {
        return model::attentionKindName(info.param);
    });

TEST(RetrievalHead, BatchLevelSharesOneList)
{
    HeadFixture f(AttentionKind::GQA);
    RetrievalHead head(f.dlm, {8, RetrievalLevel::BatchLevel, 0});
    head.observe(f.tokens(48));
    auto sel = head.step(5);
    ASSERT_EQ(static_cast<int64_t>(sel.per_head.size()), f.cfg.kv_heads);
    for (size_t h = 1; h < sel.per_head.size(); ++h)
        EXPECT_EQ(sel.per_head[h], sel.per_head[0]);
}

TEST(RetrievalHead, HeadLevelListsDiffer)
{
    HeadFixture f(AttentionKind::GQA);
    RetrievalHead head(f.dlm, {8, RetrievalLevel::HeadLevel, 0});
    head.observe(f.tokens(96));
    auto sel = head.step(5);
    // With 96 candidates and budget 8, distinct heads should pick at
    // least partially different tokens.
    EXPECT_NE(sel.per_head[0], sel.per_head[1]);
}

TEST(RetrievalHead, RecentWindowAlwaysIncluded)
{
    HeadFixture f(AttentionKind::GQA);
    RetrievalHeadOptions o;
    o.budget = 8;
    o.recent_window = 4;
    RetrievalHead head(f.dlm, o);
    head.observe(f.tokens(40));
    auto sel = head.step(5);
    for (const auto &h : sel.per_head) {
        for (int64_t p = 37; p <= 40; ++p)
            EXPECT_TRUE(std::binary_search(h.begin(), h.end(), p));
    }
}

TEST(RetrievalHead, MqaSingleListForAllQueryHeads)
{
    HeadFixture f(AttentionKind::MQA);
    RetrievalHead head(f.dlm, {8});
    head.observe(f.tokens(32));
    auto sel = head.step(5);
    EXPECT_EQ(sel.per_head.size(), 1u); // one KV head
}

TEST(RetrievalHead, ScoreFlopsGrowWithContext)
{
    HeadFixture f(AttentionKind::GQA);
    RetrievalHead head(f.dlm, {8});
    head.observe(f.tokens(16));
    head.step(5);
    const double flops_small = head.scoreFlops();
    head.reset();
    head.observe(f.tokens(64));
    head.step(5);
    EXPECT_GT(head.scoreFlops(), flops_small);
}

TEST(RetrievalHead, DeterministicSelections)
{
    HeadFixture f(AttentionKind::GQA);
    RetrievalHead h1(f.dlm, {8}), h2(f.dlm, {8});
    auto toks = f.tokens(40);
    h1.observe(toks);
    h2.observe(toks);
    EXPECT_EQ(h1.step(9).per_head, h2.step(9).per_head);
}

} // namespace
} // namespace specontext
