/**
 * @file
 * Tests of the simulator fast path: the SimFastPath knobs (skip-ahead
 * decode stepping, cached decode evaluators, parallel replica lanes)
 * must never change a single simulated quantity — only how fast the
 * simulator derives it. Every parity test here compares full
 * ClusterResults with exact ==, not tolerances: a fast path that is
 * "close" is wrong.
 *
 * Also pinned here because the fast path leans on them:
 *  - DecodeEvaluator bulk windows (beginWindow + k nextRoundSeconds ==
 *    k seconds() calls on elementwise-grown KV, bit for bit);
 *  - MemoryModel::allResidentMaxTokens() as the exact integer
 *    inversion of the all-layers-resident fit test;
 *  - AdmissionController::sameAdmissionShape(), the router's
 *    one-verdict-per-homogeneous-fleet memo;
 *  - sim::EventClock::fireLane() round accounting and elastic lane
 *    add/retire under skip-ahead;
 *  - util::ThreadPool fork-join semantics;
 *  - ServingMetrics summary-cache invalidation on merge-into-nonempty
 *    (regression: a polled collector must never serve pre-merge
 *    percentiles) and Streaming-mode digest parity.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/timing_engine.h"
#include "obs/obs.h"
#include "serving/admission.h"
#include "serving/cluster.h"
#include "serving/metrics.h"
#include "sim/event_clock.h"
#include "sim/memory_model.h"
#include "util/thread_pool.h"
#include "workload/trace.h"

namespace specontext {
namespace {

using serving::AdmissionController;
using serving::Cluster;
using serving::ClusterConfig;
using serving::ClusterResult;
using serving::ReplicaConfig;
using serving::Request;
using serving::RequestRecord;
using serving::RouterPolicy;
using serving::SchedulerMode;
using serving::ServingMetrics;
using serving::ServingSummary;
using serving::SummaryMode;

// ------------------------------------------------------------ helpers

ReplicaConfig
speReplica(int64_t budget = 2048)
{
    ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.budget = budget;
    rc.timing.system = core::SystemRegistry::create("SpeContext", opts);
    rc.max_batch = 8;
    return rc;
}

/** Full-attention replica under Optimistic scheduling with offload
 *  forbidden: admission binds on HBM and long generations force
 *  KV-pressure preemptions (the bench_preemption recipe). */
ReplicaConfig
preemptReplica()
{
    ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.allow_full_attention_offload = false;
    opts.prefix_reload_gbps = 200.0;
    rc.timing.system =
        core::SystemRegistry::create("FullAttn(FlashAttn)", opts);
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = 8LL << 30;
    rc.prefix_cache.page_size = 16;
    rc.scheduler_mode = SchedulerMode::Optimistic;
    return rc;
}

std::vector<Request>
diurnal(int64_t n, uint64_t seed, double rate = 2.0)
{
    workload::DiurnalTraceConfig dc;
    dc.base.num_requests = n;
    dc.base.arrival_rate_per_s = rate;
    dc.base.seed = seed;
    dc.prompt_lo = 256;
    dc.prompt_hi = 2048;
    dc.gen_lo = 64;
    dc.gen_hi = 512;
    return workload::diurnalTrace(dc);
}

/** Overloaded long-generation multi-turn trace — bursts arrive faster
 *  than bookings retire, so Optimistic replicas preempt. */
std::vector<Request>
preemptTrace(uint64_t seed)
{
    workload::MultiTurnTraceConfig mt;
    mt.base.num_requests = 12;
    mt.base.arrival_rate_per_s = 0.8;
    mt.base.seed = seed;
    mt.turns = 4;
    mt.think_time_mean_s = 15.0;
    mt.first_prompt_lo = 2048;
    mt.first_prompt_hi = 8192;
    mt.followup_lo = 64;
    mt.followup_hi = 256;
    mt.gen_lo = 4096;
    mt.gen_hi = 16384;
    return workload::multiTurnTrace(mt);
}

/** Exact comparison of every simulated quantity two runs expose.
 *  Doubles compare with == on purpose: the fast path promises bit
 *  identity, not closeness. */
void
expectSameSimulation(const ClusterResult &a, const ClusterResult &b)
{
    EXPECT_EQ(a.fleet.makespan_seconds, b.fleet.makespan_seconds);
    EXPECT_EQ(a.fleet.iterations, b.fleet.iterations);
    EXPECT_EQ(a.fleet.peak_in_flight, b.fleet.peak_in_flight);
    EXPECT_EQ(a.fleet.rejected.size(), b.fleet.rejected.size());
    EXPECT_EQ(a.replica_seconds, b.replica_seconds);
    EXPECT_EQ(a.fleet.preempt.preemptions, b.fleet.preempt.preemptions);
    EXPECT_EQ(a.fleet.preempt.restores, b.fleet.preempt.restores);
    EXPECT_EQ(a.fleet.preempt.recompute_tokens,
              b.fleet.preempt.recompute_tokens);

    ASSERT_EQ(a.placements.size(), b.placements.size());
    for (size_t i = 0; i < a.placements.size(); ++i) {
        EXPECT_EQ(a.placements[i].request_id,
                  b.placements[i].request_id);
        EXPECT_EQ(a.placements[i].replica, b.placements[i].replica);
    }

    ASSERT_EQ(a.scale_events.size(), b.scale_events.size());
    for (size_t i = 0; i < a.scale_events.size(); ++i) {
        EXPECT_EQ(a.scale_events[i].t_seconds,
                  b.scale_events[i].t_seconds);
        EXPECT_EQ(a.scale_events[i].action, b.scale_events[i].action);
        EXPECT_EQ(a.scale_events[i].replica, b.scale_events[i].replica);
    }

    // Per-request records, not just aggregates: a compensating pair of
    // per-request errors must not pass.
    const auto &ra = a.fleet.metrics.records();
    const auto &rb = b.fleet.metrics.records();
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].id, rb[i].id);
        EXPECT_EQ(ra[i].replica, rb[i].replica);
        EXPECT_EQ(ra[i].admit_seconds, rb[i].admit_seconds);
        EXPECT_EQ(ra[i].first_token_seconds, rb[i].first_token_seconds);
        EXPECT_EQ(ra[i].finish_seconds, rb[i].finish_seconds);
        EXPECT_EQ(ra[i].preemptions, rb[i].preemptions);
        EXPECT_EQ(ra[i].recompute_tokens, rb[i].recompute_tokens);
    }

    const ServingSummary sa = a.summary();
    const ServingSummary sb = b.summary();
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.total_generated_tokens, sb.total_generated_tokens);
    EXPECT_EQ(sa.ttft_mean, sb.ttft_mean);
    EXPECT_EQ(sa.ttft_p99, sb.ttft_p99);
    EXPECT_EQ(sa.e2e_mean, sb.e2e_mean);
    EXPECT_EQ(sa.e2e_p99, sb.e2e_p99);
    EXPECT_EQ(sa.tpot_mean, sb.tpot_mean);
    EXPECT_EQ(sa.queue_delay_mean, sb.queue_delay_mean);
    EXPECT_EQ(sa.throughput_tokens_per_s, sb.throughput_tokens_per_s);
}

ClusterResult
runFleet(const core::TimingEngine &engine, ClusterConfig cfg,
         const std::vector<Request> &trace, bool skip_ahead,
         bool cache_costs, size_t threads = 1, size_t shards = 0)
{
    cfg.fast_path.skip_ahead = skip_ahead;
    cfg.fast_path.cache_decode_costs = cache_costs;
    cfg.fast_path.threads = threads;
    cfg.fast_path.shards = shards;
    return Cluster(engine, cfg).run(trace);
}

// ----------------------------------------- skip-ahead cluster parity

TEST(SimFast, SkipAheadParityReserveFleet)
{
    core::TimingEngine engine;
    for (uint64_t seed : {7u, 23u}) {
        const auto trace = diurnal(96, seed);
        ClusterConfig cc;
        cc.replicas = {speReplica(), speReplica(), speReplica()};
        cc.router.policy = RouterPolicy::LeastKvLoad;
        const ClusterResult slow =
            runFleet(engine, cc, trace, false, false);
        const ClusterResult fast =
            runFleet(engine, cc, trace, true, true);
        ASSERT_GT(slow.completed(), 0);
        expectSameSimulation(slow, fast);
    }
}

TEST(SimFast, SkipAheadParityPreemptionHeavyOptimistic)
{
    // Randomized preemption-heavy property: across seeds, an
    // Optimistic fleet at firm overload (so preempt/restore re-entry
    // interleaves with decode windows) must be bit-identical with
    // skip-ahead on and off. The engine may only skip within
    // pure-decode runs; this pins that it never skips *across* a
    // preemption boundary.
    core::TimingEngine engine;
    int64_t preemptions_seen = 0;
    for (uint64_t seed : {3u, 11u, 29u}) {
        const auto trace = preemptTrace(seed);
        ClusterConfig cc;
        cc.replicas = {preemptReplica(), preemptReplica()};
        cc.router.policy = RouterPolicy::JoinShortestQueue;
        const ClusterResult slow =
            runFleet(engine, cc, trace, false, false);
        const ClusterResult fast =
            runFleet(engine, cc, trace, true, true);
        ASSERT_GT(slow.completed(), 0);
        preemptions_seen += slow.fleet.preempt.preemptions;
        expectSameSimulation(slow, fast);
    }
    // The property is vacuous if no seed ever preempted.
    EXPECT_GT(preemptions_seen, 0);
}

TEST(SimFast, EvaluatorCacheAloneIsBitIdentical)
{
    // cache_decode_costs isolated from skip_ahead: the cached
    // evaluator must reproduce the re-derive-per-iteration costs
    // exactly even when every round still goes through the event loop.
    core::TimingEngine engine;
    const auto trace = diurnal(64, 5);
    ClusterConfig cc;
    cc.replicas = {speReplica(), speReplica()};
    cc.router.policy = RouterPolicy::RoundRobin;
    const ClusterResult plain = runFleet(engine, cc, trace, false, false);
    const ClusterResult cached = runFleet(engine, cc, trace, false, true);
    expectSameSimulation(plain, cached);
}

TEST(SimFast, ParallelLanesBitIdentical)
{
    core::TimingEngine engine;
    const auto trace = diurnal(128, 13, 4.0);
    ClusterConfig cc;
    for (int i = 0; i < 4; ++i)
        cc.replicas.push_back(speReplica());
    cc.router.policy = RouterPolicy::LeastKvLoad;
    const ClusterResult one = runFleet(engine, cc, trace, true, true, 1);
    const ClusterResult four =
        runFleet(engine, cc, trace, true, true, 4);
    ASSERT_GT(one.completed(), 0);
    expectSameSimulation(one, four);
}

TEST(SimFast, ShardCountInvarianceBitIdentical)
{
    // Era stepping partitions eligible lanes into shards; the shard
    // count is a pure execution-layout knob. Any shard count — with or
    // without worker threads behind it — must reproduce the serial
    // fast path bit for bit.
    core::TimingEngine engine;
    const auto trace = diurnal(160, 41, 4.0);
    ClusterConfig cc;
    for (int i = 0; i < 6; ++i)
        cc.replicas.push_back(speReplica());
    cc.router.policy = RouterPolicy::LeastKvLoad;
    const ClusterResult serial = runFleet(engine, cc, trace, true, true);
    ASSERT_GT(serial.completed(), 0);
    for (size_t shards : {1u, 2u, 4u}) {
        const ClusterResult sharded =
            runFleet(engine, cc, trace, true, true, /*threads=*/1,
                     shards);
        expectSameSimulation(serial, sharded);
        const ClusterResult threaded =
            runFleet(engine, cc, trace, true, true, /*threads=*/2,
                     shards);
        expectSameSimulation(serial, threaded);
    }
}

TEST(SimFast, PooledAndHeapPrefixTreeBitIdentical)
{
    // The prefix tree's slab pool changes only where nodes live.
    // A cache-heavy preemption workload (insertions, evictions, pin
    // churn) must be bit-identical with the pool replaced by plain
    // new/delete.
    core::TimingEngine engine;
    const auto trace = preemptTrace(11);
    ClusterConfig cc;
    cc.replicas = {preemptReplica(), preemptReplica()};
    cc.router.policy = RouterPolicy::PrefixAffinity;
    ClusterConfig heap_cfg = cc;
    for (auto &rc : heap_cfg.replicas)
        rc.prefix_cache.pooled = false;
    const ClusterResult pooled = runFleet(engine, cc, trace, true, true);
    const ClusterResult heap =
        runFleet(engine, heap_cfg, trace, true, true);
    ASSERT_GT(pooled.completed(), 0);
    // The cache did real work, so the pool was actually exercised.
    EXPECT_GT(pooled.fleet.prefix.inserted_tokens, 0);
    expectSameSimulation(pooled, heap);
}

TEST(SimFast, ObservedRunMatchesUnobservedSimulation)
{
    // Attaching trace + counters serializes parallel dispatch — era
    // stepping (threads AND shards requested) falls back to the
    // sequential engine so per-round event emission and counter
    // updates stay single-threaded — but simulated quantities must
    // not move, and the decode-iteration counter must agree with the
    // unobserved iteration count.
    core::TimingEngine engine;
    const auto trace = diurnal(64, 19);
    ClusterConfig cc;
    cc.replicas = {speReplica(), speReplica()};
    cc.router.policy = RouterPolicy::LeastKvLoad;
    const ClusterResult plain = runFleet(engine, cc, trace, true, true);

    obs::Trace ring{obs::TraceConfig{1 << 18}};
    obs::CounterRegistry counters;
    ClusterConfig oc = cc;
    oc.obs.trace = &ring;
    oc.obs.counters = &counters;
    const ClusterResult observed = runFleet(
        engine, oc, trace, true, true, /*threads=*/4, /*shards=*/4);
    expectSameSimulation(plain, observed);

    int64_t decode_iters = 0;
    for (const auto &c : counters.snapshot()) {
        if (c.name.find("decode_iterations") != std::string::npos)
            decode_iters += c.value;
    }
    EXPECT_EQ(decode_iters, plain.fleet.iterations);
}

// --------------------------------------------- elastic lanes mid-skip

/** Scale to 3 replicas early, back down to 1 later — forces
 *  EventClock addLane() and retireLane() while skip-ahead windows are
 *  running on the surviving lanes. */
class PulseController : public serving::FleetController
{
  public:
    int control(const serving::FleetState &s) override
    {
        const size_t attached = s.live + s.warming;
        if (s.now_seconds < 40.0)
            return static_cast<int>(3 - std::min<size_t>(3, attached));
        return -static_cast<int>(
            std::min<size_t>(attached - 1, attached));
    }
};

TEST(SimFast, ElasticLaneAddRetireParityUnderSkipAhead)
{
    core::TimingEngine engine;
    const auto trace = diurnal(96, 31);
    ClusterConfig cc;
    cc.replicas = {speReplica()};
    cc.router.policy = RouterPolicy::LeastKvLoad;
    cc.elastic.min_replicas = 1;
    cc.elastic.max_replicas = 3;
    cc.elastic.control_period_seconds = 5.0;

    PulseController slow_ctl, fast_ctl;
    ClusterConfig slow_cfg = cc;
    slow_cfg.elastic.controller = &slow_ctl;
    ClusterConfig fast_cfg = cc;
    fast_cfg.elastic.controller = &fast_ctl;

    const ClusterResult slow =
        runFleet(engine, slow_cfg, trace, false, false);
    const ClusterResult fast =
        runFleet(engine, fast_cfg, trace, true, true);
    // The elastic machinery actually fired: lanes were added and
    // retired mid-run, not just booked.
    ASSERT_FALSE(slow.scale_events.empty());
    bool attached = false, retired = false;
    for (const auto &ev : slow.scale_events) {
        attached |= ev.action == serving::ScaleAction::Attach;
        retired |= ev.action == serving::ScaleAction::Retire;
    }
    EXPECT_TRUE(attached);
    EXPECT_TRUE(retired);
    expectSameSimulation(slow, fast);
}

TEST(SimFast, EraSteppingElasticControlTickParity)
{
    // Elastic control ticks are router-barrier events: they must land
    // *between* eras, never inside one, or a scale decision would see
    // lane state from the future. Pin bit parity of an elastic fleet
    // under era stepping (threads + shards) against the plain engine,
    // and require that scale events actually fired mid-run.
    core::TimingEngine engine;
    const auto trace = diurnal(96, 31);
    ClusterConfig cc;
    cc.replicas = {speReplica()};
    cc.router.policy = RouterPolicy::LeastKvLoad;
    cc.elastic.min_replicas = 1;
    cc.elastic.max_replicas = 3;
    cc.elastic.control_period_seconds = 5.0;

    PulseController slow_ctl, era_ctl;
    ClusterConfig slow_cfg = cc;
    slow_cfg.elastic.controller = &slow_ctl;
    ClusterConfig era_cfg = cc;
    era_cfg.elastic.controller = &era_ctl;

    const ClusterResult slow =
        runFleet(engine, slow_cfg, trace, false, false);
    const ClusterResult era = runFleet(engine, era_cfg, trace, true,
                                       true, /*threads=*/4,
                                       /*shards=*/2);
    ASSERT_FALSE(slow.scale_events.empty());
    expectSameSimulation(slow, era);
}

// ------------------------------------------------- EventClock fast ops

TEST(EventClockFast, FireLaneMatchesFire)
{
    // fireLane(earliestLane()) must be observationally identical to
    // fire(): same winner, same subsequent bookings accepted.
    sim::EventClock a(4), b(4);
    obs::CounterRegistry ca, cb;
    a.attachObservability({nullptr, &ca, nullptr});
    b.attachObservability({nullptr, &cb, nullptr});

    const double books[][4] = {
        {5.0, 3.0, 9.0, 3.0},
        {1.0, 2.0, 0.5, 7.0},
        {4.0, 4.0, 4.0, 4.0},
    };
    for (const auto &round : books) {
        for (size_t i = 0; i < 4; ++i) {
            a.set(i, round[i]);
            b.set(i, round[i]);
        }
        const size_t via_fire = a.fire();
        const size_t picked = b.earliestLane();
        b.fireLane(picked);
        EXPECT_EQ(via_fire, picked);
    }
    // Round accounting went through the same counters either way.
    EXPECT_EQ(ca.snapshot().size(), cb.snapshot().size());
    const auto sa = ca.snapshot();
    const auto sb = cb.snapshot();
    for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].name, sb[i].name);
        EXPECT_EQ(sa[i].value, sb[i].value);
    }
}

TEST(EventClockFast, AddAndRetireLanesKeepFireLaneSound)
{
    sim::EventClock c(2);
    c.set(0, 10.0);
    c.set(1, 4.0);
    const size_t added = c.addLane();
    EXPECT_EQ(added, 2u);
    c.set(added, 1.0);
    EXPECT_EQ(c.earliestLane(), added);
    c.fireLane(added);
    c.retireLane(added);
    EXPECT_TRUE(c.laneRetired(added));
    EXPECT_THROW(c.set(added, 2.0), std::logic_error);
    // Retired lane keeps its slot; the scan falls back to lane 1.
    EXPECT_EQ(c.earliestLane(), 1u);
    c.fireLane(1);
    EXPECT_EQ(c.liveLanes(), 2u);
}

// ------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, SingleThreadRunsInline)
{
    util::ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    int ran = 0;
    pool.submit([&] { ++ran; });
    // Inline execution: done before wait() is even called.
    EXPECT_EQ(ran, 1);
    pool.wait();
}

TEST(ThreadPoolTest, WaitIsABarrierAcrossRepeatedBatches)
{
    util::ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int batch = 0; batch < 50; ++batch) {
        const int n = 1 + batch % 7;
        for (int i = 0; i < n; ++i)
            pool.submit([&] { done.fetch_add(1); });
        pool.wait();
        // Everything submitted so far has finished at each barrier.
        int expect = 0;
        for (int k = 0; k <= batch; ++k)
            expect += 1 + k % 7;
        EXPECT_EQ(done.load(), expect);
    }
}

TEST(ThreadPoolTest, RunShardsInlineWithoutWorkers)
{
    // No workers -> shards run inline, ascending, on the caller.
    util::ThreadPool pool(1);
    std::vector<size_t> order;
    struct Ctx
    {
        std::vector<size_t> *order;
    } ctx{&order};
    pool.runShards(5, +[](void *c, size_t s) {
        static_cast<Ctx *>(c)->order->push_back(s);
    }, &ctx);
    ASSERT_EQ(order.size(), 5u);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, RunShardsCoversEveryShardExactlyOnce)
{
    util::ThreadPool pool(3);
    constexpr size_t kShards = 17;
    std::atomic<int> hits[kShards] = {};
    struct Ctx
    {
        std::atomic<int> *hits;
    } ctx{hits};
    // Repeated generations through the same pool: each dispatch is a
    // full fork-join, so counts advance in lockstep.
    for (int round = 1; round <= 8; ++round) {
        pool.runShards(kShards, +[](void *c, size_t s) {
            static_cast<Ctx *>(c)->hits[s].fetch_add(1);
        }, &ctx);
        for (size_t s = 0; s < kShards; ++s)
            EXPECT_EQ(hits[s].load(), round) << "shard " << s;
    }
}

TEST(ThreadPoolTest, RunShardsFewerShardsThanWorkers)
{
    util::ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.runShards(2, +[](void *c, size_t) {
        static_cast<std::atomic<int> *>(c)->fetch_add(1);
    }, &total);
    EXPECT_EQ(total.load(), 2);
    // Zero shards is a no-op join, not a hang.
    pool.runShards(0, +[](void *c, size_t) {
        static_cast<std::atomic<int> *>(c)->fetch_add(1);
    }, &total);
    EXPECT_EQ(total.load(), 2);
}

// ------------------------------------------- DecodeEvaluator windows

core::TimingConfig
timingFor(const char *system, int64_t budget = 2048)
{
    core::TimingConfig cfg;
    cfg.llm = model::deepseekDistillLlama8bGeometry();
    cfg.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.budget = budget;
    cfg.system = core::SystemRegistry::create(system, opts);
    return cfg;
}

TEST(DecodeWindow, MatchesRepeatedSecondsBitForBit)
{
    // beginWindow(kv) + k nextRoundSeconds() == k seconds() calls on
    // kv, kv+1, ..., kv+(k-1), exactly. The KV mix is chosen so the
    // window crosses both interesting lines mid-run: short contexts
    // pass the attention budget (attended-token growth stops) and the
    // batch eventually spills past the all-resident fit limit.
    core::TimingEngine engine;
    for (const char *system :
         {"SpeContext", "FullAttn(FlashAttn)", "H2O"}) {
        const core::TimingConfig cfg = timingFor(system, 512);
        auto window = engine.makeDecodeEvaluator(cfg);
        auto oracle = engine.makeDecodeEvaluator(cfg);
        std::vector<int64_t> kv = {100, 500, 505, 2048, 9000, 40000};
        window->beginWindow(kv);
        for (int round = 0; round < 64; ++round) {
            const double got = window->nextRoundSeconds();
            const double want = oracle->seconds(kv);
            ASSERT_EQ(got, want)
                << system << " diverged at round " << round;
            for (int64_t &s : kv)
                ++s;
        }
        // Re-beginning resets cleanly (the batch changed shape).
        std::vector<int64_t> kv2 = {1, 511, 512, 513};
        window->beginWindow(kv2);
        for (int round = 0; round < 8; ++round) {
            ASSERT_EQ(window->nextRoundSeconds(), oracle->seconds(kv2));
            for (int64_t &s : kv2)
                ++s;
        }
    }
}

TEST(DecodeWindow, EmptyBatchWindowIsZero)
{
    core::TimingEngine engine;
    auto ev = engine.makeDecodeEvaluator(timingFor("SpeContext"));
    ev->beginWindow({});
    EXPECT_EQ(ev->nextRoundSeconds(), 0.0);
    EXPECT_EQ(ev->nextRoundSeconds(), 0.0);
}

// ----------------------------------------- all-resident fit shortcut

TEST(MemoryModelFast, AllResidentMaxTokensIsTheExactThreshold)
{
    // s <= allResidentMaxTokens() iff maxGpuLayers(s) == layers, with
    // equality tight on both sides of the boundary. Pairings where the
    // weights fit:
    struct Case
    {
        sim::HardwareSpec hw;
        model::ModelConfig llm;
    };
    const Case cases[] = {
        {sim::HardwareSpec::cloudA800(),
         model::deepseekDistillLlama8bGeometry()},
        {sim::HardwareSpec::edge4060(),
         model::reasoningLlama32_1bGeometry()},
    };
    for (const Case &c : cases) {
        core::TimingConfig cfg = timingFor("SpeContext");
        cfg.hw = c.hw;
        cfg.llm = c.llm;
        const sim::MemoryModel mm(
            core::TimingEngine::memoryInputsFor(cfg, 1));
        const int64_t limit = mm.allResidentMaxTokens();
        ASSERT_GT(limit, 0);
        EXPECT_EQ(mm.maxGpuLayers(limit), cfg.llm.layers);
        EXPECT_LT(mm.maxGpuLayers(limit + 1), cfg.llm.layers);
        EXPECT_EQ(mm.maxGpuLayers(1), cfg.llm.layers);
    }

    // 8B weights alone overflow the 4060: the sentinel is -1, matching
    // maxGpuLayers never reaching the full-resident count.
    core::TimingConfig big = timingFor("SpeContext");
    big.hw = sim::HardwareSpec::edge4060();
    const sim::MemoryModel overflow(
        core::TimingEngine::memoryInputsFor(big, 1));
    EXPECT_EQ(overflow.allResidentMaxTokens(), -1);
    EXPECT_LT(overflow.maxGpuLayers(1), big.llm.layers);
}

// --------------------------------------------- admission-shape memo

TEST(AdmissionShape, EqualConfigsFromDistinctInstancesMatch)
{
    // Fleets build one SystemModel instance per replica; the router's
    // memo must still recognize them as the same admission shape.
    core::TimingConfig a = timingFor("SpeContext", 2048);
    core::TimingConfig b = timingFor("SpeContext", 2048);
    ASSERT_NE(a.system.get(), b.system.get());
    const AdmissionController ca(a), cb(b);
    EXPECT_TRUE(ca.sameAdmissionShape(cb));
    EXPECT_TRUE(cb.sameAdmissionShape(ca));
    EXPECT_TRUE(ca.sameAdmissionShape(ca));
}

TEST(AdmissionShape, AnyDecisionRelevantDifferenceBreaksTheMatch)
{
    const core::TimingConfig base = timingFor("SpeContext", 2048);
    const AdmissionController cbase(base);

    const AdmissionController cbudget(timingFor("SpeContext", 4096));
    EXPECT_FALSE(cbase.sameAdmissionShape(cbudget));

    const AdmissionController csystem(timingFor("H2O", 2048));
    EXPECT_FALSE(cbase.sameAdmissionShape(csystem));

    core::TimingConfig hw = base;
    hw.hw = sim::HardwareSpec::edge4060();
    EXPECT_FALSE(cbase.sameAdmissionShape(AdmissionController(hw)));

    core::TimingConfig llm = base;
    llm.llm = model::reasoningLlama32_1bGeometry();
    EXPECT_FALSE(cbase.sameAdmissionShape(AdmissionController(llm)));
}

// --------------------------------- ServingMetrics cache + streaming

Request
finished(int64_t id, double arrival, double admit, double first,
         double finish, int64_t gen = 4)
{
    Request r;
    r.id = id;
    r.prompt_len = 16;
    r.gen_len = gen;
    r.arrival_seconds = arrival;
    r.admit_seconds = admit;
    r.first_token_seconds = first;
    r.finish_seconds = finish;
    r.state = serving::RequestState::Finished;
    return r;
}

TEST(ServingMetricsCache, MergeIntoNonEmptyInvalidatesEveryScope)
{
    // Regression: summarize()/summarizeReplica() memoize their sorted
    // percentile series. Priming the memo on a non-empty collector and
    // then merge()-ing another collector in must invalidate the fleet
    // scope AND every per-replica scope — stale memos would keep
    // reporting pre-merge percentiles forever.
    ServingMetrics a;
    for (int i = 0; i < 8; ++i)
        a.record(finished(i, 0.0, 0.1, 1.0 + i, 10.0 + i), i % 2);
    // Prime the fleet memo and both replica memos.
    const ServingSummary before = a.summarize(100.0);
    (void)a.summarizeReplica(0, 100.0);
    (void)a.summarizeReplica(1, 100.0);

    ServingMetrics b;
    for (int i = 8; i < 16; ++i)
        b.record(finished(i, 0.0, 0.2, 100.0 + i, 200.0 + i), i % 2);
    a.merge(b);

    // Oracle: a fresh collector fed the concatenation, no memo to go
    // stale.
    ServingMetrics fresh;
    for (const RequestRecord &r : a.records()) {
        Request rr = finished(r.id, r.arrival_seconds, r.admit_seconds,
                              r.first_token_seconds, r.finish_seconds,
                              r.gen_len);
        fresh.record(rr, r.replica);
    }

    const ServingSummary merged = a.summarize(100.0);
    const ServingSummary oracle = fresh.summarize(100.0);
    EXPECT_EQ(merged.completed, oracle.completed);
    EXPECT_EQ(merged.ttft_p50, oracle.ttft_p50);
    EXPECT_EQ(merged.ttft_p99, oracle.ttft_p99);
    EXPECT_EQ(merged.e2e_p50, oracle.e2e_p50);
    EXPECT_EQ(merged.e2e_p99, oracle.e2e_p99);
    // The merge visibly moved the tail (the B records are much slower),
    // so a stale memo could not have passed the checks above.
    EXPECT_GT(merged.ttft_p99, before.ttft_p99);

    for (int64_t rep : {0, 1}) {
        const ServingSummary mr = a.summarizeReplica(rep, 100.0);
        const ServingSummary fr = fresh.summarizeReplica(rep, 100.0);
        EXPECT_EQ(mr.completed, fr.completed);
        EXPECT_EQ(mr.ttft_p99, fr.ttft_p99);
        EXPECT_EQ(mr.e2e_p99, fr.e2e_p99);
    }
}

TEST(ServingMetricsStreaming, DigestMeansExactPercentilesBounded)
{
    // Streaming mode: means bit-identical to Exact on an un-merged
    // collector; histogram percentiles within the documented ~2%
    // bucket width.
    ServingMetrics exact, streaming;
    streaming.setSummaryMode(SummaryMode::Streaming);
    for (int i = 0; i < 200; ++i) {
        const double first = 0.5 + 0.01 * i;
        const double finish = first + 2.0 + 0.05 * i;
        const Request r = finished(i, 0.0, 0.1, first, finish, 8);
        exact.record(r, i % 3);
        streaming.record(r, i % 3);
    }
    const ServingSummary se = exact.summarize(50.0);
    const ServingSummary ss = streaming.summarize(50.0);
    EXPECT_EQ(ss.completed, se.completed);
    EXPECT_EQ(ss.ttft_mean, se.ttft_mean);
    EXPECT_EQ(ss.e2e_mean, se.e2e_mean);
    EXPECT_EQ(ss.tpot_mean, se.tpot_mean);
    EXPECT_EQ(ss.queue_delay_mean, se.queue_delay_mean);
    EXPECT_EQ(ss.throughput_tokens_per_s, se.throughput_tokens_per_s);
    EXPECT_NEAR(ss.ttft_p99, se.ttft_p99, 0.02 * se.ttft_p99);
    EXPECT_NEAR(ss.e2e_p50, se.e2e_p50, 0.02 * se.e2e_p50);
    EXPECT_NEAR(ss.e2e_p99, se.e2e_p99, 0.02 * se.e2e_p99);
}

} // namespace
} // namespace specontext
