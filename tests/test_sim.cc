/**
 * @file
 * Tests of the hardware cost model, the two-stream timeline, and the
 * N-lane event clock behind the multi-replica cluster.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "model/config.h"
#include "sim/cost.h"
#include "sim/event_clock.h"
#include "sim/hardware.h"
#include "sim/timeline.h"

namespace specontext {
namespace {

using sim::CostModel;
using sim::HardwareSpec;
using sim::KernelBackend;

TEST(Hardware, PresetsMatchTable2)
{
    const auto cloud = HardwareSpec::cloudA800();
    EXPECT_EQ(cloud.gpu_mem_bytes, 80LL << 30);
    EXPECT_EQ(cloud.cpu_mem_bytes, 1008LL << 30);

    const auto edge = HardwareSpec::edge4060();
    EXPECT_EQ(edge.gpu_mem_bytes, 8LL << 30);
    EXPECT_EQ(edge.cpu_mem_bytes, 24LL << 30);

    EXPECT_EQ(HardwareSpec::edge4060Capped4G().gpu_mem_bytes,
              4LL << 30);
}

TEST(Hardware, BackendEfficiencyOrdering)
{
    const auto e = sim::BackendEfficiency::of(KernelBackend::Eager);
    const auto f =
        sim::BackendEfficiency::of(KernelBackend::FlashAttention);
    const auto fi = sim::BackendEfficiency::of(KernelBackend::FlashInfer);
    EXPECT_LT(e.attn_bw, f.attn_bw);
    EXPECT_LT(f.attn_bw, fi.attn_bw);
    EXPECT_GT(e.launches_per_layer, fi.launches_per_layer);
}

TEST(CostModel, GemmScalesWithFlops)
{
    CostModel c(HardwareSpec::cloudA800(), KernelBackend::FlashInfer);
    const double t1 = c.gemmSeconds(1024, 1024, 1024);
    const double t2 = c.gemmSeconds(2048, 1024, 1024);
    EXPECT_NEAR(t2 / t1, 2.0, 0.3);
}

TEST(CostModel, SmallGemmIsMemoryBound)
{
    CostModel c(HardwareSpec::cloudA800(), KernelBackend::FlashInfer);
    // A (1 x k) * (k x n) is dominated by streaming B.
    const double t = c.gemmSeconds(1, 4096, 4096);
    const double bytes = 2.0 * (4096.0 + 4096.0 * 4096.0 + 4096.0);
    const double mem_floor = bytes / (2039.0 * 1e9);
    EXPECT_GE(t, mem_floor * 0.99);
}

TEST(CostModel, AttentionDecodeMemoryBound)
{
    CostModel c(HardwareSpec::cloudA800(), KernelBackend::FlashInfer);
    const double t1 = c.attentionDecodeSeconds(1, 32, 8, 128, 16384);
    const double t2 = c.attentionDecodeSeconds(1, 32, 8, 128, 32768);
    EXPECT_NEAR(t2 / t1, 2.0, 0.1); // linear in KV length
}

TEST(CostModel, EagerSlowerThanFlashInferOnAttention)
{
    CostModel eager(HardwareSpec::cloudA800(), KernelBackend::Eager);
    CostModel fi(HardwareSpec::cloudA800(), KernelBackend::FlashInfer);
    EXPECT_GT(eager.attentionDecodeSeconds(4, 32, 8, 128, 16384),
              3.0 * fi.attentionDecodeSeconds(4, 32, 8, 128, 16384));
}

TEST(CostModel, DecodeStepHasWeightStreamingFloor)
{
    CostModel c(HardwareSpec::cloudA800(), KernelBackend::FlashInfer);
    const auto m = model::llama31_8bGeometry();
    const double t = c.decodeStepSeconds(m, 1, 128);
    const double floor =
        static_cast<double>(m.parameterBytesFp16()) / (2039.0 * 1e9);
    EXPECT_GE(t, floor * 0.99);
}

TEST(CostModel, DecodeBreakdownSumsConsistently)
{
    CostModel c(HardwareSpec::cloudA800(), KernelBackend::FlashInfer);
    const auto m = model::llama31_8bGeometry();
    const auto b = c.decodeStepBreakdown(m, 8, 16384);
    EXPECT_GE(b.total, b.attn);
    EXPECT_GE(b.total + 1e-12,
              std::max(b.gemm + b.attn + b.launch + b.lm_head,
                       0.0) * 0.999);
}

TEST(CostModel, PcieTransferLinearInBytes)
{
    CostModel c(HardwareSpec::cloudA800(), KernelBackend::FlashInfer);
    const double t1 = c.pcieSeconds(1LL << 30);
    const double t2 = c.pcieSeconds(2LL << 30);
    EXPECT_GT(t2, t1 * 1.8);
    EXPECT_EQ(c.pcieSeconds(0), 0.0);
}

TEST(CostModel, PrefillScalesSuperlinearlyInPromptLength)
{
    CostModel c(HardwareSpec::cloudA800(), KernelBackend::FlashInfer);
    const auto m = model::llama31_8bGeometry();
    const double t1 = c.prefillSeconds(m, 1, 8192);
    const double t2 = c.prefillSeconds(m, 1, 16384);
    EXPECT_GT(t2 / t1, 2.0); // quadratic attention term present
}

TEST(CostModel, RetrievalIncludesLaunchOverhead)
{
    CostModel c(HardwareSpec::cloudA800(), KernelBackend::FlashInfer);
    EXPECT_GE(c.retrievalSeconds(0.0, 0), c.launchSeconds());
}

TEST(Timeline, SingleStreamAccumulates)
{
    sim::Timeline tl;
    tl.enqueue(sim::StreamId::Compute, 1.0, "a");
    tl.enqueue(sim::StreamId::Compute, 2.0, "a");
    EXPECT_DOUBLE_EQ(tl.now(sim::StreamId::Compute), 3.0);
    EXPECT_DOUBLE_EQ(tl.tagSeconds("a"), 3.0);
}

TEST(Timeline, StreamsRunConcurrently)
{
    sim::Timeline tl;
    tl.enqueue(sim::StreamId::Compute, 5.0, "c");
    tl.enqueue(sim::StreamId::Copy, 3.0, "x");
    EXPECT_DOUBLE_EQ(tl.makespan(), 5.0); // overlapped, not 8
}

TEST(Timeline, WaitEventSerializes)
{
    sim::Timeline tl;
    auto e = tl.enqueue(sim::StreamId::Copy, 4.0, "x");
    tl.waitEvent(sim::StreamId::Compute, e);
    tl.enqueue(sim::StreamId::Compute, 1.0, "c");
    EXPECT_DOUBLE_EQ(tl.makespan(), 5.0);
}

TEST(Timeline, WaitEventNoopWhenAlreadyPast)
{
    sim::Timeline tl;
    tl.enqueue(sim::StreamId::Compute, 10.0, "c");
    auto e = tl.enqueue(sim::StreamId::Copy, 1.0, "x");
    tl.waitEvent(sim::StreamId::Compute, e);
    EXPECT_DOUBLE_EQ(tl.now(sim::StreamId::Compute), 10.0);
}

TEST(Timeline, BarrierAlignsStreams)
{
    sim::Timeline tl;
    tl.enqueue(sim::StreamId::Compute, 2.0, "c");
    tl.enqueue(sim::StreamId::Copy, 7.0, "x");
    tl.barrier();
    EXPECT_DOUBLE_EQ(tl.now(sim::StreamId::Compute), 7.0);
}

TEST(Timeline, RejectsNegativeDuration)
{
    sim::Timeline tl;
    EXPECT_THROW(tl.enqueue(sim::StreamId::Compute, -1.0, "bad"),
                 std::invalid_argument);
}

TEST(Timeline, ResetClears)
{
    sim::Timeline tl;
    tl.enqueue(sim::StreamId::Compute, 2.0, "c");
    tl.reset();
    EXPECT_DOUBLE_EQ(tl.makespan(), 0.0);
    EXPECT_DOUBLE_EQ(tl.tagSeconds("c"), 0.0);
}

TEST(EventClock, StartsIdleAndTracksEarliestLane)
{
    const double inf = std::numeric_limits<double>::infinity();
    sim::EventClock clock(3);
    EXPECT_EQ(clock.lanes(), 3u);
    EXPECT_EQ(clock.earliest(), inf);
    EXPECT_EQ(clock.earliestLane(), 0u); // defined even when all idle

    clock.set(1, 5.0);
    clock.set(2, 3.0);
    EXPECT_EQ(clock.earliestLane(), 2u);
    EXPECT_DOUBLE_EQ(clock.earliest(), 3.0);
    clock.set(2, inf); // lane 2 goes idle
    EXPECT_EQ(clock.earliestLane(), 1u);
    EXPECT_DOUBLE_EQ(clock.at(1), 5.0);
}

TEST(EventClock, TiesBreakTowardTheLowestLane)
{
    sim::EventClock clock(4);
    clock.set(3, 2.0);
    clock.set(1, 2.0);
    clock.set(2, 2.0);
    EXPECT_EQ(clock.earliestLane(), 1u);
}

TEST(EventClock, RejectsDegenerateInputs)
{
    EXPECT_THROW(sim::EventClock(0), std::invalid_argument);
    sim::EventClock clock(1);
    EXPECT_THROW(clock.set(0, std::nan("")), std::invalid_argument);
    EXPECT_THROW(clock.set(5, 1.0), std::out_of_range);
}

TEST(EventClock, AddLaneAppendsWithoutReindexingExistingBookings)
{
    sim::EventClock clock(2);
    clock.set(0, 4.0);
    clock.set(1, 2.0);
    const size_t added = clock.addLane();
    EXPECT_EQ(added, 2u);
    EXPECT_EQ(clock.lanes(), 3u);
    EXPECT_EQ(clock.liveLanes(), 3u);
    // The new lane starts idle; prior bookings are untouched.
    EXPECT_EQ(clock.at(2), std::numeric_limits<double>::infinity());
    EXPECT_DOUBLE_EQ(clock.at(0), 4.0);
    EXPECT_EQ(clock.earliestLane(), 1u);
    clock.set(2, 1.0);
    EXPECT_EQ(clock.earliestLane(), 2u);
}

TEST(EventClock, RetiredLaneNeverWinsAndRejectsBookings)
{
    sim::EventClock clock(3);
    clock.set(0, 5.0);
    clock.set(1, 1.0);
    clock.set(2, 3.0);
    clock.retireLane(1);
    EXPECT_TRUE(clock.laneRetired(1));
    EXPECT_EQ(clock.liveLanes(), 2u);
    // Retirement idles the lane immediately and permanently.
    EXPECT_EQ(clock.at(1), std::numeric_limits<double>::infinity());
    EXPECT_EQ(clock.earliestLane(), 2u);
    EXPECT_THROW(clock.set(1, 0.5), std::logic_error);
    clock.retireLane(1); // idempotent
    EXPECT_TRUE(clock.laneRetired(1));
}

TEST(EventClock, TieBreaksAreStableAcrossMidRunRetirement)
{
    // The elastic cluster's determinism hinges on this: retiring a
    // lane keeps every surviving lane's index, so an equal-instant tie
    // resolves to the same lane before and after the retirement.
    sim::EventClock clock(4);
    clock.set(1, 2.0);
    clock.set(2, 2.0);
    clock.set(3, 2.0);
    EXPECT_EQ(clock.earliestLane(), 1u);
    clock.retireLane(0); // idle lane below the tie
    EXPECT_EQ(clock.earliestLane(), 1u);
    clock.retireLane(1); // the winner itself retires
    EXPECT_EQ(clock.earliestLane(), 2u); // next-lowest index, not 3
    // A lane added after a retirement still loses equal-instant ties
    // to lower surviving indices.
    const size_t added = clock.addLane();
    clock.set(added, 2.0);
    EXPECT_EQ(clock.earliestLane(), 2u);
}

} // namespace
} // namespace specontext
