/**
 * @file
 * Tests of the pluggable SystemModel registry: name round-trips, the
 * unknown-name error path, plugin registration, capability flags, and
 * — critically — parity of the new polymorphic simulate()/stepping
 * paths with the old SystemKind enum dispatch. The golden numbers were
 * captured from the pre-registry enum implementation (PR 1 tree) with
 * "%.17g" formatting, so EXPECT_EQ pins bit-for-bit agreement. (The
 * deprecated SystemKind shim itself was deleted; the seven legacy
 * systems are addressed by their registry names.)
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/timing_engine.h"

namespace specontext {
namespace {

using core::SystemOptions;
using core::SystemRegistry;
using core::TimingConfig;
using core::TimingEngine;

const std::vector<const char *> kLegacyNames = {
    "FullAttn(Eager)", "FullAttn(FlashAttn)", "FullAttn(FlashInfer)",
    "Quest",           "ClusterKV",           "ShadowKV",
    "SpeContext",
};

TimingConfig
cloudShape(int64_t batch, int64_t in, int64_t out)
{
    TimingConfig c;
    c.llm = model::deepseekDistillLlama8bGeometry();
    c.hw = sim::HardwareSpec::cloudA800();
    c.batch = batch;
    c.prompt_len = in;
    c.gen_len = out;
    return c;
}

// ----------------------------------------------------------- registry

TEST(SystemRegistry, ListsAllBuiltinSystems)
{
    const auto names = SystemRegistry::names();
    EXPECT_GE(names.size(), 9u);
    for (const char *expect :
         {"FullAttn(Eager)", "FullAttn(FlashAttn)", "FullAttn(FlashInfer)",
          "Quest", "ClusterKV", "ShadowKV", "SpeContext", "H2O",
          "StreamingLLM"}) {
        EXPECT_TRUE(SystemRegistry::contains(expect)) << expect;
        EXPECT_NE(std::find(names.begin(), names.end(), expect),
                  names.end())
            << expect;
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SystemRegistry, UnknownNameThrowsListingKnownSystems)
{
    try {
        SystemRegistry::create("NoSuchSystem");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown system 'NoSuchSystem'"),
                  std::string::npos);
        EXPECT_NE(msg.find("SpeContext"), std::string::npos);
    }
}

TEST(SystemRegistry, NameRoundTripForEveryFactory)
{
    for (const auto &name : SystemRegistry::names()) {
        const auto sys = SystemRegistry::create(name);
        ASSERT_NE(sys, nullptr) << name;
        EXPECT_EQ(sys->name(), name);
    }
}

TEST(SystemRegistry, DuplicateRegistrationThrows)
{
    EXPECT_THROW(SystemRegistry::registerSystem(
                     "SpeContext",
                     [](const SystemOptions &) {
                         return std::shared_ptr<const core::SystemModel>();
                     }),
                 std::invalid_argument);
}

TEST(SystemRegistry, OptionsReachTheConstructedSystem)
{
    SystemOptions o;
    o.budget = 4096;
    const auto sys = SystemRegistry::create("SpeContext", o);
    EXPECT_EQ(sys->options().budget, 4096);
    const TimingConfig cfg = [&] {
        TimingConfig c = cloudShape(1, 2048, 2048);
        c.system = sys;
        return c;
    }();
    EXPECT_EQ(sys->memoryInputs(cfg, 3).budget, 4096);
    EXPECT_EQ(sys->memoryInputs(cfg, 3).requests, 3);
}

// ----------------------------------------------------- legacy names

TEST(LegacySystems, AllSevenResolveThroughRegistry)
{
    for (const char *name : kLegacyNames) {
        EXPECT_TRUE(SystemRegistry::contains(name)) << name;
        EXPECT_STREQ(SystemRegistry::create(name)->name(), name);
    }
}

// ---------------------------------------------------------- capability

TEST(SystemModel, ContinuousBatchingCapabilityMatchesPaper)
{
    for (const char *cb : {"FullAttn(Eager)", "FullAttn(FlashAttn)",
                           "FullAttn(FlashInfer)", "SpeContext", "H2O",
                           "StreamingLLM"}) {
        EXPECT_TRUE(
            SystemRegistry::create(cb)->supportsContinuousBatching())
            << cb;
    }
    for (const char *wave : {"Quest", "ClusterKV", "ShadowKV"}) {
        EXPECT_FALSE(
            SystemRegistry::create(wave)->supportsContinuousBatching())
            << wave;
    }
}

TEST(SystemModel, DataflowRowsMatchFigure7)
{
    using core::DataflowKind;
    EXPECT_EQ(SystemRegistry::create("FullAttn(Eager)")->dataflow(),
              DataflowKind::PrefetchFullKV);
    EXPECT_EQ(SystemRegistry::create("Quest")->dataflow(),
              DataflowKind::FetchSparseKV);
    EXPECT_EQ(SystemRegistry::create("ShadowKV")->dataflow(),
              DataflowKind::PrefetchSparseV);
    EXPECT_EQ(SystemRegistry::create("SpeContext")->dataflow(),
              DataflowKind::SpeContextElastic);
    EXPECT_EQ(SystemRegistry::create("H2O")->dataflow(),
              DataflowKind::ResidentKV);
}

TEST(SystemModel, TokenDataflowSchedulesOnTwoStreams)
{
    TimingConfig cfg = cloudShape(1, 2048, 2048);
    cfg.hw.gpu_mem_bytes = 24LL << 30; // force SpeContext offloading
    cfg.system = SystemRegistry::create("SpeContext");
    const auto ours = cfg.system->tokenDataflow(cfg, 32768);
    EXPECT_GT(ours.copy_busy, 0.0); // elastic diffs on the copy stream

    cfg.system = SystemRegistry::create("Quest");
    const auto quest = cfg.system->tokenDataflow(cfg, 32768);
    cfg.system = SystemRegistry::create("StreamingLLM");
    const auto stream = cfg.system->tokenDataflow(cfg, 32768);
    EXPECT_DOUBLE_EQ(stream.copy_busy, 0.0); // resident KV: no copies
    // No per-layer retrieve-fetch-sync serialization either.
    EXPECT_LT(stream.token_seconds, quest.token_seconds);
}

// ---------------------------------------------------- memory footprint

TEST(SystemModel, FootprintsOrderAsExpected)
{
    // Prompt-dominated shape: ShadowKV's 8x prompt-K quantization is
    // what separates it from full residency (retained generated KV is
    // kept in full by both).
    TimingConfig cfg = cloudShape(4, 16384, 2048);
    const int64_t s = cfg.prompt_len + cfg.gen_len;

    cfg.system = SystemRegistry::create("FullAttn(FlashInfer)");
    const int64_t full = cfg.system->hbmFootprintBytes(cfg, 4, s);
    cfg.system = SystemRegistry::create("StreamingLLM");
    const int64_t evict = cfg.system->hbmFootprintBytes(cfg, 4, s);
    cfg.system = SystemRegistry::create("ShadowKV");
    const int64_t shadow = cfg.system->hbmFootprintBytes(cfg, 4, s);

    // Bounded eviction < quantized-K ShadowKV < fully resident.
    EXPECT_LT(evict, shadow);
    EXPECT_LT(shadow, full);
    EXPECT_EQ(cfg.system->dramFootprintBytes(cfg, 4, s),
              4 * s * TimingEngine::kvBytesPerTokenPerLayer(cfg.llm) *
                  cfg.llm.layers);
}

// ------------------------------------------------- parity (bit-for-bit)

struct GoldenRun
{
    const char *system;
    bool oom;
    double prefill_seconds;
    double decode_seconds;
    double throughput;
    double decode_throughput;
    int64_t final_gpu_layers;
};

/** Captured from the enum-dispatch implementation (seed tree) on the
 *  cloud A800 / DeepSeek-8B config: batch 4 (batch 1 for the
 *  single-request systems), [2k, 2k], budget 2048. */
const GoldenRun kCloudGolden[] = {
    {"FullAttn(Eager)", false, 1.0879448901490267, 33.164035858623514,
     239.16865013108972, 247.01456827878403, 32},
    {"FullAttn(FlashAttn)", false, 0.69251613290690894,
     20.985806855142513, 377.88900942734324, 390.35906775214477, 32},
    {"FullAttn(FlashInfer)", false, 0.63484943914243341,
     18.757917695497788, 422.42553335088968, 436.72224886487351, 32},
    {"Quest", false, 0.17351628171972047, 19.912263818690562,
     101.96268154694009, 102.85118852622139, 32},
    {"ClusterKV", false, 0.17411619429184169, 19.912263818690562,
     101.95963626478833, 102.85118852622139, 32},
    {"ShadowKV", false, 0.71490326871371546, 39.363673526778598,
     204.39847556965557, 208.11065802654542, 32},
    {"SpeContext", false, 0.63668489525183514, 18.178711706306114,
     435.38811184674614, 450.63699410328576, 32},
};

/** Same capture on the edge 4060 (4 GB) / Reasoning-1B config with
 *  full-attention offload enabled: batch 1, [2k, 8k]. */
const GoldenRun kEdgeGolden[] = {
    {"FullAttn(Eager)", false, 0.55537877083532472, 147.50401058133278,
     55.329148903315001, 55.537472965746808, 16},
    {"SpeContext", false, 0.3264532953721212, 87.7156133998933,
     93.046430047518811, 93.392723170650086, 16},
};

TEST(SystemParity, CloudSimulateMatchesLegacyEnumPathBitForBit)
{
    TimingEngine e;
    for (const GoldenRun &g : kCloudGolden) {
        const bool single = std::string(g.system) == "Quest" ||
                            std::string(g.system) == "ClusterKV";
        TimingConfig cfg = cloudShape(single ? 1 : 4, 2048, 2048);
        cfg.system = SystemRegistry::create(g.system);
        const auto r = e.simulate(cfg);
        ASSERT_EQ(r.oom, g.oom) << g.system;
        EXPECT_EQ(r.prefill_seconds, g.prefill_seconds) << g.system;
        EXPECT_EQ(r.decode_seconds, g.decode_seconds) << g.system;
        EXPECT_EQ(r.throughput, g.throughput) << g.system;
        EXPECT_EQ(r.decode_throughput, g.decode_throughput) << g.system;
        EXPECT_EQ(r.final_gpu_layers, g.final_gpu_layers) << g.system;
    }
}

TEST(SystemParity, EdgeSimulateMatchesLegacyEnumPathBitForBit)
{
    TimingEngine e;
    for (const GoldenRun &g : kEdgeGolden) {
        SystemOptions o;
        o.allow_full_attention_offload = true;
        TimingConfig cfg;
        cfg.llm = model::reasoningLlama32_1bGeometry();
        cfg.hw = sim::HardwareSpec::edge4060Capped4G();
        cfg.system = SystemRegistry::create(g.system, o);
        cfg.batch = 1;
        cfg.prompt_len = 2048;
        cfg.gen_len = 8192;
        const auto r = e.simulate(cfg);
        ASSERT_EQ(r.oom, g.oom) << g.system;
        EXPECT_EQ(r.prefill_seconds, g.prefill_seconds) << g.system;
        EXPECT_EQ(r.decode_seconds, g.decode_seconds) << g.system;
        EXPECT_EQ(r.throughput, g.throughput) << g.system;
        EXPECT_EQ(r.decode_throughput, g.decode_throughput) << g.system;
        EXPECT_EQ(r.final_gpu_layers, g.final_gpu_layers) << g.system;
    }
}

TEST(SystemParity, SteppingHooksMatchLegacyEnumPathBitForBit)
{
    // requestPrefillSeconds(4096 joining 3 requests / 30000 resident
    // KV tokens) and decodeIterationSeconds({2048, 8192, 32768}),
    // captured from the enum implementation.
    struct StepGolden
    {
        const char *system;
        double prefill;
        double decode_iter;
    };
    const StepGolden golden[] = {
        {"FullAttn(FlashInfer)", 0.32942915307648818,
         0.011625046756253065},
        {"SpeContext", 0.33034688113118904, 0.0087128732009184983},
    };
    TimingEngine e;
    for (const StepGolden &g : golden) {
        TimingConfig cfg = cloudShape(1, 2048, 2048);
        cfg.system = SystemRegistry::create(g.system);
        EXPECT_EQ(e.requestPrefillSeconds(cfg, 4096, 3, 30000),
                  g.prefill)
            << g.system;
        EXPECT_EQ(e.decodeIterationSeconds(cfg, {2048, 8192, 32768}),
                  g.decode_iter)
            << g.system;
    }
}

TEST(SystemParity, RepeatedCreateIsDeterministic)
{
    // Two independently created instances of the same system must
    // price identically — no hidden per-instance state.
    TimingEngine e;
    for (const char *name : kLegacyNames) {
        const bool single = std::string(name) == "Quest" ||
                            std::string(name) == "ClusterKV";
        TimingConfig first = cloudShape(single ? 1 : 4, 2048, 2048);
        first.system = SystemRegistry::create(name);
        TimingConfig second = first;
        second.system = SystemRegistry::create(name);
        const auto a = e.simulate(first);
        const auto b = e.simulate(second);
        EXPECT_EQ(a.oom, b.oom);
        EXPECT_EQ(a.prefill_seconds, b.prefill_seconds);
        EXPECT_EQ(a.decode_seconds, b.decode_seconds);
        EXPECT_EQ(a.throughput, b.throughput);
    }
}

// ------------------------------------------------------- plugin story

class TestOnlySystem final : public core::SystemModel
{
  public:
    using SystemModel::SystemModel;
    const char *name() const override { return "TestOnly"; }
    sim::KernelBackend backend() const override
    {
        return sim::KernelBackend::Eager;
    }
    core::DataflowKind dataflow() const override
    {
        return core::DataflowKind::ResidentKV;
    }
    core::TimingResult simulate(const TimingConfig &) const override
    {
        core::TimingResult r;
        r.throughput = 1.0;
        return r;
    }
};

TEST(SystemRegistry, PluginRegistrationIsFirstClass)
{
    // The registry is process-global with no unregister path, so under
    // --gtest_repeat the factory is already there — that's fine.
    if (!SystemRegistry::contains("TestOnly")) {
        SystemRegistry::registerSystem(
            "TestOnly", [](const SystemOptions &o) {
                return std::make_shared<TestOnlySystem>(o);
            });
    }
    EXPECT_TRUE(SystemRegistry::contains("TestOnly"));
    const auto names = SystemRegistry::names();
    EXPECT_NE(std::find(names.begin(), names.end(), "TestOnly"),
              names.end());
    TimingConfig cfg = cloudShape(1, 16, 16);
    cfg.system = SystemRegistry::create("TestOnly");
    EXPECT_EQ(core::TimingEngine().simulate(cfg).throughput, 1.0);
    // Wave-only default: the base class rejects stepping and admission.
    EXPECT_FALSE(cfg.system->supportsContinuousBatching());
    EXPECT_THROW(core::TimingEngine().decodeIterationSeconds(cfg, {16}),
                 std::invalid_argument);
    EXPECT_FALSE(cfg.system->admit(cfg, {}, 16, 32).admit);
}

// --------------------------------------------------- geometry presets

TEST(GeometryPresets, TableIsTheSingleSource)
{
    const auto names = model::geometryPresetNames();
    ASSERT_EQ(names.size(), 4u);
    for (const auto &name : names)
        EXPECT_EQ(model::geometryPreset(name).name, name);
    EXPECT_THROW(model::geometryPreset("GPT-5"), std::invalid_argument);
}

} // namespace
} // namespace specontext
