/**
 * @file
 * Long-context *input* scenario (the paper's LongBench setting): a
 * fact is buried in a long document and the model must answer a
 * question about it. Compares SpeContext's retrieval head against the
 * layer-wise baselines at several KV budgets.
 */
#include <cstdio>

#include "core/live_engine.h"
#include "model/distiller.h"
#include "retrieval/cluster_kv.h"
#include "retrieval/quest.h"
#include "retrieval/shadow_kv.h"
#include "retrieval/streaming_llm.h"
#include "retrieval/retrieval_head.h"
#include "workload/tasks.h"

using namespace specontext;

int
main()
{
    const auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    const auto llm = model::Transformer::randomInit(cfg, 42);
    const auto dlm = model::distill(llm);
    core::LiveEngine engine(llm);

    workload::TaskGenerator gen(cfg.vocab, 2026);
    auto task = gen.triviaQa(320);
    task.answer_steps = 16;
    std::printf("Task: %s — %zu-token document, fact at positions "
                "%ld..%ld\n\n",
                task.name.c_str(), task.prompt.size(),
                task.needle_positions.front(),
                task.needle_positions.back());

    const auto ref = workload::taskReference(engine, task);

    std::printf("%-14s %8s %10s %12s %8s\n", "method", "budget",
                "agreement", "needle-rec", "score");
    for (int64_t budget : {32, 64, 128}) {
        {
            retrieval::StreamingLLMRetriever r(budget, 4);
            auto s = workload::scoreTask(
                task, engine.runWithRetriever(ref, r));
            std::printf("%-14s %8ld %10.3f %12.3f %8.1f\n",
                        "StreamingLLM", budget, s.answer_agreement,
                        s.needle_recall, s.score);
        }
        {
            retrieval::QuestRetriever r(budget, 16);
            auto s = workload::scoreTask(
                task, engine.runWithRetriever(ref, r));
            std::printf("%-14s %8ld %10.3f %12.3f %8.1f\n", "Quest",
                        budget, s.answer_agreement, s.needle_recall,
                        s.score);
        }
        {
            retrieval::ClusterKVRetriever r(budget, 16, 4);
            auto s = workload::scoreTask(
                task, engine.runWithRetriever(ref, r));
            std::printf("%-14s %8ld %10.3f %12.3f %8.1f\n", "ClusterKV",
                        budget, s.answer_agreement, s.needle_recall,
                        s.score);
        }
        {
            retrieval::ShadowKVRetriever r(budget);
            auto s = workload::scoreTask(
                task, engine.runWithRetriever(ref, r));
            std::printf("%-14s %8ld %10.3f %12.3f %8.1f\n", "ShadowKV",
                        budget, s.answer_agreement, s.needle_recall,
                        s.score);
        }
        {
            retrieval::RetrievalHead head(dlm, {budget});
            auto s = workload::scoreTask(
                task, engine.runWithSpeContext(ref, head));
            std::printf("%-14s %8ld %10.3f %12.3f %8.1f\n\n",
                        "SpeContext", budget, s.answer_agreement,
                        s.needle_recall, s.score);
        }
    }
    std::printf("(full attention scores 100.0 by definition)\n");
    return 0;
}
