/**
 * @file
 * Prefix cache + affinity routing walkthrough: multi-tenant traffic
 * where thousands of requests share a handful of system prompts is
 * the regime production fleets live in — and exactly where full
 * per-request prefill is pure waste. This example builds a
 * shared-prefix trace (K Zipf-popular prompt families), shows what a
 * per-replica kv::PrefixTree is worth on one replica, then shows why
 * the *router* must be cache-aware on a fleet: oblivious policies
 * scatter each family over every replica, prefix-affinity gives each
 * family one sticky warm home. bench_prefix_sharing.cc sweeps this
 * exhaustively.
 */
#include <cstdio>

#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

serving::ReplicaConfig
cloudReplica(int64_t cache_budget_bytes)
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    rc.timing.system = core::SystemRegistry::create("SpeContext");
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = cache_budget_bytes; // 0 = disabled
    rc.prefix_cache.page_size = 16;
    return rc;
}

void
printRow(const char *label, const serving::ClusterResult &r)
{
    const auto s = r.summary();
    const auto &p = r.fleet.prefix;
    std::printf("%-22s %8.3f %12ld %9.2f %9.2f %9.2f %6ld\n", label,
                p.hitRate(), p.hit_tokens, s.ttft_mean, s.ttft_p99,
                s.e2e_p99, s.completed);
}

} // namespace

int
main()
{
    core::TimingEngine engine;

    // 16 prompt families (4096-token shared system prompts), Zipf
    // popularity, unique per-request suffixes — 192 requests at
    // 4 req/s offered to a 4x A800 fleet.
    workload::SharedPrefixTraceConfig pc;
    pc.base.num_requests = 192;
    pc.base.arrival_rate_per_s = 4.0;
    pc.base.seed = 7;
    pc.num_families = 16;
    pc.prefix_len = 4096;
    pc.suffix_lo = 64;
    pc.suffix_hi = 256;
    pc.gen_lo = 32;
    pc.gen_hi = 128;
    const auto trace = workload::sharedPrefixTrace(pc);
    std::printf("Shared-prefix trace: %zu requests, %ld families, "
                "%ld-token shared prefixes\n\n",
                trace.size(), pc.num_families, pc.prefix_len);

    // Step 1: what the cache alone is worth. One replica, same trace,
    // budget off vs on (2 GiB ~= 4 cached family prefixes at
    // 128 KiB/token x 4096 tokens).
    std::printf("1. One A800 replica, prefix cache off vs on:\n");
    std::printf("%-22s %8s %12s %9s %9s %9s %6s\n", "replica",
                "hit_rate", "saved_tok", "ttft_avg", "ttft_p99",
                "e2e_p99", "done");
    for (int64_t budget : {0LL, 2LL << 30}) {
        serving::ClusterConfig cc;
        cc.replicas = {cloudReplica(budget)};
        const auto r = serving::Cluster(engine, cc).run(trace);
        printRow(budget ? "cache 2 GiB" : "cache off", r);
    }
    std::printf("\nMatched prefixes skip prefill entirely: the cache "
                "turns most 4K-token prefills into\n~200-token suffix "
                "prefills, which is where the TTFT drop comes from.\n\n");

    // Step 2: the router matters. Same per-replica cache, three
    // placement policies.
    std::printf("2. 4x A800 fleet, 2 GiB cache per replica, router "
                "policy:\n");
    std::printf("%-22s %8s %12s %9s %9s %9s %6s\n", "policy",
                "hit_rate", "saved_tok", "ttft_avg", "ttft_p99",
                "e2e_p99", "done");
    for (auto policy : {serving::RouterPolicy::RoundRobin,
                        serving::RouterPolicy::JoinShortestQueue,
                        serving::RouterPolicy::PrefixAffinity}) {
        serving::ClusterConfig cc;
        cc.replicas = {cloudReplica(2LL << 30), cloudReplica(2LL << 30),
                       cloudReplica(2LL << 30), cloudReplica(2LL << 30)};
        cc.router.policy = policy;
        const auto r = serving::Cluster(engine, cc).run(trace);
        printRow(serving::routerPolicyName(policy), r);
    }
    std::printf(
        "\nOblivious policies pay every family's cold prefill on every "
        "replica and thrash the\n2 GiB budget across 16 families. "
        "Prefix-affinity hashes cold families to a sticky\nhome, "
        "follows the warmest cache afterwards, and spills to "
        "least-kv-load only when\nthe home replica is overloaded — "
        "fleet-wide hit rate, mean and tail TTFT all win.\n");
    return 0;
}
