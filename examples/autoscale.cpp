/**
 * @file
 * Autoscaling walkthrough on a flash crowd: a steady 0.8 req/s stream
 * spikes 6x for 60 seconds, and an SLO-driven autoscale::Controller
 * rides it out with an elastic fleet (min 1 / max 4 A800 replicas)
 * while a static single replica drowns.
 *
 * Everything the controller knew is replayed from the observability
 * layer it steered by: the decision log (the Signals digested from
 * obs::CounterRegistry gauges and counter deltas at each control
 * tick) and the fleet transitions it caused, interleaved in simulated
 * time. bench/bench_autoscale.cc scores the same machinery on
 * cost-normalized goodput across policies and traces.
 */
#include <algorithm>
#include <cstdio>

#include "autoscale/controller.h"
#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

serving::ReplicaConfig
cloudReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.budget = 2048;
    rc.timing.system = core::SystemRegistry::create("SpeContext", opts);
    rc.max_batch = 8; // overload should queue, not hide in one batch
    return rc;
}

void
printSummary(const char *label, const serving::ClusterResult &r,
             double slo_ttft)
{
    const auto s = r.summary();
    int64_t good = 0, total = 0;
    for (const auto &rec : r.fleet.metrics.records()) {
        total += rec.gen_len;
        if (rec.ttft() <= slo_ttft)
            good += rec.gen_len;
    }
    std::printf("%-16s ttft_p99 %6.1fs  goodput %6ld/%6ld tok  "
                "replica-s %6.0f  good/replica-s %6.1f\n",
                label, s.ttft_p99, good, total, r.replica_seconds,
                r.replica_seconds > 0.0
                    ? static_cast<double>(good) / r.replica_seconds
                    : 0.0);
}

} // namespace

int
main()
{
    core::TimingEngine engine;

    workload::FlashCrowdTraceConfig fc;
    fc.base.num_requests = 480; // runs ~120s past the burst window
    fc.base.arrival_rate_per_s = 0.8;
    fc.base.seed = 23;
    fc.burst_start_seconds = 120.0;
    fc.burst_duration_seconds = 60.0;
    fc.burst_multiplier = 6.0;
    const auto trace = workload::flashCrowdTrace(fc);

    autoscale::SloConfig slo;
    slo.ttft_p99_target_seconds = 25.0;
    slo.queue_depth_high = 4.0;
    slo.queue_depth_low = 0.5;

    const double warmup =
        serving::replicaWarmupSeconds(cloudReplica(), 10.0);
    std::printf("Flash crowd: %.1f req/s baseline, %.0fx burst over "
                "[%.0f, %.0f)s; SLO p99 TTFT <= %.0fs.\n",
                fc.base.arrival_rate_per_s, fc.burst_multiplier,
                fc.burst_start_seconds,
                fc.burst_start_seconds + fc.burst_duration_seconds,
                slo.ttft_p99_target_seconds);
    std::printf("A cold replica costs %.1fs to bring live (10s "
                "provisioning + weight load over PCIe).\n\n",
                warmup);

    // Baseline: one replica, no control plane.
    serving::ClusterConfig fixed;
    fixed.replicas = {cloudReplica()};
    const auto base = serving::Cluster(engine, fixed).run(trace);

    // Elastic: predictive policy over the obs:: layer.
    obs::CounterRegistry counters;
    obs::TimeseriesSamplerConfig sc;
    sc.interval_seconds = 5.0;
    obs::TimeseriesSampler sampler(&counters, sc);

    autoscale::PredictivePolicyConfig pc;
    pc.lookahead_seconds = 30.0;
    pc.consecutive_low_ticks = 12;
    autoscale::PredictivePolicy policy(pc);

    autoscale::ControllerConfig ctl;
    ctl.slo = slo;
    ctl.policy = &policy;
    ctl.counters = &counters;
    ctl.sampler = &sampler;
    autoscale::Controller controller(ctl);

    serving::ClusterConfig elastic;
    elastic.replicas = {cloudReplica()};
    elastic.obs.counters = &counters;
    elastic.obs.sampler = &sampler;
    elastic.elastic.controller = &controller;
    elastic.elastic.min_replicas = 1;
    elastic.elastic.max_replicas = 4;
    elastic.elastic.control_period_seconds = 5.0;
    elastic.elastic.provision_seconds = 10.0;
    const auto r = serving::Cluster(engine, elastic).run(trace);

    // Replay the control loop from what the obs layer recorded: every
    // decision that moved the fleet (plus the signals it was made on),
    // interleaved with the transitions it caused.
    std::printf("Decision log (ticks that moved the fleet) and fleet "
                "transitions:\n");
    std::printf("%8s %-14s %6s %8s %8s %8s %6s\n", "t", "event",
                "queued", "arr/s", "trend/s", "wait_s", "fleet");
    size_t di = 0, si = 0;
    const auto &decisions = controller.decisions();
    const auto &events = r.scale_events;
    while (di < decisions.size() || si < events.size()) {
        const bool take_decision =
            si >= events.size() ||
            (di < decisions.size() &&
             decisions[di].t_seconds <= events[si].t_seconds);
        if (take_decision) {
            const auto &d = decisions[di++];
            // Holds are logged too, and the cluster clamps deltas to
            // [min, max]; print only the decisions that moved the
            // fleet.
            const long cap = static_cast<long>(d.signals.live +
                                               d.signals.warming);
            const long want = std::clamp(
                cap + d.delta,
                static_cast<long>(d.signals.min_replicas),
                static_cast<long>(d.signals.max_replicas));
            if (want == cap)
                continue;
            char verb[16];
            std::snprintf(verb, sizeof(verb), "%s%ld",
                          want > cap ? "order +" : "give back ",
                          want - cap);
            std::printf(
                "%8.1f %-14s %6ld %8.2f %8.2f %8.1f %4zu+%zu\n",
                d.t_seconds, verb,
                static_cast<long>(d.signals.queued),
                d.signals.arrival_rate_per_s,
                d.signals.queue_trend_per_s,
                d.signals.est_wait_seconds, d.signals.live,
                d.signals.warming);
        } else {
            const auto &e = events[si++];
            std::printf("%8.1f %-14s %40s-> %zu live\n", e.t_seconds,
                        serving::scaleActionName(e.action), "",
                        e.live_after);
        }
    }

    std::printf("\nOutcome (goodput = tokens of requests whose TTFT "
                "met the SLO):\n");
    printSummary("static-1", base, slo.ttft_p99_target_seconds);
    printSummary("elastic 1..4", r, slo.ttft_p99_target_seconds);
    std::printf(
        "\nThe burst hits at t=%.0fs; the controller reads the spike "
        "off the queue gauges\nand the sampler trend, orders three "
        "replicas in one decision, and gives them\nback once the "
        "crowd passes. The earliest burst arrivals still eat the "
        "warmup\nlag — flash crowds punish slow scale-up — but the "
        "fleet converts most of the\nburst into SLO-met tokens where "
        "the static replica converts almost none of it.\n",
        fc.burst_start_seconds);
    return 0;
}
