/**
 * @file
 * Quickstart: build a synthetic LLM, distill its retrieval head,
 * generate with speculative context sparsity, then price the same
 * pipeline at paper scale through the pluggable SystemRegistry.
 *
 * This walks the full SpeContext pipeline of Fig. 3 on a laptop-scale
 * model: prompt -> retrieval head selects important KV per head ->
 * the LLM attends only the selected budget in every layer.
 */
#include <cstdio>

#include "core/live_engine.h"
#include "core/timing_engine.h"
#include "model/distiller.h"
#include "model/tokenizer.h"
#include "retrieval/retrieval_head.h"

using namespace specontext;

int
main()
{
    // 1. A small GQA transformer stands in for the LLM.
    const model::ModelConfig cfg =
        model::tinyConfig(model::AttentionKind::GQA);
    const model::Transformer llm =
        model::Transformer::randomInit(cfg, /*seed=*/42);
    std::printf("LLM: %s, %ld layers, %ld/%ld heads, %ld params\n",
                cfg.name.c_str(), cfg.layers, cfg.q_heads, cfg.kv_heads,
                cfg.parameterCount());

    // 2. Construct the distilled draft model and prune it into the
    //    lightweight retrieval head (embedding + QK only).
    const model::Transformer dlm = model::distill(llm);
    retrieval::RetrievalHead head(
        dlm, {/*budget=*/48, retrieval::RetrievalLevel::HeadLevel, 0});
    std::printf("Retrieval head: %ld params (full DLM: %ld, "
                "%.1f%% pruned away)\n",
                head.prunedParameterCount(), head.dlmParameterCount(),
                100.0 * (1.0 - double(head.prunedParameterCount()) /
                                   double(head.dlmParameterCount())));

    // 3. Encode a prompt with the toy tokenizer plus synthetic
    //    long-context filler.
    model::ToyTokenizer tok(cfg.vocab);
    std::vector<int32_t> prompt =
        tok.encode("what is the largest ocean on earth");
    Rng rng(7);
    for (int i = 0; i < 180; ++i)
        prompt.push_back(
            static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));
    prompt.push_back(tok.wordId("ocean"));

    // 4. Generate with full attention and with SpeContext; compare.
    core::LiveEngine engine(llm);
    const auto ref = engine.buildReference(prompt, 24);
    auto run = engine.runWithSpeContext(ref, head);

    std::printf("\nGenerated %zu tokens with budget %ld of %zu context\n",
                run.tokens.size(), head.options().budget,
                prompt.size());
    std::printf("top-1 agreement with full attention: %.3f\n",
                run.top1_agreement);
    std::printf("mean KL divergence:                  %.4f\n",
                run.mean_kl);
    std::printf("elastic loading moved %ld of %ld budget-tokens "
                "(%.0f%% saved)\n",
                run.tokens_loaded, run.tokens_full_budget,
                100.0 * (1.0 - double(run.tokens_loaded) /
                                   double(run.tokens_full_budget)));

    // 5. The same systems at paper scale, through the public registry
    //    API: create a SystemModel by name, put it in a TimingConfig,
    //    and simulate. Every registered system — including plugins —
    //    is addressable this way.
    std::printf("\nRegistered systems:");
    for (const auto &name : core::SystemRegistry::names())
        std::printf(" %s", name.c_str());
    std::printf("\n\nSimulated A800 throughput (Llama3.1-8B geometry, "
                "batch 4, [2k in, 16k out]):\n");
    core::TimingEngine sim_engine;
    core::SystemOptions opts;
    opts.budget = 2048;
    for (const char *name :
         {"FullAttn(FlashInfer)", "SpeContext", "H2O", "StreamingLLM"}) {
        core::TimingConfig tc;
        tc.llm = model::geometryPreset("Llama3.1-8B");
        tc.hw = sim::HardwareSpec::cloudA800();
        tc.system = core::SystemRegistry::create(name, opts);
        tc.batch = 4;
        tc.prompt_len = 2048;
        tc.gen_len = 16384;
        const auto r = sim_engine.simulate(tc);
        std::printf("  %-22s %10.1f tok/s  (backend %d, HBM %.1f GiB "
                    "at final length)\n",
                    name, r.oom ? 0.0 : r.throughput,
                    static_cast<int>(tc.system->backend()),
                    tc.system->hbmFootprintBytes(
                        tc, tc.batch, tc.prompt_len + tc.gen_len) /
                        double(1LL << 30));
    }
    return 0;
}
