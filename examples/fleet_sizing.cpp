/**
 * @file
 * Fleet-sizing walkthrough on the cluster layer: how many replicas of
 * which hardware does a given open-loop load need to hold a p99 TTFT
 * SLO? Grows an A800 fleet until the target holds, then shows what the
 * router policy is worth on a heterogeneous A800 + RTX 4060 fleet —
 * the capacity question bench_cluster_scaling.cc sweeps exhaustively.
 */
#include <cstdio>

#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

serving::ReplicaConfig
cloudReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.budget = 2048;
    rc.timing.system = core::SystemRegistry::create("SpeContext", opts);
    rc.max_batch = 64;
    return rc;
}

serving::ReplicaConfig
edgeReplica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::reasoningLlama32_1bGeometry();
    rc.timing.hw = sim::HardwareSpec::edge4060();
    rc.timing.system = core::SystemRegistry::create("SpeContext");
    rc.max_batch = 16;
    return rc;
}

} // namespace

int
main()
{
    core::TimingEngine engine;

    workload::TraceConfig tc;
    tc.num_requests = 96;
    tc.arrival_rate_per_s = 1.0; // the offered load to be sized for
    tc.seed = 7;
    const auto trace = workload::mixedLengthTrace(tc);
    const double slo_p99_ttft = 10.0; // seconds

    std::printf("Sizing an A800 fleet for %.1f req/s mixed-length "
                "Poisson traffic, p99 TTFT <= %.0fs\n\n",
                tc.arrival_rate_per_s, slo_p99_ttft);
    std::printf("%-9s %-20s %10s %10s %10s\n", "replicas", "policy",
                "tok/s", "ttft_p99", "SLO");
    int64_t sized = -1;
    for (int64_t n = 1; n <= 8; ++n) {
        serving::ClusterConfig cc;
        for (int64_t i = 0; i < n; ++i)
            cc.replicas.push_back(cloudReplica());
        cc.router.policy = serving::RouterPolicy::JoinShortestQueue;
        const auto r = serving::Cluster(engine, cc).run(trace);
        const auto s = r.summary();
        const bool ok = s.ttft_p99 <= slo_p99_ttft;
        std::printf("%-9ld %-20s %10.1f %10.2f %10s\n", n,
                    serving::routerPolicyName(cc.router.policy),
                    s.throughput_tokens_per_s, s.ttft_p99,
                    ok ? "holds" : "violated");
        if (ok) {
            sized = n;
            break;
        }
    }
    if (sized > 0)
        std::printf("\n=> %ld x A800 hold the SLO at this load.\n\n",
                    sized);
    else
        std::printf("\n=> even 8 replicas cannot hold the SLO; raise "
                    "the fleet or shed load.\n\n");

    std::printf("Router policy on a heterogeneous fleet "
                "(2 x A800 8B + 2 x RTX 4060 1B):\n");
    std::printf("%-20s %10s %10s %10s %6s\n", "policy", "tok/s",
                "ttft_p99", "e2e_p99", "done");
    for (auto policy : {serving::RouterPolicy::RoundRobin,
                        serving::RouterPolicy::JoinShortestQueue,
                        serving::RouterPolicy::LeastKvLoad,
                        serving::RouterPolicy::TwoTier}) {
        serving::ClusterConfig cc;
        cc.replicas = {cloudReplica(), cloudReplica(), edgeReplica(),
                       edgeReplica()};
        cc.router.policy = policy;
        const auto r = serving::Cluster(engine, cc).run(trace);
        const auto s = r.summary();
        std::printf("%-20s %10.1f %10.2f %10.2f %6ld\n",
                    serving::routerPolicyName(policy),
                    s.throughput_tokens_per_s, s.ttft_p99, s.e2e_p99,
                    s.completed);
    }
    std::printf("\nLoad-oblivious round-robin keeps handing long "
                "prompts to the slow edge prefill;\nleast-kv-load and "
                "two-tier steer them to the big-HBM replicas and win "
                "the tail.\n");
    return 0;
}
