/**
 * @file
 * Phase attribution walkthrough: answering "where did p99 latency go?"
 * from the flight recorder alone.
 *
 * The obs::Trace ring records every lifecycle event of a run; the
 * analysis engine (obs/analysis.h) replays it into per-request
 * timelines whose six phases — router gap, queue wait, prefill,
 * preempt stall, restore recompute, decode residual — sum *bitwise*
 * to the request's end-to-end latency. Blame tables then roll the
 * timelines up by percentile: the dominant phase of the nearest-rank
 * p50/p99 request, split by preemption count and prefix-hit bucket.
 * In parallel, the regime classifier (obs/regime.h) labels each
 * sampler window with the resource that bound the fleet during it.
 *
 * This example overloads one 2-replica Optimistic fleet with a
 * multi-turn burst (the preemption-heavy shape), then prints one
 * preempted request's full phase breakdown with the identity check,
 * the E2E and TTFT blame tables, and the run's regime occupancy —
 * the same machinery bench_characterize.cc fingerprints the whole
 * workload suite with.
 */
#include <cstdio>

#include "obs/analysis.h"
#include "obs/obs.h"
#include "obs/regime.h"
#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

serving::ReplicaConfig
replica()
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.prefix_reload_gbps = 200.0;
    rc.timing.system =
        core::SystemRegistry::create("FullAttn(FlashAttn)", opts);
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = 8LL << 30;
    rc.scheduler_mode = serving::SchedulerMode::Optimistic;
    rc.victim_policy = serving::VictimPolicy::LastAdmitted;
    return rc;
}

void
printBlame(const obs::BlameTable &table)
{
    std::printf("\n%s blame (nearest-rank percentiles):\n",
                obs::blameMetricName(table.metric));
    std::printf("  %-12s %6s %10s %10s  %-16s %-16s\n", "bucket", "n",
                "p50_s", "p99_s", "dominant@p50", "dominant@p99");
    for (const obs::BlameRow &row : table.rows)
        std::printf("  %-12s %6zu %10.2f %10.2f  %-16s %-16s\n",
                    row.bucket.c_str(), row.count, row.p50_seconds,
                    row.p99_seconds, obs::phaseName(row.dominant_p50),
                    obs::phaseName(row.dominant_p99));
}

} // namespace

int
main()
{
    core::TimingEngine engine;

    // The bench_preemption overload point: sessions burst in faster
    // than the fleet retires them, so every phase — queueing, prefill,
    // preempt stall, restore recompute — shows up in the breakdowns.
    workload::MultiTurnTraceConfig mt;
    mt.base.num_requests = 12;
    mt.base.arrival_rate_per_s = 0.8;
    mt.base.seed = 11;
    mt.turns = 4;
    mt.first_prompt_lo = 2048;
    mt.first_prompt_hi = 8192;
    mt.gen_lo = 4096;
    mt.gen_hi = 16384;
    mt.think_time_mean_s = 15.0;
    const auto trace = workload::multiTurnTrace(mt);

    obs::Trace ring({1 << 18});
    obs::CounterRegistry counters;
    obs::TimeseriesSampler sampler(&counters, {10.0, 1 << 14});
    serving::ClusterConfig cc;
    cc.replicas = {replica(), replica()};
    cc.router.policy = serving::RouterPolicy::LeastKvLoad;
    cc.obs = {&ring, &counters, &sampler};
    const auto result = serving::Cluster(engine, cc).run(trace);

    const obs::TraceAnalysis analysis = obs::analyzeTrace(ring);
    std::printf("2x A800 Optimistic, %zu requests: %ld completed, "
                "%ld preemptions\n%zu complete timelines, %zu "
                "incomplete, ring dropped %llu events\n",
                trace.size(), result.summary().completed,
                result.fleet.preempt.preemptions,
                analysis.complete.size(), analysis.incomplete.size(),
                static_cast<unsigned long long>(
                    analysis.dropped_events));

    // One preempted request's breakdown, with the identity stated the
    // way the analysis guarantees it: bitwise, not approximately.
    for (const obs::RequestTimeline &tl : analysis.complete) {
        if (tl.preemptions == 0)
            continue;
        std::printf("\nrequest %ld (replica %d, %ld preemption(s)):\n",
                    tl.request, tl.replica, tl.preemptions);
        for (size_t p = 0; p < obs::kPhaseCount; ++p)
            std::printf("  %-18s %10.3fs\n",
                        obs::phaseName(static_cast<obs::Phase>(p)),
                        tl.phases.seconds[p]);
        std::printf("  %-18s %10.3fs  (phaseSum == e2e: %s)\n", "e2e",
                    tl.e2eSeconds(),
                    tl.phases.phaseSum() == tl.e2eSeconds() ? "true"
                                                            : "FALSE");
        break;
    }

    printBlame(obs::blameTable(analysis.complete, obs::BlameMetric::E2E));
    printBlame(
        obs::blameTable(analysis.complete, obs::BlameMetric::TTFT));

    // The fleet-level view of the same run: what bound the fleet,
    // window by window, rolled up into time-weighted occupancy.
    const obs::RegimeTimeline regimes = obs::classifyRegimes(sampler);
    std::printf("\nregime occupancy over %.0fs (%zu windows):\n",
                regimes.total_seconds, regimes.windows.size());
    for (size_t r = 0; r < obs::kRegimeCount; ++r)
        if (regimes.occupancy[r] > 0.0)
            std::printf("  %-16s %6.1f%%\n",
                        obs::regimeName(static_cast<obs::Regime>(r)),
                        100.0 * regimes.occupancy[r]);

    std::printf(
        "\nThe blame tables answer \"where did p99 go\" per request "
        "class; the regime timeline\nanswers \"what bound the fleet "
        "when\". bench_characterize.cc runs both over every\nworkload "
        "generator and fingerprints the suite "
        "(BENCH_characterize.json).\n");
    return 0;
}
