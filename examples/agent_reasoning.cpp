/**
 * @file
 * Long-context *reasoning* scenario (the paper's motivating AI-agent
 * workload, §1): a short instruction triggers a long chain-of-thought
 * generation whose KV cache keeps growing. Shows how SpeContext's
 * global selection covers the newly generated KV (unlike the
 * prompt-preprocessing baselines) and how adaptive memory management
 * progressively offloads layers as the chain grows.
 */
#include <cstdio>

#include "core/live_engine.h"
#include "core/memory_manager.h"
#include "model/distiller.h"
#include "retrieval/retrieval_head.h"
#include "sim/memory_model.h"

using namespace specontext;

int
main()
{
    // --- Live part: selection covers generated tokens ----------------
    const auto cfg = model::tinyConfig(model::AttentionKind::GQA);
    const auto llm = model::Transformer::randomInit(cfg, 42);
    const auto dlm = model::distill(llm);
    core::LiveEngine engine(llm);

    Rng rng(11);
    std::vector<int32_t> instruction;
    for (int i = 0; i < 48; ++i)
        instruction.push_back(
            static_cast<int32_t>(2 + rng.uniformInt(cfg.vocab - 2)));

    const int64_t steps = 96; // long reasoning chain
    const auto ref = engine.buildReference(instruction, steps);
    retrieval::RetrievalHead head(dlm, {32});
    auto run = engine.runWithSpeContext(ref, head);

    int64_t generated_selected = 0, total_selected = 0;
    const auto &last = run.step_selections.back();
    for (const auto &h : last.per_head) {
        for (int64_t p : h) {
            ++total_selected;
            if (p >= static_cast<int64_t>(instruction.size()))
                ++generated_selected;
        }
    }
    std::printf("Reasoning chain of %ld tokens from a %zu-token "
                "instruction\n",
                steps, instruction.size());
    std::printf("final-step selection: %ld of %ld selected positions "
                "(%.0f%%) are *generated* tokens —\n"
                "prompt-preprocessing baselines cannot rank these\n",
                generated_selected, total_selected,
                100.0 * generated_selected / total_selected);
    std::printf("fidelity vs full attention: top-1 %.3f, KL %.4f\n\n",
                run.top1_agreement, run.mean_kl);

    // --- Simulated part: Algorithm 1/2 on the 8B geometry ------------
    sim::MemoryModelInputs in;
    in.llm = model::deepseekDistillLlama8bGeometry();
    in.dlm = model::dlmGeometryFor(in.llm);
    in.requests = 4;
    in.budget = 2048;
    in.gpu_mem_bytes = 80LL << 30;
    sim::MemoryModel mm(in);

    const auto th = mm.thresholds();
    std::printf("Adaptive memory thresholds (A800-80GB, 4 requests, "
                "%s):\n",
                in.llm.name.c_str());
    std::printf("  keep all %ld layers on GPU while S < %ld tokens\n",
                in.llm.layers, th[0]);
    for (int64_t i : {1, 2, 4, 8, 16}) {
        std::printf("  offload %2ld layers once S >= %ld\n", i,
                    th[i - 1]);
    }

    core::AdaptiveMemoryManager mgr(mm, core::OffloadPolicy::Adaptive);
    kv::TierPlacement placement(in.llm.layers);
    for (int64_t s : {4096, 80000, 105000, 120000, 200000}) {
        const auto events = mgr.onSequenceLength(s, placement);
        std::printf("  S=%7ld: %2ld layers on GPU (%zu offloaded this "
                    "step)\n",
                    s, placement.gpuLayers(), events.size());
    }
    return 0;
}
