/**
 * @file
 * Edge deployment walkthrough (§7.3.2): a 1B reasoning model on a
 * 4 GB-capped RTX 4060 Laptop. Shows the simulated throughput of full
 * attention (with complete offloading), ShadowKV, and SpeContext, and
 * the static-policy performance cliff that adaptive memory management
 * removes. Systems come from the SystemRegistry (core/system_model.h).
 */
#include <cstdio>

#include "core/timing_engine.h"
#include "serving/batch_sweep.h"

using namespace specontext;

int
main()
{
    core::TimingEngine engine;
    core::TimingConfig base;
    base.llm = model::geometryPreset("Reasoning-Llama-3.2-1B");
    base.hw = sim::HardwareSpec::edge4060Capped4G();
    base.batch = 1;
    core::SystemOptions opts;
    opts.budget = 2048;
    opts.allow_full_attention_offload = true;

    std::printf("Edge platform: %s, model %s (%.2fB params)\n\n",
                base.hw.name.c_str(), base.llm.name.c_str(),
                base.llm.parameterCount() / 1e9);

    std::printf("%-12s %-22s %12s %10s\n", "workload", "system",
                "tokens/s", "GPU-layers");
    for (const auto &w : serving::paperWorkloads()) {
        for (const char *sys :
             {"FullAttn(Eager)", "FullAttn(FlashAttn)", "ShadowKV",
              "SpeContext"}) {
            auto cfg = base;
            cfg.system = core::SystemRegistry::create(sys, opts);
            cfg.prompt_len = w.prompt_len;
            cfg.gen_len = w.gen_len;
            const auto r = engine.simulate(cfg);
            if (r.oom) {
                std::printf("%-12s %-22s %12s %10s\n", w.label().c_str(),
                            sys, "OOM", "-");
            } else {
                std::printf("%-12s %-22s %12.2f %10ld\n",
                            w.label().c_str(), sys, r.throughput,
                            r.final_gpu_layers);
            }
        }
        std::printf("\n");
    }

    // The Challenge-3 cliff: static all-GPU vs all-CPU vs adaptive as
    // the reasoning chain crosses the capacity boundary.
    std::printf("Static-policy cliff around the capacity boundary "
                "([2k in], growing output):\n");
    std::printf("%-10s %14s %14s\n", "out-len", "static tok/s",
                "adaptive tok/s");
    core::SystemOptions cliff = opts;
    cliff.budget = 8192;        // stress the PCIe path
    cliff.elastic_overlap = 0.3;
    for (int64_t out : {8192, 16384, 24576, 32768}) {
        auto cfg = base;
        cfg.prompt_len = 2048;
        cfg.gen_len = out;
        cliff.features = {true, true, false};
        cfg.system = core::SystemRegistry::create("SpeContext", cliff);
        const double stat = engine.simulate(cfg).throughput;
        cliff.features = {true, true, true};
        cfg.system = core::SystemRegistry::create("SpeContext", cliff);
        const double adp = engine.simulate(cfg).throughput;
        std::printf("%-10ld %14.2f %14.2f\n", out, stat, adp);
    }
    return 0;
}
