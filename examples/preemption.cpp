/**
 * @file
 * Preemptive scheduling walkthrough: why a serving engine should admit
 * on what a request holds *now* instead of what it will have grown to.
 *
 * Reserve mode (the classic discipline) books each request's KV at its
 * final length before admitting it, so a burst of long-generation
 * conversations runs a small in-flight batch: HBM is booked for
 * tokens that will not exist for thousands of iterations, and the
 * queue head-of-line blocks. Optimistic mode admits on the current
 * footprint and lets the serving::Scheduler preempt policy-chosen
 * victims when a decode step would actually oversubscribe the memory
 * model — a preempted request releases its KV and prefix-cache pins,
 * re-queues, and restores later by recomputing its generated suffix
 * through prefill (its prompt usually rides the prefix cache).
 *
 * This example runs the same multi-turn burst through both modes on
 * one replica and prints the trade: Optimistic's far lower TTFT and
 * higher goodput vs the recompute tokens preemption spent — then
 * attaches an obs::Trace to the Optimistic run and replays each
 * preempted request's lifecycle (admit / preempt / restore / complete
 * with simulated timestamps) straight from the event ring, the
 * request-level story behind the aggregate counters.
 * bench_preemption.cc sweeps mode x victim policy x load on a fleet.
 */
#include <cstdio>
#include <set>

#include "obs/obs.h"
#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

serving::ReplicaConfig
replica(serving::SchedulerMode mode)
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.prefix_reload_gbps = 200.0; // cache hits re-load, not free
    rc.timing.system =
        core::SystemRegistry::create("FullAttn(FlashAttn)", opts);
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = 8LL << 30;
    rc.scheduler_mode = mode;
    rc.victim_policy = serving::VictimPolicy::LastAdmitted;
    return rc;
}

void
printRow(const char *label, const serving::ClusterResult &r)
{
    const auto s = r.summary();
    const auto &p = r.fleet.preempt;
    std::printf("%-12s %9.1f %9.2f %10.2f %9ld %9ld %11ld\n", label,
                s.throughput_tokens_per_s, s.ttft_mean, s.ttft_p99,
                s.completed, p.preemptions, p.recompute_tokens);
}

/** Replay every preempted request's lifecycle from the event ring. */
void
printTimelines(const obs::Trace &trace)
{
    const auto events = trace.snapshot();

    // Pass 1: which requests were ever preempted?
    std::set<int64_t> preempted;
    for (const auto &e : events) {
        if (e.type == obs::EventType::Preempt)
            preempted.insert(e.request);
    }
    if (preempted.empty()) {
        std::printf("no request was preempted\n");
        return;
    }

    std::printf("\nPer-request preemption timelines (from the "
                "obs::Trace event ring):\n");
    // Pass 2: one line per lifecycle event, grouped per request in
    // ring order (the ring is time-ordered).
    for (const int64_t req : preempted) {
        std::printf("  request %ld\n", req);
        for (const auto &e : events) {
            if (e.request != req)
                continue;
            switch (e.type) {
              case obs::EventType::Admit:
                std::printf("    %9.2fs  admit     (%ld of %ld prompt "
                            "tokens from prefix cache)\n",
                            e.t_seconds, e.a, e.b);
                break;
              case obs::EventType::Preempt:
                std::printf("    %9.2fs  PREEMPT   (%ld generated "
                            "tokens evicted, preemption #%ld)\n",
                            e.t_seconds, e.a, e.b);
                break;
              case obs::EventType::Restore:
                std::printf("    %9.2fs  restore   (%ld tokens "
                            "recomputed, %ld rode the cache)\n",
                            e.t_seconds, e.a, e.b);
                break;
              case obs::EventType::Complete:
                std::printf("    %9.2fs  complete  (%ld tokens "
                            "generated, %ld preemption(s))\n",
                            e.t_seconds, e.a, e.b);
                break;
              default: break; // queue/prefill/decode noise for this view
            }
        }
    }
}

} // namespace

int
main()
{
    core::TimingEngine engine;

    // A burst of 8 multi-turn conversations: every turn replays the
    // whole history as its prompt and generations run long, so
    // contexts grow mid-stream — the shape that makes final-length
    // booking waste the most HBM.
    workload::MultiTurnTraceConfig mt;
    mt.base.num_requests = 8;
    mt.base.arrival_rate_per_s = 0.2;
    mt.base.seed = 3;
    mt.turns = 4;
    mt.first_prompt_lo = 2048;
    mt.first_prompt_hi = 8192;
    mt.gen_lo = 4096;
    mt.gen_hi = 16384;
    mt.think_time_mean_s = 15.0;
    const auto trace = workload::multiTurnTrace(mt);

    std::printf("one A800 replica, %zu multi-turn requests\n\n",
                trace.size());
    std::printf("%-12s %9s %9s %10s %9s %9s %11s\n", "mode",
                "goodput", "ttft_avg", "ttft_p99", "completed",
                "preempt", "recompute");

    // The Optimistic run carries an event trace; recording never
    // perturbs the simulation, so the table is identical either way.
    obs::Trace ring({1 << 18});
    for (const auto mode : {serving::SchedulerMode::Reserve,
                            serving::SchedulerMode::Optimistic}) {
        serving::ClusterConfig cc;
        cc.replicas = {replica(mode)};
        if (mode == serving::SchedulerMode::Optimistic)
            cc.obs.trace = &ring;
        printRow(serving::schedulerModeName(mode),
                 serving::Cluster(engine, cc).run(trace));
    }

    std::printf(
        "\nOptimistic admits the burst immediately (low TTFT) and "
        "preempts at the KV edge;\nReserve keeps requests queued "
        "until their final-length booking fits. The recompute\n"
        "column is the decode work preemption threw away — the price "
        "of packing tighter.\n");

    printTimelines(ring);
    std::printf(
        "\nEach preempted request releases its KV at PREEMPT, "
        "re-queues, and restores by\nrecomputing its generated suffix "
        "through prefill — the prompt itself usually\nrides the "
        "prefix cache. obs::writeChromeTrace() renders the same ring "
        "as a\nPerfetto-openable timeline (see bench_observability).\n");
    return 0;
}
