/**
 * @file
 * Preemptive scheduling walkthrough: why a serving engine should admit
 * on what a request holds *now* instead of what it will have grown to.
 *
 * Reserve mode (the classic discipline) books each request's KV at its
 * final length before admitting it, so a burst of long-generation
 * conversations runs a small in-flight batch: HBM is booked for
 * tokens that will not exist for thousands of iterations, and the
 * queue head-of-line blocks. Optimistic mode admits on the current
 * footprint and lets the serving::Scheduler preempt policy-chosen
 * victims when a decode step would actually oversubscribe the memory
 * model — a preempted request releases its KV and prefix-cache pins,
 * re-queues, and restores later by recomputing its generated suffix
 * through prefill (its prompt usually rides the prefix cache).
 *
 * This example runs the same multi-turn burst through both modes on
 * one replica and prints the trade: Optimistic's far lower TTFT and
 * higher goodput vs the recompute tokens preemption spent.
 * bench_preemption.cc sweeps mode x victim policy x load on a fleet.
 */
#include <cstdio>

#include "serving/cluster.h"
#include "workload/trace.h"

using namespace specontext;

namespace {

serving::ReplicaConfig
replica(serving::SchedulerMode mode)
{
    serving::ReplicaConfig rc;
    rc.timing.llm = model::deepseekDistillLlama8bGeometry();
    rc.timing.hw = sim::HardwareSpec::cloudA800();
    core::SystemOptions opts;
    opts.prefix_reload_gbps = 200.0; // cache hits re-load, not free
    rc.timing.system =
        core::SystemRegistry::create("FullAttn(FlashAttn)", opts);
    rc.max_batch = 64;
    rc.prefix_cache.budget_bytes = 8LL << 30;
    rc.scheduler_mode = mode;
    rc.victim_policy = serving::VictimPolicy::LastAdmitted;
    return rc;
}

void
printRow(const char *label, const serving::ClusterResult &r)
{
    const auto s = r.summary();
    const auto &p = r.fleet.preempt;
    std::printf("%-12s %9.1f %9.2f %10.2f %9ld %9ld %11ld\n", label,
                s.throughput_tokens_per_s, s.ttft_mean, s.ttft_p99,
                s.completed, p.preemptions, p.recompute_tokens);
}

} // namespace

int
main()
{
    core::TimingEngine engine;

    // A burst of 8 multi-turn conversations: every turn replays the
    // whole history as its prompt and generations run long, so
    // contexts grow mid-stream — the shape that makes final-length
    // booking waste the most HBM.
    workload::MultiTurnTraceConfig mt;
    mt.base.num_requests = 8;
    mt.base.arrival_rate_per_s = 0.2;
    mt.base.seed = 3;
    mt.turns = 4;
    mt.first_prompt_lo = 2048;
    mt.first_prompt_hi = 8192;
    mt.gen_lo = 4096;
    mt.gen_hi = 16384;
    mt.think_time_mean_s = 15.0;
    const auto trace = workload::multiTurnTrace(mt);

    std::printf("one A800 replica, %zu multi-turn requests\n\n",
                trace.size());
    std::printf("%-12s %9s %9s %10s %9s %9s %11s\n", "mode",
                "goodput", "ttft_avg", "ttft_p99", "completed",
                "preempt", "recompute");

    for (const auto mode : {serving::SchedulerMode::Reserve,
                            serving::SchedulerMode::Optimistic}) {
        serving::ClusterConfig cc;
        cc.replicas = {replica(mode)};
        printRow(serving::schedulerModeName(mode),
                 serving::Cluster(engine, cc).run(trace));
    }

    std::printf(
        "\nOptimistic admits the burst immediately (low TTFT) and "
        "preempts at the KV edge;\nReserve keeps requests queued "
        "until their final-length booking fits. The recompute\n"
        "column is the decode work preemption threw away — the price "
        "of packing tighter.\n");
    return 0;
}
