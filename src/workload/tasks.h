/**
 * @file
 * Synthetic long-context QA tasks standing in for the four LongBench
 * tasks of the paper's Fig. 8 (2WikiMQA, TriviaQA, HotpotQA,
 * PassageCount).
 *
 * Construction: a long stream of random distractor tokens with planted
 * "facts" (short token sequences) at known positions, followed by a
 * question that repeats the facts' key tokens. Because the synthetic
 * model's attention behaves as a similarity kernel (see
 * model/weights.h), answering depends on the fact tokens' KV pairs
 * being present — a KV selector that drops them measurably degrades
 * the output. Ground truth (needle positions) is exact by
 * construction, which the real benchmarks cannot offer.
 *
 * Scoring: answer agreement (top-1 vs full attention over the answer
 * window, the quantity KV sparsity can corrupt) blended with needle
 * recall — an F1-analogue on a 0-100 scale where full attention scores
 * 100 by definition.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/live_engine.h"
#include "model/tokenizer.h"
#include "tensor/rng.h"

namespace specontext {
namespace workload {

/** Random token id in [2, vocab) — ids 0/1 stay reserved for
 *  BOS/EOS. The single copy of the workload module's token-id
 *  convention, shared by the task, LongWriter and trace generators. */
inline int32_t
randomTokenId(Rng &rng, int64_t vocab)
{
    return static_cast<int32_t>(
        2 + rng.uniformInt(static_cast<uint64_t>(vocab - 2)));
}

/** One generated QA instance. */
struct QATask
{
    std::string name;
    std::vector<int32_t> prompt;
    std::vector<int64_t> needle_positions; ///< fact token positions
    int64_t answer_steps = 24;             ///< scored generation window
    int64_t expected_count = 0;            ///< PassageCount only
};

/** Deterministic generator of the four task families. */
class TaskGenerator
{
  public:
    TaskGenerator(int64_t vocab, uint64_t seed);

    /** Multi-hop: fact A links to entity E, fact B links E to value. */
    QATask twoWikiMqa(int64_t context_len);

    /** Single planted fact, question repeats its key. */
    QATask triviaQa(int64_t context_len);

    /** Two supporting facts, both keys in the question. */
    QATask hotpotQa(int64_t context_len);

    /** Count repeated marker passages scattered through the context. */
    QATask passageCount(int64_t context_len);

    /** All four at the given length, in paper order. */
    std::vector<QATask> all(int64_t context_len);

  private:
    int64_t vocab_;
    Rng rng_;

    int32_t randomToken();
    std::vector<int32_t> filler(int64_t n);
    /** Insert `fact` at a random position in [lo, hi); returns start. */
    int64_t plant(std::vector<int32_t> &stream,
                  const std::vector<int32_t> &fact, int64_t lo,
                  int64_t hi);
};

/** Combined task score. */
struct TaskScore
{
    double answer_agreement = 0.0; ///< top-1 vs full attention
    double needle_recall = 0.0;    ///< selection coverage of needles
    double mean_kl = 0.0;
    double score = 0.0;            ///< 100*(0.6*agree + 0.4*recall)
};

/** Score a sparse run of a task against its reference. */
TaskScore scoreTask(const QATask &task, const core::LiveGenResult &run);

/** Reference for a task (full attention over the answer window). */
core::Reference taskReference(const core::LiveEngine &engine,
                              const QATask &task);

} // namespace workload
} // namespace specontext
