#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/rng.h"
#include "workload/tasks.h"

namespace specontext {
namespace workload {

void
validateTraceConfig(const TraceConfig &cfg)
{
    if (cfg.num_requests <= 0)
        throw std::invalid_argument("trace: non-positive num_requests");
    if (!(cfg.arrival_rate_per_s > 0.0) ||
        !std::isfinite(cfg.arrival_rate_per_s))
        throw std::invalid_argument(
            "trace: arrival_rate_per_s must be positive and finite");
}

namespace {

/** Exponential inter-arrival gap of a Poisson process at `rate`. */
double
expGap(Rng &rng, double rate)
{
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate;
}

/** Log-uniform integer in [lo, hi]. */
int64_t
logUniform(Rng &rng, int64_t lo, int64_t hi)
{
    const double u = rng.uniform();
    const double v = std::exp(std::log(double(lo)) +
                              u * (std::log(double(hi)) -
                                   std::log(double(lo))));
    return std::min<int64_t>(hi, std::max<int64_t>(lo,
        static_cast<int64_t>(std::llround(v))));
}

} // namespace

std::vector<serving::Request>
poissonTrace(const TraceConfig &cfg,
             const std::vector<serving::Workload> &mix)
{
    validateTraceConfig(cfg);
    if (mix.empty())
        throw std::invalid_argument("poissonTrace: empty workload mix");
    Rng rng(cfg.seed);
    std::vector<serving::Request> trace;
    trace.reserve(cfg.num_requests);
    double t = 0.0;
    for (int64_t i = 0; i < cfg.num_requests; ++i) {
        t += expGap(rng, cfg.arrival_rate_per_s);
        const serving::Workload &w =
            mix[rng.uniformInt(static_cast<uint64_t>(mix.size()))];
        serving::Request r;
        r.id = i;
        r.arrival_seconds = t;
        r.prompt_len = w.prompt_len;
        r.gen_len = w.gen_len;
        trace.push_back(r);
    }
    return trace;
}

std::vector<serving::Request>
paperMixTrace(const TraceConfig &cfg)
{
    return poissonTrace(cfg, serving::paperWorkloads());
}

std::vector<std::vector<serving::Request>>
splitTrace(std::vector<serving::Request> trace, size_t shards)
{
    if (shards == 0)
        throw std::invalid_argument("splitTrace: zero shards");
    serving::sortByArrival(trace);
    std::vector<std::vector<serving::Request>> out(shards);
    for (size_t i = 0; i < trace.size(); ++i)
        out[i % shards].push_back(trace[i]);
    return out;
}

std::vector<serving::Request>
mergeTraces(const std::vector<std::vector<serving::Request>> &shards)
{
    // K-way merge by arrival time. Equal arrivals break on the
    // smallest cursor position, then the lowest shard index: a
    // round-robin split puts shard k's element j at trace position
    // j * N + k, so this order restores the original interleave even
    // when a run of identical arrival instants wraps around the fleet
    // (split-then-merge round-trips exactly).
    std::vector<size_t> cursor(shards.size(), 0);
    size_t total = 0;
    for (const auto &s : shards)
        total += s.size();
    std::vector<serving::Request> out;
    out.reserve(total);
    while (out.size() < total) {
        size_t best = shards.size();
        for (size_t k = 0; k < shards.size(); ++k) {
            if (cursor[k] >= shards[k].size())
                continue;
            if (best == shards.size()) {
                best = k;
                continue;
            }
            const double a = shards[k][cursor[k]].arrival_seconds;
            const double b = shards[best][cursor[best]].arrival_seconds;
            if (a < b || (a == b && cursor[k] < cursor[best]))
                best = k;
        }
        out.push_back(shards[best][cursor[best]]);
        ++cursor[best];
    }
    return out;
}

namespace {

void
validateSharedPrefixConfig(const SharedPrefixTraceConfig &cfg)
{
    validateTraceConfig(cfg.base);
    if (cfg.num_families <= 0)
        throw std::invalid_argument(
            "sharedPrefixTrace: non-positive num_families");
    if (cfg.prefix_len <= 0)
        throw std::invalid_argument(
            "sharedPrefixTrace: non-positive prefix_len");
    if (cfg.suffix_lo <= 0 || cfg.suffix_hi < cfg.suffix_lo)
        throw std::invalid_argument(
            "sharedPrefixTrace: suffix bounds must satisfy "
            "0 < lo <= hi");
    if (cfg.gen_lo <= 0 || cfg.gen_hi < cfg.gen_lo)
        throw std::invalid_argument(
            "sharedPrefixTrace: gen bounds must satisfy 0 < lo <= hi");
    if (cfg.zipf_s < 0.0 || !std::isfinite(cfg.zipf_s))
        throw std::invalid_argument(
            "sharedPrefixTrace: zipf_s must be finite and >= 0");
    if (cfg.vocab < 3)
        throw std::invalid_argument("sharedPrefixTrace: vocab < 3");
}

} // namespace

std::vector<serving::Request>
sharedPrefixTrace(const SharedPrefixTraceConfig &cfg)
{
    validateSharedPrefixConfig(cfg);
    Rng rng(cfg.base.seed);

    // One shared prefix per family, each drawn from its own
    // seed-derived stream so family contents are stable however many
    // requests the trace has.
    std::vector<std::vector<int32_t>> prefixes(
        static_cast<size_t>(cfg.num_families));
    for (int64_t f = 0; f < cfg.num_families; ++f) {
        Rng frng(cfg.base.seed * 1000003ull +
                 static_cast<uint64_t>(f) + 1);
        auto &p = prefixes[static_cast<size_t>(f)];
        p.reserve(cfg.prefix_len);
        for (int64_t i = 0; i < cfg.prefix_len; ++i)
            p.push_back(randomTokenId(frng, cfg.vocab));
    }

    // Zipf popularity CDF over family ranks: weight 1/(f+1)^zipf_s.
    std::vector<double> cdf(static_cast<size_t>(cfg.num_families));
    double total = 0.0;
    for (int64_t f = 0; f < cfg.num_families; ++f) {
        total += 1.0 / std::pow(static_cast<double>(f + 1), cfg.zipf_s);
        cdf[static_cast<size_t>(f)] = total;
    }

    std::vector<serving::Request> trace;
    trace.reserve(cfg.base.num_requests);
    double t = 0.0;
    for (int64_t i = 0; i < cfg.base.num_requests; ++i) {
        t += expGap(rng, cfg.base.arrival_rate_per_s);
        const double u = rng.uniform() * total;
        size_t family = 0;
        while (family + 1 < cdf.size() && cdf[family] < u)
            ++family;
        const int64_t suffix =
            logUniform(rng, cfg.suffix_lo, cfg.suffix_hi);

        serving::Request r;
        r.id = i;
        r.arrival_seconds = t;
        r.prompt_len = cfg.prefix_len + suffix;
        r.gen_len = logUniform(rng, cfg.gen_lo, cfg.gen_hi);
        r.prompt_tokens = prefixes[family];
        r.prompt_tokens.reserve(static_cast<size_t>(r.prompt_len));
        for (int64_t k = 0; k < suffix; ++k)
            r.prompt_tokens.push_back(randomTokenId(rng, cfg.vocab));
        trace.push_back(std::move(r));
    }
    return trace;
}

namespace {

void
validateMultiTurnConfig(const MultiTurnTraceConfig &cfg)
{
    validateTraceConfig(cfg.base);
    if (cfg.turns <= 0)
        throw std::invalid_argument(
            "multiTurnTrace: non-positive turns");
    if (cfg.first_prompt_lo <= 0 ||
        cfg.first_prompt_hi < cfg.first_prompt_lo)
        throw std::invalid_argument(
            "multiTurnTrace: first-prompt bounds must satisfy "
            "0 < lo <= hi");
    if (cfg.followup_lo <= 0 || cfg.followup_hi < cfg.followup_lo)
        throw std::invalid_argument(
            "multiTurnTrace: follow-up bounds must satisfy "
            "0 < lo <= hi");
    if (cfg.gen_lo <= 0 || cfg.gen_hi < cfg.gen_lo)
        throw std::invalid_argument(
            "multiTurnTrace: gen bounds must satisfy 0 < lo <= hi");
    if (!(cfg.think_time_mean_s > 0.0) ||
        !std::isfinite(cfg.think_time_mean_s))
        throw std::invalid_argument(
            "multiTurnTrace: think_time_mean_s must be positive and "
            "finite");
    if (cfg.vocab < 3)
        throw std::invalid_argument("multiTurnTrace: vocab < 3");
}

} // namespace

std::vector<serving::Request>
multiTurnTrace(const MultiTurnTraceConfig &cfg)
{
    validateMultiTurnConfig(cfg);
    Rng rng(cfg.base.seed);
    std::vector<serving::Request> trace;
    trace.reserve(
        static_cast<size_t>(cfg.base.num_requests * cfg.turns));

    double session_start = 0.0;
    for (int64_t s = 0; s < cfg.base.num_requests; ++s) {
        session_start += expGap(rng, cfg.base.arrival_rate_per_s);
        // Per-session stream so one session's content is stable
        // however many sessions the trace has.
        Rng srng(cfg.base.seed * 9176203ull +
                 static_cast<uint64_t>(s) + 1);

        // The conversation so far: every turn appends the previous
        // turn's synthesized assistant reply and a fresh user
        // message, then replays the whole history as its prompt.
        std::vector<int32_t> history;
        double t = session_start;
        int64_t prev_gen = 0;
        for (int64_t turn = 0; turn < cfg.turns; ++turn) {
            if (turn > 0) {
                t += expGap(srng, 1.0 / cfg.think_time_mean_s);
                // The previous assistant reply enters the context as
                // deterministic stand-in token ids (the simulator
                // never materializes real ones).
                for (int64_t k = 0; k < prev_gen; ++k)
                    history.push_back(randomTokenId(srng, cfg.vocab));
            }
            const int64_t user_len =
                turn == 0 ? logUniform(srng, cfg.first_prompt_lo,
                                       cfg.first_prompt_hi)
                          : logUniform(srng, cfg.followup_lo,
                                       cfg.followup_hi);
            for (int64_t k = 0; k < user_len; ++k)
                history.push_back(randomTokenId(srng, cfg.vocab));

            serving::Request r;
            r.arrival_seconds = t;
            r.prompt_len = static_cast<int64_t>(history.size());
            r.gen_len = logUniform(srng, cfg.gen_lo, cfg.gen_hi);
            r.prompt_tokens = history;
            prev_gen = r.gen_len;
            trace.push_back(std::move(r));
        }
    }

    // Sessions interleave; ids are sequential in global arrival order
    // (the convention every generator here follows).
    serving::sortByArrival(trace);
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i].id = static_cast<int64_t>(i);
    return trace;
}

namespace {

void
validateLengthBounds(const char *what, int64_t prompt_lo,
                     int64_t prompt_hi, int64_t gen_lo, int64_t gen_hi)
{
    if (prompt_lo <= 0 || prompt_hi < prompt_lo)
        throw std::invalid_argument(
            std::string(what) +
            ": prompt bounds must satisfy 0 < lo <= hi");
    if (gen_lo <= 0 || gen_hi < gen_lo)
        throw std::invalid_argument(
            std::string(what) + ": gen bounds must satisfy 0 < lo <= hi");
}

/**
 * Non-homogeneous Poisson arrivals by Lewis-Shedler thinning: draw
 * candidate gaps at the envelope `rate_max`, keep a candidate at t
 * with probability rate(t) / rate_max. Candidates and acceptance draws
 * come from one stream, lengths from the same stream only on accept,
 * so the trace is deterministic in the seed and two generators with
 * the same seed but different rate curves still agree on the envelope
 * skeleton.
 */
template <typename RateFn>
std::vector<serving::Request>
thinnedTrace(const TraceConfig &base, double rate_max,
             const RateFn &rate, int64_t prompt_lo, int64_t prompt_hi,
             int64_t gen_lo, int64_t gen_hi)
{
    Rng rng(base.seed);
    std::vector<serving::Request> trace;
    trace.reserve(base.num_requests);
    double t = 0.0;
    int64_t id = 0;
    while (id < base.num_requests) {
        t += expGap(rng, rate_max);
        if (rng.uniform() * rate_max > rate(t))
            continue; // thinned: the instantaneous rate is below the envelope
        serving::Request r;
        r.id = id++;
        r.arrival_seconds = t;
        r.prompt_len = logUniform(rng, prompt_lo, prompt_hi);
        r.gen_len = logUniform(rng, gen_lo, gen_hi);
        trace.push_back(r);
    }
    return trace;
}

} // namespace

void
validateTraceConfig(const DiurnalTraceConfig &cfg)
{
    validateTraceConfig(cfg.base);
    if (!(cfg.period_seconds > 0.0) || !std::isfinite(cfg.period_seconds))
        throw std::invalid_argument(
            "diurnalTrace: period_seconds must be positive and finite");
    if (!(cfg.peak_to_trough >= 1.0) || !std::isfinite(cfg.peak_to_trough))
        throw std::invalid_argument(
            "diurnalTrace: peak_to_trough must be finite and >= 1 "
            "(rates must stay non-negative)");
    validateLengthBounds("diurnalTrace", cfg.prompt_lo, cfg.prompt_hi,
                         cfg.gen_lo, cfg.gen_hi);
}

std::vector<serving::Request>
diurnalTrace(const DiurnalTraceConfig &cfg)
{
    validateTraceConfig(cfg);
    // Mean rate m and ratio r = peak/trough pin the curve's extremes
    // at trough = 2m/(1+r), peak = 2m*r/(1+r): the cosine's average is
    // the configured mean, so total volume matches a plain Poisson
    // trace at the same base rate.
    const double mean = cfg.base.arrival_rate_per_s;
    const double trough = 2.0 * mean / (1.0 + cfg.peak_to_trough);
    const double peak = trough * cfg.peak_to_trough;
    const double two_pi = 2.0 * 3.14159265358979323846;
    const auto rate = [&](double t) {
        const double phase = two_pi * t / cfg.period_seconds;
        return trough +
               (peak - trough) * 0.5 * (1.0 - std::cos(phase));
    };
    return thinnedTrace(cfg.base, peak, rate, cfg.prompt_lo,
                        cfg.prompt_hi, cfg.gen_lo, cfg.gen_hi);
}

void
validateTraceConfig(const FlashCrowdTraceConfig &cfg)
{
    validateTraceConfig(cfg.base);
    if (cfg.burst_start_seconds < 0.0 ||
        !std::isfinite(cfg.burst_start_seconds))
        throw std::invalid_argument(
            "flashCrowdTrace: burst_start_seconds must be finite and "
            ">= 0");
    if (!(cfg.burst_duration_seconds > 0.0) ||
        !std::isfinite(cfg.burst_duration_seconds))
        throw std::invalid_argument(
            "flashCrowdTrace: burst_duration_seconds must be positive "
            "and finite (the window must be ordered)");
    if (!(cfg.burst_multiplier >= 1.0) ||
        !std::isfinite(cfg.burst_multiplier))
        throw std::invalid_argument(
            "flashCrowdTrace: burst_multiplier must be finite and >= 1");
    validateLengthBounds("flashCrowdTrace", cfg.prompt_lo,
                         cfg.prompt_hi, cfg.gen_lo, cfg.gen_hi);
}

std::vector<serving::Request>
flashCrowdTrace(const FlashCrowdTraceConfig &cfg)
{
    validateTraceConfig(cfg);
    const double baseline = cfg.base.arrival_rate_per_s;
    const double burst_end =
        cfg.burst_start_seconds + cfg.burst_duration_seconds;
    const auto rate = [&](double t) {
        const bool in_burst =
            t >= cfg.burst_start_seconds && t < burst_end;
        return in_burst ? baseline * cfg.burst_multiplier : baseline;
    };
    return thinnedTrace(cfg.base, baseline * cfg.burst_multiplier,
                        rate, cfg.prompt_lo, cfg.prompt_hi, cfg.gen_lo,
                        cfg.gen_hi);
}

void
validateTraceConfig(const RagSpikeTraceConfig &cfg)
{
    validateTraceConfig(cfg.base);
    validateLengthBounds("ragSpikeTrace", cfg.prompt_lo, cfg.prompt_hi,
                         cfg.gen_lo, cfg.gen_hi);
}

std::vector<serving::Request>
ragSpikeTrace(const RagSpikeTraceConfig &cfg)
{
    validateTraceConfig(cfg);
    Rng rng(cfg.base.seed);
    std::vector<serving::Request> trace;
    trace.reserve(cfg.base.num_requests);
    double t = 0.0;
    for (int64_t i = 0; i < cfg.base.num_requests; ++i) {
        t += expGap(rng, cfg.base.arrival_rate_per_s);
        serving::Request r;
        r.id = i;
        r.arrival_seconds = t;
        // Each prompt is a unique retrieved context; no token ids are
        // materialized, so the prefix cache (keyed on concrete token
        // prefixes) sees nothing shareable — by design.
        r.prompt_len = logUniform(rng, cfg.prompt_lo, cfg.prompt_hi);
        r.gen_len = logUniform(rng, cfg.gen_lo, cfg.gen_hi);
        trace.push_back(r);
    }
    return trace;
}

void
validateTraceConfig(const AgenticLoopTraceConfig &cfg)
{
    validateTraceConfig(cfg.base);
    if (cfg.steps <= 0)
        throw std::invalid_argument(
            "agenticLoopTrace: non-positive steps");
    if (cfg.task_prompt_lo <= 0 ||
        cfg.task_prompt_hi < cfg.task_prompt_lo)
        throw std::invalid_argument(
            "agenticLoopTrace: task-prompt bounds must satisfy "
            "0 < lo <= hi");
    if (cfg.tool_output_lo <= 0 ||
        cfg.tool_output_hi < cfg.tool_output_lo)
        throw std::invalid_argument(
            "agenticLoopTrace: tool-output bounds must satisfy "
            "0 < lo <= hi");
    if (cfg.gen_lo <= 0 || cfg.gen_hi < cfg.gen_lo)
        throw std::invalid_argument(
            "agenticLoopTrace: gen bounds must satisfy 0 < lo <= hi");
    if (!(cfg.tool_latency_mean_s > 0.0) ||
        !std::isfinite(cfg.tool_latency_mean_s))
        throw std::invalid_argument(
            "agenticLoopTrace: tool_latency_mean_s must be positive "
            "and finite");
    if (cfg.vocab < 3)
        throw std::invalid_argument("agenticLoopTrace: vocab < 3");
}

std::vector<serving::Request>
agenticLoopTrace(const AgenticLoopTraceConfig &cfg)
{
    validateTraceConfig(cfg);
    Rng rng(cfg.base.seed);
    std::vector<serving::Request> trace;
    trace.reserve(
        static_cast<size_t>(cfg.base.num_requests * cfg.steps));

    double session_start = 0.0;
    for (int64_t s = 0; s < cfg.base.num_requests; ++s) {
        session_start += expGap(rng, cfg.base.arrival_rate_per_s);
        // Per-session stream so one session's content is stable
        // however many sessions the trace has (the multi-turn
        // generator's convention).
        Rng srng(cfg.base.seed * 7368787ull +
                 static_cast<uint64_t>(s) + 1);

        // The agent's context: the task prompt, then per step the
        // model's previous tool-call tokens (synthesized stand-ins —
        // the simulator never materializes real ones) and the tool's
        // output; every step replays the whole context as its prompt.
        std::vector<int32_t> context;
        double t = session_start;
        int64_t prev_gen = 0;
        for (int64_t step = 0; step < cfg.steps; ++step) {
            if (step > 0) {
                t += expGap(srng, 1.0 / cfg.tool_latency_mean_s);
                for (int64_t k = 0; k < prev_gen; ++k)
                    context.push_back(randomTokenId(srng, cfg.vocab));
                const int64_t tool_len = logUniform(
                    srng, cfg.tool_output_lo, cfg.tool_output_hi);
                for (int64_t k = 0; k < tool_len; ++k)
                    context.push_back(randomTokenId(srng, cfg.vocab));
            } else {
                const int64_t task_len = logUniform(
                    srng, cfg.task_prompt_lo, cfg.task_prompt_hi);
                for (int64_t k = 0; k < task_len; ++k)
                    context.push_back(randomTokenId(srng, cfg.vocab));
            }

            serving::Request r;
            r.arrival_seconds = t;
            r.prompt_len = static_cast<int64_t>(context.size());
            r.gen_len = logUniform(srng, cfg.gen_lo, cfg.gen_hi);
            r.prompt_tokens = context;
            prev_gen = r.gen_len;
            trace.push_back(std::move(r));
        }
    }

    // Sessions interleave; ids are sequential in global arrival order
    // (the convention every generator here follows).
    serving::sortByArrival(trace);
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i].id = static_cast<int64_t>(i);
    return trace;
}

std::vector<serving::Request>
mixedLengthTrace(const TraceConfig &cfg)
{
    validateTraceConfig(cfg);
    Rng rng(cfg.seed);
    std::vector<serving::Request> trace;
    trace.reserve(cfg.num_requests);
    double t = 0.0;
    for (int64_t i = 0; i < cfg.num_requests; ++i) {
        t += expGap(rng, cfg.arrival_rate_per_s);
        serving::Request r;
        r.id = i;
        r.arrival_seconds = t;
        r.prompt_len = logUniform(rng, 1024, 32768);
        r.gen_len = logUniform(rng, 256, 8192);
        trace.push_back(r);
    }
    return trace;
}

} // namespace workload
} // namespace specontext
