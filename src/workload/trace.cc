#include "workload/trace.h"

#include <cmath>
#include <stdexcept>

#include "tensor/rng.h"

namespace specontext {
namespace workload {

namespace {

void
validateConfig(const TraceConfig &cfg)
{
    if (cfg.num_requests <= 0)
        throw std::invalid_argument("trace: non-positive num_requests");
    if (cfg.arrival_rate_per_s <= 0.0)
        throw std::invalid_argument("trace: non-positive arrival rate");
}

/** Exponential inter-arrival gap of a Poisson process at `rate`. */
double
expGap(Rng &rng, double rate)
{
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate;
}

/** Log-uniform integer in [lo, hi]. */
int64_t
logUniform(Rng &rng, int64_t lo, int64_t hi)
{
    const double u = rng.uniform();
    const double v = std::exp(std::log(double(lo)) +
                              u * (std::log(double(hi)) -
                                   std::log(double(lo))));
    return std::min<int64_t>(hi, std::max<int64_t>(lo,
        static_cast<int64_t>(std::llround(v))));
}

} // namespace

std::vector<serving::Request>
poissonTrace(const TraceConfig &cfg,
             const std::vector<serving::Workload> &mix)
{
    validateConfig(cfg);
    if (mix.empty())
        throw std::invalid_argument("poissonTrace: empty workload mix");
    Rng rng(cfg.seed);
    std::vector<serving::Request> trace;
    trace.reserve(cfg.num_requests);
    double t = 0.0;
    for (int64_t i = 0; i < cfg.num_requests; ++i) {
        t += expGap(rng, cfg.arrival_rate_per_s);
        const serving::Workload &w =
            mix[rng.uniformInt(static_cast<uint64_t>(mix.size()))];
        serving::Request r;
        r.id = i;
        r.arrival_seconds = t;
        r.prompt_len = w.prompt_len;
        r.gen_len = w.gen_len;
        trace.push_back(r);
    }
    return trace;
}

std::vector<serving::Request>
paperMixTrace(const TraceConfig &cfg)
{
    return poissonTrace(cfg, serving::paperWorkloads());
}

std::vector<serving::Request>
mixedLengthTrace(const TraceConfig &cfg)
{
    validateConfig(cfg);
    Rng rng(cfg.seed);
    std::vector<serving::Request> trace;
    trace.reserve(cfg.num_requests);
    double t = 0.0;
    for (int64_t i = 0; i < cfg.num_requests; ++i) {
        t += expGap(rng, cfg.arrival_rate_per_s);
        serving::Request r;
        r.id = i;
        r.arrival_seconds = t;
        r.prompt_len = logUniform(rng, 1024, 32768);
        r.gen_len = logUniform(rng, 256, 8192);
        trace.push_back(r);
    }
    return trace;
}

} // namespace workload
} // namespace specontext
