#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/rng.h"

namespace specontext {
namespace workload {

namespace {

void
validateConfig(const TraceConfig &cfg)
{
    if (cfg.num_requests <= 0)
        throw std::invalid_argument("trace: non-positive num_requests");
    if (cfg.arrival_rate_per_s <= 0.0)
        throw std::invalid_argument("trace: non-positive arrival rate");
}

/** Exponential inter-arrival gap of a Poisson process at `rate`. */
double
expGap(Rng &rng, double rate)
{
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate;
}

/** Log-uniform integer in [lo, hi]. */
int64_t
logUniform(Rng &rng, int64_t lo, int64_t hi)
{
    const double u = rng.uniform();
    const double v = std::exp(std::log(double(lo)) +
                              u * (std::log(double(hi)) -
                                   std::log(double(lo))));
    return std::min<int64_t>(hi, std::max<int64_t>(lo,
        static_cast<int64_t>(std::llround(v))));
}

} // namespace

std::vector<serving::Request>
poissonTrace(const TraceConfig &cfg,
             const std::vector<serving::Workload> &mix)
{
    validateConfig(cfg);
    if (mix.empty())
        throw std::invalid_argument("poissonTrace: empty workload mix");
    Rng rng(cfg.seed);
    std::vector<serving::Request> trace;
    trace.reserve(cfg.num_requests);
    double t = 0.0;
    for (int64_t i = 0; i < cfg.num_requests; ++i) {
        t += expGap(rng, cfg.arrival_rate_per_s);
        const serving::Workload &w =
            mix[rng.uniformInt(static_cast<uint64_t>(mix.size()))];
        serving::Request r;
        r.id = i;
        r.arrival_seconds = t;
        r.prompt_len = w.prompt_len;
        r.gen_len = w.gen_len;
        trace.push_back(r);
    }
    return trace;
}

std::vector<serving::Request>
paperMixTrace(const TraceConfig &cfg)
{
    return poissonTrace(cfg, serving::paperWorkloads());
}

std::vector<std::vector<serving::Request>>
splitTrace(std::vector<serving::Request> trace, size_t shards)
{
    if (shards == 0)
        throw std::invalid_argument("splitTrace: zero shards");
    serving::sortByArrival(trace);
    std::vector<std::vector<serving::Request>> out(shards);
    for (size_t i = 0; i < trace.size(); ++i)
        out[i % shards].push_back(trace[i]);
    return out;
}

std::vector<serving::Request>
mergeTraces(const std::vector<std::vector<serving::Request>> &shards)
{
    // K-way merge by arrival time. Equal arrivals break on the
    // smallest cursor position, then the lowest shard index: a
    // round-robin split puts shard k's element j at trace position
    // j * N + k, so this order restores the original interleave even
    // when a run of identical arrival instants wraps around the fleet
    // (split-then-merge round-trips exactly).
    std::vector<size_t> cursor(shards.size(), 0);
    size_t total = 0;
    for (const auto &s : shards)
        total += s.size();
    std::vector<serving::Request> out;
    out.reserve(total);
    while (out.size() < total) {
        size_t best = shards.size();
        for (size_t k = 0; k < shards.size(); ++k) {
            if (cursor[k] >= shards[k].size())
                continue;
            if (best == shards.size()) {
                best = k;
                continue;
            }
            const double a = shards[k][cursor[k]].arrival_seconds;
            const double b = shards[best][cursor[best]].arrival_seconds;
            if (a < b || (a == b && cursor[k] < cursor[best]))
                best = k;
        }
        out.push_back(shards[best][cursor[best]]);
        ++cursor[best];
    }
    return out;
}

std::vector<serving::Request>
mixedLengthTrace(const TraceConfig &cfg)
{
    validateConfig(cfg);
    Rng rng(cfg.seed);
    std::vector<serving::Request> trace;
    trace.reserve(cfg.num_requests);
    double t = 0.0;
    for (int64_t i = 0; i < cfg.num_requests; ++i) {
        t += expGap(rng, cfg.arrival_rate_per_s);
        serving::Request r;
        r.id = i;
        r.arrival_seconds = t;
        r.prompt_len = logUniform(rng, 1024, 32768);
        r.gen_len = logUniform(rng, 256, 8192);
        trace.push_back(r);
    }
    return trace;
}

} // namespace workload
} // namespace specontext
