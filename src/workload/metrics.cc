#include "workload/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "tensor/topk.h"

namespace specontext {
namespace workload {

std::vector<std::vector<int64_t>>
trueTopKPerHead(const std::vector<Tensor> &layer_attn, int64_t group,
                int64_t k)
{
    if (layer_attn.empty())
        throw std::invalid_argument("no attention maps");
    const int64_t q_heads = layer_attn[0].dim(0);
    const int64_t ctx = layer_attn[0].dim(1);
    if (group <= 0 || q_heads % group != 0)
        throw std::invalid_argument("bad group size");
    const int64_t out_heads = q_heads / group;

    std::vector<std::vector<int64_t>> truth(out_heads);
    std::vector<float> layer_max(ctx);
    for (int64_t oh = 0; oh < out_heads; ++oh) {
        std::vector<float> mass(ctx, 0.0f);
        for (const Tensor &attn : layer_attn) {
            // Per layer: element-wise max over the group's query heads
            // (the Fig. 5(c) reduction), then summed across layers.
            std::fill(layer_max.begin(), layer_max.end(), 0.0f);
            for (int64_t g = 0; g < group; ++g) {
                const float *row = attn.row(oh * group + g);
                for (int64_t p = 0; p < ctx; ++p)
                    layer_max[p] = std::max(layer_max[p], row[p]);
            }
            for (int64_t p = 0; p < ctx; ++p)
                mass[p] += layer_max[p];
        }
        truth[oh] = topkIndices(mass, k);
    }
    return truth;
}

double
hitRate(const model::LayerSelection &selection,
        const std::vector<std::vector<int64_t>> &truth)
{
    if (selection.per_head.size() != truth.size())
        throw std::invalid_argument("hitRate head count mismatch");
    double sum = 0.0;
    for (size_t h = 0; h < truth.size(); ++h) {
        if (truth[h].empty()) {
            sum += 1.0;
            continue;
        }
        const auto inter =
            sortedIntersection(selection.per_head[h], truth[h]);
        sum += static_cast<double>(inter.size()) /
               static_cast<double>(truth[h].size());
    }
    return sum / static_cast<double>(truth.size());
}

double
attentionRecall(const model::LayerSelection &selection,
                const std::vector<Tensor> &layer_attn, int64_t group)
{
    if (layer_attn.empty() || selection.per_head.empty())
        return 0.0;
    const int64_t out_heads =
        static_cast<int64_t>(selection.per_head.size());
    double sum = 0.0;
    int64_t count = 0;
    for (const Tensor &attn : layer_attn) {
        const int64_t ctx = attn.dim(1);
        for (int64_t oh = 0; oh < out_heads; ++oh) {
            double covered = 0.0, total = 0.0;
            for (int64_t g = 0; g < group; ++g) {
                const float *row = attn.row(oh * group + g);
                for (int64_t p = 0; p < ctx; ++p)
                    total += row[p];
                for (int64_t p : selection.per_head[oh]) {
                    if (p < ctx)
                        covered += row[p];
                }
            }
            if (total > 0.0) {
                sum += covered / total;
                ++count;
            }
        }
    }
    return count == 0 ? 0.0 : sum / count;
}

double
needleRecall(const std::vector<model::LayerSelection> &step_selections,
             const std::vector<int64_t> &needle_positions)
{
    if (needle_positions.empty() || step_selections.empty())
        return 1.0;
    std::vector<int64_t> needles = needle_positions;
    std::sort(needles.begin(), needles.end());
    double sum = 0.0;
    int64_t count = 0;
    for (const auto &sel : step_selections) {
        for (const auto &head : sel.per_head) {
            const auto inter = sortedIntersection(head, needles);
            sum += static_cast<double>(inter.size()) /
                   static_cast<double>(needles.size());
            ++count;
        }
    }
    return count == 0 ? 1.0 : sum / count;
}

} // namespace workload
} // namespace specontext
