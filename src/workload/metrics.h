/**
 * @file
 * Fidelity and selection-quality metrics used across the accuracy
 * experiments: ground-truth important tokens from full-attention maps,
 * hit rate, attention-mass recall (Fig. 5(a)), and needle coverage.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/transformer.h"
#include "tensor/tensor.h"

namespace specontext {
namespace workload {

/**
 * Ground-truth important tokens per output head from one step's
 * full-attention maps.
 *
 * layer_attn holds one (q_heads x ctx) probability tensor per layer
 * (a Reference::attention entry). Importance of a position for an
 * output head = attention mass summed over layers, max-reduced over
 * the `group` query heads mapping to it. Returns the Top-K positions
 * per output head (q_heads / group heads).
 */
std::vector<std::vector<int64_t>> trueTopKPerHead(
    const std::vector<Tensor> &layer_attn, int64_t group, int64_t k);

/**
 * Hit rate: fraction of ground-truth positions covered by the
 * selection, averaged over heads. Mismatched head counts are an error.
 */
double hitRate(const model::LayerSelection &selection,
               const std::vector<std::vector<int64_t>> &truth);

/**
 * Attention-weight accumulation (Fig. 5(a) left): the share of total
 * attention probability mass that the selected positions capture,
 * averaged over layers and output heads.
 */
double attentionRecall(const model::LayerSelection &selection,
                       const std::vector<Tensor> &layer_attn,
                       int64_t group);

/**
 * Needle coverage: mean over steps and heads of
 * |needles ∩ selection| / |needles|.
 */
double needleRecall(
    const std::vector<model::LayerSelection> &step_selections,
    const std::vector<int64_t> &needle_positions);

} // namespace workload
} // namespace specontext
