#include "workload/longwriter.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "tensor/rng.h"
#include "workload/tasks.h"

namespace specontext {
namespace workload {

LongWriterTask
makeLongWriterTask(int64_t vocab, uint64_t seed, int64_t prompt_len,
                   int64_t steps)
{
    if (vocab < 32)
        throw std::invalid_argument("vocab too small");
    Rng rng(seed);
    LongWriterTask t;
    t.steps = steps;
    // A handful of "topic" tokens the instruction asks the writer to
    // cover; they are repeated inside the prompt so a faithful
    // generation keeps returning to them.
    const int64_t topics = 6;
    for (int64_t i = 0; i < topics; ++i) {
        t.plan_keywords.push_back(randomTokenId(rng, vocab));
    }
    for (int64_t i = 0; i < prompt_len; ++i) {
        if (i % 7 == 3) {
            t.prompt.push_back(
                t.plan_keywords[(i / 7) % t.plan_keywords.size()]);
        } else {
            t.prompt.push_back(randomTokenId(rng, vocab));
        }
    }
    return t;
}

namespace {

double
keywordCoverage(const std::vector<int32_t> &output,
                const std::vector<int32_t> &keywords)
{
    if (keywords.empty())
        return 1.0;
    const std::set<int32_t> present(output.begin(), output.end());
    int64_t hit = 0;
    for (int32_t k : keywords)
        hit += present.count(k) ? 1 : 0;
    return static_cast<double>(hit) /
           static_cast<double>(keywords.size());
}

std::set<std::pair<int32_t, int32_t>>
bigrams(const std::vector<int32_t> &s)
{
    std::set<std::pair<int32_t, int32_t>> out;
    for (size_t i = 0; i + 1 < s.size(); ++i)
        out.insert({s[i], s[i + 1]});
    return out;
}

double
bigramOverlap(const std::vector<int32_t> &a,
              const std::vector<int32_t> &b)
{
    const auto ba = bigrams(a);
    const auto bb = bigrams(b);
    if (ba.empty() && bb.empty())
        return 1.0;
    int64_t inter = 0;
    for (const auto &x : ba)
        inter += bb.count(x) ? 1 : 0;
    const double uni =
        static_cast<double>(ba.size() + bb.size() - inter);
    return uni == 0.0 ? 1.0 : inter / uni;
}

double
repeatedTrigramFraction(const std::vector<int32_t> &s)
{
    if (s.size() < 3)
        return 0.0;
    std::set<std::tuple<int32_t, int32_t, int32_t>> seen;
    int64_t repeats = 0;
    const int64_t total = static_cast<int64_t>(s.size()) - 2;
    for (int64_t i = 0; i < total; ++i) {
        auto tri = std::make_tuple(s[i], s[i + 1], s[i + 2]);
        if (!seen.insert(tri).second)
            ++repeats;
    }
    return static_cast<double>(repeats) / static_cast<double>(total);
}

double
distinctRatio(const std::vector<int32_t> &s)
{
    if (s.empty())
        return 0.0;
    const std::set<int32_t> uniq(s.begin(), s.end());
    return static_cast<double>(uniq.size()) /
           static_cast<double>(s.size());
}

} // namespace

LongWriterScore
scoreLongWriter(const LongWriterTask &task,
                const std::vector<int32_t> &full_output,
                const std::vector<int32_t> &method_output,
                const core::LiveGenResult *forced)
{
    LongWriterScore s;
    s.relevance =
        5.0 * keywordCoverage(method_output, task.plan_keywords);
    s.accuracy = 5.0 * (forced ? forced->top1_agreement : 1.0);
    s.coherence = 5.0 * bigramOverlap(method_output, full_output);
    s.clarity = 5.0 * (1.0 - repeatedTrigramFraction(method_output));
    const double full_distinct = std::max(1e-9, distinctRatio(full_output));
    s.breadth_depth =
        5.0 * std::min(1.0, distinctRatio(method_output) / full_distinct);
    s.reading_experience =
        5.0 * (forced ? std::exp(-forced->mean_kl) : 1.0);
    s.average = (s.relevance + s.accuracy + s.coherence + s.clarity +
                 s.breadth_depth + s.reading_experience) /
                6.0;
    return s;
}

} // namespace workload
} // namespace specontext
