#include "workload/tasks.h"

#include <algorithm>
#include <stdexcept>

#include "workload/metrics.h"

namespace specontext {
namespace workload {

TaskGenerator::TaskGenerator(int64_t vocab, uint64_t seed)
    : vocab_(vocab), rng_(seed)
{
    if (vocab < 32)
        throw std::invalid_argument("vocab too small for task generation");
}

int32_t
TaskGenerator::randomToken()
{
    return randomTokenId(rng_, vocab_);
}

std::vector<int32_t>
TaskGenerator::filler(int64_t n)
{
    // Locally coherent distractors: with probability 1/2 a token
    // repeats one of the previous eight — natural text re-uses words,
    // and uniform-random streams would make adjacent queries
    // artificially uncorrelated.
    std::vector<int32_t> out;
    out.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
        if (!out.empty() && rng_.uniform() < 0.5) {
            const uint64_t back = rng_.uniformInt(
                std::min<uint64_t>(8, out.size()));
            out.push_back(out[out.size() - 1 - back]);
        } else {
            out.push_back(randomToken());
        }
    }
    return out;
}

int64_t
TaskGenerator::plant(std::vector<int32_t> &stream,
                     const std::vector<int32_t> &fact, int64_t lo,
                     int64_t hi)
{
    const int64_t span = static_cast<int64_t>(fact.size());
    if (hi - lo < span)
        throw std::invalid_argument("context too small for fact");
    const int64_t start = lo + static_cast<int64_t>(
                                   rng_.uniformInt(hi - lo - span + 1));
    std::copy(fact.begin(), fact.end(), stream.begin() + start);
    return start;
}

namespace {

void
appendRange(std::vector<int64_t> &needles, int64_t start, int64_t len)
{
    for (int64_t i = 0; i < len; ++i)
        needles.push_back(start + i);
}

} // namespace

QATask
TaskGenerator::triviaQa(int64_t context_len)
{
    QATask t;
    t.name = "TriviaQA";
    const std::vector<int32_t> key = {randomToken(), randomToken()};
    const std::vector<int32_t> value = {randomToken(), randomToken(),
                                        randomToken()};
    std::vector<int32_t> fact = key;
    fact.insert(fact.end(), value.begin(), value.end());

    t.prompt = filler(context_len);
    const int64_t start = plant(t.prompt, fact, 0, context_len - 16);
    appendRange(t.needle_positions, start,
                static_cast<int64_t>(fact.size()));

    // Question: repeat the key tokens at the end.
    t.prompt.insert(t.prompt.end(), key.begin(), key.end());
    t.prompt.push_back(key[0]);
    return t;
}

QATask
TaskGenerator::twoWikiMqa(int64_t context_len)
{
    QATask t;
    t.name = "2WikiMQA";
    const int32_t key = randomToken();
    const int32_t entity = randomToken();
    const int32_t value = randomToken();
    const std::vector<int32_t> fact1 = {key, key, entity};
    const std::vector<int32_t> fact2 = {entity, entity, value, value};

    t.prompt = filler(context_len);
    const int64_t half = context_len / 2;
    const int64_t s1 = plant(t.prompt, fact1, 0, half);
    const int64_t s2 = plant(t.prompt, fact2, half, context_len - 16);
    appendRange(t.needle_positions, s1,
                static_cast<int64_t>(fact1.size()));
    appendRange(t.needle_positions, s2,
                static_cast<int64_t>(fact2.size()));

    t.prompt.push_back(key);
    t.prompt.push_back(key);
    return t;
}

QATask
TaskGenerator::hotpotQa(int64_t context_len)
{
    QATask t;
    t.name = "HotpotQA";
    const int32_t key_a = randomToken();
    const int32_t key_b = randomToken();
    const int32_t val_a = randomToken();
    const int32_t val_b = randomToken();
    const std::vector<int32_t> fact_a = {key_a, key_a, val_a};
    const std::vector<int32_t> fact_b = {key_b, key_b, val_b};

    t.prompt = filler(context_len);
    const int64_t half = context_len / 2;
    const int64_t sa = plant(t.prompt, fact_a, 0, half);
    const int64_t sb = plant(t.prompt, fact_b, half, context_len - 16);
    appendRange(t.needle_positions, sa,
                static_cast<int64_t>(fact_a.size()));
    appendRange(t.needle_positions, sb,
                static_cast<int64_t>(fact_b.size()));

    t.prompt.push_back(key_a);
    t.prompt.push_back(key_b);
    return t;
}

QATask
TaskGenerator::passageCount(int64_t context_len)
{
    QATask t;
    t.name = "PassageCount";
    const std::vector<int32_t> marker = {randomToken(), randomToken(),
                                         randomToken()};
    const int64_t copies =
        3 + static_cast<int64_t>(rng_.uniformInt(4)); // 3..6
    t.expected_count = copies;

    t.prompt = filler(context_len);
    const int64_t stride = (context_len - 16) / copies;
    for (int64_t c = 0; c < copies; ++c) {
        const int64_t start =
            plant(t.prompt, marker, c * stride,
                  std::min<int64_t>((c + 1) * stride, context_len - 16));
        appendRange(t.needle_positions, start,
                    static_cast<int64_t>(marker.size()));
    }

    t.prompt.insert(t.prompt.end(), marker.begin(), marker.end());
    return t;
}

std::vector<QATask>
TaskGenerator::all(int64_t context_len)
{
    return {twoWikiMqa(context_len), triviaQa(context_len),
            hotpotQa(context_len), passageCount(context_len)};
}

core::Reference
taskReference(const core::LiveEngine &engine, const QATask &task)
{
    return engine.buildReference(task.prompt, task.answer_steps);
}

TaskScore
scoreTask(const QATask &task, const core::LiveGenResult &run)
{
    TaskScore s;
    s.answer_agreement = run.top1_agreement;
    s.mean_kl = run.mean_kl;
    s.needle_recall =
        needleRecall(run.step_selections, task.needle_positions);
    s.score = 100.0 * (0.6 * s.answer_agreement + 0.4 * s.needle_recall);
    return s;
}

} // namespace workload
} // namespace specontext
