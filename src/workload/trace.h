/**
 * @file
 * Synthetic open-loop arrival traces for the serving subsystem.
 *
 * The paper evaluates serving on a closed grid of four [in, out]
 * points (Table 3); real traffic is an open-loop arrival process over
 * a mix of lengths. These generators produce deterministic Poisson
 * arrival traces — exponential inter-arrival gaps at a configurable
 * rate — over (a) the paper's four workloads and (b) mixed-length
 * traffic with log-uniform prompt/generation lengths, so scenarios
 * beyond the paper's grid are exercisable from tests and benches.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "serving/request.h"
#include "serving/batch_sweep.h"

namespace specontext {
namespace workload {

/** Shared knobs of the trace generators. */
struct TraceConfig
{
    int64_t num_requests = 32;
    /** Open-loop Poisson arrival rate, requests per second. */
    double arrival_rate_per_s = 0.05;
    uint64_t seed = 42;
};

/**
 * Validate the shared knobs — every generator calls this first.
 * @throws std::invalid_argument on num_requests <= 0 or a
 * non-positive/non-finite arrival rate, naming the offending knob.
 */
void validateTraceConfig(const TraceConfig &cfg);

/**
 * Knobs of the shared-prefix generator: K prompt families (distinct
 * shared prefixes, e.g. system prompts or few-shot templates) with
 * Zipf-distributed popularity, each request appending a unique
 * log-uniform suffix — the multi-tenant traffic shape prefix caching
 * and prefix-affinity routing are built for.
 */
struct SharedPrefixTraceConfig
{
    TraceConfig base;
    /** K: distinct prompt families. */
    int64_t num_families = 8;
    /** Tokens of the shared prefix every family member starts with. */
    int64_t prefix_len = 4096;
    /** Per-request unique suffix length, log-uniform in [lo, hi]. */
    int64_t suffix_lo = 64;
    int64_t suffix_hi = 512;
    /** Generation length, log-uniform in [lo, hi]. */
    int64_t gen_lo = 128;
    int64_t gen_hi = 1024;
    /** Zipf popularity exponent: family rank f is drawn with weight
     *  1 / (f+1)^s. 0 means uniform popularity. */
    double zipf_s = 1.0;
    /** Token-id alphabet (ids are drawn in [2, vocab)). */
    int32_t vocab = 32000;
};

/**
 * Shared-prefix trace: Poisson arrivals where each request samples a
 * family by Zipf popularity and carries concrete prompt token ids —
 * `prefix_len` tokens shared verbatim within its family followed by a
 * unique suffix — so serving::ReplicaEngine's kv::PrefixTree and the
 * PrefixAffinity router are drivable from benches and tests.
 * Deterministic in cfg.base.seed; requests carry sequential ids in
 * arrival order and prompt_tokens.size() == prompt_len.
 * @throws std::invalid_argument on invalid knobs (non-positive
 * families/prefix/suffix/gen bounds, hi < lo, negative zipf_s,
 * vocab < 3, or a bad base config).
 */
std::vector<serving::Request> sharedPrefixTrace(
    const SharedPrefixTraceConfig &cfg);

/**
 * Knobs of the multi-turn session generator: conversations where each
 * turn's prompt replays the whole history so far — see
 * multiTurnTrace().
 */
struct MultiTurnTraceConfig
{
    /** base.num_requests counts *sessions*; the trace holds
     *  num_requests x turns requests. */
    TraceConfig base;
    /** Turns per session (user -> assistant round trips). */
    int64_t turns = 4;
    /** Opening user message length, log-uniform in [lo, hi]. */
    int64_t first_prompt_lo = 512;
    int64_t first_prompt_hi = 2048;
    /** Later-turn user message length, log-uniform in [lo, hi]. */
    int64_t followup_lo = 32;
    int64_t followup_hi = 256;
    /** Assistant reply (generation) length, log-uniform in [lo, hi]. */
    int64_t gen_lo = 128;
    int64_t gen_hi = 1024;
    /** Mean think time between a turn's arrival and the next turn's
     *  (exponential gap) — the trace is open-loop, so gaps anchor on
     *  arrivals, not completions. */
    double think_time_mean_s = 30.0;
    /** Token-id alphabet (ids are drawn in [2, vocab)). */
    int32_t vocab = 32000;
};

/**
 * Multi-turn conversation trace: each session opens with a user
 * message and every later turn's prompt is the full history — the
 * previous prompt, the previous turn's generated tokens (synthesized
 * deterministically, standing in for the assistant reply the serving
 * layer never materializes) and a fresh user message — so contexts
 * grow turn over turn. This is the traffic shape that makes
 * preemptive (Optimistic) scheduling fire: conversation history
 * inflates live KV mid-stream, and a replica's prefix cache can serve
 * each turn's history prefix from the previous turn's blocks.
 * Deterministic in cfg.base.seed; requests carry sequential ids in
 * arrival order and prompt_tokens.size() == prompt_len.
 * @throws std::invalid_argument on invalid knobs (non-positive turns
 * or length bounds, hi < lo, non-positive/non-finite think time,
 * vocab < 3, or a bad base config).
 */
std::vector<serving::Request> multiTurnTrace(
    const MultiTurnTraceConfig &cfg);

/**
 * Knobs of the diurnal generator: a non-homogeneous Poisson process
 * whose rate follows one smooth day curve — trough at the period
 * edges, peak mid-period — around the mean rate `base` names. The
 * non-stationary arrival shape an SLO-driven autoscaler is sized
 * against: a fleet fixed for the peak idles at the trough, a fleet
 * fixed for the trough drowns at the peak.
 */
struct DiurnalTraceConfig
{
    /** base.arrival_rate_per_s is the *mean* rate over a full period;
     *  the curve oscillates around it at fixed total volume. */
    TraceConfig base;
    /** Seconds of one diurnal cycle (one simulated "day"). */
    double period_seconds = 600.0;
    /** Peak-rate : trough-rate ratio (>= 1; 1 = plain Poisson). With
     *  mean m and ratio r the curve spans trough 2m/(1+r) to peak
     *  2mr/(1+r). */
    double peak_to_trough = 4.0;
    /** Per-request prompt length, log-uniform in [lo, hi]. */
    int64_t prompt_lo = 512;
    int64_t prompt_hi = 4096;
    /** Generation length, log-uniform in [lo, hi]. */
    int64_t gen_lo = 128;
    int64_t gen_hi = 1024;
};

/**
 * Validate the diurnal knobs (also called by diurnalTrace()).
 * @throws std::invalid_argument on a bad base config, non-positive or
 * non-finite period, peak_to_trough < 1 or non-finite, or prompt/gen
 * bounds violating 0 < lo <= hi — naming the offending knob.
 */
void validateTraceConfig(const DiurnalTraceConfig &cfg);

/**
 * Diurnal trace: arrivals from a non-homogeneous Poisson process
 * (Lewis-Shedler thinning against the peak rate) whose rate is
 * trough + (peak - trough) * (1 - cos(2*pi*t / period)) / 2 — trough
 * at t = 0, peak at half-period, repeating every period. Lengths are
 * log-uniform per request. Deterministic in cfg.base.seed; requests
 * carry sequential ids in arrival order.
 * @throws std::invalid_argument on invalid knobs (see
 * validateTraceConfig(DiurnalTraceConfig)).
 */
std::vector<serving::Request> diurnalTrace(
    const DiurnalTraceConfig &cfg);

/**
 * Knobs of the flash-crowd generator: steady baseline traffic with
 * one rate spike over a fixed window [burst_start, burst_start +
 * burst_duration) — the breaking-news / product-launch shape that
 * punishes slow scale-up (the crowd is gone by the time a cold
 * replica finishes loading weights if the controller reacts late).
 */
struct FlashCrowdTraceConfig
{
    /** base.arrival_rate_per_s is the steady *baseline* rate. */
    TraceConfig base;
    /** Burst window: [start, start + duration) in trace seconds. */
    double burst_start_seconds = 120.0;
    double burst_duration_seconds = 60.0;
    /** Rate inside the window = baseline * multiplier (>= 1). */
    double burst_multiplier = 8.0;
    /** Per-request prompt length, log-uniform in [lo, hi]. */
    int64_t prompt_lo = 512;
    int64_t prompt_hi = 4096;
    /** Generation length, log-uniform in [lo, hi]. */
    int64_t gen_lo = 128;
    int64_t gen_hi = 1024;
};

/**
 * Validate the flash-crowd knobs (also called by flashCrowdTrace()).
 * @throws std::invalid_argument on a bad base config, a negative or
 * non-finite burst start, a non-positive or non-finite duration (the
 * window must be ordered: start < start + duration), burst_multiplier
 * < 1 or non-finite, or prompt/gen bounds violating 0 < lo <= hi.
 */
void validateTraceConfig(const FlashCrowdTraceConfig &cfg);

/**
 * Flash-crowd trace: baseline Poisson arrivals with the rate stepped
 * to baseline * burst_multiplier inside the burst window (thinning
 * against the burst rate). Lengths are log-uniform per request.
 * Deterministic in cfg.base.seed; requests carry sequential ids in
 * arrival order.
 * @throws std::invalid_argument on invalid knobs (see
 * validateTraceConfig(FlashCrowdTraceConfig)).
 */
std::vector<serving::Request> flashCrowdTrace(
    const FlashCrowdTraceConfig &cfg);

/**
 * Knobs of the RAG-spike generator: retrieval-augmented traffic where
 * every request stuffs a fat retrieved context into its prompt and
 * generates a short grounded answer — the prefill-heavy shape the
 * fleet's characterization suite was missing (huge prompt, tiny
 * generation, no cross-request sharing).
 */
struct RagSpikeTraceConfig
{
    TraceConfig base;
    /** Retrieved-context prompt length, log-uniform in [lo, hi]. */
    int64_t prompt_lo = 16384;
    int64_t prompt_hi = 65536;
    /** Answer length, log-uniform in [lo, hi] — deliberately tiny. */
    int64_t gen_lo = 16;
    int64_t gen_hi = 128;
};

/**
 * Validate the RAG-spike knobs (also called by ragSpikeTrace()).
 * @throws std::invalid_argument on a bad base config or prompt/gen
 * bounds violating 0 < lo <= hi — naming the offending knob.
 */
void validateTraceConfig(const RagSpikeTraceConfig &cfg);

/**
 * RAG-spike trace: Poisson arrivals of huge-prompt / tiny-generation
 * requests (each prompt a unique retrieved context, so the prefix
 * cache cannot help). Deterministic in cfg.base.seed; requests carry
 * sequential ids in arrival order.
 * @throws std::invalid_argument on invalid knobs (see
 * validateTraceConfig(RagSpikeTraceConfig)).
 */
std::vector<serving::Request> ragSpikeTrace(
    const RagSpikeTraceConfig &cfg);

/**
 * Knobs of the agentic tool-call loop generator: autonomous-agent
 * sessions that alternate short model steps (emit a tool call) with
 * tool executions whose output is appended to the context — so every
 * step replays a strictly growing history. base.num_requests counts
 * *sessions*; the trace holds num_requests x steps requests.
 */
struct AgenticLoopTraceConfig
{
    TraceConfig base;
    /** Think-act round trips per session. */
    int64_t steps = 8;
    /** Opening task prompt length, log-uniform in [lo, hi]. */
    int64_t task_prompt_lo = 256;
    int64_t task_prompt_hi = 1024;
    /** Tool output appended to the context per step, log-uniform in
     *  [lo, hi]. */
    int64_t tool_output_lo = 128;
    int64_t tool_output_hi = 1024;
    /** Model step generation (the tool call / final answer),
     *  log-uniform in [lo, hi] — short by construction. */
    int64_t gen_lo = 16;
    int64_t gen_hi = 128;
    /** Mean tool-execution latency between a step's arrival and the
     *  next step's (exponential gap; open-loop, anchored on
     *  arrivals). Tool calls are fast — seconds, not the ~30s think
     *  time of a human turn — which is what makes agent loops bursty. */
    double tool_latency_mean_s = 2.0;
    /** Token-id alphabet (ids are drawn in [2, vocab)). */
    int32_t vocab = 32000;
};

/**
 * Validate the agentic-loop knobs (also called by agenticLoopTrace()).
 * @throws std::invalid_argument on a bad base config, non-positive
 * steps, length bounds violating 0 < lo <= hi, a non-positive or
 * non-finite tool latency, or vocab < 3 — naming the offending knob.
 */
void validateTraceConfig(const AgenticLoopTraceConfig &cfg);

/**
 * Agentic tool-call loop trace: each session opens with a task prompt
 * and every later step's prompt is the full context so far — the
 * previous prompt, the model's previous (synthesized) tool-call
 * tokens, and the tool's output — arriving a short tool-execution
 * latency after the previous step. Contexts grow every step while
 * generations stay tiny, so live KV inflates fast and a replica's
 * prefix cache can serve each step's history from the previous step's
 * blocks: the KV-pressure shape that makes Optimistic preemption
 * churn. Deterministic in cfg.base.seed; requests carry sequential
 * ids in arrival order and prompt_tokens.size() == prompt_len.
 * @throws std::invalid_argument on invalid knobs (see
 * validateTraceConfig(AgenticLoopTraceConfig)).
 */
std::vector<serving::Request> agenticLoopTrace(
    const AgenticLoopTraceConfig &cfg);

/**
 * Poisson arrivals sampling uniformly from `mix`. Requests carry
 * sequential ids in arrival order; the list is sorted by arrival.
 * @throws std::invalid_argument on an empty mix or non-positive knobs.
 */
std::vector<serving::Request> poissonTrace(
    const TraceConfig &cfg, const std::vector<serving::Workload> &mix);

/** Poisson arrivals over the paper's four [in, out] workloads. */
std::vector<serving::Request> paperMixTrace(const TraceConfig &cfg);

/**
 * Mixed-length traffic: prompt lengths log-uniform in [1K, 32K],
 * generation lengths log-uniform in [256, 8K] — the heterogeneous
 * regime where wave barriers hurt most.
 */
std::vector<serving::Request> mixedLengthTrace(const TraceConfig &cfg);

/**
 * Statically partition a trace across `shards` replicas, round-robin
 * in arrival order (request i of the sorted trace lands in shard
 * i % shards) — the offline-splitting baseline a dynamic
 * serving::Router is measured against. Ids and arrival times are
 * preserved; each shard stays sorted by arrival.
 * @throws std::invalid_argument on zero shards.
 */
std::vector<std::vector<serving::Request>> splitTrace(
    std::vector<serving::Request> trace, size_t shards);

/**
 * Inverse of splitTrace (and of any per-replica partition): interleave
 * the shards back into one arrival-sorted trace. Equal arrival
 * instants resolve by cursor position then shard index — the original
 * round-robin interleave — so split-then-merge round-trips exactly,
 * even when a run of identical arrivals wraps around the fleet. Each
 * shard must already be sorted by arrival.
 */
std::vector<serving::Request> mergeTraces(
    const std::vector<std::vector<serving::Request>> &shards);

} // namespace workload
} // namespace specontext
