/**
 * @file
 * LongWriter-style long-generation benchmark with deterministic proxy
 * judging (paper Fig. 9 / Table 4).
 *
 * The paper scores 10k-word generations with GPT-4o on six dimensions.
 * No judge LLM exists offline, so each dimension is replaced by a
 * deterministic proxy that is monotone in the same failure mode the
 * judge penalizes:
 *
 *  - relevance:  coverage of the prompt's plan keywords in the output;
 *  - accuracy:   teacher-forced top-1 agreement with full attention;
 *  - coherence:  bigram overlap with the full-attention generation;
 *  - clarity:    1 − repeated-trigram fraction (degenerate repetition);
 *  - breadth & depth: distinct-token ratio relative to full attention;
 *  - reading experience: exp(−mean KL) — distributional closeness.
 *
 * Scores land on the paper's 0-5 scale (each proxy in [0,1], ×5).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/live_engine.h"

namespace specontext {
namespace workload {

/** One long-generation writing task. */
struct LongWriterTask
{
    std::vector<int32_t> prompt;        ///< short instruction (~100 tok)
    std::vector<int32_t> plan_keywords; ///< topics the output should hit
    int64_t steps = 192;                ///< generation length scored
};

/** Deterministic task construction. */
LongWriterTask makeLongWriterTask(int64_t vocab, uint64_t seed,
                                  int64_t prompt_len = 96,
                                  int64_t steps = 192);

/** Six-dimension score, 0-5 each, plus the average. */
struct LongWriterScore
{
    double relevance = 0.0;
    double accuracy = 0.0;
    double coherence = 0.0;
    double clarity = 0.0;
    double breadth_depth = 0.0;
    double reading_experience = 0.0;
    double average = 0.0;
};

/**
 * Score a method's free-running output against the full-attention
 * output of the same task. `forced` carries the teacher-forced
 * fidelity metrics (top-1 agreement, KL); pass nullptr for the
 * full-attention row itself (agreement/KL are then exact by
 * definition).
 */
LongWriterScore scoreLongWriter(const LongWriterTask &task,
                                const std::vector<int32_t> &full_output,
                                const std::vector<int32_t> &method_output,
                                const core::LiveGenResult *forced);

} // namespace workload
} // namespace specontext
