/**
 * @file
 * FNV-1a 64-bit hashing — the repo's single copy of the offset-basis
 * and prime constants (no std::hash, whose values are
 * implementation-defined). fnv1a64() is deterministic for a given
 * byte sequence; callers hashing multi-byte values must fold them in
 * a fixed byte order themselves if they need endianness-independent
 * results (serving/router.cc does). Callers: the toy tokenizer's
 * word -> id mapping and the prefix-affinity router's sticky-home
 * choice for cold prompt families.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace specontext {

constexpr uint64_t kFnv1a64OffsetBasis = 1469598103934665603ull;
constexpr uint64_t kFnv1a64Prime = 1099511628211ull;

/** Fold `bytes[0..n)` into an FNV-1a 64 state (chainable via `h`). */
inline uint64_t
fnv1a64(const void *bytes, size_t n, uint64_t h = kFnv1a64OffsetBasis)
{
    const auto *p = static_cast<const unsigned char *>(bytes);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnv1a64Prime;
    }
    return h;
}

} // namespace specontext
