/**
 * @file
 * Minimal dense float32 tensor used by the model, retrieval and KV-cache
 * subsystems.
 *
 * The tensor is always contiguous and row-major. Copying a Tensor shares
 * the underlying storage (cheap, reference-counted); use clone() for a
 * deep copy. This mirrors the aliasing semantics of the frameworks the
 * paper builds on without dragging in a full autograd stack.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace specontext {

/** Dense, contiguous, row-major float32 tensor with shared storage. */
class Tensor
{
  public:
    /** Empty (rank-0, zero elements) tensor. */
    Tensor() = default;

    /** Allocate a zero-initialized tensor of the given shape. */
    explicit Tensor(std::vector<int64_t> shape);

    /** Zero-initialized tensor (alias of the shape constructor). */
    static Tensor zeros(std::vector<int64_t> shape);

    /** Tensor filled with a constant. */
    static Tensor full(std::vector<int64_t> shape, float value);

    /** Tensor of i.i.d. N(0, stddev^2) entries drawn from rng. */
    static Tensor randn(std::vector<int64_t> shape, Rng &rng,
                        float stddev = 1.0f);

    /** Tensor of uniform entries in [lo, hi). */
    static Tensor uniform(std::vector<int64_t> shape, Rng &rng,
                          float lo, float hi);

    /** 1-D tensor from explicit values. */
    static Tensor fromVector(const std::vector<float> &values);

    int ndim() const { return static_cast<int>(shape_.size()); }
    int64_t dim(int i) const;
    const std::vector<int64_t> &shape() const { return shape_; }
    int64_t numel() const { return numel_; }
    bool empty() const { return numel_ == 0; }

    float *data();
    const float *data() const;

    /** Element access for rank 1..4 tensors. */
    float &at(int64_t i);
    float at(int64_t i) const;
    float &at(int64_t i, int64_t j);
    float at(int64_t i, int64_t j) const;
    float &at(int64_t i, int64_t j, int64_t k);
    float at(int64_t i, int64_t j, int64_t k) const;
    float &at(int64_t i, int64_t j, int64_t k, int64_t l);
    float at(int64_t i, int64_t j, int64_t k, int64_t l) const;

    /** Pointer to the start of row i of a rank>=2 tensor. */
    float *row(int64_t i);
    const float *row(int64_t i) const;

    /** Number of elements in one row (product of dims 1..n-1). */
    int64_t rowSize() const;

    /**
     * Reinterpret the same storage with a new shape.
     * @pre product of new_shape equals numel().
     */
    Tensor reshape(std::vector<int64_t> new_shape) const;

    /** Deep copy into fresh storage. */
    Tensor clone() const;

    /** Overwrite every element with value. */
    void fill(float value);

    /** Copy src into this tensor. Shapes must have equal numel. */
    void copyFrom(const Tensor &src);

    /** Human-readable shape such as "[2, 3, 4]". */
    std::string shapeString() const;

  private:
    std::shared_ptr<std::vector<float>> storage_;
    std::vector<int64_t> shape_;
    int64_t offset_ = 0;
    int64_t numel_ = 0;

    void checkRank(int expected) const;
};

} // namespace specontext
