#include "tensor/topk.h"

#include <algorithm>
#include <numeric>

namespace specontext {

std::vector<int64_t>
topkIndices(const float *scores, int64_t n, int64_t k)
{
    std::vector<int64_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    if (k >= n) {
        return idx;
    }
    if (k <= 0)
        return {};
    // Deterministic tie-break: higher score first, then lower index.
    auto better = [scores](int64_t a, int64_t b) {
        if (scores[a] != scores[b])
            return scores[a] > scores[b];
        return a < b;
    };
    std::nth_element(idx.begin(), idx.begin() + k, idx.end(), better);
    idx.resize(k);
    std::sort(idx.begin(), idx.end());
    return idx;
}

std::vector<int64_t>
topkIndices(const std::vector<float> &scores, int64_t k)
{
    return topkIndices(scores.data(),
                       static_cast<int64_t>(scores.size()), k);
}

std::vector<int64_t>
sortedDifference(const std::vector<int64_t> &a, const std::vector<int64_t> &b)
{
    std::vector<int64_t> out;
    out.reserve(a.size());
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
    return out;
}

std::vector<int64_t>
sortedIntersection(const std::vector<int64_t> &a,
                   const std::vector<int64_t> &b)
{
    std::vector<int64_t> out;
    out.reserve(std::min(a.size(), b.size()));
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

double
jaccard(const std::vector<int64_t> &a, const std::vector<int64_t> &b)
{
    if (a.empty() && b.empty())
        return 1.0;
    const auto inter = sortedIntersection(a, b);
    const double uni = static_cast<double>(a.size() + b.size()) -
                       static_cast<double>(inter.size());
    return uni == 0.0 ? 1.0 : static_cast<double>(inter.size()) / uni;
}

double
overlapRate(const std::vector<int64_t> &prev, const std::vector<int64_t> &now)
{
    if (now.empty())
        return 1.0;
    const auto inter = sortedIntersection(prev, now);
    return static_cast<double>(inter.size()) /
           static_cast<double>(now.size());
}

} // namespace specontext
