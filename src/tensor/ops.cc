#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace specontext {
namespace ops {

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    if (a.ndim() != 2 || b.ndim() != 2 || a.dim(1) != b.dim(0))
        throw std::invalid_argument("matmul shape mismatch");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t p = 0; p < k; ++p) {
            const float av = pa[i * k + p];
            if (av == 0.0f)
                continue;
            const float *brow = pb + p * n;
            float *crow = pc + i * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmulTransposedB(const Tensor &a, const Tensor &b)
{
    if (a.ndim() != 2 || b.ndim() != 2 || a.dim(1) != b.dim(1))
        throw std::invalid_argument("matmulTransposedB shape mismatch");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    Tensor c({m, n});
    for (int64_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (int64_t j = 0; j < n; ++j)
            crow[j] = dot(arow, b.data() + j * k, k);
    }
    return c;
}

Tensor
matvec(const Tensor &w, const Tensor &x)
{
    if (w.ndim() != 2 || x.ndim() != 1 || w.dim(1) != x.dim(0))
        throw std::invalid_argument("matvec shape mismatch");
    const int64_t m = w.dim(0), k = w.dim(1);
    Tensor y({m});
    for (int64_t i = 0; i < m; ++i)
        y.at(i) = dot(w.data() + i * k, x.data(), k);
    return y;
}

Tensor
vecmat(const Tensor &x, const Tensor &w)
{
    if (x.ndim() != 1 || w.ndim() != 2 || x.dim(0) != w.dim(0))
        throw std::invalid_argument("vecmat shape mismatch");
    const int64_t m = w.dim(0), n = w.dim(1);
    Tensor y({n});
    float *py = y.data();
    for (int64_t i = 0; i < m; ++i) {
        const float xv = x.data()[i];
        if (xv == 0.0f)
            continue;
        const float *wrow = w.data() + i * n;
        for (int64_t j = 0; j < n; ++j)
            py[j] += xv * wrow[j];
    }
    return y;
}

void
softmaxInPlace(float *v, int64_t n)
{
    if (n <= 0)
        return;
    float mx = v[0];
    for (int64_t i = 1; i < n; ++i)
        mx = std::max(mx, v[i]);
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        v[i] = std::exp(v[i] - mx);
        sum += v[i];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t i = 0; i < n; ++i)
        v[i] *= inv;
}

void
softmaxLastDim(Tensor &t)
{
    if (t.ndim() == 0 || t.numel() == 0)
        return;
    const int64_t last = t.dim(t.ndim() - 1);
    const int64_t rows = t.numel() / last;
    for (int64_t r = 0; r < rows; ++r)
        softmaxInPlace(t.data() + r * last, last);
}

Tensor
rmsnorm(const Tensor &x, const Tensor &gain)
{
    if (x.ndim() != 1 || gain.ndim() != 1 || x.dim(0) != gain.dim(0))
        throw std::invalid_argument("rmsnorm shape mismatch");
    const int64_t n = x.dim(0);
    double ss = 0.0;
    for (int64_t i = 0; i < n; ++i)
        ss += static_cast<double>(x.data()[i]) * x.data()[i];
    const float inv = static_cast<float>(
        1.0 / std::sqrt(ss / static_cast<double>(n) + 1e-5));
    Tensor y({n});
    for (int64_t i = 0; i < n; ++i)
        y.at(i) = x.data()[i] * inv * gain.data()[i];
    return y;
}

Tensor
silu(const Tensor &x)
{
    Tensor y(x.shape());
    const float *px = x.data();
    float *py = y.data();
    for (int64_t i = 0; i < x.numel(); ++i)
        py[i] = px[i] / (1.0f + std::exp(-px[i]));
    return y;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    if (a.numel() != b.numel())
        throw std::invalid_argument("add size mismatch");
    Tensor c = a.clone();
    addInPlace(c, b);
    return c;
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    if (a.numel() != b.numel())
        throw std::invalid_argument("mul size mismatch");
    Tensor c(a.shape());
    for (int64_t i = 0; i < a.numel(); ++i)
        c.data()[i] = a.data()[i] * b.data()[i];
    return c;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    if (a.numel() != b.numel())
        throw std::invalid_argument("addInPlace size mismatch");
    float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i)
        pa[i] += pb[i];
}

float
dot(const float *a, const float *b, int64_t n)
{
    float s = 0.0f;
    for (int64_t i = 0; i < n; ++i)
        s += a[i] * b[i];
    return s;
}

void
applyRope(Tensor &qk, int64_t pos, float theta_base, float yarn_scale)
{
    if (qk.ndim() != 2)
        throw std::invalid_argument("applyRope expects (heads, head_dim)");
    const int64_t heads = qk.dim(0);
    const int64_t hd = qk.dim(1);
    if (hd % 2 != 0)
        throw std::invalid_argument("applyRope head_dim must be even");
    const double p = static_cast<double>(pos) / yarn_scale;
    for (int64_t h = 0; h < heads; ++h) {
        float *v = qk.row(h);
        for (int64_t i = 0; i < hd / 2; ++i) {
            const double freq =
                std::pow(static_cast<double>(theta_base),
                         -2.0 * static_cast<double>(i) /
                             static_cast<double>(hd));
            const double ang = p * freq;
            const float c = static_cast<float>(std::cos(ang));
            const float s = static_cast<float>(std::sin(ang));
            const float x0 = v[2 * i];
            const float x1 = v[2 * i + 1];
            v[2 * i] = x0 * c - x1 * s;
            v[2 * i + 1] = x0 * s + x1 * c;
        }
    }
}

int64_t
argmax(const Tensor &t)
{
    if (t.numel() == 0)
        throw std::invalid_argument("argmax of empty tensor");
    const float *p = t.data();
    int64_t best = 0;
    for (int64_t i = 1; i < t.numel(); ++i) {
        if (p[i] > p[best])
            best = i;
    }
    return best;
}

float
mean(const Tensor &t)
{
    if (t.numel() == 0)
        return 0.0f;
    double s = 0.0;
    for (int64_t i = 0; i < t.numel(); ++i)
        s += t.data()[i];
    return static_cast<float>(s / static_cast<double>(t.numel()));
}

float
cosineSimilarity(const Tensor &a, const Tensor &b)
{
    if (a.numel() != b.numel() || a.numel() == 0)
        throw std::invalid_argument("cosineSimilarity size mismatch");
    const float d = dot(a.data(), b.data(), a.numel());
    const float na = std::sqrt(dot(a.data(), a.data(), a.numel()));
    const float nb = std::sqrt(dot(b.data(), b.data(), b.numel()));
    if (na == 0.0f || nb == 0.0f)
        return 0.0f;
    return d / (na * nb);
}

float
klDivergenceFromLogits(const Tensor &p_logits, const Tensor &q_logits)
{
    if (p_logits.numel() != q_logits.numel())
        throw std::invalid_argument("KL size mismatch");
    Tensor p = p_logits.clone();
    Tensor q = q_logits.clone();
    softmaxInPlace(p.data(), p.numel());
    softmaxInPlace(q.data(), q.numel());
    double kl = 0.0;
    for (int64_t i = 0; i < p.numel(); ++i) {
        const double pi = std::max(1e-12f, p.data()[i]);
        const double qi = std::max(1e-12f, q.data()[i]);
        kl += pi * std::log(pi / qi);
    }
    return static_cast<float>(kl);
}

} // namespace ops
} // namespace specontext
