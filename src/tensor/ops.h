/**
 * @file
 * Kernel-level operations over Tensor: GEMM, softmax, normalization, RoPE,
 * activation functions and reductions. These are the CPU stand-ins for the
 * GPU kernels the paper's systems dispatch; the sim/ module prices them.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace specontext {
namespace ops {

/** C = A(mxk) * B(kxn). Shapes are validated. */
Tensor matmul(const Tensor &a, const Tensor &b);

/** C = A(mxk) * B^T where B is (nxk). Avoids materializing transposes. */
Tensor matmulTransposedB(const Tensor &a, const Tensor &b);

/** y = W(mxk) * x(k). */
Tensor matvec(const Tensor &w, const Tensor &x);

/** y(k) = x(m) * W(mxk): row-vector times matrix, used for projections. */
Tensor vecmat(const Tensor &x, const Tensor &w);

/** In-place softmax over the last dimension. */
void softmaxLastDim(Tensor &t);

/** Numerically stable softmax of a raw buffer of length n, in place. */
void softmaxInPlace(float *v, int64_t n);

/** RMSNorm of x (rank 1) with learned gain (same length), eps 1e-5. */
Tensor rmsnorm(const Tensor &x, const Tensor &gain);

/** SiLU (x * sigmoid(x)) elementwise, returns new tensor. */
Tensor silu(const Tensor &x);

/** Elementwise a + b. */
Tensor add(const Tensor &a, const Tensor &b);

/** Elementwise a * b. */
Tensor mul(const Tensor &a, const Tensor &b);

/** In-place a += b. */
void addInPlace(Tensor &a, const Tensor &b);

/** Dot product of two equal-length rank-1 buffers. */
float dot(const float *a, const float *b, int64_t n);

/**
 * Apply rotary position embedding in place to a (heads x head_dim) tensor
 * for absolute position pos. head_dim must be even. theta_base follows
 * Llama (10000). yarn_scale > 1 applies YaRN-style positional
 * interpolation (position divided by the scale), the training-free
 * context extension the paper uses for the DLM (Section 4.3).
 */
void applyRope(Tensor &qk, int64_t pos, float theta_base = 10000.0f,
               float yarn_scale = 1.0f);

/** Index of the maximum element of a rank-1 tensor. */
int64_t argmax(const Tensor &t);

/** Mean of all elements. */
float mean(const Tensor &t);

/** Cosine similarity between two equal-length rank-1 tensors. */
float cosineSimilarity(const Tensor &a, const Tensor &b);

/**
 * KL divergence D(p || q) between two softmax-normalized logit vectors.
 * Inputs are raw logits; the function normalizes internally.
 */
float klDivergenceFromLogits(const Tensor &p_logits, const Tensor &q_logits);

} // namespace ops
} // namespace specontext
