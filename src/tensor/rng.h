/**
 * @file
 * Deterministic random number generation for the whole project.
 *
 * All randomness in SpeContext flows from explicit 64-bit seeds through
 * this SplitMix64-based generator so that tensors, selections, timelines
 * and bench tables are bit-identical across platforms and runs.
 */
#pragma once

#include <cmath>
#include <cstdint>

namespace specontext {

/**
 * SplitMix64 pseudo-random generator with Gaussian and uniform helpers.
 *
 * Chosen over std::mt19937 + std::normal_distribution because the C++
 * standard does not pin down distribution algorithms, which would make
 * results differ across standard libraries.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value (SplitMix64). */
    uint64_t
    nextU64()
    {
        uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    uniformRange(float lo, float hi)
    {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    uniformInt(uint64_t n)
    {
        return nextU64() % n;
    }

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    float
    gaussian()
    {
        // Avoid log(0) by offsetting into (0, 1].
        double u1 = 1.0 - uniform();
        double u2 = uniform();
        double r = std::sqrt(-2.0 * std::log(u1));
        return static_cast<float>(r * std::cos(2.0 * M_PI * u2));
    }

    /** Gaussian with explicit mean and standard deviation. */
    float
    gaussian(float mean, float stddev)
    {
        return mean + stddev * gaussian();
    }

    /** Derive an independent child generator (for per-module seeding). */
    Rng
    fork()
    {
        return Rng(nextU64());
    }

  private:
    uint64_t state_;
};

} // namespace specontext
