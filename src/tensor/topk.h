/**
 * @file
 * Top-k selection and sorted-set utilities.
 *
 * Top-k over importance scores is the central primitive of every KV
 * retrieval algorithm in the paper (Quest, ClusterKV, ShadowKV and the
 * SpeContext retrieval head all end in a Top-K); the set-difference
 * helpers implement the elastic-loading arithmetic of Section 5.4
 * (S_now − S_last / S_last − S_now).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace specontext {

/**
 * Indices of the k largest entries of scores, in ascending index order.
 * Ties break toward the lower index so results are deterministic.
 * If k >= scores.size() all indices are returned.
 */
std::vector<int64_t> topkIndices(const std::vector<float> &scores,
                                 int64_t k);

/** Same as topkIndices but over a raw buffer. */
std::vector<int64_t> topkIndices(const float *scores, int64_t n, int64_t k);

/**
 * Elements of a not present in b. Both inputs must be sorted ascending.
 * This is the transfer set of elastic loading: load = S_now − S_last.
 */
std::vector<int64_t> sortedDifference(const std::vector<int64_t> &a,
                                      const std::vector<int64_t> &b);

/** Elements present in both sorted inputs. */
std::vector<int64_t> sortedIntersection(const std::vector<int64_t> &a,
                                        const std::vector<int64_t> &b);

/**
 * |a ∩ b| / |a ∪ b| for sorted inputs; 1.0 when both are empty.
 * Used to measure the adjacent-generation overlap of Figure 6(b).
 */
double jaccard(const std::vector<int64_t> &a, const std::vector<int64_t> &b);

/**
 * Overlap rate as the paper defines it: |a ∩ b| / |b| (fraction of the
 * current selection already resident); 1.0 when b is empty.
 */
double overlapRate(const std::vector<int64_t> &prev,
                   const std::vector<int64_t> &now);

} // namespace specontext
