#include "tensor/tensor.h"

#include <cassert>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace specontext {

namespace {

int64_t
productOf(const std::vector<int64_t> &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        if (d < 0)
            throw std::invalid_argument("negative tensor dimension");
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape))
{
    numel_ = productOf(shape_);
    storage_ = std::make_shared<std::vector<float>>(numel_, 0.0f);
}

Tensor
Tensor::zeros(std::vector<int64_t> shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::full(std::vector<int64_t> shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::randn(std::vector<int64_t> shape, Rng &rng, float stddev)
{
    Tensor t(std::move(shape));
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = rng.gaussian(0.0f, stddev);
    return t;
}

Tensor
Tensor::uniform(std::vector<int64_t> shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = rng.uniformRange(lo, hi);
    return t;
}

Tensor
Tensor::fromVector(const std::vector<float> &values)
{
    Tensor t({static_cast<int64_t>(values.size())});
    std::copy(values.begin(), values.end(), t.data());
    return t;
}

int64_t
Tensor::dim(int i) const
{
    if (i < 0 || i >= ndim())
        throw std::out_of_range("Tensor::dim index out of range");
    return shape_[i];
}

float *
Tensor::data()
{
    return storage_ ? storage_->data() + offset_ : nullptr;
}

const float *
Tensor::data() const
{
    return storage_ ? storage_->data() + offset_ : nullptr;
}

void
Tensor::checkRank(int expected) const
{
    if (ndim() != expected) {
        throw std::logic_error("Tensor rank mismatch: have " +
                               std::to_string(ndim()) + ", want " +
                               std::to_string(expected));
    }
}

float &
Tensor::at(int64_t i)
{
    checkRank(1);
    return data()[i];
}

float
Tensor::at(int64_t i) const
{
    checkRank(1);
    return data()[i];
}

float &
Tensor::at(int64_t i, int64_t j)
{
    checkRank(2);
    return data()[i * shape_[1] + j];
}

float
Tensor::at(int64_t i, int64_t j) const
{
    checkRank(2);
    return data()[i * shape_[1] + j];
}

float &
Tensor::at(int64_t i, int64_t j, int64_t k)
{
    checkRank(3);
    return data()[(i * shape_[1] + j) * shape_[2] + k];
}

float
Tensor::at(int64_t i, int64_t j, int64_t k) const
{
    checkRank(3);
    return data()[(i * shape_[1] + j) * shape_[2] + k];
}

float &
Tensor::at(int64_t i, int64_t j, int64_t k, int64_t l)
{
    checkRank(4);
    return data()[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}

float
Tensor::at(int64_t i, int64_t j, int64_t k, int64_t l) const
{
    checkRank(4);
    return data()[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}

int64_t
Tensor::rowSize() const
{
    if (ndim() < 1)
        return 0;
    int64_t n = 1;
    for (int i = 1; i < ndim(); ++i)
        n *= shape_[i];
    return n;
}

float *
Tensor::row(int64_t i)
{
    assert(ndim() >= 2);
    return data() + i * rowSize();
}

const float *
Tensor::row(int64_t i) const
{
    assert(ndim() >= 2);
    return data() + i * rowSize();
}

Tensor
Tensor::reshape(std::vector<int64_t> new_shape) const
{
    if (productOf(new_shape) != numel_)
        throw std::invalid_argument("reshape changes element count");
    Tensor t;
    t.storage_ = storage_;
    t.offset_ = offset_;
    t.numel_ = numel_;
    t.shape_ = std::move(new_shape);
    return t;
}

Tensor
Tensor::clone() const
{
    Tensor t(shape_);
    if (numel_ > 0)
        std::copy(data(), data() + numel_, t.data());
    return t;
}

void
Tensor::fill(float value)
{
    float *p = data();
    for (int64_t i = 0; i < numel_; ++i)
        p[i] = value;
}

void
Tensor::copyFrom(const Tensor &src)
{
    if (src.numel() != numel_)
        throw std::invalid_argument("copyFrom element count mismatch");
    if (numel_ > 0)
        std::copy(src.data(), src.data() + numel_, data());
}

std::string
Tensor::shapeString() const
{
    std::ostringstream os;
    os << "[";
    for (int i = 0; i < ndim(); ++i)
        os << (i ? ", " : "") << shape_[i];
    os << "]";
    return os.str();
}

} // namespace specontext
