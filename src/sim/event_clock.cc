#include "sim/event_clock.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace specontext {
namespace sim {

EventClock::EventClock(size_t lanes)
    : times_(lanes, std::numeric_limits<double>::infinity())
{
    if (lanes == 0)
        throw std::invalid_argument("EventClock: zero lanes");
}

double
EventClock::at(size_t lane) const
{
    return times_.at(lane);
}

void
EventClock::set(size_t lane, double t)
{
    if (std::isnan(t))
        throw std::invalid_argument("EventClock: NaN event time");
    times_.at(lane) = t;
}

size_t
EventClock::earliestLane() const
{
    size_t best = 0;
    for (size_t i = 1; i < times_.size(); ++i) {
        if (times_[i] < times_[best])
            best = i;
    }
    return best;
}

double
EventClock::earliest() const
{
    return times_[earliestLane()];
}

} // namespace sim
} // namespace specontext
