#include "sim/event_clock.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace specontext {
namespace sim {

EventClock::EventClock(size_t lanes)
    : times_(lanes, std::numeric_limits<double>::infinity()),
      retired_(lanes, false)
{
    if (lanes == 0)
        throw std::invalid_argument("EventClock: zero lanes");
}

double
EventClock::at(size_t lane) const
{
    return times_.at(lane);
}

void
EventClock::set(size_t lane, double t)
{
    if (std::isnan(t))
        throw std::invalid_argument("EventClock: NaN event time");
    if (retired_.at(lane))
        throw std::logic_error("EventClock: set on a retired lane");
    times_.at(lane) = t;
    if (counters_)
        counters_->add(lane_updates_, 1);
}

size_t
EventClock::addLane()
{
    const size_t lane = times_.size();
    times_.push_back(std::numeric_limits<double>::infinity());
    retired_.push_back(false);
    if (counters_) {
        lane_fires_.push_back(counters_->counter(
            "clock.lane" + std::to_string(lane) + ".fires"));
    }
    return lane;
}

void
EventClock::retireLane(size_t lane)
{
    times_.at(lane) = std::numeric_limits<double>::infinity();
    retired_.at(lane) = true;
}

size_t
EventClock::liveLanes() const
{
    size_t live = 0;
    for (const bool r : retired_) {
        if (!r)
            ++live;
    }
    return live;
}

void
EventClock::attachObservability(const obs::Observability &obs)
{
    counters_ = obs.counters;
    if (!counters_)
        return;
    rounds_ = counters_->counter("clock.rounds");
    lane_updates_ = counters_->counter("clock.lane_updates");
    lane_fires_.clear();
    lane_fires_.reserve(times_.size());
    for (size_t i = 0; i < times_.size(); ++i) {
        lane_fires_.push_back(counters_->counter(
            "clock.lane" + std::to_string(i) + ".fires"));
    }
}

size_t
EventClock::fire()
{
    const size_t lane = earliestLane();
    fireLane(lane);
    return lane;
}

void
EventClock::fireLane(size_t lane)
{
    if (counters_) {
        counters_->add(rounds_, 1);
        counters_->add(lane_fires_[lane], 1);
    }
}

size_t
EventClock::earliestLane() const
{
    size_t best = 0;
    for (size_t i = 1; i < times_.size(); ++i) {
        if (times_[i] < times_[best])
            best = i;
    }
    return best;
}

double
EventClock::earliest() const
{
    return times_[earliestLane()];
}

} // namespace sim
} // namespace specontext
