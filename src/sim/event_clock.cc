#include "sim/event_clock.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace specontext {
namespace sim {

EventClock::EventClock(size_t lanes)
    : times_(lanes, std::numeric_limits<double>::infinity())
{
    if (lanes == 0)
        throw std::invalid_argument("EventClock: zero lanes");
}

double
EventClock::at(size_t lane) const
{
    return times_.at(lane);
}

void
EventClock::set(size_t lane, double t)
{
    if (std::isnan(t))
        throw std::invalid_argument("EventClock: NaN event time");
    times_.at(lane) = t;
    if (counters_)
        counters_->add(lane_updates_, 1);
}

void
EventClock::attachObservability(const obs::Observability &obs)
{
    counters_ = obs.counters;
    if (!counters_)
        return;
    rounds_ = counters_->counter("clock.rounds");
    lane_updates_ = counters_->counter("clock.lane_updates");
    lane_fires_.clear();
    lane_fires_.reserve(times_.size());
    for (size_t i = 0; i < times_.size(); ++i) {
        lane_fires_.push_back(counters_->counter(
            "clock.lane" + std::to_string(i) + ".fires"));
    }
}

size_t
EventClock::fire()
{
    const size_t lane = earliestLane();
    if (counters_) {
        counters_->add(rounds_, 1);
        counters_->add(lane_fires_[lane], 1);
    }
    return lane;
}

size_t
EventClock::earliestLane() const
{
    size_t best = 0;
    for (size_t i = 1; i < times_.size(); ++i) {
        if (times_[i] < times_[best])
            best = i;
    }
    return best;
}

double
EventClock::earliest() const
{
    return times_[earliestLane()];
}

} // namespace sim
} // namespace specontext
