#include "sim/cost.h"

#include <algorithm>
#include <cmath>

namespace specontext {
namespace sim {

namespace {

constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

} // namespace

CostModel::CostModel(HardwareSpec hw, KernelBackend backend)
    : hw_(std::move(hw)), backend_(backend),
      eff_(BackendEfficiency::of(backend))
{
    gemm_flops_denom_ = hw_.gpu_tflops_fp16 * kTera * eff_.gemm;
    attn_mem_denom_ = hw_.hbm_bw_gbps * kGiga * eff_.attn_bw;
    hbm_denom_ = hw_.hbm_bw_gbps * kGiga;
    pcie_denom_ = hw_.pcie_bw_gbps * kGiga;
    dram_denom_ = hw_.cpu_dram_bw_gbps * kGiga;
    launch_s_ = hw_.kernel_launch_us * 1e-6;
    sync_s_ = hw_.sync_us * 1e-6;
}

double
CostModel::decodeStepSeconds(const model::ModelConfig &cfg, int64_t batch,
                             int64_t kv_len) const
{
    return decodeStepBreakdown(cfg, batch, kv_len).total;
}

DecodeBreakdown
CostModel::decodeStepBreakdown(const model::ModelConfig &cfg,
                               int64_t batch, int64_t kv_len) const
{
    const int64_t q_dim = cfg.q_heads * cfg.head_dim;
    const int64_t kv_dim =
        cfg.attention == model::AttentionKind::MLA
            ? cfg.mla_latent_dim
            : cfg.kv_heads * cfg.head_dim;

    // GEMMs per layer: q/k/v/o projections + SwiGLU (gate/up/down).
    double gemm = 0.0;
    gemm += gemmSeconds(batch, q_dim, cfg.hidden);        // Wq
    gemm += 2.0 * gemmSeconds(batch, kv_dim, cfg.hidden); // Wk, Wv
    gemm += gemmSeconds(batch, cfg.hidden, q_dim);        // Wo
    gemm += 2.0 * gemmSeconds(batch, cfg.ffn_hidden, cfg.hidden);
    gemm += gemmSeconds(batch, cfg.hidden, cfg.ffn_hidden);

    const double attn = attentionDecodeSeconds(
        batch, cfg.q_heads,
        cfg.attention == model::AttentionKind::MLA ? cfg.q_heads
                                                   : cfg.kv_heads,
        cfg.head_dim, kv_len);

    const double launches = eff_.launches_per_layer * launchSeconds();

    DecodeBreakdown b;
    b.gemm = cfg.layers * gemm;
    b.attn = cfg.layers * attn;
    b.launch = cfg.layers * launches;
    // LM head GEMM + weight streaming floor across the whole model
    // (weights are read once per step regardless of batch).
    b.lm_head = gemmSeconds(batch, cfg.vocab, cfg.hidden);
    const double weight_stream =
        double(cfg.parameterBytesFp16()) / (hw_.hbm_bw_gbps * kGiga);
    b.total = std::max(b.gemm + b.attn + b.launch + b.lm_head,
                       weight_stream);
    b.compute_fixed = b.gemm + b.launch + b.lm_head;
    return b;
}

double
CostModel::prefillSeconds(const model::ModelConfig &cfg, int64_t batch,
                          int64_t prompt_len) const
{
    const int64_t tokens = batch * prompt_len;
    const int64_t q_dim = cfg.q_heads * cfg.head_dim;
    const int64_t kv_dim =
        cfg.attention == model::AttentionKind::MLA
            ? cfg.mla_latent_dim
            : cfg.kv_heads * cfg.head_dim;

    double gemm = 0.0;
    gemm += gemmSeconds(tokens, q_dim, cfg.hidden);
    gemm += 2.0 * gemmSeconds(tokens, kv_dim, cfg.hidden);
    gemm += gemmSeconds(tokens, cfg.hidden, q_dim);
    gemm += 2.0 * gemmSeconds(tokens, cfg.ffn_hidden, cfg.hidden);
    gemm += gemmSeconds(tokens, cfg.hidden, cfg.ffn_hidden);

    // Causal attention: ~0.5 * S^2 positions per head.
    const double attn_flops = 4.0 * batch * cfg.q_heads * cfg.head_dim *
                              0.5 * double(prompt_len) * prompt_len;
    const double attn =
        attn_flops / (hw_.gpu_tflops_fp16 * kTera * eff_.gemm);

    return cfg.layers * (gemm + attn) +
           gemmSeconds(batch, cfg.vocab, cfg.hidden);
}

} // namespace sim
} // namespace specontext
