#include "sim/hardware.h"

namespace specontext {
namespace sim {

const char *
kernelBackendName(KernelBackend b)
{
    switch (b) {
      case KernelBackend::Eager: return "Eager";
      case KernelBackend::FlashAttention: return "FlashAttention";
      case KernelBackend::FlashInfer: return "FlashInfer";
    }
    return "?";
}

HardwareSpec
HardwareSpec::cloudA800()
{
    HardwareSpec hw;
    hw.name = "A800-80GB";
    hw.gpu_tflops_fp16 = 312.0;   // A100/A800 dense FP16 tensor peak
    hw.hbm_bw_gbps = 2039.0;      // HBM2e
    hw.pcie_bw_gbps = 24.0;       // PCIe 4.0 x16, effective
    hw.cpu_dram_bw_gbps = 200.0;  // 8-channel DDR4-3200
    hw.gpu_mem_bytes = 80LL << 30;
    hw.cpu_mem_bytes = 1008LL << 30;
    return hw;
}

HardwareSpec
HardwareSpec::edge4060()
{
    HardwareSpec hw;
    hw.name = "RTX4060-Laptop-8GB";
    hw.gpu_tflops_fp16 = 22.0;    // Ada laptop, sustained FP16
    hw.hbm_bw_gbps = 256.0;       // 128-bit GDDR6
    hw.pcie_bw_gbps = 12.0;       // PCIe 4.0 x8, effective
    hw.cpu_dram_bw_gbps = 60.0;   // dual-channel DDR5
    hw.gpu_mem_bytes = 8LL << 30;
    hw.cpu_mem_bytes = 24LL << 30;
    hw.kernel_launch_us = 8.0;    // consumer driver stack
    hw.sync_us = 20.0;
    return hw;
}

HardwareSpec
HardwareSpec::edge4060Capped4G()
{
    HardwareSpec hw = edge4060();
    hw.name = "RTX4060-Laptop-4GB-cap";
    hw.gpu_mem_bytes = 4LL << 30; // §7.3.2 limits usage to 4 GB
    return hw;
}

BackendEfficiency
BackendEfficiency::of(KernelBackend b)
{
    BackendEfficiency e;
    switch (b) {
      case KernelBackend::Eager:
        // Unfused PyTorch ops: materialized attention matrix, separate
        // softmax/matmul kernels, low effective bandwidth.
        e.gemm = 0.35;
        e.attn_bw = 0.12;
        e.launches_per_layer = 14.0;
        break;
      case KernelBackend::FlashAttention:
        e.gemm = 0.55;
        e.attn_bw = 0.45;
        e.launches_per_layer = 7.0;
        break;
      case KernelBackend::FlashInfer:
        // Fused decode attention with batched scheduling.
        e.gemm = 0.60;
        e.attn_bw = 0.80;
        e.launches_per_layer = 5.0;
        break;
    }
    return e;
}

} // namespace sim
} // namespace specontext
