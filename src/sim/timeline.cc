#include "sim/timeline.h"

#include <algorithm>
#include <stdexcept>

namespace specontext {
namespace sim {

Event
Timeline::enqueue(StreamId s, double seconds, const std::string &tag)
{
    if (seconds < 0.0)
        throw std::invalid_argument("negative duration enqueued");
    double &clk = clock_[index(s)];
    clk += seconds;
    by_tag_[tag] += seconds;
    return Event{clk};
}

void
Timeline::waitEvent(StreamId s, const Event &e)
{
    double &clk = clock_[index(s)];
    clk = std::max(clk, e.time);
}

void
Timeline::barrier()
{
    const double m = makespan();
    clock_[0] = m;
    clock_[1] = m;
}

double
Timeline::now(StreamId s) const
{
    return clock_[index(s)];
}

double
Timeline::makespan() const
{
    return std::max(clock_[0], clock_[1]);
}

double
Timeline::tagSeconds(const std::string &tag) const
{
    auto it = by_tag_.find(tag);
    return it == by_tag_.end() ? 0.0 : it->second;
}

void
Timeline::reset()
{
    clock_[0] = clock_[1] = 0.0;
    by_tag_.clear();
}

} // namespace sim
} // namespace specontext
