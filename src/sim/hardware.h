/**
 * @file
 * Hardware platform descriptions (paper Table 2) and kernel backends.
 *
 * No physical GPU exists in this environment, so these specs feed an
 * analytical cost model instead of real execution. The numbers are the
 * public datasheet values of the paper's two platforms; only *relative*
 * behaviour (who wins, where crossovers fall) is claimed downstream.
 */
#pragma once

#include <cstdint>
#include <string>

namespace specontext {
namespace sim {

/** Attention/GEMM kernel implementation families used as baselines. */
enum class KernelBackend {
    Eager,          ///< HuggingFace eager: unfused ops, many launches
    FlashAttention, ///< fused attention kernel
    FlashInfer,     ///< fused + batch-scheduled attention engine
};

const char *kernelBackendName(KernelBackend b);

/** One machine: GPU + host, with link bandwidths and capacities. */
struct HardwareSpec
{
    std::string name;
    double gpu_tflops_fp16 = 0.0;   ///< peak dense FP16 TFLOP/s
    double hbm_bw_gbps = 0.0;       ///< GPU memory bandwidth, GB/s
    double pcie_bw_gbps = 0.0;      ///< effective host<->device GB/s
    double cpu_dram_bw_gbps = 0.0;  ///< host memory bandwidth, GB/s
    int64_t gpu_mem_bytes = 0;      ///< usable HBM
    int64_t cpu_mem_bytes = 0;      ///< usable host DRAM
    double kernel_launch_us = 5.0;  ///< per-kernel launch latency
    double sync_us = 15.0;          ///< stream/device sync latency

    /**
     * Cloud platform of Table 2: A800 80GB (312 TFLOPS FP16, ~2 TB/s
     * HBM, PCIe 4.0 x16) + Xeon 8358 with 1008 GB DRAM.
     */
    static HardwareSpec cloudA800();

    /**
     * Edge platform of Table 2: RTX 4060 Laptop 8GB (~22 TFLOPS FP16,
     * 256 GB/s GDDR6, PCIe 4.0 x8) + i7-13650HX with 24 GB DRAM.
     */
    static HardwareSpec edge4060();

    /** Edge platform with the 4 GB cap used in §7.3.2. */
    static HardwareSpec edge4060Capped4G();

    /** Exact fieldwise equality (pricing memoization keys). */
    bool operator==(const HardwareSpec &o) const
    {
        return name == o.name &&
               gpu_tflops_fp16 == o.gpu_tflops_fp16 &&
               hbm_bw_gbps == o.hbm_bw_gbps &&
               pcie_bw_gbps == o.pcie_bw_gbps &&
               cpu_dram_bw_gbps == o.cpu_dram_bw_gbps &&
               gpu_mem_bytes == o.gpu_mem_bytes &&
               cpu_mem_bytes == o.cpu_mem_bytes &&
               kernel_launch_us == o.kernel_launch_us &&
               sync_us == o.sync_us;
    }
    bool operator!=(const HardwareSpec &o) const { return !(*this == o); }
};

/**
 * Fraction of peak a backend achieves, per operation class. These
 * constants encode the documented relative efficiency of the paper's
 * full-attention baselines; sources in hardware.cc.
 */
struct BackendEfficiency
{
    double gemm = 0.5;          ///< projection/FFN GEMM efficiency
    double attn_bw = 0.5;       ///< fraction of HBM bw for KV reads
    double launches_per_layer = 4.0; ///< kernel launches per layer

    static BackendEfficiency of(KernelBackend b);
};

} // namespace sim
} // namespace specontext
