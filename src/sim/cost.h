/**
 * @file
 * Analytical kernel cost model: maps operation shapes to seconds on a
 * HardwareSpec under a KernelBackend.
 *
 * Decode-phase LLM inference is memory-bound: per token, the GPU must
 * stream the model weights once per batch and each request's attended
 * KV cache once. Cost = max(compute time, memory time) + launch
 * overheads, the standard roofline treatment. All paper systems are
 * priced through this one model so comparisons stay apples-to-apples.
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "model/config.h"
#include "sim/hardware.h"

namespace specontext {
namespace sim {

/** Component times of one decode step (seconds). */
struct DecodeBreakdown
{
    double gemm = 0.0;    ///< projections + FFN GEMMs, all layers
    double attn = 0.0;    ///< KV-cache attention, all layers
    double launch = 0.0;  ///< kernel launch overheads
    double lm_head = 0.0; ///< final vocabulary projection
    double total = 0.0;   ///< max(sum, weight-streaming floor)
    /** gemm + launch + lm_head, pre-added in that order: the
     *  attention-independent part of a step, so per-round pricing
     *  adds one term instead of re-summing three. */
    double compute_fixed = 0.0;
};

/** Cost calculator bound to one hardware platform and kernel backend. */
class CostModel
{
  public:
    CostModel(HardwareSpec hw, KernelBackend backend);

    const HardwareSpec &hardware() const { return hw_; }
    KernelBackend backend() const { return backend_; }

    /** Seconds for a dense (m x k) * (k x n) FP16 GEMM. */
    double gemmSeconds(int64_t m, int64_t n, int64_t k) const;

    /**
     * Seconds of `flops` of GEMM-shaped compute at this backend's GEMM
     * efficiency, with no memory floor — the one conversion rule
     * shared by the systems' prompt-preprocessing passes.
     */
    double gemmFlopsSeconds(double flops) const;

    /**
     * Seconds of decode attention for one layer: `batch` requests each
     * reading `kv_len` cached tokens of kv_heads*head_dim K plus V at
     * FP16 (memory-bound path) with q_heads scoring compute.
     */
    double attentionDecodeSeconds(int64_t batch, int64_t q_heads,
                                  int64_t kv_heads, int64_t head_dim,
                                  int64_t kv_len) const;

    /**
     * Seconds of one full decode step (all layers) for a model
     * geometry: weight streaming + FFN/projection compute + attention
     * over per-request kv_len + per-layer launch overhead.
     */
    double decodeStepSeconds(const model::ModelConfig &cfg, int64_t batch,
                             int64_t kv_len) const;

    /** Same as decodeStepSeconds but with per-component detail. */
    DecodeBreakdown decodeStepBreakdown(const model::ModelConfig &cfg,
                                        int64_t batch,
                                        int64_t kv_len) const;

    /**
     * Seconds of prefill for prompt_len tokens (compute-bound GEMMs;
     * chunked, so launch overhead is amortized).
     */
    double prefillSeconds(const model::ModelConfig &cfg, int64_t batch,
                          int64_t prompt_len) const;

    /** Seconds to move bytes across PCIe (CPU DRAM <-> GPU HBM). */
    double pcieSeconds(int64_t bytes) const;

    /** Seconds to read bytes from host DRAM (CPU-side gather). */
    double dramReadSeconds(int64_t bytes) const;

    /**
     * Seconds of an importance-scoring pass: score_flops of dot
     * products plus a Top-K over n candidates, per retrieval call.
     */
    double retrievalSeconds(double score_flops, int64_t topk_n) const;

    /** Per-layer synchronization penalty of serialized dataflows. */
    double syncSeconds() const { return sync_s_; }

    /** Per-kernel launch latency. */
    double launchSeconds() const { return launch_s_; }

  private:
    HardwareSpec hw_;
    KernelBackend backend_;
    BackendEfficiency eff_;
    // Denominator products and fixed latencies, derived once at
    // construction with the same expressions (and evaluation order)
    // the per-call sites used to spell out, so every quotient is the
    // bit-identical double — this model prices tens of millions of
    // decode rounds per simulation and the re-multiplication was pure
    // overhead.
    double gemm_flops_denom_ = 1.0; ///< tflops * 1e12 * eff.gemm
    double attn_mem_denom_ = 1.0;   ///< hbm GB/s * 1e9 * eff.attn_bw
    double hbm_denom_ = 1.0;        ///< hbm GB/s * 1e9
    double pcie_denom_ = 1.0;       ///< pcie GB/s * 1e9
    double dram_denom_ = 1.0;       ///< cpu DRAM GB/s * 1e9
    double launch_s_ = 0.0;         ///< kernel_launch_us * 1e-6
    double sync_s_ = 0.0;           ///< sync_us * 1e-6
};

// Per-round pricing bodies live in the header so the systems' decode
// tails (other translation units, priced hundreds of millions of times
// per run) inline them instead of paying a call per term. Same
// expressions, same evaluation order as ever — inlining relocates the
// arithmetic, it does not reassociate it.

inline double
CostModel::gemmSeconds(int64_t m, int64_t n, int64_t k) const
{
    const double flops = 2.0 * m * n * k;
    const double compute = flops / gemm_flops_denom_;
    // Memory floor: stream A, B, C once at FP16.
    const double bytes = 2.0 * (double(m) * k + double(k) * n +
                                double(m) * n);
    const double memory = bytes / hbm_denom_;
    return std::max(compute, memory);
}

inline double
CostModel::gemmFlopsSeconds(double flops) const
{
    return flops / gemm_flops_denom_;
}

inline double
CostModel::attentionDecodeSeconds(int64_t batch, int64_t q_heads,
                                  int64_t kv_heads, int64_t head_dim,
                                  int64_t kv_len) const
{
    // Memory: each request reads K and V of kv_len tokens at FP16.
    const double kv_bytes =
        2.0 * 2.0 * batch * kv_len * kv_heads * head_dim;
    const double memory = kv_bytes / attn_mem_denom_;
    // Compute: QK^T and PV, 2 * 2*q_heads*head_dim flops per position.
    const double flops = 4.0 * batch * q_heads * head_dim * double(kv_len);
    const double compute = flops / gemm_flops_denom_;
    return std::max(memory, compute);
}

inline double
CostModel::pcieSeconds(int64_t bytes) const
{
    if (bytes <= 0)
        return 0.0;
    return double(bytes) / pcie_denom_ + launch_s_;
}

inline double
CostModel::dramReadSeconds(int64_t bytes) const
{
    if (bytes <= 0)
        return 0.0;
    return double(bytes) / dram_denom_;
}

inline double
CostModel::retrievalSeconds(double score_flops, int64_t topk_n) const
{
    const double score = score_flops / gemm_flops_denom_;
    // Top-K is bandwidth bound over the score array (4-byte scores),
    // with a small fixed kernel cost.
    const double topk =
        4.0 * double(topk_n) / hbm_denom_ + launch_s_;
    return score + topk + launch_s_;
}

} // namespace sim
} // namespace specontext
