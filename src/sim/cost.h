/**
 * @file
 * Analytical kernel cost model: maps operation shapes to seconds on a
 * HardwareSpec under a KernelBackend.
 *
 * Decode-phase LLM inference is memory-bound: per token, the GPU must
 * stream the model weights once per batch and each request's attended
 * KV cache once. Cost = max(compute time, memory time) + launch
 * overheads, the standard roofline treatment. All paper systems are
 * priced through this one model so comparisons stay apples-to-apples.
 */
#pragma once

#include <cstdint>

#include "model/config.h"
#include "sim/hardware.h"

namespace specontext {
namespace sim {

/** Component times of one decode step (seconds). */
struct DecodeBreakdown
{
    double gemm = 0.0;    ///< projections + FFN GEMMs, all layers
    double attn = 0.0;    ///< KV-cache attention, all layers
    double launch = 0.0;  ///< kernel launch overheads
    double lm_head = 0.0; ///< final vocabulary projection
    double total = 0.0;   ///< max(sum, weight-streaming floor)
};

/** Cost calculator bound to one hardware platform and kernel backend. */
class CostModel
{
  public:
    CostModel(HardwareSpec hw, KernelBackend backend);

    const HardwareSpec &hardware() const { return hw_; }
    KernelBackend backend() const { return backend_; }

    /** Seconds for a dense (m x k) * (k x n) FP16 GEMM. */
    double gemmSeconds(int64_t m, int64_t n, int64_t k) const;

    /**
     * Seconds of `flops` of GEMM-shaped compute at this backend's GEMM
     * efficiency, with no memory floor — the one conversion rule
     * shared by the systems' prompt-preprocessing passes.
     */
    double gemmFlopsSeconds(double flops) const;

    /**
     * Seconds of decode attention for one layer: `batch` requests each
     * reading `kv_len` cached tokens of kv_heads*head_dim K plus V at
     * FP16 (memory-bound path) with q_heads scoring compute.
     */
    double attentionDecodeSeconds(int64_t batch, int64_t q_heads,
                                  int64_t kv_heads, int64_t head_dim,
                                  int64_t kv_len) const;

    /**
     * Seconds of one full decode step (all layers) for a model
     * geometry: weight streaming + FFN/projection compute + attention
     * over per-request kv_len + per-layer launch overhead.
     */
    double decodeStepSeconds(const model::ModelConfig &cfg, int64_t batch,
                             int64_t kv_len) const;

    /** Same as decodeStepSeconds but with per-component detail. */
    DecodeBreakdown decodeStepBreakdown(const model::ModelConfig &cfg,
                                        int64_t batch,
                                        int64_t kv_len) const;

    /**
     * Seconds of prefill for prompt_len tokens (compute-bound GEMMs;
     * chunked, so launch overhead is amortized).
     */
    double prefillSeconds(const model::ModelConfig &cfg, int64_t batch,
                          int64_t prompt_len) const;

    /** Seconds to move bytes across PCIe (CPU DRAM <-> GPU HBM). */
    double pcieSeconds(int64_t bytes) const;

    /** Seconds to read bytes from host DRAM (CPU-side gather). */
    double dramReadSeconds(int64_t bytes) const;

    /**
     * Seconds of an importance-scoring pass: score_flops of dot
     * products plus a Top-K over n candidates, per retrieval call.
     */
    double retrievalSeconds(double score_flops, int64_t topk_n) const;

    /** Per-layer synchronization penalty of serialized dataflows. */
    double syncSeconds() const { return hw_.sync_us * 1e-6; }

    /** Per-kernel launch latency. */
    double launchSeconds() const { return hw_.kernel_launch_us * 1e-6; }

  private:
    HardwareSpec hw_;
    KernelBackend backend_;
    BackendEfficiency eff_;
};

} // namespace sim
} // namespace specontext
