/**
 * @file
 * N-lane event clock: the generalization of the two-stream Timeline's
 * scheduling idea to a fleet of independently advancing replicas.
 *
 * Where sim::Timeline interleaves exactly two CUDA streams inside one
 * device, EventClock tracks one "next event" instant per lane (one
 * lane per cluster replica) and answers the discrete-event scheduler's
 * question: which lane fires next (earliest instant, ties toward the
 * lowest lane — bit-reproducible). Lanes may be +infinity ("idle, no
 * event booked"), which earliest() reports when every lane is idle.
 *
 * Lanes are elastic: addLane() books a new lane at the end of the
 * index space (an autoscaled replica attaching mid-run) and
 * retireLane() permanently idles one (a drained replica detaching).
 * Retired lanes keep their slot — indices of surviving lanes never
 * shift — so the earliest-lane scan visits lanes in the same order
 * before and after a retirement and tie-breaks stay bit-reproducible.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "obs/obs.h"

namespace specontext {
namespace sim {

/** Per-lane next-event times with deterministic earliest-lane picks. */
class EventClock
{
  public:
    /** All lanes start at +infinity (idle).
     *  @throws std::invalid_argument on zero lanes. */
    explicit EventClock(size_t lanes);

    size_t lanes() const { return times_.size(); }

    /** Next-event instant of `lane` (+infinity when idle). */
    double at(size_t lane) const;

    /** Book `lane`'s next event at `t` (+infinity to mark it idle).
     *  NaN is rejected — it would poison the min/max scans.
     *  @throws std::logic_error on a retired lane (a detached replica
     *  can never book events again). */
    void set(size_t lane, double t);

    /**
     * Attach a new lane (idle, +infinity) at the end of the index
     * space and return its index. Existing lanes — including retired
     * ones, whose slots are kept — are not reindexed, so bookings and
     * tie-break order survive the growth. With a counter registry
     * attached the new lane's fire counter is resolved immediately.
     */
    size_t addLane();

    /**
     * Permanently idle `lane`: its instant becomes +infinity, set() on
     * it throws, and it can never win a round again. The slot is kept
     * (indices are stable; earliestLane()'s scan order is unchanged),
     * so tie-breaks among surviving lanes are exactly what they were
     * with the lane merely idle. Idempotent.
     */
    void retireLane(size_t lane);

    /** True when `lane` has been retired. */
    bool laneRetired(size_t lane) const { return retired_.at(lane); }

    /** Lanes not yet retired. */
    size_t liveLanes() const;

    /** Lane with the earliest booked event; ties break toward the
     *  lowest lane index. Defined (lane 0) even when all lanes are
     *  idle — check earliest() for infinity first. */
    size_t earliestLane() const;

    /** Earliest booked instant (+infinity when every lane is idle). */
    double earliest() const;

    /**
     * Publish scheduling counters into `obs`: clock.rounds (fire()
     * calls — event-loop rounds resolved), clock.lane_updates (set()
     * calls) and clock.lane<i>.fires (how often each lane won the
     * round — fleet balance at a glance). No-op without a registry.
     */
    void attachObservability(const obs::Observability &obs);

    /** earliestLane() plus round accounting — the event loop's "this
     *  lane fires next" pick. */
    size_t fire();

    /** Round accounting for a lane the caller already picked with
     *  earliestLane() — fire() without the redundant rescan, for an
     *  event loop that needed the earliest instant anyway. */
    void fireLane(size_t lane);

  private:
    std::vector<double> times_;
    std::vector<bool> retired_;

    /** Always-on scheduling counters (null = observability off). */
    obs::CounterRegistry *counters_ = nullptr;
    obs::CounterRegistry::Handle rounds_ = 0;
    obs::CounterRegistry::Handle lane_updates_ = 0;
    std::vector<obs::CounterRegistry::Handle> lane_fires_;
};

} // namespace sim
} // namespace specontext
