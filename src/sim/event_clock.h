/**
 * @file
 * N-lane event clock: the generalization of the two-stream Timeline's
 * scheduling idea to a fleet of independently advancing replicas.
 *
 * Where sim::Timeline interleaves exactly two CUDA streams inside one
 * device, EventClock tracks one "next event" instant per lane (one
 * lane per cluster replica) and answers the discrete-event scheduler's
 * question: which lane fires next (earliest instant, ties toward the
 * lowest lane — bit-reproducible). Lanes may be +infinity ("idle, no
 * event booked"), which earliest() reports when every lane is idle.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "obs/obs.h"

namespace specontext {
namespace sim {

/** Per-lane next-event times with deterministic earliest-lane picks. */
class EventClock
{
  public:
    /** All lanes start at +infinity (idle).
     *  @throws std::invalid_argument on zero lanes. */
    explicit EventClock(size_t lanes);

    size_t lanes() const { return times_.size(); }

    /** Next-event instant of `lane` (+infinity when idle). */
    double at(size_t lane) const;

    /** Book `lane`'s next event at `t` (+infinity to mark it idle).
     *  NaN is rejected — it would poison the min/max scans. */
    void set(size_t lane, double t);

    /** Lane with the earliest booked event; ties break toward the
     *  lowest lane index. Defined (lane 0) even when all lanes are
     *  idle — check earliest() for infinity first. */
    size_t earliestLane() const;

    /** Earliest booked instant (+infinity when every lane is idle). */
    double earliest() const;

    /**
     * Publish scheduling counters into `obs`: clock.rounds (fire()
     * calls — event-loop rounds resolved), clock.lane_updates (set()
     * calls) and clock.lane<i>.fires (how often each lane won the
     * round — fleet balance at a glance). No-op without a registry.
     */
    void attachObservability(const obs::Observability &obs);

    /** earliestLane() plus round accounting — the event loop's "this
     *  lane fires next" pick. */
    size_t fire();

  private:
    std::vector<double> times_;

    /** Always-on scheduling counters (null = observability off). */
    obs::CounterRegistry *counters_ = nullptr;
    obs::CounterRegistry::Handle rounds_ = 0;
    obs::CounterRegistry::Handle lane_updates_ = 0;
    std::vector<obs::CounterRegistry::Handle> lane_fires_;
};

} // namespace sim
} // namespace specontext
