#include "sim/memory_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace specontext {
namespace sim {

MemoryModel::MemoryModel(MemoryModelInputs in)
    : in_(std::move(in))
{
    in_.llm.validate();
    in_.dlm.validate();
    if (in_.requests <= 0 || in_.budget < 0 || in_.gpu_mem_bytes <= 0)
        throw std::invalid_argument("MemoryModel: invalid workload inputs");
    const int64_t m_d =
        in_.pruned_head
            ? 2 * model::prunedRetrievalHeadParams(in_.llm)
            : in_.dlm.parameterBytesFp16();
    const double m = in_.llm.parameterBytesFp16() + m_d;
    model_bytes_ = static_cast<int64_t>((1.0 + in_.runtime_fraction) * m);
}

int64_t
MemoryModel::kvCoefficientFor(int64_t requests) const
{
    // Coefficient 4 of Eq. 6: FP16 K (2 bytes) + FP16 V (2 bytes),
    // times R requests, H KV heads, D head dim.
    return 4 * requests * in_.llm.kv_heads * in_.llm.head_dim;
}

int64_t
MemoryModel::mAllBytes(int64_t s) const
{
    return mAllBytesFor(in_.requests, s);
}

int64_t
MemoryModel::mPartBytes(int64_t s, int64_t gpu_layers) const
{
    return mPartBytesFor(in_.requests, s, gpu_layers);
}

std::vector<int64_t>
MemoryModel::thresholds() const
{
    // Algorithm 1. One deliberate correction to the printed
    // pseudocode: the paper's line 3 prices the offloaded layers'
    // staging buffers as (i*B)*R*H*D, omitting the FP16 K+V
    // coefficient 4 that every other KV term carries (almost certainly
    // a typo — the buffers hold K and V at 2 bytes each). We keep the
    // coefficient so the thresholds are exactly the inversion of
    // Eq. 7, which Algorithm 2's fit invariant depends on.
    const int64_t l = in_.llm.layers;
    const int64_t alpha = in_.llm.groups();
    const int64_t rhd =
        in_.requests * in_.llm.kv_heads * in_.llm.head_dim;
    const int64_t free_bytes = in_.gpu_mem_bytes - modelBytes();

    std::vector<int64_t> st(l + 1, 0);
    st[0] = std::max<int64_t>(0, free_bytes / (4 * rhd * (l + 1 + alpha)));
    for (int64_t i = 1; i <= l; ++i) {
        const int64_t numer = free_bytes - 4 * i * in_.budget * rhd;
        const int64_t denom = 4 * (l + 1 + alpha - i) * rhd;
        st[i] = std::max<int64_t>(0, numer / denom);
    }
    return st;
}

int64_t
MemoryModel::maxGpuLayers(int64_t s) const
{
    for (int64_t g = in_.llm.layers; g >= 0; --g) {
        if (mPartBytes(s, g) <= in_.gpu_mem_bytes)
            return g;
    }
    return -1;
}

int64_t
MemoryModel::allResidentMaxTokens() const
{
    // mPartBytes(s, layers) = modelBytes() + kvCoef * resident * s
    // (l_cpu == 0, so no staging-buffer term); with every quantity a
    // non-negative integer the fit test inverts to a floor division.
    const int64_t resident = in_.llm.layers + 1 + in_.llm.groups();
    const int64_t denom = kvCoefficientFor(in_.requests) * resident;
    const int64_t free_bytes = in_.gpu_mem_bytes - modelBytes();
    return free_bytes < 0 ? -1 : free_bytes / denom;
}

bool
MemoryModel::allFitsOnGpu(int64_t s) const
{
    return mAllBytes(s) <= in_.gpu_mem_bytes;
}

int64_t
MemoryModel::mAllBytesFor(int64_t requests, int64_t s) const
{
    if (requests <= 0)
        throw std::invalid_argument("mAllBytesFor: non-positive requests");
    const int64_t l_eff = in_.llm.layers + 1 + in_.llm.groups();
    return modelBytes() + kvCoefficientFor(requests) * l_eff * s;
}

int64_t
MemoryModel::mPartBytesFor(int64_t requests, int64_t s,
                           int64_t gpu_layers) const
{
    if (requests <= 0)
        throw std::invalid_argument("mPartBytesFor: non-positive requests");
    if (gpu_layers < 0 || gpu_layers > in_.llm.layers)
        throw std::invalid_argument("gpu_layers out of range");
    const int64_t l_cpu = in_.llm.layers - gpu_layers;
    const int64_t resident = gpu_layers + 1 + in_.llm.groups();
    return modelBytes() + kvCoefficientFor(requests) *
                              (resident * s + l_cpu * in_.budget);
}

int64_t
MemoryModel::headroomBytes(int64_t requests, int64_t s) const
{
    return in_.gpu_mem_bytes - mAllBytesFor(requests, s);
}

bool
MemoryModel::fitsWithOffload(int64_t requests, int64_t s) const
{
    // mPartBytesFor is monotone in gpu_layers (each offloaded layer
    // trades S resident tokens for a B-token staging buffer, so the
    // slope's sign is fixed by s - budget); the minimum over offload
    // levels is at one of the two ends.
    return std::min(mPartBytesFor(requests, s, 0),
                    mAllBytesFor(requests, s)) <= in_.gpu_mem_bytes;
}

int64_t
MemoryModel::maxConcurrentRequests(int64_t s, bool allow_offload) const
{
    if (s <= 0)
        throw std::invalid_argument(
            "maxConcurrentRequests: non-positive length");
    // KV terms are linear in R, so binary search the feasibility edge.
    auto fits = [&](int64_t r) {
        return allow_offload ? fitsWithOffload(r, s)
                             : mAllBytesFor(r, s) <= in_.gpu_mem_bytes;
    };
    if (!fits(1))
        return 0;
    int64_t lo = 1, hi = 2;
    while (fits(hi)) {
        lo = hi;
        hi *= 2;
        if (hi > (int64_t{1} << 30))
            return lo; // degenerate geometry; avoid overflow
    }
    while (lo + 1 < hi) {
        const int64_t mid = lo + (hi - lo) / 2;
        (fits(mid) ? lo : hi) = mid;
    }
    return lo;
}

} // namespace sim
} // namespace specontext
