/**
 * @file
 * Theoretical memory overhead model of paper Section 6: Equations 6-8
 * and the compile-time sequence-length threshold calculation of
 * Algorithm 1.
 *
 * Symbols follow Table 1 of the paper: M_O/M_D model sizes, L layers,
 * D head dim, H KV heads, S sequence length, B retrieval budget,
 * R requests, alpha query-head groups, Mem_GPU the GPU capacity.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/config.h"
#include "sim/hardware.h"

namespace specontext {
namespace sim {

/** Inputs of the memory model (paper Table 1). */
struct MemoryModelInputs
{
    model::ModelConfig llm;  ///< original LLM geometry (M_O, L, H, D, alpha)
    model::ModelConfig dlm;  ///< DLM geometry (M_D)
    int64_t requests = 1;    ///< R
    int64_t budget = 2048;   ///< B
    int64_t gpu_mem_bytes = 0; ///< Mem_GPU
    /**
     * Runtime buffer fraction of model size; the paper surveys 20-30 %
     * and selects 30 % (the 1.3 coefficient of Eq. 6).
     */
    double runtime_fraction = 0.3;
    /**
     * When true (deployment reality), M_D is the *pruned* retrieval
     * head (Q/K projections + norm, embedding shared with the LLM)
     * rather than the full DLM — what SpeContext actually loads (§4.3).
     */
    bool pruned_head = true;
};

/** Eq. 6-8 and Algorithm 1. */
class MemoryModel
{
  public:
    explicit MemoryModel(MemoryModelInputs in);

    const MemoryModelInputs &inputs() const { return in_; }

    /** Weight + runtime-buffer bytes: 1.3 (M_O + M_D). Derived once
     *  in the constructor — every footprint query (and the
     *  maxGpuLayers descent, which calls mPartBytes per candidate
     *  placement) reads the cached value. */
    int64_t modelBytes() const { return model_bytes_; }

    /**
     * Eq. 6: total bytes with the whole KV cache on GPU at sequence
     * length S: 1.3(M_O+M_D) + 4 R (L+1+alpha) S H D.
     */
    int64_t mAllBytes(int64_t s) const;

    /**
     * Eq. 7: bytes with only `gpu_layers` layers of KV on GPU, the
     * remaining layers offloaded with a budget-sized staging buffer:
     * 1.3(M_O+M_D) + 4R[(L_GPU+1+alpha)S + L_CPU*B] H D.
     */
    int64_t mPartBytes(int64_t s, int64_t gpu_layers) const;

    /**
     * Algorithm 1: thresholds S_T[0..L]. S_T[i] is the largest sequence
     * length that fits with i layers offloaded to CPU. Values are
     * clamped to >= 0 (a negative analytic threshold means the
     * configuration never fits at that offload level).
     */
    std::vector<int64_t> thresholds() const;

    /**
     * Eq. 8: the largest L_GPU such that mPartBytes(s, L_GPU) fits in
     * gpu_mem_bytes; -1 when not even full offload fits.
     */
    int64_t maxGpuLayers(int64_t s) const;

    /**
     * Largest uniform length S at which every layer stays resident —
     * the exact integer inversion of mPartBytes(s, layers) <=
     * gpu_mem_bytes, so `s <= allResidentMaxTokens()` iff
     * maxGpuLayers(s) == layers. -1 when the weights alone exceed the
     * GPU (no S qualifies). Lets a decode loop whose lengths grow one
     * token per round replace the per-round placement descent with a
     * single comparison while the batch is comfortably resident.
     */
    int64_t allResidentMaxTokens() const;

    /** True when Eq. 6 fits entirely on the GPU at length S. */
    bool allFitsOnGpu(int64_t s) const;

    // ---- Headroom queries (admission control) -----------------------
    //
    // The serving layer asks "would R concurrent requests, each grown
    // to length S, still fit?" before admitting a waiting request.
    // These variants take the request count explicitly instead of the
    // constructor's in_.requests so one model instance can price any
    // candidate batch.

    /** Eq. 6 with an explicit request count. */
    int64_t mAllBytesFor(int64_t requests, int64_t s) const;

    /** Eq. 7 with an explicit request count. */
    int64_t mPartBytesFor(int64_t requests, int64_t s,
                          int64_t gpu_layers) const;

    /**
     * GPU bytes left over after Eq. 6 at (requests, s); negative when
     * the configuration oversubscribes the device.
     */
    int64_t headroomBytes(int64_t requests, int64_t s) const;

    /**
     * True when some offload level 0..L fits at (requests, s) — the
     * Eq. 8 feasibility test the adaptive placement relies on.
     */
    bool fitsWithOffload(int64_t requests, int64_t s) const;

    /**
     * Largest request count R such that R requests of length s fit:
     * under Eq. 6 when !allow_offload, under best-case Eq. 7 when
     * allow_offload. 0 when not even a single request fits.
     */
    int64_t maxConcurrentRequests(int64_t s, bool allow_offload) const;

  private:
    MemoryModelInputs in_;
    int64_t model_bytes_ = 0; ///< pure function of in_, see ctor

    /** 4 R H D: bytes per (layer-equivalent, token) of KV cache for
     *  an explicit request count. */
    int64_t kvCoefficientFor(int64_t requests) const;
};

} // namespace sim
} // namespace specontext
