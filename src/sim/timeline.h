/**
 * @file
 * Two-stream discrete-event timeline: the CUDA-stream abstraction the
 * asynchronous prefetch dataflow (paper §5, Fig. 2(c)-C2, Fig. 7) runs
 * on. A compute stream executes kernels while a copy stream moves KV
 * cache across PCIe; events let one stream wait on work issued to the
 * other, exactly like cudaStreamWaitEvent.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace specontext {
namespace sim {

/** Identifier of a simulated stream. */
enum class StreamId { Compute = 0, Copy = 1 };

/** A point in simulated time another stream may wait on. */
struct Event
{
    double time = 0.0;
};

/** Deterministic two-stream timeline with per-tag time accounting. */
class Timeline
{
  public:
    Timeline() = default;

    /**
     * Enqueue `seconds` of work on stream s; the work starts when the
     * stream becomes free. Returns the completion event. `tag`
     * aggregates durations for breakdown reporting (e.g. "attn",
     * "kv_transfer").
     */
    Event enqueue(StreamId s, double seconds, const std::string &tag);

    /** Make stream s wait until event e has completed. */
    void waitEvent(StreamId s, const Event &e);

    /** Device-wide barrier: both streams advance to the max clock. */
    void barrier();

    /** Current clock of a stream. */
    double now(StreamId s) const;

    /** Completion time of everything enqueued so far. */
    double makespan() const;

    /** Total busy seconds accumulated under each tag. */
    const std::map<std::string, double> &byTag() const { return by_tag_; }

    /** Busy seconds of one tag (0 if never used). */
    double tagSeconds(const std::string &tag) const;

    /** Reset clocks and accounting. */
    void reset();

  private:
    double clock_[2] = {0.0, 0.0};
    std::map<std::string, double> by_tag_;

    static int index(StreamId s) { return static_cast<int>(s); }
};

} // namespace sim
} // namespace specontext
