#include "kvcache/kv_cache.h"

#include <cassert>
#include <stdexcept>

namespace specontext {
namespace kv {

LayerKVCache::LayerKVCache(int64_t kv_heads, int64_t head_dim,
                           bool latent_mode, int64_t latent_dim)
    : kv_heads_(kv_heads), head_dim_(head_dim), latent_mode_(latent_mode),
      latent_dim_(latent_dim)
{
    if (latent_mode_ && latent_dim_ <= 0)
        throw std::invalid_argument("latent mode requires latent_dim > 0");
}

int64_t
LayerKVCache::kStride() const
{
    return latent_mode_ ? latent_dim_ : kv_heads_ * head_dim_;
}

int64_t
LayerKVCache::vStride() const
{
    return latent_mode_ ? 0 : kv_heads_ * head_dim_;
}

void
LayerKVCache::append(const float *k, const float *v)
{
    k_.insert(k_.end(), k, k + kStride());
    if (!latent_mode_) {
        assert(v != nullptr);
        v_.insert(v_.end(), v, v + vStride());
    }
    ++size_;
}

const float *
LayerKVCache::keyAt(int64_t pos, int64_t head) const
{
    assert(!latent_mode_);
    assert(pos >= 0 && pos < size_ && head >= 0 && head < kv_heads_);
    return k_.data() + pos * kStride() + head * head_dim_;
}

const float *
LayerKVCache::valueAt(int64_t pos, int64_t head) const
{
    assert(!latent_mode_);
    assert(pos >= 0 && pos < size_ && head >= 0 && head < kv_heads_);
    return v_.data() + pos * vStride() + head * head_dim_;
}

const float *
LayerKVCache::latentAt(int64_t pos) const
{
    assert(latent_mode_);
    assert(pos >= 0 && pos < size_);
    return k_.data() + pos * latent_dim_;
}

void
LayerKVCache::clear()
{
    k_.clear();
    v_.clear();
    size_ = 0;
}

void
LayerKVCache::truncate(int64_t new_size)
{
    if (new_size >= size_ || new_size < 0)
        return;
    k_.resize(new_size * kStride());
    v_.resize(new_size * vStride());
    size_ = new_size;
}

int64_t
LayerKVCache::bytesFp16() const
{
    return 2 * size_ * (kStride() + vStride());
}

KVCacheSet::KVCacheSet(const model::ModelConfig &config)
{
    config.validate();
    const bool latent = config.attention == model::AttentionKind::MLA;
    layers_.reserve(config.layers);
    for (int64_t i = 0; i < config.layers; ++i) {
        layers_.emplace_back(config.kv_heads, config.head_dim, latent,
                             config.mla_latent_dim);
    }
}

int64_t
KVCacheSet::sequenceLength() const
{
    return layers_.empty() ? 0 : layers_.front().size();
}

void
KVCacheSet::clear()
{
    for (auto &l : layers_)
        l.clear();
}

void
KVCacheSet::truncate(int64_t new_size)
{
    for (auto &l : layers_)
        l.truncate(new_size);
}

int64_t
KVCacheSet::bytesFp16() const
{
    int64_t total = 0;
    for (const auto &l : layers_)
        total += l.bytesFp16();
    return total;
}

} // namespace kv
} // namespace specontext
