/**
 * @file
 * Per-layer memory-tier placement of the KV cache.
 *
 * The paper's adaptive memory management (§6) keeps the KV cache of the
 * first L_GPU layers resident in GPU HBM and offloads the KV cache of
 * the last L_CPU layers to CPU DRAM, reserving only a budget-sized GPU
 * staging buffer for offloaded layers. This header tracks that
 * placement and answers capacity questions; the actual byte movement is
 * priced by the sim/ timeline.
 */
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace specontext {
namespace kv {

/** Memory tier of one layer's KV cache. */
enum class Tier { GPU, CPU };

/** Placement of every layer's KV cache across the two tiers. */
class TierPlacement
{
  public:
    /** All layers start on GPU (paper Alg. 2 line 1). */
    explicit TierPlacement(int64_t layers)
        : tiers_(layers, Tier::GPU)
    {
        if (layers <= 0)
            throw std::invalid_argument("layers must be positive");
    }

    int64_t layers() const { return static_cast<int64_t>(tiers_.size()); }

    Tier tierOf(int64_t layer) const { return tiers_.at(layer); }

    bool onGpu(int64_t layer) const { return tierOf(layer) == Tier::GPU; }

    /** Number of layers resident on GPU (L_GPU in Table 1). */
    int64_t
    gpuLayers() const
    {
        int64_t n = 0;
        for (Tier t : tiers_)
            n += (t == Tier::GPU) ? 1 : 0;
        return n;
    }

    /** Number of layers offloaded to CPU (L_CPU in Table 1). */
    int64_t cpuLayers() const { return layers() - gpuLayers(); }

    /**
     * Offload the deepest still-resident layer (Alg. 2 line 5 offloads
     * Layer_{L - L_CPU - 1}). Returns the layer index offloaded, or -1
     * if everything is already on CPU.
     */
    int64_t
    offloadDeepestResident()
    {
        for (int64_t i = layers() - 1; i >= 0; --i) {
            if (tiers_[i] == Tier::GPU) {
                tiers_[i] = Tier::CPU;
                return i;
            }
        }
        return -1;
    }

    /** Force a specific layer to a tier (used by static policies). */
    void setTier(int64_t layer, Tier t) { tiers_.at(layer) = t; }

    /** Place every layer on the given tier. */
    void
    setAll(Tier t)
    {
        for (auto &x : tiers_)
            x = t;
    }

  private:
    std::vector<Tier> tiers_;
};

} // namespace kv
} // namespace specontext
