/**
 * @file
 * Raw per-layer Key/Value cache storage.
 *
 * Layout is head-major per token: for each layer we keep two growable
 * buffers K and V where token position p occupies
 * [p * kv_heads * head_dim, (p+1) * kv_heads * head_dim). For MLA the
 * "K" buffer stores the latent c vector (latent_dim floats per token)
 * and V is unused, matching the paper's description that MLA caches a
 * low-dimensional latent representation (§4.3).
 *
 * This class is pure storage: placement across memory tiers and the
 * transfer accounting live in kvcache/tiered.h and the sim/ module.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/config.h"

namespace specontext {
namespace kv {

/** Growable KV store for a single transformer layer. */
class LayerKVCache
{
  public:
    LayerKVCache(int64_t kv_heads, int64_t head_dim, bool latent_mode,
                 int64_t latent_dim);

    /** Number of cached tokens. */
    int64_t size() const { return size_; }

    bool latentMode() const { return latent_mode_; }
    int64_t kvHeads() const { return kv_heads_; }
    int64_t headDim() const { return head_dim_; }
    int64_t latentDim() const { return latent_dim_; }

    /** Floats per token in the K buffer. */
    int64_t kStride() const;

    /** Floats per token in the V buffer (0 in latent mode). */
    int64_t vStride() const;

    /**
     * Append one token's K/V. k has kv_heads*head_dim floats
     * (or latent_dim floats in latent mode); v likewise
     * (ignored in latent mode, may be nullptr).
     */
    void append(const float *k, const float *v);

    /** Key vector of head h at position pos (head_dim floats). */
    const float *keyAt(int64_t pos, int64_t head) const;

    /** Value vector of head h at position pos (head_dim floats). */
    const float *valueAt(int64_t pos, int64_t head) const;

    /** Latent c vector at position pos (latent_dim floats). */
    const float *latentAt(int64_t pos) const;

    /** Drop all cached tokens (storage is kept for reuse). */
    void clear();

    /**
     * Drop tokens beyond new_size (speculative-decoding rollback of
     * rejected draft tokens). No-op when new_size >= size().
     */
    void truncate(int64_t new_size);

    /** Total bytes at FP16 for the currently cached tokens. */
    int64_t bytesFp16() const;

  private:
    int64_t kv_heads_;
    int64_t head_dim_;
    bool latent_mode_;
    int64_t latent_dim_;
    int64_t size_ = 0;
    std::vector<float> k_;
    std::vector<float> v_;
};

/** KV caches of all layers of one model instance, for one sequence. */
class KVCacheSet
{
  public:
    explicit KVCacheSet(const model::ModelConfig &config);

    int64_t layers() const { return static_cast<int64_t>(layers_.size()); }
    LayerKVCache &layer(int64_t i) { return layers_[i]; }
    const LayerKVCache &layer(int64_t i) const { return layers_[i]; }

    /** Cached tokens (identical across layers by construction). */
    int64_t sequenceLength() const;

    /** Clear every layer. */
    void clear();

    /** Truncate every layer to new_size tokens. */
    void truncate(int64_t new_size);

    /** Total FP16 bytes across layers. */
    int64_t bytesFp16() const;

  private:
    std::vector<LayerKVCache> layers_;
};

} // namespace kv
} // namespace specontext
