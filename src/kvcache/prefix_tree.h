/**
 * @file
 * Shared-prefix KV cache model: a per-replica radix tree over token-id
 * sequences with block-granular nodes, reference counts and LRU
 * eviction under a byte budget — the memory-side model behind
 * prefix-affinity routing (serving::RouterPolicy::PrefixAffinity).
 *
 * Production traffic is dominated by requests that share long prompt
 * prefixes (system prompts, few-shot templates, multi-turn history).
 * A replica that still holds the KV blocks of a previously served
 * prefix can skip prefill for the matched tokens entirely; what it
 * pays instead is HBM residency for the cached blocks, which competes
 * with live KV headroom. This tree models exactly that trade:
 *
 *  - Nodes are page-size-aligned token blocks (vLLM-style): only
 *    complete blocks are cached, so a match is always block-aligned
 *    and maps one-to-one onto paged KV storage.
 *  - match(tokens) returns the longest cached block-aligned prefix
 *    and the HBM bytes it occupies; it never mutates the tree.
 *  - insert(tokens) pins (refcounts) the cached prefix path and
 *    extends it with the remaining full blocks while the byte budget
 *    lasts, returning a handle the caller releases at retirement.
 *    Pinned nodes are never evicted — they are the KV of an in-flight
 *    request and freeing them would fabricate memory.
 *  - release(handle) unpins the path and stamps it with a logical
 *    LRU timestamp; unreferenced leaves are then evictable,
 *    bottom-up, least-recently-released first.
 *  - setBudget() re-clamps the budget (the serving layer shrinks it
 *    to the HBM headroom left by live KV reservations, priced through
 *    sim::MemoryModel); shrinking evicts unreferenced subtrees
 *    immediately. Budget 0 disables the cache entirely.
 *
 * Everything is deterministic: children are kept in token-content
 * order and LRU stamps come from a logical counter, so identical
 * operation sequences give identical trees, matches and evictions.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/pool.h"

namespace specontext {
namespace kv {

/**
 * Observability hooks of one tree (all optional): eviction events go
 * to `trace` stamped with `*clock` (the owning replica's simulated
 * time — the tree itself has no clock) and the lifetime
 * evicted-token counter publishes into `counters` under
 * `replica<replica>.prefix_evicted_tokens`. Pointers are non-owning
 * and must outlive the tree.
 */
struct PrefixTreeObserver
{
    obs::Trace *trace = nullptr;
    obs::CounterRegistry *counters = nullptr;
    int32_t replica = -1;
    const double *clock = nullptr;
};

/** Construction knobs of one replica's prefix cache. */
struct PrefixTreeConfig
{
    /** Tokens per cached block; matches are aligned to this. */
    int64_t page_size = 16;
    /** HBM bytes one cached token occupies (KV across all layers). */
    int64_t bytes_per_token = 0;
    /** Byte budget for cached blocks; 0 disables the cache. */
    int64_t budget_bytes = 0;
    /** Route node storage through the slab pool (default). Off = one
     *  new/delete per block — the allocator-backed reference the
     *  pooled mode is parity-tested against. The pool changes only
     *  where nodes live, never any simulated quantity. */
    bool pooled = true;
};

/** Outcome of one longest-prefix lookup. */
struct PrefixMatch
{
    int64_t hit_tokens = 0;     ///< cached block-aligned prefix length
    int64_t reserved_bytes = 0; ///< hit_tokens * bytes_per_token
};

/**
 * Pin on an inserted prefix path; obtained from insert(), returned to
 * release(). A default-constructed handle is a no-op to release.
 */
class PrefixHandle
{
  public:
    PrefixHandle() = default;

    /** Tokens of the path this handle pins (block-aligned). */
    int64_t pinnedTokens() const { return pinned_tokens_; }

  private:
    friend class PrefixTree;
    void *node_ = nullptr; ///< deepest pinned node
    int64_t pinned_tokens_ = 0;
};

/**
 * Outcome of one combined match-and-pin traversal — the fused form of
 * the admission sequence that used to take three separate tree walks
 * (new-block estimate, post-resize hit lookup, insert).
 */
struct MatchAndPinResult
{
    /** Cached prefix found *before* the resize callback ran — the
     *  "new-block estimate" of the legacy three-walk admission path
     *  (estimate.hit_tokens tokens of the prompt are already
     *  resident, so only the remaining full blocks are new). */
    PrefixMatch estimate;
    /** Cached prefix actually pinned, re-read after the callback (a
     *  budget shrink inside it may have evicted part of the
     *  estimate); equals `estimate` when no callback evicted. */
    PrefixMatch match;
    /** Pin on the full inserted path (match + newly created blocks);
     *  must be release()d exactly once. */
    PrefixHandle handle;
};

/** Radix tree of cached prompt-prefix KV blocks. */
class PrefixTree
{
  public:
    /**
     * @throws std::invalid_argument on non-positive page_size, a
     * negative budget, or an enabled cache (budget > 0) with
     * non-positive bytes_per_token.
     */
    explicit PrefixTree(PrefixTreeConfig cfg);
    ~PrefixTree();

    PrefixTree(const PrefixTree &) = delete;
    PrefixTree &operator=(const PrefixTree &) = delete;

    const PrefixTreeConfig &config() const { return cfg_; }

    /** False when the budget is 0 — every operation is then a no-op. */
    bool enabled() const { return cfg_.budget_bytes > 0; }

    /** Attach observability hooks (see PrefixTreeObserver); resolves
     *  counter slots once. Call before the first insert/eviction. */
    void setObserver(const PrefixTreeObserver &observer);

    /** Longest cached block-aligned prefix of `tokens`. Read-only. */
    PrefixMatch match(const std::vector<int32_t> &tokens) const;

    /**
     * Pin the cached prefix of `tokens` and insert its remaining full
     * blocks while the budget lasts (evicting unreferenced LRU leaves
     * to make room; pinned nodes are never evicted, so the path may
     * stop short of the full prompt when the budget is exhausted).
     * The returned handle must be release()d exactly once.
     */
    PrefixHandle insert(const std::vector<int32_t> &tokens);

    /**
     * Combined admission traversal: match the cached prefix of
     * `tokens`, hand the pre-resize match to `resize` (the serving
     * layer re-clamps the budget there, which may evict), then pin the
     * surviving prefix and extend it with the remaining full blocks —
     * insert() semantics — all in one walk. Bit-for-bit equivalent to
     * the legacy three-walk sequence match() -> resize -> match() ->
     * insert(): the matched node path is remembered across the
     * callback and re-walked from the root only when the callback
     * actually evicted (so held nodes can never dangle).
     * With the cache disabled after the callback, nothing is pinned
     * and the returned handle is a no-op to release.
     */
    MatchAndPinResult matchAndPin(
        const std::vector<int32_t> &tokens,
        const std::function<void(const PrefixMatch &estimate)> &resize =
            nullptr);

    /** Unpin a handle's path and stamp it least-recently-used; the
     *  budget is re-enforced afterwards. Safe on a default-constructed
     *  handle; the handle is cleared (double release is a no-op). */
    void release(PrefixHandle &handle);

    /**
     * Re-clamp the byte budget (>= 0) and evict unreferenced LRU
     * subtrees down to it. Pinned bytes can keep residency above a
     * shrunken budget until their handles are released; insertions
     * never start new blocks past the budget.
     */
    void setBudget(int64_t budget_bytes);

    // ---- Accounting --------------------------------------------------

    /** Bytes of cached KV currently resident. */
    int64_t bytes() const { return resident_tokens_ * cfg_.bytes_per_token; }

    /** Tokens of cached KV currently resident. */
    int64_t residentTokens() const { return resident_tokens_; }

    /** Tokens of resident blocks pinned by at least one live handle —
     *  the prompt KV of in-flight requests. Callers that already book
     *  that KV elsewhere (admission reservations) can add
     *  pinnedBytes() to the budget so one physical copy is not
     *  charged twice. */
    int64_t pinnedTokens() const { return pinned_tokens_; }

    /** pinnedTokens() priced in bytes. */
    int64_t pinnedBytes() const
    {
        return pinned_tokens_ * cfg_.bytes_per_token;
    }

    /** Cached blocks (tree nodes, root excluded). */
    int64_t nodeCount() const { return node_count_; }

    /** Tokens evicted over the tree's lifetime. */
    int64_t evictedTokens() const { return evicted_tokens_; }

    /** Tokens inserted (new blocks created) over the tree's lifetime. */
    int64_t insertedTokens() const { return inserted_tokens_; }

    /** Node-pool lifetime counters: block churn under LRU eviction is
     *  served from the pool's free list instead of the allocator. */
    const util::PoolStats &poolStats() const;

  private:
    struct Node;

    PrefixTreeConfig cfg_;
    /** All nodes (root included) live in the pool; eviction recycles
     *  their slots, so steady-state block churn never mallocs. */
    std::unique_ptr<util::Pool<Node>> pool_;
    Node *root_ = nullptr;
    int64_t resident_tokens_ = 0;
    int64_t pinned_tokens_ = 0;
    int64_t node_count_ = 0;
    int64_t evicted_tokens_ = 0;
    int64_t inserted_tokens_ = 0;
    uint64_t lru_clock_ = 0; ///< logical time, bumped on release
    /** Bumped on every eviction; matchAndPin() uses it to detect that
     *  a node path held across the resize callback may have become
     *  stale and must be re-walked. */
    uint64_t eviction_epoch_ = 0;
    PrefixTreeObserver observer_;
    obs::CounterRegistry::Handle evicted_counter_ = 0;

    /** Node storage, honoring cfg_.pooled: slab pool or new/delete. */
    Node *newNode();
    void freeNode(Node *n);

    /** Walk the cached block-aligned prefix of `tokens`, appending the
     *  matched nodes (root excluded) to `path`. */
    void walkMatch(const std::vector<int32_t> &tokens,
                   std::vector<Node *> &path) const;

    /** Evict unreferenced LRU leaves until bytes() <= budget. */
    void enforceBudget();

    /** Evict the least-recently-released unreferenced leaf; false when
     *  nothing is evictable. */
    bool evictOne();
};

} // namespace kv
} // namespace specontext
