#include "kvcache/prefix_tree.h"

#include <stdexcept>
#include <string>

namespace specontext {
namespace kv {

/**
 * One cached block. Children are keyed by their block's token content
 * (std::map, so traversal order is deterministic); the key doubles as
 * the stored tokens, which a simulator never needs to read back.
 */
struct PrefixTree::Node
{
    Node *parent = nullptr;
    /** Raw pointers: node lifetime is owned by the tree's Pool, so
     *  eviction recycles slots instead of freeing them. */
    std::map<std::vector<int32_t>, Node *> children;
    int64_t refcount = 0;     ///< in-flight requests pinning this block
    uint64_t last_use = 0;    ///< lru_clock_ at the last release
    int64_t depth_tokens = 0; ///< tokens from root through this block
};

PrefixTree::PrefixTree(PrefixTreeConfig cfg) : cfg_(cfg)
{
    if (cfg_.page_size <= 0)
        throw std::invalid_argument("PrefixTree: non-positive page_size");
    if (cfg_.budget_bytes < 0)
        throw std::invalid_argument("PrefixTree: negative budget");
    if (cfg_.budget_bytes > 0 && cfg_.bytes_per_token <= 0)
        throw std::invalid_argument(
            "PrefixTree: enabled cache needs positive bytes_per_token");
    pool_ = std::make_unique<util::Pool<Node>>();
    root_ = newNode();
}

PrefixTree::~PrefixTree()
{
    // Nodes own heap state (the children map keys), so each must be
    // destroyed through the pool — iteratively, to keep deep chains
    // off the call stack.
    std::vector<Node *> stack = {root_};
    while (!stack.empty()) {
        Node *n = stack.back();
        stack.pop_back();
        for (auto &kv_pair : n->children)
            stack.push_back(kv_pair.second);
        freeNode(n);
    }
}

PrefixTree::Node *
PrefixTree::newNode()
{
    return cfg_.pooled ? pool_->create() : new Node();
}

void
PrefixTree::freeNode(Node *n)
{
    if (cfg_.pooled)
        pool_->destroy(n);
    else
        delete n;
}

const util::PoolStats &
PrefixTree::poolStats() const
{
    return pool_->stats();
}

void
PrefixTree::setObserver(const PrefixTreeObserver &observer)
{
    observer_ = observer;
    if (observer_.counters) {
        evicted_counter_ = observer_.counters->counter(
            "replica" + std::to_string(observer_.replica) +
            ".prefix_evicted_tokens");
    }
}

void
PrefixTree::walkMatch(const std::vector<int32_t> &tokens,
                      std::vector<Node *> &path) const
{
    const Node *node = root_;
    const int64_t full_blocks =
        static_cast<int64_t>(tokens.size()) / cfg_.page_size;
    std::vector<int32_t> block(static_cast<size_t>(cfg_.page_size));
    for (int64_t b = 0; b < full_blocks; ++b) {
        const auto begin = tokens.begin() + b * cfg_.page_size;
        block.assign(begin, begin + cfg_.page_size);
        const auto it = node->children.find(block);
        if (it == node->children.end())
            break;
        node = it->second;
        path.push_back(const_cast<Node *>(node));
    }
}

PrefixMatch
PrefixTree::match(const std::vector<int32_t> &tokens) const
{
    PrefixMatch m;
    if (!enabled())
        return m;
    std::vector<Node *> path;
    walkMatch(tokens, path);
    m.hit_tokens = path.empty() ? 0 : path.back()->depth_tokens;
    m.reserved_bytes = m.hit_tokens * cfg_.bytes_per_token;
    return m;
}

PrefixHandle
PrefixTree::insert(const std::vector<int32_t> &tokens)
{
    return matchAndPin(tokens).handle;
}

MatchAndPinResult
PrefixTree::matchAndPin(
    const std::vector<int32_t> &tokens,
    const std::function<void(const PrefixMatch &estimate)> &resize)
{
    MatchAndPinResult out;

    // Walk 1 (fused): the pre-resize cached prefix, remembered as the
    // node path so the post-callback phases need no second descent.
    std::vector<Node *> path;
    bool walked = false;
    if (enabled()) {
        walkMatch(tokens, path);
        walked = true;
        out.estimate.hit_tokens =
            path.empty() ? 0 : path.back()->depth_tokens;
        out.estimate.reserved_bytes =
            out.estimate.hit_tokens * cfg_.bytes_per_token;
    }

    const uint64_t epoch = eviction_epoch_;
    if (resize)
        resize(out.estimate);
    if (!enabled())
        return out; // budget (still) 0 after the callback: no-op pin

    // Walk 2 (usually skipped): the held path is stale only when the
    // callback evicted — or when the cache was disabled at entry so
    // walk 1 never ran (the callback may just have revived it).
    if (!walked || eviction_epoch_ != epoch) {
        path.clear();
        walkMatch(tokens, path);
    }
    out.match.hit_tokens = path.empty() ? 0 : path.back()->depth_tokens;
    out.match.reserved_bytes =
        out.match.hit_tokens * cfg_.bytes_per_token;

    // Pin the matched prefix (top-down, insert()'s accounting), then
    // extend it with the remaining full blocks while the budget lasts.
    for (Node *n : path) {
        if (n->refcount == 0)
            pinned_tokens_ += cfg_.page_size;
        ++n->refcount;
    }
    Node *node = path.empty() ? root_ : path.back();
    const int64_t matched_blocks =
        static_cast<int64_t>(path.size());
    const int64_t full_blocks =
        static_cast<int64_t>(tokens.size()) / cfg_.page_size;
    const int64_t block_bytes = cfg_.page_size * cfg_.bytes_per_token;
    std::vector<int32_t> block(static_cast<size_t>(cfg_.page_size));
    for (int64_t b = matched_blocks; b < full_blocks; ++b) {
        // New block: make room first. Nodes on the pinned path
        // (including everything this walk already pinned) have
        // refcount > 0 and are eviction-proof.
        while (bytes() + block_bytes > cfg_.budget_bytes) {
            if (!evictOne())
                break;
        }
        if (bytes() + block_bytes > cfg_.budget_bytes)
            break; // budget exhausted; pin what we have
        const auto begin = tokens.begin() + b * cfg_.page_size;
        block.assign(begin, begin + cfg_.page_size);
        Node *child = newNode();
        child->parent = node;
        child->depth_tokens = node->depth_tokens + cfg_.page_size;
        node = node->children.emplace(block, child).first->second;
        resident_tokens_ += cfg_.page_size;
        inserted_tokens_ += cfg_.page_size;
        ++node_count_;
        pinned_tokens_ += cfg_.page_size; // fresh block: refcount 0 -> 1
        ++node->refcount;
    }
    if (node != root_) {
        out.handle.node_ = node;
        out.handle.pinned_tokens_ = node->depth_tokens;
    }
    return out;
}

void
PrefixTree::release(PrefixHandle &handle)
{
    Node *node = static_cast<Node *>(handle.node_);
    handle.node_ = nullptr;
    handle.pinned_tokens_ = 0;
    if (!node)
        return;
    // One stamp per release keeps whole paths ordered: deeper nodes
    // share the stamp, and leaves are evicted before their parents
    // regardless.
    const uint64_t stamp = ++lru_clock_;
    for (; node != root_; node = node->parent) {
        if (node->refcount <= 0)
            throw std::logic_error("PrefixTree: release without pin");
        --node->refcount;
        if (node->refcount == 0)
            pinned_tokens_ -= cfg_.page_size;
        node->last_use = stamp;
    }
    enforceBudget();
}

void
PrefixTree::setBudget(int64_t budget_bytes)
{
    if (budget_bytes < 0)
        throw std::invalid_argument("PrefixTree: negative budget");
    if (budget_bytes > 0 && cfg_.bytes_per_token <= 0)
        throw std::invalid_argument(
            "PrefixTree: enabled cache needs positive bytes_per_token");
    cfg_.budget_bytes = budget_bytes;
    enforceBudget();
}

bool
PrefixTree::evictOne()
{
    // Deterministic full-tree scan for the unreferenced leaf with the
    // oldest release stamp (strict <, and children are visited in
    // token order, so ties — impossible under the unique stamps, but
    // cheap to make explicit — keep the first visited). O(nodes) per
    // eviction is fine at simulator scale.
    Node *victim = nullptr;
    std::vector<Node *> stack = {root_};
    while (!stack.empty()) {
        Node *n = stack.back();
        stack.pop_back();
        for (auto &kv_pair : n->children)
            stack.push_back(kv_pair.second);
        if (n == root_ || n->refcount > 0 || !n->children.empty())
            continue;
        if (!victim || n->last_use < victim->last_use)
            victim = n;
    }
    if (!victim)
        return false;
    Node *parent = victim->parent;
    for (auto it = parent->children.begin(); it != parent->children.end();
         ++it) {
        if (it->second == victim) {
            parent->children.erase(it);
            break;
        }
    }
    freeNode(victim);
    resident_tokens_ -= cfg_.page_size;
    evicted_tokens_ += cfg_.page_size;
    --node_count_;
    ++eviction_epoch_;
    if (observer_.counters)
        observer_.counters->add(evicted_counter_, cfg_.page_size);
    OBS_EVENT(observer_.trace, obs::EventType::PrefixEvict,
              observer_.clock ? *observer_.clock : 0.0,
              observer_.replica, -1, cfg_.page_size, resident_tokens_);
    return true;
}

void
PrefixTree::enforceBudget()
{
    while (bytes() > cfg_.budget_bytes) {
        if (!evictOne())
            break; // everything left is pinned
    }
}

} // namespace kv
} // namespace specontext
