#include "kvcache/paged.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace specontext {
namespace kv {

PagedKeyIndex::PagedKeyIndex(int64_t page_size)
    : page_size_(page_size)
{
    if (page_size <= 0)
        throw std::invalid_argument("page_size must be positive");
}

int64_t
PagedKeyIndex::pages() const
{
    return kv_heads_ == 0
               ? 0
               : static_cast<int64_t>(summaries_.size()) / kv_heads_;
}

void
PagedKeyIndex::rebuild(const LayerKVCache &cache, int64_t upto)
{
    if (cache.latentMode())
        throw std::logic_error("PagedKeyIndex does not support MLA caches");
    kv_heads_ = cache.kvHeads();
    head_dim_ = cache.headDim();
    covered_ = std::min<int64_t>(upto, cache.size());
    summaries_.clear();
    const int64_t n_pages = (covered_ + page_size_ - 1) / page_size_;
    summaries_.reserve(n_pages * kv_heads_);
    for (int64_t p = 0; p < n_pages; ++p) {
        const int64_t begin = p * page_size_;
        const int64_t end = std::min(begin + page_size_, covered_);
        for (int64_t h = 0; h < kv_heads_; ++h) {
            PageSummary s;
            s.begin = begin;
            s.end = end;
            s.max_key.assign(head_dim_,
                             -std::numeric_limits<float>::infinity());
            s.min_key.assign(head_dim_,
                             std::numeric_limits<float>::infinity());
            for (int64_t pos = begin; pos < end; ++pos) {
                const float *k = cache.keyAt(pos, h);
                for (int64_t d = 0; d < head_dim_; ++d) {
                    s.max_key[d] = std::max(s.max_key[d], k[d]);
                    s.min_key[d] = std::min(s.min_key[d], k[d]);
                }
            }
            summaries_.push_back(std::move(s));
        }
    }
}

float
PagedKeyIndex::upperBoundScore(int64_t page, int64_t head,
                               const float *q) const
{
    const PageSummary &s = summary(page, head);
    float score = 0.0f;
    for (int64_t d = 0; d < head_dim_; ++d)
        score += std::max(q[d] * s.max_key[d], q[d] * s.min_key[d]);
    return score;
}

const PageSummary &
PagedKeyIndex::summary(int64_t page, int64_t head) const
{
    return summaries_.at(page * kv_heads_ + head);
}

} // namespace kv
} // namespace specontext
