/**
 * @file
 * Page-level metadata over a layer's key cache, as used by Quest
 * (Tang et al., ICML'24): the KV cache is partitioned into fixed-size
 * pages and each page is summarized by the element-wise max and min of
 * its key vectors per KV head. At retrieval time an upper bound of the
 * page's attention score is computed from the query and the two
 * summary vectors, and whole Top-K pages are selected.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "kvcache/kv_cache.h"

namespace specontext {
namespace kv {

/** Min/max key summary of one page for one KV head. */
struct PageSummary
{
    int64_t begin = 0; ///< first token position (inclusive)
    int64_t end = 0;   ///< one past the last token position
    std::vector<float> max_key; ///< head_dim floats
    std::vector<float> min_key; ///< head_dim floats
};

/**
 * Paged index over one layer's keys. Rebuilding is the expensive
 * "preprocessing" step the paper charges Quest for (§3.1); the index is
 * built once over the prompt KV after prefill and, faithfully to the
 * baseline, never extended over newly generated tokens.
 */
class PagedKeyIndex
{
  public:
    explicit PagedKeyIndex(int64_t page_size);

    int64_t pageSize() const { return page_size_; }

    /** Number of pages currently summarized. */
    int64_t pages() const;

    /** Position range covered by the index ([0, coveredTokens)). */
    int64_t coveredTokens() const { return covered_; }

    /**
     * Build summaries over positions [0, upto) of the layer cache.
     * Previous contents are discarded.
     */
    void rebuild(const LayerKVCache &cache, int64_t upto);

    /**
     * Quest upper-bound score of page p for KV head h and query q
     * (head_dim floats): sum_i max(q_i*max_i, q_i*min_i).
     */
    float upperBoundScore(int64_t page, int64_t head,
                          const float *q) const;

    const PageSummary &summary(int64_t page, int64_t head) const;

  private:
    int64_t page_size_;
    int64_t kv_heads_ = 0;
    int64_t head_dim_ = 0;
    int64_t covered_ = 0;
    // page-major, then head: summaries_[page * kv_heads_ + head]
    std::vector<PageSummary> summaries_;
};

} // namespace kv
} // namespace specontext
