#include "model/distiller.h"

#include <stdexcept>

namespace specontext {
namespace model {

int64_t
teacherLayerForKvHead(int64_t kvh, int64_t teacher_layers)
{
    return kvh % teacher_layers;
}

namespace {

/** out = quality * teacher + (1 - quality) * noise, elementwise. */
void
blendInto(Tensor &out, const Tensor &teacher, const Tensor &noise,
          float quality)
{
    for (int64_t i = 0; i < out.numel(); ++i) {
        out.data()[i] = quality * teacher.data()[i] +
                        (1.0f - quality) * noise.data()[i];
    }
}

} // namespace

Transformer
distill(const Transformer &teacher, const DistillOptions &opts)
{
    if (opts.quality < 0.0f || opts.quality > 1.0f)
        throw std::invalid_argument("distill quality must be in [0,1]");

    const ModelConfig &tc = teacher.config();
    ModelConfig dc = dlmGeometryFor(tc);
    dc.validate();

    Rng rng(opts.seed);
    // Start from a random full 1-layer LM, then overwrite the pieces
    // the distillation aligns.
    ModelWeights w = ModelWeights::random(dc, rng.nextU64());
    const ModelWeights &tw = teacher.weights();

    // EAGLE drafts reuse the target model's embedding and LM head.
    w.embedding = tw.embedding.clone();
    w.lm_head = tw.lm_head.clone();
    w.final_norm = tw.final_norm.clone();

    LayerWeights &lw = w.layers[0];
    const int64_t hd = tc.head_dim;
    const int64_t group = tc.groups();

    Rng noise_rng = rng.fork();
    if (tc.attention == AttentionKind::MLA) {
        // Single latent path: blend against teacher layer 0's MLA
        // projections (the latent space is shared across heads).
        const LayerWeights &t0 = tw.layers[0];
        Tensor nq = Tensor::randn(t0.wq.shape(), noise_rng,
                                  1.0f / std::sqrt((float)tc.hidden));
        Tensor ndkv = Tensor::randn(t0.w_dkv.shape(), noise_rng,
                                    1.0f / std::sqrt((float)tc.hidden));
        Tensor nuk = Tensor::randn(
            t0.w_uk.shape(), noise_rng,
            1.0f / std::sqrt((float)tc.mla_latent_dim));
        blendInto(lw.wq, t0.wq, nq, opts.quality);
        blendInto(lw.w_dkv, t0.w_dkv, ndkv, opts.quality);
        blendInto(lw.w_uk, t0.w_uk, nuk, opts.quality);
    } else {
        // Per KV-head group: the group's Q columns and the KV head's K
        // columns come from one teacher layer, dealt round-robin.
        Tensor nq = Tensor::randn(lw.wq.shape(), noise_rng,
                                  1.0f / std::sqrt((float)tc.hidden));
        Tensor nk = Tensor::randn(lw.wk.shape(), noise_rng,
                                  1.0f / std::sqrt((float)tc.hidden));
        for (int64_t kvh = 0; kvh < tc.kv_heads; ++kvh) {
            const int64_t tl = teacherLayerForKvHead(kvh, tc.layers);
            const LayerWeights &tlw = tw.layers[tl];
            for (int64_t r = 0; r < tc.hidden; ++r) {
                for (int64_t d = 0; d < hd; ++d) {
                    const int64_t kc = kvh * hd + d;
                    lw.wk.at(r, kc) =
                        opts.quality * tlw.wk.at(r, kc) +
                        (1.0f - opts.quality) * nk.at(r, kc);
                }
                for (int64_t g = 0; g < group; ++g) {
                    const int64_t qh = kvh * group + g;
                    for (int64_t d = 0; d < hd; ++d) {
                        const int64_t qc = qh * hd + d;
                        lw.wq.at(r, qc) =
                            opts.quality * tlw.wq.at(r, qc) +
                            (1.0f - opts.quality) * nq.at(r, qc);
                    }
                }
            }
        }
    }

    return Transformer(dc, std::move(w));
}

} // namespace model
} // namespace specontext
