#include "model/weights.h"

#include <cmath>

namespace specontext {
namespace model {

namespace {

/** Xavier-ish stddev for a (fan_in, fan_out) projection. */
float
projStddev(int64_t fan_in)
{
    return 1.0f / std::sqrt(static_cast<float>(fan_in));
}

/**
 * Query projection coupled to the key projection: for each head, the
 * query columns are affinity * (matching key columns) + noise. For GQA
 * and MQA every query head in a group couples to its shared KV head.
 */
Tensor
coupledQueryProj(const ModelConfig &cfg, const Tensor &wk, Rng &rng,
                 float affinity)
{
    const int64_t q_dim = cfg.q_heads * cfg.head_dim;
    Tensor wq = Tensor::randn({cfg.hidden, q_dim}, rng,
                              projStddev(cfg.hidden));
    if (affinity <= 0.0f)
        return wq;
    const float mix = affinity;
    const float keep = 1.0f - affinity;
    const int64_t group = cfg.groups();
    for (int64_t qh = 0; qh < cfg.q_heads; ++qh) {
        const int64_t kvh = qh / group;
        for (int64_t r = 0; r < cfg.hidden; ++r) {
            for (int64_t d = 0; d < cfg.head_dim; ++d) {
                const int64_t qc = qh * cfg.head_dim + d;
                const int64_t kc = kvh * cfg.head_dim + d;
                wq.at(r, qc) =
                    keep * wq.at(r, qc) + mix * wk.at(r, kc);
            }
        }
    }
    return wq;
}

} // namespace

ModelWeights
ModelWeights::random(const ModelConfig &cfg, uint64_t seed,
                     const InitOptions &opts)
{
    cfg.validate();
    Rng rng(seed);
    ModelWeights w;
    w.embedding = Tensor::randn({cfg.vocab, cfg.hidden}, rng, 1.0f);
    w.final_norm = Tensor::full({cfg.hidden}, 1.0f);
    w.lm_head = Tensor::randn({cfg.hidden, cfg.vocab}, rng,
                              projStddev(cfg.hidden));

    const int64_t q_dim = cfg.q_heads * cfg.head_dim;
    const int64_t kv_dim = cfg.kv_heads * cfg.head_dim;
    const float res = opts.residual_scale;

    w.layers.reserve(cfg.layers);
    for (int64_t l = 0; l < cfg.layers; ++l) {
        LayerWeights lw;
        lw.attn_norm = Tensor::full({cfg.hidden}, 1.0f);
        lw.ffn_norm = Tensor::full({cfg.hidden}, 1.0f);
        if (cfg.attention == AttentionKind::MLA) {
            lw.w_dkv = Tensor::randn({cfg.hidden, cfg.mla_latent_dim}, rng,
                                     projStddev(cfg.hidden));
            lw.w_uk = Tensor::randn({cfg.mla_latent_dim, q_dim}, rng,
                                    projStddev(cfg.mla_latent_dim));
            lw.w_uv = Tensor::randn({cfg.mla_latent_dim, q_dim}, rng,
                                    projStddev(cfg.mla_latent_dim));
            // Couple W_q to the composite key map W_dkv * W_uk so that
            // QK^T keeps the similarity-kernel structure under MLA too.
            Tensor composite_k({cfg.hidden, q_dim});
            for (int64_t r = 0; r < cfg.hidden; ++r) {
                for (int64_t c = 0; c < q_dim; ++c) {
                    float s = 0.0f;
                    for (int64_t m = 0; m < cfg.mla_latent_dim; ++m)
                        s += lw.w_dkv.at(r, m) * lw.w_uk.at(m, c);
                    composite_k.at(r, c) = s;
                }
            }
            Tensor noise = Tensor::randn({cfg.hidden, q_dim}, rng,
                                         projStddev(cfg.hidden));
            lw.wq = Tensor({cfg.hidden, q_dim});
            const float a = opts.retrieval_affinity;
            for (int64_t i = 0; i < lw.wq.numel(); ++i) {
                lw.wq.data()[i] = a * composite_k.data()[i] * 2.0f +
                                  (1.0f - a) * noise.data()[i];
            }
        } else {
            lw.wk = Tensor::randn({cfg.hidden, kv_dim}, rng,
                                  projStddev(cfg.hidden));
            // Rank-1 heavy-hitter component per KV head: keys of
            // tokens aligned with v get a large, query-independent
            // boost along u — the persistent-token structure real
            // attention exhibits.
            if (opts.key_spike > 0.0f) {
                for (int64_t kvh = 0; kvh < cfg.kv_heads; ++kvh) {
                    // The spike lives in the lowest-frequency RoPE
                    // dimension pairs (the tail of the head dim),
                    // where rotation is negligible across the context
                    // window — matching where trained models park
                    // their position-independent sink structure. A
                    // spike in fast-rotating dims would be sheared
                    // away by relative position and produce no stable
                    // heavy hitters.
                    const int64_t low_dims =
                        std::max<int64_t>(2, cfg.head_dim / 4);
                    Tensor u = Tensor::zeros({cfg.head_dim});
                    for (int64_t d = cfg.head_dim - low_dims;
                         d < cfg.head_dim; ++d) {
                        u.at(d) = rng.gaussian();
                    }
                    Tensor v = Tensor::randn({cfg.hidden}, rng,
                                             projStddev(cfg.hidden));
                    const float scale =
                        opts.key_spike /
                        std::sqrt(static_cast<float>(low_dims));
                    for (int64_t r = 0; r < cfg.hidden; ++r) {
                        for (int64_t d = 0; d < cfg.head_dim; ++d) {
                            lw.wk.at(r, kvh * cfg.head_dim + d) +=
                                scale * v.at(r) * u.at(d);
                        }
                    }
                }
            }
            lw.wv = Tensor::randn({cfg.hidden, kv_dim}, rng,
                                  projStddev(cfg.hidden));
            lw.wq = coupledQueryProj(cfg, lw.wk, rng,
                                     opts.retrieval_affinity);
        }
        lw.wo = Tensor::randn({q_dim, cfg.hidden}, rng,
                              res * projStddev(q_dim));
        lw.w_gate = Tensor::randn({cfg.hidden, cfg.ffn_hidden}, rng,
                                  projStddev(cfg.hidden));
        lw.w_up = Tensor::randn({cfg.hidden, cfg.ffn_hidden}, rng,
                                projStddev(cfg.hidden));
        lw.w_down = Tensor::randn({cfg.ffn_hidden, cfg.hidden}, rng,
                                  res * projStddev(cfg.ffn_hidden));
        w.layers.push_back(std::move(lw));
    }
    return w;
}

} // namespace model
} // namespace specontext
