/**
 * @file
 * Toy word-hash tokenizer for the examples and workload generators.
 *
 * Real tokenizers are irrelevant to KV selection; what matters is that
 * the same word always maps to the same id (so planted facts have
 * stable embeddings) and that ids stay inside the model vocabulary.
 */
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace specontext {
namespace model {

/** Deterministic whitespace/word tokenizer with FNV-1a hashing. */
class ToyTokenizer
{
  public:
    static constexpr int32_t kBos = 0;
    static constexpr int32_t kEos = 1;

    explicit ToyTokenizer(int64_t vocab);

    /** Token ids of text (whitespace-split words), without BOS/EOS. */
    std::vector<int32_t> encode(const std::string &text) const;

    /** Id of a single word. */
    int32_t wordId(const std::string &word) const;

    /**
     * Best-effort readable name of a token: the most recent word
     * encoded to this id, else "tok<id>".
     */
    std::string tokenName(int32_t id) const;

    int64_t vocab() const { return vocab_; }

  private:
    int64_t vocab_;
    mutable std::unordered_map<int32_t, std::string> names_;
};

} // namespace model
} // namespace specontext
