/**
 * @file
 * Construction of the distilled language model (DLM).
 *
 * The paper takes its DLM from EAGLE-3: a complete 1-layer LM
 * (tokenizer, embedding, decoder layer, LM head) trained for 24 GPU
 * hours to align its output distribution with the teacher (§4.1). No
 * GPUs or teacher checkpoints exist in this environment, so we
 * *construct* the DLM instead of training it: the single layer's Q/K
 * projections are blended from the teacher's per-layer projections
 * (each KV-head group of the DLM inherits one teacher layer), with a
 * `quality` knob in [0,1] interpolating between a faithful distillation
 * (1.0) and an unrelated random model (0.0).
 *
 * What the paper *assumes* about the DLM — that its attention focus is
 * similar to the teacher's (§3.2) — therefore becomes a measurable,
 * sweepable property here (see bench_fig05_head_similarity).
 */
#pragma once

#include <cstdint>

#include "model/transformer.h"

namespace specontext {
namespace model {

/** Knobs of the gradient-free DLM construction. */
struct DistillOptions
{
    /** 1.0 = projections copied from teacher; 0.0 = pure noise. */
    float quality = 1.0f;
    /** Seed of the noise component and auxiliary weights. */
    uint64_t seed = 0x5eed;
};

/**
 * Build the 1-layer DLM for a teacher model. The DLM shares the
 * teacher's embedding and LM head (EAGLE drafts reuse the target
 * embedding), keeps the teacher's head layout, and applies YaRN
 * positional scaling per dlmGeometryFor().
 */
Transformer distill(const Transformer &teacher,
                    const DistillOptions &opts = DistillOptions());

/**
 * Teacher layer feeding DLM KV head kvh: layers are dealt round-robin
 * across KV heads so the single DLM layer aggregates focus from the
 * whole depth of the teacher (EAGLE-3 similarly fuses multi-layer
 * features).
 */
int64_t teacherLayerForKvHead(int64_t kvh, int64_t teacher_layers);

} // namespace model
} // namespace specontext
