#include "model/transformer.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace specontext {
namespace model {

Transformer::Transformer(ModelConfig config, ModelWeights weights)
    : config_(std::move(config)), weights_(std::move(weights))
{
    config_.validate();
    if (static_cast<int64_t>(weights_.layers.size()) != config_.layers)
        throw std::invalid_argument("weights/config layer count mismatch");
}

Transformer
Transformer::randomInit(const ModelConfig &config, uint64_t seed,
                        const InitOptions &opts)
{
    return Transformer(config, ModelWeights::random(config, seed, opts));
}

Tensor
Transformer::projectQuery(int64_t layer, const Tensor &normed_x,
                          int64_t pos) const
{
    const LayerWeights &lw = weights_.layers.at(layer);
    Tensor q = ops::vecmat(normed_x, lw.wq)
                   .reshape({config_.q_heads, config_.head_dim});
    ops::applyRope(q, pos, config_.rope_theta, config_.yarn_scale);
    return q;
}

Tensor
Transformer::attentionLayer(int64_t layer, const Tensor &normed_x,
                            kv::KVCacheSet &cache, int64_t pos,
                            const LayerSelector *selector,
                            StepTrace *trace) const
{
    const LayerWeights &lw = weights_.layers.at(layer);
    kv::LayerKVCache &lc = cache.layer(layer);
    const int64_t hd = config_.head_dim;
    const int64_t q_heads = config_.q_heads;
    const bool mla = config_.attention == AttentionKind::MLA;
    const int64_t group = config_.groups();
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(hd));

    // --- Current token's query and KV -------------------------------
    Tensor q = projectQuery(layer, normed_x, pos);

    if (mla) {
        Tensor c = ops::vecmat(normed_x, lw.w_dkv);
        lc.append(c.data(), nullptr);
    } else {
        Tensor k = ops::vecmat(normed_x, lw.wk)
                       .reshape({config_.kv_heads, hd});
        ops::applyRope(k, pos, config_.rope_theta, config_.yarn_scale);
        Tensor v = ops::vecmat(normed_x, lw.wv);
        lc.append(k.data(), v.data());
    }

    // --- Retrieval (per-layer for baselines, precomputed for ours) --
    LayerSelection sel;
    if (selector)
        sel = (*selector)(layer, q);

    // --- Per-head sparse/full attention ------------------------------
    Tensor out({q_heads * hd});
    Tensor probs_trace;
    if (trace && trace->record_attention)
        probs_trace = Tensor::zeros({q_heads, pos + 1});

    // MLA reconstructs K lazily, so cache the per-position K for the
    // positions actually attended this step (shared across q heads).
    std::vector<int64_t> mla_pos_cache_idx;
    std::vector<Tensor> mla_keys; // each (q_heads, hd), rope applied

    auto mlaKeyFor = [&](int64_t p) -> const Tensor & {
        for (size_t i = 0; i < mla_pos_cache_idx.size(); ++i) {
            if (mla_pos_cache_idx[i] == p)
                return mla_keys[i];
        }
        const float *c = lc.latentAt(p);
        Tensor cvec({config_.mla_latent_dim});
        std::copy(c, c + config_.mla_latent_dim, cvec.data());
        Tensor k = ops::vecmat(cvec, lw.w_uk).reshape({q_heads, hd});
        ops::applyRope(k, p, config_.rope_theta, config_.yarn_scale);
        mla_pos_cache_idx.push_back(p);
        mla_keys.push_back(std::move(k));
        return mla_keys.back();
    };

    for (int64_t h = 0; h < q_heads; ++h) {
        const int64_t kvh = mla ? h : h / group;

        // Attended positions: selection (or everything) plus self.
        std::vector<int64_t> positions;
        const bool full = sel.full() ||
                          static_cast<int64_t>(sel.per_head.size()) <=
                              (mla ? h : kvh);
        if (full) {
            positions.resize(pos + 1);
            for (int64_t p = 0; p <= pos; ++p)
                positions[p] = p;
        } else {
            positions = sel.per_head[mla ? h : kvh];
            if (positions.empty() || positions.back() != pos)
                positions.push_back(pos);
        }

        const int64_t n = static_cast<int64_t>(positions.size());
        std::vector<float> scores(n);
        const float *qh = q.row(h);
        for (int64_t i = 0; i < n; ++i) {
            const int64_t p = positions[i];
            const float *kvec = mla ? mlaKeyFor(p).row(h)
                                    : lc.keyAt(p, kvh);
            scores[i] = ops::dot(qh, kvec, hd) * inv_sqrt_d;
        }
        ops::softmaxInPlace(scores.data(), n);

        float *oh = out.data() + h * hd;
        std::fill(oh, oh + hd, 0.0f);
        for (int64_t i = 0; i < n; ++i) {
            const int64_t p = positions[i];
            if (mla) {
                const float *c = lc.latentAt(p);
                // v_h(p) = c(p) * W_uv[:, h*hd : (h+1)*hd]
                for (int64_t d = 0; d < hd; ++d) {
                    float vv = 0.0f;
                    for (int64_t m = 0; m < config_.mla_latent_dim; ++m)
                        vv += c[m] * lw.w_uv.at(m, h * hd + d);
                    oh[d] += scores[i] * vv;
                }
            } else {
                const float *vvec = lc.valueAt(p, kvh);
                for (int64_t d = 0; d < hd; ++d)
                    oh[d] += scores[i] * vvec[d];
            }
            if (trace && trace->record_attention)
                probs_trace.at(h, p) = scores[i];
        }
    }

    if (trace && trace->record_attention)
        trace->attention.push_back(std::move(probs_trace));

    return ops::vecmat(out, lw.wo);
}

Tensor
Transformer::ffnLayer(int64_t layer, const Tensor &normed_x) const
{
    const LayerWeights &lw = weights_.layers.at(layer);
    Tensor gate = ops::silu(ops::vecmat(normed_x, lw.w_gate));
    Tensor up = ops::vecmat(normed_x, lw.w_up);
    return ops::vecmat(ops::mul(gate, up), lw.w_down);
}

Tensor
Transformer::decodeStep(int32_t token, kv::KVCacheSet &cache,
                        const LayerSelector *selector,
                        StepTrace *trace) const
{
    if (token < 0 || token >= config_.vocab)
        throw std::out_of_range("token id outside vocabulary");
    const int64_t pos = cache.sequenceLength();

    Tensor h({config_.hidden});
    std::copy(weights_.embedding.row(token),
              weights_.embedding.row(token) + config_.hidden, h.data());

    if (trace)
        trace->attention.clear();

    for (int64_t l = 0; l < config_.layers; ++l) {
        const LayerWeights &lw = weights_.layers[l];
        Tensor xn = ops::rmsnorm(h, lw.attn_norm);
        Tensor attn = attentionLayer(l, xn, cache, pos, selector, trace);
        ops::addInPlace(h, attn);
        Tensor xn2 = ops::rmsnorm(h, lw.ffn_norm);
        Tensor ffn = ffnLayer(l, xn2);
        ops::addInPlace(h, ffn);
    }

    Tensor final_h = ops::rmsnorm(h, weights_.final_norm);
    if (trace)
        trace->final_hidden = final_h.clone();
    return ops::vecmat(final_h, weights_.lm_head);
}

Tensor
Transformer::prefill(const std::vector<int32_t> &tokens,
                     kv::KVCacheSet &cache, StepTrace *trace) const
{
    if (tokens.empty())
        throw std::invalid_argument("prefill with empty prompt");
    Tensor logits;
    for (size_t i = 0; i < tokens.size(); ++i) {
        StepTrace *t =
            (trace && i + 1 == tokens.size()) ? trace : nullptr;
        logits = decodeStep(tokens[i], cache, nullptr, t);
    }
    return logits;
}

int32_t
Transformer::greedy(const Tensor &logits) const
{
    return static_cast<int32_t>(ops::argmax(logits));
}

} // namespace model
} // namespace specontext
