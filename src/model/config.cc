#include "model/config.h"

#include <stdexcept>
#include <utility>

namespace specontext {
namespace model {

const char *
attentionKindName(AttentionKind kind)
{
    switch (kind) {
      case AttentionKind::MHA: return "MHA";
      case AttentionKind::GQA: return "GQA";
      case AttentionKind::MQA: return "MQA";
      case AttentionKind::MLA: return "MLA";
    }
    return "?";
}

int64_t
ModelConfig::groups() const
{
    if (attention == AttentionKind::MLA)
        return 1;
    return q_heads / kv_heads;
}

int64_t
ModelConfig::kvFloatsPerTokenPerLayer() const
{
    if (attention == AttentionKind::MLA)
        return mla_latent_dim;
    return 2 * kv_heads * head_dim; // K and V
}

int64_t
ModelConfig::parameterCount() const
{
    const int64_t q_dim = q_heads * head_dim;
    int64_t attn;
    if (attention == AttentionKind::MLA) {
        // q proj + down proj to latent + per-head K/V up-projections
        // + output proj.
        attn = hidden * q_dim            // W_q
             + hidden * mla_latent_dim   // W_dkv
             + mla_latent_dim * q_dim    // W_uk
             + mla_latent_dim * q_dim    // W_uv
             + q_dim * hidden;           // W_o
    } else {
        const int64_t kv_dim = kv_heads * head_dim;
        attn = hidden * q_dim + 2 * hidden * kv_dim + q_dim * hidden;
    }
    const int64_t ffn = 3 * hidden * ffn_hidden; // gate, up, down
    const int64_t norms = 2 * hidden;
    const int64_t per_layer = attn + ffn + norms;
    const int64_t embed = vocab * hidden;
    const int64_t lm_head = tied_embeddings ? 0 : vocab * hidden;
    const int64_t final_norm = hidden;
    return layers * per_layer + embed + lm_head + final_norm;
}

int64_t
ModelConfig::parameterBytesFp16() const
{
    return 2 * parameterCount();
}

int64_t
ModelConfig::kvBytesPerToken() const
{
    return 2 * layers * kvFloatsPerTokenPerLayer();
}

void
ModelConfig::validate() const
{
    if (layers <= 0 || q_heads <= 0 || head_dim <= 0 || hidden <= 0 ||
        ffn_hidden <= 0 || vocab <= 0) {
        throw std::invalid_argument("ModelConfig: non-positive dimension");
    }
    if (head_dim % 2 != 0)
        throw std::invalid_argument("ModelConfig: head_dim must be even");
    switch (attention) {
      case AttentionKind::MHA:
        if (kv_heads != q_heads)
            throw std::invalid_argument("MHA requires kv_heads == q_heads");
        break;
      case AttentionKind::GQA:
        if (kv_heads <= 0 || q_heads % kv_heads != 0)
            throw std::invalid_argument("GQA requires q_heads % kv_heads == 0");
        break;
      case AttentionKind::MQA:
        if (kv_heads != 1)
            throw std::invalid_argument("MQA requires kv_heads == 1");
        break;
      case AttentionKind::MLA:
        if (mla_latent_dim <= 0)
            throw std::invalid_argument("MLA requires mla_latent_dim > 0");
        break;
    }
}

ModelConfig
tinyConfig(AttentionKind kind)
{
    ModelConfig c;
    c.name = std::string("tiny-") + attentionKindName(kind);
    c.attention = kind;
    c.layers = 4;
    c.q_heads = 4;
    c.head_dim = 16;
    c.hidden = 64;
    c.ffn_hidden = 128;
    c.vocab = 256;
    switch (kind) {
      case AttentionKind::MHA: c.kv_heads = 4; break;
      case AttentionKind::GQA: c.kv_heads = 2; break;
      case AttentionKind::MQA: c.kv_heads = 1; break;
      case AttentionKind::MLA:
        c.kv_heads = 4;
        c.mla_latent_dim = 32;
        break;
    }
    return c;
}

ModelConfig
benchConfig(AttentionKind kind)
{
    ModelConfig c = tinyConfig(kind);
    c.name = std::string("bench-") + attentionKindName(kind);
    c.layers = 8;
    c.q_heads = 8;
    c.kv_heads = (kind == AttentionKind::MHA)   ? 8
                 : (kind == AttentionKind::GQA) ? 4
                 : (kind == AttentionKind::MQA) ? 1
                                                : 8;
    c.hidden = 128;
    c.ffn_hidden = 256;
    c.vocab = 512;
    if (kind == AttentionKind::MLA)
        c.mla_latent_dim = 64;
    return c;
}

ModelConfig
llama31_8bGeometry()
{
    ModelConfig c;
    c.name = "Llama3.1-8B";
    c.attention = AttentionKind::GQA;
    c.layers = 32;
    c.q_heads = 32;
    c.kv_heads = 8;
    c.head_dim = 128;
    c.hidden = 4096;
    c.ffn_hidden = 14336;
    c.vocab = 128256;
    c.rope_theta = 500000.0f;
    return c;
}

ModelConfig
deepseekDistillLlama8bGeometry()
{
    ModelConfig c = llama31_8bGeometry();
    c.name = "DeepSeek-Distill-Llama-8B";
    return c;
}

ModelConfig
qwen3_8bGeometry()
{
    ModelConfig c;
    c.name = "Qwen3-8B";
    c.attention = AttentionKind::GQA;
    c.layers = 36;
    c.q_heads = 32;
    c.kv_heads = 8;
    c.head_dim = 128;
    c.hidden = 4096;
    c.ffn_hidden = 12288;
    c.vocab = 151936;
    c.rope_theta = 1000000.0f;
    return c;
}

ModelConfig
reasoningLlama32_1bGeometry()
{
    ModelConfig c;
    c.name = "Reasoning-Llama-3.2-1B";
    c.attention = AttentionKind::GQA;
    c.layers = 16;
    c.q_heads = 32;
    c.kv_heads = 8;
    c.head_dim = 64;
    c.hidden = 2048;
    c.ffn_hidden = 8192;
    c.vocab = 128256;
    c.rope_theta = 500000.0f;
    c.tied_embeddings = true; // Llama3.2-1B ties its LM head
    return c;
}

namespace {

/** The one name -> preset table (paper §7.1's model list). */
const std::vector<std::pair<std::string, ModelConfig (*)()>> &
geometryTable()
{
    static const std::vector<std::pair<std::string, ModelConfig (*)()>>
        table = {
            {"Llama3.1-8B", &llama31_8bGeometry},
            {"DeepSeek-Distill-Llama-8B",
             &deepseekDistillLlama8bGeometry},
            {"Qwen3-8B", &qwen3_8bGeometry},
            {"Reasoning-Llama-3.2-1B", &reasoningLlama32_1bGeometry},
        };
    return table;
}

} // namespace

std::vector<std::string>
geometryPresetNames()
{
    std::vector<std::string> names;
    names.reserve(geometryTable().size());
    for (const auto &[name, fn] : geometryTable()) {
        (void)fn;
        names.push_back(name);
    }
    return names;
}

ModelConfig
geometryPreset(const std::string &name)
{
    for (const auto &[preset, fn] : geometryTable()) {
        if (preset == name)
            return fn();
    }
    throw std::invalid_argument("geometryPreset: unknown preset '" +
                                name + "'");
}

int64_t
prunedRetrievalHeadParams(const ModelConfig &base)
{
    const int64_t q_dim = base.q_heads * base.head_dim;
    if (base.attention == AttentionKind::MLA) {
        return base.hidden * q_dim +                 // W_q
               base.hidden * base.mla_latent_dim +   // W_dkv
               base.mla_latent_dim * q_dim +         // W_uk
               base.hidden;                          // norm
    }
    const int64_t kv_dim = base.kv_heads * base.head_dim;
    return base.hidden * (q_dim + kv_dim) + base.hidden;
}

ModelConfig
dlmGeometryFor(const ModelConfig &base)
{
    ModelConfig c = base;
    c.name = base.name + "-DLM";
    c.layers = 1;
    // EAGLE-3 drafts train with a native 2K window; the retrieval head
    // stretches it with YaRN to cover the base model's context (§4.3).
    c.yarn_scale = 16.0f;
    return c;
}

} // namespace model
} // namespace specontext
