/**
 * @file
 * Synthetic transformer decoder with prefill and autoregressive decode,
 * KV caching, and pluggable per-layer sparse attention.
 *
 * The sparse-attention hook is the seam every system in the paper plugs
 * into: baselines (Quest, ClusterKV, ShadowKV) pass a LayerSelector that
 * performs query-aware retrieval *inside* each layer (the serialized
 * dataflow of Fig. 2(a)), while SpeContext passes a selector that simply
 * returns the retrieval head's precomputed global selection (eliminating
 * the layer-wise data dependency, §5.1).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "kvcache/kv_cache.h"
#include "model/config.h"
#include "model/weights.h"
#include "tensor/tensor.h"

namespace specontext {
namespace model {

/**
 * Sparse KV selection for one layer: one sorted list of attended cache
 * positions per KV head (per query head for MHA/MLA). An empty
 * `per_head` means full attention for this layer. The token being
 * generated always attends to its own freshly appended KV in addition
 * to the listed positions.
 */
struct LayerSelection
{
    std::vector<std::vector<int64_t>> per_head;

    bool full() const { return per_head.empty(); }

    /** Full-attention selection. */
    static LayerSelection fullAttention() { return {}; }
};

/**
 * Per-layer retrieval callback. Arguments: layer index and the
 * RoPE-rotated query tensor (q_heads x head_dim) of the current token.
 * Cache positions [0, ctx) are selectable where ctx is the number of
 * previously cached tokens.
 */
using LayerSelector =
    std::function<LayerSelection(int64_t layer, const Tensor &q)>;

/** Optional per-step instrumentation. */
struct StepTrace
{
    /** When true, per-layer attention probabilities are recorded. */
    bool record_attention = false;
    /**
     * attention[l] is (q_heads x ctx+1): softmax probabilities of the
     * generated token over all cache positions (sparse runs scatter
     * their probabilities into the selected slots, zero elsewhere).
     */
    std::vector<Tensor> attention;
    /** Hidden state entering the LM head (after final norm). */
    Tensor final_hidden;
};

/** Decoder-only transformer over a KVCacheSet. */
class Transformer
{
  public:
    Transformer(ModelConfig config, ModelWeights weights);

    /** Convenience: config + fresh random weights from seed. */
    static Transformer randomInit(const ModelConfig &config, uint64_t seed,
                                  const InitOptions &opts = InitOptions());

    const ModelConfig &config() const { return config_; }
    const ModelWeights &weights() const { return weights_; }

    /**
     * Full-attention prefill: process all tokens, fill the cache, return
     * logits of the last token. If trace is non-null it is filled for
     * the final token only.
     */
    Tensor prefill(const std::vector<int32_t> &tokens,
                   kv::KVCacheSet &cache, StepTrace *trace = nullptr) const;

    /**
     * One decode step: appends the token's KV to every layer and
     * returns next-token logits. selector==nullptr means full
     * attention.
     */
    Tensor decodeStep(int32_t token, kv::KVCacheSet &cache,
                      const LayerSelector *selector = nullptr,
                      StepTrace *trace = nullptr) const;

    /** Greedy argmax over logits. */
    int32_t greedy(const Tensor &logits) const;

    /**
     * Current token's RoPE-rotated queries/keys of one layer given the
     * layer input (used by retrievers that need raw Q). Returns
     * (q_heads x head_dim).
     */
    Tensor projectQuery(int64_t layer, const Tensor &normed_x,
                        int64_t pos) const;

  private:
    ModelConfig config_;
    ModelWeights weights_;

    /** Attention for one layer; returns the flattened head outputs. */
    Tensor attentionLayer(int64_t layer, const Tensor &normed_x,
                          kv::KVCacheSet &cache, int64_t pos,
                          const LayerSelector *selector,
                          StepTrace *trace) const;

    Tensor ffnLayer(int64_t layer, const Tensor &normed_x) const;
};

} // namespace model
} // namespace specontext
