#include "model/tokenizer.h"

#include <sstream>
#include <stdexcept>

#include "tensor/hash.h"

namespace specontext {
namespace model {

ToyTokenizer::ToyTokenizer(int64_t vocab)
    : vocab_(vocab)
{
    if (vocab < 4)
        throw std::invalid_argument("vocab too small for ToyTokenizer");
}

int32_t
ToyTokenizer::wordId(const std::string &word) const
{
    // FNV-1a, mapped into [2, vocab) so BOS/EOS stay reserved.
    const uint64_t h = fnv1a64(word.data(), word.size());
    const int32_t id =
        static_cast<int32_t>(2 + h % static_cast<uint64_t>(vocab_ - 2));
    names_[id] = word;
    return id;
}

std::vector<int32_t>
ToyTokenizer::encode(const std::string &text) const
{
    std::vector<int32_t> out;
    std::istringstream is(text);
    std::string word;
    while (is >> word)
        out.push_back(wordId(word));
    return out;
}

std::string
ToyTokenizer::tokenName(int32_t id) const
{
    if (id == kBos)
        return "<bos>";
    if (id == kEos)
        return "<eos>";
    auto it = names_.find(id);
    if (it != names_.end())
        return it->second;
    return "tok" + std::to_string(id);
}

} // namespace model
} // namespace specontext
