/**
 * @file
 * Weight tensors of the synthetic transformer and their initialization.
 *
 * Initialization is not plain i.i.d. noise: two structural knobs make
 * the synthetic model behave like a trained LM in the ways that matter
 * to KV selection:
 *
 *  - `retrieval_affinity` couples each head's query and key projections
 *    (W_q ≈ a·W_k + noise), so Q·K^T behaves like a similarity kernel
 *    and attention genuinely focuses on contextually related tokens
 *    (this is what makes needle/QA workloads meaningful);
 *  - `residual_scale` shrinks the output/down projections so the
 *    residual stream stays embedding-dominated, the "homology" property
 *    (§3.2) that lets a 1-layer DLM reading raw embeddings mimic the
 *    deep model's information focus.
 */
#pragma once

#include <cstdint>

#include "model/config.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace specontext {
namespace model {

/** Knobs controlling the structure of random initialization. */
struct InitOptions
{
    float retrieval_affinity = 0.7f; ///< W_q/W_k coupling in [0,1]
    float residual_scale = 0.35f;    ///< scale of o_proj/down_proj init
    /**
     * Strength of a shared rank-1 component in each head's key (and,
     * via affinity, query) projection. It creates "heavy hitter"
     * tokens that receive large attention from *every* query — the
     * attention-sink/persistent-token structure of trained LLMs that
     * both the >80 % adjacent-step selection overlap (Fig. 6(b)) and
     * H2O-style selection rely on. Disabled by default: with random
     * (untrained) deep layers the spike slightly decouples the DLM's
     * ranking from the teacher's and costs fidelity; enable it to
     * study sink-driven selection stability (see the ablation bench).
     */
    float key_spike = 0.0f;
};

/** Weights of one transformer decoder layer. */
struct LayerWeights
{
    Tensor attn_norm;  ///< (hidden) RMSNorm gain
    Tensor wq;         ///< (hidden, q_heads*head_dim)
    Tensor wk;         ///< (hidden, kv_heads*head_dim); MLA: unused
    Tensor wv;         ///< (hidden, kv_heads*head_dim); MLA: unused
    Tensor wo;         ///< (q_heads*head_dim, hidden)
    // MLA-only projections
    Tensor w_dkv;      ///< (hidden, latent_dim)
    Tensor w_uk;       ///< (latent_dim, q_heads*head_dim)
    Tensor w_uv;       ///< (latent_dim, q_heads*head_dim)
    Tensor ffn_norm;   ///< (hidden)
    Tensor w_gate;     ///< (hidden, ffn_hidden)
    Tensor w_up;       ///< (hidden, ffn_hidden)
    Tensor w_down;     ///< (ffn_hidden, hidden)
};

/** All weights of a model instance. */
struct ModelWeights
{
    Tensor embedding;  ///< (vocab, hidden)
    Tensor final_norm; ///< (hidden)
    Tensor lm_head;    ///< (hidden, vocab)
    std::vector<LayerWeights> layers;

    /**
     * Randomly initialize weights for config from seed with the
     * structural options above.
     */
    static ModelWeights random(const ModelConfig &config, uint64_t seed,
                               const InitOptions &opts = InitOptions());
};

} // namespace model
} // namespace specontext
