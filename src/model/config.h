/**
 * @file
 * Model architecture configuration and the geometry presets used by the
 * paper's evaluation (Section 7.1).
 *
 * Two kinds of configs exist:
 *  - *live* configs: small dimensions that this repository actually runs
 *    forward passes with (accuracy experiments);
 *  - *geometry* presets mirroring the paper's models (Llama3.1-8B,
 *    DeepSeek-R1-Distill-Llama-8B, Qwen3-8B, Reasoning-Llama-3.2-1B):
 *    their layer/head/dim/vocab shapes feed the analytical cost and
 *    memory models (Sections 5-7) without running real 8B compute.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace specontext {
namespace model {

/** Attention mechanism variants supported by the retrieval head (§4.3). */
enum class AttentionKind {
    MHA, ///< multi-head attention: kv_heads == q_heads
    GQA, ///< grouped-query attention: kv_heads < q_heads
    MQA, ///< multi-query attention: kv_heads == 1
    MLA, ///< multi-head latent attention: cache stores latent c vectors
};

/** Printable name of an attention kind. */
const char *attentionKindName(AttentionKind kind);

/** Full architectural description of a transformer LM. */
struct ModelConfig
{
    std::string name = "unnamed";
    AttentionKind attention = AttentionKind::GQA;
    int64_t layers = 4;
    int64_t q_heads = 4;
    int64_t kv_heads = 2;       ///< ignored for MLA (latent cache)
    int64_t head_dim = 16;
    int64_t hidden = 64;        ///< residual stream width
    int64_t ffn_hidden = 128;   ///< SwiGLU intermediate width
    int64_t vocab = 512;
    int64_t mla_latent_dim = 0; ///< latent width; only used when MLA
    float rope_theta = 10000.0f;
    /**
     * YaRN positional scale: positions are divided by this factor before
     * RoPE, the training-free context-extension trick the paper applies
     * to the 2K-context DLM (Section 4.3).
     */
    float yarn_scale = 1.0f;
    /** LM head shares the embedding table (Llama3.2-1B style). */
    bool tied_embeddings = false;

    /** Query heads per KV head (the alpha group count of Table 1). */
    int64_t groups() const;

    /** Per-token KV cache floats for one layer. */
    int64_t kvFloatsPerTokenPerLayer() const;

    /** Total parameter count of the dense model. */
    int64_t parameterCount() const;

    /** Parameter memory in bytes at FP16 (paper stores weights in FP16). */
    int64_t parameterBytesFp16() const;

    /**
     * KV cache bytes for one token across all layers at FP16
     * (the 2-byte K + 2-byte V "coefficient 4" of Eq. 6).
     */
    int64_t kvBytesPerToken() const;

    /** Throws std::invalid_argument when fields are inconsistent. */
    void validate() const;

    /** Exact fieldwise equality (geometry memoization keys). */
    bool operator==(const ModelConfig &o) const
    {
        return name == o.name && attention == o.attention &&
               layers == o.layers && q_heads == o.q_heads &&
               kv_heads == o.kv_heads && head_dim == o.head_dim &&
               hidden == o.hidden && ffn_hidden == o.ffn_hidden &&
               vocab == o.vocab && mla_latent_dim == o.mla_latent_dim &&
               rope_theta == o.rope_theta &&
               yarn_scale == o.yarn_scale &&
               tied_embeddings == o.tied_embeddings;
    }
    bool operator!=(const ModelConfig &o) const { return !(*this == o); }
};

/** Small live config used by tests/examples; runs real forward passes. */
ModelConfig tinyConfig(AttentionKind kind = AttentionKind::GQA);

/** Live config sized for the accuracy benches (a bit larger than tiny). */
ModelConfig benchConfig(AttentionKind kind = AttentionKind::GQA);

/** Geometry of Llama3.1-8B (32 layers, GQA 32/8, 4096 hidden, 128K vocab). */
ModelConfig llama31_8bGeometry();

/** Geometry of DeepSeek-R1-Distill-Llama-8B (same skeleton as Llama3-8B). */
ModelConfig deepseekDistillLlama8bGeometry();

/** Geometry of Qwen3-8B (36 layers, GQA 32/8, 151K vocab). */
ModelConfig qwen3_8bGeometry();

/** Geometry of Reasoning-Llama-3.2-1B (16 layers, GQA 32/8, 2048 hidden). */
ModelConfig reasoningLlama32_1bGeometry();

/**
 * Geometry of the EAGLE-3 style DLM for a given base model: one decoder
 * layer, same head layout, same vocab (~0.5B params for an 8B base).
 */
ModelConfig dlmGeometryFor(const ModelConfig &base);

/**
 * Names of the paper-scale geometry presets, in the paper's evaluation
 * order — the single source benches iterate instead of hardcoding
 * preset lists.
 */
std::vector<std::string> geometryPresetNames();

/** Look up a geometry preset by its ModelConfig::name.
 *  @throws std::invalid_argument for unknown names. */
ModelConfig geometryPreset(const std::string &name);

/**
 * Parameters of the pruned retrieval head for a base model: input norm
 * plus the DLM layer's Q/K projections only (the embedding is shared
 * with the LLM). ~0.03B (~60 MB FP16) for an 8B base — the deployed
 * footprint of SpeContext's C1 (paper §7.4).
 */
int64_t prunedRetrievalHeadParams(const ModelConfig &base);

} // namespace model
} // namespace specontext
