/**
 * @file
 * Elastic loading (paper Section 5.4): between adjacent token
 * generations the selected KV sets overlap heavily (>80 %, Fig. 6(b)),
 * so only the set difference S_now − S_last needs to cross PCIe; the
 * slots of S_last − S_now are overwritten in place (Tensor.copy_()-
 * style). With a fixed budget |S_last| == |S_now|, so the evicted and
 * loaded counts match.
 *
 * The loader tracks per-head resident sets and answers "how many
 * tokens must move" — the byte pricing happens in the timing engine.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/transformer.h"

namespace specontext {
namespace core {

/** Per-step transfer accounting produced by the loader. */
struct LoadPlan
{
    int64_t tokens_to_load = 0;  ///< Σ_head |S_now − S_last|
    int64_t tokens_reused = 0;   ///< Σ_head |S_now ∩ S_last|
    int64_t tokens_evicted = 0;  ///< Σ_head |S_last − S_now|

    /** Fraction of the new selection already resident. */
    double
    reuseFraction() const
    {
        const int64_t total = tokens_to_load + tokens_reused;
        return total == 0 ? 1.0
                          : static_cast<double>(tokens_reused) / total;
    }
};

/** Tracks GPU-resident KV index sets and computes elastic diffs. */
class ElasticLoader
{
  public:
    /**
     * @param elastic when false the loader reports the full selection
     *        as "to load" every step (the ablation baseline C1-only).
     */
    explicit ElasticLoader(bool elastic = true) : elastic_(elastic) {}

    bool elastic() const { return elastic_; }

    /**
     * Account the transition to a new selection; updates the resident
     * sets. Selections must carry sorted position lists (as all
     * retrievers in this repo produce).
     */
    LoadPlan update(const model::LayerSelection &now);

    /** Resident set of one head (empty before the first update). */
    const std::vector<int64_t> &resident(int64_t head) const;

    /** Cumulative tokens loaded since reset. */
    int64_t totalLoaded() const { return total_loaded_; }

    /** Cumulative tokens a non-elastic loader would have moved. */
    int64_t totalFullBudget() const { return total_full_; }

    /** Per-step reuse fractions observed (for Fig. 6(b)). */
    const std::vector<double> &reuseHistory() const { return history_; }

    void reset();

  private:
    bool elastic_;
    std::vector<std::vector<int64_t>> resident_;
    int64_t total_loaded_ = 0;
    int64_t total_full_ = 0;
    std::vector<double> history_;
};

} // namespace core
} // namespace specontext
