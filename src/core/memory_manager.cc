#include "core/memory_manager.h"

namespace specontext {
namespace core {

const char *
offloadPolicyName(OffloadPolicy p)
{
    switch (p) {
      case OffloadPolicy::AllGpu: return "AllGpu";
      case OffloadPolicy::AllCpu: return "AllCpu";
      case OffloadPolicy::Adaptive: return "Adaptive";
    }
    return "?";
}

AdaptiveMemoryManager::AdaptiveMemoryManager(const sim::MemoryModel &mm,
                                             OffloadPolicy policy)
    : mm_(mm), policy_(policy), thresholds_(mm.thresholds())
{
}

std::vector<int64_t>
AdaptiveMemoryManager::onSequenceLength(int64_t s,
                                        kv::TierPlacement &placement)
{
    std::vector<int64_t> offloaded;

    if (policy_ == OffloadPolicy::AllGpu)
        return offloaded; // never offloads; overflow checked separately

    if (policy_ == OffloadPolicy::AllCpu) {
        if (!initialized_) {
            initialized_ = true;
            for (int64_t l = placement.layers() - 1; l >= 0; --l) {
                placement.setTier(l, kv::Tier::CPU);
                offloaded.push_back(l);
            }
        }
        return offloaded;
    }

    // Adaptive (Algorithm 2): while S >= S_T[L_CPU] and L_CPU < L,
    // offload the KV cache of layer (L - L_CPU - 1).
    initialized_ = true;
    const int64_t l = placement.layers();
    while (placement.cpuLayers() < l &&
           s >= thresholds_.at(placement.cpuLayers())) {
        const int64_t victim = placement.offloadDeepestResident();
        if (victim < 0)
            break;
        offloaded.push_back(victim);
    }
    return offloaded;
}

bool
AdaptiveMemoryManager::allGpuOverflows(int64_t s) const
{
    return !mm_.allFitsOnGpu(s);
}

} // namespace core
} // namespace specontext
