/**
 * @file
 * DEPRECATION SHIM — scheduled for removal next PR.
 *
 * The old `core::SystemKind` enum and its helpers, kept for one PR so
 * out-of-tree callers can migrate to the string-keyed SystemRegistry
 * (core/system_model.h). This file contains the ONLY remaining switch
 * over SystemKind in the repository: the enum → registry-name map.
 *
 * Migration:
 *     cfg.system = SystemKind::SpeContext;            // old
 *     cfg.system = SystemRegistry::create("SpeContext", opts); // new
 */
#pragma once

#include "core/system_model.h"

namespace specontext {
namespace core {

/** @deprecated Use SystemRegistry names instead. */
enum class SystemKind {
    HFEager,       ///< HuggingFace full attention, eager kernels
    FlashAttention,///< full attention, fused kernel
    FlashInfer,    ///< full attention, fused + batch-scheduled
    Quest,
    ClusterKV,
    ShadowKV,
    SpeContext,
};

/** @deprecated The enum value's registry name (the one enum switch
 *  left in the tree). */
const char *legacySystemName(SystemKind kind);

/** @deprecated Old display-name helper; now identical to
 *  legacySystemName(). */
inline const char *
systemKindName(SystemKind kind)
{
    return legacySystemName(kind);
}

/** @deprecated Resolve an enum value through the registry:
 *  SystemRegistry::create(legacySystemName(kind), opts). */
std::shared_ptr<const SystemModel>
systemFromKind(SystemKind kind, const SystemOptions &opts = {});

} // namespace core
} // namespace specontext
