#include "core/elastic_loader.h"

#include <stdexcept>

#include "tensor/topk.h"

namespace specontext {
namespace core {

LoadPlan
ElasticLoader::update(const model::LayerSelection &now)
{
    LoadPlan plan;
    const int64_t heads = static_cast<int64_t>(now.per_head.size());
    if (resident_.empty())
        resident_.resize(heads);
    if (static_cast<int64_t>(resident_.size()) != heads)
        throw std::invalid_argument("selection head count changed");

    double reused_frac_num = 0.0;
    double reused_frac_den = 0.0;
    for (int64_t h = 0; h < heads; ++h) {
        const auto &want = now.per_head[h];
        if (elastic_) {
            const auto load = sortedDifference(want, resident_[h]);
            const auto evict = sortedDifference(resident_[h], want);
            plan.tokens_to_load += static_cast<int64_t>(load.size());
            plan.tokens_evicted += static_cast<int64_t>(evict.size());
            plan.tokens_reused +=
                static_cast<int64_t>(want.size() - load.size());
        } else {
            plan.tokens_to_load += static_cast<int64_t>(want.size());
            plan.tokens_evicted +=
                static_cast<int64_t>(resident_[h].size());
        }
        reused_frac_num += static_cast<double>(plan.tokens_reused);
        reused_frac_den += static_cast<double>(want.size());
        resident_[h] = want;
    }

    total_loaded_ += plan.tokens_to_load;
    total_full_ += plan.tokens_to_load + plan.tokens_reused;
    history_.push_back(plan.reuseFraction());
    return plan;
}

const std::vector<int64_t> &
ElasticLoader::resident(int64_t head) const
{
    static const std::vector<int64_t> kEmpty;
    if (head < 0 || head >= static_cast<int64_t>(resident_.size()))
        return kEmpty;
    return resident_[head];
}

void
ElasticLoader::reset()
{
    resident_.clear();
    total_loaded_ = 0;
    total_full_ = 0;
    history_.clear();
}

} // namespace core
} // namespace specontext
