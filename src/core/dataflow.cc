#include "core/dataflow.h"

#include <algorithm>

#include "core/system_model.h"

namespace specontext {
namespace core {

const char *
dataflowKindName(DataflowKind k)
{
    switch (k) {
      case DataflowKind::PrefetchFullKV: return "PrefetchFullKV";
      case DataflowKind::FetchSparseKV: return "FetchSparseKV";
      case DataflowKind::PrefetchSparseKV: return "PrefetchSparseKV";
      case DataflowKind::PrefetchSparseV: return "PrefetchSparseV";
      case DataflowKind::SpeContextElastic: return "SpeContext";
      case DataflowKind::ResidentKV: return "ResidentKV";
    }
    return "?";
}

DataflowResult
simulateTokenDataflow(DataflowKind kind, const DataflowParams &p)
{
    const sim::CostModel cost(p.hw, p.backend);
    const model::ModelConfig &m = p.llm;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    const int64_t R = p.batch;

    // Per-layer component durations.
    const sim::DecodeBreakdown full =
        cost.decodeStepBreakdown(m, R, p.seq_len);
    const sim::DecodeBreakdown sparse =
        cost.decodeStepBreakdown(m, R, std::min(p.budget, p.seq_len));
    const double ffn_gemm_layer = sparse.gemm / m.layers;
    const double attn_full_layer = full.attn / m.layers;
    const double attn_sparse_layer = sparse.attn / m.layers;

    const double full_xfer_layer = cost.pcieSeconds(R * p.seq_len * kvb);
    const double budget_xfer_layer =
        cost.pcieSeconds(R * std::min(p.budget, p.seq_len) * kvb);
    const double retr_layer = cost.retrievalSeconds(
        2.0 * R * m.q_heads * m.head_dim * (p.seq_len / 16), p.seq_len / 16);

    sim::Timeline tl;
    using sim::StreamId;

    switch (kind) {
      case DataflowKind::PrefetchFullKV: {
        // Copy stream prefetches each layer's full KV; attention waits.
        for (int64_t l = 0; l < m.layers; ++l) {
            sim::Event kv =
                tl.enqueue(StreamId::Copy, full_xfer_layer, "transfer");
            tl.waitEvent(StreamId::Compute, kv);
            tl.enqueue(StreamId::Compute, attn_full_layer, "attn");
            tl.enqueue(StreamId::Compute, ffn_gemm_layer, "ffn");
        }
        break;
      }
      case DataflowKind::FetchSparseKV: {
        // Retrieve, then fetch, then attend — all serialized. The
        // transfer cannot start before this layer's retrieval result
        // exists (the data dependency of Challenge-1), so the copy
        // stream waits on the retrieval event.
        for (int64_t l = 0; l < m.layers; ++l) {
            sim::Event retrieved =
                tl.enqueue(StreamId::Compute, retr_layer, "retrieval");
            tl.enqueue(StreamId::Compute, cost.syncSeconds(), "sync");
            tl.waitEvent(StreamId::Copy, retrieved);
            sim::Event kv = tl.enqueue(StreamId::Copy, budget_xfer_layer,
                                       "transfer");
            tl.waitEvent(StreamId::Compute, kv);
            tl.enqueue(StreamId::Compute, attn_sparse_layer, "attn");
            tl.enqueue(StreamId::Compute, ffn_gemm_layer, "ffn");
        }
        break;
      }
      case DataflowKind::PrefetchSparseKV: {
        // Speculative prefetch hides the hit fraction one layer ahead;
        // misses are fetched synchronously.
        const double hit_xfer =
            budget_xfer_layer * (1.0 - p.speculative_miss);
        const double miss_xfer = budget_xfer_layer * p.speculative_miss;
        sim::Event ready =
            tl.enqueue(StreamId::Copy, hit_xfer, "transfer");
        for (int64_t l = 0; l < m.layers; ++l) {
            sim::Event retrieved =
                tl.enqueue(StreamId::Compute, retr_layer, "retrieval");
            tl.waitEvent(StreamId::Compute, ready);
            // Misses are only known after this layer's retrieval.
            tl.waitEvent(StreamId::Copy, retrieved);
            sim::Event miss =
                tl.enqueue(StreamId::Copy, miss_xfer, "transfer");
            tl.waitEvent(StreamId::Compute, miss);
            // Next layer's speculative prefetch starts now.
            ready = tl.enqueue(StreamId::Copy, hit_xfer, "transfer");
            tl.enqueue(StreamId::Compute, attn_sparse_layer, "attn");
            tl.enqueue(StreamId::Compute, ffn_gemm_layer, "ffn");
        }
        break;
      }
      case DataflowKind::PrefetchSparseV: {
        // ShadowKV: score on quantized keys (compute), fetch V on the
        // copy stream while K is reconstructed, attend when V lands.
        const double v_xfer_layer =
            cost.pcieSeconds(R * std::min(p.budget, p.seq_len) * kvb / 2);
        const double krecons = cost.gemmSeconds(
            R * std::min(p.budget, p.seq_len), m.kv_heads * m.head_dim,
            64);
        for (int64_t l = 0; l < m.layers; ++l) {
            sim::Event retrieved =
                tl.enqueue(StreamId::Compute, retr_layer, "retrieval");
            tl.waitEvent(StreamId::Copy, retrieved);
            sim::Event v =
                tl.enqueue(StreamId::Copy, v_xfer_layer, "transfer");
            tl.enqueue(StreamId::Compute, krecons, "krecons");
            tl.waitEvent(StreamId::Compute, v);
            tl.enqueue(StreamId::Compute, attn_sparse_layer, "attn");
            tl.enqueue(StreamId::Compute, ffn_gemm_layer, "ffn");
        }
        break;
      }
      case DataflowKind::SpeContextElastic: {
        // Selection precedes the LLM: the head's cost sits up front on
        // the compute stream, then the copy stream runs ahead of the
        // layers moving only the elastic diffs.
        const int64_t q_dim = m.q_heads * m.head_dim;
        const int64_t kv_dim =
            m.attention == model::AttentionKind::MLA
                ? m.mla_latent_dim
                : m.kv_heads * m.head_dim;
        const double head =
            cost.gemmSeconds(R, q_dim + kv_dim, m.hidden) +
            cost.retrievalSeconds(
                2.0 * R * m.q_heads * m.head_dim * p.seq_len, p.seq_len);
        sim::Event sel = tl.enqueue(StreamId::Compute, head, "head");
        tl.waitEvent(StreamId::Copy, sel);

        const double diff_xfer_layer = cost.pcieSeconds(
            R *
            static_cast<int64_t>((1.0 - p.elastic_overlap) *
                                 std::min(p.budget, p.seq_len)) *
            kvb);
        std::vector<sim::Event> layer_ready(m.layers);
        for (int64_t l = 0; l < m.layers; ++l)
            layer_ready[l] =
                tl.enqueue(StreamId::Copy, diff_xfer_layer, "transfer");
        for (int64_t l = 0; l < m.layers; ++l) {
            tl.waitEvent(StreamId::Compute, layer_ready[l]);
            tl.enqueue(StreamId::Compute, attn_sparse_layer, "attn");
            tl.enqueue(StreamId::Compute, ffn_gemm_layer, "ffn");
        }
        break;
      }
      case DataflowKind::ResidentKV: {
        // Permanent eviction keeps the budget-bounded cache in HBM:
        // no retrieval fetch, no transfers, the copy stream idles.
        for (int64_t l = 0; l < m.layers; ++l) {
            tl.enqueue(StreamId::Compute, attn_sparse_layer, "attn");
            tl.enqueue(StreamId::Compute, ffn_gemm_layer, "ffn");
        }
        break;
      }
    }

    DataflowResult r;
    r.token_seconds = tl.makespan();
    r.compute_busy = tl.tagSeconds("attn") + tl.tagSeconds("ffn") +
                     tl.tagSeconds("retrieval") + tl.tagSeconds("head") +
                     tl.tagSeconds("krecons") + tl.tagSeconds("sync");
    r.copy_busy = tl.tagSeconds("transfer");
    r.exposed_transfer = std::max(0.0, r.token_seconds - r.compute_busy);
    r.by_tag = tl.byTag();
    return r;
}

} // namespace core
} // namespace specontext
