/**
 * @file
 * Speculative decoding on top of SpeContext — the natural extension
 * the paper's own DLM choice invites (§2.3/§8): the EAGLE-style draft
 * model it prunes into a retrieval head can *also* draft tokens, so a
 * single distilled model provides both speculations — which tokens
 * come next (draft) and which context matters (sparsity).
 *
 * Implements greedy draft-and-verify: the DLM autoregressively
 * proposes `draft_len` tokens; the LLM consumes them one at a time and
 * accepts while its own greedy choice matches, replacing the first
 * mismatch with its correction. Optionally the LLM verifies under the
 * retrieval head's sparse selection, composing both speedups.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/transformer.h"
#include "retrieval/retrieval_head.h"

namespace specontext {
namespace core {

/** Options of the speculative generator. */
struct SpeculativeOptions
{
    int64_t draft_len = 4;   ///< tokens drafted per round
    int64_t budget = 0;      ///< >0: verify under sparse attention
};

/** Outcome of a speculative generation. */
struct SpeculativeResult
{
    std::vector<int32_t> tokens;  ///< generated sequence
    int64_t drafted = 0;          ///< tokens proposed by the DLM
    int64_t accepted = 0;         ///< drafts the LLM agreed with
    int64_t llm_rounds = 0;       ///< verify rounds (decode calls batches)

    /** Fraction of drafted tokens accepted. */
    double
    acceptanceRate() const
    {
        return drafted == 0 ? 0.0
                            : static_cast<double>(accepted) / drafted;
    }

    /** Mean tokens emitted per verification round. */
    double
    tokensPerRound() const
    {
        return llm_rounds == 0
                   ? 0.0
                   : static_cast<double>(tokens.size()) / llm_rounds;
    }
};

/** Draft-and-verify generator pairing one LLM with its DLM. */
class SpeculativeDecoder
{
  public:
    SpeculativeDecoder(const model::Transformer &llm,
                       const model::Transformer &dlm,
                       SpeculativeOptions opts);

    /**
     * Generate `steps` tokens greedily from the prompt. The output
     * token sequence is identical to plain greedy decoding of the LLM
     * (verification guarantees it) when budget == 0; with a budget,
     * verification runs under the retrieval head's selection.
     */
    SpeculativeResult generate(const std::vector<int32_t> &prompt,
                               int64_t steps) const;

  private:
    const model::Transformer &llm_;
    const model::Transformer &dlm_;
    SpeculativeOptions opts_;
};

} // namespace core
} // namespace specontext
