#include "core/live_engine.h"

#include <algorithm>

#include "tensor/ops.h"
#include "tensor/topk.h"

namespace specontext {
namespace core {

namespace {

/** Mean over heads of the adjacent-step overlap rate. */
double
selectionOverlap(const model::LayerSelection &prev,
                 const model::LayerSelection &now)
{
    if (prev.per_head.empty() || now.per_head.empty())
        return 0.0;
    const size_t heads = std::min(prev.per_head.size(),
                                  now.per_head.size());
    double sum = 0.0;
    for (size_t h = 0; h < heads; ++h)
        sum += overlapRate(prev.per_head[h], now.per_head[h]);
    return sum / static_cast<double>(heads);
}

} // namespace

Reference
LiveEngine::buildReference(const std::vector<int32_t> &prompt,
                           int64_t steps, bool record_attention) const
{
    Reference ref;
    ref.prompt = prompt;
    kv::KVCacheSet cache(llm_.config());
    Tensor logits = llm_.prefill(prompt, cache);

    for (int64_t i = 0; i < steps; ++i) {
        const int32_t tok = llm_.greedy(logits);
        ref.tokens.push_back(tok);
        model::StepTrace trace;
        trace.record_attention = record_attention;
        logits = llm_.decodeStep(tok, cache,
                                 nullptr,
                                 record_attention ? &trace : nullptr);
        ref.logits.push_back(logits.clone());
        if (record_attention)
            ref.attention.push_back(std::move(trace.attention));
    }
    return ref;
}

LiveGenResult
LiveEngine::runWithRetriever(const Reference &ref,
                             retrieval::KVRetriever &retriever) const
{
    LiveGenResult out;
    kv::KVCacheSet cache(llm_.config());
    Tensor logits = llm_.prefill(ref.prompt, cache);
    retriever.onPrefillComplete(cache, cache.sequenceLength());

    model::LayerSelection prev_sel;
    int64_t agree = 0;
    double kl_sum = 0.0;

    for (size_t i = 0; i < ref.tokens.size(); ++i) {
        model::LayerSelection layer0_sel;
        model::LayerSelector selector =
            [&](int64_t layer, const Tensor &q) {
                const int64_t ctx = cache.layer(layer).size() - 1;
                auto sel =
                    retriever.selectForLayer(layer, q, cache, ctx);
                if (layer == 0)
                    layer0_sel = sel;
                return sel;
            };
        logits = llm_.decodeStep(ref.tokens[i], cache, &selector);

        const int32_t mine = llm_.greedy(logits);
        out.tokens.push_back(mine);
        if (mine == llm_.greedy(ref.logits[i]))
            ++agree;
        kl_sum += ops::klDivergenceFromLogits(ref.logits[i], logits);

        if (i > 0)
            out.step_overlap.push_back(
                selectionOverlap(prev_sel, layer0_sel));
        prev_sel = layer0_sel;
        out.step_selections.push_back(std::move(layer0_sel));
    }

    const double n = static_cast<double>(ref.tokens.size());
    out.top1_agreement = n == 0.0 ? 1.0 : agree / n;
    out.mean_kl = n == 0.0 ? 0.0 : kl_sum / n;
    out.retrieval_score_flops = retriever.stats().score_flops;
    return out;
}

LiveGenResult
LiveEngine::runWithSpeContext(const Reference &ref,
                              retrieval::RetrievalHead &head,
                              bool elastic) const
{
    LiveGenResult out;
    kv::KVCacheSet cache(llm_.config());
    Tensor logits = llm_.prefill(ref.prompt, cache);
    head.reset();
    head.observe(ref.prompt);

    ElasticLoader loader(elastic);
    model::LayerSelection prev_sel;
    int64_t agree = 0;
    double kl_sum = 0.0;

    for (size_t i = 0; i < ref.tokens.size(); ++i) {
        // The head runs BEFORE the LLM (Fig. 3): same input token, one
        // global selection reused by every layer.
        model::LayerSelection sel = head.step(ref.tokens[i]);
        loader.update(sel);

        model::LayerSelector selector =
            [&sel](int64_t, const Tensor &) { return sel; };
        logits = llm_.decodeStep(ref.tokens[i], cache, &selector);

        const int32_t mine = llm_.greedy(logits);
        out.tokens.push_back(mine);
        if (mine == llm_.greedy(ref.logits[i]))
            ++agree;
        kl_sum += ops::klDivergenceFromLogits(ref.logits[i], logits);

        if (i > 0)
            out.step_overlap.push_back(selectionOverlap(prev_sel, sel));
        prev_sel = sel;
        out.step_selections.push_back(std::move(sel));
    }

    const double n = static_cast<double>(ref.tokens.size());
    out.top1_agreement = n == 0.0 ? 1.0 : agree / n;
    out.mean_kl = n == 0.0 ? 0.0 : kl_sum / n;
    out.reuse_history = loader.reuseHistory();
    out.tokens_loaded = loader.totalLoaded();
    out.tokens_full_budget = loader.totalFullBudget();
    out.retrieval_score_flops = head.scoreFlops();
    return out;
}

std::vector<int32_t>
LiveEngine::generate(const std::vector<int32_t> &prompt, int64_t steps,
                     retrieval::RetrievalHead *head,
                     int32_t stop_token) const
{
    kv::KVCacheSet cache(llm_.config());
    Tensor logits = llm_.prefill(prompt, cache);
    if (head) {
        head->reset();
        head->observe(prompt);
    }

    std::vector<int32_t> out;
    for (int64_t i = 0; i < steps; ++i) {
        const int32_t tok = llm_.greedy(logits);
        out.push_back(tok);
        if (stop_token >= 0 && tok == stop_token)
            break;
        if (head) {
            model::LayerSelection sel = head->step(tok);
            model::LayerSelector selector =
                [&sel](int64_t, const Tensor &) { return sel; };
            logits = llm_.decodeStep(tok, cache, &selector);
        } else {
            logits = llm_.decodeStep(tok, cache);
        }
    }
    return out;
}

std::vector<int32_t>
LiveEngine::generateWithRetriever(const std::vector<int32_t> &prompt,
                                  int64_t steps,
                                  retrieval::KVRetriever &retriever) const
{
    kv::KVCacheSet cache(llm_.config());
    Tensor logits = llm_.prefill(prompt, cache);
    retriever.onPrefillComplete(cache, cache.sequenceLength());

    std::vector<int32_t> out;
    for (int64_t i = 0; i < steps; ++i) {
        const int32_t tok = llm_.greedy(logits);
        out.push_back(tok);
        model::LayerSelector selector =
            [&](int64_t layer, const Tensor &q) {
                const int64_t ctx = cache.layer(layer).size() - 1;
                return retriever.selectForLayer(layer, q, cache, ctx);
            };
        logits = llm_.decodeStep(tok, cache, &selector);
    }
    return out;
}

} // namespace core
} // namespace specontext
