/**
 * @file
 * Live generation engine: runs *real* forward passes of the synthetic
 * transformer under full attention, under any layer-wise baseline
 * retriever, or under the SpeContext retrieval head.
 *
 * Accuracy methodology: sparse runs are teacher-forced with the
 * full-attention trajectory, and at every step the sparse model's
 * next-token distribution is compared against the full-attention
 * distribution (top-1 agreement, KL). This isolates exactly the error
 * KV selection introduces — the quantity behind every accuracy number
 * in the paper's evaluation — with no confound from trajectory
 * divergence.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/elastic_loader.h"
#include "model/transformer.h"
#include "retrieval/retriever.h"
#include "retrieval/retrieval_head.h"

namespace specontext {
namespace core {

/** Full-attention reference trajectory. */
struct Reference
{
    std::vector<int32_t> prompt;
    std::vector<int32_t> tokens;  ///< greedy continuation, length = steps
    std::vector<Tensor> logits;   ///< logits[i]: distribution after tokens[i]
    /**
     * Per-step, per-layer attention probabilities of the reference run
     * (filled when record_attention was requested): attn[i][l] is
     * (q_heads x ctx) for generation step i.
     */
    std::vector<std::vector<Tensor>> attention;
};

/** Result of a sparse live run. */
struct LiveGenResult
{
    std::vector<int32_t> tokens;   ///< greedy tokens the sparse model picked
    double top1_agreement = 0.0;   ///< fraction of steps matching reference
    double mean_kl = 0.0;          ///< mean KL(full || sparse) over steps
    std::vector<double> step_overlap; ///< adjacent-step selection overlap
    std::vector<double> reuse_history; ///< elastic loader reuse per step
    int64_t tokens_loaded = 0;     ///< elastic transfers (token count)
    int64_t tokens_full_budget = 0;///< what full reload would have moved
    double retrieval_score_flops = 0.0;
    /**
     * Selection used at each step (layer 0's for baselines, the global
     * selection for SpeContext) — workload scorers derive needle
     * coverage from these.
     */
    std::vector<model::LayerSelection> step_selections;
};

/** Engine binding a transformer to the different execution modes. */
class LiveEngine
{
  public:
    explicit LiveEngine(const model::Transformer &llm) : llm_(llm) {}

    const model::Transformer &llm() const { return llm_; }

    /**
     * Run full attention for `steps` greedy tokens and keep per-step
     * logits (and optionally attention maps) as the reference.
     */
    Reference buildReference(const std::vector<int32_t> &prompt,
                             int64_t steps,
                             bool record_attention = false) const;

    /** Teacher-forced sparse run under a layer-wise baseline. */
    LiveGenResult runWithRetriever(const Reference &ref,
                                   retrieval::KVRetriever &retriever) const;

    /**
     * Teacher-forced sparse run under the SpeContext retrieval head:
     * global selection once per step, shared by all layers, elastic
     * loading accounted.
     */
    LiveGenResult runWithSpeContext(const Reference &ref,
                                    retrieval::RetrievalHead &head,
                                    bool elastic = true) const;

    /**
     * Free-running generation (not teacher-forced) with an optional
     * retrieval head — the mode examples use. Stops at `steps` tokens
     * or when `stop_token` (if >= 0) is produced.
     */
    std::vector<int32_t> generate(const std::vector<int32_t> &prompt,
                                  int64_t steps,
                                  retrieval::RetrievalHead *head = nullptr,
                                  int32_t stop_token = -1) const;

    /** Free-running generation under a layer-wise baseline retriever. */
    std::vector<int32_t> generateWithRetriever(
        const std::vector<int32_t> &prompt, int64_t steps,
        retrieval::KVRetriever &retriever) const;

  private:
    const model::Transformer &llm_;
};

} // namespace core
} // namespace specontext
