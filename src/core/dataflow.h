/**
 * @file
 * Per-token dataflow timelines of Figure 7: how the five system
 * families interleave compute and KV movement across the two streams
 * when the KV cache lives in CPU DRAM.
 *
 *  (a) PrefetchFullKV   — full attention with offload: every layer
 *      waits for its entire KV cache to cross PCIe;
 *  (b) FetchSparseKV    — Quest/ClusterKV with offload: per-layer
 *      retrieve -> fetch budget KV -> attend, fully serialized;
 *  (c) PrefetchSparseKV — InfiniGen-style: the next layer's KV is
 *      speculatively prefetched during the current layer's compute,
 *      with a miss fraction fetched synchronously;
 *  (d) PrefetchSparseV  — ShadowKV: per-layer retrieval on quantized
 *      keys, V fetched on the copy stream, K reconstructed on GPU;
 *  (e) SpeContextElastic — ours: the global selection is known before
 *      layer 0, so the copy stream prefetches the per-layer elastic
 *      diffs ahead of the compute stream (data independence);
 *  (f) ResidentKV      — permanent-eviction systems (H2O,
 *      StreamingLLM): the budget-bounded cache lives entirely in HBM,
 *      so the copy stream is idle and every layer attends the sparse
 *      resident set back-to-back.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "model/config.h"
#include "sim/cost.h"
#include "sim/timeline.h"

namespace specontext {
namespace core {

/** Fig. 7 rows. */
enum class DataflowKind {
    PrefetchFullKV,
    FetchSparseKV,
    PrefetchSparseKV,
    PrefetchSparseV,
    SpeContextElastic,
    ResidentKV,
};

const char *dataflowKindName(DataflowKind k);

/** Inputs of one per-token timeline simulation. */
struct DataflowParams
{
    model::ModelConfig llm;
    sim::HardwareSpec hw;
    sim::KernelBackend backend = sim::KernelBackend::FlashAttention;
    int64_t batch = 1;
    int64_t seq_len = 32768;      ///< current context length
    int64_t budget = 2048;        ///< sparse methods' KV budget
    double elastic_overlap = 0.85;///< SpeContext diff reuse
    double speculative_miss = 0.25;///< InfiniGen prediction miss rate
};

/** Outcome of one decode token under a dataflow. */
struct DataflowResult
{
    double token_seconds = 0.0;   ///< makespan of the token
    double compute_busy = 0.0;    ///< compute-stream busy seconds
    double copy_busy = 0.0;       ///< copy-stream busy seconds
    double exposed_transfer = 0.0;///< transfer time not hidden
    std::map<std::string, double> by_tag;
};

/** Simulate one decode token's timeline under a dataflow kind. */
DataflowResult simulateTokenDataflow(DataflowKind kind,
                                     const DataflowParams &p);

} // namespace core
} // namespace specontext
