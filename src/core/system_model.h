/**
 * @file
 * Pluggable inference-system API: string-keyed, factory-registered
 * system models (the polymorphic replacement of the long-gone
 * `SystemKind` enum-switch dispatch).
 *
 * A `SystemModel` encapsulates everything one simulated inference
 * system knows about itself:
 *  - identity: display name and kernel backend;
 *  - memory: HBM/DRAM footprint at a batch shape (wrapping the paper's
 *    Eq. 6-8 `sim::MemoryModel` where applicable);
 *  - timing: whole-run `simulate()`, plus the two incremental quanta
 *    the continuous-batching server needs (per-request prefill and
 *    one heterogeneous-batch decode iteration);
 *  - serving: the admission test deciding whether a request's KV
 *    reservation fits next to the in-flight batch;
 *  - dataflow: which Fig. 7 row it schedules on the two-stream
 *    `sim::Timeline`.
 *
 * Systems are constructed through the string-keyed `SystemRegistry`:
 *
 *     auto sys = core::SystemRegistry::create("SpeContext", opts);
 *     core::TimingConfig cfg{llm, hw, sys, batch, in, out};
 *     core::TimingEngine().simulate(cfg);
 *
 * Adding a new system is a self-contained plugin: subclass
 * `SystemModel` in one translation unit and register a factory (see
 * src/core/systems/eviction_system.cc — the H2O worked example — and
 * the how-to in README.md). Nothing else in the repository needs to
 * change; registered systems automatically appear in the Pareto and
 * Table-3 sweeps, the serving benches, and the registry tests.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dataflow.h"
#include "model/config.h"
#include "sim/cost.h"
#include "sim/hardware.h"
#include "sim/memory_model.h"

namespace specontext {
namespace core {

class SystemModel;

/** Ablation switches of SpeContext (paper Fig. 11). */
struct SpeContextFeatures
{
    bool retrieval_head = true; ///< C1: sparse attention via DLM head
    bool async_elastic = true;  ///< C2: async prefetch + elastic loading
    bool adaptive_memory = true;///< C3: Algorithm 1/2 placement

    bool operator==(const SpeContextFeatures &o) const
    {
        return retrieval_head == o.retrieval_head &&
               async_elastic == o.async_elastic &&
               adaptive_memory == o.adaptive_memory;
    }
};

/**
 * Knobs a system is constructed with — the single options block that
 * replaces the old ad-hoc plumbing of per-system fields through
 * TimingConfig. Systems read only the fields they care about.
 */
struct SystemOptions
{
    int64_t budget = 2048;      ///< B: sparse-attention KV budget
    int64_t page_size = 16;     ///< Quest page granularity
    int64_t avg_cluster_size = 16; ///< ClusterKV mean cluster size
    int64_t cluster_iterations = 4;///< ClusterKV k-means iterations
    /**
     * Adjacent-step selection overlap used by elastic loading. The
     * default matches the >80 % the paper measures (Fig. 6(b)); benches
     * feed values measured from live runs.
     */
    double elastic_overlap = 0.85;
    SpeContextFeatures features;
    /**
     * Let full-attention systems spill KV to CPU DRAM when it does not
     * fit (HF-Accelerate style, per-step full-KV transfer). The paper
     * enables this in the edge evaluation (§7.3.2) but reports OOM for
     * full attention in the cloud tables, so it defaults off.
     */
    bool allow_full_attention_offload = false;
    /**
     * H2O's always-protected trailing tokens, excluded from eviction
     * scoring. (StreamingLLM's sink/window split needs no knob here:
     * sink + window always total `budget`, so the simulated cost is
     * split-independent; the live retriever takes its own sink size.)
     */
    int64_t recent_window = 8;
    /**
     * Bandwidth (GB/s) at which prefix-cache-matched KV blocks are
     * re-loaded into the compute working set at admission. 0 (the
     * default) keeps matched prefixes free — the historical behavior
     * BENCH_prefix.json is pinned to; a positive value charges
     * hit_tokens * kv_bytes_per_token / (gbps * 1e9) seconds per
     * admission, so cache hits skip prefill *compute* but still pay a
     * cheap KV re-load (NVLink/PCIe-class) instead of being free.
     */
    double prefix_reload_gbps = 0.0;

    /** Exact fieldwise equality: two systems created under the same
     *  registry key with equal options are behaviorally identical
     *  (systems are stateless pure functions of their options). */
    bool operator==(const SystemOptions &o) const
    {
        return budget == o.budget && page_size == o.page_size &&
               avg_cluster_size == o.avg_cluster_size &&
               cluster_iterations == o.cluster_iterations &&
               elastic_overlap == o.elastic_overlap &&
               features == o.features &&
               allow_full_attention_offload ==
                   o.allow_full_attention_offload &&
               recent_window == o.recent_window &&
               prefix_reload_gbps == o.prefix_reload_gbps;
    }
};

/** One simulated run: geometry, hardware, system, and batch shape. */
struct TimingConfig
{
    model::ModelConfig llm;     ///< geometry preset
    sim::HardwareSpec hw;
    /** System under simulation, from SystemRegistry::create(). */
    std::shared_ptr<const SystemModel> system;
    int64_t batch = 1;          ///< R
    int64_t prompt_len = 2048;  ///< input tokens per request
    int64_t gen_len = 2048;     ///< output tokens per request
};

/** Simulated outcome. */
struct TimingResult
{
    bool oom = false;
    std::string oom_reason;
    double prefill_seconds = 0.0;
    double decode_seconds = 0.0;
    /** batch * gen_len / (prefill + decode). */
    double throughput = 0.0;
    /** batch * gen_len / decode only. */
    double decode_throughput = 0.0;
    /** seconds by component tag (attn, gemm, retrieval, transfer...). */
    std::map<std::string, double> breakdown;
    int64_t final_gpu_layers = 0; ///< KV layers resident at the end
};

/** Outcome of one admission test (continuous-batching serving). */
struct AdmissionDecision
{
    bool admit = false;
    std::string reason; ///< denial diagnostic, empty on admit
};

/**
 * Reusable decode-iteration pricer bound to one (TimingConfig, system)
 * pair. seconds() returns bit-for-bit what
 * TimingEngine::decodeIterationSeconds returns on the bound config —
 * the evaluator only hoists work that is a pure function of the config
 * and the batch size (cost-model construction, memory-model geometry,
 * input validation) out of the per-iteration path, so a serving loop
 * that prices millions of decode rounds against one fixed config stops
 * re-deriving the same models every round. Obtain one from
 * SystemModel::makeDecodeEvaluator() (or the TimingEngine façade);
 * the evaluator keeps the bound config (and through it the system)
 * alive. Not thread-safe: one evaluator per replica lane.
 */
class DecodeEvaluator
{
  public:
    virtual ~DecodeEvaluator() = default;

    /** Seconds of one decode iteration over `kv_lens` — bit-identical
     *  to decodeIterationSeconds(bound_cfg, kv_lens). */
    virtual double seconds(const std::vector<int64_t> &kv_lens) = 0;

    /**
     * Bulk decode window. Between batch-composition changes
     * (admission, retirement, preemption) a continuous batcher grows
     * every in-flight context by exactly one token per round, so the
     * round-over-round evolution of the KV lengths is known in
     * advance. beginWindow(kv) followed by k nextRoundSeconds() calls
     * returns bit-for-bit what k seconds() calls would on kv, kv+1,
     * ..., kv+(k-1) (elementwise) — the window only replaces the
     * per-round O(R) reduction with incremental bookkeeping, never the
     * arithmetic that turns the reduced values into seconds. The
     * caller must re-begin the window whenever the batch changes shape
     * for any other reason. The base implementation materializes the
     * grown vector and calls seconds(); subclasses override both for
     * the O(1) path.
     */
    virtual void beginWindow(const std::vector<int64_t> &kv_lens)
    {
        win_lens_.assign(kv_lens.begin(), kv_lens.end());
        win_started_ = false;
    }

    /** Next round of the current window (see beginWindow()). */
    virtual double nextRoundSeconds()
    {
        if (win_started_)
            for (int64_t &s : win_lens_)
                ++s;
        win_started_ = true;
        return seconds(win_lens_);
    }

    /**
     * Drive an entire bulk window in one call: starting from `now`,
     * repeatedly add nextRoundSeconds() until `max_rounds` rounds have
     * run, `now` reaches `horizon`, or `t_pending` falls due — the
     * exact break conditions (and the exact per-round arithmetic, in
     * the same accumulation order) a caller-side loop over
     * nextRoundSeconds() would apply. Returns the advanced clock;
     * `rounds` gets the count run and `first_now` the clock after the
     * first round. Exists so a subclass can fuse the loop with its
     * round pricing in one translation unit — millions of per-round
     * virtual dispatches become one per window.
     */
    virtual double runWindow(int64_t max_rounds, double now,
                             double horizon, double t_pending,
                             int64_t &rounds, double &first_now)
    {
        rounds = 0;
        for (;;) {
            now += nextRoundSeconds();
            if (++rounds == 1)
                first_now = now;
            if (rounds >= max_rounds || !(now < horizon) ||
                t_pending <= now)
                break;
        }
        return now;
    }

    /**
     * Conservative lower bound on the duration of ANY decode round
     * this evaluator can price (every batch shape, every KV length).
     * A fleet driver may multiply it by a count of rounds proven to
     * run uninterrupted to bound how soon a lane could next interact
     * — the bound only widens skip-ahead windows, it never feeds the
     * simulated arithmetic, so any value that truly lower-bounds the
     * rounds is bit-safe. The base returns 0.0 (no bound, the
     * historical behavior); systems with a structural floor (e.g. a
     * weight-streaming minimum) override it.
     */
    virtual double minRoundSeconds() const { return 0.0; }

  private:
    std::vector<int64_t> win_lens_; ///< base-class window state only
    bool win_started_ = false;
};

/**
 * Reusable admission pricer bound to one (TimingConfig, system) pair —
 * the admission-side sibling of DecodeEvaluator. admit() and
 * fitsCurrent() return bit-for-bit what the same-named SystemModel
 * methods return on the bound config; the evaluator only hoists work
 * that is a pure function of the config (memory-model construction,
 * derived byte geometry) out of the per-call path, so a serving loop
 * probing admission millions of times against one fixed config stops
 * re-deriving the same models every probe. Obtain one from
 * SystemModel::makeAdmissionEvaluator(); the evaluator keeps the bound
 * config (and through it the system) alive. Not thread-safe: one
 * evaluator per replica lane.
 */
class AdmissionEvaluator
{
  public:
    virtual ~AdmissionEvaluator() = default;

    /** Bit-identical to SystemModel::admit(bound_cfg, ...). */
    virtual AdmissionDecision admit(
        const std::vector<int64_t> &in_flight_final_lens,
        int64_t candidate_prompt_len, int64_t candidate_final_len) = 0;

    /** Bit-identical to SystemModel::fitsCurrent(bound_cfg, ...). */
    virtual AdmissionDecision fitsCurrent(
        const std::vector<int64_t> &kv_lens) = 0;
};

/**
 * Reusable prefill pricer bound to one (TimingConfig, system) pair —
 * the admission-time sibling of DecodeEvaluator. seconds() returns
 * bit-for-bit what SystemModel::requestPrefillSeconds returns on the
 * bound config; the evaluator only hoists pure-function setup (cost
 * model, byte geometry, memory models per joined-batch size) out of
 * the per-admission path. Obtain one from
 * SystemModel::makePrefillEvaluator(); the evaluator keeps the bound
 * config (and through it the system) alive. Not thread-safe: one
 * evaluator per replica lane.
 */
class PrefillEvaluator
{
  public:
    virtual ~PrefillEvaluator() = default;

    /** Bit-identical to SystemModel::requestPrefillSeconds(bound_cfg,
     *  prompt_len, in_flight_requests, resident_kv_tokens). */
    virtual double seconds(int64_t prompt_len,
                           int64_t in_flight_requests,
                           int64_t resident_kv_tokens) = 0;
};

/** Bytes of KV cache per token per layer per request at FP16. */
int64_t kvBytesPerTokenPerLayer(const model::ModelConfig &m);

/** Weight + runtime-buffer bytes: 1.3x FP16 parameters (Eq. 6's
 *  coefficient); the single copy of the rule shared by every system's
 *  footprint math and the serving layer's admission control. */
int64_t weightFootprintBytes(const model::ModelConfig &m);

/** Abstract simulated inference system. */
class SystemModel
{
  public:
    explicit SystemModel(const SystemOptions &opts) : opts_(opts) {}
    virtual ~SystemModel() = default;

    /** Display name; equals the registry key it was created under. */
    virtual const char *name() const = 0;

    /** Kernel backend the system builds on. */
    virtual sim::KernelBackend backend() const = 0;

    /** Fig. 7 row this system schedules on the two-stream timeline. */
    virtual DataflowKind dataflow() const = 0;

    /** True for systems the continuous batcher can drive; wave-only
     *  systems (per-layer retrieve-then-load baselines) return false. */
    virtual bool supportsContinuousBatching() const { return false; }

    /** Largest request count simulate() supports — 1 for the
     *  single-request baselines (§7.3.1), unbounded otherwise. */
    virtual int64_t maxSimulatedBatch() const;

    const SystemOptions &options() const { return opts_; }

    // ---- Timing ----------------------------------------------------
    //
    // Input validation lives in the TimingEngine façade (the public
    // entry point): cfg.llm is validated and the stepping guards run
    // there, so implementations can assume a well-formed config and
    // plugins do not re-implement the checks.

    /** Price a whole closed [prompt, gen] run. */
    virtual TimingResult simulate(const TimingConfig &cfg) const = 0;

    /**
     * Seconds to prefill one request of `prompt_len` tokens joining the
     * running batch (chunked prefill iteration, including any
     * system-specific prompt preprocessing and KV spill transfers).
     * `in_flight_requests` and `resident_kv_tokens` describe the batch
     * being joined. Base implementation throws for wave-only systems.
     * @throws std::invalid_argument for unsupported systems.
     */
    virtual double requestPrefillSeconds(const TimingConfig &cfg,
                                         int64_t prompt_len,
                                         int64_t in_flight_requests,
                                         int64_t resident_kv_tokens) const;

    /**
     * Seconds of one decode iteration over the in-flight batch;
     * kv_lens[i] is request i's current context. Base implementation
     * throws for wave-only systems.
     * @throws std::invalid_argument for unsupported systems.
     */
    virtual double decodeIterationSeconds(
        const TimingConfig &cfg, const std::vector<int64_t> &kv_lens) const;

    /**
     * Build a DecodeEvaluator bound to `cfg` (which must name this
     * system). The base implementation returns a delegating evaluator
     * that calls decodeIterationSeconds per iteration — trivially
     * bit-identical, no caching. Systems with expensive per-call setup
     * override it to hoist pure-function work (model construction,
     * per-batch-size breakdowns) out of the iteration path; overrides
     * must keep seconds() bit-for-bit equal to the per-call method.
     */
    virtual std::unique_ptr<DecodeEvaluator> makeDecodeEvaluator(
        const TimingConfig &cfg) const;

    /**
     * Build an AdmissionEvaluator bound to `cfg` (which must name this
     * system). The base implementation returns a delegating evaluator
     * that calls admit()/fitsCurrent() per probe — trivially
     * bit-identical, no caching. Systems whose admission test builds
     * models per call override it to hoist that pure-function setup;
     * overrides must keep both probes bit-for-bit equal to the
     * per-call methods.
     */
    virtual std::unique_ptr<AdmissionEvaluator> makeAdmissionEvaluator(
        const TimingConfig &cfg) const;

    /**
     * Build a PrefillEvaluator bound to `cfg` (which must name this
     * system). The base implementation returns a delegating evaluator
     * that calls requestPrefillSeconds per admission — trivially
     * bit-identical, no caching. Systems whose prefill pricing builds
     * models per call override it to hoist that pure-function setup;
     * overrides must keep seconds() bit-for-bit equal to the per-call
     * method.
     */
    virtual std::unique_ptr<PrefillEvaluator> makePrefillEvaluator(
        const TimingConfig &cfg) const;

    // ---- Memory footprint ------------------------------------------

    /** Memory-model inputs (the {LLM, DLM, budget, GPU capacity} block
     *  of Eq. 6-8) for `requests` concurrent requests. */
    sim::MemoryModelInputs memoryInputs(const TimingConfig &cfg,
                                        int64_t requests) const;

    /**
     * Peak HBM bytes for `requests` uniform requests at context length
     * s: weights + runtime buffers + this system's resident KV. Base
     * implementation prices a fully resident FP16 KV cache.
     */
    virtual int64_t hbmFootprintBytes(const TimingConfig &cfg,
                                      int64_t requests, int64_t s) const;

    /** CPU-DRAM bytes the system parks at the same shape (offloaded or
     *  spilled KV); 0 for fully resident systems. */
    virtual int64_t dramFootprintBytes(const TimingConfig &cfg,
                                       int64_t requests, int64_t s) const;

    // ---- Serving ---------------------------------------------------

    /**
     * Admission test: can a request of `candidate_final_len` final
     * tokens (prompt `candidate_prompt_len`) join a batch whose members
     * have the given final-length reservations without oversubscribing
     * memory? Base implementation rejects wave-only systems.
     */
    virtual AdmissionDecision admit(
        const TimingConfig &cfg,
        const std::vector<int64_t> &in_flight_final_lens,
        int64_t candidate_prompt_len, int64_t candidate_final_len) const;

    /**
     * Current-footprint sibling of admit() — the query optimistic
     * (preemptive) serving schedules against. Where admit() prices the
     * batch at its booked final-length *reservations*, this prices it
     * at explicit *current* KV lengths (`kv_lens[i]` tokens live right
     * now, no candidate, no prefill scratch): can the batch execute one
     * decode iteration at these lengths under this system's memory
     * discipline? The serving::Scheduler calls it with every length
     * one past the live context to decide whether the next decode
     * token fits or victims must be preempted.
     *
     * Base implementation reuses admit() with the last length playing
     * the candidate at a 1-token prompt (so eager's prefill-scratch
     * term stays negligible); admits trivially on an empty batch.
     * Override when a system distinguishes reserved from live
     * footprints more finely.
     */
    virtual AdmissionDecision fitsCurrent(
        const TimingConfig &cfg,
        const std::vector<int64_t> &kv_lens) const;

    // ---- Dataflow --------------------------------------------------

    /** One decode token's two-stream timeline at context `seq_len`
     *  under this system's dataflow() row and options. */
    DataflowResult tokenDataflow(const TimingConfig &cfg,
                                 int64_t seq_len) const;

  protected:
    /**
     * Shared skeleton of one heterogeneous-batch decode iteration:
     * batch-wide GEMMs/launches/LM head from the uniform-step
     * breakdown at kv_len == 0, per-request attention summed over
     * `attended(s)` tokens (attentionDecodeSeconds is linear in
     * batch * kv_len, so the sum equals one call at the total), all
     * floored by weight streaming. Throws on non-positive lengths.
     * Optionally reports the attended total and longest context.
     * `base_hint`, when given, must equal
     * cost.decodeStepBreakdown(cfg.llm, kv_lens.size(), 0) — it lets a
     * DecodeEvaluator reuse the cached value of that pure function
     * instead of re-deriving it per iteration.
     */
    double stepComputeSeconds(
        const TimingConfig &cfg, const sim::CostModel &cost,
        const std::vector<int64_t> &kv_lens,
        const std::function<int64_t(int64_t)> &attended,
        int64_t *attended_total_out = nullptr,
        int64_t *s_max_out = nullptr,
        const sim::DecodeBreakdown *base_hint = nullptr) const;

    /**
     * The arithmetic tail of stepComputeSeconds once the per-request
     * reduction is done: attention at `attended_total`, floored by
     * `weight_stream_seconds` (which must equal
     * parameterBytesFp16 / (hbm_bw_gbps * 1e9)). stepComputeSeconds
     * funnels through this, and a DecodeEvaluator may call it directly
     * with its own inlined reduction — both paths execute the same
     * operations in the same order, so results stay bit-identical.
     */
    double stepComputeFromTotals(const TimingConfig &cfg,
                                 const sim::CostModel &cost,
                                 const sim::DecodeBreakdown &base,
                                 int64_t attended_total,
                                 double weight_stream_seconds) const;

    SystemOptions opts_;
};

/**
 * String-keyed factory registry of every simulatable system. The seven
 * paper systems plus H2O and StreamingLLM are built in; plugins add
 * themselves with registerSystem().
 */
class SystemRegistry
{
  public:
    using Factory = std::function<std::shared_ptr<const SystemModel>(
        const SystemOptions &)>;

    /** Register a factory under a unique display name.
     *  @throws std::invalid_argument when the name is taken or empty. */
    static void registerSystem(const std::string &name, Factory factory);

    /** Instantiate a system by name.
     *  @throws std::invalid_argument for unknown names (the message
     *  lists every registered name). */
    static std::shared_ptr<const SystemModel>
    create(const std::string &name, const SystemOptions &opts = {});

    /** Sorted names of every registered system. */
    static std::vector<std::string> names();

    static bool contains(const std::string &name);
};

// Defined in the header so the systems' per-round decode tails inline
// it together with the CostModel terms it calls — one call boundary
// fewer on a path priced hundreds of millions of times per run. Same
// expression, same evaluation order as the out-of-line definition had.
inline double
SystemModel::stepComputeFromTotals(const TimingConfig &cfg,
                                   const sim::CostModel &cost,
                                   const sim::DecodeBreakdown &base,
                                   int64_t attended_total,
                                   double weight_stream_seconds) const
{
    const model::ModelConfig &m = cfg.llm;
    const double attn =
        m.layers *
        cost.attentionDecodeSeconds(
            1, m.q_heads,
            m.attention == model::AttentionKind::MLA ? m.q_heads
                                                     : m.kv_heads,
            m.head_dim, attended_total);
    // compute_fixed pre-adds (gemm + launch) + lm_head in the same
    // association this sum used to spell out, so the result is the
    // bit-identical double.
    return std::max(base.compute_fixed + attn,
                    weight_stream_seconds);
}

} // namespace core
} // namespace specontext
