#include "core/speculative.h"

#include <memory>
#include <stdexcept>

namespace specontext {
namespace core {

SpeculativeDecoder::SpeculativeDecoder(const model::Transformer &llm,
                                       const model::Transformer &dlm,
                                       SpeculativeOptions opts)
    : llm_(llm), dlm_(dlm), opts_(opts)
{
    if (opts_.draft_len <= 0)
        throw std::invalid_argument("draft_len must be positive");
    if (llm.config().vocab != dlm.config().vocab)
        throw std::invalid_argument("LLM/DLM vocabulary mismatch");
}

SpeculativeResult
SpeculativeDecoder::generate(const std::vector<int32_t> &prompt,
                             int64_t steps) const
{
    SpeculativeResult out;
    kv::KVCacheSet llm_cache(llm_.config());
    kv::KVCacheSet dlm_cache(dlm_.config());

    Tensor llm_logits = llm_.prefill(prompt, llm_cache);
    Tensor dlm_logits = dlm_.prefill(prompt, dlm_cache);

    std::unique_ptr<retrieval::RetrievalHead> head;
    if (opts_.budget > 0) {
        head = std::make_unique<retrieval::RetrievalHead>(
            dlm_, retrieval::RetrievalHeadOptions{opts_.budget});
        head->observe(prompt);
    }

    auto llmStep = [&](int32_t token) {
        if (head) {
            model::LayerSelection sel = head->step(token);
            model::LayerSelector selector =
                [&sel](int64_t, const Tensor &) { return sel; };
            llm_logits = llm_.decodeStep(token, llm_cache, &selector);
        } else {
            llm_logits = llm_.decodeStep(token, llm_cache);
        }
    };

    while (static_cast<int64_t>(out.tokens.size()) < steps) {
        // --- Draft phase: the DLM proposes draft_len tokens --------
        const int64_t dlm_base = dlm_cache.sequenceLength();
        std::vector<int32_t> draft;
        Tensor draft_logits = dlm_logits.clone();
        for (int64_t i = 0; i < opts_.draft_len; ++i) {
            const int32_t t = dlm_.greedy(draft_logits);
            draft.push_back(t);
            draft_logits = dlm_.decodeStep(t, dlm_cache);
        }
        out.drafted += static_cast<int64_t>(draft.size());

        // --- Verify phase: LLM accepts the matching prefix ----------
        ++out.llm_rounds;
        int64_t accepted_here = 0;
        for (int64_t i = 0;
             i < opts_.draft_len &&
             static_cast<int64_t>(out.tokens.size()) < steps;
             ++i) {
            const int32_t llm_choice = llm_.greedy(llm_logits);
            if (llm_choice == draft[i]) {
                out.tokens.push_back(draft[i]);
                llmStep(draft[i]);
                ++accepted_here;
                ++out.accepted;
            } else {
                // Correction: emit the LLM's token instead; discard
                // the rest of the draft.
                out.tokens.push_back(llm_choice);
                llmStep(llm_choice);
                break;
            }
        }

        // --- Roll the DLM back to the accepted history --------------
        const int64_t committed =
            static_cast<int64_t>(out.tokens.size());
        dlm_cache.truncate(dlm_base);
        // Re-feed whatever was emitted since dlm_base (accepted
        // drafts and possibly one correction).
        const int64_t new_tokens =
            committed - (dlm_base -
                         static_cast<int64_t>(prompt.size()));
        for (int64_t i = committed - new_tokens; i < committed; ++i)
            dlm_logits = dlm_.decodeStep(out.tokens[i], dlm_cache);
        (void)accepted_here;
    }

    return out;
}

} // namespace core
} // namespace specontext
