/**
 * @file
 * Permanent-eviction systems: H2O (heavy-hitter accumulated-attention
 * eviction, Zhang et al. NeurIPS'23) and StreamingLLM (attention sink
 * + sliding window, Xiao et al. ICLR'24) — the §2.2 baselines whose
 * live retrievers already existed in src/retrieval/ but could not be
 * simulated or served before the SystemModel registry.
 *
 * Pricing model: both hold a *bounded* resident KV cache — at most
 * `budget` tokens per request per layer survive eviction — entirely in
 * HBM, so there is no retrieval fetch, no PCIe traffic and no per-layer
 * sync; attention reads min(budget, context) tokens. The cost of that
 * compactness is irreversible information loss (§3.1), visible as
 * accuracy degradation in the Fig. 1 Pareto bench's live runs.
 *  - StreamingLLM's selection is input-agnostic (sink + window), so
 *    eviction upkeep is free.
 *  - H2O updates a per-(layer, head) accumulated-attention mass table
 *    and evicts the arg-min each step: one cheap on-GPU scan + top-k
 *    over the tracked set per layer, priced via retrievalSeconds.
 * Both evict during chunked prefill as well, so the resident cache
 * never materializes beyond the budget (no eager-style scratch OOM).
 *
 * This file doubles as the registry's worked "adding a new system"
 * example (README.md): a self-contained subclass plus one factory
 * registration, no edits anywhere else in the tree.
 */
#include "core/systems/registration.h"

#include <algorithm>
#include <stdexcept>

namespace specontext {
namespace core {
namespace {

/** Shared skeleton of budget-bounded permanent-eviction systems. */
class EvictionSystem : public SystemModel
{
  public:
    using SystemModel::SystemModel;

    sim::KernelBackend backend() const override
    {
        return sim::KernelBackend::FlashAttention;
    }
    DataflowKind dataflow() const override
    {
        return DataflowKind::ResidentKV;
    }
    bool supportsContinuousBatching() const override { return true; }

    TimingResult simulate(const TimingConfig &cfg) const override;
    double requestPrefillSeconds(const TimingConfig &cfg,
                                 int64_t prompt_len,
                                 int64_t in_flight_requests,
                                 int64_t resident_kv_tokens) const override;
    double decodeIterationSeconds(
        const TimingConfig &cfg,
        const std::vector<int64_t> &kv_lens) const override;
    AdmissionDecision admit(const TimingConfig &cfg,
                            const std::vector<int64_t> &in_flight_final_lens,
                            int64_t candidate_prompt_len,
                            int64_t candidate_final_len) const override;
    int64_t hbmFootprintBytes(const TimingConfig &cfg, int64_t requests,
                              int64_t s) const override;

  protected:
    /** Resident KV tokens of one request at context length s. */
    int64_t residentTokens(int64_t s) const
    {
        return std::min(s, opts_.budget);
    }

    /** One-time scoring pass over the prompt (H2O's mass accumulation);
     *  seconds, added to prefill. */
    virtual double preprocessSeconds(const TimingConfig &cfg,
                                     const sim::CostModel &cost,
                                     int64_t requests,
                                     int64_t prompt_len) const
    {
        (void)cfg;
        (void)cost;
        (void)requests;
        (void)prompt_len;
        return 0.0;
    }

    /** Per-step eviction upkeep across all layers (H2O's accumulate +
     *  arg-min scan); seconds, added to every decode iteration. */
    virtual double evictionSeconds(const TimingConfig &cfg,
                                   const sim::CostModel &cost,
                                   int64_t requests,
                                   int64_t attended_total) const
    {
        (void)cfg;
        (void)cost;
        (void)requests;
        (void)attended_total;
        return 0.0;
    }
};

TimingResult
EvictionSystem::simulate(const TimingConfig &cfg) const
{
    TimingResult r;
    const sim::CostModel cost(cfg.hw, backend());
    const model::ModelConfig &m = cfg.llm;
    const int64_t R = cfg.batch;
    const int64_t s_final = cfg.prompt_len + cfg.gen_len;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);

    // Bounded residency: eviction runs during chunked prefill too, so
    // the cache never exceeds budget tokens per request per layer.
    const int64_t gpu_kv =
        R * residentTokens(s_final) * kvb * m.layers;
    if (weightFootprintBytes(m) + gpu_kv > cfg.hw.gpu_mem_bytes) {
        r.oom = true;
        r.oom_reason = "budget-bounded KV exceeds GPU memory";
        return r;
    }

    // --- Prefill (full prompt pass; evicted KV is freed, not moved) --
    r.prefill_seconds = cost.prefillSeconds(m, R, cfg.prompt_len);
    const double preprocess =
        preprocessSeconds(cfg, cost, R, cfg.prompt_len);
    r.prefill_seconds += preprocess;
    if (preprocess > 0.0)
        r.breakdown["preprocess"] += preprocess;

    // --- Decode: attention over the bounded resident set -------------
    for (int64_t t = 0; t < cfg.gen_len; ++t) {
        const int64_t attended = residentTokens(cfg.prompt_len + t);
        const sim::DecodeBreakdown b =
            cost.decodeStepBreakdown(m, R, attended);
        double dt = b.total;
        r.breakdown["attn"] += b.attn;
        r.breakdown["gemm"] += b.gemm + b.lm_head;
        r.breakdown["launch"] += b.launch;
        const double evict = evictionSeconds(cfg, cost, R, R * attended);
        if (evict > 0.0) {
            r.breakdown["evict"] += evict;
            dt += evict;
        }
        r.decode_seconds += dt;
    }

    const double total = r.prefill_seconds + r.decode_seconds;
    r.throughput = R * cfg.gen_len / total;
    r.decode_throughput = R * cfg.gen_len / r.decode_seconds;
    r.final_gpu_layers = m.layers;
    return r;
}

double
EvictionSystem::requestPrefillSeconds(const TimingConfig &cfg,
                                      int64_t prompt_len,
                                      int64_t in_flight_requests,
                                      int64_t resident_kv_tokens) const
{
    (void)in_flight_requests;
    (void)resident_kv_tokens; // eviction frees KV, nothing spills
    const sim::CostModel cost(cfg.hw, backend());
    return cost.prefillSeconds(cfg.llm, 1, prompt_len) +
           preprocessSeconds(cfg, cost, 1, prompt_len);
}

double
EvictionSystem::decodeIterationSeconds(
    const TimingConfig &cfg, const std::vector<int64_t> &kv_lens) const
{
    if (kv_lens.empty())
        return 0.0;
    const sim::CostModel cost(cfg.hw, backend());
    const int64_t R = static_cast<int64_t>(kv_lens.size());

    // Attention reads the budget-bounded resident set per request.
    int64_t attended_total = 0;
    const double step_compute = stepComputeSeconds(
        cfg, cost, kv_lens,
        [this](int64_t s) { return residentTokens(s); },
        &attended_total);
    return step_compute + evictionSeconds(cfg, cost, R, attended_total);
}

AdmissionDecision
EvictionSystem::admit(const TimingConfig &cfg,
                      const std::vector<int64_t> &in_flight_final_lens,
                      int64_t candidate_prompt_len,
                      int64_t candidate_final_len) const
{
    (void)candidate_prompt_len; // eviction bounds prefill residency too
    const model::ModelConfig &m = cfg.llm;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    int64_t kv_tokens = residentTokens(candidate_final_len);
    for (int64_t fl : in_flight_final_lens)
        kv_tokens += residentTokens(fl);
    if (weightFootprintBytes(m) + kv_tokens * kvb * m.layers >
        cfg.hw.gpu_mem_bytes)
        return {false, "budget-bounded KV reservations exceed GPU memory"};
    return {true, ""};
}

int64_t
EvictionSystem::hbmFootprintBytes(const TimingConfig &cfg,
                                  int64_t requests, int64_t s) const
{
    return weightFootprintBytes(cfg.llm) +
           requests * residentTokens(s) *
               kvBytesPerTokenPerLayer(cfg.llm) * cfg.llm.layers;
}

// -------------------------------------------------------------------- H2O

class H2OSystem final : public EvictionSystem
{
  public:
    using EvictionSystem::EvictionSystem;
    const char *name() const override { return "H2O"; }

  protected:
    double preprocessSeconds(const TimingConfig &cfg,
                             const sim::CostModel &cost, int64_t requests,
                             int64_t prompt_len) const override
    {
        // One accumulated-attention-mass pass over the prompt keys
        // (the retriever's onPrefillComplete scan).
        const model::ModelConfig &m = cfg.llm;
        return cost.gemmFlopsSeconds(2.0 * requests * m.layers *
                                     m.kv_heads * prompt_len *
                                     m.head_dim);
    }
    double evictionSeconds(const TimingConfig &cfg,
                           const sim::CostModel &cost, int64_t requests,
                           int64_t attended_total) const override
    {
        // Per layer: accumulate this step's attention mass into the
        // tracked set and evict the arg-min outside each request's
        // protected recent window — an on-GPU scan + top-k over at
        // most `budget` candidates per request, no PCIe and no host
        // sync. attended_total is batch-aggregate, so the exclusion
        // is too.
        const int64_t candidates = std::max<int64_t>(
            attended_total - requests * opts_.recent_window, 1);
        return cfg.llm.layers *
               cost.retrievalSeconds(2.0 * cfg.llm.kv_heads * candidates,
                                     candidates);
    }
};

// ---------------------------------------------------------- StreamingLLM

class StreamingLLMSystem final : public EvictionSystem
{
  public:
    using EvictionSystem::EvictionSystem;
    const char *name() const override { return "StreamingLLM"; }
    // Sink + sliding window is input-agnostic: no preprocessing, no
    // per-step upkeep — the cheapest dataflow of the whole registry.
};

} // namespace

namespace detail {

void
registerEvictionSystems()
{
    addBuiltinSystem("H2O", [](const SystemOptions &o) {
        return std::make_shared<H2OSystem>(o);
    });
    addBuiltinSystem("StreamingLLM", [](const SystemOptions &o) {
        return std::make_shared<StreamingLLMSystem>(o);
    });
}

} // namespace detail
} // namespace core
} // namespace specontext
