/**
 * @file
 * Layer-wise retrieve-then-load baselines: Quest, ClusterKV, ShadowKV.
 * They pay per-layer retrieval + sync on the critical path
 * (Challenge-1) and attend budget + all newly generated tokens
 * (Challenge-2, the KV they retain in full). Wave-scheduled only, as
 * in the paper's evaluation.
 */
#include "core/systems/registration.h"

#include <algorithm>

namespace specontext {
namespace core {
namespace {

/** Shared prefill/decode skeleton of the retrieve-then-load family;
 *  subclasses supply preprocessing and per-step scoring shapes. */
class LayerwiseBaselineSystem : public SystemModel
{
  public:
    using SystemModel::SystemModel;

    sim::KernelBackend backend() const override
    {
        return sim::KernelBackend::FlashAttention;
    }
    DataflowKind dataflow() const override
    {
        return DataflowKind::FetchSparseKV;
    }
    int64_t maxSimulatedBatch() const override
    {
        return multiRequest() ? SystemModel::maxSimulatedBatch() : 1;
    }

    TimingResult simulate(const TimingConfig &cfg) const override;

  protected:
    /** Quest and ClusterKV only support a single request (§7.3.1);
     *  surfaced through maxSimulatedBatch() above. */
    virtual bool multiRequest() const { return false; }

    /** One-time preprocessing FLOPs over the prompt KV (paging /
     *  clustering / quantization). */
    virtual double preprocessFlops(const TimingConfig &cfg) const = 0;

    /** Per-step scoring shape: candidate count and scoring FLOPs. */
    virtual void scoringShape(const TimingConfig &cfg,
                              double &score_flops,
                              int64_t &candidates) const = 0;

    /** Memory feasibility; fills r.oom/oom_reason on failure. */
    virtual bool checkMemory(const TimingConfig &cfg,
                             TimingResult &r) const
    {
        const model::ModelConfig &m = cfg.llm;
        const int64_t kv_total = cfg.batch *
                                 (cfg.prompt_len + cfg.gen_len) *
                                 kvBytesPerTokenPerLayer(m) * m.layers;
        if (weightFootprintBytes(m) + kv_total > cfg.hw.gpu_mem_bytes) {
            r.oom = true;
            r.oom_reason =
                "full KV cache exceeds GPU memory (no offload)";
            return false;
        }
        return true;
    }

    /** Post-prefill transfer seconds (ShadowKV moves prompt V to CPU). */
    virtual double postPrefillSeconds(const TimingConfig &cfg,
                                      const sim::CostModel &cost) const
    {
        (void)cfg;
        (void)cost;
        return 0.0;
    }

    /** Extra per-step decode cost beyond retrieval (ShadowKV's V fetch
     *  and K reconstruction); adds to dt and the breakdown. */
    virtual double perStepExtraSeconds(const TimingConfig &cfg,
                                       const sim::CostModel &cost,
                                       TimingResult &r) const
    {
        (void)cfg;
        (void)cost;
        (void)r;
        return 0.0;
    }
};

TimingResult
LayerwiseBaselineSystem::simulate(const TimingConfig &cfg) const
{
    TimingResult r;
    const sim::CostModel cost(cfg.hw, backend());
    const model::ModelConfig &m = cfg.llm;
    const int64_t R = cfg.batch;

    // The single-request cap (§7.3.1) is declared via
    // maxSimulatedBatch() and enforced by the TimingEngine façade.
    if (!checkMemory(cfg, r))
        return r;

    // --- Prefill + preprocessing (§3.1) ------------------------------
    r.prefill_seconds = cost.prefillSeconds(m, R, cfg.prompt_len);
    const double preprocess = cost.gemmFlopsSeconds(preprocessFlops(cfg));
    r.prefill_seconds += preprocess;
    r.breakdown["preprocess"] += preprocess;
    r.prefill_seconds += postPrefillSeconds(cfg, cost);

    // --- Decode: per-layer retrieve-then-load, serialized ------------
    for (int64_t t = 0; t < cfg.gen_len; ++t) {
        // Challenge-2: only the prompt is preprocessed, every generated
        // token's KV is retained, so attention reads budget + t tokens.
        const int64_t attended = std::min<int64_t>(
            opts_.budget + t, cfg.prompt_len + t);
        const sim::DecodeBreakdown b =
            cost.decodeStepBreakdown(m, R, attended);
        double dt = b.total;
        r.breakdown["attn"] += b.attn;
        r.breakdown["gemm"] += b.gemm + b.lm_head;
        r.breakdown["launch"] += b.launch;

        double score_flops = 0.0;
        int64_t candidates = 0;
        scoringShape(cfg, score_flops, candidates);
        // Challenge-1: retrieval + gather + sync repeated per layer on
        // the critical path.
        const double retr =
            m.layers * (cost.retrievalSeconds(score_flops, candidates) +
                        cost.syncSeconds());
        r.breakdown["retrieval"] += retr;
        dt += retr;
        dt += perStepExtraSeconds(cfg, cost, r);
        r.decode_seconds += dt;
    }

    const double total = r.prefill_seconds + r.decode_seconds;
    r.throughput = R * cfg.gen_len / total;
    r.decode_throughput = R * cfg.gen_len / r.decode_seconds;
    r.final_gpu_layers = m.layers;
    return r;
}

// ------------------------------------------------------------------ Quest

class QuestSystem final : public LayerwiseBaselineSystem
{
  public:
    using LayerwiseBaselineSystem::LayerwiseBaselineSystem;
    const char *name() const override { return "Quest"; }

  protected:
    double preprocessFlops(const TimingConfig &cfg) const override
    {
        // One min/max pass over the prompt keys.
        const model::ModelConfig &m = cfg.llm;
        return 2.0 * cfg.batch * m.layers * m.kv_heads * cfg.prompt_len *
               m.head_dim;
    }
    void scoringShape(const TimingConfig &cfg, double &score_flops,
                      int64_t &candidates) const override
    {
        const model::ModelConfig &m = cfg.llm;
        candidates = cfg.prompt_len / opts_.page_size;
        score_flops =
            2.0 * cfg.batch * m.q_heads * m.head_dim * candidates;
    }
};

// -------------------------------------------------------------- ClusterKV

class ClusterKVSystem final : public LayerwiseBaselineSystem
{
  public:
    using LayerwiseBaselineSystem::LayerwiseBaselineSystem;
    const char *name() const override { return "ClusterKV"; }

  protected:
    double preprocessFlops(const TimingConfig &cfg) const override
    {
        const model::ModelConfig &m = cfg.llm;
        const double k =
            double(cfg.prompt_len) / opts_.avg_cluster_size;
        return 3.0 * opts_.cluster_iterations * cfg.batch * m.layers *
               m.kv_heads * cfg.prompt_len * k * m.head_dim;
    }
    void scoringShape(const TimingConfig &cfg, double &score_flops,
                      int64_t &candidates) const override
    {
        const model::ModelConfig &m = cfg.llm;
        candidates = cfg.prompt_len / opts_.avg_cluster_size;
        score_flops =
            2.0 * cfg.batch * m.q_heads * m.head_dim * candidates;
    }
};

// --------------------------------------------------------------- ShadowKV

class ShadowKVSystem final : public LayerwiseBaselineSystem
{
  public:
    using LayerwiseBaselineSystem::LayerwiseBaselineSystem;
    const char *name() const override { return "ShadowKV"; }
    DataflowKind dataflow() const override
    {
        return DataflowKind::PrefetchSparseV;
    }

    int64_t hbmFootprintBytes(const TimingConfig &cfg, int64_t requests,
                              int64_t s) const override
    {
        // Quantized K (~K/8 of full KV) for the preprocessed prompt +
        // retained new KV + budget staging, weights on top.
        const model::ModelConfig &m = cfg.llm;
        const int64_t kvb = kvBytesPerTokenPerLayer(m);
        const int64_t prompt = std::min(s, cfg.prompt_len);
        const int64_t tail = s - prompt;
        return weightFootprintBytes(m) +
               requests * (prompt * kvb / 8 +
                           (tail + opts_.budget) * kvb) *
                   m.layers;
    }
    int64_t dramFootprintBytes(const TimingConfig &cfg, int64_t requests,
                               int64_t s) const override
    {
        // Full V (and K landmarks) live in CPU DRAM.
        return requests * s * kvBytesPerTokenPerLayer(cfg.llm) *
               cfg.llm.layers;
    }

  protected:
    bool multiRequest() const override { return true; }
    bool checkMemory(const TimingConfig &cfg,
                     TimingResult &r) const override
    {
        // ShadowKV keeps quantized K (~K/4) + new KV + staging on GPU,
        // full V (and K landmarks) in CPU DRAM.
        const model::ModelConfig &m = cfg.llm;
        const int64_t kvb = kvBytesPerTokenPerLayer(m);
        const int64_t kv_total = cfg.batch *
                                 (cfg.prompt_len + cfg.gen_len) * kvb *
                                 m.layers;
        const int64_t gpu_kv =
            cfg.batch *
            (cfg.prompt_len * kvb / 8 +
             (cfg.gen_len + opts_.budget) * kvb) *
            m.layers;
        if (weightFootprintBytes(m) + gpu_kv > cfg.hw.gpu_mem_bytes) {
            r.oom = true;
            r.oom_reason = "quantized K + retained KV exceed GPU memory";
            return false;
        }
        if (kv_total > cfg.hw.cpu_mem_bytes) {
            r.oom = true;
            r.oom_reason = "offloaded KV exceeds CPU memory";
            return false;
        }
        return true;
    }
    double preprocessFlops(const TimingConfig &cfg) const override
    {
        // Quantization pass + SVD-style landmark factorization.
        const model::ModelConfig &m = cfg.llm;
        return 8.0 * cfg.batch * m.layers * m.kv_heads * cfg.prompt_len *
               m.head_dim;
    }
    void scoringShape(const TimingConfig &cfg, double &score_flops,
                      int64_t &candidates) const override
    {
        const model::ModelConfig &m = cfg.llm;
        candidates = cfg.prompt_len;
        // int4 keys: ~half the effective scoring cost.
        score_flops =
            1.0 * cfg.batch * m.q_heads * m.head_dim * candidates;
    }
    double postPrefillSeconds(const TimingConfig &cfg,
                              const sim::CostModel &cost) const override
    {
        // Prompt V moves to CPU after prefill.
        const model::ModelConfig &m = cfg.llm;
        return cost.pcieSeconds(cfg.batch * cfg.prompt_len *
                                (kvBytesPerTokenPerLayer(m) / 2) *
                                m.layers);
    }
    double perStepExtraSeconds(const TimingConfig &cfg,
                               const sim::CostModel &cost,
                               TimingResult &r) const override
    {
        // Per-layer V fetch from CPU; partially overlapped with the
        // next layer's compute (Fig. 7(d)) — 35 % stays exposed —
        // plus the K reconstruction GEMM.
        const model::ModelConfig &m = cfg.llm;
        const int64_t kvb = kvBytesPerTokenPerLayer(m);
        const double vfetch =
            cost.pcieSeconds(cfg.batch * opts_.budget * (kvb / 2));
        const double krecons = cost.gemmSeconds(
            cfg.batch * opts_.budget, m.kv_heads * m.head_dim, 64);
        r.breakdown["transfer"] += m.layers * 0.35 * vfetch;
        r.breakdown["krecons"] += m.layers * krecons;
        return m.layers * (0.35 * vfetch + krecons);
    }
};

} // namespace

namespace detail {

void
registerLayerwiseBaselineSystems()
{
    addBuiltinSystem("Quest", [](const SystemOptions &o) {
        return std::make_shared<QuestSystem>(o);
    });
    addBuiltinSystem("ClusterKV", [](const SystemOptions &o) {
        return std::make_shared<ClusterKVSystem>(o);
    });
    addBuiltinSystem("ShadowKV", [](const SystemOptions &o) {
        return std::make_shared<ShadowKVSystem>(o);
    });
}

} // namespace detail
} // namespace core
} // namespace specontext
