/**
 * @file
 * Internal registration hooks of the built-in systems. Each
 * translation unit under systems/ defines one of these; the registry
 * invokes them lazily on first use so static-library dead-stripping
 * and initialization order cannot drop or reorder them.
 */
#pragma once

#include "core/system_model.h"

namespace specontext {
namespace core {
namespace detail {

/** Add a factory during built-in registration (no lazy-init recursion). */
void addBuiltinSystem(const std::string &name,
                      SystemRegistry::Factory factory);

void registerFullAttentionSystems();
void registerLayerwiseBaselineSystems();
void registerSpeContextSystem();
void registerEvictionSystems();

} // namespace detail
} // namespace core
} // namespace specontext
