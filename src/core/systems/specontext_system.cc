/**
 * @file
 * SpeContext: the paper's system. Runs the pruned retrieval head once
 * per step, attends a fixed budget in every layer, prefetches KV diffs
 * on the copy stream (C2), and drives placement with Algorithm 2 (C3).
 * The three feature flags reproduce the paper's ablation (Fig. 11).
 * Built on the FlashInfer framework (§7.5.1).
 */
#include "core/systems/registration.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace specontext {
namespace core {
namespace {

class SpeContextSystem final : public SystemModel
{
  public:
    using SystemModel::SystemModel;

    const char *name() const override { return "SpeContext"; }
    sim::KernelBackend backend() const override
    {
        return sim::KernelBackend::FlashInfer;
    }
    DataflowKind dataflow() const override
    {
        return DataflowKind::SpeContextElastic;
    }
    bool supportsContinuousBatching() const override { return true; }

    TimingResult simulate(const TimingConfig &cfg) const override;
    double requestPrefillSeconds(const TimingConfig &cfg,
                                 int64_t prompt_len,
                                 int64_t in_flight_requests,
                                 int64_t resident_kv_tokens) const override;
    double decodeIterationSeconds(
        const TimingConfig &cfg,
        const std::vector<int64_t> &kv_lens) const override;
    std::unique_ptr<DecodeEvaluator> makeDecodeEvaluator(
        const TimingConfig &cfg) const override;
    std::unique_ptr<AdmissionEvaluator> makeAdmissionEvaluator(
        const TimingConfig &cfg) const override;
    std::unique_ptr<PrefillEvaluator> makePrefillEvaluator(
        const TimingConfig &cfg) const override;
    AdmissionDecision admit(const TimingConfig &cfg,
                            const std::vector<int64_t> &in_flight_final_lens,
                            int64_t candidate_prompt_len,
                            int64_t candidate_final_len) const override;
    int64_t hbmFootprintBytes(const TimingConfig &cfg, int64_t requests,
                              int64_t s) const override;
    int64_t dramFootprintBytes(const TimingConfig &cfg, int64_t requests,
                               int64_t s) const override;

    /**
     * The one decode-iteration formula, parameterized on its pure
     * per-(config, batch-size) derivations so the per-call path and
     * the caching DecodeEvaluator run literally the same arithmetic:
     * `base` must equal cost.decodeStepBreakdown(llm, R, 0),
     * `head_gemm` cost.gemmSeconds(R, q_dim + kv_dim, hidden),
     * `weight_stream` parameterBytesFp16 / (hbm_bw_gbps * 1e9), and
     * `mm` a MemoryModel over memoryInputs(cfg, R).
     */
    double decodeIterImpl(const TimingConfig &cfg,
                          const std::vector<int64_t> &kv_lens,
                          const sim::CostModel &cost,
                          const sim::DecodeBreakdown &base,
                          double head_gemm, double weight_stream,
                          const sim::MemoryModel &mm) const;

    /**
     * decodeIterImpl past the KV-length reduction: the arithmetic that
     * turns (R, attended_total, s_max) into seconds. The bulk-window
     * evaluator maintains the two reduced integers incrementally and
     * enters here directly; the vector path funnels through after its
     * scan, so both run the identical tail. `all_resident_limit` is
     * mm.allResidentMaxTokens() (or -1 to disable the shortcut): while
     * s_max stays at or below it the Eq. 8 placement is exactly
     * all-resident and the per-round descent is skipped.
     */
    double decodeIterTail(const TimingConfig &cfg, int64_t R,
                          int64_t attended_total, int64_t s_max,
                          const sim::CostModel &cost,
                          const sim::DecodeBreakdown &base,
                          double head_gemm, double weight_stream,
                          const sim::MemoryModel &mm,
                          int64_t all_resident_limit) const;

    /** Attention budget (tokens attended per request per layer). */
    int64_t attentionBudget() const { return opts_.budget; }

    /** cpuLayers() against a caller-held MemoryModel (which must wrap
     *  memoryInputs(cfg, requests)). */
    int64_t cpuLayersWith(const sim::MemoryModel &mm,
                          const TimingConfig &cfg, int64_t requests,
                          int64_t s) const;

  private:
    /** KV layers resident in CPU DRAM for `requests` uniform requests
     *  of length s, honoring features.adaptive_memory (static
     *  all-or-nothing placement when C3 is off). */
    int64_t cpuLayers(const TimingConfig &cfg, int64_t requests,
                      int64_t s) const;
};

int64_t
SpeContextSystem::cpuLayers(const TimingConfig &cfg, int64_t requests,
                            int64_t s) const
{
    // Per-call MemoryModel construction is two validate() calls plus a
    // geometry derivation. The one-shot paths (simulate, admission)
    // tolerate it; the serving decode loop goes through
    // makeDecodeEvaluator(), which caches the model per batch size and
    // calls cpuLayersWith() directly.
    const sim::MemoryModel mm(memoryInputs(cfg, requests));
    return cpuLayersWith(mm, cfg, requests, s);
}

int64_t
SpeContextSystem::cpuLayersWith(const sim::MemoryModel &mm,
                                const TimingConfig &cfg,
                                int64_t requests, int64_t s) const
{
    if (!opts_.features.adaptive_memory) {
        // Static pre-inference decision (no C3): everything resident
        // when Eq. 6 fits at this shape, else full offload — the same
        // all-or-nothing rule simulate() applies.
        return mm.mAllBytesFor(requests, s) <= cfg.hw.gpu_mem_bytes
                   ? 0
                   : cfg.llm.layers;
    }
    const int64_t max_gpu = mm.maxGpuLayers(s);
    return max_gpu < 0 ? cfg.llm.layers : cfg.llm.layers - max_gpu;
}

TimingResult
SpeContextSystem::simulate(const TimingConfig &cfg) const
{
    TimingResult r;
    const sim::CostModel cost(cfg.hw, backend());
    const model::ModelConfig &m = cfg.llm;
    const int64_t R = cfg.batch;
    const int64_t s_final = cfg.prompt_len + cfg.gen_len;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    const int64_t q_dim = m.q_heads * m.head_dim;
    const int64_t kv_dim = m.attention == model::AttentionKind::MLA
                               ? m.mla_latent_dim
                               : m.kv_heads * m.head_dim;

    const sim::MemoryModel mm(memoryInputs(cfg, R));

    if (R * s_final * kvb * m.layers > cfg.hw.cpu_mem_bytes) {
        r.oom = true;
        r.oom_reason = "KV cache exceeds CPU memory";
        return r;
    }
    if (mm.maxGpuLayers(s_final) < 0) {
        r.oom = true;
        r.oom_reason = "weights + staging buffers exceed GPU memory";
        return r;
    }

    // Placement: static decision before inference (no C3) or
    // threshold-driven adaptive (C3, Algorithm 2).
    const std::vector<int64_t> th = mm.thresholds();
    int64_t l_cpu_static = 0;
    if (!opts_.features.adaptive_memory)
        l_cpu_static = mm.allFitsOnGpu(s_final) ? 0 : m.layers;

    auto cpuLayersAt = [&](int64_t s) -> int64_t {
        if (!opts_.features.adaptive_memory)
            return l_cpu_static;
        int64_t l_cpu = 0;
        while (l_cpu < m.layers && s >= th[l_cpu])
            ++l_cpu;
        return l_cpu;
    };

    // --- Prefill ------------------------------------------------------
    r.prefill_seconds = cost.prefillSeconds(m, R, cfg.prompt_len);
    // Retrieval head builds its K cache over the prompt: one fused
    // QK-projection GEMM over all prompt tokens.
    const double head_prefill = cost.gemmSeconds(
        R * cfg.prompt_len, q_dim + kv_dim, m.hidden);
    r.prefill_seconds += head_prefill;
    r.breakdown["head"] += head_prefill;
    int64_t l_cpu = cpuLayersAt(cfg.prompt_len);
    if (l_cpu > 0) {
        const double evict = cost.pcieSeconds(
            R * cfg.prompt_len * kvb * l_cpu);
        // Prompt KV eviction overlaps with prefill compute when the
        // async dataflow exists.
        const double exposed = opts_.features.async_elastic ? 0.2 : 1.0;
        r.prefill_seconds += exposed * evict;
        r.breakdown["offload"] += exposed * evict;
    }

    // --- Decode -------------------------------------------------------
    const double reuse =
        opts_.features.async_elastic
            ? std::clamp(opts_.elastic_overlap, 0.0, 1.0)
            : 0.0;
    for (int64_t t = 0; t < cfg.gen_len; ++t) {
        const int64_t s = cfg.prompt_len + t;

        // C3: progressive layer offload when thresholds are crossed.
        const int64_t l_cpu_now = cpuLayersAt(s);
        double dt = 0.0;
        if (l_cpu_now > l_cpu) {
            for (int64_t i = l_cpu; i < l_cpu_now; ++i) {
                const double evict = cost.pcieSeconds(R * s * kvb);
                const double exposed =
                    opts_.features.async_elastic ? 0.3 : 1.0;
                dt += exposed * evict;
                r.breakdown["offload"] += exposed * evict;
            }
            l_cpu = l_cpu_now;
        }

        // Retrieval head: once per step, before the LLM (not per layer).
        const int64_t b_eff = std::min<int64_t>(opts_.budget, s);
        const double head =
            cost.gemmSeconds(R, q_dim + kv_dim, m.hidden) +
            cost.retrievalSeconds(
                2.0 * R * m.q_heads * m.head_dim * s, s);
        r.breakdown["head"] += head;

        const sim::DecodeBreakdown b =
            cost.decodeStepBreakdown(m, R, b_eff);
        r.breakdown["attn"] += b.attn;
        r.breakdown["gemm"] += b.gemm + b.lm_head;
        r.breakdown["launch"] += b.launch;

        const int64_t diff_tokens = static_cast<int64_t>(
            (1.0 - reuse) * static_cast<double>(b_eff));
        const double xfer =
            l_cpu > 0 ? cost.pcieSeconds(R * diff_tokens * kvb * l_cpu)
                      : 0.0;
        if (opts_.features.async_elastic) {
            // C2: prefetch on the copy stream; only the excess beyond
            // compute is exposed, plus one event sync.
            const double exposed =
                std::max(0.0, xfer - b.total) + cost.syncSeconds();
            r.breakdown["transfer"] += exposed;
            dt += head + b.total + exposed;
        } else {
            // C1 only: synchronous full-budget load per offloaded layer.
            const double sync_xfer =
                l_cpu > 0
                    ? l_cpu * cost.pcieSeconds(R * b_eff * kvb)
                    : 0.0;
            r.breakdown["transfer"] += sync_xfer;
            dt += head + b.total + sync_xfer;
        }
        r.decode_seconds += dt;
    }

    const double total = r.prefill_seconds + r.decode_seconds;
    r.throughput = R * cfg.gen_len / total;
    r.decode_throughput = R * cfg.gen_len / r.decode_seconds;
    r.final_gpu_layers = m.layers - l_cpu;
    return r;
}

double
SpeContextSystem::requestPrefillSeconds(const TimingConfig &cfg,
                                        int64_t prompt_len,
                                        int64_t in_flight_requests,
                                        int64_t resident_kv_tokens) const
{
    const sim::CostModel cost(cfg.hw, backend());
    const model::ModelConfig &m = cfg.llm;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    double t = cost.prefillSeconds(m, 1, prompt_len);

    // Retrieval head builds its K cache over the joining prompt
    // (one fused QK-projection GEMM, as in simulate()).
    const int64_t q_dim = m.q_heads * m.head_dim;
    const int64_t kv_dim = m.attention == model::AttentionKind::MLA
                               ? m.mla_latent_dim
                               : m.kv_heads * m.head_dim;
    t += cost.gemmSeconds(prompt_len, q_dim + kv_dim, m.hidden);

    // Prompt-KV eviction for the layers the placement keeps in CPU
    // DRAM at the *joined batch's* shape: Eq. 7 prices uniform-length
    // requests, so the heterogeneous batch is uniformized to its mean
    // resident length (total KV conserved) — a short prompt joining an
    // oversubscribed batch still pays its eviction. Overlap with
    // prefill compute follows simulate()'s exposure rule.
    const int64_t r_joined = in_flight_requests + 1;
    const int64_t s_uniform = std::max(
        prompt_len, (resident_kv_tokens + prompt_len) / r_joined);
    const int64_t l_cpu = cpuLayers(cfg, r_joined, s_uniform);
    if (l_cpu > 0) {
        const double evict =
            cost.pcieSeconds(prompt_len * kvb * l_cpu);
        const double exposed = opts_.features.async_elastic ? 0.2 : 1.0;
        t += exposed * evict;
    }
    return t;
}

double
SpeContextSystem::decodeIterImpl(const TimingConfig &cfg,
                                 const std::vector<int64_t> &kv_lens,
                                 const sim::CostModel &cost,
                                 const sim::DecodeBreakdown &base,
                                 double head_gemm, double weight_stream,
                                 const sim::MemoryModel &mm) const
{
    const int64_t R = static_cast<int64_t>(kv_lens.size());

    // Attention reads at most `budget` tokens per request. The
    // reduction is inlined (rather than routed through
    // stepComputeSeconds' std::function callback) because this runs
    // once per simulated decode iteration; the arithmetic tail is the
    // shared stepComputeFromTotals, so the result is identical.
    int64_t attended_total = 0;
    int64_t s_max = 0;
    for (int64_t s : kv_lens) {
        if (s <= 0)
            throw std::invalid_argument(
                "decodeIterationSeconds: non-positive KV length");
        attended_total += std::min<int64_t>(opts_.budget, s);
        s_max = std::max(s_max, s);
    }
    return decodeIterTail(cfg, R, attended_total, s_max, cost, base,
                          head_gemm, weight_stream, mm, -1);
}

double
SpeContextSystem::decodeIterTail(const TimingConfig &cfg, int64_t R,
                                 int64_t attended_total, int64_t s_max,
                                 const sim::CostModel &cost,
                                 const sim::DecodeBreakdown &base,
                                 double head_gemm, double weight_stream,
                                 const sim::MemoryModel &mm,
                                 int64_t all_resident_limit) const
{
    const model::ModelConfig &m = cfg.llm;
    const double step_compute = stepComputeFromTotals(
        cfg, cost, base, attended_total, weight_stream);

    // Retrieval head once per iteration over the whole batch (scoring
    // scans each request's context, bounded by the longest in-flight
    // one), then the offloaded-layer KV movement of simulate() — Eq. 8
    // placement at the current batch shape decides how many layers
    // live in CPU DRAM.
    const double head =
        head_gemm +
        cost.retrievalSeconds(2.0 * R * m.q_heads * m.head_dim * s_max,
                              s_max);

    // Both placement modes (static Eq. 6 and adaptive Eq. 8) reduce to
    // the same all-resident fit test while s_max is under the limit,
    // so the shortcut yields the exact l_cpu = 0 either would.
    const int64_t l_cpu = s_max <= all_resident_limit
                              ? 0
                              : cpuLayersWith(mm, cfg, R, s_max);

    if (opts_.features.async_elastic) {
        // C2: prefetch the selection diff on the copy stream; only the
        // excess beyond compute is exposed, plus one event sync.
        const double reuse =
            std::clamp(opts_.elastic_overlap, 0.0, 1.0);
        const int64_t diff_tokens = static_cast<int64_t>(
            (1.0 - reuse) * static_cast<double>(attended_total));
        // The per-token KV byte width only prices offloaded layers, so
        // the fully-resident round (the hot case) never derives it.
        const double xfer =
            l_cpu > 0 ? cost.pcieSeconds(diff_tokens *
                                         kvBytesPerTokenPerLayer(m) *
                                         l_cpu)
                      : 0.0;
        return step_compute + head +
               std::max(0.0, xfer - step_compute) + cost.syncSeconds();
    }
    // C1 only: synchronous full-budget load per offloaded layer.
    const double sync_xfer =
        l_cpu > 0 ? l_cpu * cost.pcieSeconds(
                                attended_total *
                                kvBytesPerTokenPerLayer(m))
                  : 0.0;
    return step_compute + head + sync_xfer;
}

double
SpeContextSystem::decodeIterationSeconds(
    const TimingConfig &cfg, const std::vector<int64_t> &kv_lens) const
{
    if (kv_lens.empty())
        return 0.0;
    const sim::CostModel cost(cfg.hw, backend());
    const model::ModelConfig &m = cfg.llm;
    const int64_t R = static_cast<int64_t>(kv_lens.size());
    const int64_t q_dim = m.q_heads * m.head_dim;
    const int64_t kv_dim = m.attention == model::AttentionKind::MLA
                               ? m.mla_latent_dim
                               : m.kv_heads * m.head_dim;
    const sim::MemoryModel mm(memoryInputs(cfg, R));
    const double weight_stream =
        double(m.parameterBytesFp16()) / (cfg.hw.hbm_bw_gbps * 1e9);
    return decodeIterImpl(cfg, kv_lens, cost,
                          cost.decodeStepBreakdown(m, R, 0),
                          cost.gemmSeconds(R, q_dim + kv_dim, m.hidden),
                          weight_stream, mm);
}

/**
 * Caching evaluator: the CostModel, per-batch-size step breakdown,
 * retrieval-head GEMM price and MemoryModel are pure functions of the
 * bound config and R, derived once and reused; every iteration then
 * runs decodeIterImpl — the same arithmetic, in the same order, on the
 * same values as the per-call path, so the result is bit-identical.
 */
class SpeContextDecodeEvaluator final : public DecodeEvaluator
{
  public:
    SpeContextDecodeEvaluator(const SpeContextSystem &sys,
                              const TimingConfig &cfg)
        : sys_(sys), cfg_(cfg), cost_(cfg_.hw, sys.backend()),
          weight_stream_(double(cfg_.llm.parameterBytesFp16()) /
                         (cfg_.hw.hbm_bw_gbps * 1e9))
    {
    }

    double seconds(const std::vector<int64_t> &kv_lens) override
    {
        if (kv_lens.empty())
            return 0.0;
        const PerR &p = perR(kv_lens.size());
        return sys_.decodeIterImpl(cfg_, kv_lens, cost_, p.base,
                                   p.head_gemm, weight_stream_, *p.mm);
    }

    /**
     * Incremental window (see DecodeEvaluator::beginWindow): the two
     * reduced integers a round needs — attended_total (Σ min(budget,
     * s_i)) and s_max — evolve predictably under uniform +1 growth:
     * s_max gains one every round, and attended_total gains one per
     * context still under the attention budget. A context stops
     * contributing at a round index known at window start (budget -
     * s_i), so a growing-context count plus the next crossing index
     * replace the O(R) rescan; windows are typically far shorter than
     * the distance to the nearest crossing, so the recount is rare.
     * The seconds come from the same decodeIterTail the vector path
     * funnels into, on the same integers, so every round is
     * bit-identical to a seconds() call on the grown vector.
     */
    void beginWindow(const std::vector<int64_t> &kv_lens) override
    {
        win_r_ = static_cast<int64_t>(kv_lens.size());
        win_p_ = win_r_ > 0 ? &perR(kv_lens.size()) : nullptr;
        win_attended_ = 0;
        win_smax_ = 0;
        win_round_ = 0;
        win_grow_ = 0;
        win_next_cross_ = std::numeric_limits<int64_t>::max();
        win_base_.assign(kv_lens.begin(), kv_lens.end());
        const int64_t budget = sys_.attentionBudget();
        for (int64_t s : kv_lens) {
            if (s <= 0)
                throw std::invalid_argument(
                    "decodeIterationSeconds: non-positive KV length");
            win_attended_ += std::min<int64_t>(budget, s);
            win_smax_ = std::max(win_smax_, s);
            if (s < budget) {
                ++win_grow_;
                win_next_cross_ =
                    std::min(win_next_cross_, budget - s);
            }
        }
        win_limit_ = win_p_ ? win_p_->all_resident_limit : -1;
    }

    double nextRoundSeconds() override
    {
        if (win_r_ == 0)
            return 0.0;
        return roundPrice();
    }

    /** The fused window loop: identical break logic and accumulation
     *  order to the base-class loop, but the per-round price inlines
     *  into the loop body (roundPrice() and decodeIterTail live in
     *  this translation unit), so a window costs one virtual dispatch
     *  total instead of one per round. */
    double runWindow(int64_t max_rounds, double now, double horizon,
                     double t_pending, int64_t &rounds,
                     double &first_now) override
    {
        if (win_r_ == 0)
            return DecodeEvaluator::runWindow(
                max_rounds, now, horizon, t_pending, rounds, first_now);
        rounds = 0;
        for (;;) {
            now += roundPrice();
            if (++rounds == 1)
                first_now = now;
            if (rounds >= max_rounds || !(now < horizon) ||
                t_pending <= now)
                break;
        }
        return now;
    }

    /** Every SpeContext round is floored by the weight-streaming time:
     *  stepComputeFromTotals() takes max(..., weight_stream) and
     *  decodeIterTail() only adds non-negative head/transfer terms on
     *  top, so weight_stream_ lower-bounds any round at any shape. */
    double minRoundSeconds() const override { return weight_stream_; }

  private:
    struct PerR;

    /** One window round: advance the reduced integers, price them.
     *  Requires an open window with win_r_ > 0. */
    double roundPrice()
    {
        if (win_round_ > 0) {
            // Round index r evaluates lengths s_i + r: attended grows
            // by the count of contexts with budget - s_i >= r. The
            // count only changes when r passes a crossing; recount
            // from the window-base lengths then.
            if (win_next_cross_ < win_round_) {
                const int64_t budget = sys_.attentionBudget();
                win_grow_ = 0;
                win_next_cross_ =
                    std::numeric_limits<int64_t>::max();
                for (int64_t s : win_base_) {
                    const int64_t c = budget - s;
                    if (c >= win_round_) {
                        ++win_grow_;
                        win_next_cross_ = std::min(win_next_cross_, c);
                    }
                }
            }
            win_attended_ += win_grow_;
            ++win_smax_;
        }
        ++win_round_;
        return sys_.decodeIterTail(cfg_, win_r_, win_attended_,
                                   win_smax_, cost_, win_p_->base,
                                   win_p_->head_gemm, weight_stream_,
                                   *win_p_->mm, win_limit_);
    }

    const PerR &perR(size_t r)
    {
        if (r >= per_r_.size())
            per_r_.resize(r + 1);
        PerR &p = per_r_[r];
        if (!p.mm) {
            const model::ModelConfig &m = cfg_.llm;
            const int64_t R = static_cast<int64_t>(r);
            const int64_t q_dim = m.q_heads * m.head_dim;
            const int64_t kv_dim =
                m.attention == model::AttentionKind::MLA
                    ? m.mla_latent_dim
                    : m.kv_heads * m.head_dim;
            p.base = cost_.decodeStepBreakdown(m, R, 0);
            p.head_gemm =
                cost_.gemmSeconds(R, q_dim + kv_dim, m.hidden);
            p.mm = std::make_unique<sim::MemoryModel>(
                sys_.memoryInputs(cfg_, R));
            p.all_resident_limit = p.mm->allResidentMaxTokens();
        }
        return p;
    }

    struct PerR
    {
        sim::DecodeBreakdown base;
        double head_gemm = 0.0;
        std::unique_ptr<sim::MemoryModel> mm;
        /** mm->allResidentMaxTokens(), cached beside it. */
        int64_t all_resident_limit = -1;
    };

    const SpeContextSystem &sys_;
    TimingConfig cfg_; ///< owns the system keepalive (shared_ptr inside)
    sim::CostModel cost_;
    double weight_stream_; ///< R-independent weight-streaming floor
    std::vector<PerR> per_r_; ///< indexed by batch size, lazily filled

    // ---- Bulk-window state (see beginWindow) ------------------------
    int64_t win_r_ = 0;        ///< batch size of the open window
    const PerR *win_p_ = nullptr;
    int64_t win_attended_ = 0; ///< Σ min(budget, s_i + round)
    int64_t win_smax_ = 0;     ///< max s_i + round
    int64_t win_round_ = 0;    ///< rounds evaluated so far
    int64_t win_limit_ = -1;   ///< all-resident shortcut bound
    int64_t win_grow_ = 0;     ///< contexts still under budget
    int64_t win_next_cross_ = 0; ///< earliest budget-crossing round
    std::vector<int64_t> win_base_; ///< window-base lengths (recounts)
};

std::unique_ptr<DecodeEvaluator>
SpeContextSystem::makeDecodeEvaluator(const TimingConfig &cfg) const
{
    return std::make_unique<SpeContextDecodeEvaluator>(*this, cfg);
}

/**
 * Caching prefill evaluator: requestPrefillSeconds() builds a
 * CostModel and (through cpuLayers) a MemoryModel on every admission
 * even though both are pure functions of the bound config and the
 * joined batch size. Hoist them here; each admission then runs the
 * same prefill/retrieval-GEMM/eviction arithmetic, in the same order,
 * on the same values as the per-call method.
 */
class SpeContextPrefillEvaluator final : public PrefillEvaluator
{
  public:
    SpeContextPrefillEvaluator(const SpeContextSystem &sys,
                               const TimingConfig &cfg)
        : sys_(sys), cfg_(cfg), cost_(cfg_.hw, sys.backend()),
          kvb_(kvBytesPerTokenPerLayer(cfg_.llm))
    {
        const model::ModelConfig &m = cfg_.llm;
        const int64_t q_dim = m.q_heads * m.head_dim;
        const int64_t kv_dim =
            m.attention == model::AttentionKind::MLA
                ? m.mla_latent_dim
                : m.kv_heads * m.head_dim;
        qkv_dim_ = q_dim + kv_dim;
    }

    double seconds(int64_t prompt_len, int64_t in_flight_requests,
                   int64_t resident_kv_tokens) override
    {
        const model::ModelConfig &m = cfg_.llm;
        double t = cost_.prefillSeconds(m, 1, prompt_len);
        t += cost_.gemmSeconds(prompt_len, qkv_dim_, m.hidden);
        const int64_t r_joined = in_flight_requests + 1;
        const int64_t s_uniform = std::max(
            prompt_len, (resident_kv_tokens + prompt_len) / r_joined);
        const int64_t l_cpu =
            sys_.cpuLayersWith(mmFor(r_joined), cfg_, r_joined,
                               s_uniform);
        if (l_cpu > 0) {
            const double evict =
                cost_.pcieSeconds(prompt_len * kvb_ * l_cpu);
            const double exposed =
                sys_.options().features.async_elastic ? 0.2 : 1.0;
            t += exposed * evict;
        }
        return t;
    }

  private:
    /** Memory model for `requests` joined requests, built once. */
    const sim::MemoryModel &mmFor(int64_t requests)
    {
        const size_t r = static_cast<size_t>(requests);
        if (r >= mm_.size())
            mm_.resize(r + 1);
        if (!mm_[r])
            mm_[r] = std::make_unique<sim::MemoryModel>(
                sys_.memoryInputs(cfg_, requests));
        return *mm_[r];
    }

    const SpeContextSystem &sys_;
    TimingConfig cfg_; ///< owns the system keepalive (shared_ptr inside)
    sim::CostModel cost_;
    int64_t kvb_;      ///< KV bytes per token per layer
    int64_t qkv_dim_;  ///< retrieval-head fused QK projection width
    std::vector<std::unique_ptr<sim::MemoryModel>> mm_; ///< by r_joined
};

std::unique_ptr<PrefillEvaluator>
SpeContextSystem::makePrefillEvaluator(const TimingConfig &cfg) const
{
    return std::make_unique<SpeContextPrefillEvaluator>(*this, cfg);
}

/**
 * Caching admission evaluator: admit() builds a MemoryModel over
 * memoryInputs(cfg, 1) on every probe even though the inputs never
 * change for a bound config. Hoist the model (and the derived
 * per-token KV byte factor) into the evaluator; each probe then runs
 * the same integer reductions and the same fitsWithOffload/DRAM
 * comparisons on the same values as the per-call method.
 */
class SpeContextAdmissionEvaluator final : public AdmissionEvaluator
{
  public:
    SpeContextAdmissionEvaluator(const SpeContextSystem &sys,
                                 const TimingConfig &cfg)
        : cfg_(cfg), mm_(sys.memoryInputs(cfg_, 1)),
          kv_bytes_all_layers_(kvBytesPerTokenPerLayer(cfg_.llm) *
                               cfg_.llm.layers)
    {
    }

    AdmissionDecision admit(const std::vector<int64_t> &in_flight_final_lens,
                            int64_t candidate_prompt_len,
                            int64_t candidate_final_len) override
    {
        (void)candidate_prompt_len;
        const int64_t r =
            static_cast<int64_t>(in_flight_final_lens.size()) + 1;
        int64_t s_max = candidate_final_len;
        int64_t kv_tokens = candidate_final_len;
        for (int64_t fl : in_flight_final_lens) {
            s_max = std::max(s_max, fl);
            kv_tokens += fl;
        }
        return decide(r, s_max, kv_tokens);
    }

    AdmissionDecision fitsCurrent(const std::vector<int64_t> &kv_lens) override
    {
        if (kv_lens.empty())
            return {true, ""};
        // The base-class fitsCurrent splits [rest..., back] and calls
        // admit(rest, 1, back); its max/sum over that split equal the
        // reductions below over the whole vector, so no split copy.
        const int64_t r = static_cast<int64_t>(kv_lens.size());
        int64_t s_max = kv_lens.back();
        int64_t kv_tokens = kv_lens.back();
        for (size_t i = 0; i + 1 < kv_lens.size(); ++i) {
            s_max = std::max(s_max, kv_lens[i]);
            kv_tokens += kv_lens[i];
        }
        return decide(r, s_max, kv_tokens);
    }

  private:
    AdmissionDecision decide(int64_t r, int64_t s_max, int64_t kv_tokens)
    {
        if (!mm_.fitsWithOffload(r, s_max))
            return {false,
                    "no offload level fits (Eq. 7 headroom exhausted)"};
        if (kv_tokens * kv_bytes_all_layers_ > cfg_.hw.cpu_mem_bytes)
            return {false, "offloaded KV would exceed CPU DRAM"};
        return {true, ""};
    }

    TimingConfig cfg_; ///< owns the system keepalive (shared_ptr inside)
    sim::MemoryModel mm_;
    int64_t kv_bytes_all_layers_; ///< kvb * layers, hoisted
};

std::unique_ptr<AdmissionEvaluator>
SpeContextSystem::makeAdmissionEvaluator(const TimingConfig &cfg) const
{
    return std::make_unique<SpeContextAdmissionEvaluator>(*this, cfg);
}

AdmissionDecision
SpeContextSystem::admit(const TimingConfig &cfg,
                        const std::vector<int64_t> &in_flight_final_lens,
                        int64_t candidate_prompt_len,
                        int64_t candidate_final_len) const
{
    (void)candidate_prompt_len;
    const int64_t r =
        static_cast<int64_t>(in_flight_final_lens.size()) + 1;
    // Eq. 7 prices R uniform-length requests; bound the heterogeneous
    // batch by its longest final reservation (conservative).
    int64_t s_max = candidate_final_len;
    int64_t kv_tokens = candidate_final_len;
    for (int64_t fl : in_flight_final_lens) {
        s_max = std::max(s_max, fl);
        kv_tokens += fl;
    }
    const sim::MemoryModel mm(memoryInputs(cfg, 1));
    if (!mm.fitsWithOffload(r, s_max))
        return {false, "no offload level fits (Eq. 7 headroom exhausted)"};
    // Offloaded layers land in CPU DRAM; the full KV cache must fit
    // there in the worst (all-offloaded) placement. Exact per-request
    // sum — DRAM capacity is not a uniform-length bound.
    const int64_t kvb = kvBytesPerTokenPerLayer(cfg.llm);
    if (kv_tokens * kvb * cfg.llm.layers > cfg.hw.cpu_mem_bytes)
        return {false, "offloaded KV would exceed CPU DRAM"};
    return {true, ""};
}

int64_t
SpeContextSystem::hbmFootprintBytes(const TimingConfig &cfg,
                                    int64_t requests, int64_t s) const
{
    const sim::MemoryModel mm(memoryInputs(cfg, requests));
    const int64_t l_cpu = cpuLayers(cfg, requests, s);
    return mm.mPartBytesFor(requests, s, cfg.llm.layers - l_cpu);
}

int64_t
SpeContextSystem::dramFootprintBytes(const TimingConfig &cfg,
                                     int64_t requests, int64_t s) const
{
    const int64_t l_cpu = cpuLayers(cfg, requests, s);
    return requests * s * kvBytesPerTokenPerLayer(cfg.llm) * l_cpu;
}

} // namespace

namespace detail {

void
registerSpeContextSystem()
{
    addBuiltinSystem("SpeContext", [](const SystemOptions &o) {
        return std::make_shared<SpeContextSystem>(o);
    });
}

} // namespace detail
} // namespace core
} // namespace specontext
