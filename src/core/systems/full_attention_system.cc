/**
 * @file
 * Full-attention baselines: HuggingFace eager, FlashAttention, and
 * FlashInfer. They differ only in kernel efficiency and in the eager
 * backend's materialized attention scratch (its OOM mode); when the KV
 * cache outgrows the GPU they fall back to complete offloading
 * (per-step full KV transfer), HF-Accelerate style, when
 * SystemOptions::allow_full_attention_offload permits.
 */
#include "core/systems/registration.h"

#include <algorithm>
#include <stdexcept>

namespace specontext {
namespace core {
namespace {

class FullAttentionSystem final : public SystemModel
{
  public:
    FullAttentionSystem(const SystemOptions &opts, const char *name,
                        sim::KernelBackend backend, bool eager_scratch)
        : SystemModel(opts), name_(name), backend_(backend),
          eager_scratch_(eager_scratch)
    {
    }

    const char *name() const override { return name_; }
    sim::KernelBackend backend() const override { return backend_; }
    DataflowKind dataflow() const override
    {
        return DataflowKind::PrefetchFullKV;
    }
    bool supportsContinuousBatching() const override { return true; }

    TimingResult simulate(const TimingConfig &cfg) const override;
    double requestPrefillSeconds(const TimingConfig &cfg,
                                 int64_t prompt_len,
                                 int64_t in_flight_requests,
                                 int64_t resident_kv_tokens) const override;
    double decodeIterationSeconds(
        const TimingConfig &cfg,
        const std::vector<int64_t> &kv_lens) const override;
    AdmissionDecision admit(const TimingConfig &cfg,
                            const std::vector<int64_t> &in_flight_final_lens,
                            int64_t candidate_prompt_len,
                            int64_t candidate_final_len) const override;
    int64_t hbmFootprintBytes(const TimingConfig &cfg, int64_t requests,
                              int64_t s) const override;
    int64_t dramFootprintBytes(const TimingConfig &cfg, int64_t requests,
                               int64_t s) const override;

  private:
    /** Prefill attention scratch: eager materializes the (S x S)
     *  attention matrix per head — its distinctive OOM mode. */
    int64_t scratchBytes(const model::ModelConfig &m, int64_t requests,
                         int64_t prompt_len) const
    {
        return eager_scratch_
                   ? 2 * requests * m.q_heads * prompt_len * prompt_len
                   : 0;
    }

    const char *name_;
    sim::KernelBackend backend_;
    bool eager_scratch_;
};

TimingResult
FullAttentionSystem::simulate(const TimingConfig &cfg) const
{
    TimingResult r;
    const sim::CostModel cost(cfg.hw, backend_);
    const model::ModelConfig &m = cfg.llm;
    const int64_t R = cfg.batch;
    const int64_t s_final = cfg.prompt_len + cfg.gen_len;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    const int64_t weights = weightFootprintBytes(m);

    const int64_t scratch = scratchBytes(m, R, cfg.prompt_len);
    if (weights + scratch > cfg.hw.gpu_mem_bytes) {
        r.oom = true;
        r.oom_reason = "prefill attention scratch exceeds GPU memory";
        return r;
    }

    const int64_t kv_total = R * s_final * kvb * m.layers;
    const bool offload =
        weights + scratch + kv_total > cfg.hw.gpu_mem_bytes;
    if (offload && !opts_.allow_full_attention_offload) {
        r.oom = true;
        r.oom_reason = "KV cache exceeds GPU memory (no offload)";
        return r;
    }
    if (offload && kv_total > cfg.hw.cpu_mem_bytes) {
        r.oom = true;
        r.oom_reason = "KV cache exceeds CPU memory";
        return r;
    }

    r.prefill_seconds = cost.prefillSeconds(m, R, cfg.prompt_len);
    if (offload) {
        // Initial KV eviction of the prompt.
        r.prefill_seconds +=
            cost.pcieSeconds(R * cfg.prompt_len * kvb * m.layers);
    }

    for (int64_t t = 0; t < cfg.gen_len; ++t) {
        const int64_t s = cfg.prompt_len + t;
        const sim::DecodeBreakdown b = cost.decodeStepBreakdown(m, R, s);
        double dt = b.total;
        r.breakdown["attn"] += b.attn;
        r.breakdown["gemm"] += b.gemm + b.lm_head;
        r.breakdown["launch"] += b.launch;
        if (offload) {
            // Complete offloading: the entire KV cache crosses PCIe
            // every step, layer by layer, serialized with compute.
            const double xfer =
                cost.pcieSeconds(R * s * kvb * m.layers);
            r.breakdown["transfer"] += xfer;
            dt += xfer;
        }
        r.decode_seconds += dt;
    }

    const double total = r.prefill_seconds + r.decode_seconds;
    r.throughput = R * cfg.gen_len / total;
    r.decode_throughput = R * cfg.gen_len / r.decode_seconds;
    r.final_gpu_layers = offload ? 0 : m.layers;
    return r;
}

double
FullAttentionSystem::requestPrefillSeconds(const TimingConfig &cfg,
                                           int64_t prompt_len,
                                           int64_t in_flight_requests,
                                           int64_t resident_kv_tokens) const
{
    (void)in_flight_requests;
    const sim::CostModel cost(cfg.hw, backend_);
    const model::ModelConfig &m = cfg.llm;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    double t = cost.prefillSeconds(m, 1, prompt_len);

    // Complete-offloading spill: when the batch's KV (including the
    // new prompt) no longer fits, the prompt's KV is evicted right
    // after prefill — same charge as simulate().
    if (opts_.allow_full_attention_offload &&
        weightFootprintBytes(m) +
                (resident_kv_tokens + prompt_len) * kvb * m.layers >
            cfg.hw.gpu_mem_bytes) {
        t += cost.pcieSeconds(prompt_len * kvb * m.layers);
    }
    return t;
}

double
FullAttentionSystem::decodeIterationSeconds(
    const TimingConfig &cfg, const std::vector<int64_t> &kv_lens) const
{
    if (kv_lens.empty())
        return 0.0;
    const sim::CostModel cost(cfg.hw, backend_);
    const model::ModelConfig &m = cfg.llm;

    // Full attention reads every cached token of every request.
    int64_t attended_total = 0;
    const double step_compute = stepComputeSeconds(
        cfg, cost, kv_lens, [](int64_t s) { return s; },
        &attended_total);
    const int64_t kvb = kvBytesPerTokenPerLayer(m);

    double extra = 0.0;
    if (opts_.allow_full_attention_offload) {
        // Complete-offloading spill (HF-Accelerate style): once the
        // live KV outgrows HBM the whole cache crosses PCIe each
        // iteration, serialized with compute — same rule as simulate().
        const int64_t kv_bytes = attended_total * kvb * m.layers;
        if (weightFootprintBytes(m) + kv_bytes > cfg.hw.gpu_mem_bytes)
            extra = cost.pcieSeconds(kv_bytes);
    }
    return step_compute + extra;
}

AdmissionDecision
FullAttentionSystem::admit(const TimingConfig &cfg,
                           const std::vector<int64_t> &in_flight_final_lens,
                           int64_t candidate_prompt_len,
                           int64_t candidate_final_len) const
{
    const model::ModelConfig &m = cfg.llm;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    int64_t kv_tokens = candidate_final_len;
    for (int64_t fl : in_flight_final_lens)
        kv_tokens += fl;
    const int64_t kv_total = kv_tokens * kvb * m.layers;

    // Eager materializes the (S x S) attention matrix while prefilling
    // the joining request (one request at a time in this server).
    const int64_t scratch = scratchBytes(m, 1, candidate_prompt_len);
    const int64_t weights = weightFootprintBytes(m);
    const int64_t need = weights + scratch + kv_total;
    if (need <= cfg.hw.gpu_mem_bytes)
        return {true, ""};
    if (opts_.allow_full_attention_offload) {
        if (weights + scratch > cfg.hw.gpu_mem_bytes)
            return {false, "weights + prefill scratch exceed GPU memory"};
        if (kv_total > cfg.hw.cpu_mem_bytes)
            return {false, "spilled KV would exceed CPU DRAM"};
        return {true, ""};
    }
    return {false, "reserved KV exceeds GPU memory (no offload)"};
}

int64_t
FullAttentionSystem::hbmFootprintBytes(const TimingConfig &cfg,
                                       int64_t requests, int64_t s) const
{
    const int64_t resident = SystemModel::hbmFootprintBytes(cfg, requests, s);
    if (resident <= cfg.hw.gpu_mem_bytes ||
        !opts_.allow_full_attention_offload)
        return resident;
    // Spilled: only weights + runtime buffers stay on the device.
    return weightFootprintBytes(cfg.llm);
}

int64_t
FullAttentionSystem::dramFootprintBytes(const TimingConfig &cfg,
                                        int64_t requests, int64_t s) const
{
    if (!opts_.allow_full_attention_offload)
        return 0;
    const int64_t resident = SystemModel::hbmFootprintBytes(cfg, requests, s);
    if (resident <= cfg.hw.gpu_mem_bytes)
        return 0;
    return requests * s * kvBytesPerTokenPerLayer(cfg.llm) *
           cfg.llm.layers;
}

} // namespace

namespace detail {

void
registerFullAttentionSystems()
{
    addBuiltinSystem("FullAttn(Eager)", [](const SystemOptions &o) {
        return std::make_shared<FullAttentionSystem>(
            o, "FullAttn(Eager)", sim::KernelBackend::Eager, true);
    });
    addBuiltinSystem("FullAttn(FlashAttn)", [](const SystemOptions &o) {
        return std::make_shared<FullAttentionSystem>(
            o, "FullAttn(FlashAttn)", sim::KernelBackend::FlashAttention,
            false);
    });
    addBuiltinSystem("FullAttn(FlashInfer)", [](const SystemOptions &o) {
        // FlashInfer: fused + batch-scheduled kernels.
        return std::make_shared<FullAttentionSystem>(
            o, "FullAttn(FlashInfer)", sim::KernelBackend::FlashInfer,
            false);
    });
}

} // namespace detail
} // namespace core
} // namespace specontext
