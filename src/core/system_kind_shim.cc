#include "core/system_kind_shim.h"

#include <stdexcept>

namespace specontext {
namespace core {

const char *
legacySystemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::HFEager: return "FullAttn(Eager)";
      case SystemKind::FlashAttention: return "FullAttn(FlashAttn)";
      case SystemKind::FlashInfer: return "FullAttn(FlashInfer)";
      case SystemKind::Quest: return "Quest";
      case SystemKind::ClusterKV: return "ClusterKV";
      case SystemKind::ShadowKV: return "ShadowKV";
      case SystemKind::SpeContext: return "SpeContext";
    }
    throw std::logic_error("unknown system kind");
}

std::shared_ptr<const SystemModel>
systemFromKind(SystemKind kind, const SystemOptions &opts)
{
    return SystemRegistry::create(legacySystemName(kind), opts);
}

} // namespace core
} // namespace specontext
