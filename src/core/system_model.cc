#include "core/system_model.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "core/systems/registration.h"

namespace specontext {
namespace core {

int64_t
kvBytesPerTokenPerLayer(const model::ModelConfig &m)
{
    return 2 * m.kvFloatsPerTokenPerLayer(); // FP16
}

int64_t
weightFootprintBytes(const model::ModelConfig &m)
{
    // 1.3x weight bytes (runtime buffer rule of Eq. 6).
    return static_cast<int64_t>(1.3 * m.parameterBytesFp16());
}

// ------------------------------------------------------------- SystemModel

double
SystemModel::requestPrefillSeconds(const TimingConfig &, int64_t, int64_t,
                                   int64_t) const
{
    throw std::invalid_argument(
        "requestPrefillSeconds: system is wave-scheduled only");
}

double
SystemModel::decodeIterationSeconds(const TimingConfig &,
                                    const std::vector<int64_t> &) const
{
    throw std::invalid_argument(
        "decodeIterationSeconds: system is wave-scheduled only");
}

namespace {

/** Fallback evaluator: per-call delegation, no caching. Bit-identity
 *  with the per-call method is trivial — it IS the per-call method. */
class DelegatingDecodeEvaluator final : public DecodeEvaluator
{
  public:
    explicit DelegatingDecodeEvaluator(TimingConfig cfg)
        : cfg_(std::move(cfg))
    {
    }

    double seconds(const std::vector<int64_t> &kv_lens) override
    {
        return cfg_.system->decodeIterationSeconds(cfg_, kv_lens);
    }

  private:
    TimingConfig cfg_; ///< owns the system keepalive (shared_ptr inside)
};

/** Fallback admission evaluator: per-call delegation, no caching. */
class DelegatingAdmissionEvaluator final : public AdmissionEvaluator
{
  public:
    explicit DelegatingAdmissionEvaluator(TimingConfig cfg)
        : cfg_(std::move(cfg))
    {
    }

    AdmissionDecision admit(const std::vector<int64_t> &in_flight_final_lens,
                            int64_t candidate_prompt_len,
                            int64_t candidate_final_len) override
    {
        return cfg_.system->admit(cfg_, in_flight_final_lens,
                                  candidate_prompt_len, candidate_final_len);
    }

    AdmissionDecision fitsCurrent(const std::vector<int64_t> &kv_lens) override
    {
        return cfg_.system->fitsCurrent(cfg_, kv_lens);
    }

  private:
    TimingConfig cfg_; ///< owns the system keepalive (shared_ptr inside)
};

/** Fallback prefill evaluator: per-call delegation, no caching. */
class DelegatingPrefillEvaluator final : public PrefillEvaluator
{
  public:
    explicit DelegatingPrefillEvaluator(TimingConfig cfg)
        : cfg_(std::move(cfg))
    {
    }

    double seconds(int64_t prompt_len, int64_t in_flight_requests,
                   int64_t resident_kv_tokens) override
    {
        return cfg_.system->requestPrefillSeconds(
            cfg_, prompt_len, in_flight_requests, resident_kv_tokens);
    }

  private:
    TimingConfig cfg_; ///< owns the system keepalive (shared_ptr inside)
};

} // namespace

std::unique_ptr<DecodeEvaluator>
SystemModel::makeDecodeEvaluator(const TimingConfig &cfg) const
{
    return std::make_unique<DelegatingDecodeEvaluator>(cfg);
}

std::unique_ptr<AdmissionEvaluator>
SystemModel::makeAdmissionEvaluator(const TimingConfig &cfg) const
{
    return std::make_unique<DelegatingAdmissionEvaluator>(cfg);
}

std::unique_ptr<PrefillEvaluator>
SystemModel::makePrefillEvaluator(const TimingConfig &cfg) const
{
    return std::make_unique<DelegatingPrefillEvaluator>(cfg);
}

AdmissionDecision
SystemModel::admit(const TimingConfig &, const std::vector<int64_t> &,
                   int64_t, int64_t) const
{
    return {false, "system is wave-scheduled only (no admission path)"};
}

AdmissionDecision
SystemModel::fitsCurrent(const TimingConfig &cfg,
                         const std::vector<int64_t> &kv_lens) const
{
    if (kv_lens.empty())
        return {true, ""};
    // Reuse the admission discipline at the *current* lengths: the
    // last entry plays the joining candidate (1-token prompt, so no
    // meaningful prefill-scratch term), the rest the in-flight batch.
    std::vector<int64_t> rest(kv_lens.begin(), kv_lens.end() - 1);
    return admit(cfg, rest, 1, kv_lens.back());
}

int64_t
SystemModel::maxSimulatedBatch() const
{
    return std::numeric_limits<int64_t>::max();
}

double
SystemModel::stepComputeSeconds(
    const TimingConfig &cfg, const sim::CostModel &cost,
    const std::vector<int64_t> &kv_lens,
    const std::function<int64_t(int64_t)> &attended,
    int64_t *attended_total_out, int64_t *s_max_out,
    const sim::DecodeBreakdown *base_hint) const
{
    const model::ModelConfig &m = cfg.llm;
    const int64_t R = static_cast<int64_t>(kv_lens.size());
    const sim::DecodeBreakdown base =
        base_hint ? *base_hint : cost.decodeStepBreakdown(m, R, 0);

    int64_t attended_total = 0;
    int64_t s_max = 0;
    for (int64_t s : kv_lens) {
        if (s <= 0)
            throw std::invalid_argument(
                "decodeIterationSeconds: non-positive KV length");
        attended_total += attended(s);
        s_max = std::max(s_max, s);
    }
    const double weight_stream =
        double(m.parameterBytesFp16()) / (cfg.hw.hbm_bw_gbps * 1e9);
    if (attended_total_out)
        *attended_total_out = attended_total;
    if (s_max_out)
        *s_max_out = s_max;
    return stepComputeFromTotals(cfg, cost, base, attended_total,
                                 weight_stream);
}

sim::MemoryModelInputs
SystemModel::memoryInputs(const TimingConfig &cfg, int64_t requests) const
{
    sim::MemoryModelInputs mmin;
    mmin.llm = cfg.llm;
    mmin.dlm = model::dlmGeometryFor(cfg.llm);
    mmin.requests = requests;
    mmin.budget = opts_.budget;
    mmin.gpu_mem_bytes = cfg.hw.gpu_mem_bytes;
    return mmin;
}

int64_t
SystemModel::hbmFootprintBytes(const TimingConfig &cfg, int64_t requests,
                               int64_t s) const
{
    return weightFootprintBytes(cfg.llm) +
           requests * s * kvBytesPerTokenPerLayer(cfg.llm) *
               cfg.llm.layers;
}

int64_t
SystemModel::dramFootprintBytes(const TimingConfig &, int64_t,
                                int64_t) const
{
    return 0;
}

DataflowResult
SystemModel::tokenDataflow(const TimingConfig &cfg, int64_t seq_len) const
{
    DataflowParams p;
    p.llm = cfg.llm;
    p.hw = cfg.hw;
    p.backend = backend();
    p.batch = cfg.batch;
    p.seq_len = seq_len;
    p.budget = opts_.budget;
    p.elastic_overlap = opts_.elastic_overlap;
    return simulateTokenDataflow(dataflow(), p);
}

// ---------------------------------------------------------- SystemRegistry

namespace {

using FactoryMap = std::map<std::string, SystemRegistry::Factory>;

std::mutex &
registryMutex()
{
    static std::mutex mu;
    return mu;
}

FactoryMap &
rawFactories()
{
    static FactoryMap factories;
    return factories;
}

void
addFactory(const std::string &name, SystemRegistry::Factory factory)
{
    if (name.empty())
        throw std::invalid_argument("SystemRegistry: empty system name");
    if (!factory)
        throw std::invalid_argument("SystemRegistry: null factory for '" +
                                    name + "'");
    std::lock_guard<std::mutex> lock(registryMutex());
    if (!rawFactories().emplace(name, std::move(factory)).second)
        throw std::invalid_argument(
            "SystemRegistry: duplicate system name '" + name + "'");
}

void
ensureBuiltins()
{
    static std::once_flag once;
    std::call_once(once, [] {
        detail::registerFullAttentionSystems();
        detail::registerLayerwiseBaselineSystems();
        detail::registerSpeContextSystem();
        detail::registerEvictionSystems();
    });
}

} // namespace

namespace detail {

void
addBuiltinSystem(const std::string &name, SystemRegistry::Factory factory)
{
    addFactory(name, std::move(factory));
}

} // namespace detail

void
SystemRegistry::registerSystem(const std::string &name, Factory factory)
{
    ensureBuiltins();
    addFactory(name, std::move(factory));
}

std::shared_ptr<const SystemModel>
SystemRegistry::create(const std::string &name, const SystemOptions &opts)
{
    ensureBuiltins();
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        const auto it = rawFactories().find(name);
        if (it == rawFactories().end()) {
            std::string known;
            for (const auto &[n, f] : rawFactories()) {
                (void)f;
                known += known.empty() ? n : ", " + n;
            }
            throw std::invalid_argument("SystemRegistry: unknown system '" +
                                        name + "' (known: " + known + ")");
        }
        factory = it->second;
    }
    auto sys = factory(opts);
    if (!sys)
        throw std::logic_error("SystemRegistry: factory for '" + name +
                               "' returned null");
    return sys;
}

std::vector<std::string>
SystemRegistry::names()
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> out;
    out.reserve(rawFactories().size());
    for (const auto &[name, factory] : rawFactories()) {
        (void)factory;
        out.push_back(name);
    }
    return out; // std::map iterates sorted
}

bool
SystemRegistry::contains(const std::string &name)
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    return rawFactories().count(name) > 0;
}

} // namespace core
} // namespace specontext
