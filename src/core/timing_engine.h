/**
 * @file
 * Simulated end-to-end timing of every registered system, at
 * paper-scale model geometry, on the analytical cost model and
 * two-stream timeline.
 *
 * The engine is a thin façade: the per-system dataflows (full
 * attention with complete offloading, layer-wise retrieve-then-load,
 * SpeContext's speculative sparsity, permanent eviction, ...) live in
 * `core::SystemModel` subclasses constructed through the
 * `core::SystemRegistry` (system_model.h); TimingConfig carries the
 * system instance and the engine validates inputs and delegates.
 * Systems are addressed by registry name only (the deprecated
 * `SystemKind` enum shim has been removed).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/system_model.h"

namespace specontext {
namespace core {

/** Analytical simulator over the pluggable system API. */
class TimingEngine
{
  public:
    /** Price a whole closed [prompt, gen] run of cfg.system.
     *  @throws std::invalid_argument when cfg.system is null. */
    TimingResult simulate(const TimingConfig &cfg) const;

    // ---- Incremental stepping (continuous batching) -----------------
    //
    // simulate() prices a whole closed [prompt, gen] run at once, which
    // forces wave barriers onto the serving layer. serving::Server
    // instead advances all in-flight requests one decode iteration at a
    // time, so the engine also exposes the two quanta it needs: the
    // cost of prefilling a single joining request, and the cost of one
    // decode iteration over a *heterogeneous* batch (each request at
    // its own KV length). Only systems whose
    // SystemModel::supportsContinuousBatching() is true can be driven
    // this way — the per-layer retrieve-then-load baselines
    // (Quest/ClusterKV/ShadowKV) are wave-scheduled in the paper and
    // keep that restriction here.

    /**
     * Seconds to prefill one request of `prompt_len` tokens joining the
     * running batch (chunked prefill iteration; includes the system's
     * prompt preprocessing and the prompt-KV eviction/spill transfers
     * simulate() charges when the cache oversubscribes HBM).
     * `in_flight_requests` and `resident_kv_tokens` describe the batch
     * being joined — they decide whether the new prompt's KV must move
     * off-device.
     * @throws std::invalid_argument for unsupported systems.
     */
    double requestPrefillSeconds(const TimingConfig &cfg,
                                 int64_t prompt_len,
                                 int64_t in_flight_requests = 0,
                                 int64_t resident_kv_tokens = 0) const;

    /**
     * Seconds of one decode iteration over the in-flight batch;
     * kv_lens[i] is request i's current context (prompt + generated so
     * far). cfg.batch/prompt_len/gen_len are ignored — the batch is
     * whatever kv_lens says. Returns 0 for an empty batch.
     * @throws std::invalid_argument for unsupported systems.
     */
    double decodeIterationSeconds(const TimingConfig &cfg,
                                  const std::vector<int64_t> &kv_lens)
        const;

    /**
     * Build a reusable decode-iteration pricer bound to `cfg`: input
     * validation and the system's pure per-config/per-batch-size
     * derivations run once here instead of on every call, and
     * seconds() then returns bit-for-bit what decodeIterationSeconds
     * would. The serving fast path holds one per replica lane.
     * @throws std::invalid_argument for unsupported systems.
     */
    std::unique_ptr<DecodeEvaluator> makeDecodeEvaluator(
        const TimingConfig &cfg) const;

    /**
     * Build a reusable admission-time prefill pricer bound to `cfg`:
     * seconds() returns bit-for-bit what requestPrefillSeconds would,
     * with the per-call model construction hoisted to this one call.
     * The serving fast path holds one per replica lane.
     * @throws std::invalid_argument for unsupported systems.
     */
    std::unique_ptr<PrefillEvaluator> makePrefillEvaluator(
        const TimingConfig &cfg) const;

    /** Bytes of KV cache per token per layer per request at FP16
     *  (delegates to core::kvBytesPerTokenPerLayer). */
    static int64_t kvBytesPerTokenPerLayer(const model::ModelConfig &m);

    /** Weight + runtime-buffer bytes: 1.3x FP16 parameters (Eq. 6's
     *  coefficient; delegates to core::weightFootprintBytes). */
    static int64_t weightFootprintBytes(const model::ModelConfig &m);

    /** Memory-model inputs for `requests` concurrent requests of this
     *  config (delegates to cfg.system->memoryInputs()). */
    static sim::MemoryModelInputs memoryInputsFor(
        const TimingConfig &cfg, int64_t requests);
};

} // namespace core
} // namespace specontext
