/**
 * @file
 * Simulated end-to-end timing of every system the paper evaluates, at
 * paper-scale model geometry, on the analytical cost model and
 * two-stream timeline.
 *
 * Each SystemKind encodes one dataflow faithfully:
 *  - full-attention backends differ only in kernel efficiency and in
 *    the eager backend's materialized attention scratch (its OOM mode);
 *    when the KV cache outgrows the GPU they fall back to complete
 *    offloading (per-step full KV transfer), HF-Accelerate style;
 *  - Quest/ClusterKV/ShadowKV pay per-layer retrieval + sync on the
 *    critical path (Challenge-1) and attend budget + all newly
 *    generated tokens (Challenge-2, the KV they retain in full);
 *  - SpeContext runs the pruned retrieval head once per step, attends
 *    a fixed budget in every layer, prefetches KV diffs on the copy
 *    stream (C2), and drives placement with Algorithm 2 (C3). The
 *    three feature flags reproduce the paper's ablation (Fig. 11).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "model/config.h"
#include "sim/cost.h"
#include "sim/hardware.h"
#include "sim/memory_model.h"

namespace specontext {
namespace core {

/** Inference system being simulated. */
enum class SystemKind {
    HFEager,       ///< HuggingFace full attention, eager kernels
    FlashAttention,///< full attention, fused kernel
    FlashInfer,    ///< full attention, fused + batch-scheduled
    Quest,
    ClusterKV,
    ShadowKV,
    SpeContext,
};

const char *systemKindName(SystemKind s);

/** Ablation switches of SpeContext (paper Fig. 11). */
struct SpeContextFeatures
{
    bool retrieval_head = true; ///< C1: sparse attention via DLM head
    bool async_elastic = true;  ///< C2: async prefetch + elastic loading
    bool adaptive_memory = true;///< C3: Algorithm 1/2 placement
};

/** One simulated run. */
struct TimingConfig
{
    model::ModelConfig llm;     ///< geometry preset
    sim::HardwareSpec hw;
    SystemKind system = SystemKind::SpeContext;
    int64_t batch = 1;          ///< R
    int64_t prompt_len = 2048;  ///< input tokens per request
    int64_t gen_len = 2048;     ///< output tokens per request
    int64_t budget = 2048;      ///< B
    int64_t page_size = 16;     ///< Quest
    int64_t avg_cluster_size = 16; ///< ClusterKV
    int64_t cluster_iterations = 4;
    /**
     * Adjacent-step selection overlap used by elastic loading. The
     * default matches the >80 % the paper measures (Fig. 6(b)); benches
     * feed values measured from live runs.
     */
    double elastic_overlap = 0.85;
    SpeContextFeatures features;
    /**
     * Let full-attention systems spill KV to CPU DRAM when it does not
     * fit (HF-Accelerate style, per-step full-KV transfer). The paper
     * enables this in the edge evaluation (§7.3.2) but reports OOM for
     * full attention in the cloud tables, so it defaults off.
     */
    bool allow_full_attention_offload = false;
};

/** Simulated outcome. */
struct TimingResult
{
    bool oom = false;
    std::string oom_reason;
    double prefill_seconds = 0.0;
    double decode_seconds = 0.0;
    /** batch * gen_len / (prefill + decode). */
    double throughput = 0.0;
    /** batch * gen_len / decode only. */
    double decode_throughput = 0.0;
    /** seconds by component tag (attn, gemm, retrieval, transfer...). */
    std::map<std::string, double> breakdown;
    int64_t final_gpu_layers = 0; ///< KV layers resident at the end
};

/** Analytical simulator. */
class TimingEngine
{
  public:
    TimingResult simulate(const TimingConfig &cfg) const;

    /** Kernel backend a system builds on. */
    static sim::KernelBackend backendOf(SystemKind s);

    /** Bytes of KV cache per token per layer per request at FP16. */
    static int64_t kvBytesPerTokenPerLayer(const model::ModelConfig &m);

  private:
    TimingResult simulateFullAttention(const TimingConfig &cfg) const;
    TimingResult simulateLayerwiseBaseline(const TimingConfig &cfg) const;
    TimingResult simulateSpeContext(const TimingConfig &cfg) const;
};

} // namespace core
} // namespace specontext
