/**
 * @file
 * Simulated end-to-end timing of every system the paper evaluates, at
 * paper-scale model geometry, on the analytical cost model and
 * two-stream timeline.
 *
 * Each SystemKind encodes one dataflow faithfully:
 *  - full-attention backends differ only in kernel efficiency and in
 *    the eager backend's materialized attention scratch (its OOM mode);
 *    when the KV cache outgrows the GPU they fall back to complete
 *    offloading (per-step full KV transfer), HF-Accelerate style;
 *  - Quest/ClusterKV/ShadowKV pay per-layer retrieval + sync on the
 *    critical path (Challenge-1) and attend budget + all newly
 *    generated tokens (Challenge-2, the KV they retain in full);
 *  - SpeContext runs the pruned retrieval head once per step, attends
 *    a fixed budget in every layer, prefetches KV diffs on the copy
 *    stream (C2), and drives placement with Algorithm 2 (C3). The
 *    three feature flags reproduce the paper's ablation (Fig. 11).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/config.h"
#include "sim/cost.h"
#include "sim/hardware.h"
#include "sim/memory_model.h"

namespace specontext {
namespace core {

/** Inference system being simulated. */
enum class SystemKind {
    HFEager,       ///< HuggingFace full attention, eager kernels
    FlashAttention,///< full attention, fused kernel
    FlashInfer,    ///< full attention, fused + batch-scheduled
    Quest,
    ClusterKV,
    ShadowKV,
    SpeContext,
};

const char *systemKindName(SystemKind s);

/** Ablation switches of SpeContext (paper Fig. 11). */
struct SpeContextFeatures
{
    bool retrieval_head = true; ///< C1: sparse attention via DLM head
    bool async_elastic = true;  ///< C2: async prefetch + elastic loading
    bool adaptive_memory = true;///< C3: Algorithm 1/2 placement
};

/** One simulated run. */
struct TimingConfig
{
    model::ModelConfig llm;     ///< geometry preset
    sim::HardwareSpec hw;
    SystemKind system = SystemKind::SpeContext;
    int64_t batch = 1;          ///< R
    int64_t prompt_len = 2048;  ///< input tokens per request
    int64_t gen_len = 2048;     ///< output tokens per request
    int64_t budget = 2048;      ///< B
    int64_t page_size = 16;     ///< Quest
    int64_t avg_cluster_size = 16; ///< ClusterKV
    int64_t cluster_iterations = 4;
    /**
     * Adjacent-step selection overlap used by elastic loading. The
     * default matches the >80 % the paper measures (Fig. 6(b)); benches
     * feed values measured from live runs.
     */
    double elastic_overlap = 0.85;
    SpeContextFeatures features;
    /**
     * Let full-attention systems spill KV to CPU DRAM when it does not
     * fit (HF-Accelerate style, per-step full-KV transfer). The paper
     * enables this in the edge evaluation (§7.3.2) but reports OOM for
     * full attention in the cloud tables, so it defaults off.
     */
    bool allow_full_attention_offload = false;
};

/** Simulated outcome. */
struct TimingResult
{
    bool oom = false;
    std::string oom_reason;
    double prefill_seconds = 0.0;
    double decode_seconds = 0.0;
    /** batch * gen_len / (prefill + decode). */
    double throughput = 0.0;
    /** batch * gen_len / decode only. */
    double decode_throughput = 0.0;
    /** seconds by component tag (attn, gemm, retrieval, transfer...). */
    std::map<std::string, double> breakdown;
    int64_t final_gpu_layers = 0; ///< KV layers resident at the end
};

/** Analytical simulator. */
class TimingEngine
{
  public:
    TimingResult simulate(const TimingConfig &cfg) const;

    // ---- Incremental stepping (continuous batching) -----------------
    //
    // simulate() prices a whole closed [prompt, gen] run at once, which
    // forces wave barriers onto the serving layer. serving::Server
    // instead advances all in-flight requests one decode iteration at a
    // time, so the engine also exposes the two quanta it needs: the
    // cost of prefilling a single joining request, and the cost of one
    // decode iteration over a *heterogeneous* batch (each request at
    // its own KV length). Only full-attention systems and SpeContext
    // support this — the per-layer retrieve-then-load baselines
    // (Quest/ClusterKV/ShadowKV) are wave-scheduled in the paper and
    // keep that restriction here.

    /** True for systems the continuous batcher can drive. */
    static bool supportsContinuousBatching(SystemKind s);

    /**
     * Seconds to prefill one request of `prompt_len` tokens joining the
     * running batch (chunked prefill iteration; includes the retrieval
     * head's prompt pass for SpeContext, and the prompt-KV
     * eviction/spill transfers simulate() charges when the cache
     * oversubscribes HBM). `in_flight_requests` and
     * `resident_kv_tokens` describe the batch being joined — they
     * decide whether the new prompt's KV must move off-device.
     * @throws std::invalid_argument for unsupported systems.
     */
    double requestPrefillSeconds(const TimingConfig &cfg,
                                 int64_t prompt_len,
                                 int64_t in_flight_requests = 0,
                                 int64_t resident_kv_tokens = 0) const;

    /**
     * Seconds of one decode iteration over the in-flight batch;
     * kv_lens[i] is request i's current context (prompt + generated so
     * far). cfg.batch/prompt_len/gen_len are ignored — the batch is
     * whatever kv_lens says. Returns 0 for an empty batch.
     * @throws std::invalid_argument for unsupported systems.
     */
    double decodeIterationSeconds(const TimingConfig &cfg,
                                  const std::vector<int64_t> &kv_lens)
        const;

    /** Kernel backend a system builds on. */
    static sim::KernelBackend backendOf(SystemKind s);

    /** Bytes of KV cache per token per layer per request at FP16. */
    static int64_t kvBytesPerTokenPerLayer(const model::ModelConfig &m);

    /** Weight + runtime-buffer bytes: 1.3x FP16 parameters (Eq. 6's
     *  coefficient); the single copy of the rule shared with the
     *  serving layer's admission control. */
    static int64_t weightFootprintBytes(const model::ModelConfig &m);

    /** Memory-model inputs for `requests` concurrent requests of this
     *  config — the one place the {LLM, DLM, budget, GPU capacity}
     *  block is assembled, shared by the engine's placement logic and
     *  the serving layer's admission control. */
    static sim::MemoryModelInputs memoryInputsFor(
        const TimingConfig &cfg, int64_t requests);

  private:
    TimingResult simulateFullAttention(const TimingConfig &cfg) const;
    TimingResult simulateLayerwiseBaseline(const TimingConfig &cfg) const;
    TimingResult simulateSpeContext(const TimingConfig &cfg) const;

    /** SpeContext KV layers resident in CPU DRAM for `requests`
     *  uniform requests of length s, honoring features.adaptive_memory
     *  (static all-or-nothing placement when C3 is off). */
    int64_t spcCpuLayers(const TimingConfig &cfg, int64_t requests,
                         int64_t s) const;
};

} // namespace core
} // namespace specontext
