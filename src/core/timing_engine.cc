#include "core/timing_engine.h"

#include <algorithm>
#include <stdexcept>

namespace specontext {
namespace core {

namespace {

/** Shorthand for the shared runtime-buffer rule. */
int64_t
weightFootprint(const model::ModelConfig &m)
{
    return TimingEngine::weightFootprintBytes(m);
}

} // namespace

int64_t
TimingEngine::weightFootprintBytes(const model::ModelConfig &m)
{
    // 1.3x weight bytes (runtime buffer rule of Eq. 6).
    return static_cast<int64_t>(1.3 * m.parameterBytesFp16());
}

const char *
systemKindName(SystemKind s)
{
    switch (s) {
      case SystemKind::HFEager: return "FullAttn(Eager)";
      case SystemKind::FlashAttention: return "FullAttn(FlashAttn)";
      case SystemKind::FlashInfer: return "FullAttn(FlashInfer)";
      case SystemKind::Quest: return "Quest";
      case SystemKind::ClusterKV: return "ClusterKV";
      case SystemKind::ShadowKV: return "ShadowKV";
      case SystemKind::SpeContext: return "SpeContext";
    }
    return "?";
}

sim::KernelBackend
TimingEngine::backendOf(SystemKind s)
{
    switch (s) {
      case SystemKind::HFEager: return sim::KernelBackend::Eager;
      case SystemKind::FlashAttention:
        return sim::KernelBackend::FlashAttention;
      case SystemKind::FlashInfer: return sim::KernelBackend::FlashInfer;
      case SystemKind::Quest:
      case SystemKind::ClusterKV:
      case SystemKind::ShadowKV:
        return sim::KernelBackend::FlashAttention;
      case SystemKind::SpeContext:
        // SpeContext is built on the FlashInfer framework (§7.5.1).
        return sim::KernelBackend::FlashInfer;
    }
    return sim::KernelBackend::Eager;
}

int64_t
TimingEngine::kvBytesPerTokenPerLayer(const model::ModelConfig &m)
{
    return 2 * m.kvFloatsPerTokenPerLayer(); // FP16
}

sim::MemoryModelInputs
TimingEngine::memoryInputsFor(const TimingConfig &cfg, int64_t requests)
{
    sim::MemoryModelInputs mmin;
    mmin.llm = cfg.llm;
    mmin.dlm = model::dlmGeometryFor(cfg.llm);
    mmin.requests = requests;
    mmin.budget = cfg.budget;
    mmin.gpu_mem_bytes = cfg.hw.gpu_mem_bytes;
    return mmin;
}

int64_t
TimingEngine::spcCpuLayers(const TimingConfig &cfg, int64_t requests,
                           int64_t s) const
{
    // Per-call MemoryModel construction is two validate() calls plus a
    // geometry derivation — microseconds against the O(L) placement
    // scan it feeds, so the serving hot loop tolerates it.
    const sim::MemoryModel mm(memoryInputsFor(cfg, requests));
    if (!cfg.features.adaptive_memory) {
        // Static pre-inference decision (no C3): everything resident
        // when Eq. 6 fits at this shape, else full offload — the same
        // all-or-nothing rule simulateSpeContext applies.
        return mm.mAllBytesFor(requests, s) <= cfg.hw.gpu_mem_bytes
                   ? 0
                   : cfg.llm.layers;
    }
    const int64_t max_gpu = mm.maxGpuLayers(s);
    return max_gpu < 0 ? cfg.llm.layers : cfg.llm.layers - max_gpu;
}

bool
TimingEngine::supportsContinuousBatching(SystemKind s)
{
    switch (s) {
      case SystemKind::HFEager:
      case SystemKind::FlashAttention:
      case SystemKind::FlashInfer:
      case SystemKind::SpeContext:
        return true;
      case SystemKind::Quest:
      case SystemKind::ClusterKV:
      case SystemKind::ShadowKV:
        return false;
    }
    return false;
}

double
TimingEngine::requestPrefillSeconds(const TimingConfig &cfg,
                                    int64_t prompt_len,
                                    int64_t in_flight_requests,
                                    int64_t resident_kv_tokens) const
{
    cfg.llm.validate();
    if (!supportsContinuousBatching(cfg.system))
        throw std::invalid_argument(
            "requestPrefillSeconds: system is wave-scheduled only");
    if (prompt_len <= 0)
        throw std::invalid_argument(
            "requestPrefillSeconds: non-positive prompt");
    if (in_flight_requests < 0 || resident_kv_tokens < 0)
        throw std::invalid_argument(
            "requestPrefillSeconds: negative batch state");
    const sim::CostModel cost(cfg.hw, backendOf(cfg.system));
    const model::ModelConfig &m = cfg.llm;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    double t = cost.prefillSeconds(m, 1, prompt_len);

    if (cfg.system != SystemKind::SpeContext) {
        // Complete-offloading spill: when the batch's KV (including
        // the new prompt) no longer fits, the prompt's KV is evicted
        // right after prefill — same charge as simulateFullAttention.
        if (cfg.allow_full_attention_offload &&
            weightFootprint(m) +
                    (resident_kv_tokens + prompt_len) * kvb * m.layers >
                cfg.hw.gpu_mem_bytes) {
            t += cost.pcieSeconds(prompt_len * kvb * m.layers);
        }
        return t;
    }

    // Retrieval head builds its K cache over the joining prompt
    // (one fused QK-projection GEMM, as in simulateSpeContext).
    const int64_t q_dim = m.q_heads * m.head_dim;
    const int64_t kv_dim = m.attention == model::AttentionKind::MLA
                               ? m.mla_latent_dim
                               : m.kv_heads * m.head_dim;
    t += cost.gemmSeconds(prompt_len, q_dim + kv_dim, m.hidden);

    // Prompt-KV eviction for the layers the placement keeps in CPU
    // DRAM at the *joined batch's* shape: Eq. 7 prices uniform-length
    // requests, so the heterogeneous batch is uniformized to its mean
    // resident length (total KV conserved) — a short prompt joining an
    // oversubscribed batch still pays its eviction. Overlap with
    // prefill compute follows simulateSpeContext's exposure rule.
    const int64_t r_joined = in_flight_requests + 1;
    const int64_t s_uniform = std::max(
        prompt_len, (resident_kv_tokens + prompt_len) / r_joined);
    const int64_t l_cpu = spcCpuLayers(cfg, r_joined, s_uniform);
    if (l_cpu > 0) {
        const double evict =
            cost.pcieSeconds(prompt_len * kvb * l_cpu);
        const double exposed = cfg.features.async_elastic ? 0.2 : 1.0;
        t += exposed * evict;
    }
    return t;
}

double
TimingEngine::decodeIterationSeconds(
    const TimingConfig &cfg, const std::vector<int64_t> &kv_lens) const
{
    cfg.llm.validate();
    if (!supportsContinuousBatching(cfg.system))
        throw std::invalid_argument(
            "decodeIterationSeconds: system is wave-scheduled only");
    if (kv_lens.empty())
        return 0.0;
    const sim::CostModel cost(cfg.hw, backendOf(cfg.system));
    const model::ModelConfig &m = cfg.llm;
    const int64_t R = static_cast<int64_t>(kv_lens.size());

    // Batch-wide GEMMs, launches, LM head and the weight-streaming
    // floor come from the uniform-step breakdown at kv_len == 0; the
    // attention term is added per request below. attentionDecodeSeconds
    // is linear in batch * kv_len (max of two linear-in-bytes terms),
    // so summing per-request costs equals one call at the total length.
    const sim::DecodeBreakdown base = cost.decodeStepBreakdown(m, R, 0);

    int64_t attended_total = 0;
    int64_t s_max = 0;
    for (int64_t s : kv_lens) {
        if (s <= 0)
            throw std::invalid_argument(
                "decodeIterationSeconds: non-positive KV length");
        attended_total += cfg.system == SystemKind::SpeContext
                              ? std::min<int64_t>(cfg.budget, s)
                              : s;
        s_max = std::max(s_max, s);
    }
    const double attn =
        m.layers *
        cost.attentionDecodeSeconds(
            1, m.q_heads,
            m.attention == model::AttentionKind::MLA ? m.q_heads
                                                     : m.kv_heads,
            m.head_dim, attended_total);

    const double weight_stream =
        double(m.parameterBytesFp16()) / (cfg.hw.hbm_bw_gbps * 1e9);
    const double step_compute =
        std::max(base.gemm + base.launch + base.lm_head + attn,
                 weight_stream);
    const int64_t kvb = kvBytesPerTokenPerLayer(m);

    if (cfg.system != SystemKind::SpeContext) {
        double extra = 0.0;
        if (cfg.allow_full_attention_offload) {
            // Complete-offloading spill (HF-Accelerate style): once
            // the live KV outgrows HBM the whole cache crosses PCIe
            // each iteration, serialized with compute — same rule as
            // simulateFullAttention.
            const int64_t kv_bytes = attended_total * kvb * m.layers;
            if (weightFootprint(m) + kv_bytes > cfg.hw.gpu_mem_bytes)
                extra = cost.pcieSeconds(kv_bytes);
        }
        return step_compute + extra;
    }

    // SpeContext: retrieval head once per iteration over the whole
    // batch (scoring scans each request's context, bounded by the
    // longest in-flight one), then the offloaded-layer KV movement of
    // simulateSpeContext — Eq. 8 placement at the current batch shape
    // decides how many layers live in CPU DRAM.
    const int64_t q_dim = m.q_heads * m.head_dim;
    const int64_t kv_dim = m.attention == model::AttentionKind::MLA
                               ? m.mla_latent_dim
                               : m.kv_heads * m.head_dim;
    const double head =
        cost.gemmSeconds(R, q_dim + kv_dim, m.hidden) +
        cost.retrievalSeconds(2.0 * R * m.q_heads * m.head_dim * s_max,
                              s_max);

    const int64_t l_cpu = spcCpuLayers(cfg, R, s_max);

    if (cfg.features.async_elastic) {
        // C2: prefetch the selection diff on the copy stream; only the
        // excess beyond compute is exposed, plus one event sync.
        const double reuse = std::clamp(cfg.elastic_overlap, 0.0, 1.0);
        const int64_t diff_tokens = static_cast<int64_t>(
            (1.0 - reuse) * static_cast<double>(attended_total));
        const double xfer =
            l_cpu > 0 ? cost.pcieSeconds(diff_tokens * kvb * l_cpu)
                      : 0.0;
        return step_compute + head +
               std::max(0.0, xfer - step_compute) + cost.syncSeconds();
    }
    // C1 only: synchronous full-budget load per offloaded layer.
    const double sync_xfer =
        l_cpu > 0 ? l_cpu * cost.pcieSeconds(attended_total * kvb)
                  : 0.0;
    return step_compute + head + sync_xfer;
}

TimingResult
TimingEngine::simulate(const TimingConfig &cfg) const
{
    cfg.llm.validate();
    switch (cfg.system) {
      case SystemKind::HFEager:
      case SystemKind::FlashAttention:
      case SystemKind::FlashInfer:
        return simulateFullAttention(cfg);
      case SystemKind::Quest:
      case SystemKind::ClusterKV:
      case SystemKind::ShadowKV:
        return simulateLayerwiseBaseline(cfg);
      case SystemKind::SpeContext:
        return simulateSpeContext(cfg);
    }
    throw std::logic_error("unknown system kind");
}

TimingResult
TimingEngine::simulateFullAttention(const TimingConfig &cfg) const
{
    TimingResult r;
    const sim::CostModel cost(cfg.hw, backendOf(cfg.system));
    const model::ModelConfig &m = cfg.llm;
    const int64_t R = cfg.batch;
    const int64_t s_final = cfg.prompt_len + cfg.gen_len;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    const int64_t weights = weightFootprint(m);

    // Eager materializes the (S x S) attention matrix per head during
    // prefill — its distinctive OOM mode (Table 3's OOM cells).
    int64_t scratch = 0;
    if (cfg.system == SystemKind::HFEager) {
        scratch = 2 * R * m.q_heads * cfg.prompt_len * cfg.prompt_len;
    }
    if (weights + scratch > cfg.hw.gpu_mem_bytes) {
        r.oom = true;
        r.oom_reason = "prefill attention scratch exceeds GPU memory";
        return r;
    }

    const int64_t kv_total = R * s_final * kvb * m.layers;
    const bool offload = weights + scratch + kv_total >
                         cfg.hw.gpu_mem_bytes;
    if (offload && !cfg.allow_full_attention_offload) {
        r.oom = true;
        r.oom_reason = "KV cache exceeds GPU memory (no offload)";
        return r;
    }
    if (offload && kv_total > cfg.hw.cpu_mem_bytes) {
        r.oom = true;
        r.oom_reason = "KV cache exceeds CPU memory";
        return r;
    }

    r.prefill_seconds = cost.prefillSeconds(m, R, cfg.prompt_len);
    if (offload) {
        // Initial KV eviction of the prompt.
        r.prefill_seconds +=
            cost.pcieSeconds(R * cfg.prompt_len * kvb * m.layers);
    }

    for (int64_t t = 0; t < cfg.gen_len; ++t) {
        const int64_t s = cfg.prompt_len + t;
        const sim::DecodeBreakdown b = cost.decodeStepBreakdown(m, R, s);
        double dt = b.total;
        r.breakdown["attn"] += b.attn;
        r.breakdown["gemm"] += b.gemm + b.lm_head;
        r.breakdown["launch"] += b.launch;
        if (offload) {
            // Complete offloading: the entire KV cache crosses PCIe
            // every step, layer by layer, serialized with compute.
            const double xfer =
                cost.pcieSeconds(R * s * kvb * m.layers);
            r.breakdown["transfer"] += xfer;
            dt += xfer;
        }
        r.decode_seconds += dt;
    }

    const double total = r.prefill_seconds + r.decode_seconds;
    r.throughput = R * cfg.gen_len / total;
    r.decode_throughput = R * cfg.gen_len / r.decode_seconds;
    r.final_gpu_layers = offload ? 0 : m.layers;
    return r;
}

TimingResult
TimingEngine::simulateLayerwiseBaseline(const TimingConfig &cfg) const
{
    TimingResult r;
    const sim::CostModel cost(cfg.hw, backendOf(cfg.system));
    const model::ModelConfig &m = cfg.llm;
    const int64_t R = cfg.batch;
    const int64_t s_final = cfg.prompt_len + cfg.gen_len;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    const int64_t weights = weightFootprint(m);

    // Quest and ClusterKV only support a single request (§7.3.1).
    if (cfg.system != SystemKind::ShadowKV && R > 1) {
        r.oom = true;
        r.oom_reason = "single-request system";
        return r;
    }

    const int64_t kv_total = R * s_final * kvb * m.layers;
    if (cfg.system == SystemKind::ShadowKV) {
        // ShadowKV keeps quantized K (~K/4) + new KV + staging on GPU,
        // full V (and K landmarks) in CPU DRAM.
        const int64_t gpu_kv =
            R * (cfg.prompt_len * kvb / 8 +
                 (cfg.gen_len + cfg.budget) * kvb) *
            m.layers;
        if (weights + gpu_kv > cfg.hw.gpu_mem_bytes) {
            r.oom = true;
            r.oom_reason = "quantized K + retained KV exceed GPU memory";
            return r;
        }
        if (kv_total > cfg.hw.cpu_mem_bytes) {
            r.oom = true;
            r.oom_reason = "offloaded KV exceeds CPU memory";
            return r;
        }
    } else if (weights + kv_total > cfg.hw.gpu_mem_bytes) {
        r.oom = true;
        r.oom_reason = "full KV cache exceeds GPU memory (no offload)";
        return r;
    }

    // --- Prefill + preprocessing (§3.1) ------------------------------
    r.prefill_seconds = cost.prefillSeconds(m, R, cfg.prompt_len);
    const double tflops = cfg.hw.gpu_tflops_fp16 * 1e12 *
                          sim::BackendEfficiency::of(backendOf(cfg.system))
                              .gemm;
    double preprocess_flops = 0.0;
    switch (cfg.system) {
      case SystemKind::Quest:
        // One min/max pass over the prompt keys.
        preprocess_flops = 2.0 * R * m.layers * m.kv_heads *
                           cfg.prompt_len * m.head_dim;
        break;
      case SystemKind::ClusterKV: {
        const double k = double(cfg.prompt_len) / cfg.avg_cluster_size;
        preprocess_flops = 3.0 * cfg.cluster_iterations * R * m.layers *
                           m.kv_heads * cfg.prompt_len * k * m.head_dim;
        break;
      }
      case SystemKind::ShadowKV:
        // Quantization pass + SVD-style landmark factorization.
        preprocess_flops = 8.0 * R * m.layers * m.kv_heads *
                           cfg.prompt_len * m.head_dim;
        break;
      default:
        break;
    }
    const double preprocess = preprocess_flops / tflops;
    r.prefill_seconds += preprocess;
    r.breakdown["preprocess"] += preprocess;
    if (cfg.system == SystemKind::ShadowKV) {
        // Prompt V moves to CPU after prefill.
        r.prefill_seconds +=
            cost.pcieSeconds(R * cfg.prompt_len * (kvb / 2) * m.layers);
    }

    // --- Decode: per-layer retrieve-then-load, serialized ------------
    for (int64_t t = 0; t < cfg.gen_len; ++t) {
        // Challenge-2: only the prompt is preprocessed, every generated
        // token's KV is retained, so attention reads budget + t tokens.
        const int64_t attended =
            std::min<int64_t>(cfg.budget + t, cfg.prompt_len + t);
        const sim::DecodeBreakdown b =
            cost.decodeStepBreakdown(m, R, attended);
        double dt = b.total;
        r.breakdown["attn"] += b.attn;
        r.breakdown["gemm"] += b.gemm + b.lm_head;
        r.breakdown["launch"] += b.launch;

        double score_flops = 0.0;
        int64_t candidates = 0;
        switch (cfg.system) {
          case SystemKind::Quest:
            candidates = cfg.prompt_len / cfg.page_size;
            score_flops = 2.0 * R * m.q_heads * m.head_dim * candidates;
            break;
          case SystemKind::ClusterKV:
            candidates = cfg.prompt_len / cfg.avg_cluster_size;
            score_flops = 2.0 * R * m.q_heads * m.head_dim * candidates;
            break;
          case SystemKind::ShadowKV:
            candidates = cfg.prompt_len;
            // int4 keys: ~half the effective scoring cost.
            score_flops =
                1.0 * R * m.q_heads * m.head_dim * candidates;
            break;
          default:
            break;
        }
        // Challenge-1: retrieval + gather + sync repeated per layer on
        // the critical path.
        const double retr = m.layers * (cost.retrievalSeconds(
                                            score_flops, candidates) +
                                        cost.syncSeconds());
        r.breakdown["retrieval"] += retr;
        dt += retr;

        if (cfg.system == SystemKind::ShadowKV) {
            // Per-layer V fetch from CPU; partially overlapped with the
            // next layer's compute (Fig. 7(d)) — 35 % stays exposed —
            // plus the K reconstruction GEMM.
            const double vfetch =
                cost.pcieSeconds(R * cfg.budget * (kvb / 2));
            const double krecons = cost.gemmSeconds(
                R * cfg.budget, m.kv_heads * m.head_dim, 64);
            r.breakdown["transfer"] += m.layers * 0.35 * vfetch;
            r.breakdown["krecons"] += m.layers * krecons;
            dt += m.layers * (0.35 * vfetch + krecons);
        }
        r.decode_seconds += dt;
    }

    const double total = r.prefill_seconds + r.decode_seconds;
    r.throughput = R * cfg.gen_len / total;
    r.decode_throughput = R * cfg.gen_len / r.decode_seconds;
    r.final_gpu_layers = m.layers;
    return r;
}

TimingResult
TimingEngine::simulateSpeContext(const TimingConfig &cfg) const
{
    TimingResult r;
    const sim::CostModel cost(cfg.hw, backendOf(cfg.system));
    const model::ModelConfig &m = cfg.llm;
    const int64_t R = cfg.batch;
    const int64_t s_final = cfg.prompt_len + cfg.gen_len;
    const int64_t kvb = kvBytesPerTokenPerLayer(m);
    const int64_t q_dim = m.q_heads * m.head_dim;
    const int64_t kv_dim = m.attention == model::AttentionKind::MLA
                               ? m.mla_latent_dim
                               : m.kv_heads * m.head_dim;

    const sim::MemoryModel mm(memoryInputsFor(cfg, R));

    if (R * s_final * kvb * m.layers > cfg.hw.cpu_mem_bytes) {
        r.oom = true;
        r.oom_reason = "KV cache exceeds CPU memory";
        return r;
    }
    if (mm.maxGpuLayers(s_final) < 0) {
        r.oom = true;
        r.oom_reason = "weights + staging buffers exceed GPU memory";
        return r;
    }

    // Placement: static decision before inference (no C3) or
    // threshold-driven adaptive (C3, Algorithm 2).
    const std::vector<int64_t> th = mm.thresholds();
    int64_t l_cpu_static = 0;
    if (!cfg.features.adaptive_memory)
        l_cpu_static = mm.allFitsOnGpu(s_final) ? 0 : m.layers;

    auto cpuLayersAt = [&](int64_t s) -> int64_t {
        if (!cfg.features.adaptive_memory)
            return l_cpu_static;
        int64_t l_cpu = 0;
        while (l_cpu < m.layers && s >= th[l_cpu])
            ++l_cpu;
        return l_cpu;
    };

    // --- Prefill ------------------------------------------------------
    r.prefill_seconds = cost.prefillSeconds(m, R, cfg.prompt_len);
    // Retrieval head builds its K cache over the prompt: one fused
    // QK-projection GEMM over all prompt tokens.
    const double head_prefill = cost.gemmSeconds(
        R * cfg.prompt_len, q_dim + kv_dim, m.hidden);
    r.prefill_seconds += head_prefill;
    r.breakdown["head"] += head_prefill;
    int64_t l_cpu = cpuLayersAt(cfg.prompt_len);
    if (l_cpu > 0) {
        const double evict = cost.pcieSeconds(
            R * cfg.prompt_len * kvb * l_cpu);
        // Prompt KV eviction overlaps with prefill compute when the
        // async dataflow exists.
        const double exposed = cfg.features.async_elastic ? 0.2 : 1.0;
        r.prefill_seconds += exposed * evict;
        r.breakdown["offload"] += exposed * evict;
    }

    // --- Decode -------------------------------------------------------
    const double reuse = cfg.features.async_elastic
                             ? std::clamp(cfg.elastic_overlap, 0.0, 1.0)
                             : 0.0;
    for (int64_t t = 0; t < cfg.gen_len; ++t) {
        const int64_t s = cfg.prompt_len + t;

        // C3: progressive layer offload when thresholds are crossed.
        const int64_t l_cpu_now = cpuLayersAt(s);
        double dt = 0.0;
        if (l_cpu_now > l_cpu) {
            for (int64_t i = l_cpu; i < l_cpu_now; ++i) {
                const double evict = cost.pcieSeconds(R * s * kvb);
                const double exposed =
                    cfg.features.async_elastic ? 0.3 : 1.0;
                dt += exposed * evict;
                r.breakdown["offload"] += exposed * evict;
            }
            l_cpu = l_cpu_now;
        }

        // Retrieval head: once per step, before the LLM (not per layer).
        const int64_t b_eff = std::min<int64_t>(cfg.budget, s);
        const double head =
            cost.gemmSeconds(R, q_dim + kv_dim, m.hidden) +
            cost.retrievalSeconds(
                2.0 * R * m.q_heads * m.head_dim * s, s);
        r.breakdown["head"] += head;

        const sim::DecodeBreakdown b =
            cost.decodeStepBreakdown(m, R, b_eff);
        r.breakdown["attn"] += b.attn;
        r.breakdown["gemm"] += b.gemm + b.lm_head;
        r.breakdown["launch"] += b.launch;

        const int64_t diff_tokens = static_cast<int64_t>(
            (1.0 - reuse) * static_cast<double>(b_eff));
        const double xfer =
            l_cpu > 0 ? cost.pcieSeconds(R * diff_tokens * kvb * l_cpu)
                      : 0.0;
        if (cfg.features.async_elastic) {
            // C2: prefetch on the copy stream; only the excess beyond
            // compute is exposed, plus one event sync.
            const double exposed =
                std::max(0.0, xfer - b.total) + cost.syncSeconds();
            r.breakdown["transfer"] += exposed;
            dt += head + b.total + exposed;
        } else {
            // C1 only: synchronous full-budget load per offloaded layer.
            const double sync_xfer =
                l_cpu > 0
                    ? l_cpu * cost.pcieSeconds(R * b_eff * kvb)
                    : 0.0;
            r.breakdown["transfer"] += sync_xfer;
            dt += head + b.total + sync_xfer;
        }
        r.decode_seconds += dt;
    }

    const double total = r.prefill_seconds + r.decode_seconds;
    r.throughput = R * cfg.gen_len / total;
    r.decode_throughput = R * cfg.gen_len / r.decode_seconds;
    r.final_gpu_layers = m.layers - l_cpu;
    return r;
}

} // namespace core
} // namespace specontext
