#include "core/timing_engine.h"

#include <stdexcept>

namespace specontext {
namespace core {

namespace {

const SystemModel &
requireSystem(const TimingConfig &cfg)
{
    if (!cfg.system)
        throw std::invalid_argument(
            "TimingConfig.system is null - construct one with "
            "SystemRegistry::create()");
    return *cfg.system;
}

} // namespace

int64_t
TimingEngine::kvBytesPerTokenPerLayer(const model::ModelConfig &m)
{
    return core::kvBytesPerTokenPerLayer(m);
}

int64_t
TimingEngine::weightFootprintBytes(const model::ModelConfig &m)
{
    return core::weightFootprintBytes(m);
}

sim::MemoryModelInputs
TimingEngine::memoryInputsFor(const TimingConfig &cfg, int64_t requests)
{
    return requireSystem(cfg).memoryInputs(cfg, requests);
}

TimingResult
TimingEngine::simulate(const TimingConfig &cfg) const
{
    cfg.llm.validate();
    const SystemModel &sys = requireSystem(cfg);
    if (cfg.batch > sys.maxSimulatedBatch()) {
        // The one enforcement point of the capability — systems
        // declare their cap, the façade refuses past it.
        TimingResult r;
        r.oom = true;
        r.oom_reason = sys.maxSimulatedBatch() == 1
                           ? "single-request system"
                           : "batch exceeds the system's supported "
                             "maximum";
        return r;
    }
    return sys.simulate(cfg);
}

double
TimingEngine::requestPrefillSeconds(const TimingConfig &cfg,
                                    int64_t prompt_len,
                                    int64_t in_flight_requests,
                                    int64_t resident_kv_tokens) const
{
    cfg.llm.validate();
    const SystemModel &sys = requireSystem(cfg);
    if (!sys.supportsContinuousBatching())
        throw std::invalid_argument(
            "requestPrefillSeconds: system is wave-scheduled only");
    if (prompt_len <= 0)
        throw std::invalid_argument(
            "requestPrefillSeconds: non-positive prompt");
    if (in_flight_requests < 0 || resident_kv_tokens < 0)
        throw std::invalid_argument(
            "requestPrefillSeconds: negative batch state");
    return sys.requestPrefillSeconds(cfg, prompt_len, in_flight_requests,
                                     resident_kv_tokens);
}

double
TimingEngine::decodeIterationSeconds(
    const TimingConfig &cfg, const std::vector<int64_t> &kv_lens) const
{
    cfg.llm.validate();
    const SystemModel &sys = requireSystem(cfg);
    if (!sys.supportsContinuousBatching())
        throw std::invalid_argument(
            "decodeIterationSeconds: system is wave-scheduled only");
    return sys.decodeIterationSeconds(cfg, kv_lens);
}

std::unique_ptr<DecodeEvaluator>
TimingEngine::makeDecodeEvaluator(const TimingConfig &cfg) const
{
    cfg.llm.validate();
    const SystemModel &sys = requireSystem(cfg);
    if (!sys.supportsContinuousBatching())
        throw std::invalid_argument(
            "makeDecodeEvaluator: system is wave-scheduled only");
    return sys.makeDecodeEvaluator(cfg);
}

std::unique_ptr<PrefillEvaluator>
TimingEngine::makePrefillEvaluator(const TimingConfig &cfg) const
{
    cfg.llm.validate();
    const SystemModel &sys = requireSystem(cfg);
    if (!sys.supportsContinuousBatching())
        throw std::invalid_argument(
            "makePrefillEvaluator: system is wave-scheduled only");
    return sys.makePrefillEvaluator(cfg);
}

} // namespace core
} // namespace specontext
