/**
 * @file
 * Adaptive memory management (paper Section 6.2, Algorithm 2).
 *
 * At compilation time the sequence-length thresholds S_T[0..L] are
 * derived from the theoretical model (Algorithm 1, sim::MemoryModel).
 * During inference, whenever the sequence length crosses S_T[L_CPU],
 * the KV cache of the deepest still-resident layer is offloaded to CPU
 * DRAM, keeping GPU utilization maximal as the reasoning chain grows.
 *
 * Static policies (all-GPU / all-CPU, decided before inference as in
 * prior work) are provided for the offload-cliff experiment (Fig. 2(a)
 * challenge ③).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "kvcache/tiered.h"
#include "sim/memory_model.h"

namespace specontext {
namespace core {

/** KV placement policy. */
enum class OffloadPolicy {
    AllGpu,   ///< static: everything resident (OOM beyond capacity)
    AllCpu,   ///< static: everything offloaded from the start
    Adaptive, ///< paper Algorithm 2: threshold-driven progressive offload
};

const char *offloadPolicyName(OffloadPolicy p);

/** Runtime driver of Algorithm 2 over a TierPlacement. */
class AdaptiveMemoryManager
{
  public:
    AdaptiveMemoryManager(const sim::MemoryModel &mm, OffloadPolicy policy);

    OffloadPolicy policy() const { return policy_; }
    const std::vector<int64_t> &thresholds() const { return thresholds_; }

    /**
     * Inform the manager of the current sequence length (Alg. 2 lines
     * 4-7). Returns the indices of layers offloaded *by this call*, in
     * offload order, so the caller can charge the transfers. For
     * static policies the placement is fixed at the first call and the
     * return is the initial offload set (AllCpu) or empty (AllGpu).
     *
     * @retval layers offloaded now (possibly empty)
     */
    std::vector<int64_t> onSequenceLength(int64_t s,
                                          kv::TierPlacement &placement);

    /**
     * Whether the AllGpu static policy overflows GPU memory at length
     * s (an OOM for real systems; the cliff bench uses it).
     */
    bool allGpuOverflows(int64_t s) const;

  private:
    sim::MemoryModel mm_;
    OffloadPolicy policy_;
    std::vector<int64_t> thresholds_;
    bool initialized_ = false;
};

} // namespace core
} // namespace specontext
