/**
 * @file
 * Waiting-request queue of the continuous-batching server with
 * pluggable ordering policies.
 *
 * FIFO admits in arrival order and is starvation-free: the head blocks
 * until it fits, so every feasible request is eventually admitted.
 * Shortest-prompt-first favours small KV footprints — it raises
 * utilization under mixed-length traffic but can starve long prompts
 * under sustained load, which tests/test_server.cc demonstrates is the
 * FIFO/SPF trade-off.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serving/request.h"

namespace specontext {
namespace serving {

/** Ordering policy of the waiting queue. */
enum class QueuePolicy {
    Fifo,                ///< arrival order (starvation-free)
    /** Min prompt_len; ties break on arrival time, then request id (a
     *  total order, so runs are bit-reproducible). */
    ShortestPromptFirst,
};

const char *queuePolicyName(QueuePolicy p);

/** Waiting requests, ordered for admission by the policy. */
class RequestQueue
{
  public:
    explicit RequestQueue(QueuePolicy policy = QueuePolicy::Fifo);

    QueuePolicy policy() const { return policy_; }
    bool empty() const { return head_ == waiting_.size(); }
    int64_t size() const
    {
        return static_cast<int64_t>(waiting_.size() - head_);
    }

    void push(Request r);

    /** Next admission candidate under the policy. Queue must be
     *  non-empty. */
    const Request &peek() const;

    /** Remove and return the admission candidate. */
    Request pop();

  private:
    QueuePolicy policy_;
    /** Insertion (arrival) order; live entries are [head_, end).
     *  A FIFO pop just advances head_ — the hot admission path on a
     *  backlogged replica used to erase() the front, which is O(queue)
     *  per admitted request. Drained slots before head_ are compacted
     *  away once they dominate the vector. */
    std::vector<Request> waiting_;
    size_t head_ = 0;

    /** Absolute index (>= head_) of the policy's candidate. */
    size_t candidateIndex() const;
    /** Drop the dead prefix when empty or when it outgrows the live
     *  tail; content and order of live entries are untouched. */
    void maybeCompact();
};

} // namespace serving
} // namespace specontext
