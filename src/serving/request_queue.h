/**
 * @file
 * Waiting-request queue of the continuous-batching server with
 * pluggable ordering policies.
 *
 * FIFO admits in arrival order and is starvation-free: the head blocks
 * until it fits, so every feasible request is eventually admitted.
 * Shortest-prompt-first favours small KV footprints — it raises
 * utilization under mixed-length traffic but can starve long prompts
 * under sustained load, which tests/test_server.cc demonstrates is the
 * FIFO/SPF trade-off.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "serving/request.h"

namespace specontext {
namespace serving {

/** Ordering policy of the waiting queue. */
enum class QueuePolicy {
    Fifo,                ///< arrival order (starvation-free)
    /** Min prompt_len; ties break on arrival time, then request id (a
     *  total order, so runs are bit-reproducible). */
    ShortestPromptFirst,
};

const char *queuePolicyName(QueuePolicy p);

/** Waiting requests, ordered for admission by the policy. */
class RequestQueue
{
  public:
    explicit RequestQueue(QueuePolicy policy = QueuePolicy::Fifo);

    QueuePolicy policy() const { return policy_; }
    bool empty() const { return waiting_.empty(); }
    int64_t size() const { return static_cast<int64_t>(waiting_.size()); }

    void push(Request r);

    /** Next admission candidate under the policy. Queue must be
     *  non-empty. */
    const Request &peek() const;

    /** Remove and return the admission candidate. */
    Request pop();

  private:
    QueuePolicy policy_;
    std::vector<Request> waiting_; ///< insertion (arrival) order

    /** Index of the policy's candidate in waiting_. */
    int64_t candidateIndex() const;
};

} // namespace serving
} // namespace specontext
