/**
 * @file
 * Multi-replica cluster serving: N ReplicaEngines — each with its own
 * hardware, model geometry and SystemModel (heterogeneous fleets of
 * cloud A800 and edge RTX 4060 replicas are first-class) — fed by a
 * pluggable Router, advanced by an event-driven clock.
 *
 * The global clock is not lock-stepped: a sim::EventClock books every
 * replica's next-event instant plus the next unrouted arrival, and
 * each round advances only the earliest of them (ties toward the
 * lowest replica index, arrivals before replica steps at equal
 * instants — both deterministic). Arrivals are routed when the fleet's
 * earliest event passes them, so routing decisions see every replica
 * at a state no older than the arrival; routed requests wait in the
 * target replica's pending list until its local clock reaches their
 * arrival time, preserving per-replica causality however far clocks
 * drift apart.
 *
 * This is the machinery behind the repo's central capacity question:
 * how many replicas of which hardware does a given open-loop load
 * need to hold a p99 TTFT target? (bench/bench_cluster_scaling.cc,
 * examples/fleet_sizing.cpp)
 *
 * Fleets can also be *elastic*: plug a FleetController into
 * ClusterConfig::elastic and the cluster evaluates it at a fixed
 * simulated-time cadence (a third event stream next to arrivals and
 * replica events). Scale-up attaches a fresh replica slot — new
 * sim::EventClock lane, cold kv::PrefixTree — that warms up for
 * replicaWarmupSeconds() (weight load over PCIe priced through a cold
 * core::ElasticLoader) before it joins the routable set; scale-down
 * cancels warming replicas first, then drains live ones
 * (drain-before-retire: a draining replica finishes everything it
 * owes, receives no new work, then its lane retires). Retired slots
 * keep their indices, so placements and tie-breaks never shift under
 * scaling; with no controller the code path is bit-for-bit the fixed
 * fleet. (src/autoscale/ builds SLO-driven controllers on this hook;
 * bench/bench_autoscale.cc scores them on cost-normalized goodput.)
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serving/fast_path.h"
#include "serving/replica_engine.h"
#include "serving/router.h"

namespace specontext {
namespace serving {

/**
 * What a FleetController sees at each control tick: replica counts by
 * lifecycle state, the fleet-wide backlog, and the scaling bounds.
 * Deeper signals (p99 TTFT, live KV bytes, queue-depth histories) are
 * read from the obs::CounterRegistry / obs::TimeseriesSampler the
 * cluster publishes into — the controller polls gauges, the cluster
 * hands it the shape of the fleet.
 */
struct FleetState
{
    double now_seconds = 0.0;
    size_t live = 0;     ///< routable replicas
    size_t warming = 0;  ///< attached, still loading weights
    size_t draining = 0; ///< finishing owed work, not routable
    size_t min_replicas = 1;
    size_t max_replicas = 1;
    /** Requests delivered to live/draining replicas, not yet admitted. */
    int64_t queued = 0;
    /** Requests currently in a replica's running batch. */
    int64_t in_flight = 0;
};

/**
 * Scaling hook evaluated once per control tick. Implementations live
 * above serving (src/autoscale/); the cluster only consumes the
 * decision. Stateful controllers are fine — ticks arrive in strictly
 * increasing simulated time within one run(), but a controller is NOT
 * reset between runs, so reuse one instance per run for bit
 * reproducibility.
 */
class FleetController
{
  public:
    virtual ~FleetController() = default;

    /**
     * Desired replica-count delta at this tick: positive attaches that
     * many cold replicas, negative retires (cancel-warming first, then
     * drain), zero holds. The cluster clamps the result so live +
     * warming stays within [min_replicas, max_replicas].
     */
    virtual int control(const FleetState &state) = 0;
};

/** Elastic-fleet knobs; inert (fixed fleet) while controller is null. */
struct ElasticConfig
{
    /** Caller-owned; must outlive run(). Null = fixed fleet. */
    FleetController *controller = nullptr;
    /** Bounds on live + warming replicas. The initial fleet
     *  (ClusterConfig::replicas) must start inside them. */
    size_t min_replicas = 1;
    size_t max_replicas = 8;
    /** Simulated seconds between controller evaluations. */
    double control_period_seconds = 5.0;
    /** Fixed instance-provisioning latency added before the weight
     *  load of every scale-up (control plane, container pull, ...). */
    double provision_seconds = 0.0;
    /** Index into ClusterConfig::replicas whose shape scale-ups
     *  clone (fresh id/name, cold caches). */
    size_t template_replica = 0;
};

/** Fleet configuration: replica shapes plus the routing policy. */
struct ClusterConfig
{
    std::vector<ReplicaConfig> replicas;
    RouterConfig router;
    /** Fleet-wide observability (trace / counters / sampler). When any
     *  hook is set it is propagated to every replica, the router and
     *  the event clock at run(); all-null (the default) is bit-for-bit
     *  the unobserved cluster. Pointers are caller-owned and must
     *  outlive run(). */
    obs::Observability obs;
    /** Elastic scaling; default (null controller) is the fixed fleet. */
    ElasticConfig elastic;
    /** Simulator speed knobs: skip-ahead stepping (default on) and
     *  parallel replica lanes (threads > 1, unobserved runs only).
     *  Simulated results are bit-identical at every setting. */
    SimFastPath fast_path;
};

/**
 * Simulated seconds to bring a cold replica of shape `rc` live:
 * `provision_seconds` of instance provisioning plus the model's weight
 * footprint (1.3x FP16 parameters, core::TimingEngine::
 * weightFootprintBytes) crossing PCIe at rc's link speed. The
 * transfer volume is charged through a cold core::ElasticLoader — a
 * loader with empty resident sets reports the *full* selection as
 * to-load, the same diff machinery that prices elastic KV movement —
 * so scale-up is never free and stays consistent with the paper's
 * Section 5.4 loading model.
 * @throws std::invalid_argument on a non-positive PCIe bandwidth or a
 * negative/non-finite provision time.
 */
double replicaWarmupSeconds(const ReplicaConfig &rc,
                            double provision_seconds = 0.0);

/** Elastic fleet transition kinds, in the order they are logged. */
enum class ScaleAction {
    Attach,       ///< cold replica attached, warmup begins
    WarmComplete, ///< warmup finished, replica joined the routable set
    CancelWarming,///< scale-down reclaimed a replica mid-warmup
    Drain,        ///< live replica stopped accepting work
    Retire,       ///< drained (or cancelled) replica's lane retired
};

const char *scaleActionName(ScaleAction a);

/** One fleet transition, in simulated-time order — the controller
 *  decision log benches and examples replay. */
struct ScaleEvent
{
    double t_seconds = 0.0;
    ScaleAction action = ScaleAction::Attach;
    int64_t replica = 0;    ///< slot index (stable across retirement)
    size_t live_after = 0;  ///< routable replicas after the transition
};

/** One routing decision (request -> replica), in routed order. */
struct Placement
{
    int64_t request_id = 0;
    int64_t replica = 0;
};

/** Outcome of serving one trace on the fleet. */
struct ClusterResult
{
    /**
     * Fleet-wide aggregation: merged metrics (records keep replica
     * ids, so summarizeReplica() breaks them down again), concatenated
     * rejections, summed iterations, summed per-replica in-flight
     * peaks, merged prefix-cache counters (fleet hit rate / prefill
     * tokens saved), merged preemption counters (evictions, restores,
     * recompute tokens), and the fleet makespan (latest replica clock
     * at drain) — summary() works on it exactly as on a single
     * server's result.
     */
    ServeResult fleet;
    std::vector<ServeResult> per_replica;
    std::vector<std::string> replica_names;
    std::vector<Placement> placements;
    /** Elastic transitions in simulated-time order; empty on a fixed
     *  fleet. */
    std::vector<ScaleEvent> scale_events;
    /** Σ over slots of attached time (attach -> retire, or run start ->
     *  makespan while never retired) — the denominator of
     *  cost-normalized goodput (tokens per replica-second). Warmup
     *  time counts: a provisioning replica is paid for before it
     *  serves. On a fixed fleet this is fleet size x makespan. */
    double replica_seconds = 0.0;

    int64_t completed() const { return fleet.completed(); }
    ServingSummary summary() const { return fleet.summary(); }
};

/** Routed fleet of continuous-batching replicas. */
class Cluster
{
  public:
    /**
     * @throws std::invalid_argument when the fleet is empty, any
     * replica config is invalid (null / wave-only system, non-positive
     * max_batch), or — with a controller plugged in — the elastic
     * knobs are degenerate (min < 1, max < min, initial fleet outside
     * [min, max], non-positive/non-finite control period, bad
     * provision time, template index out of range). Replica ids are
     * overwritten with fleet indices.
     */
    Cluster(const core::TimingEngine &engine, ClusterConfig cfg);

    const ClusterConfig &config() const { return cfg_; }

    /**
     * Serve an open-loop arrival trace to completion. Requests are
     * sorted by arrival time; ids are preserved. Each run builds a
     * fresh fleet and router, so a Cluster can serve many traces and
     * identical inputs give bit-identical results.
     */
    ClusterResult run(std::vector<Request> trace) const;

  private:
    const core::TimingEngine &engine_;
    ClusterConfig cfg_;
};

} // namespace serving
} // namespace specontext
