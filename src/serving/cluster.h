/**
 * @file
 * Multi-replica cluster serving: N ReplicaEngines — each with its own
 * hardware, model geometry and SystemModel (heterogeneous fleets of
 * cloud A800 and edge RTX 4060 replicas are first-class) — fed by a
 * pluggable Router, advanced by an event-driven clock.
 *
 * The global clock is not lock-stepped: a sim::EventClock books every
 * replica's next-event instant plus the next unrouted arrival, and
 * each round advances only the earliest of them (ties toward the
 * lowest replica index, arrivals before replica steps at equal
 * instants — both deterministic). Arrivals are routed when the fleet's
 * earliest event passes them, so routing decisions see every replica
 * at a state no older than the arrival; routed requests wait in the
 * target replica's pending list until its local clock reaches their
 * arrival time, preserving per-replica causality however far clocks
 * drift apart.
 *
 * This is the machinery behind the repo's central capacity question:
 * how many replicas of which hardware does a given open-loop load
 * need to hold a p99 TTFT target? (bench/bench_cluster_scaling.cc,
 * examples/fleet_sizing.cpp)
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serving/replica_engine.h"
#include "serving/router.h"

namespace specontext {
namespace serving {

/** Fleet configuration: replica shapes plus the routing policy. */
struct ClusterConfig
{
    std::vector<ReplicaConfig> replicas;
    RouterConfig router;
    /** Fleet-wide observability (trace / counters / sampler). When any
     *  hook is set it is propagated to every replica, the router and
     *  the event clock at run(); all-null (the default) is bit-for-bit
     *  the unobserved cluster. Pointers are caller-owned and must
     *  outlive run(). */
    obs::Observability obs;
};

/** One routing decision (request -> replica), in routed order. */
struct Placement
{
    int64_t request_id = 0;
    int64_t replica = 0;
};

/** Outcome of serving one trace on the fleet. */
struct ClusterResult
{
    /**
     * Fleet-wide aggregation: merged metrics (records keep replica
     * ids, so summarizeReplica() breaks them down again), concatenated
     * rejections, summed iterations, summed per-replica in-flight
     * peaks, merged prefix-cache counters (fleet hit rate / prefill
     * tokens saved), merged preemption counters (evictions, restores,
     * recompute tokens), and the fleet makespan (latest replica clock
     * at drain) — summary() works on it exactly as on a single
     * server's result.
     */
    ServeResult fleet;
    std::vector<ServeResult> per_replica;
    std::vector<std::string> replica_names;
    std::vector<Placement> placements;

    int64_t completed() const { return fleet.completed(); }
    ServingSummary summary() const { return fleet.summary(); }
};

/** Routed fleet of continuous-batching replicas. */
class Cluster
{
  public:
    /**
     * @throws std::invalid_argument when the fleet is empty or any
     * replica config is invalid (null / wave-only system, non-positive
     * max_batch). Replica ids are overwritten with fleet indices.
     */
    Cluster(const core::TimingEngine &engine, ClusterConfig cfg);

    const ClusterConfig &config() const { return cfg_; }

    /**
     * Serve an open-loop arrival trace to completion. Requests are
     * sorted by arrival time; ids are preserved. Each run builds a
     * fresh fleet and router, so a Cluster can serve many traces and
     * identical inputs give bit-identical results.
     */
    ClusterResult run(std::vector<Request> trace) const;

  private:
    const core::TimingEngine &engine_;
    ClusterConfig cfg_;
};

} // namespace serving
} // namespace specontext
