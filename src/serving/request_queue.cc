#include "serving/request_queue.h"

#include <stdexcept>
#include <utility>

namespace specontext {
namespace serving {

const char *
requestStateName(RequestState s)
{
    switch (s) {
      case RequestState::Queued: return "Queued";
      case RequestState::Decoding: return "Decoding";
      case RequestState::Finished: return "Finished";
      case RequestState::Rejected: return "Rejected";
    }
    return "?";
}

const char *
queuePolicyName(QueuePolicy p)
{
    switch (p) {
      case QueuePolicy::Fifo: return "FIFO";
      case QueuePolicy::ShortestPromptFirst: return "SPF";
    }
    return "?";
}

RequestQueue::RequestQueue(QueuePolicy policy)
    : policy_(policy)
{
}

void
RequestQueue::push(Request r)
{
    waiting_.push_back(std::move(r));
}

int64_t
RequestQueue::candidateIndex() const
{
    if (waiting_.empty())
        throw std::logic_error("RequestQueue: empty");
    if (policy_ == QueuePolicy::Fifo)
        return 0;
    // Shortest prompt first; insertion order breaks ties, so the scan
    // keeps strict inequality.
    int64_t best = 0;
    for (int64_t i = 1; i < size(); ++i) {
        if (waiting_[i].prompt_len < waiting_[best].prompt_len)
            best = i;
    }
    return best;
}

const Request &
RequestQueue::peek() const
{
    return waiting_[candidateIndex()];
}

Request
RequestQueue::pop()
{
    const int64_t idx = candidateIndex();
    Request r = std::move(waiting_[idx]);
    waiting_.erase(waiting_.begin() + idx);
    return r;
}

} // namespace serving
} // namespace specontext
