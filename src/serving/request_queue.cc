#include "serving/request_queue.h"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>

namespace specontext {
namespace serving {

void
sortByArrival(std::vector<Request> &trace)
{
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival_seconds < b.arrival_seconds;
                     });
}

const char *
requestStateName(RequestState s)
{
    switch (s) {
      case RequestState::Queued: return "Queued";
      case RequestState::Decoding: return "Decoding";
      case RequestState::Preempted: return "Preempted";
      case RequestState::Finished: return "Finished";
      case RequestState::Rejected: return "Rejected";
    }
    return "?";
}

const char *
queuePolicyName(QueuePolicy p)
{
    switch (p) {
      case QueuePolicy::Fifo: return "FIFO";
      case QueuePolicy::ShortestPromptFirst: return "SPF";
    }
    return "?";
}

RequestQueue::RequestQueue(QueuePolicy policy)
    : policy_(policy)
{
}

void
RequestQueue::push(Request r)
{
    waiting_.push_back(std::move(r));
}

size_t
RequestQueue::candidateIndex() const
{
    if (empty())
        throw std::logic_error("RequestQueue: empty");
    if (policy_ == QueuePolicy::Fifo)
        return head_;
    // Shortest prompt first. Ties break on arrival time, then request
    // id — an explicit total order, so cluster runs are bit-reproducible
    // regardless of how the caller happened to enqueue equal-length
    // requests (insertion order is not guaranteed to be id order once a
    // router interleaves deliveries).
    auto precedes = [](const Request &a, const Request &b) {
        if (a.prompt_len != b.prompt_len)
            return a.prompt_len < b.prompt_len;
        if (a.arrival_seconds != b.arrival_seconds)
            return a.arrival_seconds < b.arrival_seconds;
        return a.id < b.id;
    };
    size_t best = head_;
    for (size_t i = head_ + 1; i < waiting_.size(); ++i) {
        if (precedes(waiting_[i], waiting_[best]))
            best = i;
    }
    return best;
}

const Request &
RequestQueue::peek() const
{
    return waiting_[candidateIndex()];
}

void
RequestQueue::maybeCompact()
{
    if (head_ == waiting_.size()) {
        waiting_.clear();
        head_ = 0;
        return;
    }
    // Compact only when the dead prefix dominates, so the amortized
    // move cost per pop stays O(1).
    if (head_ >= 64 && head_ * 2 >= waiting_.size()) {
        waiting_.erase(waiting_.begin(),
                       waiting_.begin() +
                           static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
    }
}

Request
RequestQueue::pop()
{
    const size_t idx = candidateIndex();
    Request r = std::move(waiting_[idx]);
    if (idx == head_) {
        ++head_;
        maybeCompact();
    } else {
        // SPF picked from the middle; order of the remaining live
        // entries must be preserved, so this stays an erase.
        waiting_.erase(waiting_.begin() +
                       static_cast<std::ptrdiff_t>(idx));
    }
    return r;
}

} // namespace serving
} // namespace specontext
