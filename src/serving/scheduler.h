/**
 * @file
 * Unified iteration-level scheduler of the continuous-batching engine:
 * one policy object behind which the three previously separate
 * admission mechanisms — the AdmissionController's memory test, the
 * RequestQueue's candidate ordering, and the admit loop that lived
 * inside ReplicaEngine — now sit, with two scheduling modes:
 *
 *  - Reserve (the default): pessimistic final-length booking. A
 *    request joins only when its KV reservation at *final* length fits
 *    next to every in-flight reservation — vLLM's classic discipline,
 *    deadlock-free by construction and bit-for-bit identical to the
 *    pre-Scheduler engine (BENCH_serving/cluster/prefix.json are
 *    pinned against it).
 *
 *  - Optimistic: admit on the *current* KV footprint (the candidate's
 *    prompt plus any generated tokens it must recompute, in-flight
 *    requests at their live contexts). Contexts grow every decode
 *    iteration, so a step can oversubscribe the sim::MemoryModel
 *    headroom; when nextDecodeTokenFits() says the next token does not
 *    fit, the engine preempts victims chosen by selectVictim() —
 *    releasing their KV and PrefixTree pins and re-enqueueing them for
 *    recompute — until the survivors fit. A preempted request's prompt
 *    usually restores through the prefix cache; only its generated
 *    history is re-prefilled (counted as recompute tokens).
 *
 * Victim selection is policy-driven (last-admitted, shortest-progress,
 * fewest-prefix-hit-tokens) and deterministic: equal-pressure ties
 * resolve through the (progress, arrival, id) total order, mirroring
 * the ShortestPromptFirst queue tie-break, so runs are
 * bit-reproducible however the batch happened to be assembled.
 *
 * (The wave/batch-sweep helpers that historically owned this header's
 * name live in serving/batch_sweep.h.)
 */
#pragma once

#include <cstdint>
#include <vector>

#include "obs/obs.h"
#include "serving/admission.h"
#include "serving/request.h"
#include "serving/request_queue.h"

namespace specontext {
namespace serving {

/** Admission discipline of the scheduler. */
enum class SchedulerMode {
    /** Book KV at final length up front (pessimistic, no preemption). */
    Reserve,
    /** Admit on current footprint; preempt under decode-step pressure. */
    Optimistic,
};

const char *schedulerModeName(SchedulerMode m);

/** Which in-flight request is evicted first under KV pressure. */
enum class VictimPolicy {
    /** Latest admission first (vLLM's recompute default — the request
     *  that joined last loses the least sunk batching benefit). */
    LastAdmitted,
    /** Fewest generated tokens first (least decode progress thrown
     *  away per preemption). */
    ShortestProgress,
    /** Fewest prefix-cache-hit tokens at the last admission first. */
    FewestPrefixHitTokens,
};

const char *victimPolicyName(VictimPolicy p);

/** Scheduler knobs of one replica. */
struct SchedulerConfig
{
    SchedulerMode mode = SchedulerMode::Reserve;
    VictimPolicy victim_policy = VictimPolicy::LastAdmitted;
    QueuePolicy queue_policy = QueuePolicy::Fifo;
    /** Hard cap on in-flight requests (scheduler table size); memory
     *  admission usually binds first. */
    int64_t max_batch = 64;
};

/** Preemption counters of one replica (or a fleet roll-up). */
struct PreemptionStats
{
    /** Victim evictions (a request preempted twice counts twice). */
    int64_t preemptions = 0;
    /** Re-admissions of previously preempted requests (equals
     *  preemptions once a trace drains — every victim is either
     *  restored or rejected). */
    int64_t restores = 0;
    /** Generated tokens re-prefilled across all restores — the decode
     *  work preemption discarded and prefill recomputed. */
    int64_t recompute_tokens = 0;
    /** All tokens actually charged through prefill at restores (the
     *  victim's live context minus what its prompt rode the prefix
     *  cache for). Makes admit-then-preempt churn visible: a victim
     *  evicted before its first decode step contributes its whole
     *  re-prefilled prompt here while adding 0 recompute_tokens. */
    int64_t restore_prefill_tokens = 0;

    /** Fleet aggregation: counters sum. */
    void merge(const PreemptionStats &other);
};

/**
 * One replica's admission + preemption policy object. Owns the waiting
 * queue and the memory-model admission test; the ReplicaEngine asks it
 * what to admit, whether the next decode token fits, and whom to evict
 * when it does not. Pure policy — the engine keeps the clock, the
 * in-flight batch and the prefix cache.
 */
class Scheduler
{
  public:
    /**
     * @throws std::invalid_argument when timing.system is null or
     * cannot be continuously batched, or cfg.max_batch is
     * non-positive.
     */
    Scheduler(core::TimingConfig timing, SchedulerConfig cfg);

    const SchedulerConfig &config() const { return cfg_; }
    const AdmissionController &admission() const { return admission_; }
    bool optimistic() const
    {
        return cfg_.mode == SchedulerMode::Optimistic;
    }

    /**
     * Publish this scheduler's policy-decision counters into `obs`
     * under the `replica<id>.` prefix: admit_checks / admit_denials
     * (how often the discipline said no — the queue-pressure signal)
     * and victim_selections. No-op when obs carries no registry;
     * call once, before the first admit().
     */
    void attachObservability(const obs::Observability &obs,
                             int64_t replica_id);

    // ---- Waiting queue facade ---------------------------------------

    bool queueEmpty() const { return queue_.empty(); }
    int64_t queueSize() const { return queue_.size(); }

    /** Enqueue an arrival (or re-enqueue a preempted request). */
    void enqueue(Request r);

    /** Next admission candidate under the queue policy. */
    const Request &peek() const { return queue_.peek(); }

    /** Remove and return the admission candidate. */
    Request pop();

    /** Final-length KV tokens of every queued request — the booked
     *  load signal Reserve-mode routing reads. */
    int64_t queuedFinalKvTokens() const { return queued_final_tokens_; }

    /** Current (restore-length) KV tokens of every queued request —
     *  the live-occupancy signal Optimistic-mode routing reads. */
    int64_t queuedLiveKvTokens() const { return queued_live_tokens_; }

    // ---- Admission ---------------------------------------------------

    /** Room for one more in-flight request under max_batch? */
    bool hasBatchSlot(const std::vector<Request> &active) const
    {
        return static_cast<int64_t>(active.size()) < cfg_.max_batch;
    }

    /**
     * Mode-aware admission test: Reserve prices the batch at booked
     * final lengths; Optimistic prices it at current footprints but
     * still hard-gates on the final-length-alone feasibility (a
     * request whose completed context could never fit even alone must
     * reject, not livelock through preempt/restore cycles).
     */
    AdmissionDecision admit(const std::vector<Request> &active,
                            const Request &candidate) const;

    /** Mode-independent hard-reject test (final length, idle server) —
     *  the same gate Router policies filter candidates with. */
    bool feasibleAlone(const Request &candidate) const
    {
        return admission_.feasibleAlone(candidate);
    }

    // ---- Preemption --------------------------------------------------

    /** True when every in-flight request can grow one more decode
     *  token. Always true in Reserve mode (reservations guarantee
     *  it); Optimistic delegates to the memory model's
     *  current-footprint query. */
    bool nextDecodeTokenFits(const std::vector<Request> &active) const;

    /**
     * Rounds of decode-fit headroom from the current state, capped at
     * `max_rounds`: the count of consecutive future rounds whose
     * nextDecodeTokenFits() check is guaranteed to pass while the
     * batch composition stays fixed. Reserve mode returns max_rounds
     * (reservations cover all growth); Optimistic delegates to
     * AdmissionController::decodeFitRounds(), whose contract (probe
     * indexing, monotonicity requirement, conservative first-failure
     * semantics) this facade inherits.
     */
    int64_t decodeFitRounds(const std::vector<Request> &active,
                            int64_t max_rounds) const;

    /**
     * Index into `active` of the next preemption victim under the
     * victim policy. Equal-pressure ties resolve through the
     * (progress, arrival, id) total order, so selection is
     * deterministic for any batch content.
     * @throws std::logic_error on an empty batch.
     */
    size_t selectVictim(const std::vector<Request> &active) const;

  private:
    /** The admission test proper; admit() wraps it with counting. */
    AdmissionDecision
    admitUncounted(const std::vector<Request> &active,
                   const Request &candidate) const;

    SchedulerConfig cfg_;
    AdmissionController admission_;
    RequestQueue queue_;
    int64_t queued_final_tokens_ = 0;
    int64_t queued_live_tokens_ = 0;

    /** Always-on decision counters (null = observability off). The
     *  registry outlives the scheduler (caller-owned); slots are
     *  resolved once in attachObservability(). */
    obs::CounterRegistry *counters_ = nullptr;
    obs::CounterRegistry::Handle admit_checks_ = 0;
    obs::CounterRegistry::Handle admit_denials_ = 0;
    obs::CounterRegistry::Handle victim_selections_ = 0;
};

} // namespace serving
} // namespace specontext
