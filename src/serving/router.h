/**
 * @file
 * Request router of the multi-replica cluster: picks which replica a
 * newly arrived request is delivered to. Dispatch-to-replicas is the
 * fleet's first-class scheduling decision (the scaling analogue of
 * exposed-datapath dispatch-to-units), so policies are pluggable:
 *
 *  - RoundRobin: cycle through the fleet — the oblivious baseline.
 *  - JoinShortestQueue: fewest outstanding requests.
 *  - LeastKvLoad: smallest fraction of KV capacity reserved, where
 *    each replica's reservation sums the final-length KV of everything
 *    it owes work to (the same pessimistic booking its
 *    SystemModel::admit() discipline applies) and capacity is the HBM
 *    left next to the weights — so heterogeneous replicas compare by
 *    *fractional* memory pressure, not absolute tokens.
 *  - TwoTier: prompt-length-aware placement — prompts of at least
 *    long_prompt_threshold tokens go to the big-HBM tier (replicas
 *    whose GPU memory equals the fleet maximum), short prompts prefer
 *    the small tier so long-context capacity stays available;
 *    join-shortest-queue inside the chosen tier.
 *  - PrefixAffinity: route to the replica already holding the longest
 *    cached prefix of the request's prompt tokens (ties break to the
 *    least KV-loaded, then lowest index). When no replica holds any
 *    of it, a cold prompt is hashed by its first cache block so every
 *    request of the same prompt family lands on the same sticky home
 *    from the very first arrival (one fleet-wide prefill per family
 *    instead of one per replica); requests without prompt tokens fall
 *    back to least-kv-load. Affinity is load-escaped: when the sticky
 *    pick owes more than affinity_spill_slack requests beyond the
 *    least-loaded candidate, the request spills to least-kv-load —
 *    re-prefilling a prefix is cheaper than queueing behind a hot
 *    family (cache-aware load balancing). Degenerates to
 *    least-kv-load when no replica has a prefix cache.
 *
 * Every policy first drops replicas that could not serve the request
 * even alone (admission's feasibleAlone(), i.e. the per-replica
 * SystemModel memory discipline); when no replica is feasible the
 * policy runs over the whole fleet and the chosen replica hard-rejects
 * the request, keeping rejection accounting policy-independent.
 * Ties always break toward the lowest replica index, so placements
 * are bit-reproducible.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/obs.h"
#include "serving/replica_engine.h"

namespace specontext {
namespace serving {

/** Placement policy of the cluster router. */
enum class RouterPolicy {
    RoundRobin,
    JoinShortestQueue,
    LeastKvLoad,
    TwoTier,
    PrefixAffinity,
};

const char *routerPolicyName(RouterPolicy p);

/** Router knobs. */
struct RouterConfig
{
    RouterPolicy policy = RouterPolicy::RoundRobin;
    /** TwoTier: prompts at least this long route to big-HBM replicas. */
    int64_t long_prompt_threshold = 8192;
    /** PrefixAffinity: outstanding-request headroom the sticky pick
     *  may have over the least-loaded candidate before the request
     *  spills to least-kv-load (a hot family must not head-of-line
     *  block its home replica). */
    int64_t affinity_spill_slack = 2;
};

/** Stateful placement engine (round-robin keeps a cursor). */
class Router
{
  public:
    explicit Router(RouterConfig cfg = {});

    const RouterConfig &config() const { return cfg_; }

    /**
     * Publish placement counters into `obs`: router.placements (total
     * routing decisions), router.to_replica<i> (one per lane, so skew
     * is visible at a glance) and router.affinity_spills (sticky picks
     * abandoned for load). No-op when obs carries no registry; call
     * once, before the first route().
     */
    void attachObservability(const obs::Observability &obs,
                             size_t fleet_size);

    /**
     * Index of the replica `r` should be delivered to, given the
     * fleet's current state. Deterministic: ties break toward the
     * lowest index. Equivalent to the routable-subset overload with
     * every fleet index routable.
     * @throws std::invalid_argument on an empty fleet.
     */
    size_t route(const Request &r,
                 const std::vector<std::unique_ptr<ReplicaEngine>>
                     &replicas);

    /**
     * Candidate-set routing for elastic fleets: only the ascending
     * index subset `routable` (the replicas currently accepting new
     * work — live, not warming/draining/retired) is eligible. Slots
     * outside the subset keep their indices, so placements stay
     * bit-reproducible across scale events; every policy — including
     * the prefix-affinity cold hash and the two-tier HBM split — is
     * evaluated over the routable set only. With `routable` covering
     * the whole fleet this is bit-identical to the two-argument
     * overload.
     * @throws std::invalid_argument on an empty fleet or an empty
     * routable set.
     */
    size_t route(const Request &r,
                 const std::vector<std::unique_ptr<ReplicaEngine>>
                     &replicas,
                 const std::vector<size_t> &routable);

  private:
    /** The placement decision proper; route() wraps it with counting. */
    size_t pickReplica(const Request &r,
                       const std::vector<std::unique_ptr<ReplicaEngine>>
                           &replicas,
                       const std::vector<size_t> &routable,
                       int64_t *affinity_spills);

    /** Fill `out` with the routable indices able to serve `r` at all;
     *  the whole routable set when none can (the pick then
     *  hard-rejects, keeping accounting policy-free). */
    void feasibleReplicas(const Request &r,
                          const std::vector<std::unique_ptr<ReplicaEngine>>
                              &replicas,
                          const std::vector<size_t> &routable,
                          std::vector<size_t> &out);

    RouterConfig cfg_;
    size_t rr_cursor_ = 0;

    /** Feasible-candidate scratch reused across placements — routing
     *  runs once per arrival, and rebuilding this vector on the heap
     *  each time was the router's last per-arrival allocation. */
    std::vector<size_t> feasible_scratch_;

    /** Admission-shape classes, the router's per-arrival feasibility
     *  memo. Replica configs are immutable and lanes are only ever
     *  appended (a retired slot keeps its engine), so each lane is
     *  classified exactly once over the router's lifetime; after that
     *  an arrival pays one feasibleAlone() per *class* — typically one
     *  for the whole fleet — instead of a shape comparison per lane. */
    std::vector<int32_t> shape_class_; ///< lane -> class id, -1 unknown
    std::vector<size_t> shape_rep_;    ///< class id -> exemplar lane
    std::vector<int8_t> shape_verdict_; ///< per-arrival verdict cache

    /** Always-on placement counters (null = observability off). */
    obs::CounterRegistry *counters_ = nullptr;
    obs::CounterRegistry::Handle placements_ = 0;
    obs::CounterRegistry::Handle affinity_spills_ = 0;
    std::vector<obs::CounterRegistry::Handle> to_replica_;
};

} // namespace serving
} // namespace specontext
