#include "serving/server.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace specontext {
namespace serving {

Server::Server(const core::TimingEngine &engine, ServerConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)), admission_(cfg_.timing)
{
    if (cfg_.max_batch <= 0)
        throw std::invalid_argument("Server: non-positive max_batch");
}

ServeResult
Server::run(std::vector<Request> trace) const
{
    sortByArrival(trace);
    // The facade never enables the prefix cache (budget 0 default), so
    // a Server run stays the cache-free baseline a zero-budget Cluster
    // is pinned against.
    ReplicaConfig rc;
    rc.timing = cfg_.timing;
    rc.queue_policy = cfg_.queue_policy;
    rc.max_batch = cfg_.max_batch;
    rc.name = "server";
    rc.obs = cfg_.obs;
    ReplicaEngine replica(engine_, rc);
    replica.setDecodeCostCache(cfg_.fast_path.cache_decode_costs);
    obs::TimeseriesSampler *sampler = cfg_.obs.sampler;

    // Single-replica driver: the trace cursor plays the router's role.
    size_t next = 0;
    const auto ingest = [&](double t) {
        while (next < trace.size() &&
               trace[next].arrival_seconds <= t)
            replica.deliver(std::move(trace[next++]));
    };
    const double neg_inf = -std::numeric_limits<double>::infinity();
    while (true) {
        const double t_replica = replica.nextEventSeconds();
        const double t_arrival =
            next < trace.size()
                ? trace[next].arrival_seconds
                : std::numeric_limits<double>::infinity();
        if (!std::isfinite(t_replica) && !std::isfinite(t_arrival))
            break;
        if (sampler) {
            const double t_now = std::min(t_replica, t_arrival);
            if (std::isfinite(t_now))
                sampler->sample(t_now);
        }
        if (t_arrival <= t_replica) {
            ingest(t_arrival);
            continue;
        }
        // Skip-ahead horizon: this loop owns two boundaries the engine
        // cannot see — the trace cursor (arrivals not yet delivered)
        // and the sampler cadence. Bounding the engine's bulk rounds
        // by both keeps ingest order and time-series rows bit- and
        // row-identical to one-round-per-step execution.
        double horizon = neg_inf;
        if (cfg_.fast_path.skip_ahead) {
            horizon = t_arrival;
            if (sampler)
                horizon =
                    std::min(horizon, sampler->nextSampleSeconds());
        }
        replica.step(ingest, horizon);
    }
    // End-of-run flush records the final partial window too, so short
    // runs (and the tail past the last cadence instant) appear in the
    // CSV.
    if (sampler)
        sampler->flush(replica.result().makespan_seconds);
    return replica.takeResult();
}

ServeResult
serveWaves(const core::TimingEngine &engine, const ServerConfig &cfg,
           std::vector<Request> trace)
{
    if (cfg.max_batch <= 0)
        throw std::invalid_argument("serveWaves: non-positive max_batch");
    const AdmissionController admission(cfg.timing);
    sortByArrival(trace);
    ServeResult out;
    double now = 0.0;

    // Static batching pads every member to the wave's longest prompt
    // and generation, so admission must price the padded shape.
    auto paddedFits = [&](const std::vector<Request> &wave,
                          const Request &cand) {
        Request pad;
        pad.prompt_len = cand.prompt_len;
        pad.gen_len = cand.gen_len;
        for (const Request &r : wave) {
            pad.prompt_len = std::max(pad.prompt_len, r.prompt_len);
            pad.gen_len = std::max(pad.gen_len, r.gen_len);
        }
        const std::vector<Request> in_flight(wave.size(), pad);
        return admission.admit(in_flight, pad).admit;
    };

    size_t i = 0;
    while (i < trace.size()) {
        // The server went idle at `now`; a wave forms from whatever
        // has arrived by then (never from future arrivals — waiting
        // for them would inflate the baseline's queueing delay).
        if (trace[i].arrival_seconds > now)
            now = trace[i].arrival_seconds;
        std::vector<Request> wave;
        while (i < trace.size() &&
               trace[i].arrival_seconds <= now &&
               static_cast<int64_t>(wave.size()) < cfg.max_batch) {
            if (!paddedFits(wave, trace[i])) {
                if (wave.empty()) {
                    Request r = trace[i];
                    r.state = RequestState::Rejected;
                    out.rejected.push_back(std::move(r));
                    ++i;
                    continue;
                }
                break;
            }
            wave.push_back(trace[i]);
            ++i;
        }
        if (wave.empty())
            continue;

        int64_t max_prompt = 0, max_gen = 0;
        for (const Request &r : wave) {
            max_prompt = std::max(max_prompt, r.prompt_len);
            max_gen = std::max(max_gen, r.gen_len);
        }
        for (Request &r : wave) {
            r.admit_seconds = now;
            r.state = RequestState::Decoding;
        }
        // Padded batch prefill (prefill cost is linear in tokens, so
        // per-member padded prefill equals the batched GEMM cost);
        // each member joins on top of the previously prefilled ones'
        // resident KV.
        for (size_t k = 0; k < wave.size(); ++k) {
            now += engine.requestPrefillSeconds(
                cfg.timing, max_prompt, static_cast<int64_t>(k),
                static_cast<int64_t>(k) * max_prompt);
        }

        for (int64_t t = 0; t < max_gen; ++t) {
            std::vector<int64_t> kv_lens(wave.size(), max_prompt + t);
            now += engine.decodeIterationSeconds(cfg.timing, kv_lens);
            ++out.iterations;
            for (Request &r : wave) {
                if (r.first_token_seconds < 0.0)
                    r.first_token_seconds = now;
            }
        }
        // Barrier out: every member retires when the wave does, even
        // those whose own generation finished early.
        for (Request &r : wave) {
            r.generated = r.gen_len;
            r.finish_seconds = now;
            r.state = RequestState::Finished;
            out.metrics.record(r);
        }
        out.peak_in_flight = std::max(
            out.peak_in_flight, static_cast<int64_t>(wave.size()));
    }
    out.makespan_seconds = now;
    return out;
}

} // namespace serving
} // namespace specontext
