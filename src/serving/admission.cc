#include "serving/admission.h"

#include <algorithm>
#include <stdexcept>

namespace specontext {
namespace serving {

namespace {

/** Shorthand for the engine's shared runtime-buffer rule. */
int64_t
weightFootprint(const model::ModelConfig &m)
{
    return core::TimingEngine::weightFootprintBytes(m);
}

} // namespace

// requests = 1 in the model instance; admission queries override it
// per candidate batch via the *For variants.
AdmissionController::AdmissionController(core::TimingConfig cfg)
    : cfg_(std::move(cfg)),
      mm_(core::TimingEngine::memoryInputsFor(cfg_, 1))
{
    cfg_.llm.validate();
    if (!core::TimingEngine::supportsContinuousBatching(cfg_.system))
        throw std::invalid_argument(
            "AdmissionController: system is wave-scheduled only");
}

AdmissionDecision
AdmissionController::admit(const std::vector<Request> &in_flight,
                           const Request &candidate) const
{
    if (candidate.prompt_len <= 0 || candidate.gen_len <= 0)
        return {false, "degenerate request shape"};
    if (cfg_.system == core::SystemKind::SpeContext)
        return admitSpeContext(in_flight, candidate);
    return admitFullAttention(in_flight, candidate);
}

bool
AdmissionController::feasibleAlone(const Request &candidate) const
{
    return admit({}, candidate).admit;
}

AdmissionDecision
AdmissionController::admitSpeContext(
    const std::vector<Request> &in_flight, const Request &candidate) const
{
    const int64_t r = static_cast<int64_t>(in_flight.size()) + 1;
    // Eq. 7 prices R uniform-length requests; bound the heterogeneous
    // batch by its longest final reservation (conservative).
    int64_t s_max = candidate.finalLen();
    int64_t kv_tokens = candidate.finalLen();
    for (const Request &q : in_flight) {
        s_max = std::max(s_max, q.finalLen());
        kv_tokens += q.finalLen();
    }
    if (!mm_.fitsWithOffload(r, s_max))
        return {false, "no offload level fits (Eq. 7 headroom exhausted)"};
    // Offloaded layers land in CPU DRAM; the full KV cache must fit
    // there in the worst (all-offloaded) placement. Exact per-request
    // sum — DRAM capacity is not a uniform-length bound.
    const int64_t kvb =
        core::TimingEngine::kvBytesPerTokenPerLayer(cfg_.llm);
    if (kv_tokens * kvb * cfg_.llm.layers > cfg_.hw.cpu_mem_bytes)
        return {false, "offloaded KV would exceed CPU DRAM"};
    return {true, ""};
}

AdmissionDecision
AdmissionController::admitFullAttention(
    const std::vector<Request> &in_flight, const Request &candidate) const
{
    const model::ModelConfig &m = cfg_.llm;
    const int64_t kvb = core::TimingEngine::kvBytesPerTokenPerLayer(m);
    int64_t kv_tokens = candidate.finalLen();
    for (const Request &q : in_flight)
        kv_tokens += q.finalLen();
    const int64_t kv_total = kv_tokens * kvb * m.layers;

    // Eager materializes the (S x S) attention matrix while prefilling
    // the joining request (one request at a time in this server).
    int64_t scratch = 0;
    if (cfg_.system == core::SystemKind::HFEager) {
        scratch =
            2 * m.q_heads * candidate.prompt_len * candidate.prompt_len;
    }
    const int64_t need = weightFootprint(m) + scratch + kv_total;
    if (need <= cfg_.hw.gpu_mem_bytes)
        return {true, ""};
    if (cfg_.allow_full_attention_offload) {
        if (weightFootprint(m) + scratch > cfg_.hw.gpu_mem_bytes)
            return {false, "weights + prefill scratch exceed GPU memory"};
        if (kv_total > cfg_.hw.cpu_mem_bytes)
            return {false, "spilled KV would exceed CPU DRAM"};
        return {true, ""};
    }
    return {false, "reserved KV exceeds GPU memory (no offload)"};
}

} // namespace serving
} // namespace specontext
