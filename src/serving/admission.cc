#include "serving/admission.h"

#include <stdexcept>

namespace specontext {
namespace serving {

AdmissionController::AdmissionController(core::TimingConfig cfg)
    : cfg_(std::move(cfg))
{
    if (!cfg_.system)
        throw std::invalid_argument(
            "AdmissionController: TimingConfig.system is null");
    cfg_.llm.validate();
    if (!cfg_.system->supportsContinuousBatching())
        throw std::invalid_argument(
            "AdmissionController: system is wave-scheduled only");
}

AdmissionDecision
AdmissionController::admit(const std::vector<Request> &in_flight,
                           const Request &candidate) const
{
    if (candidate.prompt_len <= 0 || candidate.gen_len <= 0)
        return {false, "degenerate request shape"};
    std::vector<int64_t> final_lens;
    final_lens.reserve(in_flight.size());
    for (const Request &q : in_flight)
        final_lens.push_back(q.finalLen());
    return cfg_.system->admit(cfg_, final_lens, candidate.prompt_len,
                              candidate.finalLen());
}

AdmissionDecision
AdmissionController::admitCurrent(const std::vector<Request> &in_flight,
                                  const Request &candidate) const
{
    if (candidate.prompt_len <= 0 || candidate.gen_len <= 0)
        return {false, "degenerate request shape"};
    std::vector<int64_t> kv_lens;
    kv_lens.reserve(in_flight.size());
    for (const Request &q : in_flight)
        kv_lens.push_back(q.kvLen());
    // The candidate's live footprint after (re)prefill is its current
    // context — prompt plus whatever it had generated before a
    // preemption; that recompute is also the prefill shape.
    return cfg_.system->admit(cfg_, kv_lens, candidate.kvLen(),
                              candidate.kvLen());
}

AdmissionDecision
AdmissionController::decodeStepFits(
    const std::vector<Request> &in_flight) const
{
    std::vector<int64_t> kv_lens;
    kv_lens.reserve(in_flight.size());
    for (const Request &q : in_flight)
        kv_lens.push_back(q.kvLen() + 1);
    return cfg_.system->fitsCurrent(cfg_, kv_lens);
}

bool
AdmissionController::feasibleAlone(const Request &candidate) const
{
    return admit({}, candidate).admit;
}

bool
AdmissionController::restoreFeasibleAlone(const Request &candidate) const
{
    if (candidate.prompt_len <= 0 || candidate.gen_len <= 0)
        return false;
    // The deepest possible restore prefills the whole final context in
    // one pass (all gen_len tokens generated, then preempted); prompt
    // monotonicity makes this the worst prefill-scratch shape.
    return cfg_.system
        ->admit(cfg_, {}, candidate.finalLen(), candidate.finalLen())
        .admit;
}

} // namespace serving
} // namespace specontext
