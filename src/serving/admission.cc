#include "serving/admission.h"

#include <stdexcept>

namespace specontext {
namespace serving {

AdmissionController::AdmissionController(core::TimingConfig cfg)
    : cfg_(std::move(cfg))
{
    if (!cfg_.system)
        throw std::invalid_argument(
            "AdmissionController: TimingConfig.system is null");
    cfg_.llm.validate();
    if (!cfg_.system->supportsContinuousBatching())
        throw std::invalid_argument(
            "AdmissionController: system is wave-scheduled only");
}

AdmissionDecision
AdmissionController::admit(const std::vector<Request> &in_flight,
                           const Request &candidate) const
{
    if (candidate.prompt_len <= 0 || candidate.gen_len <= 0)
        return {false, "degenerate request shape"};
    std::vector<int64_t> final_lens;
    final_lens.reserve(in_flight.size());
    for (const Request &q : in_flight)
        final_lens.push_back(q.finalLen());
    return cfg_.system->admit(cfg_, final_lens, candidate.prompt_len,
                              candidate.finalLen());
}

bool
AdmissionController::feasibleAlone(const Request &candidate) const
{
    return admit({}, candidate).admit;
}

} // namespace serving
} // namespace specontext
