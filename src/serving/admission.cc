#include "serving/admission.h"

#include <algorithm>
#include <stdexcept>

namespace specontext {
namespace serving {

AdmissionController::AdmissionController(core::TimingConfig cfg)
    : cfg_(std::move(cfg))
{
    if (!cfg_.system)
        throw std::invalid_argument(
            "AdmissionController: TimingConfig.system is null");
    cfg_.llm.validate();
    if (!cfg_.system->supportsContinuousBatching())
        throw std::invalid_argument(
            "AdmissionController: system is wave-scheduled only");
    eval_ = cfg_.system->makeAdmissionEvaluator(cfg_);
}

AdmissionDecision
AdmissionController::admit(const std::vector<Request> &in_flight,
                           const Request &candidate) const
{
    if (candidate.prompt_len <= 0 || candidate.gen_len <= 0)
        return {false, "degenerate request shape"};
    lens_scratch_.clear();
    for (const Request &q : in_flight)
        lens_scratch_.push_back(q.finalLen());
    return eval_->admit(lens_scratch_, candidate.prompt_len,
                        candidate.finalLen());
}

AdmissionDecision
AdmissionController::admitCurrent(const std::vector<Request> &in_flight,
                                  const Request &candidate) const
{
    if (candidate.prompt_len <= 0 || candidate.gen_len <= 0)
        return {false, "degenerate request shape"};
    lens_scratch_.clear();
    for (const Request &q : in_flight)
        lens_scratch_.push_back(q.kvLen());
    // The candidate's live footprint after (re)prefill is its current
    // context — prompt plus whatever it had generated before a
    // preemption; that recompute is also the prefill shape.
    return eval_->admit(lens_scratch_, candidate.kvLen(),
                        candidate.kvLen());
}

AdmissionDecision
AdmissionController::decodeStepFits(
    const std::vector<Request> &in_flight) const
{
    lens_scratch_.clear();
    for (const Request &q : in_flight)
        lens_scratch_.push_back(q.kvLen() + 1);
    return eval_->fitsCurrent(lens_scratch_);
}

int64_t
AdmissionController::decodeFitRounds(const std::vector<Request> &in_flight,
                                     int64_t max_rounds) const
{
    if (max_rounds <= 0)
        return 0;
    if (in_flight.empty())
        return max_rounds;
    // pass(j): the exact decodeStepFits() predicate evaluated j rounds
    // ahead — every context at kvLen() + 1 + j.
    const auto pass = [&](int64_t j) {
        lens_scratch_.clear();
        for (const Request &q : in_flight)
            lens_scratch_.push_back(q.kvLen() + 1 + j);
        return eval_->fitsCurrent(lens_scratch_).admit;
    };
    if (!pass(0))
        return 0;
    // Gallop out from the known-true probe, then bisect to the first
    // failure. Monotonicity (see header) makes the frontier a single
    // threshold, so ~2 log2(max_rounds) probes bound it exactly.
    int64_t t = 0;  // highest probe index known true
    int64_t f = -1; // lowest probe index known false (-1: none yet)
    for (int64_t step = 1; t < max_rounds - 1; step *= 2) {
        const int64_t p = std::min(t + step, max_rounds - 1);
        if (pass(p)) {
            t = p;
        } else {
            f = p;
            break;
        }
    }
    if (f < 0)
        return max_rounds; // probes 0..max_rounds-1 all pass
    while (f - t > 1) {
        const int64_t mid = t + (f - t) / 2;
        if (pass(mid))
            t = mid;
        else
            f = mid;
    }
    return f; // pass(j) holds exactly for j < f
}

bool
AdmissionController::feasibleAlone(const Request &candidate) const
{
    return admit({}, candidate).admit;
}

bool
AdmissionController::restoreFeasibleAlone(const Request &candidate) const
{
    if (candidate.prompt_len <= 0 || candidate.gen_len <= 0)
        return false;
    // The deepest possible restore prefills the whole final context in
    // one pass (all gen_len tokens generated, then preempted); prompt
    // monotonicity makes this the worst prefill-scratch shape.
    lens_scratch_.clear();
    return eval_
        ->admit(lens_scratch_, candidate.finalLen(), candidate.finalLen())
        .admit;
}

} // namespace serving
} // namespace specontext
