/**
 * @file
 * Closed-workload batch machinery: workload definitions, batch sweeps
 * with OOM detection, and wave scheduling — the machinery behind
 * Table 3 and Figure 10 (the paper reports each system at its best
 * feasible batch size, shown in grey).
 *
 * Historical note: these helpers owned the `serving/scheduler.h` name
 * until the iteration-level serving::Scheduler (admission + preemption
 * policy of the continuous-batching engine) took it over; they are
 * wave/sweep utilities, not a scheduler.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/timing_engine.h"

namespace specontext {
namespace serving {

/** [input len, output len] workload of the paper's evaluation. */
struct Workload
{
    int64_t prompt_len = 0;
    int64_t gen_len = 0;

    std::string
    label() const
    {
        auto k = [](int64_t v) {
            return std::to_string(v / 1024) + "k";
        };
        return "[" + k(prompt_len) + ", " + k(gen_len) + "]";
    }
};

/** The four [in, out] combinations of Table 3 / Fig. 10. */
std::vector<Workload> paperWorkloads();

/** Outcome of one batch size. */
struct BatchPoint
{
    int64_t batch = 0;
    core::TimingResult result;
};

/** Best feasible batch for a system/workload. */
struct BatchSweepResult
{
    std::vector<BatchPoint> points;
    /** Index into points of the feasible batch with max throughput,
     *  or -1 when every batch OOMs. */
    int64_t best = -1;

    bool feasible() const { return best >= 0; }
    const BatchPoint &bestPoint() const { return points.at(best); }
};

/** The batch sizes the paper sweeps (its grey annotations). */
std::vector<int64_t> paperBatchSizes();

/**
 * Simulate `base` at each batch size and pick the feasible batch with
 * the highest throughput. base.batch is overwritten per point.
 */
BatchSweepResult sweepBatches(const core::TimingEngine &engine,
                              core::TimingConfig base,
                              const std::vector<int64_t> &batches);

/**
 * Wave scheduling: serve `total_requests` identical requests with at
 * most `max_batch` in flight; returns aggregate tokens/s across waves
 * (ceil(total/max_batch) sequential waves).
 */
double waveThroughput(const core::TimingEngine &engine,
                      core::TimingConfig base, int64_t total_requests,
                      int64_t max_batch);

} // namespace serving
} // namespace specontext
