#include "serving/router.h"

#include <algorithm>
#include <stdexcept>

namespace specontext {
namespace serving {

const char *
routerPolicyName(RouterPolicy p)
{
    switch (p) {
      case RouterPolicy::RoundRobin: return "round-robin";
      case RouterPolicy::JoinShortestQueue: return "join-shortest-queue";
      case RouterPolicy::LeastKvLoad: return "least-kv-load";
      case RouterPolicy::TwoTier: return "two-tier";
    }
    return "?";
}

Router::Router(RouterConfig cfg) : cfg_(cfg) {}

namespace {

using Fleet = std::vector<std::unique_ptr<ReplicaEngine>>;

/** Indices able to serve `r` at all; the whole fleet when none can
 *  (the pick then hard-rejects, keeping accounting policy-free). */
std::vector<size_t>
feasibleReplicas(const Request &r, const Fleet &fleet)
{
    std::vector<size_t> out;
    for (size_t i = 0; i < fleet.size(); ++i) {
        if (fleet[i]->admission().feasibleAlone(r))
            out.push_back(i);
    }
    if (out.empty()) {
        out.resize(fleet.size());
        for (size_t i = 0; i < fleet.size(); ++i)
            out[i] = i;
    }
    return out;
}

/** Candidate minimizing `score`; ties toward the lowest index (the
 *  candidate list is ascending). */
template <typename Score>
size_t
argminReplica(const std::vector<size_t> &candidates, const Score &score)
{
    size_t best = candidates.front();
    double best_score = score(best);
    for (size_t k = 1; k < candidates.size(); ++k) {
        const double s = score(candidates[k]);
        if (s < best_score) {
            best = candidates[k];
            best_score = s;
        }
    }
    return best;
}

size_t
joinShortestQueue(const std::vector<size_t> &candidates,
                  const Fleet &fleet)
{
    return argminReplica(candidates, [&](size_t i) {
        return static_cast<double>(fleet[i]->outstanding());
    });
}

} // namespace

size_t
Router::route(const Request &r, const Fleet &fleet)
{
    if (fleet.empty())
        throw std::invalid_argument("Router: empty fleet");
    const std::vector<size_t> candidates = feasibleReplicas(r, fleet);

    switch (cfg_.policy) {
      case RouterPolicy::RoundRobin: {
        // Next candidate at or after the cursor, cyclically; the
        // cursor sweeps the whole fleet so heterogeneous feasibility
        // does not skew the rotation.
        for (size_t probe = 0; probe < fleet.size(); ++probe) {
            const size_t i = (rr_cursor_ + probe) % fleet.size();
            for (size_t c : candidates) {
                if (c == i) {
                    rr_cursor_ = (i + 1) % fleet.size();
                    return i;
                }
            }
        }
        return candidates.front(); // unreachable: candidates non-empty
      }

      case RouterPolicy::JoinShortestQueue:
        return joinShortestQueue(candidates, fleet);

      case RouterPolicy::LeastKvLoad:
        return argminReplica(candidates, [&](size_t i) {
            return fleet[i]->kvLoadFraction(r.finalLen());
        });

      case RouterPolicy::TwoTier: {
        int64_t max_hbm = 0;
        for (const auto &rep : fleet)
            max_hbm = std::max(max_hbm,
                               rep->config().timing.hw.gpu_mem_bytes);
        const bool is_long = r.prompt_len >= cfg_.long_prompt_threshold;
        std::vector<size_t> tier;
        for (size_t i : candidates) {
            const bool big =
                fleet[i]->config().timing.hw.gpu_mem_bytes == max_hbm;
            if (big == is_long)
                tier.push_back(i);
        }
        if (tier.empty())
            tier = candidates;
        return joinShortestQueue(tier, fleet);
      }
    }
    throw std::logic_error("Router: unknown policy");
}

} // namespace serving
} // namespace specontext
