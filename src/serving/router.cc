#include "serving/router.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "tensor/hash.h"

namespace specontext {
namespace serving {

const char *
routerPolicyName(RouterPolicy p)
{
    switch (p) {
      case RouterPolicy::RoundRobin: return "round-robin";
      case RouterPolicy::JoinShortestQueue: return "join-shortest-queue";
      case RouterPolicy::LeastKvLoad: return "least-kv-load";
      case RouterPolicy::TwoTier: return "two-tier";
      case RouterPolicy::PrefixAffinity: return "prefix-affinity";
    }
    return "?";
}

Router::Router(RouterConfig cfg) : cfg_(cfg) {}

void
Router::attachObservability(const obs::Observability &obs,
                            size_t fleet_size)
{
    counters_ = obs.counters;
    if (!counters_)
        return;
    placements_ = counters_->counter("router.placements");
    affinity_spills_ = counters_->counter("router.affinity_spills");
    to_replica_.clear();
    to_replica_.reserve(fleet_size);
    for (size_t i = 0; i < fleet_size; ++i) {
        to_replica_.push_back(counters_->counter(
            "router.to_replica" + std::to_string(i)));
    }
}

namespace {

using Fleet = std::vector<std::unique_ptr<ReplicaEngine>>;

/** Candidate minimizing `score`; ties toward the lowest index (the
 *  candidate list is ascending). */
template <typename Score>
size_t
argminReplica(const std::vector<size_t> &candidates, const Score &score)
{
    size_t best = candidates.front();
    double best_score = score(best);
    for (size_t k = 1; k < candidates.size(); ++k) {
        const double s = score(candidates[k]);
        if (s < best_score) {
            best = candidates[k];
            best_score = s;
        }
    }
    return best;
}

size_t
joinShortestQueue(const std::vector<size_t> &candidates,
                  const Fleet &fleet)
{
    return argminReplica(candidates, [&](size_t i) {
        return static_cast<double>(fleet[i]->outstanding());
    });
}

size_t
leastKvLoad(const Request &r, const std::vector<size_t> &candidates,
            const Fleet &fleet)
{
    // Mode-aware load signal: Reserve replicas are scored on booked
    // final-length reservations (bit-identical to the historical
    // kvLoadFraction(r.finalLen())), Optimistic replicas on the live
    // occupancy their preemptive discipline actually holds — booked
    // finals would systematically overstate their pressure and starve
    // them of traffic they could absorb.
    return argminReplica(candidates, [&](size_t i) {
        return fleet[i]->routingLoadFraction(r);
    });
}

/** FNV-1a 64 over the first `n` token ids, folded least-significant
 *  byte first so the value is endianness-independent — the
 *  deterministic sticky home of a cold prompt family. */
uint64_t
hashTokens(const std::vector<int32_t> &tokens, size_t n)
{
    uint64_t h = kFnv1a64OffsetBasis;
    for (size_t i = 0; i < n && i < tokens.size(); ++i) {
        const auto t = static_cast<uint32_t>(tokens[i]);
        for (int shift = 0; shift < 32; shift += 8) {
            h ^= (t >> shift) & 0xffu;
            h *= kFnv1a64Prime;
        }
    }
    return h;
}

size_t
prefixAffinity(const Request &r, const std::vector<size_t> &candidates,
               const Fleet &fleet, const std::vector<size_t> &routable,
               int64_t spill_slack, int64_t *affinity_spills)
{
    // Load escape shared by the warm and cold sticky paths: stick
    // only while the sticky pick owes at most spill_slack requests
    // more than the least-loaded candidate — past that, re-prefilling
    // the prefix is cheaper than queueing behind a hot family.
    const size_t least = leastKvLoad(r, candidates, fleet);
    auto stickyOrSpill = [&](size_t sticky) {
        const bool spill =
            fleet[sticky]->outstanding() >
            fleet[least]->outstanding() + spill_slack;
        if (spill && affinity_spills)
            ++*affinity_spills;
        return spill ? least : sticky;
    };

    // Warm path: the replica with the longest cached prefix of this
    // prompt wins — it skips the most prefill work. Ties (several
    // replicas equally warm, or none warm at all for a token-less
    // request) break by KV load, then lowest index.
    int64_t best_hit = 0;
    std::vector<int64_t> hits(candidates.size(), 0);
    for (size_t k = 0; k < candidates.size(); ++k) {
        hits[k] = fleet[candidates[k]]->prefixHitTokens(r);
        best_hit = std::max(best_hit, hits[k]);
    }
    if (best_hit > 0) {
        std::vector<size_t> warmest;
        for (size_t k = 0; k < candidates.size(); ++k) {
            if (hits[k] == best_hit)
                warmest.push_back(candidates[k]);
        }
        return stickyOrSpill(leastKvLoad(r, warmest, fleet));
    }
    // Cold prompt with tokens: hash its first cache block onto the
    // cache-enabled replicas, so every request of the same family
    // has the same sticky home before any cache state exists — one
    // fleet-wide cold prefill per family instead of one per replica.
    // Only cached replicas are hashable homes (a cache-less one can
    // never warm up, which would strand the family on full prefill
    // forever), and the modulus runs over the *whole routable set's*
    // cached replicas — not this request's candidate subset — so
    // same-family requests with different feasibility still agree on
    // the home; a request its home cannot serve falls back to
    // least-kv-load. (On an elastic fleet the routable set shifts with
    // scale events, re-homing cold families — the warm path above
    // keeps already-cached families sticky regardless.) The block
    // length is the widest cache page among the cached replicas so
    // the hashed span is block-aligned everywhere.
    if (!r.prompt_tokens.empty()) {
        int64_t page = 0;
        std::vector<size_t> cached;
        for (size_t i : routable) {
            if (fleet[i]->prefixCacheEnabled()) {
                cached.push_back(i);
                page = std::max(
                    page, fleet[i]->config().prefix_cache.page_size);
            }
        }
        if (!cached.empty()) {
            const uint64_t h =
                hashTokens(r.prompt_tokens, static_cast<size_t>(page));
            const size_t home = cached[h % cached.size()];
            for (size_t c : candidates) {
                if (c == home)
                    return stickyOrSpill(home);
            }
        }
    }
    // No tokens, no caches anywhere, or an infeasible home: plain
    // least-kv-load.
    return least;
}

} // namespace

size_t
Router::route(const Request &r, const Fleet &fleet)
{
    std::vector<size_t> all(fleet.size());
    for (size_t i = 0; i < fleet.size(); ++i)
        all[i] = i;
    return route(r, fleet, all);
}

size_t
Router::route(const Request &r, const Fleet &fleet,
              const std::vector<size_t> &routable)
{
    int64_t affinity_spills = 0;
    const size_t pick = pickReplica(r, fleet, routable, &affinity_spills);
    if (counters_) {
        // Replicas attached after attachObservability() (elastic
        // scale-up) get their skew counter on first placement.
        while (to_replica_.size() <= pick) {
            to_replica_.push_back(counters_->counter(
                "router.to_replica" +
                std::to_string(to_replica_.size())));
        }
        counters_->add(placements_, 1);
        counters_->add(to_replica_[pick], 1);
        if (affinity_spills > 0)
            counters_->add(affinity_spills_, affinity_spills);
    }
    return pick;
}

void
Router::feasibleReplicas(const Request &r, const Fleet &fleet,
                         const std::vector<size_t> &routable,
                         std::vector<size_t> &out)
{
    out.clear();
    // One feasibility verdict covers every lane whose admission shape
    // matches (fleets are usually homogeneous): the controller prices
    // the candidate against an idle replica, so lanes with the same
    // system and config must agree — re-deriving the memory-model
    // headroom per lane was the router's hottest redundant work.
    // Shapes are classified once per lane over the router's lifetime,
    // so the steady-state arrival pays one feasibleAlone() per class
    // and zero shape comparisons.
    if (shape_class_.size() < fleet.size())
        shape_class_.resize(fleet.size(), -1);
    shape_verdict_.assign(shape_rep_.size(), int8_t{-1});
    for (size_t i : routable) {
        int32_t c = shape_class_[i];
        if (c < 0) {
            const AdmissionController &ac = fleet[i]->admission();
            for (size_t k = 0; k < shape_rep_.size(); ++k) {
                if (ac.sameAdmissionShape(
                        fleet[shape_rep_[k]]->admission())) {
                    c = static_cast<int32_t>(k);
                    break;
                }
            }
            if (c < 0) {
                c = static_cast<int32_t>(shape_rep_.size());
                shape_rep_.push_back(i);
                shape_verdict_.push_back(int8_t{-1});
            }
            shape_class_[i] = c;
        }
        int8_t &v = shape_verdict_[static_cast<size_t>(c)];
        if (v < 0)
            v = fleet[i]->admission().feasibleAlone(r) ? 1 : 0;
        if (v)
            out.push_back(i);
    }
    if (out.empty())
        out.assign(routable.begin(), routable.end());
}

size_t
Router::pickReplica(const Request &r, const Fleet &fleet,
                    const std::vector<size_t> &routable,
                    int64_t *affinity_spills)
{
    if (fleet.empty())
        throw std::invalid_argument("Router: empty fleet");
    if (routable.empty())
        throw std::invalid_argument("Router: empty routable set");
    feasibleReplicas(r, fleet, routable, feasible_scratch_);
    const std::vector<size_t> &candidates = feasible_scratch_;

    switch (cfg_.policy) {
      case RouterPolicy::RoundRobin: {
        // Next candidate at or after the cursor, cyclically; the
        // cursor sweeps the whole fleet so heterogeneous feasibility
        // does not skew the rotation.
        for (size_t probe = 0; probe < fleet.size(); ++probe) {
            const size_t i = (rr_cursor_ + probe) % fleet.size();
            for (size_t c : candidates) {
                if (c == i) {
                    rr_cursor_ = (i + 1) % fleet.size();
                    return i;
                }
            }
        }
        return candidates.front(); // unreachable: candidates non-empty
      }

      case RouterPolicy::JoinShortestQueue:
        return joinShortestQueue(candidates, fleet);

      case RouterPolicy::LeastKvLoad:
        return leastKvLoad(r, candidates, fleet);

      case RouterPolicy::PrefixAffinity:
        return prefixAffinity(r, candidates, fleet, routable,
                              cfg_.affinity_spill_slack,
                              affinity_spills);

      case RouterPolicy::TwoTier: {
        // The big tier is defined by the routable set's HBM maximum,
        // so a retired big replica does not strand long prompts on a
        // tier that no longer exists.
        int64_t max_hbm = 0;
        for (size_t i : routable)
            max_hbm = std::max(
                max_hbm, fleet[i]->config().timing.hw.gpu_mem_bytes);
        const bool is_long = r.prompt_len >= cfg_.long_prompt_threshold;
        std::vector<size_t> tier;
        for (size_t i : candidates) {
            const bool big =
                fleet[i]->config().timing.hw.gpu_mem_bytes == max_hbm;
            if (big == is_long)
                tier.push_back(i);
        }
        if (tier.empty())
            tier = candidates;
        return joinShortestQueue(tier, fleet);
      }
    }
    throw std::logic_error("Router: unknown policy");
}

} // namespace serving
} // namespace specontext
