#include "serving/scheduler.h"

#include <stdexcept>
#include <string>

namespace specontext {
namespace serving {

const char *
schedulerModeName(SchedulerMode m)
{
    switch (m) {
      case SchedulerMode::Reserve: return "reserve";
      case SchedulerMode::Optimistic: return "optimistic";
    }
    return "?";
}

const char *
victimPolicyName(VictimPolicy p)
{
    switch (p) {
      case VictimPolicy::LastAdmitted: return "last-admitted";
      case VictimPolicy::ShortestProgress: return "shortest-progress";
      case VictimPolicy::FewestPrefixHitTokens:
        return "fewest-prefix-hits";
    }
    return "?";
}

void
PreemptionStats::merge(const PreemptionStats &other)
{
    preemptions += other.preemptions;
    restores += other.restores;
    recompute_tokens += other.recompute_tokens;
    restore_prefill_tokens += other.restore_prefill_tokens;
}

Scheduler::Scheduler(core::TimingConfig timing, SchedulerConfig cfg)
    : cfg_(cfg), admission_(std::move(timing)),
      queue_(cfg.queue_policy)
{
    if (cfg_.max_batch <= 0)
        throw std::invalid_argument("Scheduler: non-positive max_batch");
}

void
Scheduler::attachObservability(const obs::Observability &obs,
                               int64_t replica_id)
{
    counters_ = obs.counters;
    if (!counters_)
        return;
    const std::string prefix =
        "replica" + std::to_string(replica_id) + ".";
    admit_checks_ = counters_->counter(prefix + "admit_checks");
    admit_denials_ = counters_->counter(prefix + "admit_denials");
    victim_selections_ =
        counters_->counter(prefix + "victim_selections");
}

void
Scheduler::enqueue(Request r)
{
    queued_final_tokens_ += r.finalLen();
    queued_live_tokens_ += r.kvLen();
    queue_.push(std::move(r));
}

Request
Scheduler::pop()
{
    Request r = queue_.pop();
    queued_final_tokens_ -= r.finalLen();
    queued_live_tokens_ -= r.kvLen();
    return r;
}

AdmissionDecision
Scheduler::admit(const std::vector<Request> &active,
                 const Request &candidate) const
{
    const AdmissionDecision d = admitUncounted(active, candidate);
    if (counters_) {
        counters_->add(admit_checks_, 1);
        if (!d.admit)
            counters_->add(admit_denials_, 1);
    }
    return d;
}

AdmissionDecision
Scheduler::admitUncounted(const std::vector<Request> &active,
                          const Request &candidate) const
{
    if (cfg_.mode == SchedulerMode::Reserve)
        return admission_.admit(active, candidate);
    // Optimistic: a request whose *final* context could never fit even
    // on an idle replica must still hard-reject — admitted on its
    // (smaller) current footprint it would grow until no victim set
    // can save it, then cycle through preempt/restore forever.
    if (!admission_.feasibleAlone(candidate))
        return {false,
                "final-length reservation infeasible even alone"};
    // And its worst-case restore (a full final-context prefill) must
    // fit alone too: otherwise a preemption deep into generation
    // would strand the request — permanently denied re-admission and
    // eventually dropped as Rejected with its completed work lost.
    // Only prefill-scratch-heavy systems (eager attention's O(S^2)
    // term) distinguish this from the final-length gate above.
    if (!admission_.restoreFeasibleAlone(candidate))
        return {false,
                "worst-case restore (final-context prefill) "
                "infeasible even alone"};
    return admission_.admitCurrent(active, candidate);
}

bool
Scheduler::nextDecodeTokenFits(const std::vector<Request> &active) const
{
    if (cfg_.mode == SchedulerMode::Reserve)
        return true; // final-length reservations already cover growth
    return admission_.decodeStepFits(active).admit;
}

int64_t
Scheduler::decodeFitRounds(const std::vector<Request> &active,
                           int64_t max_rounds) const
{
    if (cfg_.mode == SchedulerMode::Reserve)
        return max_rounds; // reservations already cover all growth
    return admission_.decodeFitRounds(active, max_rounds);
}

namespace {

/** Shared equal-pressure tie-break: the (progress, arrival, id) total
 *  order, mirroring the ShortestPromptFirst queue tie-break. */
bool
tieBreakPrecedes(const Request &a, const Request &b)
{
    if (a.generated != b.generated)
        return a.generated < b.generated;
    if (a.arrival_seconds != b.arrival_seconds)
        return a.arrival_seconds < b.arrival_seconds;
    return a.id < b.id;
}

} // namespace

size_t
Scheduler::selectVictim(const std::vector<Request> &active) const
{
    if (active.empty())
        throw std::logic_error("Scheduler: victim from an empty batch");
    auto precedes = [&](const Request &a, const Request &b) {
        switch (cfg_.victim_policy) {
          case VictimPolicy::LastAdmitted:
            if (a.last_admit_seconds != b.last_admit_seconds)
                return a.last_admit_seconds > b.last_admit_seconds;
            break;
          case VictimPolicy::ShortestProgress:
            // Primary key == the tie-break's first component.
            break;
          case VictimPolicy::FewestPrefixHitTokens:
            if (a.cached_prompt_len != b.cached_prompt_len)
                return a.cached_prompt_len < b.cached_prompt_len;
            break;
        }
        return tieBreakPrecedes(a, b);
    };
    size_t best = 0;
    for (size_t i = 1; i < active.size(); ++i) {
        if (precedes(active[i], active[best]))
            best = i;
    }
    if (counters_)
        counters_->add(victim_selections_, 1);
    return best;
}

} // namespace serving
} // namespace specontext
