#include "serving/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/elastic_loader.h"
#include "sim/event_clock.h"
#include "util/thread_pool.h"

namespace specontext {
namespace serving {

const char *
scaleActionName(ScaleAction a)
{
    switch (a) {
      case ScaleAction::Attach: return "attach";
      case ScaleAction::WarmComplete: return "warm-complete";
      case ScaleAction::CancelWarming: return "cancel-warming";
      case ScaleAction::Drain: return "drain";
      case ScaleAction::Retire: return "retire";
    }
    return "?";
}

double
replicaWarmupSeconds(const ReplicaConfig &rc, double provision_seconds)
{
    if (!(provision_seconds >= 0.0) ||
        !std::isfinite(provision_seconds))
        throw std::invalid_argument(
            "replicaWarmupSeconds: provision_seconds must be finite "
            "and non-negative");
    const double bw_gbps = rc.timing.hw.pcie_bw_gbps;
    if (!(bw_gbps > 0.0) || !std::isfinite(bw_gbps))
        throw std::invalid_argument(
            "replicaWarmupSeconds: hardware has no positive PCIe "
            "bandwidth to load weights over");
    const int64_t weight_bytes =
        core::TimingEngine::weightFootprintBytes(rc.timing.llm);
    // Charge the footprint through a cold ElasticLoader: express it as
    // KV-token-equivalents, hand the cold loader that selection, and
    // price whatever it says must move. Empty resident sets report the
    // full selection as to-load, so the bill is the whole footprint —
    // by the same set-difference machinery that prices elastic KV
    // movement, not by a parallel formula that could drift from it.
    const int64_t bytes_per_token =
        core::TimingEngine::kvBytesPerTokenPerLayer(rc.timing.llm);
    const int64_t token_equiv =
        (weight_bytes + bytes_per_token - 1) / bytes_per_token;
    model::LayerSelection sel;
    sel.per_head.emplace_back();
    sel.per_head.back().reserve(static_cast<size_t>(token_equiv));
    for (int64_t p = 0; p < token_equiv; ++p)
        sel.per_head.back().push_back(p);
    core::ElasticLoader cold;
    const core::LoadPlan plan = cold.update(sel);
    const double load_bytes =
        static_cast<double>(plan.tokens_to_load) *
        static_cast<double>(bytes_per_token);
    return provision_seconds + load_bytes / (bw_gbps * 1e9);
}

Cluster::Cluster(const core::TimingEngine &engine, ClusterConfig cfg)
    : engine_(engine), cfg_(std::move(cfg))
{
    if (cfg_.replicas.empty())
        throw std::invalid_argument("Cluster: empty fleet");
    for (size_t i = 0; i < cfg_.replicas.size(); ++i) {
        cfg_.replicas[i].id = static_cast<int64_t>(i);
        // Validate every replica config now (throws on wave-only or
        // null systems / bad max_batch), not at first run(). The probe
        // runs unobserved — a throwaway engine must not emit events or
        // resolve counters.
        ReplicaConfig probe_cfg = cfg_.replicas[i];
        probe_cfg.obs = {};
        ReplicaEngine probe(engine_, probe_cfg);
        cfg_.replicas[i].name = probe.config().name;
    }
    if (cfg_.elastic.controller) {
        const ElasticConfig &e = cfg_.elastic;
        if (e.min_replicas < 1)
            throw std::invalid_argument(
                "Cluster: elastic.min_replicas must be >= 1");
        if (e.max_replicas < e.min_replicas)
            throw std::invalid_argument(
                "Cluster: elastic.max_replicas < min_replicas");
        if (cfg_.replicas.size() < e.min_replicas ||
            cfg_.replicas.size() > e.max_replicas)
            throw std::invalid_argument(
                "Cluster: initial fleet size outside elastic "
                "[min_replicas, max_replicas]");
        if (!(e.control_period_seconds > 0.0) ||
            !std::isfinite(e.control_period_seconds))
            throw std::invalid_argument(
                "Cluster: elastic.control_period_seconds must be "
                "positive and finite");
        if (e.template_replica >= cfg_.replicas.size())
            throw std::invalid_argument(
                "Cluster: elastic.template_replica out of range");
        // Validates provision_seconds and the template's PCIe link,
        // and fails fast on shapes whose warmup cannot be priced.
        replicaWarmupSeconds(cfg_.replicas[e.template_replica],
                             e.provision_seconds);
    }
}

ClusterResult
Cluster::run(std::vector<Request> trace) const
{
    sortByArrival(trace);
    const bool elastic = cfg_.elastic.controller != nullptr;
    const double inf = std::numeric_limits<double>::infinity();

    std::vector<std::unique_ptr<ReplicaEngine>> fleet;
    fleet.reserve(cfg_.replicas.size());
    for (const ReplicaConfig &rc : cfg_.replicas) {
        if (cfg_.obs.enabled()) {
            ReplicaConfig observed = rc;
            observed.obs = cfg_.obs;
            fleet.push_back(
                std::make_unique<ReplicaEngine>(engine_, observed));
        } else {
            fleet.push_back(
                std::make_unique<ReplicaEngine>(engine_, rc));
        }
        fleet.back()->setDecodeCostCache(
            cfg_.fast_path.cache_decode_costs);
    }
    Router router(cfg_.router);
    router.attachObservability(cfg_.obs, fleet.size());
    obs::TimeseriesSampler *sampler = cfg_.obs.sampler;

    ClusterResult out;
    size_t next = 0;

    // Per-slot lifecycle. Fixed fleets never leave Live, and retired
    // slots keep their indices — routing, tie-breaks and counter names
    // never shift under scaling.
    enum class Slot { Live, Warming, Draining, Retired };
    std::vector<Slot> slot(fleet.size(), Slot::Live);
    std::vector<double> warm_ready(fleet.size(), 0.0);
    std::vector<double> attach_t(fleet.size(), 0.0);
    std::vector<double> retire_t(fleet.size(), inf);

    // Booking cache for the fast path: a lane's next-event time and
    // admission cap change only when the lane itself steps, receives
    // a delivery, or changes lifecycle state, so with skip-ahead on
    // the loop re-prices dirty lanes instead of calling into all N
    // engines every event. With skip-ahead off every lane is
    // re-priced every event — the pre-fast-path loop, kept verbatim
    // as the benchmark baseline. Cached or re-derived, the booked
    // values are identical, so event order never changes.
    std::vector<double> lane_cap(fleet.size(), inf);
    std::vector<char> lane_dirty(fleet.size(), 1);
    auto countState = [&](Slot s) {
        size_t n = 0;
        for (Slot v : slot)
            n += v == s ? 1 : 0;
        return n;
    };

    // Fleet-shape gauges and scale counters exist only on elastic runs
    // so fixed-fleet registries keep the pre-elastic schema (BENCH_obs
    // byte-stability).
    obs::CounterRegistry *counters =
        elastic ? cfg_.obs.counters : nullptr;
    obs::CounterRegistry::Handle g_live = 0, g_warming = 0,
                                 g_draining = 0, c_ups = 0, c_downs = 0;
    auto publishFleetGauges = [&]() {
        if (!counters)
            return;
        counters->set(g_live,
                      static_cast<int64_t>(countState(Slot::Live)));
        counters->set(g_warming,
                      static_cast<int64_t>(countState(Slot::Warming)));
        counters->set(g_draining,
                      static_cast<int64_t>(countState(Slot::Draining)));
    };
    if (counters) {
        g_live = counters->gauge("cluster.live_replicas");
        g_warming = counters->gauge("cluster.warming_replicas");
        g_draining = counters->gauge("cluster.draining_replicas");
        c_ups = counters->counter("cluster.scale_ups");
        c_downs = counters->counter("cluster.scale_downs");
        publishFleetGauges();
    }

    sim::EventClock clock(fleet.size());
    clock.attachObservability(cfg_.obs);

    auto scaleEvent = [&](double t, ScaleAction a, size_t i) {
        const size_t live_after = countState(Slot::Live);
        out.scale_events.push_back(
            {t, a, static_cast<int64_t>(i), live_after});
        OBS_EVENT(cfg_.obs.trace, obs::EventType::FleetScale, t,
                  static_cast<int32_t>(i), int64_t{-1},
                  static_cast<int64_t>(a),
                  static_cast<int64_t>(live_after));
        publishFleetGauges();
    };

    // Replicas currently accepting new work. The set changes only on
    // lifecycle transitions (warm-complete, drain, retire, attach), so
    // it is cached in a reusable buffer instead of rebuilt per routed
    // arrival — fixed fleets build it exactly once.
    std::vector<size_t> routable;
    bool routable_stale = true;
    auto routableSet = [&]() -> const std::vector<size_t> & {
        if (routable_stale) {
            routable.clear();
            for (size_t i = 0; i < slot.size(); ++i) {
                if (slot[i] == Slot::Live)
                    routable.push_back(i);
            }
            routable_stale = false;
        }
        return routable;
    };

    // Route every arrival at or before t, in arrival order, against
    // the fleet's current state. Called both from the event loop (when
    // the next arrival is the earliest event) and from inside a
    // replica's step (a prefill advanced its clock past arrivals).
    auto routeUpTo = [&](double t) {
        while (next < trace.size() &&
               trace[next].arrival_seconds <= t) {
            const size_t target =
                router.route(trace[next], fleet, routableSet());
            OBS_EVENT(cfg_.obs.trace, obs::EventType::RouterPlace,
                      trace[next].arrival_seconds,
                      static_cast<int32_t>(target), trace[next].id,
                      trace[next].prompt_len,
                      static_cast<int64_t>(cfg_.router.policy));
            out.placements.push_back(
                {trace[next].id, static_cast<int64_t>(target)});
            // Moved, not copied: prompt_tokens can be kilobytes per
            // request and the slot is never read again.
            fleet[target]->deliver(std::move(trace[next]));
            lane_dirty[target] = 1;
            ++next;
        }
    };

    auto attachReplica = [&](double t) {
        ReplicaConfig rc = cfg_.replicas[cfg_.elastic.template_replica];
        rc.id = static_cast<int64_t>(fleet.size());
        rc.name.clear(); // regenerate "replica<id>(...)" for this slot
        rc.obs = cfg_.obs.enabled() ? cfg_.obs : obs::Observability{};
        const double warmup =
            replicaWarmupSeconds(rc, cfg_.elastic.provision_seconds);
        fleet.push_back(std::make_unique<ReplicaEngine>(engine_, rc));
        fleet.back()->setDecodeCostCache(
            cfg_.fast_path.cache_decode_costs);
        clock.addLane();
        slot.push_back(Slot::Warming);
        routable_stale = true;
        warm_ready.push_back(t + warmup);
        attach_t.push_back(t);
        retire_t.push_back(inf);
        lane_cap.push_back(inf);
        lane_dirty.push_back(1);
        if (counters)
            counters->add(c_ups, 1);
        scaleEvent(t, ScaleAction::Attach, fleet.size() - 1);
    };

    auto retireSlot = [&](double t, size_t i, ScaleAction how) {
        slot[i] = Slot::Retired;
        routable_stale = true;
        clock.retireLane(i);
        retire_t[i] = t;
        scaleEvent(t, how, i);
    };

    auto scaleDownOne = [&](double t) {
        if (counters)
            counters->add(c_downs, 1);
        // Cancel the youngest warming replica first: reclaiming a
        // machine that never served is strictly cheaper than draining
        // one that does.
        for (size_t k = slot.size(); k-- > 0;) {
            if (slot[k] == Slot::Warming) {
                retireSlot(t, k, ScaleAction::CancelWarming);
                return;
            }
        }
        // Then drain the highest-index live replica — the low-index
        // initial slots stay the long-lived core of the fleet, which
        // keeps prefix-affinity homes and tie-breaks maximally stable.
        for (size_t k = slot.size(); k-- > 0;) {
            if (slot[k] == Slot::Live) {
                slot[k] = Slot::Draining;
                routable_stale = true;
                lane_dirty[k] = 1;
                scaleEvent(t, ScaleAction::Drain, k);
                if (fleet[k]->outstanding() == 0)
                    retireSlot(t, k, ScaleAction::Retire);
                return;
            }
        }
    };

    auto controlTick = [&](double t) {
        FleetState s;
        s.now_seconds = t;
        s.live = countState(Slot::Live);
        s.warming = countState(Slot::Warming);
        s.draining = countState(Slot::Draining);
        s.min_replicas = cfg_.elastic.min_replicas;
        s.max_replicas = cfg_.elastic.max_replicas;
        for (size_t i = 0; i < fleet.size(); ++i) {
            if (slot[i] == Slot::Live || slot[i] == Slot::Draining) {
                s.queued += fleet[i]->waiting();
                s.in_flight += fleet[i]->inFlight();
            }
        }
        const int delta = cfg_.elastic.controller->control(s);
        // Clamp so live + warming (the capacity that will serve) stays
        // inside [min, max]; draining replicas are already spent.
        const int64_t cap = static_cast<int64_t>(s.live + s.warming);
        const int64_t want = std::min(
            static_cast<int64_t>(cfg_.elastic.max_replicas),
            std::max(static_cast<int64_t>(cfg_.elastic.min_replicas),
                     cap + static_cast<int64_t>(delta)));
        for (int64_t k = cap; k < want; ++k)
            attachReplica(t);
        for (int64_t k = cap; k > want; --k)
            scaleDownOne(t);
    };

    // Simulator fast path. Skip-ahead lets the fired replica run bulk
    // pure-decode rounds up to the earliest boundary this loop owns;
    // era stepping (threads > 1 or shards > 0) additionally
    // dispatches *all* eligible lanes' bulk runs in one pass when
    // nothing below the barrier could interact — sharded across a
    // worker pool when the machine has cores for it, inline
    // otherwise. Era dispatch requires observability off: the trace
    // ring / counter registry / sampler are intentionally
    // unsynchronized, so with hooks attached the cluster serializes
    // (same results — pure-decode rounds are engine-local either way).
    const bool skip_ahead = cfg_.fast_path.skip_ahead;
    const bool era_mode =
        skip_ahead && !cfg_.obs.enabled() &&
        (cfg_.fast_path.threads > 1 || cfg_.fast_path.shards > 0);
    // Workers are capped at the hardware concurrency: an
    // oversubscribed spin-join pool costs more than it buys, and with
    // one effective worker the era's shards run inline — the era
    // structure (one scan per fleet of bulk windows) is the win, the
    // pool is just how multi-core hosts execute it.
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    const size_t era_workers =
        era_mode ? std::min(cfg_.fast_path.threads, hw) : 1;
    const size_t era_shards =
        cfg_.fast_path.shards > 0 ? cfg_.fast_path.shards
                                  : std::max<size_t>(era_workers, 1);
    util::ThreadPool *pool = nullptr;
    std::unique_ptr<util::ThreadPool> pool_storage;
    if (era_workers > 1) {
        pool_storage =
            std::make_unique<util::ThreadPool>(era_workers);
        pool = pool_storage.get();
    }
    std::vector<size_t> era_lanes;
    // Shard job context for the pool's allocation-free dispatch; the
    // struct lives across iterations, refreshed per era.
    struct EraJob
    {
        std::vector<std::unique_ptr<ReplicaEngine>> *fleet;
        const std::vector<size_t> *lanes;
        double barrier;
        size_t shards;
    } era_job{&fleet, &era_lanes, 0.0, era_shards};

    // One std::function conversion for the whole run: passing the
    // routing lambda to ReplicaEngine::step by const reference
    // otherwise constructs (and heap-allocates) a fresh wrapper per
    // admission-capable step — a top-three allocation site at
    // million-request scale.
    const ReplicaEngine::IngestFn ingest_fn = routeUpTo;

    // Event-driven main loop: advance whichever comes first, the next
    // unrouted arrival, the next control tick (elastic only) or the
    // earliest replica event — never lock-stepping the fleet. At equal
    // instants arrivals route first (so the controller and every
    // stepping replica see state no older than the instant), then the
    // controller runs, then replicas step.
    double t_ctrl =
        elastic ? cfg_.elastic.control_period_seconds : inf;
    while (true) {
        // Fleet-internal skip-ahead caps: no lane may bulk-run past
        // the earliest instant at which any OTHER lane could run an
        // admission round, because admission prefills invoke routeUpTo
        // — which reads every replica's state — and the router must
        // see each peer exactly where one-round-per-step execution
        // would have it. Tracking the two smallest caps lets the fired
        // lane exclude its own (a lane with queued work reports now()
        // and would otherwise never bulk at all).
        double cap_min1 = inf, cap_min2 = inf;
        size_t cap_min1_lane = fleet.size();
        // The same pass folds the earliest-event pick (identical
        // comparison order and tie-break as EventClock::earliestLane:
        // strict <, lowest index wins, lane 0 when all idle), so a
        // skip-ahead round prices every lane exactly once. The
        // pre-fast-path loop keeps earliest()+fire() (two scans)
        // verbatim as the benchmark baseline.
        double ev_min = inf;
        size_t ev_lane = 0;
        for (size_t i = 0; i < fleet.size(); ++i) {
            if (slot[i] == Slot::Retired)
                continue;
            if (slot[i] == Slot::Warming) {
                clock.set(i, warm_ready[i]);
                if (skip_ahead && warm_ready[i] < ev_min) {
                    ev_min = warm_ready[i];
                    ev_lane = i;
                }
                continue;
            }
            if (skip_ahead) {
                if (lane_dirty[i]) {
                    clock.set(i, fleet[i]->nextEventSeconds());
                    lane_cap[i] =
                        fleet[i]->nextPossibleAdmissionSeconds();
                    lane_dirty[i] = 0;
                }
            } else {
                clock.set(i, fleet[i]->nextEventSeconds());
                continue;
            }
            const double t_i = clock.at(i);
            if (t_i < ev_min) {
                ev_min = t_i;
                ev_lane = i;
            }
            const double cap = lane_cap[i];
            if (cap < cap_min1) {
                cap_min2 = cap_min1;
                cap_min1 = cap;
                cap_min1_lane = i;
            } else if (cap < cap_min2) {
                cap_min2 = cap;
            }
        }
        const double t_replica = skip_ahead ? ev_min : clock.earliest();
        const double t_arrival = next < trace.size()
                                     ? trace[next].arrival_seconds
                                     : inf;
        // Control ticks live only while there is work to govern —
        // otherwise they would keep a drained fleet ticking forever.
        const double t_control =
            elastic && (next < trace.size() || std::isfinite(t_replica))
                ? t_ctrl
                : inf;
        if (!std::isfinite(t_replica) && !std::isfinite(t_arrival))
            break; // fleet drained, trace exhausted
        // Time-series rows are cut as simulated time passes each
        // cadence point — before the round runs, so a row reflects
        // the fleet's state entering that instant.
        if (sampler) {
            const double t_now =
                std::min(std::min(t_replica, t_arrival), t_control);
            if (std::isfinite(t_now))
                sampler->sample(t_now);
        }
        if (t_arrival <= std::min(t_replica, t_control)) {
            // Arrivals route before any replica reaches t_arrival, so
            // the same-instant ordering matches the single server's
            // ingest-then-admit discipline.
            routeUpTo(t_arrival);
            continue;
        }
        if (t_control <= t_replica) {
            controlTick(t_control);
            t_ctrl += cfg_.elastic.control_period_seconds;
            continue;
        }
        // Skip-ahead horizon: every boundary this loop owns that a
        // bulk-stepping replica must not cross — the next unrouted
        // arrival (routing reads all replica states), the next control
        // tick (the controller polls gauges), and the next sampler
        // cadence crossing (rows snapshot the registry).
        double horizon = -inf;
        if (skip_ahead) {
            horizon = std::min(t_arrival, t_control);
            if (sampler)
                horizon =
                    std::min(horizon, sampler->nextSampleSeconds());
        }
        // Era stepping: when every lane with an event below the
        // barrier is an independently advancing pure-decode lane,
        // their bulk runs cannot interact — no routing, no admission,
        // no shared observability — so one scan dispatches all of
        // them through their windows and joins. The barrier includes
        // every lane's admission cap, so a lane about to admit (cap
        // == its event) is simply above the barrier rather than
        // disqualifying; it fires sequentially right after the join.
        // Warming lanes below the barrier are fine to leave booked
        // (their WarmComplete fires right after the join, at its own
        // instant); a draining lane below the barrier falls back to
        // the sequential path, which preserves scale-event order
        // exactly. Every lane stops at the same uniform barrier the
        // sequential loop would impose on it (never its own widened
        // cap_min2 horizon: a peer's recomputed cap can land between
        // cap_min1 and cap_min2, and overrunning it would let this
        // lane's retirements be visible to a routing decision that
        // must not see them yet), so chunk boundaries differ from
        // lane-at-a-time stepping but every simulated quantity is
        // bit-identical.
        if (era_mode && std::isfinite(t_replica)) {
            const double barrier = std::min(horizon, cap_min1);
            bool era_ok = true;
            size_t bulk_lanes = 0;
            for (size_t i = 0; i < fleet.size(); ++i) {
                if (slot[i] == Slot::Retired ||
                    !(clock.at(i) < barrier))
                    continue;
                if (slot[i] == Slot::Warming)
                    continue;
                if (slot[i] != Slot::Live ||
                    !fleet[i]->pureDecodeReady()) {
                    era_ok = false;
                    break;
                }
                ++bulk_lanes;
            }
            if (era_ok && bulk_lanes >= 2) {
                era_lanes.clear();
                for (size_t i = 0; i < fleet.size(); ++i) {
                    if (slot[i] != Slot::Live ||
                        !(clock.at(i) < barrier) ||
                        !fleet[i]->pureDecodeReady())
                        continue;
                    lane_dirty[i] = 1;
                    era_lanes.push_back(i);
                }
                era_job.barrier = barrier;
                if (!pool) {
                    // One effective worker: the shards run inline in
                    // ascending order — same windows, same barrier,
                    // no pool traffic.
                    for (size_t i : era_lanes)
                        fleet[i]->step(nullptr, barrier);
                } else {
                    pool->runShards(
                        era_shards,
                        +[](void *c, size_t s) {
                            auto *j = static_cast<EraJob *>(c);
                            const size_t n = j->lanes->size();
                            const size_t per =
                                (n + j->shards - 1) / j->shards;
                            const size_t lo = s * per;
                            const size_t hi =
                                std::min(n, lo + per);
                            for (size_t k = lo; k < hi; ++k)
                                (*j->fleet)[(*j->lanes)[k]]->step(
                                    nullptr, j->barrier);
                        },
                        &era_job);
                }
                continue; // re-book every lane at its new event
            }
        }
        size_t lane;
        if (skip_ahead) {
            lane = ev_lane;
            clock.fireLane(lane);
        } else {
            lane = clock.fire();
        }
        if (slot[lane] == Slot::Warming) {
            // Weight load finished: the replica joins the routable set
            // (its prefix cache starts cold; arrivals reach it from
            // the next routing decision on).
            slot[lane] = Slot::Live;
            routable_stale = true;
            lane_dirty[lane] = 1;
            scaleEvent(warm_ready[lane], ScaleAction::WarmComplete,
                       lane);
            continue;
        }
        // The fired lane's bulk horizon additionally respects every
        // OTHER lane's admission cap (its own is excluded — a lane
        // with queued work reports now() and still gets to run its
        // admission round plus any pure-decode rounds that follow).
        // Draining lanes step one round at a time even under
        // skip-ahead: their Retire transition must interleave with
        // other lanes' scale events in exact simulated-time order, and
        // a bulk run would let one lane race past another's retirement
        // instant before the log catches up.
        double lane_horizon = horizon;
        if (skip_ahead)
            lane_horizon = std::min(
                lane_horizon,
                lane == cap_min1_lane ? cap_min2 : cap_min1);
        fleet[lane]->step(ingest_fn, slot[lane] == Slot::Draining
                                         ? -inf
                                         : lane_horizon);
        lane_dirty[lane] = 1;
        // Drain-before-retire: a draining replica's lane retires the
        // moment it owes nothing more.
        if (slot[lane] == Slot::Draining &&
            fleet[lane]->outstanding() == 0)
            retireSlot(fleet[lane]->now(), lane, ScaleAction::Retire);
    }

    // Aggregate: per-replica results plus the fleet-wide roll-up.
    out.per_replica.reserve(fleet.size());
    for (const auto &rep : fleet) {
        out.replica_names.push_back(rep->config().name);
        out.per_replica.push_back(rep->takeResult());
    }
    for (const ServeResult &r : out.per_replica) {
        out.fleet.metrics.merge(r.metrics);
        out.fleet.rejected.insert(out.fleet.rejected.end(),
                                  r.rejected.begin(), r.rejected.end());
        out.fleet.iterations += r.iterations;
        out.fleet.peak_in_flight += r.peak_in_flight;
        out.fleet.prefix.merge(r.prefix);
        out.fleet.preempt.merge(r.preempt);
        out.fleet.makespan_seconds =
            std::max(out.fleet.makespan_seconds, r.makespan_seconds);
    }
    // Cost accounting: every slot is paid for from attach (run start
    // for the initial fleet) to retirement, or to the fleet makespan
    // while still attached — warmup included, a provisioning replica
    // is billed before it serves.
    for (size_t i = 0; i < slot.size(); ++i) {
        const double end = std::isfinite(retire_t[i])
                               ? retire_t[i]
                               : out.fleet.makespan_seconds;
        out.replica_seconds += std::max(0.0, end - attach_t[i]);
    }
    // Final flush: one last row at the fleet makespan — including a
    // partial row when the run ends between cadence instants — so the
    // series always covers the whole run.
    if (sampler)
        sampler->flush(out.fleet.makespan_seconds);
    return out;
}

} // namespace serving
} // namespace specontext
