#include "serving/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "sim/event_clock.h"

namespace specontext {
namespace serving {

Cluster::Cluster(const core::TimingEngine &engine, ClusterConfig cfg)
    : engine_(engine), cfg_(std::move(cfg))
{
    if (cfg_.replicas.empty())
        throw std::invalid_argument("Cluster: empty fleet");
    for (size_t i = 0; i < cfg_.replicas.size(); ++i) {
        cfg_.replicas[i].id = static_cast<int64_t>(i);
        // Validate every replica config now (throws on wave-only or
        // null systems / bad max_batch), not at first run(). The probe
        // runs unobserved — a throwaway engine must not emit events or
        // resolve counters.
        ReplicaConfig probe_cfg = cfg_.replicas[i];
        probe_cfg.obs = {};
        ReplicaEngine probe(engine_, probe_cfg);
        cfg_.replicas[i].name = probe.config().name;
    }
}

ClusterResult
Cluster::run(std::vector<Request> trace) const
{
    sortByArrival(trace);

    std::vector<std::unique_ptr<ReplicaEngine>> fleet;
    fleet.reserve(cfg_.replicas.size());
    for (const ReplicaConfig &rc : cfg_.replicas) {
        if (cfg_.obs.enabled()) {
            ReplicaConfig observed = rc;
            observed.obs = cfg_.obs;
            fleet.push_back(
                std::make_unique<ReplicaEngine>(engine_, observed));
        } else {
            fleet.push_back(
                std::make_unique<ReplicaEngine>(engine_, rc));
        }
    }
    Router router(cfg_.router);
    router.attachObservability(cfg_.obs, fleet.size());
    obs::TimeseriesSampler *sampler = cfg_.obs.sampler;

    ClusterResult out;
    size_t next = 0;

    // Route every arrival at or before t, in arrival order, against
    // the fleet's current state. Called both from the event loop (when
    // the next arrival is the earliest event) and from inside a
    // replica's step (a prefill advanced its clock past arrivals).
    auto routeUpTo = [&](double t) {
        while (next < trace.size() &&
               trace[next].arrival_seconds <= t) {
            const size_t target = router.route(trace[next], fleet);
            OBS_EVENT(cfg_.obs.trace, obs::EventType::RouterPlace,
                      trace[next].arrival_seconds,
                      static_cast<int32_t>(target), trace[next].id,
                      trace[next].prompt_len,
                      static_cast<int64_t>(cfg_.router.policy));
            out.placements.push_back(
                {trace[next].id, static_cast<int64_t>(target)});
            // Moved, not copied: prompt_tokens can be kilobytes per
            // request and the slot is never read again.
            fleet[target]->deliver(std::move(trace[next]));
            ++next;
        }
    };

    // Event-driven main loop: advance whichever comes first, the next
    // unrouted arrival or the earliest replica event — never
    // lock-stepping the fleet.
    sim::EventClock clock(fleet.size());
    clock.attachObservability(cfg_.obs);
    while (true) {
        for (size_t i = 0; i < fleet.size(); ++i)
            clock.set(i, fleet[i]->nextEventSeconds());
        const double t_replica = clock.earliest();
        const double t_arrival =
            next < trace.size()
                ? trace[next].arrival_seconds
                : std::numeric_limits<double>::infinity();
        if (!std::isfinite(t_replica) && !std::isfinite(t_arrival))
            break; // fleet drained, trace exhausted
        // Time-series rows are cut as simulated time passes each
        // cadence point — before the round runs, so a row reflects
        // the fleet's state entering that instant.
        if (sampler) {
            const double t_now = std::min(t_replica, t_arrival);
            if (std::isfinite(t_now))
                sampler->sample(t_now);
        }
        if (t_arrival <= t_replica) {
            // Arrivals route before any replica reaches t_arrival, so
            // the same-instant ordering matches the single server's
            // ingest-then-admit discipline.
            routeUpTo(t_arrival);
            continue;
        }
        fleet[clock.fire()]->step(routeUpTo);
    }

    // Aggregate: per-replica results plus the fleet-wide roll-up.
    out.per_replica.reserve(fleet.size());
    for (const auto &rep : fleet) {
        out.replica_names.push_back(rep->config().name);
        out.per_replica.push_back(rep->takeResult());
    }
    for (const ServeResult &r : out.per_replica) {
        out.fleet.metrics.merge(r.metrics);
        out.fleet.rejected.insert(out.fleet.rejected.end(),
                                  r.rejected.begin(), r.rejected.end());
        out.fleet.iterations += r.iterations;
        out.fleet.peak_in_flight += r.peak_in_flight;
        out.fleet.prefix.merge(r.prefix);
        out.fleet.preempt.merge(r.preempt);
        out.fleet.makespan_seconds =
            std::max(out.fleet.makespan_seconds, r.makespan_seconds);
    }
    // Final flush: one last row at the fleet makespan so the series
    // always covers the whole run.
    if (sampler)
        sampler->sample(out.fleet.makespan_seconds);
    return out;
}

} // namespace serving
} // namespace specontext
