/**
 * @file
 * Simulator fast-path knobs shared by serving::Server and
 * serving::Cluster. Both defaults are chosen so that flipping nothing
 * is already fast AND bit-exact:
 *
 *  - skip_ahead (default on) lets a replica execute runs of
 *    pure-decode rounds inside one ReplicaEngine::step() call instead
 *    of returning to the event loop per token. The driver bounds each
 *    run by the next boundary it owns (unrouted arrival, control
 *    tick, sampler cadence crossing), and the engine stops on its own
 *    at any internal boundary (admission work, preemption re-entry,
 *    drain) — so every simulated quantity is bit-identical to
 *    one-round-per-step execution; tests/test_simfast.cc pins it.
 *    Turning it off restores the literal one-event-at-a-time loop
 *    (the pre-fast-path baseline bench_simperf measures against).
 *
 *  - cache_decode_costs (default on) gives every replica lane a
 *    core::DecodeEvaluator: the decode-cost model's pure per-config
 *    derivations (cost-model construction, memory-model geometry,
 *    validation) are built once per (replica, batch size) instead of
 *    on every simulated decode iteration. The evaluator runs the same
 *    arithmetic on the same values, so every simulated duration is
 *    bit-identical; turning it off restores the literal
 *    re-derive-per-iteration pre-fast-path cost profile.
 *
 *  - threads (default 1) and shards (default 0) together enable *era
 *    stepping* in Cluster::run: when every lane with an event below
 *    the router barrier is an independently advancing pure-decode
 *    lane, one booking scan dispatches ALL of them through their bulk
 *    windows — amortizing the per-event fleet scan over the whole
 *    era — instead of firing one lane per scan. Eligible lanes are
 *    partitioned into shards; a worker pool (capped at the machine's
 *    hardware concurrency) steps the shards concurrently, and with
 *    one effective worker the shards run inline on the calling
 *    thread — same structure, no pool, so a sharded run on a small
 *    host is still strictly cheaper than lane-at-a-time stepping.
 *    Pure-decode rounds touch only their own engine and every lane
 *    stops at the same barrier the sequential loop would impose, so
 *    any interleaving gives bit-identical results; the merge back
 *    into the event loop is a full join, and lane order afterwards is
 *    the clock's deterministic earliest-lane scan as ever. Era
 *    dispatch requires observability off (the trace ring / counter
 *    registry / sampler are intentionally unsynchronized); with hooks
 *    attached the cluster silently serializes — same simulated
 *    results, single thread (tests/test_simfast.cc pins the fallback
 *    including counter equality).
 */
#pragma once

#include <cstddef>

namespace specontext {
namespace serving {

/** Engine-speed knobs; simulated results never depend on them. */
struct SimFastPath
{
    /** Bulk pure-decode stepping between external boundaries. */
    bool skip_ahead = true;
    /** Cached per-lane decode-cost evaluator (bit-identical). */
    bool cache_decode_costs = true;
    /** Worker threads for era (sharded parallel) replica stepping
     *  (<= 1 = no workers; era stepping still engages when shards
     *  > 0). Clamped to the hardware concurrency. Ignored
     *  (serialized) while observability hooks are attached. */
    size_t threads = 1;
    /** Shard count for era stepping: eligible lanes are split into
     *  this many contiguous groups per era. 0 = auto (one shard per
     *  effective worker). Any value > 0 turns era stepping on even
     *  with threads <= 1 (the shards then run inline). The shard
     *  count never changes simulated results — only which thread
     *  steps which lane. */
    size_t shards = 0;
};

} // namespace serving
} // namespace specontext
