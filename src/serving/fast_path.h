/**
 * @file
 * Simulator fast-path knobs shared by serving::Server and
 * serving::Cluster. Both defaults are chosen so that flipping nothing
 * is already fast AND bit-exact:
 *
 *  - skip_ahead (default on) lets a replica execute runs of
 *    pure-decode rounds inside one ReplicaEngine::step() call instead
 *    of returning to the event loop per token. The driver bounds each
 *    run by the next boundary it owns (unrouted arrival, control
 *    tick, sampler cadence crossing), and the engine stops on its own
 *    at any internal boundary (admission work, preemption re-entry,
 *    drain) — so every simulated quantity is bit-identical to
 *    one-round-per-step execution; tests/test_simfast.cc pins it.
 *    Turning it off restores the literal one-event-at-a-time loop
 *    (the pre-fast-path baseline bench_simperf measures against).
 *
 *  - cache_decode_costs (default on) gives every replica lane a
 *    core::DecodeEvaluator: the decode-cost model's pure per-config
 *    derivations (cost-model construction, memory-model geometry,
 *    validation) are built once per (replica, batch size) instead of
 *    on every simulated decode iteration. The evaluator runs the same
 *    arithmetic on the same values, so every simulated duration is
 *    bit-identical; turning it off restores the literal
 *    re-derive-per-iteration pre-fast-path cost profile.
 *
 *  - threads (default 1) steps independent pure-decode replica lanes
 *    concurrently between router/control barriers in Cluster::run.
 *    Pure-decode rounds touch only their own engine, so any
 *    interleaving gives bit-identical results; the merge back into
 *    the event loop is a full join, and lane order afterwards is the
 *    clock's deterministic earliest-lane scan as ever. Parallel
 *    dispatch requires observability off (the trace ring / counter
 *    registry are intentionally unsynchronized); with hooks attached
 *    the cluster silently serializes — same results, single thread.
 */
#pragma once

#include <cstddef>

namespace specontext {
namespace serving {

/** Engine-speed knobs; simulated results never depend on them. */
struct SimFastPath
{
    /** Bulk pure-decode stepping between external boundaries. */
    bool skip_ahead = true;
    /** Cached per-lane decode-cost evaluator (bit-identical). */
    bool cache_decode_costs = true;
    /** Worker threads for parallel replica stepping (<= 1 = off).
     *  Ignored (serialized) while observability hooks are attached. */
    size_t threads = 1;
};

} // namespace serving
} // namespace specontext
