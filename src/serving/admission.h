/**
 * @file
 * Admission control for the continuous-batching server.
 *
 * Before a waiting request joins the in-flight batch, its KV-cache
 * reservation — the footprint it will have grown to at its *final*
 * length, not its current one — must fit alongside every other
 * in-flight reservation. Admitting on current lengths would deadlock:
 * all in-flight requests grow every iteration and none can be evicted,
 * so the controller books capacity pessimistically up front, the same
 * discipline vLLM-style servers apply.
 *
 * The capacity test itself is polymorphic: the controller delegates to
 * core::SystemModel::admit(), so every system brings its own memory
 * discipline —
 *  - SpeContext admits through sim::MemoryModel's Eq. 7 headroom
 *    queries (some offload level 0..L must fit, Algorithm 1/2's
 *    invariant) plus the CPU-DRAM ceiling on offloaded KV;
 *  - full-attention systems admit iff 1.3x weights + total reserved KV
 *    fit in HBM (plus eager's prefill attention scratch), with the
 *    optional HF-Accelerate CPU spill gated by
 *    SystemOptions::allow_full_attention_offload;
 *  - permanent-eviction systems (H2O, StreamingLLM) reserve only
 *    min(final length, budget) tokens per request.
 */
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "core/timing_engine.h"
#include "serving/request.h"

namespace specontext {
namespace serving {

/** Outcome of one admission test. */
using AdmissionDecision = core::AdmissionDecision;

/** Memory-model-driven admission policy. */
class AdmissionController
{
  public:
    /**
     * @throws std::invalid_argument when cfg.system is null or cannot
     * be continuously batched (per-layer retrieve-then-load baselines).
     */
    explicit AdmissionController(core::TimingConfig cfg);

    const core::TimingConfig &config() const { return cfg_; }

    /**
     * True when `o` is guaranteed to decide every admission question
     * exactly as this controller: the same SystemModel instance over a
     * fieldwise-equal TimingConfig. Every input any system's admit()
     * can read is covered, so a router pricing one candidate against a
     * homogeneous fleet may reuse the first lane's verdict for the
     * rest instead of re-deriving it per lane.
     */
    bool sameAdmissionShape(const AdmissionController &o) const
    {
        const core::SystemModel *a = cfg_.system.get();
        const core::SystemModel *b = o.cfg_.system.get();
        // Distinct instances still decide identically when they were
        // created under the same registry key with equal options —
        // systems are stateless pure functions of their options, and
        // fleets commonly create one instance per replica.
        // name() pointers compare equal across instances of one class
        // (same string literal); strcmp only breaks the rare tie.
        const bool same_system =
            a == b || ((a->name() == b->name() ||
                        std::strcmp(a->name(), b->name()) == 0) &&
                       a->options() == b->options());
        return same_system && cfg_.llm == o.cfg_.llm &&
               cfg_.hw == o.cfg_.hw && cfg_.batch == o.cfg_.batch &&
               cfg_.prompt_len == o.cfg_.prompt_len &&
               cfg_.gen_len == o.cfg_.gen_len;
    }

    /** Eq. 6-8 memory-model instance over this config (requests = 1;
     *  headroom queries take explicit request counts). Built on
     *  demand — only the SpeContext admission path prices through it,
     *  via SystemModel::admit(); exposed so tests can cross-check
     *  admission decisions against the raw Eq. 7 queries. */
    sim::MemoryModel memoryModel() const
    {
        return sim::MemoryModel(
            core::TimingEngine::memoryInputsFor(cfg_, 1));
    }

    /** Can `candidate` join `in_flight` without oversubscribing?
     *  Pessimistic (Reserve) discipline: every request is priced at
     *  its final-length reservation. */
    AdmissionDecision admit(const std::vector<Request> &in_flight,
                            const Request &candidate) const;

    /**
     * Optimistic sibling of admit(): price the batch at *current* KV
     * lengths — in-flight requests at kvLen(), the candidate at its
     * restore length (prompt plus any generated tokens it must
     * recompute after a preemption). Admitting this way can
     * oversubscribe later as contexts grow; the serving::Scheduler
     * pairs it with decodeStepFits() + preemption to stay sound.
     */
    AdmissionDecision admitCurrent(const std::vector<Request> &in_flight,
                                   const Request &candidate) const;

    /** Can every in-flight request grow one more decode token (each at
     *  kvLen() + 1) under the system's memory discipline? The
     *  preemption trigger of Optimistic scheduling; delegates to
     *  core::SystemModel::fitsCurrent(). */
    AdmissionDecision decodeStepFits(
        const std::vector<Request> &in_flight) const;

    /**
     * How many consecutive future decode rounds are guaranteed to pass
     * decodeStepFits() from the current state, assuming the batch
     * composition does not change? Round j (0-based) prices every
     * context at kvLen() + 1 + j — the exact decodeStepFits() compare
     * the scheduler would run at that round's entry — so the returned
     * count n means rounds 0..n-1 are preemption-free and round n (if
     * n < max_rounds) is the predicted first failure; the caller must
     * still re-run the genuine per-round check there. Found by
     * galloping + bisection (O(log max_rounds) probes), which REQUIRES
     * the system's fit frontier to be monotone under uniform growth:
     * once a length vector fails, every elementwise-larger one fails
     * too. Every registry system satisfies this — their admit() tests
     * only tighten as r/s_max/total-KV grow. Returns max_rounds for an
     * empty batch (vacuously fits).
     */
    int64_t decodeFitRounds(const std::vector<Request> &in_flight,
                            int64_t max_rounds) const;

    /** Does the candidate fit with an otherwise idle server? A false
     *  here means the request can never be served (hard reject). */
    bool feasibleAlone(const Request &candidate) const;

    /** Would the candidate's *worst-case restore* fit alone — a
     *  prefill of its full final context (prompt + every generated
     *  token recomputed at once)? Distinct from feasibleAlone() only
     *  for systems whose prefill cost grows with the prefilled span
     *  (eager attention's O(S^2) scratch); Optimistic scheduling
     *  gates admission on it so a preempted request can always be
     *  restored rather than silently dropped mid-generation. */
    bool restoreFeasibleAlone(const Request &candidate) const;

  private:
    core::TimingConfig cfg_;
    /** Admission pricer from SystemModel::makeAdmissionEvaluator(),
     *  bound to cfg_ — bit-identical to the per-call system methods,
     *  with per-config setup (memory-model construction) hoisted out
     *  of the probe path. Mutable: probes are logically const but the
     *  evaluator may cache. Not thread-safe, like the evaluator. */
    mutable std::unique_ptr<core::AdmissionEvaluator> eval_;
    /** Reused length buffer for probe vectors (amortizes the per-call
     *  allocation the serving loop used to pay millions of times). */
    mutable std::vector<int64_t> lens_scratch_;
};

} // namespace serving
} // namespace specontext
