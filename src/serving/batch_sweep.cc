#include "serving/batch_sweep.h"

#include <stdexcept>

namespace specontext {
namespace serving {

std::vector<Workload>
paperWorkloads()
{
    return {
        {2048, 16384},
        {2048, 32768},
        {16384, 2048},
        {32768, 2048},
    };
}

std::vector<int64_t>
paperBatchSizes()
{
    return {1, 4, 6, 8, 16, 32, 64};
}

BatchSweepResult
sweepBatches(const core::TimingEngine &engine, core::TimingConfig base,
             const std::vector<int64_t> &batches)
{
    BatchSweepResult out;
    double best_tp = -1.0;
    for (int64_t b : batches) {
        base.batch = b;
        BatchPoint p;
        p.batch = b;
        p.result = engine.simulate(base);
        if (!p.result.oom && p.result.throughput > best_tp) {
            best_tp = p.result.throughput;
            out.best = static_cast<int64_t>(out.points.size());
        }
        out.points.push_back(std::move(p));
    }
    return out;
}

double
waveThroughput(const core::TimingEngine &engine, core::TimingConfig base,
               int64_t total_requests, int64_t max_batch)
{
    if (total_requests <= 0 || max_batch <= 0)
        throw std::invalid_argument("waveThroughput: non-positive counts");
    double total_seconds = 0.0;
    int64_t total_tokens = 0;
    int64_t remaining = total_requests;
    while (remaining > 0) {
        const int64_t wave = std::min(remaining, max_batch);
        base.batch = wave;
        const core::TimingResult r = engine.simulate(base);
        if (r.oom)
            return 0.0;
        total_seconds += r.prefill_seconds + r.decode_seconds;
        total_tokens += wave * base.gen_len;
        remaining -= wave;
    }
    // A degenerate run (e.g. gen_len == 0) produces no time and no
    // tokens; report zero throughput instead of dividing by zero.
    if (total_seconds <= 0.0)
        return 0.0;
    return total_tokens / total_seconds;
}

} // namespace serving
} // namespace specontext
