#include "serving/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace specontext {
namespace serving {

namespace {

/** Streaming-histogram shape: sparse log-spaced buckets of ~2%
 *  relative width starting at 1 ns. Latencies at or below the floor
 *  land in bucket 0 and report 0.0 (they are zero for any practical
 *  purpose); everything else reports its bucket's geometric midpoint,
 *  bounding the relative error by about half the bucket width. */
constexpr double kHistFloorSeconds = 1e-9;
constexpr double kHistGrowth = 1.02;

int32_t
histBucket(double x)
{
    if (!(x > kHistFloorSeconds))
        return 0;
    return static_cast<int32_t>(std::floor(
               std::log(x / kHistFloorSeconds) /
               std::log(kHistGrowth))) +
           1;
}

double
histMidpoint(int32_t bucket)
{
    if (bucket <= 0)
        return 0.0;
    return kHistFloorSeconds *
           std::pow(kHistGrowth, static_cast<double>(bucket) - 0.5);
}

/** Nearest-rank percentile over a bucket-count histogram — the same
 *  rank rule as percentileSorted(), answered from bucket midpoints. */
double
histPercentile(const std::map<int32_t, int64_t> &hist, int64_t total,
               double p)
{
    if (total <= 0)
        return 0.0;
    int64_t rank = static_cast<int64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total)));
    rank = std::clamp<int64_t>(rank, 1, total);
    int64_t cum = 0;
    for (const auto &bc : hist) {
        cum += bc.second;
        if (cum >= rank)
            return histMidpoint(bc.first);
    }
    return hist.empty() ? 0.0 : histMidpoint(hist.rbegin()->first);
}

} // namespace

void
ServingMetrics::Digest::add(const RequestRecord &r)
{
    // Mirrors the Exact-mode accumulation loop term for term, in
    // record order, so un-merged streaming means are bit-identical.
    ttft_sum += r.ttft();
    e2e_sum += r.e2e();
    tpot_sum += r.tpot();
    queue_sum += r.queueDelay();
    total_generated_tokens += r.gen_len;
    ++completed;
    if (r.preemptions > 0) {
        ++preempted_completed;
        preemptions_total += r.preemptions;
    }
    recompute_tokens += r.recompute_tokens;
    const auto bucket = static_cast<size_t>(r.preemptions);
    if (ttft_by_preempt_sum.size() <= bucket) {
        ttft_by_preempt_sum.resize(bucket + 1, 0.0);
        ttft_by_preempt_n.resize(bucket + 1, 0);
    }
    ttft_by_preempt_sum[bucket] += r.ttft();
    ++ttft_by_preempt_n[bucket];
    ++ttft_hist[histBucket(r.ttft())];
    ++e2e_hist[histBucket(r.e2e())];
}

void
ServingMetrics::Digest::fold(const Digest &other)
{
    ttft_sum += other.ttft_sum;
    e2e_sum += other.e2e_sum;
    tpot_sum += other.tpot_sum;
    queue_sum += other.queue_sum;
    total_generated_tokens += other.total_generated_tokens;
    completed += other.completed;
    preempted_completed += other.preempted_completed;
    preemptions_total += other.preemptions_total;
    recompute_tokens += other.recompute_tokens;
    if (ttft_by_preempt_sum.size() < other.ttft_by_preempt_sum.size()) {
        ttft_by_preempt_sum.resize(other.ttft_by_preempt_sum.size(),
                                   0.0);
        ttft_by_preempt_n.resize(other.ttft_by_preempt_n.size(), 0);
    }
    for (size_t k = 0; k < other.ttft_by_preempt_sum.size(); ++k) {
        ttft_by_preempt_sum[k] += other.ttft_by_preempt_sum[k];
        ttft_by_preempt_n[k] += other.ttft_by_preempt_n[k];
    }
    for (const auto &bc : other.ttft_hist)
        ttft_hist[bc.first] += bc.second;
    for (const auto &bc : other.e2e_hist)
        e2e_hist[bc.first] += bc.second;
}

void
ServingMetrics::digestRecord(const RequestRecord &r)
{
    digests_[std::numeric_limits<int64_t>::min()].add(r);
    digests_[r.replica].add(r);
}

void
ServingMetrics::setSummaryMode(SummaryMode mode)
{
    if (mode == mode_)
        return;
    mode_ = mode;
    digests_.clear();
    if (mode_ == SummaryMode::Streaming) {
        for (const RequestRecord &r : records_)
            digestRecord(r);
    }
}

void
ServingMetrics::record(const Request &r, int64_t replica)
{
    if (r.state != RequestState::Finished)
        throw std::invalid_argument(
            "ServingMetrics: recording an unfinished request");
    RequestRecord rec;
    rec.id = r.id;
    rec.replica = replica;
    rec.prompt_len = r.prompt_len;
    rec.gen_len = r.gen_len;
    rec.arrival_seconds = r.arrival_seconds;
    rec.admit_seconds = r.admit_seconds;
    rec.first_token_seconds = r.first_token_seconds;
    rec.finish_seconds = r.finish_seconds;
    rec.preemptions = r.preemptions;
    rec.recompute_tokens = r.recompute_tokens;
    records_.push_back(rec);
    series_cache_.clear();
    if (mode_ == SummaryMode::Streaming)
        digestRecord(records_.back());
}

void
ServingMetrics::merge(const ServingMetrics &other)
{
    records_.insert(records_.end(), other.records_.begin(),
                    other.records_.end());
    // Invalidate every scope's memoized sorted series: the fleet key
    // AND any per-replica keys — merging into a non-empty collector
    // must never leave a summarize() reading pre-merge percentiles.
    series_cache_.clear();
    if (mode_ == SummaryMode::Streaming) {
        if (other.mode_ == SummaryMode::Streaming) {
            for (const auto &kd : other.digests_)
                digests_[kd.first].fold(kd.second);
        } else {
            for (const RequestRecord &r : other.records_)
                digestRecord(r);
        }
    }
}

std::vector<int64_t>
ServingMetrics::replicaIds() const
{
    std::vector<int64_t> ids;
    for (const RequestRecord &r : records_)
        ids.push_back(r.replica);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

double
ServingMetrics::percentileSorted(const std::vector<double> &sorted,
                                 double p)
{
    // Range-check p before the empty-series sentinel so a bad
    // percentile never succeeds silently just because the series was
    // empty.
    if (p < 0.0 || p > 100.0 || std::isnan(p))
        throw std::invalid_argument("percentile: p outside [0, 100]");
    if (sorted.empty())
        return 0.0; // defined sentinel: empty series -> 0.0
    // Nearest-rank: smallest value with cumulative frequency >= p%.
    const auto n = static_cast<int64_t>(sorted.size());
    int64_t rank = static_cast<int64_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    rank = std::clamp<int64_t>(rank, 1, n);
    return sorted[rank - 1];
}

double
ServingMetrics::percentile(std::vector<double> values, double p)
{
    std::sort(values.begin(), values.end());
    return percentileSorted(values, p);
}

ServingSummary
ServingMetrics::summarizeDigest(const Digest &d,
                                double makespan_seconds) const
{
    ServingSummary s;
    s.makespan_seconds = makespan_seconds;
    s.completed = d.completed;
    if (d.completed == 0)
        return s;
    s.total_generated_tokens = d.total_generated_tokens;
    s.preempted_completed = d.preempted_completed;
    s.preemptions_total = d.preemptions_total;
    s.recompute_tokens = d.recompute_tokens;
    if (d.preempted_completed > 0) {
        s.ttft_mean_by_preemptions.resize(d.ttft_by_preempt_sum.size(),
                                          0.0);
        for (size_t k = 0; k < d.ttft_by_preempt_sum.size(); ++k) {
            if (d.ttft_by_preempt_n[k] > 0)
                s.ttft_mean_by_preemptions[k] =
                    d.ttft_by_preempt_sum[k] /
                    static_cast<double>(d.ttft_by_preempt_n[k]);
        }
    }
    const double n = static_cast<double>(d.completed);
    s.ttft_mean = d.ttft_sum / n;
    s.e2e_mean = d.e2e_sum / n;
    s.tpot_mean = d.tpot_sum / n;
    s.queue_delay_mean = d.queue_sum / n;
    s.ttft_p50 = histPercentile(d.ttft_hist, d.completed, 50.0);
    s.ttft_p95 = histPercentile(d.ttft_hist, d.completed, 95.0);
    s.ttft_p99 = histPercentile(d.ttft_hist, d.completed, 99.0);
    s.e2e_p50 = histPercentile(d.e2e_hist, d.completed, 50.0);
    s.e2e_p95 = histPercentile(d.e2e_hist, d.completed, 95.0);
    s.e2e_p99 = histPercentile(d.e2e_hist, d.completed, 99.0);
    if (makespan_seconds > 0.0)
        s.throughput_tokens_per_s =
            static_cast<double>(s.total_generated_tokens) /
            makespan_seconds;
    return s;
}

ServingSummary
ServingMetrics::summarizeScoped(bool filter, int64_t replica,
                                double makespan_seconds) const
{
    if (mode_ == SummaryMode::Streaming) {
        const int64_t key =
            filter ? replica : std::numeric_limits<int64_t>::min();
        const auto it = digests_.find(key);
        if (it == digests_.end()) {
            ServingSummary s;
            s.makespan_seconds = makespan_seconds;
            return s; // empty-scope sentinel, as in Exact mode
        }
        return summarizeDigest(it->second, makespan_seconds);
    }
    const std::vector<RequestRecord> &records = records_;
    ServingSummary s;
    s.makespan_seconds = makespan_seconds;

    // Means accumulate in record order (before sorting) so aggregation
    // stays bit-for-bit independent of how the percentile series are
    // laid out.
    std::vector<double> ttft, e2e;
    double tpot_sum = 0.0, queue_sum = 0.0;
    // TTFT sums/counts grouped by per-request preemption count — the
    // inflation series (only materialized when preemption fired).
    std::vector<double> ttft_by_preempt_sum;
    std::vector<int64_t> ttft_by_preempt_n;
    for (const RequestRecord &r : records) {
        if (filter && r.replica != replica)
            continue;
        ttft.push_back(r.ttft());
        e2e.push_back(r.e2e());
        tpot_sum += r.tpot();
        queue_sum += r.queueDelay();
        s.total_generated_tokens += r.gen_len;
        ++s.completed;
        if (r.preemptions > 0) {
            ++s.preempted_completed;
            s.preemptions_total += r.preemptions;
        }
        s.recompute_tokens += r.recompute_tokens;
        const auto bucket = static_cast<size_t>(r.preemptions);
        if (ttft_by_preempt_sum.size() <= bucket) {
            ttft_by_preempt_sum.resize(bucket + 1, 0.0);
            ttft_by_preempt_n.resize(bucket + 1, 0);
        }
        ttft_by_preempt_sum[bucket] += r.ttft();
        ++ttft_by_preempt_n[bucket];
    }
    if (s.completed == 0)
        return s;
    if (s.preempted_completed > 0) {
        s.ttft_mean_by_preemptions.resize(ttft_by_preempt_sum.size(),
                                          0.0);
        for (size_t k = 0; k < ttft_by_preempt_sum.size(); ++k) {
            if (ttft_by_preempt_n[k] > 0)
                s.ttft_mean_by_preemptions[k] =
                    ttft_by_preempt_sum[k] /
                    static_cast<double>(ttft_by_preempt_n[k]);
        }
    }

    const double n = static_cast<double>(s.completed);
    auto mean = [&](const std::vector<double> &v) {
        double acc = 0.0;
        for (double x : v)
            acc += x;
        return acc / n;
    };
    s.ttft_mean = mean(ttft);
    s.e2e_mean = mean(e2e);

    // Sort each series once per scope *per records generation*: the
    // sorted vectors are memoized until the next record()/merge(), so
    // a caller polling summarize() mid-run pays the O(n log n) only on
    // the first read after new completions.
    const int64_t key =
        filter ? replica : std::numeric_limits<int64_t>::min();
    auto memo = series_cache_.find(key);
    if (memo == series_cache_.end()) {
        std::sort(ttft.begin(), ttft.end());
        std::sort(e2e.begin(), e2e.end());
        SortedSeries ss;
        ss.ttft = std::move(ttft);
        ss.e2e = std::move(e2e);
        memo = series_cache_.emplace(key, std::move(ss)).first;
    }
    const SortedSeries &ss = memo->second;
    s.ttft_p50 = ServingMetrics::percentileSorted(ss.ttft, 50.0);
    s.ttft_p95 = ServingMetrics::percentileSorted(ss.ttft, 95.0);
    s.ttft_p99 = ServingMetrics::percentileSorted(ss.ttft, 99.0);
    s.e2e_p50 = ServingMetrics::percentileSorted(ss.e2e, 50.0);
    s.e2e_p95 = ServingMetrics::percentileSorted(ss.e2e, 95.0);
    s.e2e_p99 = ServingMetrics::percentileSorted(ss.e2e, 99.0);
    s.tpot_mean = tpot_sum / n;
    s.queue_delay_mean = queue_sum / n;
    if (makespan_seconds > 0.0)
        s.throughput_tokens_per_s =
            static_cast<double>(s.total_generated_tokens) /
            makespan_seconds;
    return s;
}

ServingSummary
ServingMetrics::summarize(double makespan_seconds) const
{
    return summarizeScoped(false, 0, makespan_seconds);
}

ServingSummary
ServingMetrics::summarizeReplica(int64_t replica,
                                 double makespan_seconds) const
{
    return summarizeScoped(true, replica, makespan_seconds);
}

} // namespace serving
} // namespace specontext
