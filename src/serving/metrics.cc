#include "serving/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace specontext {
namespace serving {

void
ServingMetrics::record(const Request &r)
{
    if (r.state != RequestState::Finished)
        throw std::invalid_argument(
            "ServingMetrics: recording an unfinished request");
    RequestRecord rec;
    rec.id = r.id;
    rec.prompt_len = r.prompt_len;
    rec.gen_len = r.gen_len;
    rec.arrival_seconds = r.arrival_seconds;
    rec.admit_seconds = r.admit_seconds;
    rec.first_token_seconds = r.first_token_seconds;
    rec.finish_seconds = r.finish_seconds;
    records_.push_back(rec);
}

double
ServingMetrics::percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        throw std::invalid_argument("percentile: p outside [0, 100]");
    std::sort(values.begin(), values.end());
    // Nearest-rank: smallest value with cumulative frequency >= p%.
    const auto n = static_cast<int64_t>(values.size());
    int64_t rank = static_cast<int64_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    rank = std::clamp<int64_t>(rank, 1, n);
    return values[rank - 1];
}

ServingSummary
ServingMetrics::summarize(double makespan_seconds) const
{
    ServingSummary s;
    s.completed = count();
    s.makespan_seconds = makespan_seconds;
    if (records_.empty())
        return s;

    std::vector<double> ttft, e2e;
    ttft.reserve(records_.size());
    e2e.reserve(records_.size());
    double tpot_sum = 0.0, queue_sum = 0.0;
    for (const RequestRecord &r : records_) {
        ttft.push_back(r.ttft());
        e2e.push_back(r.e2e());
        tpot_sum += r.tpot();
        queue_sum += r.queueDelay();
        s.total_generated_tokens += r.gen_len;
    }
    const double n = static_cast<double>(records_.size());
    auto mean = [&](const std::vector<double> &v) {
        double acc = 0.0;
        for (double x : v)
            acc += x;
        return acc / n;
    };
    s.ttft_mean = mean(ttft);
    s.ttft_p50 = percentile(ttft, 50.0);
    s.ttft_p95 = percentile(ttft, 95.0);
    s.ttft_p99 = percentile(ttft, 99.0);
    s.e2e_mean = mean(e2e);
    s.e2e_p50 = percentile(e2e, 50.0);
    s.e2e_p95 = percentile(e2e, 95.0);
    s.e2e_p99 = percentile(e2e, 99.0);
    s.tpot_mean = tpot_sum / n;
    s.queue_delay_mean = queue_sum / n;
    if (makespan_seconds > 0.0)
        s.throughput_tokens_per_s =
            static_cast<double>(s.total_generated_tokens) /
            makespan_seconds;
    return s;
}

} // namespace serving
} // namespace specontext
