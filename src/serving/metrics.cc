#include "serving/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace specontext {
namespace serving {

void
ServingMetrics::record(const Request &r, int64_t replica)
{
    if (r.state != RequestState::Finished)
        throw std::invalid_argument(
            "ServingMetrics: recording an unfinished request");
    RequestRecord rec;
    rec.id = r.id;
    rec.replica = replica;
    rec.prompt_len = r.prompt_len;
    rec.gen_len = r.gen_len;
    rec.arrival_seconds = r.arrival_seconds;
    rec.admit_seconds = r.admit_seconds;
    rec.first_token_seconds = r.first_token_seconds;
    rec.finish_seconds = r.finish_seconds;
    rec.preemptions = r.preemptions;
    rec.recompute_tokens = r.recompute_tokens;
    records_.push_back(rec);
    series_cache_.clear();
}

void
ServingMetrics::merge(const ServingMetrics &other)
{
    records_.insert(records_.end(), other.records_.begin(),
                    other.records_.end());
    series_cache_.clear();
}

std::vector<int64_t>
ServingMetrics::replicaIds() const
{
    std::vector<int64_t> ids;
    for (const RequestRecord &r : records_)
        ids.push_back(r.replica);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

double
ServingMetrics::percentileSorted(const std::vector<double> &sorted,
                                 double p)
{
    // Range-check p before the empty-series sentinel so a bad
    // percentile never succeeds silently just because the series was
    // empty.
    if (p < 0.0 || p > 100.0 || std::isnan(p))
        throw std::invalid_argument("percentile: p outside [0, 100]");
    if (sorted.empty())
        return 0.0; // defined sentinel: empty series -> 0.0
    // Nearest-rank: smallest value with cumulative frequency >= p%.
    const auto n = static_cast<int64_t>(sorted.size());
    int64_t rank = static_cast<int64_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    rank = std::clamp<int64_t>(rank, 1, n);
    return sorted[rank - 1];
}

double
ServingMetrics::percentile(std::vector<double> values, double p)
{
    std::sort(values.begin(), values.end());
    return percentileSorted(values, p);
}

ServingSummary
ServingMetrics::summarizeScoped(bool filter, int64_t replica,
                                double makespan_seconds) const
{
    const std::vector<RequestRecord> &records = records_;
    ServingSummary s;
    s.makespan_seconds = makespan_seconds;

    // Means accumulate in record order (before sorting) so aggregation
    // stays bit-for-bit independent of how the percentile series are
    // laid out.
    std::vector<double> ttft, e2e;
    double tpot_sum = 0.0, queue_sum = 0.0;
    // TTFT sums/counts grouped by per-request preemption count — the
    // inflation series (only materialized when preemption fired).
    std::vector<double> ttft_by_preempt_sum;
    std::vector<int64_t> ttft_by_preempt_n;
    for (const RequestRecord &r : records) {
        if (filter && r.replica != replica)
            continue;
        ttft.push_back(r.ttft());
        e2e.push_back(r.e2e());
        tpot_sum += r.tpot();
        queue_sum += r.queueDelay();
        s.total_generated_tokens += r.gen_len;
        ++s.completed;
        if (r.preemptions > 0) {
            ++s.preempted_completed;
            s.preemptions_total += r.preemptions;
        }
        s.recompute_tokens += r.recompute_tokens;
        const auto bucket = static_cast<size_t>(r.preemptions);
        if (ttft_by_preempt_sum.size() <= bucket) {
            ttft_by_preempt_sum.resize(bucket + 1, 0.0);
            ttft_by_preempt_n.resize(bucket + 1, 0);
        }
        ttft_by_preempt_sum[bucket] += r.ttft();
        ++ttft_by_preempt_n[bucket];
    }
    if (s.completed == 0)
        return s;
    if (s.preempted_completed > 0) {
        s.ttft_mean_by_preemptions.resize(ttft_by_preempt_sum.size(),
                                          0.0);
        for (size_t k = 0; k < ttft_by_preempt_sum.size(); ++k) {
            if (ttft_by_preempt_n[k] > 0)
                s.ttft_mean_by_preemptions[k] =
                    ttft_by_preempt_sum[k] /
                    static_cast<double>(ttft_by_preempt_n[k]);
        }
    }

    const double n = static_cast<double>(s.completed);
    auto mean = [&](const std::vector<double> &v) {
        double acc = 0.0;
        for (double x : v)
            acc += x;
        return acc / n;
    };
    s.ttft_mean = mean(ttft);
    s.e2e_mean = mean(e2e);

    // Sort each series once per scope *per records generation*: the
    // sorted vectors are memoized until the next record()/merge(), so
    // a caller polling summarize() mid-run pays the O(n log n) only on
    // the first read after new completions.
    const int64_t key =
        filter ? replica : std::numeric_limits<int64_t>::min();
    auto memo = series_cache_.find(key);
    if (memo == series_cache_.end()) {
        std::sort(ttft.begin(), ttft.end());
        std::sort(e2e.begin(), e2e.end());
        SortedSeries ss;
        ss.ttft = std::move(ttft);
        ss.e2e = std::move(e2e);
        memo = series_cache_.emplace(key, std::move(ss)).first;
    }
    const SortedSeries &ss = memo->second;
    s.ttft_p50 = ServingMetrics::percentileSorted(ss.ttft, 50.0);
    s.ttft_p95 = ServingMetrics::percentileSorted(ss.ttft, 95.0);
    s.ttft_p99 = ServingMetrics::percentileSorted(ss.ttft, 99.0);
    s.e2e_p50 = ServingMetrics::percentileSorted(ss.e2e, 50.0);
    s.e2e_p95 = ServingMetrics::percentileSorted(ss.e2e, 95.0);
    s.e2e_p99 = ServingMetrics::percentileSorted(ss.e2e, 99.0);
    s.tpot_mean = tpot_sum / n;
    s.queue_delay_mean = queue_sum / n;
    if (makespan_seconds > 0.0)
        s.throughput_tokens_per_s =
            static_cast<double>(s.total_generated_tokens) /
            makespan_seconds;
    return s;
}

ServingSummary
ServingMetrics::summarize(double makespan_seconds) const
{
    return summarizeScoped(false, 0, makespan_seconds);
}

ServingSummary
ServingMetrics::summarizeReplica(int64_t replica,
                                 double makespan_seconds) const
{
    return summarizeScoped(true, replica, makespan_seconds);
}

} // namespace serving
} // namespace specontext
