/**
 * @file
 * Single-replica continuous-batching server: a thin facade over
 * serving::ReplicaEngine (where the iteration-level scheduling loop
 * now lives; serving::Cluster drives the same engine N-wide).
 *
 * The seed's wave scheduler (serving/batch_sweep.h) launches a fixed
 * batch and holds a barrier until every member finishes — the paper's
 * Table 3 setup. Production traffic is open-loop and mixed-length, so
 * this server instead advances all in-flight requests ONE decode
 * iteration at a time via core::TimingEngine's incremental hooks,
 * admitting newly arrived requests (admission.h decides whether their
 * KV reservation fits) and retiring finished ones at every iteration
 * boundary — no barriers, Orca/vLLM-style.
 *
 * serveWaves() runs the same trace through barrier scheduling with
 * identical cost accounting, so the two disciplines are directly
 * comparable (bench/bench_serving_continuous.cc).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/timing_engine.h"
#include "serving/admission.h"
#include "serving/fast_path.h"
#include "serving/metrics.h"
#include "serving/replica_engine.h"
#include "serving/request.h"
#include "serving/request_queue.h"

namespace specontext {
namespace serving {

/** Server configuration. */
struct ServerConfig
{
    core::TimingConfig timing; ///< system, geometry, hardware, budget
    QueuePolicy queue_policy = QueuePolicy::Fifo;
    /** Hard cap on in-flight requests (scheduler table size); memory
     *  admission usually binds first. */
    int64_t max_batch = 64;
    /** Observability hooks, forwarded to the underlying ReplicaEngine
     *  (all-null default = bit-identical unobserved server). */
    obs::Observability obs;
    /** Simulator speed knobs (skip-ahead on by default; `threads` is
     *  meaningless on one replica and ignored). Bit-exact either way. */
    SimFastPath fast_path;
};

/** Iteration-level continuous-batching server (one replica). */
class Server
{
  public:
    /**
     * @throws std::invalid_argument when cfg.timing.system cannot be
     * continuously batched or max_batch is non-positive.
     */
    Server(const core::TimingEngine &engine, ServerConfig cfg);

    const ServerConfig &config() const { return cfg_; }
    const AdmissionController &admission() const { return admission_; }

    /**
     * Serve an open-loop arrival trace to completion. Requests are
     * sorted by arrival time; ids are preserved. Every feasible
     * request finishes (FIFO is starvation-free); requests that cannot
     * fit even alone come back in ServeResult::rejected.
     *
     * Bit-for-bit identical to a single-replica Cluster over the same
     * trace (tests/test_cluster.cc pins the parity).
     */
    ServeResult run(std::vector<Request> trace) const;

  private:
    const core::TimingEngine &engine_;
    ServerConfig cfg_;
    AdmissionController admission_;
};

/**
 * Wave-scheduled baseline over the same trace and cost accounting:
 * requests are grouped in arrival order into batches of at most
 * cfg.max_batch (shrunk to what admission accepts), each wave waits
 * for all members to arrive, pads every member to the wave's longest
 * prompt/generation, and holds the barrier until the wave completes.
 */
ServeResult serveWaves(const core::TimingEngine &engine,
                       const ServerConfig &cfg,
                       std::vector<Request> trace);

} // namespace serving
} // namespace specontext
