#include "serving/replica_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace specontext {
namespace serving {

ReplicaEngine::ReplicaEngine(const core::TimingEngine &engine,
                             ReplicaConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)), admission_(cfg_.timing),
      queue_(cfg_.queue_policy)
{
    if (cfg_.max_batch <= 0)
        throw std::invalid_argument(
            "ReplicaEngine: non-positive max_batch");
    if (cfg_.name.empty()) {
        cfg_.name = "replica" + std::to_string(cfg_.id) + "(" +
                    cfg_.timing.hw.name + "/" +
                    cfg_.timing.system->name() + ")";
    }
}

int64_t
ReplicaEngine::reservedKvTokens() const
{
    int64_t tokens = 0;
    for (const Request &r : active_)
        tokens += r.finalLen();
    for (size_t i = static_cast<size_t>(pending_next_);
         i < pending_.size(); ++i)
        tokens += pending_[i].finalLen();
    // The queue does not expose iteration; mirror its content via the
    // running total maintained on push/pop instead of scanning.
    return tokens + queued_kv_tokens_;
}

int64_t
ReplicaEngine::kvCapacityBytes() const
{
    const int64_t cap =
        cfg_.timing.hw.gpu_mem_bytes -
        core::weightFootprintBytes(cfg_.timing.llm);
    return std::max<int64_t>(cap, 1);
}

double
ReplicaEngine::kvLoadFraction(int64_t extra_final_len_tokens) const
{
    const int64_t per_token =
        core::kvBytesPerTokenPerLayer(cfg_.timing.llm) *
        cfg_.timing.llm.layers;
    const double bytes =
        static_cast<double>(reservedKvTokens() + extra_final_len_tokens) *
        static_cast<double>(per_token);
    return bytes / static_cast<double>(kvCapacityBytes());
}

void
ReplicaEngine::deliver(Request r)
{
    if (r.arrival_seconds < last_delivered_arrival_)
        throw std::invalid_argument(
            "ReplicaEngine: deliveries must be in arrival order");
    last_delivered_arrival_ = r.arrival_seconds;
    pending_.push_back(std::move(r));
}

void
ReplicaEngine::ingestPending(double t)
{
    while (pending_next_ < static_cast<int64_t>(pending_.size()) &&
           pending_[pending_next_].arrival_seconds <= t) {
        queued_kv_tokens_ += pending_[pending_next_].finalLen();
        queue_.push(std::move(pending_[pending_next_]));
        ++pending_next_;
    }
    if (pending_next_ == static_cast<int64_t>(pending_.size())) {
        pending_.clear();
        pending_next_ = 0;
    }
}

double
ReplicaEngine::nextEventSeconds() const
{
    if (!active_.empty() || !queue_.empty())
        return now_;
    if (pending_next_ < static_cast<int64_t>(pending_.size()))
        return std::max(now_,
                        pending_[pending_next_].arrival_seconds);
    return std::numeric_limits<double>::infinity();
}

bool
ReplicaEngine::idle() const
{
    return active_.empty() && queue_.empty() &&
           pending_next_ >= static_cast<int64_t>(pending_.size());
}

void
ReplicaEngine::step(const IngestFn &ingest)
{
    const double event = nextEventSeconds();
    if (!std::isfinite(event))
        throw std::logic_error("ReplicaEngine: step on an idle replica");
    now_ = std::max(now_, event);

    auto ingestUpTo = [&](double t) {
        if (ingest)
            ingest(t); // the router delivers arrivals <= t
        ingestPending(t);
    };
    ingestUpTo(now_);

    // Admit while the policy's candidate fits. A denial with other
    // requests in flight just means "wait for retirements"; a denial
    // on an idle replica means the request can never fit here.
    while (!queue_.empty() &&
           static_cast<int64_t>(active_.size()) < cfg_.max_batch) {
        const AdmissionDecision d = admission_.admit(active_,
                                                     queue_.peek());
        if (!d.admit) {
            if (active_.empty()) {
                Request r = queue_.pop();
                queued_kv_tokens_ -= r.finalLen();
                r.state = RequestState::Rejected;
                result_.rejected.push_back(std::move(r));
                continue;
            }
            break;
        }
        Request r = queue_.pop();
        queued_kv_tokens_ -= r.finalLen();
        r.admit_seconds = now_;
        r.state = RequestState::Decoding;
        // Prefill iteration for the joining request; in-flight
        // requests stall for its duration (prefill-prioritized
        // scheduling), and arrivals during it still enqueue.
        int64_t resident = 0;
        for (const Request &q : active_)
            resident += q.kvLen();
        now_ += engine_.requestPrefillSeconds(
            cfg_.timing, r.prompt_len,
            static_cast<int64_t>(active_.size()), resident);
        active_.push_back(std::move(r));
        ingestUpTo(now_);
    }
    result_.peak_in_flight =
        std::max(result_.peak_in_flight,
                 static_cast<int64_t>(active_.size()));

    if (active_.empty()) {
        if (!queue_.empty())
            throw std::logic_error(
                "ReplicaEngine: idle with admissible work queued");
        result_.makespan_seconds = now_;
        return; // round spent rejecting; next event is a future arrival
    }

    // One decode iteration advances every in-flight request by one
    // token — the continuous-batching core, no wave barrier.
    std::vector<int64_t> kv_lens;
    kv_lens.reserve(active_.size());
    for (const Request &r : active_)
        kv_lens.push_back(r.kvLen());
    now_ += engine_.decodeIterationSeconds(cfg_.timing, kv_lens);
    ++result_.iterations;
    for (Request &r : active_) {
        ++r.generated;
        if (r.first_token_seconds < 0.0)
            r.first_token_seconds = now_;
    }

    // Retire finished requests; their reservations free headroom that
    // the next round re-offers to the queue.
    for (auto it = active_.begin(); it != active_.end();) {
        if (it->done()) {
            it->finish_seconds = now_;
            it->state = RequestState::Finished;
            result_.metrics.record(*it, cfg_.id);
            it = active_.erase(it);
        } else {
            ++it;
        }
    }
    result_.makespan_seconds = now_;
}

} // namespace serving
} // namespace specontext
