#include "serving/replica_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace specontext {
namespace serving {

void
PrefixCacheStats::merge(const PrefixCacheStats &other)
{
    lookups += other.lookups;
    hit_requests += other.hit_requests;
    hit_tokens += other.hit_tokens;
    prompt_tokens += other.prompt_tokens;
    inserted_tokens += other.inserted_tokens;
    evicted_tokens += other.evicted_tokens;
    resident_bytes += other.resident_bytes;
    resident_tokens += other.resident_tokens;
}

namespace {

/** KV bytes one token occupies across all layers of this geometry. */
int64_t
kvBytesPerToken(const core::TimingConfig &timing)
{
    return core::kvBytesPerTokenPerLayer(timing.llm) * timing.llm.layers;
}

/** HBM left next to the LLM weights; negative when they alone
 *  oversubscribe the device. Shared by kvCapacityBytes() (the least-KV
 *  router's normalizer) and the construction-time cache budget clamp.
 *  Note the *runtime* budget sync prices weights more precisely
 *  through sim::MemoryModel::modelBytes() (which adds the retrieval
 *  head / DLM), so the working budget can sit below the configured
 *  cap even on an otherwise idle replica. */
int64_t
rawKvCapacityBytes(const ReplicaConfig &cfg)
{
    return cfg.timing.hw.gpu_mem_bytes -
           core::weightFootprintBytes(cfg.timing.llm);
}

/** Tree config of a replica: the configured budget clamped to the HBM
 *  left next to the weights (a cache larger than the device is
 *  meaningless). */
kv::PrefixTreeConfig
prefixTreeConfigFor(const ReplicaConfig &cfg)
{
    kv::PrefixTreeConfig tc;
    tc.page_size = cfg.prefix_cache.page_size;
    tc.pooled = cfg.prefix_cache.pooled;
    tc.bytes_per_token = kvBytesPerToken(cfg.timing);
    tc.budget_bytes = std::max<int64_t>(
        0, std::min(cfg.prefix_cache.budget_bytes,
                    std::max<int64_t>(rawKvCapacityBytes(cfg), 0)));
    return tc;
}

/** Scheduler knobs of a replica config. */
SchedulerConfig
schedulerConfigFor(const ReplicaConfig &cfg)
{
    SchedulerConfig sc;
    sc.mode = cfg.scheduler_mode;
    sc.victim_policy = cfg.victim_policy;
    sc.queue_policy = cfg.queue_policy;
    sc.max_batch = cfg.max_batch;
    return sc;
}

} // namespace

ReplicaEngine::ReplicaEngine(const core::TimingEngine &engine,
                             ReplicaConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)),
      scheduler_(cfg_.timing, schedulerConfigFor(cfg_)),
      prefix_tree_(prefixTreeConfigFor(cfg_))
{
    if (cfg_.max_batch <= 0)
        throw std::invalid_argument(
            "ReplicaEngine: non-positive max_batch");
    if (cfg_.prefix_cache.budget_bytes < 0)
        throw std::invalid_argument(
            "ReplicaEngine: negative prefix-cache budget");
    configured_prefix_budget_ = prefix_tree_.config().budget_bytes;
    kv_bytes_per_token_ = kvBytesPerToken(cfg_.timing);
    kv_capacity_bytes_ = std::max<int64_t>(rawKvCapacityBytes(cfg_), 1);
    model_bytes_ = scheduler_.admission().memoryModel().modelBytes();
    if (cfg_.name.empty()) {
        cfg_.name = "replica" + std::to_string(cfg_.id) + "(" +
                    cfg_.timing.hw.name + "/" +
                    cfg_.timing.system->name() + ")";
    }
    trace_ = cfg_.obs.trace;
    counters_ = cfg_.obs.counters;
    if (counters_) {
        const std::string p = "replica" + std::to_string(cfg_.id) + ".";
        slots_.enqueued_requests =
            counters_->counter(p + "enqueued_requests");
        slots_.admitted_requests =
            counters_->counter(p + "admitted_requests");
        slots_.admitted_prefill_tokens =
            counters_->counter(p + "admitted_prefill_tokens");
        slots_.prefix_hit_tokens =
            counters_->counter(p + "prefix_hit_tokens");
        slots_.preemptions = counters_->counter(p + "preemptions");
        slots_.preempted_tokens =
            counters_->counter(p + "preempted_tokens");
        slots_.restores = counters_->counter(p + "restores");
        slots_.recompute_tokens =
            counters_->counter(p + "recompute_tokens");
        slots_.completed_requests =
            counters_->counter(p + "completed_requests");
        slots_.rejected_requests =
            counters_->counter(p + "rejected_requests");
        slots_.generated_tokens =
            counters_->counter(p + "generated_tokens");
        slots_.decode_iterations =
            counters_->counter(p + "decode_iterations");
        slots_.queue_depth = counters_->gauge(p + "queue_depth");
        slots_.in_flight = counters_->gauge(p + "in_flight");
        slots_.live_kv_bytes = counters_->gauge(p + "live_kv_bytes");
        slots_.prefix_resident_bytes =
            counters_->gauge(p + "prefix_resident_bytes");
        slots_.prefix_pinned_bytes =
            counters_->gauge(p + "prefix_pinned_bytes");
    }
    scheduler_.attachObservability(cfg_.obs, cfg_.id);
    kv::PrefixTreeObserver tree_obs;
    tree_obs.trace = trace_;
    tree_obs.counters = counters_;
    tree_obs.replica = static_cast<int32_t>(cfg_.id);
    tree_obs.clock = &now_;
    prefix_tree_.setObserver(tree_obs);
}

void
ReplicaEngine::setDecodeCostCache(bool on)
{
    flushWindow();
    decode_eval_ =
        on ? engine_.makeDecodeEvaluator(cfg_.timing) : nullptr;
    prefill_eval_ =
        on ? engine_.makePrefillEvaluator(cfg_.timing) : nullptr;
    win_live_ = false;
}

void
ReplicaEngine::publishGauges()
{
    if (!counters_)
        return;
    counters_->set(slots_.queue_depth, waiting());
    counters_->set(slots_.in_flight,
                   static_cast<int64_t>(active_.size()));
    counters_->set(slots_.live_kv_bytes,
                   liveKvTokens() * kv_bytes_per_token_);
    counters_->set(slots_.prefix_resident_bytes, prefix_tree_.bytes());
    counters_->set(slots_.prefix_pinned_bytes,
                   prefix_tree_.pinnedBytes());
}

int64_t
ReplicaEngine::reservedKvTokens() const
{
    // active_'s share is a running total (see active_final_tokens_):
    // scanning Request objects per router probe was a measurable
    // share of fleet-scale runs.
    int64_t tokens = active_final_tokens_;
    for (size_t i = static_cast<size_t>(pending_next_);
         i < pending_.size(); ++i)
        tokens += pending_[i].finalLen();
    // The queue does not expose iteration; the Scheduler mirrors its
    // content via running totals maintained on enqueue/pop instead of
    // scanning.
    return tokens + scheduler_.queuedFinalKvTokens();
}

void
ReplicaEngine::flushWindow()
{
    if (win_defer_rounds_ == 0)
        return;
    // Deferral only happens on retirement-free windows, so the batch
    // membership (and the mirror's size) is exactly what the eager
    // pass would have kept: apply the uniform growth in place.
    const int64_t d = win_defer_rounds_;
    win_defer_rounds_ = 0;
    for (size_t i = 0; i < active_.size(); ++i) {
        active_[i].generated += d;
        kv_scratch_[i] = active_[i].kvLen();
    }
}

int64_t
ReplicaEngine::liveKvTokens() const
{
    // kvLen() = prompt_len + generated, and `generated` lags every
    // active request by win_defer_rounds_ while a window is deferred
    // — add the lag back (integer-exact, and mutation-free so router
    // probes stay safe against parallel-lane stepping).
    int64_t tokens =
        static_cast<int64_t>(active_.size()) * win_defer_rounds_;
    for (const Request &r : active_)
        tokens += r.kvLen();
    for (size_t i = static_cast<size_t>(pending_next_);
         i < pending_.size(); ++i)
        tokens += pending_[i].kvLen();
    return tokens + scheduler_.queuedLiveKvTokens();
}

int64_t
ReplicaEngine::kvCapacityBytes() const
{
    return kv_capacity_bytes_;
}

double
ReplicaEngine::kvLoadFraction(int64_t extra_final_len_tokens) const
{
    const double bytes =
        static_cast<double>(reservedKvTokens() + extra_final_len_tokens) *
        static_cast<double>(kv_bytes_per_token_);
    return bytes / static_cast<double>(kv_capacity_bytes_);
}

double
ReplicaEngine::routingLoadFraction(const Request &r) const
{
    if (!optimistic())
        return kvLoadFraction(r.finalLen());
    // Optimistic replicas hold (and admit against) live contexts, not
    // booked reservations — price the router's signal the same way.
    const double bytes =
        static_cast<double>(liveKvTokens() + r.kvLen()) *
        static_cast<double>(kv_bytes_per_token_);
    return bytes / static_cast<double>(kv_capacity_bytes_);
}

int64_t
ReplicaEngine::prefixHitTokens(const Request &r) const
{
    // The *tree's* enabled() is the right gate here (not the
    // configured budget): while live-KV pressure has the working
    // budget clamped to 0 the tree is empty, and match() on it is a
    // correct miss.
    if (!prefix_tree_.enabled() || r.prompt_tokens.empty())
        return 0;
    const int64_t hit = prefix_tree_.match(r.prompt_tokens).hit_tokens;
    // Prefill must still compute at least the last prompt token — the
    // decode loop needs its logits (vLLM caps full-prompt hits the
    // same way).
    return std::min(hit, r.prompt_len - 1);
}

void
ReplicaEngine::syncPrefixBudget(int64_t extra_reserved_tokens,
                                int64_t extra_budget_tokens)
{
    // Cached prefixes compete with live KV for HBM headroom: the
    // tree's working budget is whatever Eq. 6's weight term and the
    // outstanding KV leave free, capped by the configured budget.
    // Reserve mode prices the outstanding KV at its booked
    // final-length reservations, Optimistic at the live contexts its
    // preemptive discipline actually holds. `extra_reserved_tokens`
    // carries the request being admitted right now (already popped
    // from the queue, not yet in active_). Live KV always wins — a
    // growing batch shrinks the cache, never the other way around —
    // and a squeeze to 0 is transient: the next sync with headroom
    // restores the budget.
    const int64_t outstanding_tokens =
        optimistic() ? liveKvTokens() : reservedKvTokens();
    const int64_t reserved_bytes =
        (outstanding_tokens + extra_reserved_tokens) *
        kv_bytes_per_token_;
    const int64_t headroom =
        cfg_.timing.hw.gpu_mem_bytes - model_bytes_ - reserved_bytes;
    // Pinned blocks are in-flight prompts' KV — one physical copy,
    // already paid for inside reserved_bytes via those requests'
    // reservations — so they ride on top of the budget: the clamp
    // bounds only the *idle* (unpinned, evictable) cache.
    // `extra_budget_tokens` extends the same courtesy to the blocks
    // the candidate's own prompt is about to insert-and-pin (also
    // inside extra_reserved_tokens), so they do not displace idle
    // cache the physical accounting would let stay.
    const int64_t idle_budget = std::max<int64_t>(
        0, std::min(configured_prefix_budget_,
                    std::max<int64_t>(headroom, 0)));
    prefix_tree_.setBudget(
        idle_budget + prefix_tree_.pinnedBytes() +
        extra_budget_tokens * kv_bytes_per_token_);
#if SPECONTEXT_OBS_ENABLED
    // The trace records the *idle* clamp (the evictable-cache cap) and
    // only when it changes — every admission re-clamps, but only
    // pressure transitions are interesting.
    if (trace_ && idle_budget != last_clamp_emitted_) {
        trace_->emit(obs::EventType::KvClamp, now_,
                     static_cast<int32_t>(cfg_.id), -1, idle_budget,
                     configured_prefix_budget_);
        last_clamp_emitted_ = idle_budget;
    }
#endif
}

int64_t
ReplicaEngine::admitThroughPrefixCache(Request &r)
{
    // Gate on the *configured* budget: the tree's working budget may
    // be squeezed to 0 right now, but the resize callback below must
    // still run so the cache revives once the pressure passes. It
    // runs for token-less admissions too — their reservations squeeze
    // the cache just the same.
    if (!prefixCacheEnabled())
        return 0;
    // The admission candidate's outstanding KV: its final-length
    // reservation in Reserve mode, its live (restore) context in
    // Optimistic mode — mirroring what each discipline admits on.
    const int64_t candidate_tokens =
        optimistic() ? r.kvLen() : r.finalLen();
    // Budget allowance for the blocks the candidate's prompt will
    // *newly* insert (full blocks minus what the tree already holds):
    // created below and pinned immediately, they are covered by the
    // reservation this same call books via extra_reserved_tokens.
    // Already-resident blocks cost the extension nothing (and the
    // pinned ones are inside pinnedBytes() already), so granting them
    // too would credit one physical copy twice. Capped at the
    // configured budget — the cache never indexes more of one prompt
    // than it could ever retain, so a pathological prompt cannot
    // balloon the tree only to be mass-evicted.
    const int64_t prompt_block_tokens =
        static_cast<int64_t>(r.prompt_tokens.size()) /
        cfg_.prefix_cache.page_size * cfg_.prefix_cache.page_size;
    const auto resizeToHeadroom = [&](const kv::PrefixMatch &estimate) {
        const int64_t new_block_tokens =
            prompt_block_tokens - estimate.hit_tokens;
        syncPrefixBudget(
            candidate_tokens,
            std::min(new_block_tokens,
                     configured_prefix_budget_ /
                         kv_bytes_per_token_));
    };
    if (r.prompt_tokens.empty()) {
        resizeToHeadroom(kv::PrefixMatch{});
        return 0;
    }
    // One combined traversal: match, resize (the callback above),
    // pin + insert — the fused form of the legacy three-walk
    // admission sequence.
    const int64_t inserted_before = prefix_tree_.insertedTokens();
    kv::MatchAndPinResult pin =
        prefix_tree_.matchAndPin(r.prompt_tokens, resizeToHeadroom);
    // Prefill must still compute at least the last token of the
    // restored context: for a fresh request that caps the hit at
    // prompt_len - 1 (the decode loop needs the last prompt token's
    // logits); a restore recomputes its generated suffix anyway, so
    // the full prompt may ride the cache.
    const int64_t hit =
        std::min(pin.match.hit_tokens, r.kvLen() - 1);
    ++result_.prefix.lookups;
    result_.prefix.prompt_tokens += r.prompt_len;
    if (hit > 0) {
        ++result_.prefix.hit_requests;
        result_.prefix.hit_tokens += hit;
    }
#if SPECONTEXT_OBS_ENABLED
    if (trace_) {
        if (hit > 0)
            trace_->emit(obs::EventType::PrefixHit, now_,
                         static_cast<int32_t>(cfg_.id), r.id, hit,
                         r.prompt_len);
        const int64_t inserted =
            prefix_tree_.insertedTokens() - inserted_before;
        if (inserted > 0)
            trace_->emit(obs::EventType::PrefixInsert, now_,
                         static_cast<int32_t>(cfg_.id), r.id, inserted,
                         prefix_tree_.residentTokens());
    }
#else
    (void)inserted_before;
#endif
    // Keep the whole prompt path (hit + newly inserted suffix blocks)
    // pinned until retirement or preemption so future same-prefix
    // admissions hit it and eviction cannot pull KV out from under an
    // in-flight request. Pins are keyed by a per-admission slot, not
    // the request id — duplicate ids in a degenerate trace must not
    // cross-release each other's live pins.
    r.prefix_pin_slot = next_pin_slot_++;
    prefix_pins_.emplace_back(r.prefix_pin_slot, pin.handle);
    r.cached_prompt_len = hit;
    return hit;
}

void
ReplicaEngine::snapshotPrefixStats()
{
    result_.prefix.inserted_tokens = prefix_tree_.insertedTokens();
    result_.prefix.evicted_tokens = prefix_tree_.evictedTokens();
    result_.prefix.resident_bytes = prefix_tree_.bytes();
    result_.prefix.resident_tokens = prefix_tree_.residentTokens();
}

void
ReplicaEngine::deliver(Request r)
{
    if (r.arrival_seconds < last_delivered_arrival_)
        throw std::invalid_argument(
            "ReplicaEngine: deliveries must be in arrival order");
    if (!r.prompt_tokens.empty() &&
        static_cast<int64_t>(r.prompt_tokens.size()) != r.prompt_len)
        throw std::invalid_argument(
            "ReplicaEngine: prompt_tokens size disagrees with "
            "prompt_len");
    // Sanitize engine-owned bookkeeping: a replayed/copied Request may
    // carry a stale pin slot or hit count from a previous run, and
    // retirement trusts prefix_pin_slot to name a pin THIS engine
    // took.
    r.prefix_pin_slot = -1;
    r.cached_prompt_len = 0;
    last_delivered_arrival_ = r.arrival_seconds;
    pending_.push_back(std::move(r));
}

void
ReplicaEngine::ingestPending(double t)
{
    while (pending_next_ < static_cast<int64_t>(pending_.size()) &&
           pending_[pending_next_].arrival_seconds <= t) {
        Request &q = pending_[pending_next_];
        OBS_EVENT(trace_, obs::EventType::Enqueue, q.arrival_seconds,
                  static_cast<int32_t>(cfg_.id), q.id, q.prompt_len,
                  q.gen_len);
        if (counters_)
            counters_->add(slots_.enqueued_requests, 1);
        scheduler_.enqueue(std::move(q));
        ++pending_next_;
    }
    if (pending_next_ == static_cast<int64_t>(pending_.size())) {
        pending_.clear();
        pending_next_ = 0;
    }
}

double
ReplicaEngine::nextEventSeconds() const
{
    if (!active_.empty() || !scheduler_.queueEmpty())
        return now_;
    if (pending_next_ < static_cast<int64_t>(pending_.size()))
        return std::max(now_,
                        pending_[pending_next_].arrival_seconds);
    return std::numeric_limits<double>::infinity();
}

bool
ReplicaEngine::idle() const
{
    return active_.empty() && scheduler_.queueEmpty() &&
           pending_next_ >= static_cast<int64_t>(pending_.size());
}

void
ReplicaEngine::releasePinSlot(int64_t slot)
{
    for (size_t i = prefix_pins_.size(); i-- > 0;) {
        if (prefix_pins_[i].first == slot) {
            prefix_tree_.release(prefix_pins_[i].second);
            prefix_pins_[i] = std::move(prefix_pins_.back());
            prefix_pins_.pop_back();
            return;
        }
    }
}

void
ReplicaEngine::preemptVictim()
{
    flushWindow(); // victim choice and accounting read live lengths
    const size_t v = scheduler_.selectVictim(active_);
    active_final_tokens_ -= active_[v].finalLen();
    Request r = std::move(active_[v]);
    active_.erase(active_.begin() +
                  static_cast<std::vector<Request>::difference_type>(v));
    // The batch shrank: any cached decode-fit prediction is void,
    // and so is the open decode window.
    opt_fit_rounds_ = -1;
    win_live_ = false;
    // The victim's prefix pin goes back to the LRU pool: its prompt
    // blocks stay resident while the budget lasts, which is exactly
    // what makes its restore cheap.
    if (r.prefix_pin_slot >= 0) {
        releasePinSlot(r.prefix_pin_slot);
        r.prefix_pin_slot = -1;
    }
    ++r.preemptions;
    ++result_.preempt.preemptions;
    r.state = RequestState::Preempted;
    OBS_EVENT(trace_, obs::EventType::Preempt, now_,
              static_cast<int32_t>(cfg_.id), r.id, r.generated,
              r.preemptions);
    if (counters_) {
        counters_->add(slots_.preemptions, 1);
        counters_->add(slots_.preempted_tokens, r.kvLen());
    }
    // Releasing KV is free in simulated time; the cost lands at the
    // restore, which re-prefills the whole live context (minus
    // whatever prefix the cache still holds).
    scheduler_.enqueue(std::move(r));
}

void
ReplicaEngine::step(const IngestFn &ingest, double horizon)
{
    const double event = nextEventSeconds();
    if (!std::isfinite(event))
        throw std::logic_error("ReplicaEngine: step on an idle replica");
    now_ = std::max(now_, event);

    auto ingestUpTo = [&](double t) {
        if (ingest)
            ingest(t); // the router delivers arrivals <= t
        ingestPending(t);
    };
    ingestUpTo(now_);

    // Admit while the Scheduler's discipline accepts the policy's
    // candidate. A denial with other requests in flight just means
    // "wait for retirements"; a denial on an idle replica means the
    // request can never fit here. Admission reads live per-request
    // state (the resident scan, optimistic fitsCurrent), so any
    // deferred window rounds apply first.
    if (!scheduler_.queueEmpty())
        flushWindow();
    while (!scheduler_.queueEmpty() &&
           scheduler_.hasBatchSlot(active_)) {
        const AdmissionDecision d =
            scheduler_.admit(active_, scheduler_.peek());
        if (!d.admit) {
            if (active_.empty()) {
                Request r = scheduler_.pop();
                r.state = RequestState::Rejected;
                OBS_EVENT(trace_, obs::EventType::Reject, now_,
                          static_cast<int32_t>(cfg_.id), r.id,
                          r.prompt_len, r.gen_len);
                if (counters_)
                    counters_->add(slots_.rejected_requests, 1);
                // Rejection records are read for ids/shapes only;
                // keeping kilobytes of token ids per rejection would
                // bloat fleet-wide roll-ups for nothing.
                r.prompt_tokens.clear();
                r.prompt_tokens.shrink_to_fit();
                result_.rejected.push_back(std::move(r));
                continue;
            }
            break;
        }
        Request r = scheduler_.pop();
        // A restore is any re-admission after a preemption — including
        // a victim evicted before its first decode step (generated
        // still 0), whose re-prefilled prompt is pure churn.
        const bool restore = r.preemptions > 0;
        if (r.admit_seconds < 0.0)
            r.admit_seconds = now_;
        r.last_admit_seconds = now_;
        r.state = RequestState::Decoding;
        // Prefix-cache consultation: tokens matched in the tree skip
        // prefill (they are KV the replica already holds); only the
        // uncached suffix is charged, attending over the cached
        // prefix as extra resident KV. With the cache disabled this
        // is a no-op and the arithmetic below is unchanged.
        const int64_t cached = admitThroughPrefixCache(r);
        if (restore) {
            // A preempted request restores by recomputing its whole
            // live context through prefill; the generated suffix is
            // the decode work thrown away and done again.
            ++result_.preempt.restores;
            result_.preempt.recompute_tokens += r.generated;
            r.recompute_tokens += r.generated;
            OBS_EVENT(trace_, obs::EventType::Restore, now_,
                      static_cast<int32_t>(cfg_.id), r.id, r.generated,
                      cached);
        } else {
            OBS_EVENT(trace_, obs::EventType::Admit, now_,
                      static_cast<int32_t>(cfg_.id), r.id, cached,
                      r.kvLen());
        }
        if (counters_) {
            counters_->add(slots_.admitted_requests, 1);
            counters_->add(slots_.admitted_prefill_tokens,
                           r.kvLen() - cached);
            counters_->add(slots_.prefix_hit_tokens, cached);
            if (restore) {
                counters_->add(slots_.restores, 1);
                counters_->add(slots_.recompute_tokens, r.generated);
            }
        }
        // Prefill iteration for the joining request; in-flight
        // requests stall for its duration (prefill-prioritized
        // scheduling), and arrivals during it still enqueue. A
        // restore prefills prompt + generated (its current context),
        // which for a fresh request is just the prompt.
        int64_t resident = 0;
        for (const Request &q : active_)
            resident += q.kvLen();
        const int64_t prefill_tokens = r.kvLen() - cached;
        OBS_EVENT(trace_, obs::EventType::PrefillStart, now_,
                  static_cast<int32_t>(cfg_.id), r.id, prefill_tokens,
                  static_cast<int64_t>(active_.size()));
        now_ += prefill_eval_
                    ? prefill_eval_->seconds(
                          prefill_tokens,
                          static_cast<int64_t>(active_.size()),
                          resident + cached)
                    : engine_.requestPrefillSeconds(
                          cfg_.timing, prefill_tokens,
                          static_cast<int64_t>(active_.size()),
                          resident + cached);
        if (restore)
            result_.preempt.restore_prefill_tokens += prefill_tokens;
        // Cache hits are not entirely free when the reload knob is
        // set: matched KV blocks stream back into the compute working
        // set at prefix_reload_gbps (0 = free, the bit-pinned
        // default).
        const double reload_gbps =
            cfg_.timing.system->options().prefix_reload_gbps;
        if (cached > 0 && reload_gbps > 0.0) {
            now_ += static_cast<double>(cached *
                                        kv_bytes_per_token_) /
                    (reload_gbps * 1e9);
        }
        OBS_EVENT(trace_, obs::EventType::PrefillEnd, now_,
                  static_cast<int32_t>(cfg_.id), r.id, prefill_tokens,
                  static_cast<int64_t>(active_.size()) + 1);
        active_final_tokens_ += r.finalLen();
        active_.push_back(std::move(r));
        // The batch grew: any cached decode-fit prediction is void,
        // and so is the open decode window.
        opt_fit_rounds_ = -1;
        win_live_ = false;
        ingestUpTo(now_);
    }
    result_.peak_in_flight =
        std::max(result_.peak_in_flight,
                 static_cast<int64_t>(active_.size()));

    if (active_.empty()) {
        if (!scheduler_.queueEmpty())
            throw std::logic_error(
                "ReplicaEngine: idle with admissible work queued");
        result_.makespan_seconds = now_;
        publishGauges();
        return; // round spent rejecting; next event is a future arrival
    }

    // Reserve mode's nextDecodeTokenFits is unconditionally true
    // (final-length reservations already cover growth), so the
    // KV-pressure check is hoisted out of the round loop entirely.
    const bool optimistic_preempt = optimistic();
    // kv_scratch_ mirrors active_'s kvLen()s for the decode call; the
    // advance-and-retire pass below maintains it in place, so only
    // rounds entered with a stale mirror (fresh step, or a preemption
    // changed the batch) pay the rebuild scan.
    // A window left open by the previous step() guarantees the batch
    // (and therefore the mirror refreshed by its reconciliation) is
    // untouched since, so the rebuild scan is skipped.
    bool kv_ready = win_live_;
    for (;;) {
        // Optimistic KV pressure: every in-flight context grows one
        // token this iteration; while that would oversubscribe the
        // memory model's headroom, evict victims (policy-ordered,
        // deterministic) until the survivors fit. The feasibleAlone()
        // admission gate guarantees a lone request always fits through
        // its final length, so the loop cannot strand the batch — the
        // > 1 guard is a belt-and-suspenders backstop against a
        // non-monotone system model.
        if (optimistic_preempt)
            flushWindow(); // the pressure check reads live lengths
        while (optimistic_preempt && active_.size() > 1 &&
               !scheduler_.nextDecodeTokenFits(active_)) {
            preemptVictim();
            kv_ready = false;
        }

        // One decode iteration advances every in-flight request by one
        // token — the continuous-batching core, no wave barrier.
        if (!kv_ready) {
            kv_scratch_.clear();
            for (const Request &r : active_)
                kv_scratch_.push_back(r.kvLen());
            kv_ready = true;
        }

        // Bulk decode window eligibility. In Reserve mode nothing
        // inside the round loop can change the batch except
        // retirement, and the earliest retirement round is known up
        // front (the smallest remaining generation length), so every
        // round before it can run without per-request work. Optimistic
        // mode additionally needs a preemption-free horizon:
        // decodeFitRounds() proves the next opt_fit_rounds_ pressure
        // checks pass with the batch as-is, so the window is capped
        // there and the *genuine* check re-runs at the predicted first
        // failure — the identical floating-point compare the per-round
        // loop would have made, so victims are evicted on exactly the
        // same round. (opt_fit_rounds_ caches the proof across calls;
        // any admission, retirement or preemption voids it.)
        int64_t k_retire = 0;
        if (decode_eval_) {
            if (win_live_) {
                // Continued window: the previous reconciliation
                // already discounted the rounds run, no rescan.
                k_retire = win_k_retire_;
            } else {
                k_retire = std::numeric_limits<int64_t>::max();
                for (const Request &r : active_)
                    k_retire =
                        std::min(k_retire, r.gen_len - r.generated);
            }
        }
        int64_t bulk_k = k_retire;
        if (decode_eval_ && optimistic_preempt) {
            if (opt_fit_rounds_ <= 0)
                opt_fit_rounds_ =
                    scheduler_.decodeFitRounds(active_, bulk_k);
            bulk_k = std::min(bulk_k, opt_fit_rounds_);
        }
        if (bulk_k >= 1) {
            // Bulk decode window: the evaluator advances the reduced
            // KV integers incrementally, and one reconciliation pass
            // afterwards applies the window's worth of per-request
            // effects. Every round's seconds, every timestamp and
            // every trace event is bit-identical to the single-round
            // loop's.
            const bool was_live = win_live_;
            if (!was_live)
                decode_eval_->beginWindow(kv_scratch_);
            const int64_t R = static_cast<int64_t>(active_.size());
            const int64_t k = bulk_k;
            // Entered with queued work (admission denied this step)
            // the single-round loop breaks after one round; match it.
            const bool queue_empty = scheduler_.queueEmpty();
            const double t_pending =
                pending_next_ < static_cast<int64_t>(pending_.size())
                    ? pending_[pending_next_].arrival_seconds
                    : std::numeric_limits<double>::infinity();
#if SPECONTEXT_OBS_ENABLED
            int64_t kv_sum0 = 0;
            if (trace_)
                for (int64_t kv : kv_scratch_)
                    kv_sum0 += kv;
#endif
            double first_now = now_;
            int64_t rounds = 0;
#if SPECONTEXT_OBS_ENABLED
            if (trace_) {
                // Traced run: per-round loop so every round's
                // DecodeStep event carries its own timestamp.
                for (;;) {
                    now_ += decode_eval_->nextRoundSeconds();
                    ++rounds;
                    if (rounds == 1)
                        first_now = now_;
                    // Round j prices lengths grown j-1 tokens past the
                    // window base — the same sum the rebuild loop
                    // reads.
                    trace_->emit(obs::EventType::DecodeStep, now_,
                                 static_cast<int32_t>(cfg_.id), -1, R,
                                 kv_sum0 + (rounds - 1) * R);
                    if (rounds >= k || !queue_empty ||
                        !(now_ < horizon) || t_pending <= now_)
                        break;
                }
            } else
#endif
            {
                // A non-empty queue breaks the loop after one round
                // regardless of k; fold that into the round cap so the
                // fused loop needs no queue check.
                now_ = decode_eval_->runWindow(queue_empty ? k : 1,
                                               now_, horizon, t_pending,
                                               rounds, first_now);
            }
            result_.iterations += rounds;
            if (counters_) {
                counters_->add(slots_.decode_iterations, rounds);
                counters_->add(slots_.generated_tokens, rounds * R);
            }
            if (!trace_ && rounds < k_retire) {
                // Deferred reconciliation: the window stopped short of
                // the retirement bound, so no request finished and the
                // only per-request effects are the uniform
                // +rounds-per-request growth — bookkeeping the readers
                // between flushes can compensate for arithmetically
                // (see win_defer_rounds_). TTFT is the one write that
                // cannot wait: every unstamped request joined via
                // admission, which closed the window, so the first
                // fresh window after a batch change stamps them all at
                // its own first round — exactly the instant the eager
                // pass would have used.
                if (!was_live)
                    for (Request &r : active_)
                        if (r.first_token_seconds < 0.0)
                            r.first_token_seconds = first_now;
                win_defer_rounds_ += rounds;
                win_live_ = true;
                win_k_retire_ = k_retire - rounds;
                if (optimistic_preempt)
                    opt_fit_rounds_ -= rounds;
                if (!(now_ < horizon) || !scheduler_.queueEmpty() ||
                    (pending_next_ <
                         static_cast<int64_t>(pending_.size()) &&
                     pending_[pending_next_].arrival_seconds <= now_))
                    break;
                continue;
            }
            // Reconciliation: the window's ++generated / TTFT stamps /
            // KV growth in one pass. Retirement is only reachable on
            // the final planned round (rounds == k), and a retiring
            // request finishes at the current (post-window) instant —
            // exactly where the per-round loop would retire it. Any
            // rounds a prior deferred window banked apply here too.
            const int64_t grow = win_defer_rounds_ + rounds;
            win_defer_rounds_ = 0;
            size_t keep = 0;
            for (size_t i = 0; i < active_.size(); ++i) {
                Request &r = active_[i];
                r.generated += grow;
                if (r.first_token_seconds < 0.0)
                    r.first_token_seconds = first_now;
                if (!r.done()) {
                    const int64_t next_kv = r.kvLen();
                    if (keep != i)
                        active_[keep] = std::move(r);
                    kv_scratch_[keep] = next_kv;
                    ++keep;
                    continue;
                }
                r.finish_seconds = now_;
                r.state = RequestState::Finished;
                active_final_tokens_ -= r.finalLen();
                if (r.prefix_pin_slot >= 0)
                    releasePinSlot(r.prefix_pin_slot);
                result_.metrics.record(r, cfg_.id);
                OBS_EVENT(trace_, obs::EventType::Complete, now_,
                          static_cast<int32_t>(cfg_.id), r.id,
                          r.gen_len, r.preemptions);
                if (counters_)
                    counters_->add(slots_.completed_requests, 1);
            }
            active_.resize(keep);
            kv_scratch_.resize(keep);
            // kv_ready stays true: the pass above refreshed the mirror.
            // An unchanged batch keeps the evaluator's window (and the
            // fit proof, one round spent per round run) open across
            // steps; retirement voids both — indices no longer line
            // up, recompute when next needed.
            win_live_ = keep == static_cast<size_t>(R);
            win_k_retire_ = k_retire - rounds;
            if (optimistic_preempt)
                opt_fit_rounds_ = keep == static_cast<size_t>(R)
                                      ? opt_fit_rounds_ - rounds
                                      : -1;
            if (!(now_ < horizon) || active_.empty() ||
                !scheduler_.queueEmpty() ||
                (pending_next_ < static_cast<int64_t>(pending_.size()) &&
                 pending_[pending_next_].arrival_seconds <= now_))
                break;
            continue;
        }

        now_ += decode_eval_
                    ? decode_eval_->seconds(kv_scratch_)
                    : engine_.decodeIterationSeconds(cfg_.timing,
                                                     kv_scratch_);
        ++result_.iterations;
#if SPECONTEXT_OBS_ENABLED
        if (trace_) {
            int64_t kv_sum = 0;
            for (int64_t k : kv_scratch_)
                kv_sum += k;
            trace_->emit(obs::EventType::DecodeStep, now_,
                         static_cast<int32_t>(cfg_.id), -1,
                         static_cast<int64_t>(kv_scratch_.size()),
                         kv_sum);
        }
#endif
        if (counters_) {
            counters_->add(slots_.decode_iterations, 1);
            counters_->add(slots_.generated_tokens,
                           static_cast<int64_t>(active_.size()));
        }
        // Advance and retire in one pass (stable compaction — no
        // per-element erase): every in-flight request gains its token
        // and, on its first, its TTFT stamp; finished requests retire
        // in place. Freed reservations re-offer headroom to the queue
        // next round, and released prefix pins leave cached blocks
        // LRU-evictable but resident for future same-prefix
        // admissions while the budget lasts.
        size_t keep = 0;
        for (size_t i = 0; i < active_.size(); ++i) {
            Request &r = active_[i];
            ++r.generated;
            if (r.first_token_seconds < 0.0)
                r.first_token_seconds = now_;
            if (!r.done()) {
                const int64_t next_kv = r.kvLen();
                if (keep != i)
                    active_[keep] = std::move(r);
                kv_scratch_[keep] = next_kv;
                ++keep;
                continue;
            }
            r.finish_seconds = now_;
            r.state = RequestState::Finished;
            active_final_tokens_ -= r.finalLen();
            if (r.prefix_pin_slot >= 0)
                releasePinSlot(r.prefix_pin_slot);
            result_.metrics.record(r, cfg_.id);
            OBS_EVENT(trace_, obs::EventType::Complete, now_,
                      static_cast<int32_t>(cfg_.id), r.id, r.gen_len,
                      r.preemptions);
            if (counters_)
                counters_->add(slots_.completed_requests, 1);
        }
        active_.resize(keep);
        kv_scratch_.resize(keep);
        kv_ready = true; // the pass above refreshed it for next round
        // This round ran without a proven fit window (single-request
        // pressure fallback, or no cached evaluator); the contexts
        // grew outside any window, so stale predictions are void.
        win_live_ = false;
        if (optimistic_preempt)
            opt_fit_rounds_ = -1;

        // Skip-ahead: keep executing pure-decode rounds inside this
        // call while nothing external can observe or perturb the
        // replica. The single-round loop would come straight back here
        // — its round head would ingest nothing (no pending delivery
        // has arrived), admit nothing (empty queue) and jump the clock
        // nowhere (active work keeps nextEventSeconds() == now) — so
        // running the next round now, with the identical preempt/
        // decode/retire arithmetic above, is bit-exact. Stop at the
        // caller's horizon (the next arrival / control tick / sampler
        // crossing it owns), on drain, or when the next round needs
        // admission (queued work, or a pending delivery whose arrival
        // the clock just passed — including a preemption victim this
        // round re-enqueued).
        if (!(now_ < horizon) || active_.empty() ||
            !scheduler_.queueEmpty() ||
            (pending_next_ < static_cast<int64_t>(pending_.size()) &&
             pending_[pending_next_].arrival_seconds <= now_))
            break;
    }
    if (prefixCacheEnabled())
        snapshotPrefixStats();
    result_.makespan_seconds = now_;
    publishGauges();
}

} // namespace serving
} // namespace specontext
