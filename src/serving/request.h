/**
 * @file
 * Request lifecycle type of the continuous-batching server.
 *
 * A Request is one user call in an open-loop arrival trace: it arrives
 * at a wall-clock instant with a prompt and a generation target, waits
 * in the RequestQueue until the AdmissionController finds KV headroom,
 * is prefilled, then advances one token per server iteration until it
 * retires. All timestamps are in simulated seconds from trace start;
 * negative means "not reached yet".
 */
#pragma once

#include <cstdint>
#include <vector>

namespace specontext {
namespace serving {

/** Lifecycle stage of a served request. */
enum class RequestState {
    Queued,   ///< arrived, waiting for admission
    Decoding, ///< prefilled, advancing one token per iteration
    /** Evicted from the in-flight batch under KV pressure (Optimistic
     *  scheduling); waits in the queue to be re-admitted, recomputing
     *  its generated tokens through prefill. */
    Preempted,
    Finished, ///< all gen_len tokens produced
    Rejected, ///< can never fit (infeasible even alone)
};

const char *requestStateName(RequestState s);

/** One request of an arrival trace. */
struct Request
{
    int64_t id = 0;
    double arrival_seconds = 0.0;
    int64_t prompt_len = 0;
    int64_t gen_len = 0;
    /**
     * Prompt token ids, for prefix-cache matching (kv::PrefixTree) and
     * prefix-affinity routing. Optional: empty means "no sharing
     * information" and the request bypasses the prefix cache. When
     * non-empty, size() must equal prompt_len (ReplicaEngine::deliver
     * enforces this).
     */
    std::vector<int32_t> prompt_tokens;

    RequestState state = RequestState::Queued;
    int64_t generated = 0;            ///< decode tokens produced so far
    /** Prompt tokens served from the replica's prefix cache at
     *  admission (prefill skipped for them); 0 when the cache is
     *  disabled or missed. */
    int64_t cached_prompt_len = 0;
    /** Internal: ReplicaEngine's key for the prefix-cache pin this
     *  admission took (unique per admission, so duplicate request ids
     *  cannot cross-release each other's pins); -1 = no pin. */
    int64_t prefix_pin_slot = -1;
    double admit_seconds = -1.0;      ///< first admission (prefill start)
    /** Latest (re-)admission instant — the LastAdmitted victim
     *  policy's ordering key; equals admit_seconds until a preempted
     *  request is restored. */
    double last_admit_seconds = -1.0;
    double first_token_seconds = -1.0;///< end of first decode iteration
    double finish_seconds = -1.0;     ///< last token produced
    /** Times this request was evicted from the in-flight batch under
     *  KV pressure (Optimistic scheduling); 0 in Reserve mode. */
    int64_t preemptions = 0;
    /** Generated tokens re-prefilled across all restores — the decode
     *  work preemption threw away and prefill recomputed. */
    int64_t recompute_tokens = 0;

    /** Current context length: prompt plus tokens generated so far. */
    int64_t kvLen() const { return prompt_len + generated; }

    /** Context length when generation completes (KV reservation). */
    int64_t finalLen() const { return prompt_len + gen_len; }

    bool done() const { return generated >= gen_len; }
};

/** Sort a trace by arrival time (stable: equal arrivals keep input
 *  order) — the canonical ordering every serving entry point applies
 *  (Server, Cluster, serveWaves, workload::splitTrace). */
void sortByArrival(std::vector<Request> &trace);

} // namespace serving
} // namespace specontext
